#!/usr/bin/env bash
# serve-smoke: end-to-end check of the flashr-serve batching service.
#
# Boots flashr-serve on a throttled tiny SSD array with bearer-token auth and
# an admission byte budget, drives it with concurrent clients across two
# tenants, then asserts (1) request batching coalesced work — materialization
# passes < requests per tenant, (2) tenants progressed fairly — max/min tenant
# throughput ≤ 3×, (3) tokenless requests are refused with 401, (4) a v2
# result handle round-trips: eval → handle → row fetch → release → 410,
# (5) an over-budget program is rejected 413 before evaluation, (6) streaming
# eval emits NDJSON progress/stmt/done events, and (7) a SIGTERM drain answers
# every accepted request and exits 0.
set -euo pipefail

CLIENTS=${CLIENTS:-8}
TENANTS=${TENANTS:-2}
REQUESTS=${REQUESTS:-12}
PORT=${PORT:-18080}
WORK=${WORK:-$(mktemp -d)}
ADDR="http://127.0.0.1:$PORT"

cd "$(dirname "$0")/.."
go build -o "$WORK/flashr-serve" ./cmd/flashr-serve
go build -o "$WORK/flashr-loadgen" ./cmd/flashr-loadgen

TOKENS="tenant-0=tok0,tenant-1=tok1"
"$WORK/flashr-serve" -addr "127.0.0.1:$PORT" \
  -ssd-root "$WORK/array" -drives 2 -read-mbps 300 -write-mbps 300 \
  -batch-wait 25ms -session-idle 5m \
  -auth-tokens "$TOKENS" -max-est-mb 1 > "$WORK/serve.log" 2>&1 &
SRV=$!
trap 'kill -9 $SRV 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -sf "$ADDR/healthz" > /dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$ADDR/healthz" > /dev/null

"$WORK/flashr-loadgen" -addr "$ADDR" -auth "$TOKENS" \
  -tenants "$TENANTS" -clients "$CLIENTS" -requests "$REQUESTS" \
  | tee "$WORK/loadgen.out"

curl -s "$ADDR/metrics" > "$WORK/metrics.out"

# (1) Coalescing: every tenant's engine pass total must be below its request
# total — otherwise each request paid its own materialization pass and the
# batcher did nothing.
for i in $(seq 0 $((TENANTS - 1))); do
  t="tenant-$i"
  reqs=$(awk -v s="flashr_serve_requests_total{tenant=\"$t\"}" '$1 == s {print $2}' "$WORK/metrics.out")
  passes=$(awk -v s="flashr_materialize_passes_total{owner=\"$t\"}" '$1 == s {print $2}' "$WORK/metrics.out")
  echo "smoke: $t requests=$reqs passes=$passes"
  if [ -z "$reqs" ] || [ -z "$passes" ]; then
    echo "smoke: FAIL: missing metrics series for $t" >&2
    exit 1
  fi
  awk -v p="$passes" -v r="$reqs" 'BEGIN { exit !(p > 0 && p < r) }' || {
    echo "smoke: FAIL: $t passes=$passes not in (0, requests=$reqs): batching ineffective" >&2
    exit 1
  }
done

# (2) Fairness: loadgen reports max/min per-tenant throughput; the engine's
# pass arbiter and weighted fair queueing must keep equal-weight tenants
# within 3x of each other.
ratio=$(awk '/^fairness:/ {print $NF}' "$WORK/loadgen.out")
if [ -z "$ratio" ]; then
  echo "smoke: FAIL: loadgen reported no fairness ratio" >&2
  exit 1
fi
awk -v r="$ratio" 'BEGIN { exit !(r <= 3.0) }' || {
  echo "smoke: FAIL: tenant throughput ratio $ratio exceeds 3x" >&2
  exit 1
}
echo "smoke: fairness ratio $ratio within 3x"

# (3) Auth: a tokenless request must be refused with 401 and code "auth".
code=$(curl -s -o "$WORK/noauth.out" -w '%{http_code}' -X POST "$ADDR/v2/sessions" -d '{}')
if [ "$code" != "401" ] || ! grep -q '"code":"auth"' "$WORK/noauth.out"; then
  echo "smoke: FAIL: tokenless session create got HTTP $code ($(cat "$WORK/noauth.out"))" >&2
  exit 1
fi
echo "smoke: tokenless request refused with 401 auth"

AUTH="Authorization: Bearer tok0"

# (4) v2 result-handle round-trip: eval returns {handle, nrow, ncol, bytes}
# instead of inline values; row-range fetches stream the pinned rows; release
# frees the handle and further fetches answer 410 result_released.
sid=$(curl -sf -H "$AUTH" -X POST "$ADDR/v2/sessions" -d '{}' \
  | sed -n 's/.*"session":"\([^"]*\)".*/\1/p')
if [ -z "$sid" ]; then
  echo "smoke: FAIL: v2 session create returned no id" >&2
  exit 1
fi
curl -sf -H "$AUTH" -X POST "$ADDR/v2/sessions/$sid/eval" \
  -d '{"program":"m <- runif.matrix(300, 3, 1, 1, 7)\nm"}' > "$WORK/v2eval.out"
h=$(sed -n 's/.*"handle":"\([^"]*\)".*/\1/p' "$WORK/v2eval.out")
if [ -z "$h" ] || ! grep -q '"nrow":300' "$WORK/v2eval.out"; then
  echo "smoke: FAIL: v2 eval returned no 300-row handle: $(cat "$WORK/v2eval.out")" >&2
  exit 1
fi
rows=$(curl -sf -H "$AUTH" "$ADDR/v2/results/$h?rows=0:5" | wc -l)
if [ "$rows" -ne 5 ]; then
  echo "smoke: FAIL: row fetch returned $rows NDJSON rows, want 5" >&2
  exit 1
fi
curl -sf -H "$AUTH" -X DELETE "$ADDR/v2/results/$h"
code=$(curl -s -o "$WORK/gone.out" -w '%{http_code}' -H "$AUTH" "$ADDR/v2/results/$h")
if [ "$code" != "410" ] || ! grep -q '"code":"result_released"' "$WORK/gone.out"; then
  echo "smoke: FAIL: fetch after release got HTTP $code ($(cat "$WORK/gone.out"))" >&2
  exit 1
fi
echo "smoke: v2 handle round-trip (eval -> fetch -> release -> 410) OK"

# (5) Admission budget: a program whose statically estimated working set
# exceeds -max-est-mb is refused 413 before any evaluation.
code=$(curl -s -o "$WORK/budget.out" -w '%{http_code}' -H "$AUTH" \
  -X POST "$ADDR/v2/sessions/$sid/eval" \
  -d '{"program":"big <- runif.matrix(1000000, 10, 0, 1, 7)\nsum(big)"}')
if [ "$code" != "413" ] || ! grep -q '"code":"budget_exceeded"' "$WORK/budget.out"; then
  echo "smoke: FAIL: over-budget program got HTTP $code ($(cat "$WORK/budget.out"))" >&2
  exit 1
fi
echo "smoke: over-budget program refused with 413 budget_exceeded"

# (6) Streaming eval: NDJSON events arrive in progress/stmt/done order.
curl -sfN -H "$AUTH" -X POST "$ADDR/v2/sessions/$sid/eval/stream" \
  -d '{"program":"sum(m)"}' > "$WORK/stream.out"
for ev in progress stmt done; do
  grep -q "\"event\":\"$ev\"" "$WORK/stream.out" || {
    echo "smoke: FAIL: stream missing $ev event: $(cat "$WORK/stream.out")" >&2
    exit 1
  }
done
grep -q '\[1\] 900' "$WORK/stream.out" || {
  echo "smoke: FAIL: streamed sum(m) did not render [1] 900: $(cat "$WORK/stream.out")" >&2
  exit 1
}
echo "smoke: streaming eval emitted progress/stmt/done with the right value"

# (7) Graceful drain: SIGTERM must flush in-flight work, answer everything
# accepted, and exit 0. The server prints the accepted/answered accounting
# and exits nonzero itself if they disagree.
kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
trap - EXIT
cat "$WORK/serve.log"
if [ "$rc" -ne 0 ]; then
  echo "smoke: FAIL: flashr-serve exited $rc after SIGTERM" >&2
  exit 1
fi
grep -q 'drained accepted=' "$WORK/serve.log" || {
  echo "smoke: FAIL: no drain accounting line in server log" >&2
  exit 1
}
echo "smoke: PASS"
