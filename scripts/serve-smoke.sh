#!/usr/bin/env bash
# serve-smoke: end-to-end check of the flashr-serve batching service.
#
# Boots flashr-serve on a throttled tiny SSD array, drives it with concurrent
# clients across two tenants, then asserts from the server's own metrics that
# (1) request batching coalesced work — materialization passes < requests per
# tenant, (2) tenants progressed fairly — max/min tenant throughput ≤ 3×, and
# (3) a SIGTERM drain answers every accepted request and exits 0.
set -euo pipefail

CLIENTS=${CLIENTS:-8}
TENANTS=${TENANTS:-2}
REQUESTS=${REQUESTS:-12}
PORT=${PORT:-18080}
WORK=${WORK:-$(mktemp -d)}
ADDR="http://127.0.0.1:$PORT"

cd "$(dirname "$0")/.."
go build -o "$WORK/flashr-serve" ./cmd/flashr-serve
go build -o "$WORK/flashr-loadgen" ./cmd/flashr-loadgen

"$WORK/flashr-serve" -addr "127.0.0.1:$PORT" \
  -ssd-root "$WORK/array" -drives 2 -read-mbps 300 -write-mbps 300 \
  -batch-wait 25ms -session-idle 5m > "$WORK/serve.log" 2>&1 &
SRV=$!
trap 'kill -9 $SRV 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  curl -sf "$ADDR/healthz" > /dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$ADDR/healthz" > /dev/null

"$WORK/flashr-loadgen" -addr "$ADDR" \
  -tenants "$TENANTS" -clients "$CLIENTS" -requests "$REQUESTS" \
  | tee "$WORK/loadgen.out"

curl -s "$ADDR/metrics" > "$WORK/metrics.out"

# (1) Coalescing: every tenant's engine pass total must be below its request
# total — otherwise each request paid its own materialization pass and the
# batcher did nothing.
for i in $(seq 0 $((TENANTS - 1))); do
  t="tenant-$i"
  reqs=$(awk -v s="flashr_serve_requests_total{tenant=\"$t\"}" '$1 == s {print $2}' "$WORK/metrics.out")
  passes=$(awk -v s="flashr_materialize_passes_total{owner=\"$t\"}" '$1 == s {print $2}' "$WORK/metrics.out")
  echo "smoke: $t requests=$reqs passes=$passes"
  if [ -z "$reqs" ] || [ -z "$passes" ]; then
    echo "smoke: FAIL: missing metrics series for $t" >&2
    exit 1
  fi
  awk -v p="$passes" -v r="$reqs" 'BEGIN { exit !(p > 0 && p < r) }' || {
    echo "smoke: FAIL: $t passes=$passes not in (0, requests=$reqs): batching ineffective" >&2
    exit 1
  }
done

# (2) Fairness: loadgen reports max/min per-tenant throughput; the engine's
# pass arbiter and weighted fair queueing must keep equal-weight tenants
# within 3x of each other.
ratio=$(awk '/^fairness:/ {print $NF}' "$WORK/loadgen.out")
if [ -z "$ratio" ]; then
  echo "smoke: FAIL: loadgen reported no fairness ratio" >&2
  exit 1
fi
awk -v r="$ratio" 'BEGIN { exit !(r <= 3.0) }' || {
  echo "smoke: FAIL: tenant throughput ratio $ratio exceeds 3x" >&2
  exit 1
}
echo "smoke: fairness ratio $ratio within 3x"

# (3) Graceful drain: SIGTERM must flush in-flight work, answer everything
# accepted, and exit 0. The server prints the accepted/answered accounting
# and exits nonzero itself if they disagree.
kill -TERM "$SRV"
rc=0
wait "$SRV" || rc=$?
trap - EXIT
cat "$WORK/serve.log"
if [ "$rc" -ne 0 ]; then
  echo "smoke: FAIL: flashr-serve exited $rc after SIGTERM" >&2
  exit 1
fi
grep -q 'drained accepted=' "$WORK/serve.log" || {
  echo "smoke: FAIL: no drain accounting line in server log" >&2
  exit 1
}
echo "smoke: PASS"
