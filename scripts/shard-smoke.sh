#!/usr/bin/env bash
# shard-smoke: end-to-end check of real multi-process sharded execution.
#
# Boots two flashr-shardworker processes on loopback TCP, runs the
# self-gating shard benchmark against them (single local engine vs the same
# k-means + logistic workloads distributed over the two workers; the
# experiment exits nonzero unless integer channels are bit-identical and
# float folds are within tolerance), then asserts that (1) both workers
# actually executed materialization passes and expose them over /metrics,
# (2) a kill -9 of one worker mid-iteration, followed by a restart on the
# same port, recovers (fence + lineage replay) without perturbing the
# equivalence gates, and (3) a SIGTERM drain answers every accepted RPC and
# exits 0.
set -euo pipefail

PORT0=${PORT0:-17071}
PORT1=${PORT1:-17072}
DBG0=${DBG0:-17081}
DBG1=${DBG1:-17082}
N=${N:-20000}
ITERS=${ITERS:-3}
PART_ROWS=${PART_ROWS:-1024}
WORK=${WORK:-$(mktemp -d)}

cd "$(dirname "$0")/.."
go build -o "$WORK/flashr-shardworker" ./cmd/flashr-shardworker
go build -o "$WORK/flashr-bench" ./cmd/flashr-bench

"$WORK/flashr-shardworker" -listen "127.0.0.1:$PORT0" -part-rows "$PART_ROWS" \
  -debug-addr "127.0.0.1:$DBG0" > "$WORK/worker0.log" 2>&1 &
W0=$!
"$WORK/flashr-shardworker" -listen "127.0.0.1:$PORT1" -part-rows "$PART_ROWS" \
  -debug-addr "127.0.0.1:$DBG1" > "$WORK/worker1.log" 2>&1 &
W1=$!
trap 'kill -9 $W0 $W1 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  grep -q 'listening on' "$WORK/worker0.log" 2>/dev/null &&
    grep -q 'listening on' "$WORK/worker1.log" 2>/dev/null && break
  sleep 0.1
done
grep -q 'listening on' "$WORK/worker0.log"
grep -q 'listening on' "$WORK/worker1.log"

# (1) Equivalence: the shard experiment is self-gating — it runs the same
# workloads locally and distributed and exits nonzero on any mismatch.
"$WORK/flashr-bench" -experiment shard -n "$N" -iters "$ITERS" \
  -shard-part-rows "$PART_ROWS" -shard-addrs "127.0.0.1:$PORT0,127.0.0.1:$PORT1" | tee "$WORK/bench.out"
grep -q 'shard-2-tcp' "$WORK/bench.out" || {
  echo "smoke: FAIL: no TCP-sharded result row" >&2
  exit 1
}

# Both workers must have done real passes, visible through their /metrics.
for dbg in "$DBG0" "$DBG1"; do
  curl -s "http://127.0.0.1:$dbg/metrics" > "$WORK/metrics-$dbg.out"
  passes=$(awk '$1 == "flashr_materialize_passes_total" {print $2}' "$WORK/metrics-$dbg.out")
  echo "smoke: worker :$dbg passes=$passes"
  if [ -z "$passes" ]; then
    echo "smoke: FAIL: worker :$dbg exposes no pass counter" >&2
    exit 1
  fi
  awk -v p="$passes" 'BEGIN { exit !(p > 0) }' || {
    echo "smoke: FAIL: worker :$dbg executed no passes" >&2
    exit 1
  }
done

# (2) Chaos: kill -9 one worker mid-iteration and restart it on the same
# port. The coordinator must fence the restarted worker, replay the lineage
# of its resident talls, and the self-gating benchmark must still pass its
# equivalence gates — with at least one recovery on the wire ledger.
FLASHR_SHARD_CHAOS_PAUSE=${CHAOS_PAUSE:-2s} "$WORK/flashr-bench" -experiment shard -n "$N" -iters "$ITERS" \
  -shard-part-rows "$PART_ROWS" -shard-addrs "127.0.0.1:$PORT0,127.0.0.1:$PORT1" \
  > "$WORK/chaos.out" 2>&1 &
BENCH=$!
for _ in $(seq 1 300); do
  grep -q 'distributed workload starting' "$WORK/chaos.out" 2>/dev/null && break
  sleep 0.05
done
grep -q 'distributed workload starting' "$WORK/chaos.out" || {
  cat "$WORK/chaos.out"
  echo "smoke: FAIL: bench never reached the distributed workload" >&2
  exit 1
}
kill -9 "$W0"
wait "$W0" 2>/dev/null || true
sleep 0.3
"$WORK/flashr-shardworker" -listen "127.0.0.1:$PORT0" -part-rows "$PART_ROWS" \
  -debug-addr "127.0.0.1:$DBG0" > "$WORK/worker0-restart.log" 2>&1 &
W0=$!
trap 'kill -9 $W0 $W1 2>/dev/null || true' EXIT
rcb=0
wait "$BENCH" || rcb=$?
cat "$WORK/chaos.out"
if [ "$rcb" -ne 0 ]; then
  echo "smoke: FAIL: chaos bench exited $rcb (equivalence gate or recovery failed)" >&2
  exit 1
fi
recoveries=$(grep -o 'recoveries=[0-9]*' "$WORK/chaos.out" | head -1 | cut -d= -f2)
echo "smoke: chaos recoveries=$recoveries"
if [ -z "$recoveries" ] || [ "$recoveries" -lt 1 ]; then
  echo "smoke: FAIL: worker was killed but the coordinator recorded no recovery" >&2
  exit 1
fi
grep -q 'listening on' "$WORK/worker0-restart.log" || {
  echo "smoke: FAIL: restarted worker never came up" >&2
  exit 1
}

# (3) Graceful drain: SIGTERM must finish in-flight RPCs, prove the
# accepted==answered accounting, and exit 0 (the worker exits nonzero
# itself if the ledger disagrees). Worker 0 is the post-chaos restart.
kill -TERM "$W0" "$W1"
rc0=0; rc1=0
wait "$W0" || rc0=$?
wait "$W1" || rc1=$?
trap - EXIT
cat "$WORK/worker0-restart.log" "$WORK/worker1.log"
if [ "$rc0" -ne 0 ] || [ "$rc1" -ne 0 ]; then
  echo "smoke: FAIL: workers exited $rc0/$rc1 after SIGTERM" >&2
  exit 1
fi
grep -q 'drained accepted=' "$WORK/worker0-restart.log" || {
  echo "smoke: FAIL: no drain accounting line in restarted worker0 log" >&2
  exit 1
}
grep -q 'drained accepted=' "$WORK/worker1.log" || {
  echo "smoke: FAIL: no drain accounting line in worker1 log" >&2
  exit 1
}
echo "smoke: PASS"
