package flashr

import (
	"fmt"
	"strings"
)

// Error is the typed error every malformed-input failure on the public
// surface reports. The Try* variants return it; the panicking shorthands
// (Add, MatMul, Sweep, …) panic with the same *Error value — mirroring R,
// where shape and type misuse stops the script — so a recovered panic
// message is byte-identical to the error the Try* twin would have returned:
//
//	out, err := flashr.TryAdd(a, b)   // err is *flashr.Error on misuse
//	out := flashr.Add(a, b)           // panics with that same *Error
//
// Runtime failures that are not input mistakes (I/O errors, cancelled
// contexts) pass through the Try* variants unwrapped.
type Error struct {
	// Op names the public operation that rejected its input ("add", "%*%",
	// "sweep", …), in the R-flavored spelling of the paper's Tables 1–2.
	Op string
	// Shapes holds the operand dimensions the operation saw — [rows, cols]
	// per operand, in argument order — when shapes are part of the story.
	Shapes [][2]int64
	// Reason says what was wrong.
	Reason string
}

func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString("flashr: ")
	b.WriteString(e.Op)
	b.WriteString(": ")
	b.WriteString(e.Reason)
	if len(e.Shapes) > 0 {
		b.WriteString(" [")
		for i, sh := range e.Shapes {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%dx%d", sh[0], sh[1])
		}
		b.WriteString("]")
	}
	return b.String()
}

// errf builds a *Error with a formatted reason.
func errf(op string, shapes [][2]int64, format string, args ...any) *Error {
	return &Error{Op: op, Shapes: shapes, Reason: fmt.Sprintf(format, args...)}
}

// shapesOf collects operand shapes for error reports.
func shapesOf(xs ...*FM) [][2]int64 {
	out := make([][2]int64, 0, len(xs))
	for _, x := range xs {
		if x == nil {
			continue
		}
		r, c := x.dims()
		out = append(out, [2]int64{r, c})
	}
	return out
}

// must unwraps a Try* result for the panicking shorthand. The panic value
// is the error itself, so recover()'d messages match the Try* error text.
func must(f *FM, err error) *FM {
	if err != nil {
		panic(err)
	}
	return f
}
