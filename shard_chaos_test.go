// Chaos differential sweep for shard fault recovery: the paper's k-means and
// logistic-regression workloads run under seeded worker kill/restart
// schedules, and every faulted run is held to the same answer as the
// unfaulted one. The gates are deliberately asymmetric:
//
//   - faulted-sharded vs unfaulted-sharded: BIT-identical on every channel.
//     Recovery replays lineage with the recorded carries over the same row
//     partitioning, so a crash must not perturb a single bit.
//   - sharded vs local: integer channels (sizes, moves, iteration counts)
//     bit-identical, float folds tolerance-pinned — the shard combine
//     regroups the reduction, nothing more.
//
// The coordinator is never restarted here (that path is covered by
// TestShardCheckpointResume); every schedule must record at least one
// recovery and leak no worker handles.
//
// This file is an external test package: it drives repro/ml, which imports
// the root package.
package flashr_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	flashr "repro"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/ml"
)

const (
	chaosN     = 1100
	chaosP     = 5
	chaosK     = 3
	chaosIters = 3
)

// chaosOutcome flattens both models into comparable channels.
type chaosOutcome struct {
	exact map[string][]float64 // bit-identical across every configuration
	close map[string][]float64 // tolerance-pinned across local vs sharded
}

func chaosInitCenters() *dense.Dense {
	c := dense.New(chaosK, chaosP)
	rng := rand.New(rand.NewSource(41))
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	return c
}

// runChaosML runs the two workloads in one session and returns the flattened
// outcome. The caller owns opts; the session is closed before returning so
// coordinator teardown is part of what the sweep exercises.
func runChaosML(t *testing.T, opts flashr.Options, check func(s *flashr.Session)) chaosOutcome {
	t.Helper()
	s, err := flashr.NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	x, err := s.GenerateSeeded(chaosN, chaosP, 17, func(rng *rand.Rand, row []float64) {
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	y, err := s.GenerateSeeded(chaosN, 1, 18, func(rng *rand.Rand, row []float64) {
		if rng.NormFloat64() > 0 {
			row[0] = 1
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	km, err := ml.KMeans(s, x, chaosK, ml.KMeansOptions{MaxIter: chaosIters, InitCenters: chaosInitCenters()})
	if err != nil {
		t.Fatalf("kmeans: %v", err)
	}
	lg, err := ml.LogisticRegressionGD(s, x, y, ml.LogisticOptions{MaxIter: chaosIters})
	if err != nil {
		t.Fatalf("logistic: %v", err)
	}
	if check != nil {
		check(s)
	}
	moves := make([]float64, len(km.Moves))
	for i, v := range km.Moves {
		moves[i] = float64(v)
	}
	return chaosOutcome{
		exact: map[string][]float64{
			"kmeans sizes": km.Sizes,
			"kmeans moves": moves,
			"iterations":   {float64(km.Iters), float64(lg.Iters)},
		},
		close: map[string][]float64{
			"kmeans centers":   km.Centers.Data,
			"kmeans objective": {km.Objective},
			"logistic weights": lg.W,
			"logistic logloss": {lg.LogLoss},
		},
	}
}

func chaosShardOptions() flashr.Options {
	return flashr.Options{Workers: 4, PartRows: 256}
}

// compareChannels asserts a == b, bitwise on every channel when bitwise is
// set, otherwise bitwise on exact channels and tolerance-pinned on close
// ones.
func compareChannels(t *testing.T, label string, a, b chaosOutcome, bitwise bool) {
	t.Helper()
	bit := func(what string, x, y []float64) {
		if len(x) != len(y) {
			t.Fatalf("%s: %s length %d vs %d", label, what, len(x), len(y))
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				t.Fatalf("%s: %s[%d] = %v, want %v (bitwise)", label, what, i, y[i], x[i])
			}
		}
	}
	tol := func(what string, x, y []float64) {
		if len(x) != len(y) {
			t.Fatalf("%s: %s length %d vs %d", label, what, len(x), len(y))
		}
		for i := range x {
			if d := math.Abs(x[i] - y[i]); d > 1e-9*math.Abs(x[i])+1e-12 {
				t.Fatalf("%s: %s[%d] = %v, want %v±tol", label, what, i, y[i], x[i])
			}
		}
	}
	for what, x := range a.exact {
		bit(what, x, b.exact[what])
	}
	for what, x := range a.close {
		if bitwise {
			bit(what, x, b.close[what])
		} else {
			tol(what, x, b.close[what])
		}
	}
}

// TestShardChaosDifferential is the acceptance sweep: kill/restart each of
// two workers at each exec boundary of the iteration, and hold every faulted
// run to the unfaulted answers.
func TestShardChaosDifferential(t *testing.T) {
	local := runChaosML(t, chaosShardOptions(), nil)

	shardOpts := func(wrap func(wi int, tr shard.Transport) shard.Transport) flashr.Options {
		opts := chaosShardOptions()
		opts.Sharding = &flashr.ShardConfig{
			Shards: 2, Retries: 8, RetryBackoff: time.Millisecond,
			WrapTransport: wrap,
		}
		return opts
	}
	unfaulted := runChaosML(t, shardOpts(nil), func(s *flashr.Session) {
		if err := s.Coordinator().CheckHandleBalance(); err != nil {
			t.Fatal(err)
		}
	})
	compareChannels(t, "unfaulted-shard vs local", local, unfaulted, false)

	type schedule struct {
		worker int
		before []int64
		after  []int64
	}
	var sweeps []schedule
	for w := 0; w < 2; w++ {
		for _, n := range []int64{1, 2, 3} {
			sweeps = append(sweeps, schedule{worker: w, before: []int64{n}})
		}
		for _, n := range []int64{1, 2} {
			sweeps = append(sweeps, schedule{worker: w, after: []int64{n}})
		}
	}
	for _, sc := range sweeps {
		sc := sc
		name := fmt.Sprintf("w%d-before%v-after%v", sc.worker, sc.before, sc.after)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var chaos *shard.ChaosTransport
			opts := shardOpts(func(wi int, tr shard.Transport) shard.Transport {
				if wi != sc.worker {
					return tr
				}
				ct, err := shard.NewChaosTransport(tr, shard.ChaosConfig{
					Worker:          core.Config{Workers: 4, PartRows: 256},
					CrashBeforeExec: sc.before,
					CrashAfterExec:  sc.after,
				})
				if err != nil {
					t.Fatal(err)
				}
				chaos = ct
				return ct
			})
			got := runChaosML(t, opts, func(s *flashr.Session) {
				coord := s.Coordinator()
				if chaos == nil || chaos.Crashes() == 0 {
					t.Fatal("chaos schedule never fired")
				}
				if coord.Recoveries() == 0 {
					t.Fatal("worker crashed but the coordinator recorded no recovery")
				}
				if err := coord.CheckHandleBalance(); err != nil {
					t.Fatalf("handle leak after recovery: %v", err)
				}
			})
			// The recovery path must reproduce the unfaulted sharded run
			// bit-for-bit, and therefore also match local within tolerance.
			compareChannels(t, "faulted vs unfaulted shard", unfaulted, got, true)
			compareChannels(t, "faulted shard vs local", local, got, false)
		})
	}
}

// TestShardChaosTrace pins the observability half: a recovered pass must
// still produce a well-formed trace, with a shard-recover span on the root
// track counting the recoveries of that pass.
func TestShardChaosTrace(t *testing.T) {
	var chaos *shard.ChaosTransport
	opts := chaosShardOptions()
	opts.Sharding = &flashr.ShardConfig{
		Shards: 2, Retries: 8, RetryBackoff: time.Millisecond,
		WrapTransport: func(wi int, tr shard.Transport) shard.Transport {
			if wi != 1 {
				return tr
			}
			ct, err := shard.NewChaosTransport(tr, shard.ChaosConfig{
				Worker:          core.Config{Workers: 4, PartRows: 256},
				CrashBeforeExec: []int64{2},
			})
			if err != nil {
				t.Fatal(err)
			}
			chaos = ct
			return ct
		},
	}
	s, err := flashr.NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Engine().StartTrace()
	x, err := s.GenerateSeeded(chaosN, chaosP, 17, func(rng *rand.Rand, row []float64) {
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ml.KMeans(s, x, chaosK, ml.KMeansOptions{MaxIter: chaosIters, InitCenters: chaosInitCenters()}); err != nil {
		t.Fatal(err)
	}
	data := s.Engine().StopTrace()
	if chaos == nil || chaos.Crashes() == 0 {
		t.Fatal("chaos schedule never fired")
	}
	if err := trace.Verify(data); err != nil {
		t.Fatalf("recovered pass produced a malformed trace: %v", err)
	}
	var recovers int64
	for _, ev := range data.Events {
		if ev.Kind == trace.KindRecover {
			if ev.Track != trace.TrackRoot {
				t.Fatalf("shard-recover span on track %d, want root", ev.Track)
			}
			recovers += ev.N
		}
	}
	if recovers == 0 {
		t.Fatal("no shard-recover span in the trace of a recovered run")
	}
}
