package flashr

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/safs"
)

// TestSidecarV2RoundTripVerified: SaveNamed persists per-stripe checksums in
// the sidecar; a fresh session restores them, so on-media corruption that
// happens between sessions is caught on the first read and pinpointed by the
// scrub.
func TestSidecarV2RoundTripVerified(t *testing.T) {
	root := t.TempDir()
	dirs := []string{filepath.Join(root, "d0"), filepath.Join(root, "d1")}
	s := emSessionAt(t, dirs)
	x, err := s.Rnorm(2000, 3, 0, 1, 41)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveNamed(x, "m"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := emSessionAt(t, dirs)
	defer s2.Close()
	// Clean scrub first: every stripe verified, none skipped.
	reps, err := s2.VerifyNamed("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 {
		t.Fatalf("flat matrix produced %d reports", len(reps))
	}
	if r := reps[0]; r.Verified != r.Stripes || r.Skipped != 0 || len(r.Corrupt) != 0 {
		t.Fatalf("clean scrub: %+v", r)
	}
	// Corrupt one bit on media, as if a cell decayed while the array was off.
	f, err := s2.FS().OpenFile("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Corrupt(0, 10); err != nil {
		t.Fatal(err)
	}
	// The scrub names the stripe and the drive holding it.
	reps, err = s2.VerifyNamed("m")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps[0].Corrupt) != 1 || reps[0].Corrupt[0].Stripe != 0 {
		t.Fatalf("scrub missed the corruption: %+v", reps[0])
	}
	// And a read through the reopened matrix fails loudly instead of
	// returning corrupt data.
	y, err := s2.OpenNamed("m")
	if err != nil {
		t.Fatal(err)
	}
	_, err = y.AsDense()
	var se *safs.StripeError
	if !errors.As(err, &se) {
		t.Fatalf("read of corrupted matrix: want StripeError, got %v", err)
	}
	if se.File != "m" || se.Stripe != 0 {
		t.Fatalf("StripeError misidentifies the failure: %+v", se)
	}
}

// TestSidecarV1Compat: a v1 sidecar (shape only, no checksum tables) still
// opens; reads are unverified and the scrub reports every stripe skipped.
func TestSidecarV1Compat(t *testing.T) {
	root := t.TempDir()
	dirs := []string{filepath.Join(root, "d0")}
	s := emSessionAt(t, dirs)
	x, err := s.Rnorm(1000, 2, 0, 1, 43)
	if err != nil {
		t.Fatal(err)
	}
	want, err := x.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveNamed(x, "old"); err != nil {
		t.Fatal(err)
	}
	// Rewrite the sidecar as a v1 file would have been written.
	meta := matrixMeta{NRow: 1000, NCol: 2, PartRows: 256, Blocks: 0, DType: "double", Version: 1}
	raw, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := s.FS().Create(metaName("old"), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if err := mf.WriteAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := emSessionAt(t, dirs)
	defer s2.Close()
	y, err := s2.OpenNamed("old")
	if err != nil {
		t.Fatalf("v1 sidecar rejected: %v", err)
	}
	got, err := y.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d mismatch after v1 reopen", i)
		}
	}
	reps, err := s2.VerifyNamed("old")
	if err != nil {
		t.Fatal(err)
	}
	if r := reps[0]; r.Verified != 0 || r.Skipped != r.Stripes {
		t.Fatalf("v1 scrub should skip everything: %+v", r)
	}
}

// TestSidecarRejectsNewerVersion: a sidecar written by a future build fails
// with a version error rather than being misread.
func TestSidecarRejectsNewerVersion(t *testing.T) {
	root := t.TempDir()
	s := emSessionAt(t, []string{filepath.Join(root, "d0")})
	defer s.Close()
	meta := matrixMeta{NRow: 10, NCol: 1, PartRows: 256, DType: "double", Version: metaVersion + 1}
	raw, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := s.FS().Create(metaName("future"), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if err := mf.WriteAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenNamed("future"); err == nil {
		t.Fatal("opened a sidecar from the future")
	}
	if _, err := s.VerifyNamed("future"); err == nil {
		t.Fatal("verified a sidecar from the future")
	}
}

// TestVerifyNamedBlocked: wide matrices scrub one report per column block.
func TestVerifyNamedBlocked(t *testing.T) {
	root := t.TempDir()
	s := emSessionAt(t, []string{filepath.Join(root, "d0"), filepath.Join(root, "d1")})
	defer s.Close()
	x, err := s.Rnorm(600, 40, 0, 1, 47) // > 32 cols → 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveNamed(x, "wide"); err != nil {
		t.Fatal(err)
	}
	reps, err := s.VerifyNamed("wide")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("blocked matrix produced %d reports, want 2", len(reps))
	}
	for _, r := range reps {
		if r.Verified != r.Stripes || len(r.Corrupt) != 0 {
			t.Fatalf("blocked scrub: %+v", r)
		}
	}
}
