// Benchmarks regenerating the paper's evaluation (§4), one family per table
// or figure. Each testing.B benchmark measures a single (algorithm, system)
// cell; cmd/flashr-bench runs the same experiments and prints the full
// tables (see DESIGN.md §4 for the index and EXPERIMENTS.md for recorded
// results).
//
// Scale with FLASHR_BENCH_N (rows, default 50 000) — the paper's datasets
// are billions of rows; the shapes, not the absolute numbers, are the
// reproduction target.
package flashr_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"

	flashr "repro"
	"repro/internal/cluster"
	"repro/internal/dense"
	"repro/internal/eager"
	"repro/internal/workload"
	"repro/ml"
)

var benchN = func() int64 {
	if v := os.Getenv("FLASHR_BENCH_N"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return 50_000
}()

const benchIters = 3 // fixed iterations for iterative algorithms

// --- shared fixtures -------------------------------------------------------

type fixtures struct {
	im, em  *flashr.Session
	ssdDir  string
	criteoX map[*flashr.Session]*flashr.FM
	criteoY map[*flashr.Session]*flashr.FM
	pgX     map[*flashr.Session]*flashr.FM
	denseX  *dense.Dense
	denseY  *dense.Dense
	densePG *dense.Dense
}

var (
	fxOnce sync.Once
	fx     *fixtures
	fxErr  error
)

func getFixtures(b *testing.B) *fixtures {
	b.Helper()
	fxOnce.Do(func() {
		f := &fixtures{
			criteoX: map[*flashr.Session]*flashr.FM{},
			criteoY: map[*flashr.Session]*flashr.FM{},
			pgX:     map[*flashr.Session]*flashr.FM{},
		}
		f.im, fxErr = flashr.NewSession(flashr.Options{})
		if fxErr != nil {
			return
		}
		f.ssdDir, fxErr = os.MkdirTemp("", "flashr-bench-")
		if fxErr != nil {
			return
		}
		f.em, fxErr = newEMSession(f.ssdDir, flashr.FuseCache)
		if fxErr != nil {
			return
		}
		for _, s := range []*flashr.Session{f.im, f.em} {
			x, y, err := workload.Criteo(s, benchN, 42)
			if err != nil {
				fxErr = err
				return
			}
			f.criteoX[s], f.criteoY[s] = x, y
			pg, err := workload.PageGraph(s, benchN, 42)
			if err != nil {
				fxErr = err
				return
			}
			f.pgX[s] = pg
		}
		if f.denseX, fxErr = f.criteoX[f.im].AsDense(); fxErr != nil {
			return
		}
		if f.denseY, fxErr = f.criteoY[f.im].AsDense(); fxErr != nil {
			return
		}
		if f.densePG, fxErr = f.pgX[f.im].AsDense(); fxErr != nil {
			return
		}
		fx = f
	})
	if fxErr != nil {
		b.Fatalf("fixtures: %v", fxErr)
	}
	return fx
}

func newEMSession(root string, fuse flashr.FuseLevel) (*flashr.Session, error) {
	sub, err := os.MkdirTemp(root, "em-")
	if err != nil {
		return nil, err
	}
	drives := make([]string, 4)
	for i := range drives {
		drives[i] = filepath.Join(sub, fmt.Sprintf("ssd-%02d", i))
	}
	return flashr.NewSession(flashr.Options{
		EM: true, SSDDirs: drives, ReadMBps: 1200, WriteMBps: 1000, Fuse: fuse,
	})
}

func initCenters(p, k int) *dense.Dense {
	c := dense.New(k, p)
	for g := 0; g < k; g++ {
		for j := 0; j < p; j++ {
			c.Set(g, j, float64(g)*0.5-float64(k)/4+0.1*float64(j%3))
		}
	}
	return c
}

// runAlgo executes one benchmark algorithm on a FlashR session.
func runAlgo(b *testing.B, f *fixtures, s *flashr.Session, algo string) {
	b.Helper()
	var err error
	switch algo {
	case "correlation":
		_, err = ml.Correlation(f.criteoX[s])
	case "pca":
		_, err = ml.PCA(f.criteoX[s], 8)
	case "naivebayes":
		_, err = ml.NaiveBayes(s, f.criteoX[s], f.criteoY[s], 2)
	case "logistic":
		_, err = ml.LogisticRegressionLBFGS(s, f.criteoX[s], f.criteoY[s],
			ml.LogisticOptions{MaxIter: benchIters, Tol: 1e-12})
	case "kmeans":
		var res *ml.KMeansResult
		res, err = ml.KMeans(s, f.pgX[s], 10,
			ml.KMeansOptions{MaxIter: benchIters, InitCenters: initCenters(workload.PageGraphCols, 10)})
		if err == nil {
			res.Assign.Free()
		}
	case "gmm":
		_, err = ml.GMM(s, f.pgX[s], 4,
			ml.GMMOptions{MaxIter: benchIters, Tol: 1e-12, InitMeans: initCenters(workload.PageGraphCols, 4)})
	default:
		b.Fatalf("unknown algo %s", algo)
	}
	if err != nil {
		b.Fatal(err)
	}
}

// runEagerAlgo executes the identical algorithm on an eager baseline.
func runEagerAlgo(b *testing.B, f *fixtures, e *eager.Engine, algo string) {
	b.Helper()
	switch algo {
	case "correlation":
		e.Correlation(f.denseX)
	case "pca":
		e.PCA(f.denseX, 8)
	case "naivebayes":
		e.NaiveBayes(f.denseX, f.denseY, 2)
	case "logistic":
		e.Logistic(f.denseX, f.denseY, benchIters, 1e-12)
	case "kmeans":
		e.KMeans(f.densePG, initCenters(workload.PageGraphCols, 10), benchIters)
	case "gmm":
		e.GMM(f.densePG, initCenters(workload.PageGraphCols, 4), benchIters, 1e-12)
	default:
		b.Fatalf("unknown algo %s", algo)
	}
}

// --- Figure 7a: FlashR vs H2O-like vs MLlib-like ---------------------------

func BenchmarkFig7a(b *testing.B) {
	f := getFixtures(b)
	for _, algo := range []string{"correlation", "pca", "naivebayes", "logistic", "kmeans", "gmm"} {
		b.Run(algo+"/FlashR-IM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAlgo(b, f, f.im, algo)
			}
		})
		b.Run(algo+"/FlashR-EM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAlgo(b, f, f.em, algo)
			}
		})
		b.Run(algo+"/H2O-like", func(b *testing.B) {
			e := eager.New(eager.StyleH2O, 0)
			for i := 0; i < b.N; i++ {
				runEagerAlgo(b, f, e, algo)
			}
		})
		b.Run(algo+"/MLlib-like", func(b *testing.B) {
			e := eager.New(eager.StyleMLlib, 0)
			for i := 0; i < b.N; i++ {
				runEagerAlgo(b, f, e, algo)
			}
		})
	}
}

// --- Figure 7b: one machine vs a simulated 4-node cluster ------------------

func BenchmarkFig7bCluster(b *testing.B) {
	f := getFixtures(b)
	cfg := cluster.DefaultConfig()
	for _, algo := range []string{"correlation", "naivebayes", "kmeans"} {
		b.Run(algo+"/MLlib-cluster", func(b *testing.B) {
			e := eager.New(eager.StyleMLlib, 0)
			var sim float64
			for i := 0; i < b.N; i++ {
				res := cluster.Run(cfg, e, func() { runEagerAlgo(b, f, e, algo) })
				sim += res.Total.Seconds()
			}
			b.ReportMetric(sim/float64(b.N), "sim-sec/op")
		})
	}
}

// --- Figure 8: FlashR vs Revolution-R-Open-like on MASS workloads ----------

func BenchmarkFig8(b *testing.B) {
	n := benchN / 5
	if n < 2048 {
		n = 2048
	}
	const p = 256
	im, err := flashr.NewSession(flashr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	x, err := im.Rnorm(n, p, 0, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	y := flashr.Mod(flashr.Round(flashr.Mul(flashr.GetCol(x, 0), 100.0)), 2.0)
	if err := y.MaterializeCtx(context.Background()); err != nil {
		b.Fatal(err)
	}
	xd, err := x.AsDense()
	if err != nil {
		b.Fatal(err)
	}
	yd, err := y.AsDense()
	if err != nil {
		b.Fatal(err)
	}
	mu := make([]float64, p)
	sigma := dense.Identity(p)

	b.Run("crossprod/FlashR-IM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := flashr.CrossProd(x).AsDense(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("crossprod/ROpen-like", func(b *testing.B) {
		e := eager.New(eager.StyleROpen, 0)
		for i := 0; i < b.N; i++ {
			e.CrossProd(xd, xd)
		}
	})
	b.Run("mvrnorm/FlashR-IM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := ml.Mvrnorm(im, n, mu, sigma, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if err := out.MaterializeCtx(context.Background()); err != nil {
				b.Fatal(err)
			}
			out.Free()
		}
	})
	b.Run("mvrnorm/ROpen-like", func(b *testing.B) {
		e := eager.New(eager.StyleROpen, 0)
		for i := 0; i < b.N; i++ {
			e.Mvrnorm(xd, mu, sigma)
		}
	})
	b.Run("lda/FlashR-IM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ml.LDA(im, x, y, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lda/ROpen-like", func(b *testing.B) {
		e := eager.New(eager.StyleROpen, 0)
		for i := 0; i < b.N; i++ {
			e.LDA(xd, yd, 2)
		}
	})
}

// --- Figure 9: EM vs IM as p (or k) grows -----------------------------------

func BenchmarkFig9CorrelationSweepP(b *testing.B) {
	n := benchN / 2
	if n < 4096 {
		n = 4096
	}
	root, err := os.MkdirTemp("", "fig9-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(root)
	for _, p := range []int{8, 32, 128} {
		for _, sys := range []string{"IM", "EM"} {
			b.Run(fmt.Sprintf("p=%d/%s", p, sys), func(b *testing.B) {
				var s *flashr.Session
				var err error
				if sys == "IM" {
					s, err = flashr.NewSession(flashr.Options{})
				} else {
					s, err = newEMSession(root, flashr.FuseCache)
				}
				if err != nil {
					b.Fatal(err)
				}
				x, _, err := workload.GaussianBlobs(s, n, p, 2, 2, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ml.Correlation(x); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				x.Free()
			})
		}
	}
}

func BenchmarkFig9KMeansSweepK(b *testing.B) {
	f := getFixtures(b)
	for _, k := range []int{2, 8, 32} {
		for _, sys := range []string{"IM", "EM"} {
			b.Run(fmt.Sprintf("k=%d/%s", k, sys), func(b *testing.B) {
				s := f.im
				if sys == "EM" {
					s = f.em
				}
				init := initCenters(workload.PageGraphCols, k)
				for i := 0; i < b.N; i++ {
					res, err := ml.KMeans(s, f.pgX[s], k,
						ml.KMeansOptions{MaxIter: benchIters, InitCenters: init})
					if err != nil {
						b.Fatal(err)
					}
					res.Assign.Free()
				}
			})
		}
	}
}

// --- Figure 10: fusion ablation on SSDs -------------------------------------

func BenchmarkFig10Fusion(b *testing.B) {
	n := benchN / 2
	if n < 4096 {
		n = 4096
	}
	root, err := os.MkdirTemp("", "fig10-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(root)
	for _, fuse := range []struct {
		name  string
		level flashr.FuseLevel
	}{
		{"base", flashr.FuseNone},
		{"mem-fuse", flashr.FuseMem},
		{"cache-fuse", flashr.FuseCache},
	} {
		for _, algo := range []string{"correlation", "naivebayes", "kmeans"} {
			b.Run(algo+"/"+fuse.name, func(b *testing.B) {
				s, err := newEMSession(root, fuse.level)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				x, y, err := workload.Criteo(s, n, 42)
				if err != nil {
					b.Fatal(err)
				}
				pg, err := workload.PageGraph(s, n, 42)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					switch algo {
					case "correlation":
						_, err = ml.Correlation(x)
					case "naivebayes":
						_, err = ml.NaiveBayes(s, x, y, 2)
					case "kmeans":
						var res *ml.KMeansResult
						res, err = ml.KMeans(s, pg, 10,
							ml.KMeansOptions{MaxIter: benchIters, InitCenters: initCenters(workload.PageGraphCols, 10)})
						if err == nil {
							res.Assign.Free()
						}
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				x.Free()
				y.Free()
				pg.Free()
			})
		}
	}
}

// --- Table 6: out-of-core scalability + memory footprint --------------------

func BenchmarkTable6OutOfCore(b *testing.B) {
	f := getFixtures(b)
	for _, algo := range []string{"correlation", "pca", "naivebayes", "kmeans"} {
		b.Run(algo+"/FlashR-EM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAlgo(b, f, f.em, algo)
			}
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heap-MB")
		})
	}
}

// --- Table 4: empirical I/O complexity --------------------------------------

func BenchmarkTable4IOComplexity(b *testing.B) {
	f := getFixtures(b)
	dataBytes := float64(benchN * workload.CriteoCols * 8)
	for _, algo := range []string{"correlation", "naivebayes"} {
		b.Run(algo+"/passes-over-data", func(b *testing.B) {
			before := f.em.FS().Stats().BytesRead
			for i := 0; i < b.N; i++ {
				runAlgo(b, f, f.em, algo)
			}
			read := float64(f.em.FS().Stats().BytesRead-before) / float64(b.N)
			b.ReportMetric(read/dataBytes, "data-passes/op")
		})
	}
}
