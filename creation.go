package flashr

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/matrix"
)

// Runif creates an n×p matrix of uniform random values in [min, max) — the
// paper's runif.matrix (Table 3). Generation is parallel and deterministic
// for a given seed: each I/O partition derives its own RNG stream.
func (s *Session) Runif(n int64, p int, min, max float64, seed int64) (*FM, error) {
	span := max - min
	m, err := s.eng.Generate(n, p, matrix.F64, func(part int, start int64, rows int, buf []float64) {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(part)))
		for i := range buf {
			buf[i] = min + span*rng.Float64()
		}
	})
	if err != nil {
		return nil, err
	}
	return s.bigFM(m), nil
}

// Rnorm creates an n×p matrix of N(mean, sd²) values — rnorm.matrix.
func (s *Session) Rnorm(n int64, p int, mean, sd float64, seed int64) (*FM, error) {
	m, err := s.eng.Generate(n, p, matrix.F64, func(part int, start int64, rows int, buf []float64) {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(part)))
		for i := range buf {
			buf[i] = mean + sd*rng.NormFloat64()
		}
	})
	if err != nil {
		return nil, err
	}
	return s.bigFM(m), nil
}

// ConstMat creates an n×p virtual constant matrix (zero storage, zero I/O —
// rep.int(1, n) in the paper's k-means compiles to this).
func (s *Session) ConstMat(n int64, p int, v float64) *FM {
	return s.bigFM(core.NewConst(n, p, v))
}

// Ones is ConstMat(n, p, 1).
func (s *Session) Ones(n int64, p int) *FM { return s.ConstMat(n, p, 1) }

// Zeros is ConstMat(n, p, 0).
func (s *Session) Zeros(n int64, p int) *FM { return s.ConstMat(n, p, 0) }

// SeqVec creates an n×1 matrix holding 0, 1, …, n-1.
func (s *Session) SeqVec(n int64) (*FM, error) {
	m, err := s.eng.Generate(n, 1, matrix.F64, func(part int, start int64, rows int, buf []float64) {
		for r := 0; r < rows; r++ {
			buf[r] = float64(start + int64(r))
		}
	})
	if err != nil {
		return nil, err
	}
	return s.bigFM(m), nil
}

// GenerateMat creates a materialized n×p matrix by calling gen(i, j) for
// every element (generation runs partition-parallel).
func (s *Session) GenerateMat(n int64, p int, gen func(i int64, j int) float64) (*FM, error) {
	m, err := s.eng.Generate(n, p, matrix.F64, func(part int, start int64, rows int, buf []float64) {
		for r := 0; r < rows; r++ {
			for c := 0; c < p; c++ {
				buf[r*p+c] = gen(start+int64(r), c)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return s.bigFM(m), nil
}

// GenerateSeeded creates a materialized n×p matrix where every row is
// filled by fill with a private RNG derived deterministically from (seed,
// row index). Two matrices generated with the same seed see identical
// per-row streams, so features and labels built from the same seed stay
// consistent — regardless of partitioning or scheduling.
func (s *Session) GenerateSeeded(n int64, p int, seed int64, fill func(rng *rand.Rand, row []float64)) (*FM, error) {
	m, err := s.eng.Generate(n, p, matrix.F64, func(part int, start int64, rows int, buf []float64) {
		src := &splitmixSource{}
		rng := rand.New(src)
		for r := 0; r < rows; r++ {
			src.state = uint64(mix64(seed, start+int64(r)))
			fill(rng, buf[r*p:(r+1)*p])
		}
	})
	if err != nil {
		return nil, err
	}
	return s.bigFM(m), nil
}

// splitmixSource is a cheap reseedable rand.Source64 (math/rand's default
// source pays a ~600-word seeding loop, far too slow to reseed per row).
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// mix64 combines a seed and a row index with a splitmix64 finalizer so
// nearby rows get decorrelated RNG streams.
func mix64(seed, row int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(row) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// FromDense copies an in-memory dense matrix into a tall engine matrix.
func (s *Session) FromDense(d *dense.Dense) (*FM, error) {
	m, err := s.eng.FromDense(d)
	if err != nil {
		return nil, err
	}
	return s.bigFM(m), nil
}

// rowsShapeErr validates row slices destined for a matrix: at least one
// row, all rows the same width (dense.FromRows panics on ragged input; the
// public creation surface reports it as a typed error instead).
func rowsShapeErr(op string, rows [][]float64) error {
	if len(rows) == 0 {
		return errf(op, nil, "no rows")
	}
	w := len(rows[0])
	for i, r := range rows {
		if len(r) != w {
			return errf(op, nil, "ragged rows: row %d has %d values, row 0 has %d", i, len(r), w)
		}
	}
	return nil
}

// TryFromRows builds a tall matrix from row slices, reporting ragged or
// empty input as a typed error.
func (s *Session) TryFromRows(rows [][]float64) (*FM, error) {
	if err := rowsShapeErr("from.rows", rows); err != nil {
		return nil, err
	}
	return s.FromDense(dense.FromRows(rows))
}

// FromRows builds a tall matrix from row slices.
func (s *Session) FromRows(rows [][]float64) (*FM, error) {
	return s.TryFromRows(rows)
}

// FromVec builds an n×1 tall matrix from a slice.
func (s *Session) FromVec(v []float64) (*FM, error) {
	return s.FromDense(dense.FromSlice(len(v), 1, v))
}

// Small wraps an in-memory matrix as a small FM (sink-class operand, e.g.
// initial cluster centers or model weights).
func (s *Session) Small(d *dense.Dense) *FM { return s.smallFM(d) }

// TrySmallFromRows builds a small FM from row slices, reporting ragged or
// empty input as a typed error.
func (s *Session) TrySmallFromRows(rows [][]float64) (*FM, error) {
	if err := rowsShapeErr("small.from.rows", rows); err != nil {
		return nil, err
	}
	return s.smallFM(dense.FromRows(rows)), nil
}

// SmallFromRows is TrySmallFromRows's panicking shorthand.
func (s *Session) SmallFromRows(rows [][]float64) *FM {
	return must(s.TrySmallFromRows(rows))
}

// LoadCSV reads a delimiter-separated text file of numbers into a tall
// matrix — the paper's load.dense (Table 3). sep "" splits on any
// whitespace. The file streams through partition-sized buffers, so matrices
// larger than memory load directly onto the SSD array in an EM session.
func (s *Session) LoadCSV(path, sep string) (*FM, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// First pass: count rows and validate the column count.
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int64
	ncol := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		c := countFields(line, sep)
		if ncol == -1 {
			ncol = c
		} else if c != ncol {
			return nil, fmt.Errorf("flashr: %s row %d has %d fields, want %d", path, n+1, c, ncol)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("flashr: %s is empty", path)
	}
	st, err := s.eng.NewStore(n, ncol)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	sc = bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	partRows := st.PartRows()
	buf := make([]float64, partRows*ncol)
	row := 0
	part := 0
	flush := func(rows int) error {
		if rows == 0 {
			return nil
		}
		if err := st.WritePart(part, buf[:rows*ncol]); err != nil {
			return err
		}
		part++
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := parseFields(line, sep, buf[row*ncol:(row+1)*ncol]); err != nil {
			return nil, fmt.Errorf("flashr: %s: %w", path, err)
		}
		row++
		if row == partRows {
			if err := flush(row); err != nil {
				return nil, err
			}
			row = 0
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(row); err != nil {
		return nil, err
	}
	return s.bigFM(core.NewLeaf(st, matrix.F64)), nil
}

// SaveCSV materializes x and writes it as delimiter-separated text.
func SaveCSV(x *FM, path, sep string) error {
	if sep == "" {
		sep = ","
	}
	d, err := x.AsDense()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i := 0; i < d.R; i++ {
		row := d.Row(i)
		for j, v := range row {
			if j > 0 {
				w.WriteString(sep)
			}
			w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func countFields(line, sep string) int {
	if sep == "" {
		return len(strings.Fields(line))
	}
	return strings.Count(line, sep) + 1
}

func parseFields(line, sep string, dst []float64) error {
	var parts []string
	if sep == "" {
		parts = strings.Fields(line)
	} else {
		parts = strings.Split(line, sep)
	}
	if len(parts) != len(dst) {
		return fmt.Errorf("row has %d fields, want %d", len(parts), len(dst))
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("field %d: %w", i, err)
		}
		dst[i] = v
	}
	return nil
}
