package flashr

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dense"
)

// logisticWeights runs iters gradient steps of logistic regression on an
// n×p uniform design generated from seed, returning the final weights. Each
// iteration forces one fused pass (streaming X·w → sigmoid → residual →
// Gramian gradient sink), the shape of the paper's Figure 7 workloads.
func logisticWeights(s *Session, seed int64, n int64, p, iters int) ([]float64, error) {
	X, err := s.Runif(n, p, -1, 1, seed)
	if err != nil {
		return nil, err
	}
	y, err := s.Runif(n, 1, 0, 1, seed+101)
	if err != nil {
		return nil, err
	}
	w := make([]float64, p)
	for it := 0; it < iters; it++ {
		wm := s.Small(dense.FromSlice(p, 1, append([]float64(nil), w...)))
		pr := Sigmoid(MatMul(X, wm))
		grad, err := CrossProd2(X, Sub(pr, y)).AsDense()
		if err != nil {
			return nil, err
		}
		for j := 0; j < p; j++ {
			w[j] -= 0.05 / float64(n) * grad.Data[j]
		}
	}
	return w, nil
}

// TestConcurrentSessionsBitIdentical is the concurrency stress test: N
// sessions sharing one engine run iterative logistic regression at the same
// time (under -race in CI), and every session's final weights must be
// bit-identical to a serial run of the same seed — concurrent admission,
// fair-queued I/O, and the shared intern table must not perturb results.
func TestConcurrentSessionsBitIdentical(t *testing.T) {
	const (
		nSessions = 4
		iters     = 5
		n         = int64(4096)
		p         = 3
	)
	parent, err := NewSession(Options{Workers: 4, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()

	results := make([][]float64, nSessions)
	errs := make([]error, nSessions)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < nSessions; i++ {
		child, err := NewSession(WithSharedEngine(parent), WithOwner(fmt.Sprintf("sess-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, cs *Session) {
			defer wg.Done()
			<-start
			results[i], errs[i] = logisticWeights(cs, int64(1000+i), n, p, iters)
		}(i, child)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	// Serial reference: the same seeds on a fresh single-session engine.
	for i := 0; i < nSessions; i++ {
		ref, err := NewSession(Options{Workers: 4, PartRows: 256})
		if err != nil {
			t.Fatal(err)
		}
		want, err := logisticWeights(ref, int64(1000+i), n, p, iters)
		ref.Close()
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if results[i][j] != want[j] {
				t.Fatalf("session %d weight %d = %g, serial run got %g (not bit-identical)",
					i, j, results[i][j], want[j])
			}
		}
	}
}

// TestConcurrentStatsAttribution checks exact per-session accounting: with
// every pass on the engine submitted by some session, the per-session
// MaterializeStats totals must sum to the engine-lifetime total, counter by
// counter.
func TestConcurrentStatsAttribution(t *testing.T) {
	const nSessions = 3
	parent, err := NewSession(Options{Workers: 4, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()

	children := make([]*Session, nSessions)
	errs := make([]error, nSessions)
	var wg sync.WaitGroup
	for i := range children {
		children[i], err = NewSession(WithSharedEngine(parent), WithOwner(fmt.Sprintf("c%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = logisticWeights(children[i], int64(50+i), 3000, 2, 4)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	var sum MaterializeStats
	for _, c := range children {
		sum.Add(c.TotalMaterializeStats())
	}
	eng := parent.Engine().TotalMaterializeStats()
	type cmp struct {
		name     string
		ses, eng int64
	}
	for _, c := range []cmp{
		{"Passes", sum.Passes, eng.Passes},
		{"Parts", sum.Parts, eng.Parts},
		{"Chunks", sum.Chunks, eng.Chunks},
		{"BytesRead", sum.BytesRead, eng.BytesRead},
		{"BytesWritten", sum.BytesWritten, eng.BytesWritten},
		{"WriteJobs", sum.WriteJobs, eng.WriteJobs},
		{"NodesExecuted", sum.NodesExecuted, eng.NodesExecuted},
		{"CacheHits", sum.CacheHits, eng.CacheHits},
		{"CacheMisses", sum.CacheMisses, eng.CacheMisses},
	} {
		if c.ses != c.eng {
			t.Errorf("%s: per-session sum %d != engine total %d", c.name, c.ses, c.eng)
		}
	}
	if sum.Passes == 0 || sum.Parts == 0 {
		t.Fatalf("workload left no trace in the stats (passes=%d parts=%d)", sum.Passes, sum.Parts)
	}
}

// TestConcurrentFairness runs equal-weight sessions with identical
// read-bound workloads against a bandwidth-throttled SSD array and asserts
// the fair queueing keeps completion times within a 3× envelope — no
// session starves while another streams.
func TestConcurrentFairness(t *testing.T) {
	const (
		nSessions = 4
		iters     = 6
		n         = int64(1 << 15)
		p         = 4
	)
	dirs := make([]string, 4)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("d%d", i))
	}
	// DisableCSE so every iteration re-reads its matrix from the array
	// instead of serving the fold from the result cache.
	parent, err := NewSession(Options{
		Workers: 4, PartRows: 1024, EM: true, SSDDirs: dirs,
		ReadMBps: 48, DisableCSE: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()

	type sess struct {
		s *Session
		x *FM
	}
	sessions := make([]sess, nSessions)
	for i := range sessions {
		cs, err := NewSession(WithSharedEngine(parent), WithOwner(fmt.Sprintf("fair-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		x, err := cs.Runif(n, p, 0, 1, int64(300+i))
		if err != nil {
			t.Fatal(err)
		}
		if err := x.MaterializeCtx(context.Background()); err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess{s: cs, x: x}
	}

	durations := make([]time.Duration, nSessions)
	errs := make([]error, nSessions)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			t0 := time.Now()
			for it := 0; it < iters; it++ {
				if _, err := Sum(sessions[i].x).Float(); err != nil {
					errs[i] = err
					return
				}
			}
			durations[i] = time.Since(t0)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	minD, maxD := durations[0], durations[0]
	for _, d := range durations[1:] {
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	t.Logf("per-session durations: %v", durations)
	if minD <= 0 {
		t.Fatalf("zero-duration session (durations %v)", durations)
	}
	if ratio := float64(maxD) / float64(minD); ratio > 3 {
		t.Fatalf("completion ratio %.2f exceeds fairness bound 3 (durations %v)", ratio, durations)
	}
	// Every session must have moved its own bytes: per-pass attribution is
	// nonzero and the engine total matches the per-session sum.
	var sum int64
	for i := range sessions {
		br := sessions[i].s.TotalMaterializeStats().BytesRead
		if br == 0 {
			t.Fatalf("session %d read no bytes", i)
		}
		sum += br
	}
	if eng := parent.Engine().TotalMaterializeStats().BytesRead; sum != eng {
		t.Fatalf("per-session BytesRead sum %d != engine total %d", sum, eng)
	}
}
