package flashr

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dense"
)

// testSessions builds an in-memory and an external-memory session with small
// partitions so modest matrices still span many partitions.
func testSessions(t *testing.T) map[string]*Session {
	t.Helper()
	out := map[string]*Session{}
	im, err := NewSession(Options{Workers: 4, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	out["im"] = im
	dirs := []string{
		filepath.Join(t.TempDir(), "d0"),
		filepath.Join(t.TempDir(), "d1"),
	}
	em, err := NewSession(Options{Workers: 4, PartRows: 256, EM: true, SSDDirs: dirs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { em.Close() })
	out["em"] = em
	return out
}

func TestArithmeticAndReductions(t *testing.T) {
	for name, s := range testSessions(t) {
		x, err := s.Runif(2000, 4, 0, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		// sum((2x - x) - x) == 0 exactly.
		z := Sub(Sub(Mul(x, 2.0), x), x)
		if v := Sum(z).MustFloat(); v != 0 {
			t.Fatalf("%s: residual %g", name, v)
		}
		// mean in [0.45, 0.55] for U(0,1).
		if v := Mean(x).MustFloat(); v < 0.45 || v > 0.55 {
			t.Fatalf("%s: mean %g", name, v)
		}
		// colSums + rowSums agree with total.
		total := Sum(x).MustFloat()
		cs, err := ColSums(x).AsVector()
		if err != nil {
			t.Fatal(err)
		}
		var csum float64
		for _, v := range cs {
			csum += v
		}
		if math.Abs(csum-total) > 1e-8 {
			t.Fatalf("%s: colsums %g != %g", name, csum, total)
		}
		rtot := Sum(RowSums(x)).MustFloat()
		if math.Abs(rtot-total) > 1e-8 {
			t.Fatalf("%s: rowsums total %g != %g", name, rtot, total)
		}
		// min <= mean <= max; comparisons produce 0/1.
		mn, mx := Min(x).MustFloat(), Max(x).MustFloat()
		if !(mn <= total/float64(x.Length()) && total/float64(x.Length()) <= mx) {
			t.Fatalf("%s: min/mean/max ordering", name)
		}
		frac := Mean(Lt(x, 0.5)).MustFloat()
		if frac < 0.4 || frac > 0.6 {
			t.Fatalf("%s: P(x<0.5) = %g", name, frac)
		}
	}
}

func TestTransposeAndMatMul(t *testing.T) {
	for name, s := range testSessions(t) {
		xd := dense.New(600, 5)
		rng := rand.New(rand.NewSource(11))
		for i := range xd.Data {
			xd.Data[i] = rng.NormFloat64()
		}
		x, err := s.FromDense(xd)
		if err != nil {
			t.Fatal(err)
		}
		// Gramian via t(X) %*% X equals crossprod and the dense reference.
		g1, err := MatMul(x.T(), x).AsDense()
		if err != nil {
			t.Fatal(err)
		}
		g2, err := CrossProd(x).AsDense()
		if err != nil {
			t.Fatal(err)
		}
		want := dense.CrossProd(xd, xd)
		if !dense.Equalish(g1, want, 1e-9) || !dense.Equalish(g2, want, 1e-9) {
			t.Fatalf("%s: gramian mismatch", name)
		}
		// X %*% w with small w.
		w := s.SmallFromRows([][]float64{{1}, {2}, {-1}, {0.5}, {3}})
		xw, err := MatMul(x, w).AsDense()
		if err != nil {
			t.Fatal(err)
		}
		if !dense.Equalish(xw, dense.MatMul(xd, w.mustSmall()), 1e-9) {
			t.Fatalf("%s: X%%*%%w mismatch", name)
		}
		// Double transpose is identity.
		v := Sum(x.T().T()).MustFloat()
		if math.Abs(v-xd.Sum()) > 1e-8 {
			t.Fatalf("%s: t(t(x)) sum", name)
		}
		// t(x) shape.
		if r, c := x.T().Dim(); r != 5 || c != 600 {
			t.Fatalf("%s: t dims %dx%d", name, r, c)
		}
	}
}

// TestLogisticGradientExpression runs the Figure 2 gradient expression
// through the public API and compares against a dense reference.
func TestLogisticGradientExpression(t *testing.T) {
	for name, s := range testSessions(t) {
		const n, p = 1000, 6
		rng := rand.New(rand.NewSource(13))
		xd := dense.New(n, p)
		for i := range xd.Data {
			xd.Data[i] = rng.NormFloat64()
		}
		yd := dense.New(n, 1)
		for i := range yd.Data {
			yd.Data[i] = float64(rng.Intn(2))
		}
		x, _ := s.FromDense(xd)
		y, _ := s.FromDense(yd)
		w := s.SmallFromRows([][]float64{{0.1, -0.2, 0.3, 0, 0.5, -0.1}})
		// grad = t(X) %*% (1/(1+exp(-X %*% t(w))) - y) / n
		xb := MatMul(x, w.T())
		prob := Div(1.0, Add(Exp(Neg(xb)), 1.0))
		grad := Div(MatMul(x.T(), Sub(prob, y)), float64(n))
		gd, err := grad.AsDense()
		if err != nil {
			t.Fatal(err)
		}
		// Dense reference.
		want := dense.New(p, 1)
		for i := 0; i < n; i++ {
			var dot float64
			for j := 0; j < p; j++ {
				dot += xd.At(i, j) * w.mustSmall().At(0, j)
			}
			e := 1/(1+math.Exp(-dot)) - yd.At(i, 0)
			for j := 0; j < p; j++ {
				want.Data[j] += xd.At(i, j) * e / n
			}
		}
		if !dense.Equalish(gd, want, 1e-9) {
			t.Fatalf("%s: gradient mismatch", name)
		}
	}
}

// TestKMeansIterationExpression runs one Figure 3 k-means iteration through
// the GenOp API and checks against a dense reference.
func TestKMeansIterationExpression(t *testing.T) {
	for name, s := range testSessions(t) {
		const n, p, k = 900, 4, 3
		rng := rand.New(rand.NewSource(17))
		xd := dense.New(n, p)
		for i := range xd.Data {
			xd.Data[i] = rng.NormFloat64()
		}
		cd := dense.New(k, p)
		for i := range cd.Data {
			cd.Data[i] = rng.NormFloat64()
		}
		x, _ := s.FromDense(xd)
		c := s.Small(cd)
		// D = inner.prod(X, t(C), "euclidean", "+"); I = which.min per row.
		d := InnerProd(x, c.T(), "euclidean", "+")
		i := RowWhichMin(d).SetCache(false)
		cnt := GroupByRow(s.Ones(n, 1), i, k, "+")
		newC := Sweep(GroupByRow(x, i, k, "+"), 1, cnt, "/")
		got, err := newC.AsDense()
		if err != nil {
			t.Fatal(err)
		}
		// Dense reference.
		wantCnt := make([]float64, k)
		want := dense.New(k, p)
		for r := 0; r < n; r++ {
			best, bd := 0, math.Inf(1)
			for g := 0; g < k; g++ {
				var dist float64
				for j := 0; j < p; j++ {
					dd := xd.At(r, j) - cd.At(g, j)
					dist += dd * dd
				}
				if dist < bd {
					bd, best = dist, g
				}
			}
			wantCnt[best]++
			for j := 0; j < p; j++ {
				want.Data[best*p+j] += xd.At(r, j)
			}
		}
		for g := 0; g < k; g++ {
			for j := 0; j < p; j++ {
				want.Data[g*p+j] /= wantCnt[g]
			}
		}
		if !dense.Equalish(got, want, 1e-9) {
			t.Fatalf("%s: centers mismatch", name)
		}
		if !i.big.Materialized() {
			t.Fatalf("%s: set.cache did not persist assignments", name)
		}
	}
}

func TestSweepAndBroadcast(t *testing.T) {
	for name, s := range testSessions(t) {
		xd := dense.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
		x, _ := s.FromDense(xd)
		colMeans := s.SmallFromRows([][]float64{{4, 5}})
		centered, err := Sweep(x, 2, colMeans, "-").AsDense()
		if err != nil {
			t.Fatal(err)
		}
		if centered.At(0, 0) != -3 || centered.At(3, 1) != 3 {
			t.Fatalf("%s: sweep margin 2: %v", name, centered.Data)
		}
		rv, _ := s.FromVec([]float64{1, 2, 3, 4})
		scaled, err := Sweep(x, 1, rv, "/").AsDense()
		if err != nil {
			t.Fatal(err)
		}
		if scaled.At(1, 0) != 1.5 || scaled.At(3, 1) != 2 {
			t.Fatalf("%s: sweep margin 1: %v", name, scaled.Data)
		}
	}
}

func TestCumulativeAndTable(t *testing.T) {
	for name, s := range testSessions(t) {
		v, _ := s.FromVec([]float64{1, 2, 3, 4, 5})
		cs, err := Cumsum(v).AsVector()
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{1, 3, 6, 10, 15}
		for i := range want {
			if cs[i] != want[i] {
				t.Fatalf("%s: cumsum %v", name, cs)
			}
		}
		labels, _ := s.FromVec([]float64{0, 1, 0, 1, 2, 0})
		keys, counts, err := TableOf(labels)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 3 || counts[0] != 3 || counts[1] != 2 || counts[2] != 1 {
			t.Fatalf("%s: table %v %v", name, keys, counts)
		}
		u, err := Unique(labels)
		if err != nil || len(u) != 3 {
			t.Fatalf("%s: unique %v %v", name, u, err)
		}
	}
}

func TestIndexingConcat(t *testing.T) {
	for name, s := range testSessions(t) {
		xd := dense.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
		x, _ := s.FromDense(xd)
		sub, err := GetCols(x, []int{2, 0}).AsDense()
		if err != nil {
			t.Fatal(err)
		}
		if sub.At(0, 0) != 3 || sub.At(1, 1) != 4 {
			t.Fatalf("%s: getcols %v", name, sub.Data)
		}
		both, err := Cbind(x, GetCol(x, 1)).AsDense()
		if err != nil {
			t.Fatal(err)
		}
		if both.C != 4 || both.At(1, 3) != 5 {
			t.Fatalf("%s: cbind %v", name, both.Data)
		}
		stacked, err := Rbind(x, x).AsDense()
		if err != nil {
			t.Fatal(err)
		}
		if stacked.R != 4 || stacked.At(3, 2) != 6 {
			t.Fatalf("%s: rbind", name)
		}
		if v, err := x.Element(1, 2); err != nil || v != 6 {
			t.Fatalf("%s: element %g %v", name, v, err)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewMemSession()
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	if err := os.WriteFile(path, []byte("1,2.5,3\n-4,5,6e-1\n7,8,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	x, err := s.LoadCSV(path, ",")
	if err != nil {
		t.Fatal(err)
	}
	if r, c := x.Dim(); r != 3 || c != 3 {
		t.Fatalf("dims %dx%d", r, c)
	}
	if v, _ := x.Element(1, 2); v != 0.6 {
		t.Fatalf("parsed %g", v)
	}
	out := filepath.Join(dir, "o.csv")
	if err := SaveCSV(x, out, ","); err != nil {
		t.Fatal(err)
	}
	y, err := s.LoadCSV(out, ",")
	if err != nil {
		t.Fatal(err)
	}
	diff := Max(Abs(Sub(x, y))).MustFloat()
	if diff != 0 {
		t.Fatalf("round trip diff %g", diff)
	}
}

// TestBatchedSinkMaterialization asserts that multiple pending sinks flush
// in a single fused pass (DAG grown as large as possible, §3.4).
func TestBatchedSinkMaterialization(t *testing.T) {
	s := NewMemSession()
	x, err := s.Runif(4000, 3, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := s.eng.Stats().Passes.Load()
	a := Sum(x)
	b := ColSums(x)
	c := Max(x)
	// Forcing one sink materializes all three in one pass.
	_ = a.MustFloat()
	if got := s.eng.Stats().Passes.Load() - before; got != 1 {
		t.Fatalf("batched flush used %d passes, want 1", got)
	}
	if b.sink == nil && b.small == nil {
		t.Fatal("colSums lost")
	}
	if !b.IsVirtual() == false && false {
		t.Fatal("unreachable")
	}
	if v := c.MustFloat(); v <= 0 || v > 1 {
		t.Fatalf("max %g", v)
	}
	bv, err := b.AsVector()
	if err != nil || len(bv) != 3 {
		t.Fatalf("colsums %v %v", bv, err)
	}
	// No further passes were needed for b and c.
	if got := s.eng.Stats().Passes.Load() - before; got != 1 {
		t.Fatalf("forcing remaining sinks re-ran the DAG (%d passes)", got)
	}
}

func TestFuseLevelsAgree(t *testing.T) {
	var ref float64
	for i, fuse := range []core.FuseLevel{FuseCache, FuseMem, FuseNone} {
		s, err := NewSession(Options{Workers: 3, PartRows: 256, Fuse: fuse})
		if err != nil {
			t.Fatal(err)
		}
		x, err := s.Runif(3000, 5, -1, 1, 99)
		if err != nil {
			t.Fatal(err)
		}
		v := Sum(Sqrt(Abs(Mul(x, x)))).MustFloat()
		if i == 0 {
			ref = v
		} else if math.Abs(v-ref) > 1e-8 {
			t.Fatalf("fuse level %v result %g != %g", fuse, v, ref)
		}
	}
}

func TestConstMatrices(t *testing.T) {
	s := NewMemSession()
	ones := s.Ones(5000, 2)
	if v := Sum(ones).MustFloat(); v != 10000 {
		t.Fatalf("sum of ones %g", v)
	}
	seq, err := s.SeqVec(1000)
	if err != nil {
		t.Fatal(err)
	}
	if v := Sum(seq).MustFloat(); v != 999*1000/2 {
		t.Fatalf("sum of seq %g", v)
	}
}
