package ml

import (
	"fmt"
	"math"

	flashr "repro"
	"repro/internal/dense"
	"repro/internal/linalg"
)

// Mvrnorm draws n samples from a multivariate normal N(mu, Sigma) as an n×p
// tall matrix — the MASS::mvrnorm port the paper benchmarks against
// Revolution R Open (Fig. 8). Following MASS, X = μ + Z·Σ^{1/2} with the
// symmetric eigendecomposition square root; the standard-normal draw and the
// p×p multiplication stream through the engine (computation O(n·p²), I/O
// O(n·p), Table 4).
func Mvrnorm(s *flashr.Session, n int64, mu []float64, sigma *dense.Dense, seed int64) (*flashr.FM, error) {
	p := len(mu)
	if sigma.R != p || sigma.C != p {
		return nil, fmt.Errorf("ml: mvrnorm Sigma is %dx%d, want %dx%d", sigma.R, sigma.C, p, p)
	}
	root, err := linalg.SqrtSPD(sigma)
	if err != nil {
		return nil, err
	}
	z, err := s.Rnorm(n, p, 0, 1, seed)
	if err != nil {
		return nil, err
	}
	// X = Z %*% Σ^{1/2} + μ (the sweep fuses with the multiply).
	return flashr.Sweep(flashr.MatMul(z, s.Small(root)), 2,
		s.Small(dense.FromSlice(1, p, append([]float64(nil), mu...))), "+"), nil
}

// LDAModel is linear discriminant analysis in the MASS style: Gaussian
// classes sharing a pooled within-class covariance (§4.1; computation
// O(n·p²), I/O O(n·p), Table 4).
type LDAModel struct {
	K        int
	Priors   []float64
	Means    *dense.Dense // k×p class means
	PooledW  *dense.Dense // p×p pooled within-class covariance
	discrimW *dense.Dense // p×k: W⁻¹ μ_cᵀ per class
	discrimB []float64    // per-class constant −½ μᵀW⁻¹μ + log π
}

// LDA trains the classifier from tall data x and 0-based labels y. Training
// is two fused passes: class counts/sums plus the global Gramian in one,
// nothing further over the data (the pooled covariance comes from the
// Gramian minus class-mean outer products).
func LDA(s *flashr.Session, x, y *flashr.FM, k int) (*LDAModel, error) {
	if err := validateLabels(y, k); err != nil {
		return nil, err
	}
	n := x.NRow()
	p := int(x.NCol())
	cnt := flashr.GroupByRow(s.Ones(n, 1), y, k, "+")
	sums := flashr.GroupByRow(x, y, k, "+")
	gram := flashr.CrossProd(x)
	cd, err := cnt.AsDense() // forces all three sinks in one pass
	if err != nil {
		return nil, err
	}
	sd, err := sums.AsDense()
	if err != nil {
		return nil, err
	}
	gd, err := gram.AsDense()
	if err != nil {
		return nil, err
	}
	m := &LDAModel{K: k, Priors: make([]float64, k), Means: dense.New(k, p)}
	for c := 0; c < k; c++ {
		nc := cd.Data[c]
		if nc == 0 {
			return nil, fmt.Errorf("ml: LDA class %d is empty", c)
		}
		m.Priors[c] = nc / float64(n)
		for j := 0; j < p; j++ {
			m.Means.Set(c, j, sd.At(c, j)/nc)
		}
	}
	// Pooled within-class covariance: (XᵀX − Σ_c n_c μ_c μ_cᵀ)/(n−k).
	w := dense.New(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			v := gd.At(i, j)
			for c := 0; c < k; c++ {
				v -= cd.Data[c] * m.Means.At(c, i) * m.Means.At(c, j)
			}
			w.Set(i, j, v/float64(n-int64(k)))
		}
	}
	m.PooledW = ridge(w)
	l, err := linalg.Cholesky(m.PooledW)
	if err != nil {
		return nil, fmt.Errorf("ml: LDA pooled covariance not PD: %w", err)
	}
	// Discriminants: δ_c(x) = xᵀ W⁻¹ μ_c − ½ μ_cᵀ W⁻¹ μ_c + log π_c.
	wInvMuT := linalg.SolveChol(l, m.Means.T()) // p×k
	m.discrimW = wInvMuT
	m.discrimB = make([]float64, k)
	for c := 0; c < k; c++ {
		var quad float64
		for j := 0; j < p; j++ {
			quad += m.Means.At(c, j) * wInvMuT.At(j, c)
		}
		m.discrimB[c] = -0.5*quad + math.Log(m.Priors[c])
	}
	return m, nil
}

// Scores returns the lazy n×k matrix of class discriminants.
func (m *LDAModel) Scores(s *flashr.Session, x *flashr.FM) *flashr.FM {
	lin := flashr.MatMul(x, s.Small(m.discrimW)) // n×k
	return flashr.Sweep(lin, 2, s.Small(dense.FromSlice(1, m.K, append([]float64(nil), m.discrimB...))), "+")
}

// Predict returns the 0-based predicted class per row.
func (m *LDAModel) Predict(s *flashr.Session, x *flashr.FM) *flashr.FM {
	return flashr.RowWhichMax(m.Scores(s, x))
}
