package ml

import (
	"fmt"
	"sort"

	flashr "repro"
)

// ConfusionMatrix computes the k×k confusion matrix of 0-based predictions
// against 0-based truth in a single fused pass: the pair (truth, pred) is
// encoded as truth·k + pred elementwise and counted with groupby.row.
func ConfusionMatrix(s *flashr.Session, pred, truth *flashr.FM, k int) ([][]int64, error) {
	if pred.NRow() != truth.NRow() || pred.NCol() != 1 || truth.NCol() != 1 {
		return nil, fmt.Errorf("ml: confusion needs matching n×1 label vectors")
	}
	code := flashr.Add(flashr.Mul(truth, float64(k)), pred) // n×1 in [0, k²)
	cnt := flashr.GroupByRow(s.Ones(pred.NRow(), 1), code, k*k, "+")
	d, err := cnt.AsDense()
	if err != nil {
		return nil, err
	}
	out := make([][]int64, k)
	for t := 0; t < k; t++ {
		out[t] = make([]int64, k)
		for p := 0; p < k; p++ {
			out[t][p] = int64(d.At(t*k+p, 0))
		}
	}
	return out, nil
}

// AUC computes the area under the ROC curve for binary labels and
// predicted scores. Scores and labels materialize once; the sort is on the
// gathered (n) values, matching how R's ROC utilities work.
func AUC(score, y *flashr.FM) (float64, error) {
	sv, err := score.AsVector()
	if err != nil {
		return 0, err
	}
	yv, err := y.AsVector()
	if err != nil {
		return 0, err
	}
	if len(sv) != len(yv) {
		return 0, fmt.Errorf("ml: AUC length mismatch %d vs %d", len(sv), len(yv))
	}
	type pair struct {
		s float64
		y float64
	}
	ps := make([]pair, len(sv))
	for i := range sv {
		ps[i] = pair{sv[i], yv[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s < ps[j].s })
	// Rank-sum (Mann-Whitney) formulation with midranks for ties.
	var nPos, nNeg, rankSum float64
	i := 0
	rank := 1.0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		mid := (rank + rank + float64(j-i) - 1) / 2
		for k := i; k < j; k++ {
			if ps[k].y != 0 {
				rankSum += mid
				nPos++
			} else {
				nNeg++
			}
		}
		rank += float64(j - i)
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("ml: AUC needs both classes present")
	}
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg), nil
}

// TrainTestSplit deterministically splits rows into train and test index
// sets using a hash of the row index (no data pass at all; callers gather
// with GetRows or build masks).
func TrainTestSplit(n int64, testFraction float64, seed int64) (train, test []int64) {
	if testFraction < 0 {
		testFraction = 0
	}
	if testFraction > 1 {
		testFraction = 1
	}
	threshold := uint64(testFraction * float64(^uint64(0)>>1))
	for i := int64(0); i < n; i++ {
		z := uint64(i)*0x9E3779B97F4A7C15 + uint64(seed)
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		if (z^(z>>31))>>1 < threshold {
			test = append(test, i)
		} else {
			train = append(train, i)
		}
	}
	return train, test
}
