package ml

import (
	"fmt"
	"math"

	flashr "repro"
	"repro/internal/dense"
	"repro/internal/linalg"
)

// GMMModel is a Gaussian mixture with full per-component covariances,
// fitted by expectation-maximization (§4.1; computation O(n·p²·k), I/O
// O(n·p + n·k) per iteration — the heaviest algorithm in Table 4).
type GMMModel struct {
	K       int
	Weights []float64      // mixing proportions π
	Means   *dense.Dense   // k×p
	Covs    []*dense.Dense // k of p×p
	LogLike float64        // mean log-likelihood at convergence
	Iters   int
}

// GMMOptions controls EM.
type GMMOptions struct {
	MaxIter int     // default 100
	Tol     float64 // mean log-likelihood delta; the paper converges at 1e-2
	Seed    int64
	// InitMeans, when non-nil, skips the k-means warm start (benchmarks
	// hand every engine identical initial components).
	InitMeans *dense.Dense
}

// GMM fits the mixture to tall data x. Each EM iteration runs as two fused
// passes over the data: one for the E-step responsibilities + log-likelihood
// + soft counts + weighted feature sums, and one for the k weighted Gramians
// of the M-step (all k crossprod sinks share one DAG).
func GMM(s *flashr.Session, x *flashr.FM, k int, opts GMMOptions) (*GMMModel, error) {
	if k < 1 {
		return nil, fmt.Errorf("ml: GMM with k=%d", k)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-2
	}
	n := x.NRow()
	p := int(x.NCol())

	// Initialize from a short k-means run, unless means are supplied.
	var initMeans *dense.Dense
	if opts.InitMeans != nil {
		initMeans = opts.InitMeans.Clone()
	} else {
		km, err := KMeans(s, x, k, KMeansOptions{MaxIter: 5, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		km.Assign.Free()
		initMeans = km.Centers.Clone()
	}
	m := &GMMModel{K: k, Weights: make([]float64, k), Means: initMeans}
	m.Covs = make([]*dense.Dense, k)
	// Global covariance as the initial per-component covariance.
	gram, err := flashr.CrossProd(x).AsDense()
	if err != nil {
		return nil, err
	}
	mu0, err := flashr.ColMeans(x).AsVector()
	if err != nil {
		return nil, err
	}
	globalCov := dense.New(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			globalCov.Set(i, j, gram.At(i, j)/float64(n)-mu0[i]*mu0[j])
		}
	}
	for c := 0; c < k; c++ {
		m.Weights[c] = 1 / float64(k)
		m.Covs[c] = ridge(globalCov.Clone())
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < opts.MaxIter; iter++ {
		// ---- E-step (one fused pass) ----
		logDens := m.logDensities(s, x) // n×k lazy
		rowMax := flashr.AggRow(logDens, "max")
		shifted := flashr.Exp(flashr.Sweep(logDens, 1, rowMax, "-"))
		sumExp := flashr.RowSums(shifted)
		// log-sum-exp per row = rowMax + log(sumExp); resp = shifted/sumExp.
		resp := flashr.Sweep(shifted, 1, sumExp, "/").SetCache(false)
		llSink := flashr.Sum(flashr.Add(rowMax, flashr.Log(sumExp)))
		nc := flashr.ColSums(resp)          // 1×k soft counts
		wsums := flashr.CrossProd2(resp, x) // k×p weighted feature sums
		ll, err := llSink.Float()           // forces the whole E-step DAG
		if err != nil {
			return nil, err
		}
		ll /= float64(n)
		ncd, err := nc.AsVector()
		if err != nil {
			return nil, err
		}
		wsd, err := wsums.AsDense()
		if err != nil {
			return nil, err
		}
		// ---- M-step ----
		for c := 0; c < k; c++ {
			w := math.Max(ncd[c], 1e-10)
			m.Weights[c] = w / float64(n)
			for j := 0; j < p; j++ {
				m.Means.Set(c, j, wsd.At(c, j)/w)
			}
		}
		// Weighted Gramians: k crossprod sinks fused into one pass.
		grams := make([]*flashr.FM, k)
		for c := 0; c < k; c++ {
			rc := flashr.GetCol(resp, c)
			xw := flashr.Sweep(x, 1, rc, "*")
			grams[c] = flashr.CrossProd2(x, xw)
		}
		for c := 0; c < k; c++ {
			gd, err := grams[c].AsDense()
			if err != nil {
				return nil, err
			}
			w := math.Max(ncd[c], 1e-10)
			cov := dense.New(p, p)
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					cov.Set(i, j, gd.At(i, j)/w-m.Means.At(c, i)*m.Means.At(c, j))
				}
			}
			m.Covs[c] = ridge(cov)
		}
		resp.Free()
		m.Iters = iter + 1
		m.LogLike = ll
		if ll-prevLL >= 0 && ll-prevLL < opts.Tol && iter > 0 {
			break
		}
		prevLL = ll
	}
	return m, nil
}

// logDensities builds the lazy n×k matrix of log(π_c · N(x; μ_c, Σ_c)):
// per component, the Mahalanobis form xᵀAx − 2xᵀAμ + μᵀAμ with A = Σ⁻¹
// expressed as fused inner products and row sums.
func (m *GMMModel) logDensities(s *flashr.Session, x *flashr.FM) *flashr.FM {
	p := m.Means.C
	var cols *flashr.FM
	for c := 0; c < m.K; c++ {
		l, err := linalg.Cholesky(m.Covs[c])
		if err != nil {
			// Degenerate component; re-ridge and retry once.
			m.Covs[c] = ridge(m.Covs[c])
			l, err = linalg.Cholesky(m.Covs[c])
			if err != nil {
				panic(fmt.Sprintf("ml: GMM covariance not PD: %v", err))
			}
		}
		a := linalg.SolveChol(l, dense.Identity(p)) // Σ⁻¹
		logDet := linalg.LogDetChol(l)
		mu := dense.New(p, 1)
		for j := 0; j < p; j++ {
			mu.Set(j, 0, m.Means.At(c, j))
		}
		amu := dense.MatMul(a, mu) // p×1
		muAmu := 0.0
		for j := 0; j < p; j++ {
			muAmu += mu.At(j, 0) * amu.At(j, 0)
		}
		xa := flashr.MatMul(x, s.Small(a))        // n×p
		quad := flashr.RowSums(flashr.Mul(xa, x)) // n×1: xᵀAx
		lin := flashr.MatMul(x, s.Small(amu))     // n×1: xᵀAμ
		mahal := flashr.Add(flashr.Sub(quad, flashr.Mul(lin, 2.0)), muAmu)
		logConst := math.Log(m.Weights[c]) - 0.5*(float64(p)*math.Log(2*math.Pi)+logDet)
		ll := flashr.Add(flashr.Mul(mahal, -0.5), logConst)
		if cols == nil {
			cols = ll
		} else {
			cols = flashr.Cbind(cols, ll)
		}
	}
	return cols
}

// Predict returns the most probable component per row.
func (m *GMMModel) Predict(s *flashr.Session, x *flashr.FM) *flashr.FM {
	return flashr.RowWhichMax(m.logDensities(s, x))
}

// ridge adds a small diagonal loading to keep a covariance positive
// definite.
func ridge(c *dense.Dense) *dense.Dense {
	var tr float64
	for i := 0; i < c.R; i++ {
		tr += c.At(i, i)
	}
	eps := 1e-6*tr/float64(c.R) + 1e-9
	for i := 0; i < c.R; i++ {
		c.Set(i, i, c.At(i, i)+eps)
	}
	return c
}
