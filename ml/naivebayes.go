package ml

import (
	"math"

	flashr "repro"
	"repro/internal/dense"
)

// NaiveBayesModel is a Gaussian naive Bayes classifier: per-class priors and
// per-class, per-feature means and variances ("Our implementation assumes
// data follows the normal distribution", §4.1). Computation and I/O are both
// O(n·p) (Table 4) — training is a single fused pass.
type NaiveBayesModel struct {
	K      int
	Priors []float64
	Mean   *dense.Dense // k×p
	Var    *dense.Dense // k×p
}

// NaiveBayes trains the classifier from tall data x (n×p) and 0-based class
// labels y (n×1, values in [0,k)).
func NaiveBayes(s *flashr.Session, x, y *flashr.FM, k int) (*NaiveBayesModel, error) {
	if err := validateLabels(y, k); err != nil {
		return nil, err
	}
	counts, sums, sqsums, err := classStats(s, x, y, k)
	if err != nil {
		return nil, err
	}
	p := int(x.NCol())
	n := float64(x.NRow())
	m := &NaiveBayesModel{
		K:      k,
		Priors: make([]float64, k),
		Mean:   dense.New(k, p),
		Var:    dense.New(k, p),
	}
	const varFloor = 1e-9
	for c := 0; c < k; c++ {
		nc := counts[c]
		m.Priors[c] = nc / n
		for j := 0; j < p; j++ {
			mu := sums.At(c, j) / nc
			m.Mean.Set(c, j, mu)
			v := sqsums.At(c, j)/nc - mu*mu
			if v < varFloor {
				v = varFloor
			}
			m.Var.Set(c, j, v)
		}
	}
	return m, nil
}

// LogDensities returns the n×k tall matrix of per-class log p(x|c)+log π_c.
// The whole expression — k scaled Euclidean inner products and their column
// binding — is one lazy DAG evaluated in a single pass over x.
func (m *NaiveBayesModel) LogDensities(s *flashr.Session, x *flashr.FM) *flashr.FM {
	p := m.Mean.C
	var cols *flashr.FM
	for c := 0; c < m.K; c++ {
		// -0.5 Σ_j (x_j-μ_j)²/σ_j² == -0.5 * euclid(x/σ, μ/σ).
		invSD := make([]float64, p)
		scaledMu := dense.New(p, 1)
		var logConst float64
		for j := 0; j < p; j++ {
			sd := math.Sqrt(m.Var.At(c, j))
			invSD[j] = 1 / sd
			scaledMu.Set(j, 0, m.Mean.At(c, j)/sd)
			logConst += -0.5*math.Log(2*math.Pi) - math.Log(sd)
		}
		xs := flashr.Sweep(x, 2, s.Small(dense.FromSlice(1, p, invSD)), "*")
		d2 := flashr.InnerProd(xs, s.Small(scaledMu), "euclidean", "+")
		ll := flashr.Add(flashr.Mul(d2, -0.5), logConst+math.Log(m.Priors[c]))
		if cols == nil {
			cols = ll
		} else {
			cols = flashr.Cbind(cols, ll)
		}
	}
	return cols
}

// Predict returns the n×1 tall matrix of predicted 0-based classes.
func (m *NaiveBayesModel) Predict(s *flashr.Session, x *flashr.FM) *flashr.FM {
	return flashr.RowWhichMax(m.LogDensities(s, x))
}
