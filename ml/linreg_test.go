package ml

import (
	"math"
	"math/rand"
	"testing"

	flashr "repro"
	"repro/internal/dense"
)

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	for _, s := range []*flashr.Session{memSession(t), emSession(t)} {
		const n, p = 4000, 5
		rng := rand.New(rand.NewSource(3))
		wTrue := []float64{2, -1, 0.5, 0, 3}
		const bTrue = 4.0
		xd := dense.New(n, p)
		yd := dense.New(n, 1)
		for i := 0; i < n; i++ {
			var dot float64
			for j := 0; j < p; j++ {
				v := rng.NormFloat64()
				xd.Set(i, j, v)
				dot += wTrue[j] * v
			}
			yd.Data[i] = dot + bTrue + rng.NormFloat64()*0.1
		}
		x, _ := s.FromDense(xd)
		y, _ := s.FromDense(yd)
		m, err := LinearRegression(s, x, y, LinearOptions{Intercept: true})
		if err != nil {
			t.Fatal(err)
		}
		for j, w := range wTrue {
			if math.Abs(m.W[j]-w) > 0.02 {
				t.Fatalf("w[%d]=%g want %g", j, m.W[j], w)
			}
		}
		if math.Abs(m.Intercept-bTrue) > 0.02 {
			t.Fatalf("intercept %g", m.Intercept)
		}
		if m.R2 < 0.99 {
			t.Fatalf("R² %g", m.R2)
		}
		mse, err := MSE(m.Predict(s, x), y)
		if err != nil {
			t.Fatal(err)
		}
		if mse > 0.02 {
			t.Fatalf("mse %g", mse)
		}
	}
}

func TestLinearRegressionRidgeShrinks(t *testing.T) {
	s := memSession(t)
	const n, p = 1000, 3
	rng := rand.New(rand.NewSource(5))
	xd := dense.New(n, p)
	yd := dense.New(n, 1)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			xd.Set(i, j, rng.NormFloat64())
		}
		yd.Data[i] = 5*xd.At(i, 0) + rng.NormFloat64()
	}
	x, _ := s.FromDense(xd)
	y, _ := s.FromDense(yd)
	ols, err := LinearRegression(s, x, y, LinearOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := LinearRegression(s, x, y, LinearOptions{L2: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ridge.W[0]) >= math.Abs(ols.W[0]) {
		t.Fatalf("ridge %g not shrunk vs OLS %g", ridge.W[0], ols.W[0])
	}
}

func TestLinearRegressionSingularNeedsRidge(t *testing.T) {
	s := memSession(t)
	// Duplicate column → singular Gramian.
	x, _ := s.GenerateMat(500, 2, func(i int64, j int) float64 { return float64(i % 7) })
	y, _ := s.GenerateMat(500, 1, func(i int64, _ int) float64 { return float64(i % 7) })
	if _, err := LinearRegression(s, x, y, LinearOptions{}); err == nil {
		t.Fatal("singular system fitted without ridge")
	}
	if _, err := LinearRegression(s, x, y, LinearOptions{L2: 1e-3}); err != nil {
		t.Fatalf("ridge fit failed: %v", err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	s := memSession(t)
	truth, _ := s.FromVec([]float64{0, 0, 1, 1, 2, 2, 2})
	pred, _ := s.FromVec([]float64{0, 1, 1, 1, 2, 0, 2})
	cm, err := ConfusionMatrix(s, pred, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1, 1, 0}, {0, 2, 0}, {1, 0, 2}}
	for i := range want {
		for j := range want[i] {
			if cm[i][j] != want[i][j] {
				t.Fatalf("cm[%d][%d]=%d want %d (%v)", i, j, cm[i][j], want[i][j], cm)
			}
		}
	}
}

func TestAUC(t *testing.T) {
	s := memSession(t)
	// Perfectly separated scores → AUC 1; inverted → 0; random ≈ 0.5.
	y, _ := s.FromVec([]float64{0, 0, 0, 1, 1, 1})
	perfect, _ := s.FromVec([]float64{0.1, 0.2, 0.3, 0.7, 0.8, 0.9})
	if v, err := AUC(perfect, y); err != nil || v != 1 {
		t.Fatalf("perfect AUC %g %v", v, err)
	}
	inverted, _ := s.FromVec([]float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1})
	if v, _ := AUC(inverted, y); v != 0 {
		t.Fatalf("inverted AUC %g", v)
	}
	// Ties get midranks: constant scores → 0.5.
	constant, _ := s.FromVec([]float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
	if v, _ := AUC(constant, y); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("tied AUC %g", v)
	}
	// Model-driven sanity: logistic scores on separable data give AUC≈1.
	x, yy := gauss2(t, s, 800, 3, 11)
	m, err := LogisticRegressionLBFGS(s, flashr.Cbind(x, s.Ones(800, 1)), yy, LogisticOptions{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	v, err := AUC(m.PredictProb(s, flashr.Cbind(x, s.Ones(800, 1))), yy)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.98 {
		t.Fatalf("model AUC %g", v)
	}
	// Single-class input errors.
	ones := s.Ones(6, 1)
	if _, err := AUC(perfect, ones); err == nil {
		t.Fatal("single-class AUC accepted")
	}
}

func TestTrainTestSplit(t *testing.T) {
	train, test := TrainTestSplit(10000, 0.25, 7)
	if len(train)+len(test) != 10000 {
		t.Fatal("split loses rows")
	}
	frac := float64(len(test)) / 10000
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("test fraction %g", frac)
	}
	// Deterministic.
	train2, _ := TrainTestSplit(10000, 0.25, 7)
	if len(train2) != len(train) || train2[0] != train[0] {
		t.Fatal("split not deterministic")
	}
	// Different seed differs.
	_, test3 := TrainTestSplit(10000, 0.25, 8)
	same := 0
	m := map[int64]bool{}
	for _, i := range test {
		m[i] = true
	}
	for _, i := range test3 {
		if m[i] {
			same++
		}
	}
	if same == len(test) {
		t.Fatal("different seeds gave identical split")
	}
	// No overlap between train and test.
	for _, i := range train {
		if m[i] {
			t.Fatal("row in both sets")
		}
	}
}
