// Package optim provides the limited-memory BFGS optimizer (Liu & Nocedal
// 1989) that the paper's logistic regression uses ("We use the LBFGS
// algorithm for optimization", §4.1), plus a backtracking Armijo line
// search. The objective evaluates f and ∇f together — for FlashR objectives
// one evaluation is one fused DAG pass over the data.
package optim

import (
	"fmt"
	"math"
)

// Objective evaluates a differentiable function and its gradient at w.
type Objective interface {
	Eval(w []float64) (f float64, grad []float64, err error)
}

// ObjectiveFunc adapts a function to the Objective interface.
type ObjectiveFunc func(w []float64) (float64, []float64, error)

// Eval implements Objective.
func (f ObjectiveFunc) Eval(w []float64) (float64, []float64, error) { return f(w) }

// Options controls the optimizer.
type Options struct {
	// History is the number of (s, y) correction pairs kept (default 10).
	History int
	// MaxIter bounds the outer iterations (default 100).
	MaxIter int
	// TolObj stops when f_{i-1} - f_i < TolObj (the paper's logistic
	// regression converges on logloss deltas below 1e-6).
	TolObj float64
	// TolGrad stops when ||∇f||∞ < TolGrad (default 1e-8).
	TolGrad float64
	// Callback, when non-nil, observes each accepted iterate.
	Callback func(iter int, f float64, w []float64)
}

// Result reports the optimum found.
type Result struct {
	W          []float64
	F          float64
	Iters      int
	Evals      int
	Converged  bool
	StopReason string
}

// Minimize runs L-BFGS from w0.
func Minimize(obj Objective, w0 []float64, opt Options) (*Result, error) {
	if opt.History <= 0 {
		opt.History = 10
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	if opt.TolObj <= 0 {
		opt.TolObj = 1e-6
	}
	if opt.TolGrad <= 0 {
		opt.TolGrad = 1e-8
	}
	n := len(w0)
	w := append([]float64(nil), w0...)
	res := &Result{}
	f, g, err := obj.Eval(w)
	if err != nil {
		return nil, err
	}
	res.Evals++
	var sHist, yHist [][]float64
	var rhoHist []float64
	dir := make([]float64, n)
	for iter := 0; iter < opt.MaxIter; iter++ {
		if normInf(g) < opt.TolGrad {
			res.Converged, res.StopReason = true, "gradient"
			break
		}
		// Two-loop recursion for d = -H g.
		copy(dir, g)
		alpha := make([]float64, len(sHist))
		for i := len(sHist) - 1; i >= 0; i-- {
			alpha[i] = rhoHist[i] * dot(sHist[i], dir)
			axpy(-alpha[i], yHist[i], dir)
		}
		if len(sHist) > 0 {
			last := len(sHist) - 1
			gamma := dot(sHist[last], yHist[last]) / dot(yHist[last], yHist[last])
			scal(gamma, dir)
		}
		for i := 0; i < len(sHist); i++ {
			beta := rhoHist[i] * dot(yHist[i], dir)
			axpy(alpha[i]-beta, sHist[i], dir)
		}
		for i := range dir {
			dir[i] = -dir[i]
		}
		// Guard against non-descent directions (restart).
		if dd := dot(dir, g); dd >= 0 {
			for i := range dir {
				dir[i] = -g[i]
			}
			sHist, yHist, rhoHist = nil, nil, nil
		}
		// Backtracking Armijo line search.
		step := 1.0
		if len(sHist) == 0 {
			step = 1 / math.Max(1, normInf(g))
		}
		const c1 = 1e-4
		gd := dot(g, dir)
		var fNew float64
		var gNew []float64
		wNew := make([]float64, n)
		accepted := false
		for ls := 0; ls < 40; ls++ {
			for i := range wNew {
				wNew[i] = w[i] + step*dir[i]
			}
			fNew, gNew, err = obj.Eval(wNew)
			if err != nil {
				return nil, err
			}
			res.Evals++
			if fNew <= f+c1*step*gd && !math.IsNaN(fNew) {
				accepted = true
				break
			}
			step *= 0.5
		}
		if !accepted {
			res.StopReason = "line search failed"
			break
		}
		// Curvature update.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range s {
			s[i] = wNew[i] - w[i]
			y[i] = gNew[i] - g[i]
		}
		if sy := dot(s, y); sy > 1e-12 {
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
			if len(sHist) > opt.History {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
		}
		improve := f - fNew
		w, f, g = wNew, fNew, gNew
		res.Iters = iter + 1
		if opt.Callback != nil {
			opt.Callback(res.Iters, f, w)
		}
		if improve >= 0 && improve < opt.TolObj {
			res.Converged, res.StopReason = true, "objective"
			break
		}
	}
	if res.StopReason == "" {
		res.StopReason = "max iterations"
	}
	res.W, res.F = w, f
	return res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

func scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

func normInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// NumGradCheck compares an analytic gradient against central differences —
// a test utility exported for the ml package's property tests.
func NumGradCheck(obj Objective, w []float64, eps float64) (maxRelErr float64, err error) {
	_, g, err := obj.Eval(w)
	if err != nil {
		return 0, err
	}
	for i := range w {
		wp := append([]float64(nil), w...)
		wm := append([]float64(nil), w...)
		wp[i] += eps
		wm[i] -= eps
		fp, _, err := obj.Eval(wp)
		if err != nil {
			return 0, err
		}
		fm, _, err := obj.Eval(wm)
		if err != nil {
			return 0, err
		}
		num := (fp - fm) / (2 * eps)
		denom := math.Max(1, math.Abs(g[i]))
		if rel := math.Abs(num-g[i]) / denom; rel > maxRelErr {
			maxRelErr = rel
		}
	}
	if math.IsNaN(maxRelErr) {
		return maxRelErr, fmt.Errorf("optim: NaN in gradient check")
	}
	return maxRelErr, nil
}
