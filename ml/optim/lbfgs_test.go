package optim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadratic builds f(w) = ½ (w-c)ᵀ D (w-c) with positive diagonal D.
func quadratic(c, d []float64) Objective {
	return ObjectiveFunc(func(w []float64) (float64, []float64, error) {
		var f float64
		g := make([]float64, len(w))
		for i := range w {
			diff := w[i] - c[i]
			f += 0.5 * d[i] * diff * diff
			g[i] = d[i] * diff
		}
		return f, g, nil
	})
}

func TestMinimizeQuadratic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		c := make([]float64, n)
		d := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64() * 5
			d[i] = 0.1 + rng.Float64()*10
		}
		res, err := Minimize(quadratic(c, d), make([]float64, n), Options{MaxIter: 200, TolObj: 1e-14})
		if err != nil {
			return false
		}
		for i := range c {
			if math.Abs(res.W[i]-c[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeRosenbrock(t *testing.T) {
	rosen := ObjectiveFunc(func(w []float64) (float64, []float64, error) {
		x, y := w[0], w[1]
		f := (1-x)*(1-x) + 100*(y-x*x)*(y-x*x)
		g := []float64{
			-2*(1-x) - 400*x*(y-x*x),
			200 * (y - x*x),
		}
		return f, g, nil
	})
	res, err := Minimize(rosen, []float64{-1.2, 1}, Options{MaxIter: 500, TolObj: 1e-14, TolGrad: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.W[0]-1) > 1e-3 || math.Abs(res.W[1]-1) > 1e-3 {
		t.Fatalf("rosenbrock minimum at %v (f=%g, %s)", res.W, res.F, res.StopReason)
	}
}

func TestConvergenceReporting(t *testing.T) {
	res, err := Minimize(quadratic([]float64{2}, []float64{1}), []float64{0}, Options{MaxIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %s", res.StopReason)
	}
	if res.Evals < res.Iters {
		t.Fatal("eval count implausible")
	}
	var calls int
	_, err = Minimize(quadratic([]float64{1, 1}, []float64{1, 2}), []float64{5, -5}, Options{
		MaxIter:  50,
		Callback: func(iter int, f float64, w []float64) { calls++ },
	})
	if err != nil || calls == 0 {
		t.Fatalf("callback not invoked (%v)", err)
	}
}

func TestNumGradCheck(t *testing.T) {
	rel, err := NumGradCheck(quadratic([]float64{1, -2, 3}, []float64{1, 2, 3}), []float64{0.5, 0.5, 0.5}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rel > 1e-6 {
		t.Fatalf("analytic gradient off by %g", rel)
	}
	// A deliberately wrong gradient must be caught.
	bad := ObjectiveFunc(func(w []float64) (float64, []float64, error) {
		return w[0] * w[0], []float64{1}, nil // true grad is 2w
	})
	rel, err = NumGradCheck(bad, []float64{3}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rel < 0.1 {
		t.Fatalf("wrong gradient not detected (rel %g)", rel)
	}
}
