// Package ml implements the benchmark algorithms of the paper's evaluation
// (§4.1) on the flashr public API, exactly as the paper does: "we implement
// these algorithms completely with the R code and rely on FlashR to execute
// them in parallel and out-of-core". Each algorithm notes its computation
// and I/O complexity from Table 4.
//
// All algorithms accept the data as a tall flashr matrix whose rows are data
// points; models (means, covariances, weights, centers) are small in-memory
// matrices, as in the paper where sink results stay in memory.
package ml

import (
	"fmt"
	"math"

	flashr "repro"
	"repro/internal/dense"
	"repro/internal/linalg"
)

// Correlation computes the pairwise Pearson correlation matrix of the
// columns of x (Table 4: computation O(n·p²), I/O O(n·p); one pass — the
// Gramian, column sums and column sums of squares materialize in a single
// fused DAG).
func Correlation(x *flashr.FM) (*dense.Dense, error) {
	n := float64(x.NRow())
	p := int(x.NCol())
	gram := flashr.CrossProd(x)
	sums := flashr.ColSums(x)
	// Forcing gram flushes sums in the same pass.
	g, err := gram.AsDense()
	if err != nil {
		return nil, err
	}
	sv, err := sums.AsVector()
	if err != nil {
		return nil, err
	}
	mean := make([]float64, p)
	for j := range mean {
		mean[j] = sv[j] / n
	}
	// cov = E[xy] - E[x]E[y]; corr = cov / (sd sdᵀ).
	cov := dense.New(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			cov.Set(i, j, g.At(i, j)/n-mean[i]*mean[j])
		}
	}
	out := dense.New(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			sd := math.Sqrt(cov.At(i, i) * cov.At(j, j))
			if sd == 0 {
				out.Set(i, j, 0)
			} else {
				out.Set(i, j, cov.At(i, j)/sd)
			}
		}
	}
	for i := 0; i < p; i++ {
		out.Set(i, i, 1)
	}
	return out, nil
}

// PCAResult is the output of PCA: eigenvalues (variances) in descending
// order and the matching eigenvectors (rotation) as columns.
type PCAResult struct {
	Values   []float64
	Rotation *dense.Dense
	Center   []float64
}

// PCA computes principal components by eigendecomposition of the Gramian
// covariance (the paper: "We implement PCA by computing eigenvalues on the
// Gramian matrix AᵀA"). Computation O(n·p²), I/O O(n·p), one data pass.
func PCA(x *flashr.FM, ncomp int) (*PCAResult, error) {
	n := float64(x.NRow())
	p := int(x.NCol())
	if ncomp <= 0 || ncomp > p {
		ncomp = p
	}
	gram := flashr.CrossProd(x)
	sums := flashr.ColSums(x)
	g, err := gram.AsDense()
	if err != nil {
		return nil, err
	}
	sv, err := sums.AsVector()
	if err != nil {
		return nil, err
	}
	center := make([]float64, p)
	cov := dense.New(p, p)
	for j := range center {
		center[j] = sv[j] / n
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			cov.Set(i, j, (g.At(i, j)-n*center[i]*center[j])/(n-1))
		}
	}
	vals, vecs, err := linalg.EigSym(cov)
	if err != nil {
		return nil, err
	}
	rot := dense.New(p, ncomp)
	for i := 0; i < p; i++ {
		for j := 0; j < ncomp; j++ {
			rot.Set(i, j, vecs.At(i, j))
		}
	}
	return &PCAResult{Values: vals[:ncomp], Rotation: rot, Center: center}, nil
}

// Transform projects x onto the principal components (lazy tall result).
func (r *PCAResult) Transform(s *flashr.Session, x *flashr.FM) *flashr.FM {
	centered := flashr.Sweep(x, 2, s.Small(dense.FromSlice(1, len(r.Center), r.Center)), "-")
	return flashr.MatMul(centered, s.Small(r.Rotation))
}

// classStats gathers per-class counts, feature sums, and feature
// sums-of-squares in one fused pass — the shared statistics pass behind
// Naive Bayes and LDA.
func classStats(s *flashr.Session, x, y *flashr.FM, k int) (counts []float64, sums, sqsums *dense.Dense, err error) {
	n := x.NRow()
	cnt := flashr.GroupByRow(s.Ones(n, 1), y, k, "+")
	sum := flashr.GroupByRow(x, y, k, "+")
	sq := flashr.GroupByRow(flashr.Square(x), y, k, "+")
	cd, err := cnt.AsDense()
	if err != nil {
		return nil, nil, nil, err
	}
	sums, err = sum.AsDense()
	if err != nil {
		return nil, nil, nil, err
	}
	sqsums, err = sq.AsDense()
	if err != nil {
		return nil, nil, nil, err
	}
	counts = cd.Data
	return counts, sums, sqsums, nil
}

// validateLabels checks a label matrix holds integers in [0, k).
func validateLabels(y *flashr.FM, k int) error {
	if y.NCol() != 1 {
		return fmt.Errorf("ml: labels must be n×1, got %dx%d", y.NRow(), y.NCol())
	}
	if k < 2 {
		return fmt.Errorf("ml: need at least 2 classes, got %d", k)
	}
	return nil
}
