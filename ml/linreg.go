package ml

import (
	"fmt"

	flashr "repro"
	"repro/internal/dense"
	"repro/internal/linalg"
)

// LinearModel is least-squares linear regression fitted by the normal
// equations: w = (XᵀX + λI)⁻¹ Xᵀy. Like PCA, training reduces to sink
// GenOps — the Gramian and Xᵀy materialize together in one pass over the
// data regardless of n (computation O(n·p²), I/O O(n·p)).
type LinearModel struct {
	W         []float64 // p coefficients
	Intercept float64
	L2        float64
	R2        float64 // training coefficient of determination
}

// LinearOptions controls the fit.
type LinearOptions struct {
	// L2 is the ridge penalty λ (0 = ordinary least squares).
	L2 float64
	// Intercept adds a bias term (fitted via mean centering).
	Intercept bool
}

// LinearRegression fits y ≈ X w (+ b) from tall data. The Gramian, Xᵀy,
// column sums and the scalar statistics of y all share one fused pass.
func LinearRegression(s *flashr.Session, x, y *flashr.FM, opts LinearOptions) (*LinearModel, error) {
	if y.NCol() != 1 || y.NRow() != x.NRow() {
		return nil, fmt.Errorf("ml: response must be %dx1", x.NRow())
	}
	n := float64(x.NRow())
	p := int(x.NCol())
	gram := flashr.CrossProd(x)
	xty := flashr.CrossProd2(x, y)
	xsums := flashr.ColSums(x)
	ysum := flashr.Sum(y)
	yy := flashr.Sum(flashr.Square(y))
	g, err := gram.AsDense() // forces all five sinks in one pass
	if err != nil {
		return nil, err
	}
	xyd, err := xty.AsDense()
	if err != nil {
		return nil, err
	}
	xs, err := xsums.AsVector()
	if err != nil {
		return nil, err
	}
	ys, err := ysum.Float()
	if err != nil {
		return nil, err
	}
	yySum, err := yy.Float()
	if err != nil {
		return nil, err
	}

	a := g.Clone()
	b := xyd.Clone()
	if opts.Intercept {
		// Centered normal equations: (XᵀX − n·x̄x̄ᵀ) w = Xᵀy − n·x̄·ȳ.
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				a.Set(i, j, a.At(i, j)-xs[i]*xs[j]/n)
			}
			b.Set(i, 0, b.At(i, 0)-xs[i]*ys/n)
		}
	}
	if opts.L2 > 0 {
		for i := 0; i < p; i++ {
			a.Set(i, i, a.At(i, i)+opts.L2)
		}
	}
	w, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("ml: normal equations singular (try L2 > 0): %w", err)
	}
	m := &LinearModel{W: w.Col(0), L2: opts.L2}
	if opts.Intercept {
		m.Intercept = ys / n
		for j := 0; j < p; j++ {
			m.Intercept -= m.W[j] * xs[j] / n
		}
	}
	// Training R²: 1 − SSE/SST, computed from the already-materialized
	// sufficient statistics (no extra data pass).
	yMean := ys / n
	sst := yySum - n*yMean*yMean
	// SSE = yᵀy − 2wᵀXᵀy + wᵀXᵀXw − intercept terms; reuse g/xyd.
	var wXty, wGw float64
	for i := 0; i < p; i++ {
		wXty += m.W[i] * xyd.At(i, 0)
		for j := 0; j < p; j++ {
			wGw += m.W[i] * g.At(i, j) * m.W[j]
		}
	}
	sse := yySum - 2*wXty + wGw
	if opts.Intercept {
		var wXs float64
		for j := 0; j < p; j++ {
			wXs += m.W[j] * xs[j]
		}
		sse += n*m.Intercept*m.Intercept + 2*m.Intercept*wXs - 2*m.Intercept*ys
	}
	if sst > 0 {
		m.R2 = 1 - sse/sst
	}
	return m, nil
}

// Predict returns the lazy n×1 fitted values.
func (m *LinearModel) Predict(s *flashr.Session, x *flashr.FM) *flashr.FM {
	wv := s.Small(dense.FromSlice(len(m.W), 1, append([]float64(nil), m.W...)))
	out := flashr.MatMul(x, wv)
	if m.Intercept != 0 {
		out = flashr.Add(out, m.Intercept)
	}
	return out
}

// MSE computes the mean squared error of predictions against truth in one
// fused pass.
func MSE(pred, y *flashr.FM) (float64, error) {
	return flashr.Mean(flashr.Square(flashr.Sub(pred, y))).Float()
}
