package ml

import (
	"fmt"
	"math/rand"

	flashr "repro"
	"repro/internal/dense"
)

// KMeansResult reports the clustering found by KMeans.
type KMeansResult struct {
	Centers   *dense.Dense // k×p
	Assign    *flashr.FM   // n×1 tall matrix of 0-based cluster ids
	Sizes     []float64
	Iters     int
	Moves     []int64 // points that changed cluster, per iteration
	Objective float64 // final within-cluster sum of squares
	Converged bool
}

// KMeansOptions controls the clustering.
type KMeansOptions struct {
	MaxIter int   // default 100
	Seed    int64 // center initialization seed
	// InitCenters, when non-nil, overrides the sampled initialization
	// (benchmarks pass the same k×p matrix to every engine under test).
	InitCenters *dense.Dense
}

// KMeans is Lloyd's algorithm written exactly as the paper's Figure 3: the
// Euclidean generalized inner product computes point-center distances,
// agg.row("which.min") assigns points, groupby.row recomputes centers, and
// the assignment vector is set.cache'd for the convergence test against the
// previous iteration. Computation O(n·p·k), I/O O(n·p) per iteration
// (Table 4); it converges when no data points move.
func KMeans(s *flashr.Session, x *flashr.FM, k int, opts KMeansOptions) (*KMeansResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("ml: k-means with k=%d", k)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	n := x.NRow()
	p := int(x.NCol())
	// Initialize centers from a sample of rows (deterministic per seed),
	// unless the caller supplies them.
	var centers *dense.Dense
	if opts.InitCenters != nil {
		centers = opts.InitCenters.Clone()
	} else {
		head, err := flashr.Head(x, minInt(int(n), 4096))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(opts.Seed*7919 + 1))
		centers = dense.New(k, p)
		perm := rng.Perm(head.R)
		for c := 0; c < k; c++ {
			copy(centers.Row(c), head.Row(perm[c%len(perm)]))
		}
	}
	res := &KMeansResult{}
	var assign *flashr.FM
	for iter := 0; iter < opts.MaxIter; iter++ {
		c := s.Small(centers)
		// D = inner.prod(X, t(C), "euclidean", "+")
		d := flashr.InnerProd(x, c.T(), "euclidean", "+")
		// I = agg.row(D, "which.min"), cached for the next iteration.
		newAssign := flashr.RowWhichMin(d).SetCache(false)
		cnt := flashr.GroupByRow(s.Ones(n, 1), newAssign, k, "+")
		sums := flashr.GroupByRow(x, newAssign, k, "+")
		var moves int64 = -1
		if assign != nil {
			mv := flashr.Sum(flashr.Ne(assign, newAssign))
			mvf, err := mv.Float() // forces cnt+sums+moves in one pass
			if err != nil {
				return nil, err
			}
			moves = int64(mvf)
		}
		cd, err := cnt.AsDense()
		if err != nil {
			return nil, err
		}
		sd, err := sums.AsDense()
		if err != nil {
			return nil, err
		}
		// New centers; empty clusters keep their previous center.
		for g := 0; g < k; g++ {
			if cd.Data[g] == 0 {
				continue
			}
			for j := 0; j < p; j++ {
				centers.Set(g, j, sd.At(g, j)/cd.Data[g])
			}
		}
		if assign != nil {
			assign.Free()
		}
		assign = newAssign
		res.Iters = iter + 1
		res.Sizes = cd.Data
		if moves >= 0 {
			res.Moves = append(res.Moves, moves)
			if moves == 0 {
				res.Converged = true
				break
			}
		}
	}
	res.Centers = centers
	res.Assign = assign
	// Final objective: total squared distance to the assigned center.
	d := flashr.InnerProd(x, s.Small(centers).T(), "euclidean", "+")
	obj, err := flashr.Sum(flashr.AggRow(d, "min")).Float()
	if err != nil {
		return nil, err
	}
	res.Objective = obj
	return res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
