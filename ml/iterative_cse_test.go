package ml

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	flashr "repro"
	"repro/internal/dense"
)

// Iterative-workload ablation: the paper's iterative algorithms rebuild
// structurally identical sub-DAGs (k-means re-derives its assignment subtree,
// the logistic line search re-evaluates at repeated weight vectors), so a
// hash-consed engine must (a) produce bit-identical models to a CSE-free one
// and (b) read strictly fewer bytes and execute strictly fewer nodes over a
// repeated run.
//
// Sessions run single-worker: worker-local sink partials make float
// aggregations grouping-sensitive across scheduling, and the cache can only
// replay a run whose weight trajectory is bit-reproducible. Multi-worker
// equivalence is covered by the root-package differential grid.

// cseSession builds a single-worker EM session (EM so leaf reads are counted
// in BytesRead; in-memory leaves are zero-copy and invisible to the counter).
func cseSession(t *testing.T, disable bool) *flashr.Session {
	t.Helper()
	dir := t.TempDir()
	s, err := flashr.NewSession(flashr.Options{
		Workers: 1, PartRows: 256, EM: true,
		SSDDirs:    []string{filepath.Join(dir, "d0"), filepath.Join(dir, "d1")},
		DisableCSE: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func blobData(n, p, k int, seed int64) *dense.Dense {
	rng := rand.New(rand.NewSource(seed))
	d := dense.New(n, p)
	for i := 0; i < n; i++ {
		c := i % k
		for j := 0; j < p; j++ {
			d.Set(i, j, float64(c*3)+rng.NormFloat64())
		}
	}
	return d
}

func assertBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: value %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// TestKMeansCSEAblation runs k-means (≥3 iterations) twice per session —
// iterative algorithms in one FlashR session repeat whole programs as well as
// sub-expressions — and compares CSE on vs off.
func TestKMeansCSEAblation(t *testing.T) {
	const n, p, k, iters = 3000, 4, 3, 3
	xd := blobData(n, p, k, 11)
	init := dense.New(k, p)
	for c := 0; c < k; c++ {
		copy(init.Row(c), xd.Row(c*7))
	}

	type outcome struct {
		fp    []float64
		bytes int64
		nodes int64
		cse   int64
		hits  int64
	}
	run := func(disable bool) outcome {
		s := cseSession(t, disable)
		x, err := s.FromDense(xd)
		if err != nil {
			t.Fatal(err)
		}
		base := s.TotalMaterializeStats()
		var fp []float64
		for rep := 0; rep < 2; rep++ {
			res, err := KMeans(s, x, k, KMeansOptions{MaxIter: iters, InitCenters: init})
			if err != nil {
				t.Fatal(err)
			}
			if res.Iters < 3 {
				t.Fatalf("k-means converged in %d iterations; test needs >=3", res.Iters)
			}
			fp = append(fp, res.Objective)
			fp = append(fp, res.Centers.Data...)
			fp = append(fp, res.Sizes...)
		}
		d := s.TotalMaterializeStats().Sub(base)
		return outcome{fp: fp, bytes: d.BytesRead, nodes: d.NodesExecuted, cse: d.CSEUnifications, hits: d.CacheHits}
	}

	on, off := run(false), run(true)
	assertBits(t, "kmeans outputs (cse on vs off)", on.fp, off.fp)
	if off.cse != 0 || off.hits != 0 {
		t.Fatalf("CSE-off session recorded cse=%d hits=%d", off.cse, off.hits)
	}
	if on.hits == 0 {
		t.Fatal("CSE-on repeated k-means recorded zero cache hits")
	}
	if on.bytes >= off.bytes {
		t.Fatalf("BytesRead with CSE on (%d) not strictly below off (%d)", on.bytes, off.bytes)
	}
	if on.nodes >= off.nodes {
		t.Fatalf("NodesExecuted with CSE on (%d) not strictly below off (%d)", on.nodes, off.nodes)
	}
}

// TestLogisticCSEAblation: same ablation for logistic regression via L-BFGS
// (≥3 iterations). The weight trajectory is bit-reproducible single-worker,
// so the second training run replays cached passes end to end.
func TestLogisticCSEAblation(t *testing.T) {
	const n, p = 3000, 4
	rng := rand.New(rand.NewSource(13))
	wTrue := []float64{1.5, -2, 0.75, 0.25}
	xd := dense.New(n, p)
	yd := dense.New(n, 1)
	for i := 0; i < n; i++ {
		var dot float64
		for j := 0; j < p; j++ {
			v := rng.NormFloat64()
			xd.Set(i, j, v)
			dot += wTrue[j] * v
		}
		if 1/(1+math.Exp(-dot)) > rng.Float64() {
			yd.Data[i] = 1
		}
	}

	type outcome struct {
		fp    []float64
		bytes int64
		nodes int64
		hits  int64
	}
	run := func(disable bool) outcome {
		s := cseSession(t, disable)
		x, err := s.FromDense(xd)
		if err != nil {
			t.Fatal(err)
		}
		y, err := s.FromDense(yd)
		if err != nil {
			t.Fatal(err)
		}
		base := s.TotalMaterializeStats()
		var fp []float64
		for rep := 0; rep < 2; rep++ {
			m, err := LogisticRegressionLBFGS(s, x, y, LogisticOptions{MaxIter: 6, Tol: 1e-12})
			if err != nil {
				t.Fatal(err)
			}
			if m.Iters < 3 {
				t.Fatalf("logistic converged in %d iterations; test needs >=3", m.Iters)
			}
			fp = append(fp, m.LogLoss)
			fp = append(fp, m.W...)
		}
		d := s.TotalMaterializeStats().Sub(base)
		return outcome{fp: fp, bytes: d.BytesRead, nodes: d.NodesExecuted, hits: d.CacheHits}
	}

	on, off := run(false), run(true)
	assertBits(t, "logistic outputs (cse on vs off)", on.fp, off.fp)
	if on.hits == 0 {
		t.Fatal("CSE-on repeated training recorded zero cache hits")
	}
	if on.bytes >= off.bytes {
		t.Fatalf("BytesRead with CSE on (%d) not strictly below off (%d)", on.bytes, off.bytes)
	}
	if on.nodes >= off.nodes {
		t.Fatalf("NodesExecuted with CSE on (%d) not strictly below off (%d)", on.nodes, off.nodes)
	}
}
