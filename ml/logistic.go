package ml

import (
	"fmt"
	"math"

	flashr "repro"
	"repro/internal/dense"
	"repro/ml/optim"
)

// LogisticModel is a binary logistic regression model (§4.1: linear model
// for classification; computation and I/O both O(n·p) per iteration).
type LogisticModel struct {
	W       []float64 // p weights
	Iters   int
	LogLoss float64
}

// LogisticOptions controls training.
type LogisticOptions struct {
	// MaxIter bounds iterations (default 100 for LBFGS, 50 for GD).
	MaxIter int
	// Tol is the logloss-delta convergence threshold; the paper uses
	// logloss_{i-1} − logloss_i < 1e−6.
	Tol float64
	// L2 is an optional ridge penalty.
	L2 float64
}

// lossGrad evaluates the logloss and gradient at w in ONE fused pass: the
// cost aggregation and the gradient crossprod share the DAG rooted at X.
func logisticLossGrad(s *flashr.Session, x, y *flashr.FM, w []float64, l2 float64) (float64, []float64, error) {
	n := float64(x.NRow())
	p := len(w)
	wv := s.Small(dense.FromSlice(p, 1, append([]float64(nil), w...)))
	z := flashr.MatMul(x, wv)            // n×1
	prob := flashr.Sigmoid(z)            // n×1
	resid := flashr.Sub(prob, y)         // n×1
	gradS := flashr.CrossProd2(x, resid) // p×1 sink
	// logloss = mean( log(1+exp(z)) - y*z )  (stable via log1p(exp(-|z|))).
	// log(1+exp(z)) = max(z,0) + log1p(exp(-|z|)).
	loss := flashr.Sum(flashr.Sub(
		flashr.Add(flashr.Pmax(z, 0.0), flashr.Log1p(flashr.Exp(flashr.Neg(flashr.Abs(z))))),
		flashr.Mul(y, z)))
	lv, err := loss.Float() // forces: loss + grad in one pass
	if err != nil {
		return 0, nil, err
	}
	gd, err := gradS.AsDense()
	if err != nil {
		return 0, nil, err
	}
	f := lv / n
	g := make([]float64, p)
	for j := 0; j < p; j++ {
		g[j] = gd.Data[j] / n
	}
	if l2 > 0 {
		for j := 0; j < p; j++ {
			f += 0.5 * l2 * w[j] * w[j]
			g[j] += l2 * w[j]
		}
	}
	return f, g, nil
}

// LogisticRegressionLBFGS trains with L-BFGS, the configuration benchmarked
// in the paper.
func LogisticRegressionLBFGS(s *flashr.Session, x, y *flashr.FM, opts LogisticOptions) (*LogisticModel, error) {
	if y.NCol() != 1 || y.NRow() != x.NRow() {
		return nil, fmt.Errorf("ml: labels must be %dx1", x.NRow())
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	p := int(x.NCol())
	obj := optim.ObjectiveFunc(func(w []float64) (float64, []float64, error) {
		return logisticLossGrad(s, x, y, w, opts.L2)
	})
	res, err := optim.Minimize(obj, make([]float64, p), optim.Options{
		MaxIter: opts.MaxIter,
		TolObj:  opts.Tol,
	})
	if err != nil {
		return nil, err
	}
	return &LogisticModel{W: res.W, Iters: res.Iters, LogLoss: res.F}, nil
}

// LogisticRegressionGD trains with plain gradient descent plus backtracking
// line search — the Figure 2 implementation, kept as the paper presents it.
func LogisticRegressionGD(s *flashr.Session, x, y *flashr.FM, opts LogisticOptions) (*LogisticModel, error) {
	if y.NCol() != 1 || y.NRow() != x.NRow() {
		return nil, fmt.Errorf("ml: labels must be %dx1", x.NRow())
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 50
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	p := int(x.NCol())
	w := make([]float64, p)
	f, g, err := logisticLossGrad(s, x, y, w, opts.L2)
	if err != nil {
		return nil, err
	}
	model := &LogisticModel{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Line search along -g: delta = 0.5 * (-g)·(-g)ᵀ (Figure 2).
		var gg float64
		for _, v := range g {
			gg += v * v
		}
		if gg == 0 {
			break
		}
		eta := 1.0
		var fNew float64
		var gNew []float64
		wNew := make([]float64, p)
		for ls := 0; ls < 30; ls++ {
			for j := range wNew {
				wNew[j] = w[j] - eta*g[j]
			}
			fNew, gNew, err = logisticLossGrad(s, x, y, wNew, opts.L2)
			if err != nil {
				return nil, err
			}
			if fNew < f-0.5*eta*gg*0.1 || fNew < f {
				break
			}
			eta *= 0.2 // the paper's shrink factor
		}
		improve := f - fNew
		if math.IsNaN(fNew) || improve <= 0 {
			break
		}
		w, f, g = wNew, fNew, gNew
		model.Iters = iter + 1
		if improve < opts.Tol {
			break
		}
	}
	model.W, model.LogLoss = w, f
	return model, nil
}

// PredictProb returns P(y=1|x) as a lazy n×1 tall matrix.
func (m *LogisticModel) PredictProb(s *flashr.Session, x *flashr.FM) *flashr.FM {
	wv := s.Small(dense.FromSlice(len(m.W), 1, append([]float64(nil), m.W...)))
	return flashr.Sigmoid(flashr.MatMul(x, wv))
}

// Predict returns hard 0/1 predictions.
func (m *LogisticModel) Predict(s *flashr.Session, x *flashr.FM) *flashr.FM {
	return flashr.Ge(m.PredictProb(s, x), 0.5)
}

// Accuracy computes classification accuracy against labels y.
func Accuracy(pred, y *flashr.FM) (float64, error) {
	return flashr.Mean(flashr.Eq(pred, y)).Float()
}
