package ml

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	flashr "repro"
	"repro/internal/dense"
)

func memSession(t *testing.T) *flashr.Session {
	t.Helper()
	s, err := flashr.NewSession(flashr.Options{Workers: 4, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func emSession(t *testing.T) *flashr.Session {
	t.Helper()
	s, err := flashr.NewSession(flashr.Options{
		Workers: 4, PartRows: 256, EM: true,
		SSDDirs: []string{filepath.Join(t.TempDir(), "d0"), filepath.Join(t.TempDir(), "d1")},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// gauss2 builds a labeled two-Gaussian dataset with well-separated means.
func gauss2(t *testing.T, s *flashr.Session, n int64, p int, seed int64) (x, y *flashr.FM) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xd := dense.New(int(n), p)
	yd := dense.New(int(n), 1)
	for i := 0; i < int(n); i++ {
		c := rng.Intn(2)
		yd.Data[i] = float64(c)
		for j := 0; j < p; j++ {
			xd.Set(i, j, rng.NormFloat64()+float64(c)*3)
		}
	}
	x, err := s.FromDense(xd)
	if err != nil {
		t.Fatal(err)
	}
	y, err = s.FromDense(yd)
	if err != nil {
		t.Fatal(err)
	}
	return x, y
}

// TestCorrelationMatchesNaive compares against a direct Pearson computation.
func TestCorrelationMatchesNaive(t *testing.T) {
	for _, s := range []*flashr.Session{memSession(t), emSession(t)} {
		const n, p = 1500, 4
		rng := rand.New(rand.NewSource(2))
		xd := dense.New(n, p)
		for i := 0; i < n; i++ {
			base := rng.NormFloat64()
			for j := 0; j < p; j++ {
				xd.Set(i, j, base*float64(j)/3+rng.NormFloat64())
			}
		}
		x, _ := s.FromDense(xd)
		got, err := Correlation(x)
		if err != nil {
			t.Fatal(err)
		}
		// Naive reference.
		mean := make([]float64, p)
		for j := 0; j < p; j++ {
			for i := 0; i < n; i++ {
				mean[j] += xd.At(i, j)
			}
			mean[j] /= n
		}
		cov := dense.New(p, p)
		for i := 0; i < n; i++ {
			for a := 0; a < p; a++ {
				for b := 0; b < p; b++ {
					cov.Set(a, b, cov.At(a, b)+(xd.At(i, a)-mean[a])*(xd.At(i, b)-mean[b])/n)
				}
			}
		}
		for a := 0; a < p; a++ {
			for b := 0; b < p; b++ {
				want := cov.At(a, b) / math.Sqrt(cov.At(a, a)*cov.At(b, b))
				if math.Abs(got.At(a, b)-want) > 1e-8 {
					t.Fatalf("corr[%d,%d]=%g want %g", a, b, got.At(a, b), want)
				}
			}
		}
		if got.At(2, 2) != 1 {
			t.Fatal("diagonal not 1")
		}
	}
}

// TestPCARecoversDominantDirection embeds variance along a known direction.
func TestPCARecoversDominantDirection(t *testing.T) {
	s := memSession(t)
	const n, p = 3000, 5
	rng := rand.New(rand.NewSource(3))
	dir := []float64{1, 2, -1, 0.5, 3}
	var norm float64
	for _, v := range dir {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for j := range dir {
		dir[j] /= norm
	}
	xd := dense.New(n, p)
	for i := 0; i < n; i++ {
		t0 := rng.NormFloat64() * 10
		for j := 0; j < p; j++ {
			xd.Set(i, j, t0*dir[j]+rng.NormFloat64()*0.5)
		}
	}
	x, _ := s.FromDense(xd)
	res, err := PCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] < 10*res.Values[1] {
		t.Fatalf("dominant eigenvalue not dominant: %v", res.Values)
	}
	var cos float64
	for j := 0; j < p; j++ {
		cos += res.Rotation.At(j, 0) * dir[j]
	}
	if math.Abs(math.Abs(cos)-1) > 1e-2 {
		t.Fatalf("first PC misaligned: |cos|=%g", math.Abs(cos))
	}
	// Projected variance of PC1 ≈ eigenvalue 1.
	scores := res.Transform(s, x)
	pc1 := flashr.GetCol(scores, 0)
	v := flashr.Sum(flashr.Square(pc1)).MustFloat() / float64(n-1)
	if math.Abs(v-res.Values[0])/res.Values[0] > 1e-6 {
		t.Fatalf("score variance %g vs eigenvalue %g", v, res.Values[0])
	}
}

func TestNaiveBayesSeparatesClasses(t *testing.T) {
	for _, s := range []*flashr.Session{memSession(t), emSession(t)} {
		x, y := gauss2(t, s, 2000, 4, 5)
		m, err := NaiveBayes(s, x, y, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Means near 0 and 3.
		if math.Abs(m.Mean.At(0, 0)) > 0.3 || math.Abs(m.Mean.At(1, 0)-3) > 0.3 {
			t.Fatalf("class means off: %v", m.Mean.Data[:4])
		}
		acc, err := Accuracy(m.Predict(s, x), y)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.95 {
			t.Fatalf("NB accuracy %g", acc)
		}
	}
}

func TestLogisticRegressionBothOptimizers(t *testing.T) {
	s := memSession(t)
	x0, y := gauss2(t, s, 2000, 4, 7)
	// Append an intercept column (the class means are 0 and 3, so the
	// separating hyperplane does not pass through the origin).
	x := flashr.Cbind(x0, s.Ones(x0.NRow(), 1))
	lb, err := LogisticRegressionLBFGS(s, x, y, LogisticOptions{MaxIter: 60})
	if err != nil {
		t.Fatal(err)
	}
	accL, err := Accuracy(lb.Predict(s, x), y)
	if err != nil {
		t.Fatal(err)
	}
	if accL < 0.95 {
		t.Fatalf("LBFGS accuracy %g (loss %g after %d iters)", accL, lb.LogLoss, lb.Iters)
	}
	gd, err := LogisticRegressionGD(s, x, y, LogisticOptions{MaxIter: 60})
	if err != nil {
		t.Fatal(err)
	}
	accG, err := Accuracy(gd.Predict(s, x), y)
	if err != nil {
		t.Fatal(err)
	}
	if accG < 0.90 {
		t.Fatalf("GD accuracy %g", accG)
	}
	if lb.LogLoss > 0.4 {
		t.Fatalf("LBFGS final loss %g", lb.LogLoss)
	}
}

// TestLogisticGradient checks the fused loss/gradient against central
// differences through the whole engine stack.
func TestLogisticGradient(t *testing.T) {
	s := memSession(t)
	x, y := gauss2(t, s, 600, 3, 11)
	w := []float64{0.2, -0.1, 0.05}
	f0, g, err := logisticLossGrad(s, x, y, w, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(f0) {
		t.Fatal("NaN loss")
	}
	const eps = 1e-5
	for j := range w {
		wp := append([]float64(nil), w...)
		wm := append([]float64(nil), w...)
		wp[j] += eps
		wm[j] -= eps
		fp, _, _ := logisticLossGrad(s, x, y, wp, 0.1)
		fm, _, _ := logisticLossGrad(s, x, y, wm, 0.1)
		num := (fp - fm) / (2 * eps)
		if math.Abs(num-g[j]) > 1e-5*math.Max(1, math.Abs(g[j])) {
			t.Fatalf("grad[%d]=%g numeric %g", j, g[j], num)
		}
	}
}

func TestKMeansRecoversClusters(t *testing.T) {
	for _, s := range []*flashr.Session{memSession(t), emSession(t)} {
		const n, p, k = 1800, 3, 3
		rng := rand.New(rand.NewSource(13))
		centers := [][]float64{{0, 0, 0}, {8, 8, 8}, {-8, 8, 0}}
		xd := dense.New(n, p)
		for i := 0; i < n; i++ {
			c := centers[i%k]
			for j := 0; j < p; j++ {
				xd.Set(i, j, c[j]+rng.NormFloat64())
			}
		}
		x, _ := s.FromDense(xd)
		res, err := KMeans(s, x, k, KMeansOptions{MaxIter: 50, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("k-means did not converge in %d iters", res.Iters)
		}
		// Every true center must be ≈ some found center.
		for _, c := range centers {
			best := math.Inf(1)
			for g := 0; g < k; g++ {
				var d float64
				for j := 0; j < p; j++ {
					dd := res.Centers.At(g, j) - c[j]
					d += dd * dd
				}
				best = math.Min(best, d)
			}
			if best > 0.5 {
				t.Fatalf("center %v missed (dist² %g); got %v", c, best, res.Centers.Data)
			}
		}
		// Moves must be non-increasing to 0.
		if res.Moves[len(res.Moves)-1] != 0 {
			t.Fatalf("last move count %d", res.Moves[len(res.Moves)-1])
		}
		res.Assign.Free()
	}
}

func TestGMMFitsMixture(t *testing.T) {
	s := memSession(t)
	const n, p, k = 1500, 2, 2
	rng := rand.New(rand.NewSource(17))
	xd := dense.New(n, p)
	for i := 0; i < n; i++ {
		if i%3 == 0 { // weight 1/3 vs 2/3
			xd.Set(i, 0, rng.NormFloat64()*0.8+6)
			xd.Set(i, 1, rng.NormFloat64()*0.8+6)
		} else {
			xd.Set(i, 0, rng.NormFloat64())
			xd.Set(i, 1, rng.NormFloat64())
		}
	}
	x, _ := s.FromDense(xd)
	m, err := GMM(s, x, k, GMMOptions{MaxIter: 60, Tol: 1e-4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One component near (0,0), the other near (6,6); components may come
	// out in either order.
	cfgA := math.Max(
		math.Hypot(m.Means.At(0, 0), m.Means.At(0, 1)),
		math.Hypot(m.Means.At(1, 0)-6, m.Means.At(1, 1)-6))
	cfgB := math.Max(
		math.Hypot(m.Means.At(1, 0), m.Means.At(1, 1)),
		math.Hypot(m.Means.At(0, 0)-6, m.Means.At(0, 1)-6))
	if math.Min(cfgA, cfgB) > 0.5 {
		t.Fatalf("GMM means off: %v", m.Means.Data)
	}
	wmin := math.Min(m.Weights[0], m.Weights[1])
	if math.Abs(wmin-1.0/3) > 0.08 {
		t.Fatalf("GMM weights %v", m.Weights)
	}
	if m.LogLike > 0 || math.IsNaN(m.LogLike) {
		t.Fatalf("loglike %g", m.LogLike)
	}
}

// TestGMMLogLikeAscends verifies EM's monotonic likelihood (within numeric
// slack).
func TestGMMLogLikeAscends(t *testing.T) {
	s := memSession(t)
	x, _ := gauss2(t, s, 900, 3, 23)
	var lls []float64
	// Rerun with increasing iteration caps; loglike must not decrease.
	for _, it := range []int{1, 3, 8} {
		m, err := GMM(s, x, 2, GMMOptions{MaxIter: it, Tol: 1e-12, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		lls = append(lls, m.LogLike)
	}
	if lls[1] < lls[0]-1e-6 || lls[2] < lls[1]-1e-6 {
		t.Fatalf("loglike not ascending: %v", lls)
	}
}

func TestMvrnormMoments(t *testing.T) {
	for _, s := range []*flashr.Session{memSession(t), emSession(t)} {
		mu := []float64{1, -2, 3}
		sigma := dense.FromRows([][]float64{
			{2, 0.5, 0.2},
			{0.5, 1, -0.3},
			{0.2, -0.3, 1.5},
		})
		x, err := Mvrnorm(s, 60000, mu, sigma, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Correlation(x)
		if err != nil {
			t.Fatal(err)
		}
		means, err := flashr.ColMeans(x).AsVector()
		if err != nil {
			t.Fatal(err)
		}
		for j, m := range mu {
			if math.Abs(means[j]-m) > 0.05 {
				t.Fatalf("mean[%d]=%g want %g", j, means[j], m)
			}
		}
		// Check correlations implied by sigma.
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				want := sigma.At(a, b) / math.Sqrt(sigma.At(a, a)*sigma.At(b, b))
				if math.Abs(got.At(a, b)-want) > 0.05 {
					t.Fatalf("corr[%d,%d]=%g want %g", a, b, got.At(a, b), want)
				}
			}
		}
	}
}

func TestLDASeparatesClasses(t *testing.T) {
	s := memSession(t)
	x, y := gauss2(t, s, 2500, 4, 29)
	m, err := LDA(s, x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(m.Predict(s, x), y)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("LDA accuracy %g", acc)
	}
	// Pooled covariance ≈ identity (unit-variance classes).
	for i := 0; i < 4; i++ {
		if math.Abs(m.PooledW.At(i, i)-1) > 0.15 {
			t.Fatalf("pooled var[%d]=%g", i, m.PooledW.At(i, i))
		}
	}
}

func TestLDARejectsEmptyClass(t *testing.T) {
	s := memSession(t)
	x, _ := gauss2(t, s, 500, 3, 31)
	y := s.Zeros(500, 1) // only class 0 present
	if _, err := LDA(s, x, y, 2); err == nil {
		t.Fatal("LDA accepted an empty class")
	}
}

// TestAlgorithmsAgreeIMvsEM runs NB and k-means on identical data in both
// backends and compares outputs exactly.
func TestAlgorithmsAgreeIMvsEM(t *testing.T) {
	im := memSession(t)
	em := emSession(t)
	mkData := func(s *flashr.Session) (*flashr.FM, *flashr.FM) { return gauss2(t, s, 1200, 3, 37) }
	xi, yi := mkData(im)
	xe, ye := mkData(em)
	mi, err := NaiveBayes(im, xi, yi, 2)
	if err != nil {
		t.Fatal(err)
	}
	me, err := NaiveBayes(em, xe, ye, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equalish(mi.Mean, me.Mean, 1e-12) || !dense.Equalish(mi.Var, me.Var, 1e-12) {
		t.Fatal("NB models differ between IM and EM")
	}
	ki, err := KMeans(im, xi, 2, KMeansOptions{MaxIter: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ke, err := KMeans(em, xe, 2, KMeansOptions{MaxIter: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equalish(ki.Centers, ke.Centers, 1e-9) {
		t.Fatal("k-means centers differ between IM and EM")
	}
}
