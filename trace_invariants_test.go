package flashr

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// Invariant layer for the tracing and metrics subsystem: random DAG
// programs from the equivalence harness run with tracing on, and the
// recorded span trees must be well-formed (trace.Verify), survive a Chrome
// round-trip, and conserve the I/O accounting — bytes and requests summed
// over spans equal the MaterializeStats counters exactly. The concurrent
// tests pin the per-session metric registries to the engine totals and
// guard the torn-snapshot fix against regression.

// collectEquivTrace runs the seeded equivalence program once on a fresh
// session with tracing enabled, returning the recorded trace and the
// MaterializeStats delta of exactly the traced region (data generation
// happens before tracing starts, so trace and delta cover the same passes).
func collectEquivTrace(t testing.TB, seed int64, em bool, fuse FuseLevel, owner string) (*trace.Data, MaterializeStats) {
	t.Helper()
	opts := Options{Workers: 4, PartRows: 256, Fuse: fuse, Owner: owner}
	if em {
		dir := t.(interface{ TempDir() string }).TempDir()
		opts.EM = true
		opts.SSDDirs = []string{filepath.Join(dir, "d0"), filepath.Join(dir, "d1")}
	}
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(seed))
	n := int64(300 + rng.Intn(2200))
	p := 1 + rng.Intn(4)
	dataSeed := rng.Int63()
	progSeed := rng.Int63()
	x, err := s.GenerateSeeded(n, p, dataSeed, func(rng *rand.Rand, row []float64) {
		for i := range row {
			row[i] = rng.Float64()*4 - 2
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Engine().StartTrace()
	before := s.TotalMaterializeStats()
	runEquivProgram(t, x, progSeed)
	delta := s.TotalMaterializeStats().Sub(before)
	d := s.Engine().StopTrace()
	if d == nil {
		t.Fatal("StopTrace returned nil while tracing")
	}
	return d, delta
}

// TestTraceWellFormedness checks the span-tree invariants over seeded
// random DAG programs across execution modes and fusion levels: every span
// closed, a single pass root per pass, children properly nested, correct
// owner attribution, and every structural span kind present.
func TestTraceWellFormedness(t *testing.T) {
	for _, em := range []bool{false, true} {
		for _, fuse := range []FuseLevel{FuseCache, FuseNone} {
			for seed := int64(1); seed <= 2; seed++ {
				em, fuse, seed := em, fuse, seed
				t.Run(fmt.Sprintf("em=%t/fuse=%v/seed=%d", em, fuse, seed), func(t *testing.T) {
					t.Parallel()
					owner := fmt.Sprintf("sess-%t-%d", em, seed)
					d, _ := collectEquivTrace(t, seed, em, fuse, owner)
					if err := trace.Verify(d); err != nil {
						t.Fatalf("trace verification failed: %v", err)
					}
					if d.Unclosed != 0 {
						t.Fatalf("%d spans left unclosed", d.Unclosed)
					}
					if len(d.Passes) == 0 {
						t.Fatal("no passes recorded")
					}
					roots := 0
					kinds := map[trace.Kind]int{}
					for _, ev := range d.Events {
						kinds[ev.Kind]++
						if ev.Kind == trace.KindPass {
							roots++
						}
					}
					if roots != len(d.Passes) {
						t.Fatalf("%d pass roots for %d pass metas", roots, len(d.Passes))
					}
					for _, m := range d.Passes {
						if m.Owner != owner {
							t.Fatalf("pass %d attributed to %q, want %q", m.Pass, m.Owner, owner)
						}
					}
					for _, k := range []trace.Kind{
						trace.KindPass, trace.KindAdmit, trace.KindCacheLookup,
						trace.KindPublish, trace.KindSuperTask, trace.KindCompute,
					} {
						if kinds[k] == 0 {
							t.Errorf("no %v spans recorded (kinds: %v)", k, kinds)
						}
					}
				})
			}
		}
	}
}

// TestTraceConservation is the accounting cross-check: bytes and request
// counts summed over the trace's read and write-back spans must equal the
// session's MaterializeStats counters for the same region, exactly.
func TestTraceConservation(t *testing.T) {
	for _, em := range []bool{false, true} {
		em := em
		t.Run(fmt.Sprintf("em=%t", em), func(t *testing.T) {
			t.Parallel()
			d, ms := collectEquivTrace(t, 7, em, FuseCache, "conserve")
			if err := trace.Verify(d); err != nil {
				t.Fatal(err)
			}
			var readBytes, readN, wbBytes int64
			for _, ev := range d.Events {
				switch ev.Kind {
				case trace.KindRead:
					readBytes += ev.Bytes
					readN += ev.N
				case trace.KindWriteBack:
					wbBytes += ev.Bytes
				}
			}
			if readBytes != ms.BytesRead {
				t.Errorf("read spans sum to %d bytes, stats say %d", readBytes, ms.BytesRead)
			}
			if want := ms.PrefetchHits + ms.PrefetchMisses; readN != want {
				t.Errorf("read spans count %d leaf loads, stats say %d", readN, want)
			}
			if wbBytes != ms.BytesWritten {
				t.Errorf("write-back spans sum to %d bytes, stats say %d", wbBytes, ms.BytesWritten)
			}
			if em && (readN == 0 || wbBytes == 0) {
				t.Errorf("EM conservation check is vacuous: readN=%d wbBytes=%d", readN, wbBytes)
			}
		})
	}
}

// TestTraceChromeRoundTripLive exports a real execution trace as Chrome
// JSON, parses it back, and re-verifies the invariants — the same
// self-validation flashr-bench -trace performs before writing its file.
func TestTraceChromeRoundTripLive(t *testing.T) {
	d, _ := collectEquivTrace(t, 11, false, FuseCache, "chrome")
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, d); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Verify(parsed); err != nil {
		t.Fatalf("round-tripped trace fails verification: %v", err)
	}
	if len(parsed.Events) != len(d.Events) {
		t.Fatalf("round trip kept %d events, want %d", len(parsed.Events), len(d.Events))
	}
	if len(parsed.Passes) != len(d.Passes) {
		t.Fatalf("round trip kept %d passes, want %d", len(parsed.Passes), len(d.Passes))
	}
	for i, m := range parsed.Passes {
		if m.Owner != d.Passes[i].Owner {
			t.Fatalf("pass %d owner %q, want %q", m.Pass, m.Owner, d.Passes[i].Owner)
		}
	}
}

// materializeCounterFamilies are the integer counter families whose
// per-session sums must equal the engine totals exactly.
var materializeCounterFamilies = []string{
	"flashr_materialize_passes_total",
	"flashr_materialize_parts_total",
	"flashr_materialize_chunks_total",
	"flashr_materialize_read_bytes_total",
	"flashr_materialize_written_bytes_total",
	"flashr_materialize_prefetch_hits_total",
	"flashr_materialize_prefetch_misses_total",
	"flashr_materialize_write_jobs_total",
	"flashr_materialize_nodes_executed_total",
	"flashr_materialize_cse_unifications_total",
	"flashr_materialize_cache_hits_total",
	"flashr_materialize_cache_misses_total",
}

// TestConcurrentSessionMetricsConservation runs several sessions sharing
// one engine concurrently and asserts the per-session metric registries sum
// counter-for-counter to the engine registry's totals.
func TestConcurrentSessionMetricsConservation(t *testing.T) {
	const nChildren = 3
	parent, err := NewSession(Options{Workers: 4, PartRows: 256, Owner: "parent"})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	sessions := []*Session{parent}
	for i := 0; i < nChildren; i++ {
		cs, err := NewSession(WithSharedEngine(parent), WithOwner(fmt.Sprintf("sess-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, cs)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(sessions))
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			_, errs[i] = logisticWeights(s, int64(1000+i), 4096, 3, 4)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	engSnap := parent.Engine().Metrics().Snapshot()
	snaps := make([]map[string]float64, len(sessions))
	for i, s := range sessions {
		snaps[i] = s.Metrics().Snapshot()
	}
	for _, fam := range materializeCounterFamilies {
		engVal, ok := engSnap[fam]
		if !ok {
			t.Fatalf("engine registry is missing family %s", fam)
		}
		var sum float64
		for i, s := range sessions {
			key := fmt.Sprintf("%s{owner=%q}", fam, s.Owner())
			v, ok := snaps[i][key]
			if !ok {
				t.Fatalf("session %s registry is missing series %s", s.Owner(), key)
			}
			sum += v
		}
		if sum != engVal {
			t.Errorf("%s: sessions sum to %v, engine total is %v", fam, sum, engVal)
		}
	}
	if engSnap["flashr_materialize_passes_total"] == 0 {
		t.Error("conservation check is vacuous: engine ran no passes")
	}
}

// TestConcurrentMetricsSnapshotCancel is the regression test for the
// torn-snapshot fix: a registry collection caches one MaterializeStats per
// scrape, so a snapshot racing pass completions — including passes aborted
// by a cancelled MaterializeCtx on a sibling session — must never mix
// counters from different fold states. The steady session's passes all have
// identical per-pass deltas, so every consistent snapshot satisfies
// delta(family) == k·Δ(family) for a single integer k across families;
// a partially-flushed snapshot breaks the proportionality.
func TestConcurrentMetricsSnapshotCancel(t *testing.T) {
	steady, err := NewSession(Options{Workers: 4, PartRows: 256, DisableCSE: true, Owner: "steady"})
	if err != nil {
		t.Fatal(err)
	}
	defer steady.Close()
	x, err := steady.GenerateSeeded(4096, 2, 17, func(rng *rand.Rand, row []float64) {
		for i := range row {
			row[i] = rng.Float64()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	iteration := func(i int) error {
		_, err := Sum(Mul(x, float64(i+1))).Float()
		return err
	}
	// Calibrate the per-pass delta with two warmup iterations; they must
	// match or the proportionality invariant below is unusable.
	st0 := steady.TotalMaterializeStats()
	if err := iteration(0); err != nil {
		t.Fatal(err)
	}
	st1 := steady.TotalMaterializeStats()
	if err := iteration(1); err != nil {
		t.Fatal(err)
	}
	st2 := steady.TotalMaterializeStats()
	d1, d2 := st1.Sub(st0), st2.Sub(st1)
	type famDelta struct {
		fam string
		d   int64
	}
	perPass := []famDelta{
		{"flashr_materialize_parts_total", d1.Parts},
		{"flashr_materialize_chunks_total", d1.Chunks},
		{"flashr_materialize_nodes_executed_total", d1.NodesExecuted},
	}
	if d1.Passes != 1 || d2.Passes != 1 || d1.Parts != d2.Parts ||
		d1.Chunks != d2.Chunks || d1.NodesExecuted != d2.NodesExecuted {
		t.Fatalf("steady workload is not one identical pass per iteration: %+v vs %+v", d1, d2)
	}

	reg := steady.Metrics()
	key := func(fam string) string { return fam + `{owner="steady"}` }
	base := reg.Snapshot()

	// A sibling session on the same engine hammers cancelled
	// materializations while the snapshotter scrapes.
	cancelly, err := NewSession(WithSharedEngine(steady), WithOwner("cancelly"))
	if err != nil {
		t.Fatal(err)
	}
	cx, err := cancelly.GenerateSeeded(4096, 2, 23, func(rng *rand.Rand, row []float64) {
		for i := range row {
			row[i] = rng.Float64()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelledCtx, cancel := context.WithCancel(context.Background())
	cancel()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // canceller
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			y := Sum(Mul(cx, float64(i+100)))
			y.MaterializeCtx(cancelledCtx) // error expected and irrelevant
			time.Sleep(100 * time.Microsecond)
		}
	}()
	go func() { // snapshotter
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := reg.Snapshot()
			k := snap[key("flashr_materialize_passes_total")] - base[key("flashr_materialize_passes_total")]
			if k != math.Trunc(k) || k < 0 {
				t.Errorf("snapshot pass delta %v is not a whole pass count", k)
				return
			}
			for _, fd := range perPass {
				got := snap[key(fd.fam)] - base[key(fd.fam)]
				if want := k * float64(fd.d); got != want {
					t.Errorf("torn snapshot: %s advanced by %v over %v passes, want %v",
						fd.fam, got, k, want)
					return
				}
			}
		}
	}()
	for i := 2; i < 80; i++ {
		if err := iteration(i); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// TestTraceOverheadBudget pins the cost of leaving tracing enabled on a
// bench-smoke-sized workload to under 2% of wall time (plus a small
// absolute floor so laptop noise cannot flake the check). Gated behind
// FLASHR_OVERHEAD_CHECK=1: CI runs it as a dedicated step; it is
// meaningless under -race.
func TestTraceOverheadBudget(t *testing.T) {
	if os.Getenv("FLASHR_OVERHEAD_CHECK") == "" {
		t.Skip("set FLASHR_OVERHEAD_CHECK=1 to run the tracing overhead guard")
	}
	s, err := NewSession(Options{Workers: 4, PartRows: 256, DisableCSE: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Bench-smoke-sized: enough compute per partition that the per-span
	// fixed costs must amortize, as they do in the real benchmarks.
	x, err := s.GenerateSeeded(1<<17, 8, 31, func(rng *rand.Rand, row []float64) {
		for i := range row {
			row[i] = rng.Float64()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	workload := func() {
		for i := 0; i < 10; i++ {
			if _, err := Sum(Sigmoid(Mul(x, float64(i+1)))).Float(); err != nil {
				t.Fatal(err)
			}
		}
	}
	measure := func(traced bool) time.Duration {
		if traced {
			s.Engine().StartTrace()
			defer s.Engine().StopTrace()
		}
		t0 := time.Now()
		workload()
		return time.Since(t0)
	}
	workload() // warm caches and pools before timing
	const rounds = 5
	var off, on []time.Duration
	for i := 0; i < rounds; i++ { // alternate to cancel thermal/GC drift
		off = append(off, measure(false))
		on = append(on, measure(true))
	}
	median := func(ds []time.Duration) time.Duration {
		s := append([]time.Duration(nil), ds...)
		for i := range s { // tiny slice, insertion sort
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[len(s)/2]
	}
	mOff, mOn := median(off), median(on)
	budget := mOff/50 + 10*time.Millisecond // 2% + absolute floor
	if mOn > mOff+budget {
		t.Fatalf("tracing overhead too high: off=%v on=%v (budget %v)", mOff, mOn, budget)
	}
	t.Logf("tracing overhead: off=%v on=%v (budget %v)", mOff, mOn, budget)
}
