// Command flashr-info inspects a simulated SSD array: the files stored on
// it, their striping across drives, and summary statistics of named
// matrices stored with SaveNamed / flashr-gen.
//
// Usage:
//
//	flashr-info -ssd-root /data/flashr
//	flashr-info -ssd-root /data/flashr -matrix criteo-x
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	flashr "repro"
)

func main() {
	var (
		ssdRoot = flag.String("ssd-root", "", "simulated SSD array root (required)")
		drives  = flag.Int("drives", 4, "simulated SSD count")
		name    = flag.String("matrix", "", "named matrix to summarize")
		verify  = flag.Bool("verify", false, "scrub named matrices against their sidecar checksums (all, or just -matrix); exits 1 on corruption")
		metrics = flag.Bool("metrics", false, "dump expfmt metrics (engine, SSD array, NUMA) before exiting")
		explain = flag.Bool("explain", false, "with -matrix: render a sample expression DAG before and after the algebraic rewrite pass, with rule counters")
	)
	flag.Parse()
	if *ssdRoot == "" {
		fatal(errors.New("-ssd-root is required"))
	}
	dirs := make([]string, *drives)
	for i := range dirs {
		dirs[i] = filepath.Join(*ssdRoot, fmt.Sprintf("ssd-%02d", i))
	}
	s, err := flashr.NewSession(flashr.Options{EM: true, SSDDirs: dirs})
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	fs := s.FS()
	dumpMetrics := func() {
		if *metrics {
			fmt.Println()
			if _, err := s.Metrics().WriteTo(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}

	if *verify {
		names := s.ListNamed()
		if *name != "" {
			names = []string{*name}
		}
		if len(names) == 0 {
			fmt.Println("no named matrices to verify")
			dumpMetrics()
			return
		}
		perDrive := make([]int, fs.NumDrives())
		var verified, skipped, corrupt int64
		for _, n := range names {
			reps, err := s.VerifyNamedCtx(context.Background(), n)
			if err != nil {
				fatal(err)
			}
			for _, rep := range reps {
				verified += rep.Verified
				skipped += rep.Skipped
				for _, c := range rep.Corrupt {
					corrupt++
					if c.Drive >= 0 && c.Drive < len(perDrive) {
						perDrive[c.Drive]++
					}
					fmt.Printf("CORRUPT %s: file %q stripe %d on drive %d (want crc32c %08x, got %08x)\n",
						n, rep.File, c.Stripe, c.Drive, c.Want, c.Got)
				}
			}
		}
		fmt.Printf("verify: %d matrices, %d stripes verified, %d skipped (no recorded checksum), %d corrupt\n",
			len(names), verified, skipped, corrupt)
		if corrupt > 0 {
			fmt.Println("per-drive corruption:")
			for d, c := range perDrive {
				if c > 0 {
					fmt.Printf("  drive %02d: %d corrupt stripes\n", d, c)
				}
			}
			os.Exit(1)
		}
		dumpMetrics()
		return
	}

	if *name == "" {
		fmt.Printf("SSD array at %s: %d drives, stripe %d KiB\n", *ssdRoot, fs.NumDrives(), fs.StripeBytes()/1024)
		for i, d := range dirs {
			matches, _ := filepath.Glob(filepath.Join(d, "*.seg"))
			var total int64
			for _, m := range matches {
				if st, err := os.Stat(m); err == nil {
					total += st.Size()
				}
			}
			fmt.Printf("  drive %02d: %4d segments, %10.1f MiB\n", i, len(matches), float64(total)/(1<<20))
		}
		if names := s.ListNamed(); len(names) > 0 {
			fmt.Println("named matrices:")
			for _, n := range names {
				if m, err := s.OpenNamed(n); err == nil {
					r, c := m.Dim()
					fmt.Printf("  %-20s %10d x %-6d %10.1f MiB\n", n, r, c, float64(r*c*8)/(1<<20))
				}
			}
		}
		dumpMetrics()
		return
	}

	// Summary statistics force reads through the lazy API, parts of which
	// panic on materialization errors (MustFloat semantics); a corrupt or
	// unreadable matrix must exit with the I/O error, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fatal(fmt.Errorf("%v", r))
		}
	}()
	x, err := s.OpenNamed(*name)
	if err != nil {
		fatal(err)
	}
	r, c := x.Dim()
	fmt.Printf("%s: %d x %d\n", *name, r, c)
	// Summary statistics stream through the engine in one fused pass, so
	// even huge matrices summarize in constant memory.
	mnS, mxS := flashr.Min(x), flashr.Max(x)
	meanS := flashr.Mean(x)
	mn, err := mnS.Float()
	if err != nil {
		fatal(err)
	}
	mx, err := mxS.Float()
	if err != nil {
		fatal(err)
	}
	mean, err := meanS.Float()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  min=%.6g max=%.6g mean=%.6g\n", mn, mx, mean)
	cs, err := flashr.ColMeans(x).AsVector()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  column means: ")
	for j, v := range cs {
		if j == 8 {
			fmt.Printf("…")
			break
		}
		fmt.Printf("%.4g ", v)
	}
	fmt.Println()
	// The summaries above run several materialization passes over the same
	// leaf; show how much of that the hash-consed result cache absorbed.
	ms := s.TotalMaterializeStats()
	entries, bytes := s.Engine().ResultCacheStats()
	fmt.Printf("  engine: nodes=%d cse-unified=%d cache hits=%d misses=%d saved=%.1fMiB evictions=%d (resident %d entries, %.1fMiB)\n",
		ms.NodesExecuted, ms.CSEUnifications, ms.CacheHits, ms.CacheMisses,
		float64(ms.CacheHitBytes)/(1<<20), ms.CacheEvictions,
		entries, float64(bytes)/(1<<20))
	fmt.Printf("  rewrites: total=%d view=%d crossprod=%d aggfold=%d dce=%d dead-nodes=%d\n",
		ms.Rewrites, ms.RewriteViews, ms.RewriteCrossProds, ms.RewriteAggFolds,
		ms.RewriteDCE, ms.RewriteDeadNodes)
	if *explain {
		// A sample expression with foldable layers: the optimizer rewrites
		// each sink's input graph in place during materialization, so
		// explaining the same expression before and after the pass shows
		// exactly what the rewrite rules did to it. A structurally identical
		// twin is forced instead of expr itself — both sinks sit in the same
		// deferred batch and are both rewritten, but only the forced one
		// resolves away its graph.
		build := func() *flashr.FM {
			return flashr.Sum(flashr.Mul(flashr.Add(flashr.GetCols(x, seq(int(c))), 1.0), 2.0))
		}
		expr := build()
		fmt.Printf("\nexplain: sum(2*(x[, 1:%d] + 1)) before rewriting:\n%s", c, flashr.Explain(expr))
		before := s.TotalMaterializeStats()
		if _, err := build().Float(); err != nil {
			fatal(err)
		}
		d := s.TotalMaterializeStats().Sub(before)
		fmt.Printf("after rewriting (%d rule applications: view=%d fold=%d):\n%s",
			d.Rewrites, d.RewriteViews, d.RewriteAggFolds, flashr.Explain(expr))
	}
	dumpMetrics()
}

// seq returns the identity column selection [0, n).
func seq(n int) []int {
	ix := make([]int, n)
	for i := range ix {
		ix[i] = i
	}
	return ix
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flashr-info: %v\n", err)
	os.Exit(1)
}
