// Command flashr-repl is an interactive R-flavored shell over the FlashR
// engine — the reproduction's stand-in for the R front end that makes
// FlashR "an interactive R programming framework" (§1 of the paper).
//
//	$ go run ./cmd/flashr-repl
//	flashr> x <- rnorm.matrix(1000000, 8)
//	flashr> y <- sweep(x, 2, colMeans(x), "-")
//	flashr> sum(y * y) / (length(y) - 1)
//	[1] 1.0001
//
// Expressions are lazy; DAGs materialize when a value has to be printed.
// Run with -ssd-root to execute out-of-core (FlashR-EM). Commands: ls
// (variables), quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	flashr "repro"
	"repro/internal/repl"
)

func main() {
	var (
		ssdRoot   = flag.String("ssd-root", "", "run out-of-core over a simulated SSD array at this path")
		drives    = flag.Int("drives", 4, "simulated SSD count")
		readMBps  = flag.Float64("read-mbps", 0, "SSD read throttle (0 = unthrottled)")
		writeMBps = flag.Float64("write-mbps", 0, "SSD write throttle")
	)
	flag.Parse()

	opts := flashr.Options{ReadMBps: *readMBps, WriteMBps: *writeMBps}
	if *ssdRoot != "" {
		opts.EM = true
		for i := 0; i < *drives; i++ {
			opts.SSDDirs = append(opts.SSDDirs, filepath.Join(*ssdRoot, fmt.Sprintf("ssd-%02d", i)))
		}
	}
	s, err := flashr.NewSession(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashr-repl: %v\n", err)
		os.Exit(1)
	}
	defer s.Close()
	env := repl.NewEnv(s)

	mode := "in-memory (FlashR-IM)"
	if opts.EM {
		mode = fmt.Sprintf("out-of-core on %d simulated SSDs (FlashR-EM)", *drives)
	}
	fmt.Printf("FlashR-Go %s — %s\n", flashr.Version, mode)
	fmt.Println(`Type R-style expressions; "ls" lists variables, "quit" exits.`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("flashr> ")
		if !sc.Scan() {
			fmt.Println()
			if err := sc.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "flashr-repl: stdin: %v\n", err)
				os.Exit(1)
			}
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
			continue
		case "quit", "q", "exit":
			return
		case "ls":
			for _, v := range env.Vars() {
				fmt.Println(v)
			}
			continue
		}
		v, err := env.Eval(line)
		if err != nil {
			fmt.Printf("Error: %v\n", err)
			continue
		}
		out, err := env.Format(v)
		if err != nil {
			fmt.Printf("Error: %v\n", err)
			continue
		}
		if out != "" {
			fmt.Println(out)
		}
	}
}
