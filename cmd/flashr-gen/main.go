// Command flashr-gen synthesizes the benchmark datasets of Table 5 (the
// Criteo-like click logs and the PageGraph-like spectral embedding) and
// stores them on a simulated SSD array or as CSV, streaming through
// partition-sized buffers so the matrix never has to fit in memory.
//
// Usage:
//
//	flashr-gen -dataset criteo -n 1000000 -ssd-root /data/flashr
//	flashr-gen -dataset pagegraph -n 500000 -csv /tmp/pg.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	flashr "repro"
	"repro/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "criteo", "dataset to generate: criteo | pagegraph")
		n       = flag.Int64("n", 1_000_000, "rows")
		seed    = flag.Int64("seed", 42, "generator seed")
		ssdRoot = flag.String("ssd-root", "", "store on a simulated SSD array under this directory")
		drives  = flag.Int("drives", 4, "simulated SSD count")
		csvPath = flag.String("csv", "", "also write the feature matrix as CSV to this path")
		metrics = flag.Bool("metrics", false, "dump expfmt metrics for the generation run before exiting")
	)
	flag.Parse()

	opts := flashr.Options{}
	if *ssdRoot != "" {
		dirs := make([]string, *drives)
		for i := range dirs {
			dirs[i] = filepath.Join(*ssdRoot, fmt.Sprintf("ssd-%02d", i))
		}
		opts.EM = true
		opts.SSDDirs = dirs
	}
	s, err := flashr.NewSession(opts)
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	var x, y *flashr.FM
	switch *dataset {
	case "criteo":
		x, y, err = workload.Criteo(s, *n, *seed)
	case "pagegraph":
		x, err = workload.PageGraph(s, *n, *seed)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %s: %d x %d (%.1f MiB)\n",
		*dataset, x.NRow(), x.NCol(), float64(x.NRow()*x.NCol()*8)/(1<<20))
	if *ssdRoot != "" {
		if err := s.SaveNamedCtx(context.Background(), x, *dataset+"-x"); err != nil {
			fatal(err)
		}
		if y != nil {
			if err := s.SaveNamedCtx(context.Background(), y, *dataset+"-y"); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("saved as named matrices: %v (reopen with flashr-info or Session.OpenNamed)\n", s.ListNamed())
	}
	if y != nil {
		rate, err := flashr.Mean(y).Float()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("labels: %d x 1, positive rate %.3f\n", y.NRow(), rate)
	}
	if *ssdRoot != "" {
		fmt.Printf("stored on SSD array under %s (%d drives):\n", *ssdRoot, *drives)
		for _, name := range s.FS().List() {
			f, err := s.FS().OpenFile(name)
			if err == nil {
				fmt.Printf("  %-16s %10.1f MiB\n", name, float64(f.Size())/(1<<20))
			}
		}
	}
	if *csvPath != "" {
		if err := flashr.SaveCSV(x, *csvPath, ","); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote CSV to %s\n", *csvPath)
	}
	if *metrics {
		fmt.Println()
		if _, err := s.Metrics().WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flashr-gen: %v\n", err)
	os.Exit(1)
}
