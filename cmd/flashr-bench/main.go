// Command flashr-bench regenerates the paper's evaluation tables and
// figures (§4) at configurable scale.
//
// Usage:
//
//	flashr-bench -experiment fig7a -n 200000
//	flashr-bench -experiment all -n 100000 -read-mbps 400
//	flashr-bench -concurrent 4 -n 100000
//
// Experiments: fig7a, fig7b, fig8, fig9, fig10, table4, table6, cse,
// rewrite, concurrent, shard, all.
// See DESIGN.md for the paper-to-experiment index and EXPERIMENTS.md for
// recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/benchmark"
	"repro/internal/trace"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (fig7a|fig7b|fig8|fig9|fig10|table4|table6|cse|rewrite|concurrent|shard|all)")
		n          = flag.Int64("n", 200_000, "base dataset rows (Criteo-sub in the paper is 325M)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines per engine")
		ssdRoot    = flag.String("ssd-root", "", "directory for the simulated SSD array (default: temp dir)")
		drives     = flag.Int("drives", 4, "simulated SSD count")
		readMBps   = flag.Float64("read-mbps", 1200, "aggregate SSD read bandwidth (MiB/s, 0=unthrottled)")
		writeMBps  = flag.Float64("write-mbps", 1000, "aggregate SSD write bandwidth (MiB/s, 0=unthrottled)")
		iters      = flag.Int("iters", 5, "fixed iteration count for iterative algorithms")
		seed       = flag.Int64("seed", 42, "workload seed")
		syncWrites = flag.Bool("sync-writes", false, "disable the write-behind pipeline (synchronous partition writes)")
		writeDepth = flag.Int("write-depth", 0, "in-flight async partition write bound (0=auto: 2×workers in [4,32])")
		noVerify   = flag.Bool("no-verify", false, "disable CRC32C verification on SSD reads (A/B for the checksum overhead)")
		injectRead = flag.Float64("inject-read-err", 0, "probability of a transient injected read error per stripe request")
		injectFlip = flag.Float64("inject-flip-bit", 0, "probability of an injected in-flight bit flip per stripe read")
		faultSeed  = flag.Int64("fault-seed", 0, "seed for the injected-fault RNGs (0=derive from -seed)")
		noCSE      = flag.Bool("no-cse", false, "disable structural hash-consing and the sub-DAG result cache")
		noRewrite  = flag.Bool("no-rewrites", false, "disable the algebraic DAG rewrite pass")
		cacheMB    = flag.Int64("cache-mb", 0, "sub-DAG result cache budget in MiB (0=engine default, negative=cache off, CSE on)")
		concurrent = flag.Int("concurrent", 0, "run the concurrent multi-session experiment with N sessions sharing one engine (shorthand for -experiment concurrent)")
		shardN     = flag.Int("shard-workers", 0, "in-process shard count for the shard experiment (0=2)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated flashr-shardworker TCP addresses for the shard experiment (overrides -shard-workers)")
		shardParts = flag.Int("shard-part-rows", 0, "partition height for the shard experiment; must match the workers' -part-rows (0=engine default)")
		tracePath  = flag.String("trace", "", "write a Chrome trace_event JSON file of every materialization pass (load in chrome://tracing or Perfetto)")
		metrics    = flag.Bool("metrics", false, "dump expfmt metrics from each experiment's EM session before it closes")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics and /debug/pprof/ on this address while the benchmark runs")
	)
	flag.Parse()
	if *concurrent > 0 && *experiment == "all" {
		*experiment = "concurrent"
	}

	cfg := benchmark.Config{
		N: *n, Workers: *workers, SSDRoot: *ssdRoot, Drives: *drives,
		ReadMBps: *readMBps, WriteMBps: *writeMBps, Iters: *iters, Seed: *seed,
		SyncWrites: *syncWrites, WriteBehindDepth: *writeDepth,
		DisableVerify: *noVerify, ReadErrRate: *injectRead, FlipBitRate: *injectFlip,
		FaultSeed:  *faultSeed,
		DisableCSE: *noCSE, ResultCacheBytes: *cacheMB << 20,
		DisableRewrites:    *noRewrite,
		ConcurrentSessions: *concurrent,
		ShardWorkers:       *shardN,
		ShardPartRows:      *shardParts,
	}
	if *shardAddrs != "" {
		cfg.ShardAddrs = strings.Split(*shardAddrs, ",")
	}
	if *tracePath != "" {
		cfg.Trace = &benchmark.TraceSink{}
	}
	if *metrics {
		cfg.MetricsTo = os.Stdout
	}
	if *debugAddr != "" {
		ds, err := trace.StartDebugServer(*debugAddr, benchmark.LiveMetricsHandler())
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashr-bench: %v\n", err)
			os.Exit(1)
		}
		defer ds.Close()
		fmt.Printf("debug server on %s (/metrics, /debug/pprof/)\n", ds.Addr())
	}
	writes := "write-behind"
	if *syncWrites {
		writes = "sync"
	}
	verify := "on"
	if *noVerify {
		verify = "off"
	}
	cse := "on"
	if *noCSE {
		cse = "off"
	}
	rewrites := "on"
	if *noRewrite || *noCSE {
		rewrites = "off"
	}
	fmt.Printf("flashr-bench: experiment=%s n=%d workers=%d drives=%d read=%.0fMiB/s write=%.0fMiB/s iters=%d writes=%s depth=%d verify=%s cse=%s rewrites=%s\n",
		*experiment, *n, *workers, *drives, *readMBps, *writeMBps, *iters, writes, *writeDepth, verify, cse, rewrites)
	if *injectRead > 0 || *injectFlip > 0 {
		fmt.Printf("fault injection: read-err=%.3g flip-bit=%.3g seed=%d\n", *injectRead, *injectFlip, *faultSeed)
	}
	fmt.Println()
	rows, err := benchmark.Run(*experiment, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashr-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(benchmark.Format(rows))
	if cfg.Trace != nil {
		if err := cfg.Trace.WriteChromeFile(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "flashr-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote execution trace to %s\n", *tracePath)
	}
}
