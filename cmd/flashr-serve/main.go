// Command flashr-serve exposes one shared FlashR engine as a multi-tenant
// HTTP/JSON service: clients create sessions, submit R-flavored programs or
// typed op requests, and read results, while a request batcher coalesces
// compatible requests arriving within a short max-wait window into shared
// materialization passes. Each tenant maps to PassOptions{Owner, Weight} on
// the engine, so the pass-admission arbiter and per-owner fair I/O queueing
// enforce per-tenant QoS.
//
//	flashr-serve -addr :8080 -ssd-root /data/flashr -read-mbps 400
//
//	curl -s localhost:8080/v1/sessions -d '{"tenant":"acme"}'
//	curl -s localhost:8080/v1/sessions/<id>/eval \
//	     -d '{"program":"x <- rnorm.matrix(100000, 8)\nsum(x * x)"}'
//	curl -s localhost:8080/metrics | grep flashr_serve
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// batches flush, every accepted request is answered, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	flashr "repro"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		ssdRoot     = flag.String("ssd-root", "", "run out-of-core over a simulated SSD array at this path (default: in-memory)")
		drives      = flag.Int("drives", 4, "simulated SSD count")
		readMBps    = flag.Float64("read-mbps", 0, "SSD read throttle (0 = unthrottled)")
		writeMBps   = flag.Float64("write-mbps", 0, "SSD write throttle")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker goroutines")
		resCacheMB  = flag.Float64("result-cache-mb", 0, "sub-DAG result cache budget in MiB (0 = engine default, -1 = disabled)")
		passes      = flag.Int("max-passes", 0, "concurrent materialization passes (0 = engine default)")
		batchMax    = flag.Int("batch-max", serve.DefaultMaxBatch, "max requests coalesced per batch")
		batchWait   = flag.Duration("batch-wait", serve.DefaultBatchWait, "how long a batch waits for company before flushing")
		queueDepth  = flag.Int("queue-depth", serve.DefaultQueueDepth, "accept queue bound; beyond it requests shed with 429")
		maxSessions = flag.Int("max-sessions", serve.DefaultMaxSessionsPerTenant, "serving sessions per tenant (-1 = unlimited)")
		maxInflight = flag.Int("max-inflight", serve.DefaultMaxInflightPerTenant, "in-flight requests per tenant (-1 = unlimited)")
		sessionIdle = flag.Duration("session-idle", serve.DefaultSessionIdle, "idle serving sessions expire after this (-1s = never)")
		resultIdle  = flag.Duration("result-idle", 0, "idle result handles expire after this (0 = session-idle, -1s = never)")
		authTokens  = flag.String("auth-tokens", "", "comma-separated tenant=token pairs; when set, requests need Authorization: Bearer <token>")
		waitFloor   = flag.Duration("batch-wait-floor", 0, "adaptive batching: minimum flush window (0 = 1ms)")
		waitCeil    = flag.Duration("batch-wait-ceil", 0, "adaptive batching: maximum flush window (0 = fixed -batch-wait)")
		maxEstMB    = flag.Float64("max-est-mb", 0, "reject programs whose estimated working set exceeds this many MiB (0 = unlimited)")
		maxPinMB    = flag.Float64("max-pinned-mb", 0, "per-tenant byte quota for pinned result handles, in MiB (0 = unlimited)")
		drainWait   = flag.Duration("drain-wait", 30*time.Second, "graceful shutdown budget before forced exit")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics and /debug/pprof/ on this extra address")
	)
	flag.Parse()

	opts := flashr.Options{Workers: *workers, ReadMBps: *readMBps, WriteMBps: *writeMBps,
		MaxConcurrentPasses: *passes}
	if *resCacheMB < 0 {
		opts.ResultCacheBytes = -1
	} else {
		opts.ResultCacheBytes = int64(*resCacheMB * (1 << 20))
	}
	mode := "in-memory (FlashR-IM)"
	if *ssdRoot != "" {
		opts.EM = true
		for i := 0; i < *drives; i++ {
			opts.SSDDirs = append(opts.SSDDirs, filepath.Join(*ssdRoot, fmt.Sprintf("ssd-%02d", i)))
		}
		mode = fmt.Sprintf("out-of-core on %d simulated SSDs (FlashR-EM)", *drives)
	}
	root, err := flashr.NewSession(opts)
	if err != nil {
		fatal(err)
	}
	defer root.Close()

	tokens, err := parseAuthTokens(*authTokens)
	if err != nil {
		fatal(err)
	}
	sv, err := serve.New(serve.Config{
		Root:                    root,
		MaxBatch:                *batchMax,
		BatchWait:               *batchWait,
		BatchWaitFloor:          *waitFloor,
		BatchWaitCeil:           *waitCeil,
		QueueDepth:              *queueDepth,
		MaxSessionsPerTenant:    *maxSessions,
		MaxInflightPerTenant:    *maxInflight,
		SessionIdle:             *sessionIdle,
		ResultIdle:              *resultIdle,
		AuthTokens:              tokens,
		MaxEstimatedBytes:       int64(*maxEstMB * (1 << 20)),
		MaxPinnedBytesPerTenant: int64(*maxPinMB * (1 << 20)),
	})
	if err != nil {
		fatal(err)
	}

	if *debugAddr != "" {
		ds, err := trace.StartDebugServer(*debugAddr, trace.Handler(sv.Metrics()))
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Printf("flashr-serve: debug server on %s (/metrics, /debug/pprof/)\n", ds.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: sv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("flashr-serve: %s — listening on %s (batch-max=%d batch-wait=%s)\n",
		mode, ln.Addr(), *batchMax, *batchWait)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("flashr-serve: %s — draining\n", sig)
	case err := <-serveErr:
		fatal(err)
	}

	// Drain: stop accepting (Shutdown waits for in-flight handlers, which
	// block on their batch responses), then flush the batcher and prove the
	// accounting balances.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "flashr-serve: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := sv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "flashr-serve: drain: %v\n", err)
		os.Exit(1)
	}
	acc, ans := sv.Accepted(), sv.Answered()
	fmt.Printf("flashr-serve: drained accepted=%d answered=%d\n", acc, ans)
	if acc != ans {
		fmt.Fprintf(os.Stderr, "flashr-serve: drain lost %d accepted requests\n", acc-ans)
		os.Exit(1)
	}
}

// parseAuthTokens turns "tenant=token,tenant2=token2" into the Config's
// token→tenant map. Empty input disables auth.
func parseAuthTokens(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		tenant, token, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || tenant == "" || token == "" {
			return nil, fmt.Errorf("-auth-tokens: bad pair %q (want tenant=token)", pair)
		}
		if prev, dup := out[token]; dup {
			return nil, fmt.Errorf("-auth-tokens: token for %q already assigned to %q", tenant, prev)
		}
		out[token] = tenant
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flashr-serve: %v\n", err)
	os.Exit(1)
}
