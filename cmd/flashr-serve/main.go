// Command flashr-serve exposes one shared FlashR engine as a multi-tenant
// HTTP/JSON service: clients create sessions, submit R-flavored programs or
// typed op requests, and read results, while a request batcher coalesces
// compatible requests arriving within a short max-wait window into shared
// materialization passes. Each tenant maps to PassOptions{Owner, Weight} on
// the engine, so the pass-admission arbiter and per-owner fair I/O queueing
// enforce per-tenant QoS.
//
//	flashr-serve -addr :8080 -ssd-root /data/flashr -read-mbps 400
//
//	curl -s localhost:8080/v1/sessions -d '{"tenant":"acme"}'
//	curl -s localhost:8080/v1/sessions/<id>/eval \
//	     -d '{"program":"x <- rnorm.matrix(100000, 8)\nsum(x * x)"}'
//	curl -s localhost:8080/metrics | grep flashr_serve
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// batches flush, every accepted request is answered, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	flashr "repro"
	"repro/internal/serve"
	"repro/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		ssdRoot     = flag.String("ssd-root", "", "run out-of-core over a simulated SSD array at this path (default: in-memory)")
		drives      = flag.Int("drives", 4, "simulated SSD count")
		readMBps    = flag.Float64("read-mbps", 0, "SSD read throttle (0 = unthrottled)")
		writeMBps   = flag.Float64("write-mbps", 0, "SSD write throttle")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker goroutines")
		passes      = flag.Int("max-passes", 0, "concurrent materialization passes (0 = engine default)")
		batchMax    = flag.Int("batch-max", serve.DefaultMaxBatch, "max requests coalesced per batch")
		batchWait   = flag.Duration("batch-wait", serve.DefaultBatchWait, "how long a batch waits for company before flushing")
		queueDepth  = flag.Int("queue-depth", serve.DefaultQueueDepth, "accept queue bound; beyond it requests shed with 429")
		maxSessions = flag.Int("max-sessions", serve.DefaultMaxSessionsPerTenant, "serving sessions per tenant (-1 = unlimited)")
		maxInflight = flag.Int("max-inflight", serve.DefaultMaxInflightPerTenant, "in-flight requests per tenant (-1 = unlimited)")
		sessionIdle = flag.Duration("session-idle", serve.DefaultSessionIdle, "idle serving sessions expire after this (-1s = never)")
		drainWait   = flag.Duration("drain-wait", 30*time.Second, "graceful shutdown budget before forced exit")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics and /debug/pprof/ on this extra address")
	)
	flag.Parse()

	opts := flashr.Options{Workers: *workers, ReadMBps: *readMBps, WriteMBps: *writeMBps,
		MaxConcurrentPasses: *passes}
	mode := "in-memory (FlashR-IM)"
	if *ssdRoot != "" {
		opts.EM = true
		for i := 0; i < *drives; i++ {
			opts.SSDDirs = append(opts.SSDDirs, filepath.Join(*ssdRoot, fmt.Sprintf("ssd-%02d", i)))
		}
		mode = fmt.Sprintf("out-of-core on %d simulated SSDs (FlashR-EM)", *drives)
	}
	root, err := flashr.NewSession(opts)
	if err != nil {
		fatal(err)
	}
	defer root.Close()

	sv, err := serve.New(serve.Config{
		Root:                 root,
		MaxBatch:             *batchMax,
		BatchWait:            *batchWait,
		QueueDepth:           *queueDepth,
		MaxSessionsPerTenant: *maxSessions,
		MaxInflightPerTenant: *maxInflight,
		SessionIdle:          *sessionIdle,
	})
	if err != nil {
		fatal(err)
	}

	if *debugAddr != "" {
		ds, err := trace.StartDebugServer(*debugAddr, trace.Handler(sv.Metrics()))
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Printf("flashr-serve: debug server on %s (/metrics, /debug/pprof/)\n", ds.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: sv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("flashr-serve: %s — listening on %s (batch-max=%d batch-wait=%s)\n",
		mode, ln.Addr(), *batchMax, *batchWait)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("flashr-serve: %s — draining\n", sig)
	case err := <-serveErr:
		fatal(err)
	}

	// Drain: stop accepting (Shutdown waits for in-flight handlers, which
	// block on their batch responses), then flush the batcher and prove the
	// accounting balances.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "flashr-serve: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := sv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "flashr-serve: drain: %v\n", err)
		os.Exit(1)
	}
	acc, ans := sv.Accepted(), sv.Answered()
	fmt.Printf("flashr-serve: drained accepted=%d answered=%d\n", acc, ans)
	if acc != ans {
		fmt.Fprintf(os.Stderr, "flashr-serve: drain lost %d accepted requests\n", acc-ans)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flashr-serve: %v\n", err)
	os.Exit(1)
}
