// Command flashr-loadgen drives a running flashr-serve and reports per-tenant
// throughput plus batching statistics. It is the driver behind the CI
// serve-smoke job and the EXPERIMENTS throughput-vs-batch-wait recipes.
//
// Two modes:
//
//   - Closed-loop (default): -clients concurrent clients each create one
//     serving session under their tenant, run the -setup program once, then
//     issue -requests sequential -program evals.
//
//     flashr-loadgen -addr http://127.0.0.1:8080 -tenants 2 -clients 8 -requests 12
//
//   - Open-loop (-rate > 0): requests arrive as a Poisson process at -rate
//     req/s for -duration, regardless of how fast the server answers — the
//     arrival pattern the adaptive batcher is tuned against. Sessions are
//     pooled per tenant and arrivals dispatch onto them round-robin.
//
//     flashr-loadgen -addr http://127.0.0.1:8080 -rate 200 -duration 10s
//
// With -auth "tenant-0=tok0,tenant-1=tok1", requests carry the tenant's
// bearer token. The exit code is nonzero if any request fails outright; with
// -allow-reject, shed 429/503s count as rejected (not lost) so the tool can
// overlap a server's SIGTERM drain.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type result struct {
	tenant    string
	ok        int
	rejected  int
	failed    int
	batched   int // responses whose batch_size > 1
	latencies []time.Duration
}

// client bundles the per-tenant request state shared by both modes.
type client struct {
	hc    *http.Client
	addr  string
	token string // bearer token, "" = no auth header
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "flashr-serve base URL")
		tenants     = flag.Int("tenants", 2, "number of tenants to spread clients across")
		clients     = flag.Int("clients", 8, "concurrent clients (closed-loop) or pooled sessions per tenant (open-loop)")
		requests    = flag.Int("requests", 12, "closed-loop: eval requests per client")
		rate        = flag.Float64("rate", 0, "open-loop: Poisson arrival rate in req/s across all tenants (0 = closed-loop)")
		duration    = flag.Duration("duration", 10*time.Second, "open-loop: how long to generate arrivals")
		seed        = flag.Int64("seed", 1, "open-loop: arrival-process RNG seed")
		setup       = flag.String("setup", "x <- runif.matrix(4096, 4, 0, 1, 7)", "program run once per session before the request loop")
		program     = flag.String("program", "sum(x * x)", "program each request evaluates; a literal {i} is replaced by the global request index (defeats result caching)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		auth        = flag.String("auth", "", "comma-separated tenant=token pairs sent as Authorization: Bearer")
		allowReject = flag.Bool("allow-reject", false, "treat 429/503 responses as rejected rather than failed (drain overlap)")
	)
	flag.Parse()
	if *tenants < 1 || *clients < 1 {
		fmt.Fprintln(os.Stderr, "flashr-loadgen: -tenants and -clients must be ≥ 1")
		os.Exit(2)
	}
	tokens, err := parseAuth(*auth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flashr-loadgen:", err)
		os.Exit(2)
	}

	hc := &http.Client{Timeout: *timeout}
	clientFor := func(tenant string) client {
		return client{hc: hc, addr: *addr, token: tokens[tenant]}
	}

	var results []result
	var wall time.Duration
	if *rate > 0 {
		results, wall = runOpenLoop(clientFor, *tenants, *clients, *rate, *duration, *seed, *setup, *program, *allowReject)
	} else {
		results = make([]result, *clients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				tenant := fmt.Sprintf("tenant-%d", c%*tenants)
				results[c] = runClient(clientFor(tenant), tenant, *setup, *program, *requests, c**requests, *allowReject)
			}(c)
		}
		wg.Wait()
		wall = time.Since(start)
	}

	perTenant := map[string]*result{}
	var tenantNames []string
	totalOK, totalRejected, totalFailed, totalBatched := 0, 0, 0, 0
	var all []time.Duration
	for i := range results {
		r := &results[i]
		agg, ok := perTenant[r.tenant]
		if !ok {
			agg = &result{tenant: r.tenant}
			perTenant[r.tenant] = agg
			tenantNames = append(tenantNames, r.tenant)
		}
		agg.ok += r.ok
		agg.rejected += r.rejected
		agg.failed += r.failed
		agg.batched += r.batched
		agg.latencies = append(agg.latencies, r.latencies...)
		totalOK += r.ok
		totalRejected += r.rejected
		totalFailed += r.failed
		totalBatched += r.batched
		all = append(all, r.latencies...)
	}
	sort.Strings(tenantNames)

	if *rate > 0 {
		fmt.Printf("flashr-loadgen: open-loop %.1f req/s for %s over %d tenants (wall %s)\n",
			*rate, *duration, *tenants, wall.Round(time.Millisecond))
	} else {
		fmt.Printf("flashr-loadgen: %d clients × %d requests over %d tenants in %s\n",
			*clients, *requests, *tenants, wall.Round(time.Millisecond))
	}
	minTput, maxTput := 0.0, 0.0
	for i, tn := range tenantNames {
		r := perTenant[tn]
		tput := float64(r.ok) / wall.Seconds()
		if i == 0 || tput < minTput {
			minTput = tput
		}
		if tput > maxTput {
			maxTput = tput
		}
		fmt.Printf("  %-12s ok=%-4d rejected=%-3d failed=%-3d batched=%-4d %.1f req/s p50=%s p99=%s\n",
			tn, r.ok, r.rejected, r.failed, r.batched, tput,
			percentile(r.latencies, 0.50).Round(time.Microsecond),
			percentile(r.latencies, 0.99).Round(time.Microsecond))
	}
	fmt.Printf("total: ok=%d rejected=%d failed=%d batched=%d throughput=%.1f req/s p50=%s p99=%s\n",
		totalOK, totalRejected, totalFailed, totalBatched,
		float64(totalOK)/wall.Seconds(),
		percentile(all, 0.50).Round(time.Microsecond), percentile(all, 0.99).Round(time.Microsecond))
	if len(tenantNames) > 1 && minTput > 0 {
		fmt.Printf("fairness: max/min tenant throughput = %.2f\n", maxTput/minTput)
	}
	if totalFailed > 0 {
		os.Exit(1)
	}
}

// runOpenLoop generates Poisson arrivals at rate req/s for the given duration
// and dispatches each onto a pre-created pool of sessions (per tenant,
// round-robin), never waiting for the previous request to finish. Concurrency
// is bounded only by a large safety semaphore, so server-side queueing shows
// up as client-observed latency — the signal the adaptive batcher trades
// against.
func runOpenLoop(clientFor func(string) client, tenants, perTenantSessions int, rate float64, duration time.Duration, seed int64, setup, program string, allowReject bool) ([]result, time.Duration) {
	type sess struct {
		cl  client
		sid string
	}
	var pools [][]sess
	tenantNames := make([]string, tenants)
	for t := 0; t < tenants; t++ {
		tenant := fmt.Sprintf("tenant-%d", t)
		tenantNames[t] = tenant
		cl := clientFor(tenant)
		var pool []sess
		for i := 0; i < perTenantSessions; i++ {
			sid, err := createSession(cl, tenant)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flashr-loadgen: %s: create session: %v\n", tenant, err)
				os.Exit(1)
			}
			if setup != "" {
				if _, _, err := eval(cl, sid, setup); err != nil {
					fmt.Fprintf(os.Stderr, "flashr-loadgen: %s: setup: %v\n", tenant, err)
					os.Exit(1)
				}
			}
			pool = append(pool, sess{cl: cl, sid: sid})
		}
		pools = append(pools, pool)
	}
	// Separate warmup from measurement: the setup evals are traffic too, and
	// without a settle the measured phase starts with their arrival history
	// (and any adaptive state derived from it) still hot.
	time.Sleep(250 * time.Millisecond)

	rng := rand.New(rand.NewSource(seed))
	sem := make(chan struct{}, 4096)
	var mu sync.Mutex
	agg := make([]result, tenants)
	for t := range agg {
		agg[t].tenant = tenantNames[t]
	}
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(duration)
	next := start
	for i := 0; ; i++ {
		// Exponential inter-arrival gap: a Poisson process at the target rate.
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		next = next.Add(gap)
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		t := i % tenants
		s := pools[t][(i/tenants)%perTenantSessions]
		sem <- struct{}{}
		wg.Add(1)
		go func(t, i int, s sess) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			code, batchSize, err := eval(s.cl, s.sid, instantiate(program, i))
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			r := &agg[t]
			switch {
			case err == nil && code == http.StatusOK:
				r.ok++
				r.latencies = append(r.latencies, lat)
				if batchSize > 1 {
					r.batched++
				}
			case err == nil && allowReject && (code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable):
				r.rejected++
			default:
				if err == nil {
					err = fmt.Errorf("HTTP %d", code)
				}
				fmt.Fprintf(os.Stderr, "flashr-loadgen: %s: %v\n", tenantNames[t], err)
				r.failed++
			}
		}(t, i, s)
	}
	wg.Wait()
	return agg, time.Since(start)
}

// instantiate substitutes the request's global index for a literal {i}, so a
// templated -program yields a distinct DAG per request instead of hitting the
// engine's result cache on every repeat.
func instantiate(program string, i int) string {
	return strings.ReplaceAll(program, "{i}", strconv.Itoa(i))
}

// runClient is one closed-loop client: create session, setup, request loop.
// base offsets this client's {i} indexes so they stay globally unique.
func runClient(cl client, tenant, setup, program string, n, base int, allowReject bool) result {
	res := result{tenant: tenant}
	sid, err := createSession(cl, tenant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashr-loadgen: %s: create session: %v\n", tenant, err)
		res.failed += n
		return res
	}
	if setup != "" {
		if _, _, err := eval(cl, sid, setup); err != nil {
			fmt.Fprintf(os.Stderr, "flashr-loadgen: %s: setup: %v\n", tenant, err)
			res.failed += n
			return res
		}
	}
	for i := 0; i < n; i++ {
		t0 := time.Now()
		code, batchSize, err := eval(cl, sid, instantiate(program, base+i))
		switch {
		case err == nil && code == http.StatusOK:
			res.ok++
			res.latencies = append(res.latencies, time.Since(t0))
			if batchSize > 1 {
				res.batched++
			}
		case err == nil && allowReject && (code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable):
			res.rejected++
		default:
			if err == nil {
				err = fmt.Errorf("HTTP %d", code)
			}
			fmt.Fprintf(os.Stderr, "flashr-loadgen: %s: request %d: %v\n", tenant, i, err)
			res.failed++
		}
	}
	return res
}

func (c client) post(path string, body any) (*http.Response, error) {
	raw, _ := json.Marshal(body)
	req, err := http.NewRequest(http.MethodPost, c.addr+path, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return c.hc.Do(req)
}

func createSession(cl client, tenant string) (string, error) {
	resp, err := cl.post("/v1/sessions", map[string]string{"tenant": tenant})
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.Session == "" {
		return "", fmt.Errorf("bad session response %q", raw)
	}
	return out.Session, nil
}

// eval submits one program and returns the HTTP status and reported batch
// size. A transport-level failure returns err; an HTTP error status does not.
func eval(cl client, sid, program string) (code, batchSize int, err error) {
	resp, err := cl.post("/v1/sessions/"+sid+"/eval", map[string]string{"program": program})
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		var out struct {
			BatchSize int `json:"batch_size"`
		}
		_ = json.Unmarshal(raw, &out)
		return resp.StatusCode, out.BatchSize, nil
	}
	return resp.StatusCode, 0, nil
}

// parseAuth turns "tenant=token,..." into a tenant→token map.
func parseAuth(s string) (map[string]string, error) {
	out := map[string]string{}
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		tenant, token, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || tenant == "" || token == "" {
			return nil, fmt.Errorf("-auth: bad pair %q (want tenant=token)", pair)
		}
		out[tenant] = token
	}
	return out, nil
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
