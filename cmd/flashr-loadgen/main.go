// Command flashr-loadgen drives a running flashr-serve with concurrent
// closed-loop clients spread across tenants, and reports per-tenant
// throughput plus batching statistics. It is the driver behind the CI
// serve-smoke job and the EXPERIMENTS throughput-vs-batch-wait recipe.
//
//	flashr-loadgen -addr http://127.0.0.1:8080 -tenants 2 -clients 8 -requests 12
//
// Each client creates one serving session under its tenant, runs the -setup
// program once, then issues -requests sequential -program evals. The exit
// code is nonzero if any request fails outright; with -allow-reject,
// drain-time 503s count as rejected (not lost) so the tool can overlap a
// server's SIGTERM drain.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

type result struct {
	tenant    string
	ok        int
	rejected  int
	failed    int
	batched   int // responses whose batch_size > 1
	latencies []time.Duration
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "flashr-serve base URL")
		tenants     = flag.Int("tenants", 2, "number of tenants to spread clients across")
		clients     = flag.Int("clients", 8, "concurrent clients")
		requests    = flag.Int("requests", 12, "eval requests per client")
		setup       = flag.String("setup", "x <- runif.matrix(4096, 4, 0, 1, 7)", "program run once per session before the request loop")
		program     = flag.String("program", "sum(x * x)", "program each request evaluates")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		allowReject = flag.Bool("allow-reject", false, "treat 429/503 responses as rejected rather than failed (drain overlap)")
	)
	flag.Parse()
	if *tenants < 1 || *clients < 1 {
		fmt.Fprintln(os.Stderr, "flashr-loadgen: -tenants and -clients must be ≥ 1")
		os.Exit(2)
	}

	hc := &http.Client{Timeout: *timeout}
	results := make([]result, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c%*tenants)
			results[c] = runClient(hc, *addr, tenant, *setup, *program, *requests, *allowReject)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	perTenant := map[string]*result{}
	var tenantNames []string
	totalOK, totalRejected, totalFailed, totalBatched := 0, 0, 0, 0
	var all []time.Duration
	for i := range results {
		r := &results[i]
		agg, ok := perTenant[r.tenant]
		if !ok {
			agg = &result{tenant: r.tenant}
			perTenant[r.tenant] = agg
			tenantNames = append(tenantNames, r.tenant)
		}
		agg.ok += r.ok
		agg.rejected += r.rejected
		agg.failed += r.failed
		agg.batched += r.batched
		agg.latencies = append(agg.latencies, r.latencies...)
		totalOK += r.ok
		totalRejected += r.rejected
		totalFailed += r.failed
		totalBatched += r.batched
		all = append(all, r.latencies...)
	}
	sort.Strings(tenantNames)

	fmt.Printf("flashr-loadgen: %d clients × %d requests over %d tenants in %s\n",
		*clients, *requests, *tenants, wall.Round(time.Millisecond))
	minTput, maxTput := 0.0, 0.0
	for i, tn := range tenantNames {
		r := perTenant[tn]
		tput := float64(r.ok) / wall.Seconds()
		if i == 0 || tput < minTput {
			minTput = tput
		}
		if tput > maxTput {
			maxTput = tput
		}
		fmt.Printf("  %-12s ok=%-4d rejected=%-3d failed=%-3d batched=%-4d %.1f req/s p50=%s p99=%s\n",
			tn, r.ok, r.rejected, r.failed, r.batched, tput,
			percentile(r.latencies, 0.50).Round(time.Microsecond),
			percentile(r.latencies, 0.99).Round(time.Microsecond))
	}
	fmt.Printf("total: ok=%d rejected=%d failed=%d batched=%d throughput=%.1f req/s p50=%s p99=%s\n",
		totalOK, totalRejected, totalFailed, totalBatched,
		float64(totalOK)/wall.Seconds(),
		percentile(all, 0.50).Round(time.Microsecond), percentile(all, 0.99).Round(time.Microsecond))
	if len(tenantNames) > 1 && minTput > 0 {
		fmt.Printf("fairness: max/min tenant throughput = %.2f\n", maxTput/minTput)
	}
	if totalFailed > 0 {
		os.Exit(1)
	}
}

// runClient is one closed-loop client: create session, setup, request loop.
func runClient(hc *http.Client, addr, tenant, setup, program string, n int, allowReject bool) result {
	res := result{tenant: tenant}
	sid, err := createSession(hc, addr, tenant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashr-loadgen: %s: create session: %v\n", tenant, err)
		res.failed += n
		return res
	}
	if setup != "" {
		if _, _, err := eval(hc, addr, sid, setup); err != nil {
			fmt.Fprintf(os.Stderr, "flashr-loadgen: %s: setup: %v\n", tenant, err)
			res.failed += n
			return res
		}
	}
	for i := 0; i < n; i++ {
		t0 := time.Now()
		code, batchSize, err := eval(hc, addr, sid, program)
		switch {
		case err == nil && code == http.StatusOK:
			res.ok++
			res.latencies = append(res.latencies, time.Since(t0))
			if batchSize > 1 {
				res.batched++
			}
		case err == nil && allowReject && (code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable):
			res.rejected++
		default:
			if err == nil {
				err = fmt.Errorf("HTTP %d", code)
			}
			fmt.Fprintf(os.Stderr, "flashr-loadgen: %s: request %d: %v\n", tenant, i, err)
			res.failed++
		}
	}
	return res
}

func createSession(hc *http.Client, addr, tenant string) (string, error) {
	body, _ := json.Marshal(map[string]string{"tenant": tenant})
	resp, err := hc.Post(addr+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(raw, &out); err != nil || out.Session == "" {
		return "", fmt.Errorf("bad session response %q", raw)
	}
	return out.Session, nil
}

// eval submits one program and returns the HTTP status and reported batch
// size. A transport-level failure returns err; an HTTP error status does not.
func eval(hc *http.Client, addr, sid, program string) (code, batchSize int, err error) {
	body, _ := json.Marshal(map[string]string{"program": program})
	resp, err := hc.Post(addr+"/v1/sessions/"+sid+"/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		var out struct {
			BatchSize int `json:"batch_size"`
		}
		_ = json.Unmarshal(raw, &out)
		return resp.StatusCode, out.BatchSize, nil
	}
	return resp.StatusCode, 0, nil
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
