// Command flashr-shardworker runs one shard worker of a distributed FlashR
// session: a full engine behind the length-prefixed TCP shard protocol. A
// coordinator (flashr.NewSession with WithSharding and this worker's address
// in Addrs) pushes leaf partitions, drives materialization passes, and pulls
// raw sink partials; tall outputs stay resident here between passes.
//
//	flashr-shardworker -listen 127.0.0.1:7070 -part-rows 16384
//	flashr-shardworker -listen :7070 -ssd-root /data/shard0 -read-mbps 400
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// RPCs finish, the accepted==answered accounting is proven, and the process
// exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/safs"
	"repro/internal/shard"
	"repro/internal/trace"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7070", "TCP listen address for the shard protocol")
		partRows  = flag.Int("part-rows", 0, "I/O partition height; must match the coordinator (0 = engine default)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "engine worker goroutines")
		ssdRoot   = flag.String("ssd-root", "", "keep shard matrices out-of-core on a simulated SSD array at this path (default: in-memory)")
		drives    = flag.Int("drives", 4, "simulated SSD count")
		readMBps  = flag.Float64("read-mbps", 0, "SSD read throttle (0 = unthrottled)")
		writeMBps = flag.Float64("write-mbps", 0, "SSD write throttle")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics and /debug/pprof/ on this extra address")
		drainWait  = flag.Duration("drain-wait", 30*time.Second, "graceful shutdown budget before forced exit")
		rebindWait = flag.Duration("rebind-wait", 5*time.Second, "keep retrying the listen bind for this long (a restarted worker may race its predecessor's port)")
	)
	flag.Parse()

	cfg := core.Config{Workers: *workers, PartRows: *partRows}
	mode := "in-memory"
	if *ssdRoot != "" {
		var dirs []string
		for i := 0; i < *drives; i++ {
			dirs = append(dirs, filepath.Join(*ssdRoot, fmt.Sprintf("ssd-%02d", i)))
		}
		fs, err := safs.Open(safs.Config{Drives: dirs, ReadMBps: *readMBps, WriteMBps: *writeMBps})
		if err != nil {
			fatal(err)
		}
		defer fs.Close()
		cfg.FS = fs
		cfg.EM = true
		mode = fmt.Sprintf("out-of-core on %d simulated SSDs", *drives)
	}

	w, err := shard.NewWorker(cfg)
	if err != nil {
		fatal(err)
	}
	defer w.Close()

	if *debugAddr != "" {
		ds, err := trace.StartDebugServer(*debugAddr, trace.Handler(w.Engine().Metrics()))
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Printf("flashr-shardworker: debug server on %s (/metrics, /debug/pprof/)\n", ds.Addr())
	}

	srv, err := shard.NewServer(*listen, w)
	for deadline := time.Now().Add(*rebindWait); err != nil && time.Now().Before(deadline); {
		time.Sleep(100 * time.Millisecond)
		srv, err = shard.NewServer(*listen, w)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("flashr-shardworker: %s — listening on %s (part-rows=%d boot=%x)\n",
		mode, srv.Addr(), w.Engine().PartRows(), w.Boot())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigc
	fmt.Printf("flashr-shardworker: %s — draining\n", sig)

	// Drain stops accepting and nudges idle connections until in-flight
	// RPCs finish; the watchdog bounds a pathological hang.
	watchdog := time.AfterFunc(*drainWait, func() {
		fmt.Fprintf(os.Stderr, "flashr-shardworker: drain exceeded %s, aborting\n", *drainWait)
		os.Exit(1)
	})
	srv.Drain()
	watchdog.Stop()
	acc, ans := srv.Accepted(), srv.Answered()
	fmt.Printf("flashr-shardworker: drained accepted=%d answered=%d fenced=%d adoptions=%d\n",
		acc, ans, w.FenceRejects(), w.Adoptions())
	if acc != ans {
		fmt.Fprintf(os.Stderr, "flashr-shardworker: drain lost %d accepted requests\n", acc-ans)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flashr-shardworker: %v\n", err)
	os.Exit(1)
}
