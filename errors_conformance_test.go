package flashr

import (
	"errors"
	"testing"
)

// TestTryErrorConformance drives every Try* variant through its
// malformed-input cases and asserts the contract of the error-returning
// surface: the Try* form returns (never panics) a typed *Error, and the
// panicking shorthand panics with a value whose message is byte-identical
// to that error's text.
func TestTryErrorConformance(t *testing.T) {
	s := NewMemSession()
	s2 := NewMemSession()
	defer s.Close()
	defer s2.Close()

	small := s.SmallFromRows([][]float64{{1, 2}, {3, 4}})
	small3 := s.SmallFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	other := s2.SmallFromRows([][]float64{{1, 2}, {3, 4}})
	big, err := s.Runif(256, 2, 0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	big3, err := s.Runif(300, 3, 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	ragged := [][]float64{{1, 2}, {3}}

	cases := []struct {
		name string
		try  func() (*FM, error)
		call func()
	}{
		{"add/two scalars", func() (*FM, error) { return TryAdd(1.0, 2.0) }, func() { Add(1.0, 2.0) }},
		{"add/bad operand type", func() (*FM, error) { return TryAdd(small, "nope") }, func() { Add(small, "nope") }},
		{"add/cross-session", func() (*FM, error) { return TryAdd(small, other) }, func() { Add(small, other) }},
		{"add/shape mismatch", func() (*FM, error) { return TryAdd(small, small3) }, func() { Add(small, small3) }},
		{"add/trans mix", func() (*FM, error) { return TryAdd(big, big.T()) }, func() { Add(big, big.T()) }},
		{"sub/shape mismatch", func() (*FM, error) { return TrySub(small, small3) }, func() { Sub(small, small3) }},
		{"mul/shape mismatch", func() (*FM, error) { return TryMul(small, small3) }, func() { Mul(small, small3) }},
		{"div/shape mismatch", func() (*FM, error) { return TryDiv(small, small3) }, func() { Div(small, small3) }},
		{"mapply/unknown func", func() (*FM, error) { return TryMapply(small, small, "frobnicate") }, func() { Mapply(small, small, "frobnicate") }},
		{"sapply/unknown func", func() (*FM, error) { return TrySapply(small, "frobnicate") }, func() { Sapply(small, "frobnicate") }},
		{"agg/unknown func", func() (*FM, error) { return TryAgg(small, "frobnicate") }, func() { Agg(small, "frobnicate") }},
		{"agg.row/unknown func", func() (*FM, error) { return TryAggRow(small, "frobnicate") }, func() { AggRow(small, "frobnicate") }},
		{"agg.col/unknown func", func() (*FM, error) { return TryAggCol(small, "frobnicate") }, func() { AggCol(small, "frobnicate") }},
		{"row.which.min/small", func() (*FM, error) { return TryRowWhichMin(small) }, func() { RowWhichMin(small) }},
		{"row.which.max/trans", func() (*FM, error) { return TryRowWhichMax(big.T()) }, func() { RowWhichMax(big.T()) }},
		{"groupby.row/unknown func", func() (*FM, error) { return TryGroupByRow(big, big, 2, "frobnicate") }, func() { GroupByRow(big, big, 2, "frobnicate") }},
		{"groupby.row/small", func() (*FM, error) { return TryGroupByRow(small, small, 2, "+") }, func() { GroupByRow(small, small, 2, "+") }},
		{"groupby.col/small", func() (*FM, error) { return TryGroupByCol(small, []int{0, 1}, 2, "+") }, func() { GroupByCol(small, []int{0, 1}, 2, "+") }},
		{"inner.prod/unknown f1", func() (*FM, error) { return TryInnerProd(big, small, "frobnicate", "+") }, func() { InnerProd(big, small, "frobnicate", "+") }},
		{"inner.prod/small left", func() (*FM, error) { return TryInnerProd(small, small, "*", "+") }, func() { InnerProd(small, small, "*", "+") }},
		{"matmul/two tall", func() (*FM, error) { return TryMatMul(big, big3) }, func() { MatMul(big, big3) }},
		{"matmul/dims", func() (*FM, error) { return TryMatMul(big, small3) }, func() { MatMul(big, small3) }},
		{"matmul/t-by-t", func() (*FM, error) { return TryMatMul(big.T(), big3.T()) }, func() { MatMul(big.T(), big3.T()) }},
		{"matmul/small by tall", func() (*FM, error) { return TryMatMul(small, big) }, func() { MatMul(small, big) }},
		{"matmul/small dims", func() (*FM, error) { return TryMatMul(small, small3) }, func() { MatMul(small, small3) }},
		{"crossprod/row mismatch", func() (*FM, error) { return TryCrossProd2(big, big3) }, func() { CrossProd2(big, big3) }},
		{"sweep/bad margin", func() (*FM, error) { return TrySweep(big, 3, small, "+") }, func() { Sweep(big, 3, small, "+") }},
		{"sweep/unknown func", func() (*FM, error) { return TrySweep(big, 2, small, "frobnicate") }, func() { Sweep(big, 2, small, "frobnicate") }},
		{"cum.col/unknown func", func() (*FM, error) { return TryCumCol(small, "frobnicate") }, func() { CumCol(small, "frobnicate") }},
		{"cum.row/unknown func", func() (*FM, error) { return TryCumRow(small, "frobnicate") }, func() { CumRow(small, "frobnicate") }},
		{"get.cols/out of range", func() (*FM, error) { return TryGetCols(small, []int{5}) }, func() { GetCols(small, []int{5}) }},
		{"get.cols/negative", func() (*FM, error) { return TryGetCols(big, []int{-1}) }, func() { GetCols(big, []int{-1}) }},
		{"cbind/nothing", func() (*FM, error) { return TryCbind() }, func() { Cbind() }},
		{"cbind/row mismatch", func() (*FM, error) { return TryCbind(small, small3) }, func() { Cbind(small, small3) }},
		{"rbind/nothing", func() (*FM, error) { return TryRbind() }, func() { Rbind() }},
		{"rbind/col mismatch", func() (*FM, error) { return TryRbind(small, small3) }, func() { Rbind(small, small3) }},
		{"set.cols/out of range", func() (*FM, error) { return TrySetCols(small, []int{7}, small) }, func() { SetCols(small, []int{7}, small) }},
		{"set.cols/trans", func() (*FM, error) { return TrySetCols(big.T(), []int{0}, small) }, func() { SetCols(big.T(), []int{0}, small) }},
		{"small.from.rows/ragged", func() (*FM, error) { return s.TrySmallFromRows(ragged) }, func() { s.SmallFromRows(ragged) }},
		{"from.rows/ragged", func() (*FM, error) { return s.TryFromRows(ragged) }, nil},
		{"from.rows/empty", func() (*FM, error) { return s.TryFromRows(nil) }, nil},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.try()
			if err == nil {
				t.Fatalf("Try variant accepted malformed input (got %v)", out)
			}
			if out != nil {
				t.Fatalf("Try variant returned both a matrix and an error")
			}
			var te *Error
			if !errors.As(err, &te) {
				t.Fatalf("Try error is %T (%v), want *flashr.Error", err, err)
			}
			if te.Op == "" || te.Reason == "" {
				t.Fatalf("typed error missing Op or Reason: %+v", te)
			}
			if tc.call == nil {
				return
			}
			// The panicking twin must panic with the same message.
			var recovered any
			func() {
				defer func() { recovered = recover() }()
				tc.call()
			}()
			if recovered == nil {
				t.Fatalf("panicking twin did not panic")
			}
			perr, ok := recovered.(error)
			if !ok {
				t.Fatalf("panic value is %T, want error", recovered)
			}
			if perr.Error() != err.Error() {
				t.Fatalf("panic message %q != Try error %q", perr.Error(), err.Error())
			}
			var pte *Error
			if !errors.As(perr, &pte) {
				t.Fatalf("panic value is not a *flashr.Error: %T", perr)
			}
		})
	}
}

// TestPanickingShorthandStillWorks pins the compatibility contract: valid
// inputs through the panicking shorthand behave exactly as before the Try*
// layer existed.
func TestPanickingShorthandStillWorks(t *testing.T) {
	s := NewMemSession()
	defer s.Close()
	a := s.SmallFromRows([][]float64{{1, 2}, {3, 4}})
	b := s.SmallFromRows([][]float64{{10, 20}, {30, 40}})
	sum, err := Add(a, b).AsVector()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33, 44}
	for i, v := range want {
		if sum[i] != v {
			t.Fatalf("Add result %v, want %v", sum, want)
		}
	}
	tryOut, err := TryAdd(a, b)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := tryOut.AsVector()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want {
		if tv[i] != v {
			t.Fatalf("TryAdd result %v, want %v", tv, want)
		}
	}
}
