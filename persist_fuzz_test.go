package flashr

import (
	"encoding/json"
	"testing"
)

// FuzzDecodeMatrixMeta hammers the sidecar parser with arbitrary bytes: it
// must reject malformed input with an error — never panic, and never accept
// a sidecar whose fields could drive the open path out of bounds.
func FuzzDecodeMatrixMeta(f *testing.F) {
	for _, meta := range []matrixMeta{
		{NRow: 2000, NCol: 5, PartRows: 256, DType: "double", Version: metaVersion,
			Checksums: map[string][]uint32{"m": {1, 2, 3}}},
		{NRow: 600, NCol: 40, PartRows: 256, Blocks: 2, DType: "double", Version: 1},
		{NRow: 0, NCol: 1, PartRows: 1, DType: "integer", Version: 2},
	} {
		raw, err := json.Marshal(meta)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"nrow":-1}`))
	f.Add([]byte(`{"version":99,"ncol":1,"part_rows":1}`))
	f.Add([]byte(`{"ncol":40,"part_rows":256,"blocks":7}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		meta, err := decodeMatrixMeta("fz", raw)
		if err != nil {
			return
		}
		if meta.Version > metaVersion {
			t.Fatalf("accepted future version %d", meta.Version)
		}
		if meta.NRow < 0 || meta.NCol <= 0 || meta.PartRows <= 0 || meta.Blocks < 0 {
			t.Fatalf("accepted impossible shape: %+v", meta)
		}
		if meta.Blocks < 1<<12 {
			if n := len(meta.metaFileNames("fz")); meta.Blocks > 0 && n != meta.Blocks {
				t.Fatalf("metaFileNames returned %d names for %d blocks", n, meta.Blocks)
			}
		}
	})
}
