package flashr

import (
	"context"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dense"
)

// Pinned is a retained reference to a materialized result: the backing data
// of a matrix at the moment it was pinned, guaranteed to stay readable until
// Release however the originating FM or session evolves afterwards (frees,
// cache evictions, in-place mutation privatizing the store). Serving layers
// build result handles on it: the result stays engine-resident (on SSD for
// EM sessions) and clients fetch row ranges on demand instead of receiving
// one giant inline rendering.
//
// Tall matrices pin their partitioned store through the engine's refcounted
// store machinery; small results (sink outputs, transposed views, in-memory
// smalls) pin a private dense copy.
type Pinned struct {
	ps       *core.PinnedStore
	d        *dense.Dense
	nrow     int64
	ncol     int64
	released atomic.Bool
}

// PinCtx materializes the matrix (joining the session's pending batch, so a
// flushed batch makes this free) and pins its result. The caller must
// Release the pin exactly once.
func (x *FM) PinCtx(ctx context.Context) (*Pinned, error) {
	if x.big != nil && !x.trans {
		if err := x.MaterializeCtx(ctx); err != nil {
			return nil, err
		}
		ps, err := x.s.eng.Pin(x.big)
		if err != nil {
			return nil, err
		}
		return &Pinned{ps: ps, nrow: ps.NRow(), ncol: int64(ps.NCol())}, nil
	}
	// Transposed views and small/sink results: gather a private dense copy.
	d, err := x.AsDense()
	if err != nil {
		return nil, err
	}
	if x.big == nil {
		// AsDense on a small/sink returns the shared dense; copy so a later
		// SetElement on the FM cannot mutate pinned data.
		d = d.Clone()
	}
	return &Pinned{d: d, nrow: int64(d.R), ncol: int64(d.C)}, nil
}

// Dim returns (rows, cols) of the pinned result.
func (p *Pinned) Dim() (int64, int64) { return p.nrow, p.ncol }

// Bytes returns the pinned result's logical size.
func (p *Pinned) Bytes() int64 { return p.nrow * p.ncol * 8 }

// Rows returns rows [lo, hi) of the pinned result as a dense matrix.
func (p *Pinned) Rows(lo, hi int64) (*dense.Dense, error) {
	if p.released.Load() {
		return nil, errf("rows", [][2]int64{{p.nrow, p.ncol}}, "read on released pin")
	}
	if lo < 0 || hi > p.nrow || lo > hi {
		return nil, errf("rows", [][2]int64{{p.nrow, p.ncol}}, "range [%d,%d) out of %d rows", lo, hi, p.nrow)
	}
	out := dense.New(int(hi-lo), int(p.ncol))
	if p.d != nil {
		copy(out.Data, p.d.Data[lo*p.ncol:hi*p.ncol])
		return out, nil
	}
	if err := p.ps.ReadRows(lo, hi, out.Data); err != nil {
		return nil, err
	}
	return out, nil
}

// Release drops the pin. Idempotent; data backed by a pinned store becomes
// freeable once every other reference (result cache, the originating Mat) is
// gone too.
func (p *Pinned) Release() error {
	if !p.released.CompareAndSwap(false, true) {
		return nil
	}
	if p.ps != nil {
		return p.ps.Release()
	}
	p.d = nil
	return nil
}
