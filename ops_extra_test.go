package flashr

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dense"
)

func TestSetCols(t *testing.T) {
	for name, s := range testSessions(t) {
		xd := dense.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
		x, _ := s.FromDense(xd)
		v, _ := s.FromRows([][]float64{{10, 30}, {40, 60}, {70, 90}})
		got, err := SetCols(x, []int{0, 2}, v).AsDense()
		if err != nil {
			t.Fatal(err)
		}
		want := dense.FromRows([][]float64{{10, 2, 30}, {40, 5, 60}, {70, 8, 90}})
		if !dense.Equalish(got, want, 0) {
			t.Fatalf("%s: setcols %v", name, got.Data)
		}
		// Original unchanged (functional semantics, virtual construction).
		orig, err := x.AsDense()
		if err != nil {
			t.Fatal(err)
		}
		if !dense.Equalish(orig, xd, 0) {
			t.Fatalf("%s: setcols mutated the source", name)
		}
		// Small path.
		sm := s.SmallFromRows([][]float64{{1, 2}, {3, 4}})
		got2 := SetCols(sm, []int{1}, s.SmallFromRows([][]float64{{9}, {9}}))
		if got2.mustSmall().At(0, 1) != 9 || got2.mustSmall().At(0, 0) != 1 {
			t.Fatalf("%s: small setcols", name)
		}
	}
}

func TestGroupByValue(t *testing.T) {
	for name, s := range testSessions(t) {
		v, _ := s.FromVec([]float64{2, 2, 3, 5, 3, 2})
		keys, folds, err := GroupBy(v, "+")
		if err != nil {
			t.Fatal(err)
		}
		// Groups: 2→{2,2,2} sum 6; 3→{3,3} sum 6; 5→{5} sum 5.
		if len(keys) != 3 || keys[0] != 2 || keys[1] != 3 || keys[2] != 5 {
			t.Fatalf("%s: keys %v", name, keys)
		}
		if folds[0] != 6 || folds[1] != 6 || folds[2] != 5 {
			t.Fatalf("%s: folds %v", name, folds)
		}
		// Count instance matches TableOf.
		_, counts, err := TableOf(v)
		if err != nil {
			t.Fatal(err)
		}
		_, cFolds, err := GroupBy(v, "count")
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if float64(counts[i]) != cFolds[i] {
				t.Fatalf("%s: groupby count %v vs table %v", name, cFolds, counts)
			}
		}
	}
}

func TestGetRows(t *testing.T) {
	for name, s := range testSessions(t) {
		// Rows spanning several 256-row partitions.
		x, err := s.GenerateMat(1000, 3, func(i int64, j int) float64 { return float64(i)*10 + float64(j) })
		if err != nil {
			t.Fatal(err)
		}
		got, err := GetRows(x, []int64{999, 0, 300, 511, 512})
		if err != nil {
			t.Fatal(err)
		}
		wantFirst := []float64{9990, 9991, 9992}
		for j, w := range wantFirst {
			if got.At(0, j) != w {
				t.Fatalf("%s: row 999 = %v", name, got.Row(0))
			}
		}
		if got.At(1, 0) != 0 || got.At(2, 0) != 3000 || got.At(3, 0) != 5110 || got.At(4, 0) != 5120 {
			t.Fatalf("%s: gathered rows wrong: %v", name, got.Data)
		}
		if _, err := GetRows(x, []int64{1000}); err == nil {
			t.Fatalf("%s: out-of-range row accepted", name)
		}
	}
}

func TestExplain(t *testing.T) {
	s := NewMemSession()
	x, _ := s.Rnorm(2000, 4, 0, 1, 1)
	expr := Sqrt(Abs(Sub(Mul(x, 2.0), 1.0)))
	plan := Explain(expr)
	for _, want := range []string{"sapply", "f=sqrt", "mapply.scalar", "leaf 2000x4", "[virtual]"} {
		if !strings.Contains(plan, want) {
			t.Fatalf("explain missing %q:\n%s", want, plan)
		}
	}
	// Sink explain.
	sum := Sum(expr)
	splan := Explain(sum)
	if !strings.Contains(splan, "agg") || !strings.Contains(splan, "sink") {
		t.Fatalf("sink explain:\n%s", splan)
	}
	// Forcing flips the state.
	if _, err := sum.Float(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(sum), "materialized") {
		t.Fatal("explain does not show materialization")
	}
}

// TestSetColsFused: SetCols composes with downstream GenOps in one pass.
func TestSetColsFused(t *testing.T) {
	s := NewMemSession()
	x, _ := s.Rnorm(3000, 4, 0, 1, 2)
	zeros := s.Zeros(3000, 1)
	masked := SetCols(x, []int{2}, zeros)
	cs, err := ColSums(masked).AsVector()
	if err != nil {
		t.Fatal(err)
	}
	if cs[2] != 0 {
		t.Fatalf("masked column sum %g", cs[2])
	}
	if math.Abs(cs[0]) < 1e-12 && math.Abs(cs[1]) < 1e-12 {
		t.Fatal("other columns unexpectedly zero")
	}
}
