// Package flashr is a Go reproduction of FlashR (Zheng et al., PPoPP 2018):
// a matrix-oriented programming framework that parallelizes R-base-style
// matrix operations and scales them beyond memory with SSDs.
//
// The public surface mirrors the paper's programming interface (§3.1):
// matrix creation (runif.matrix, rnorm.matrix, load.dense), the overridden
// R-base matrix functions of Table 2 (arithmetic, sum/rowSums/colSums,
// pmin/pmax, sweep, %*%, t, rbind/cbind, unique/table, cumsum, [ ]), the
// generalized operations of Table 1 (sapply, mapply, agg, agg.row/col,
// groupby.row/col, inner.prod, cum.row/col), and the tuning functions of
// Table 3 (materialize, set.cache, as.vector, as.matrix).
//
// Everything is lazily evaluated: operations build DAGs of virtual matrices
// and the engine materializes a whole DAG in one parallel pass when a result
// is forced (as.vector/as.matrix, element access, unique/table) or when
// Materialize is called. A Session selects in-memory (FlashR-IM) or SSD
// (FlashR-EM) execution and the operation-fusion level.
//
// Sessions may share one engine: NewSession(WithSharedEngine(parent), ...)
// builds a session whose materialization passes run on parent's engine and
// SSD array, admitted by the engine's pass arbiter and fair-queued against
// the other sessions' I/O. Each session keeps its own pending-sink batch,
// owner label, bandwidth weight, and MaterializeStats, so concurrent
// sessions get exact per-session attribution.
package flashr

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/numa"
	"repro/internal/safs"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Options configures a Session. It is itself an Option, so both
// constructor styles work:
//
//	s, err := flashr.NewSession(flashr.Options{Workers: 8, EM: true, SSDDirs: dirs})
//	s, err := flashr.NewSession(flashr.WithWorkers(8), flashr.WithEM(dirs...))
//
// When an Options value is combined with functional options, it replaces
// the whole base configuration, so pass it first.
type Options struct {
	// Workers is the number of evaluation goroutines (0 = GOMAXPROCS).
	Workers int
	// Fuse selects the operation-fusion level (default FuseCache; the
	// lower levels exist for the Figure 10 ablation).
	Fuse core.FuseLevel
	// EM stores matrices on the SSD array instead of memory (FlashR-EM).
	EM bool
	// SSDDirs are the drive directories of the simulated SSD array;
	// required when EM is set. OpenTempSSDs builds a throwaway array.
	SSDDirs []string
	// ReadMBps / WriteMBps throttle the SSD array's aggregate bandwidth
	// (0 = unthrottled).
	ReadMBps  float64
	WriteMBps float64
	// PartRows overrides the I/O partition height (power of two).
	PartRows int
	// PcacheBytes overrides the processor-cache partition budget.
	PcacheBytes int
	// NumaNodes sets the simulated NUMA topology size (0 = 4 nodes).
	NumaNodes int
	// SyncWrites disables the write-behind pipeline and writes tall-output
	// partitions synchronously (debugging escape hatch / A-B comparison).
	SyncWrites bool
	// WriteBehindDepth bounds in-flight asynchronous partition writes
	// (0 = 2×Workers clamped to [4, 32]).
	WriteBehindDepth int
	// MaxIORetries bounds how many times the SSD array retries a failed
	// stripe request with exponential backoff before it surfaces as a
	// permanent error naming the drive, file, and stripe
	// (0 = safs.DefaultMaxRetries, negative = no retries).
	MaxIORetries int
	// IORetryBackoff is the delay before the first retry, doubling per
	// attempt (0 = safs.DefaultRetryBackoff).
	IORetryBackoff time.Duration
	// DisableVerify turns off CRC32C verification on SSD reads (checksums
	// are still maintained on writes). Escape hatch for measuring the
	// verification overhead; leave off in normal operation.
	DisableVerify bool
	// DisableCSE turns off structural hash-consing: no common-subexpression
	// unification at DAG-build time and no sub-DAG result cache (the
	// ablation knob for the equivalence suites).
	DisableCSE bool
	// ResultCacheBytes bounds the cross-materialize sub-DAG result cache
	// (0 = core.DefaultResultCacheBytes; negative disables the cache while
	// keeping within-pass CSE unification on).
	ResultCacheBytes int64
	// DisableRewrites turns off the algebraic DAG rewrite pass entirely.
	// Rewrites also require CSE: DisableCSE implies no rewrites, because
	// rewritten nodes re-intern through the hash-cons table.
	DisableRewrites bool
	// DisableRewriteView disables the view push-down rule family
	// (column-selection elimination, composition, and push-down through
	// elementwise chains) while leaving the other rules on.
	DisableRewriteView bool
	// DisableRewriteCrossProd disables crossprod self-recognition
	// (t(A)%*%B with structurally identical operands → the symmetric Syrk
	// form).
	DisableRewriteCrossProd bool
	// DisableRewriteAggFold disables aggregation folding (sum over
	// scalar/constant/row-vector broadcast chains folds into an affine
	// transform applied when the sink publishes).
	DisableRewriteAggFold bool
	// DisableRewriteDCE disables dead-input elimination (column selections
	// over cbind/setcols that provably never observe one input disconnect
	// it, so its leaves are never read).
	DisableRewriteDCE bool
	// Owner labels this session's materialization passes for per-pass
	// stats attribution and fair admission on a shared engine.
	Owner string
	// PassWeight is this session's share of SAFS bandwidth relative to
	// other sessions on the same engine (values < 1 mean 1).
	PassWeight int
	// MaxConcurrentPasses bounds materialization passes running at once on
	// this session's engine (0 = core.DefaultMaxConcurrentPasses; 1
	// serializes passes as before the pass arbiter existed).
	MaxConcurrentPasses int
	// PassMemBudget is the byte ceiling concurrent passes may reserve
	// against the NUMA chunk pools (0 = unlimited). An oversized pass is
	// still admitted when it is alone on the engine.
	PassMemBudget int64
	// Sharding, when set, row-partitions every materialization across shard
	// workers: in-process engines (ShardConfig.Shards) or TCP worker
	// processes (ShardConfig.Addrs). Planning — rewrites, CSE, the result
	// cache — still runs on this session's engine; only execution is
	// distributed. Incompatible with EM on the session itself: in sharded
	// mode the array, if any, belongs to the workers.
	Sharding *ShardConfig
}

// ShardConfig aliases the sharded coordinator's configuration for
// Options.Sharding / WithSharding.
type ShardConfig = shard.Config

// Option configures NewSession. Options (the struct) and the With*
// functions both implement it.
type Option interface{ applyOption(*sessionConfig) }

// sessionConfig is the resolved constructor configuration.
type sessionConfig struct {
	opts   Options
	shared *Session
}

func (o Options) applyOption(c *sessionConfig) { c.opts = o }

type optionFunc func(*sessionConfig)

func (f optionFunc) applyOption(c *sessionConfig) { f(c) }

// WithWorkers sets the number of evaluation goroutines.
func WithWorkers(n int) Option { return optionFunc(func(c *sessionConfig) { c.opts.Workers = n }) }

// WithFuse selects the operation-fusion level.
func WithFuse(f FuseLevel) Option { return optionFunc(func(c *sessionConfig) { c.opts.Fuse = f }) }

// WithEM selects SSD-backed execution (FlashR-EM) over the given drive
// directories.
func WithEM(ssdDirs ...string) Option {
	return optionFunc(func(c *sessionConfig) { c.opts.EM = true; c.opts.SSDDirs = ssdDirs })
}

// WithBandwidth throttles the SSD array's aggregate read/write bandwidth in
// MB/s (0 = unthrottled).
func WithBandwidth(readMBps, writeMBps float64) Option {
	return optionFunc(func(c *sessionConfig) {
		c.opts.ReadMBps = readMBps
		c.opts.WriteMBps = writeMBps
	})
}

// WithSyncWrites disables the write-behind pipeline.
func WithSyncWrites() Option {
	return optionFunc(func(c *sessionConfig) { c.opts.SyncWrites = true })
}

// WithoutCSE turns off hash-consing and the sub-DAG result cache.
func WithoutCSE() Option {
	return optionFunc(func(c *sessionConfig) { c.opts.DisableCSE = true })
}

// WithoutRewrites turns off the algebraic DAG rewrite pass.
func WithoutRewrites() Option {
	return optionFunc(func(c *sessionConfig) { c.opts.DisableRewrites = true })
}

// WithResultCacheBytes bounds the cross-materialize result cache.
func WithResultCacheBytes(n int64) Option {
	return optionFunc(func(c *sessionConfig) { c.opts.ResultCacheBytes = n })
}

// WithOwner labels the session's passes for stats attribution and fair
// admission.
func WithOwner(owner string) Option {
	return optionFunc(func(c *sessionConfig) { c.opts.Owner = owner })
}

// WithPassWeight sets the session's share of SAFS bandwidth relative to
// other sessions on the same engine.
func WithPassWeight(w int) Option {
	return optionFunc(func(c *sessionConfig) { c.opts.PassWeight = w })
}

// WithMaxConcurrentPasses bounds materialization passes in flight on the
// session's engine.
func WithMaxConcurrentPasses(n int) Option {
	return optionFunc(func(c *sessionConfig) { c.opts.MaxConcurrentPasses = n })
}

// WithPassMemBudget sets the byte ceiling concurrent passes may reserve
// against the NUMA chunk pools.
func WithPassMemBudget(bytes int64) Option {
	return optionFunc(func(c *sessionConfig) { c.opts.PassMemBudget = bytes })
}

// WithSharding distributes the session's materialization passes across shard
// workers (see Options.Sharding). A zero Config spawns two in-process
// workers; set Addrs to use flashr-shardworker processes over TCP.
func WithSharding(cfg ShardConfig) Option {
	return optionFunc(func(c *sessionConfig) { c.opts.Sharding = &cfg })
}

// WithSharedEngine makes the new session run on parent's engine and SSD
// array instead of building its own. Engine-level options (workers, fusion,
// drives, bandwidth, partition height, …) are fixed by the parent and
// ignored here; session-level options (WithOwner, WithPassWeight) still
// apply. Matrices remain tied to the engine, so FMs may flow between
// sessions sharing one; closing a shared session never closes the parent's
// array or drops its result cache.
func WithSharedEngine(parent *Session) Option {
	return optionFunc(func(c *sessionConfig) { c.shared = parent })
}

// FuseLevel aliases the engine's fusion-level type for Options.Fuse.
type FuseLevel = core.FuseLevel

// The engine fusion levels, re-exported for Options.Fuse.
const (
	FuseNone  = core.FuseNone
	FuseMem   = core.FuseMem
	FuseCache = core.FuseCache
)

// Session owns an execution engine plus the set of not-yet-materialized sink
// matrices. The session grows DAGs as large as possible: every pending sink
// sharing a partition dimension is materialized in the same parallel pass
// the first time any of them is forced (§3.4).
type Session struct {
	eng *core.Engine
	fs  *safs.FS
	// coord is the sharded-execution coordinator (nil for local execution);
	// owned by the session and closed after the result cache is flushed,
	// because cache-held shard-backed stores free their worker copies over
	// the coordinator's transports.
	coord *shard.Coordinator

	// owner and weight tag every materialization pass this session submits;
	// sharedEng marks a session built with WithSharedEngine.
	owner     string
	weight    int
	sharedEng bool

	mu      sync.Mutex
	pending []*core.Sink
	ownsFS  bool
	// named tracks the engine leaves opened from each named on-array matrix,
	// so SetNamed can invalidate cached results built over them when the
	// name's files are overwritten.
	named map[string][]*core.Mat

	// Session-local stats: the record of the session's own passes, distinct
	// from the engine-lifetime totals when several sessions share an engine.
	statsMu  sync.Mutex
	lastMat  MaterializeStats
	totalMat MaterializeStats

	// metrics is the session-local registry (built on first Metrics call):
	// the session's own pass totals labeled with its owner.
	metricsOnce sync.Once
	metrics     *trace.Registry
}

// noteNamed records that m is backed by the named matrix's files.
func (s *Session) noteNamed(name string, m *core.Mat) {
	s.mu.Lock()
	if s.named == nil {
		s.named = make(map[string][]*core.Mat)
	}
	s.named[name] = append(s.named[name], m)
	s.mu.Unlock()
}

// NewSession builds a session from options: a full Options struct, With*
// functional options, or a mix (Options first — it replaces the whole base
// configuration).
func NewSession(opts ...Option) (*Session, error) {
	var c sessionConfig
	for _, o := range opts {
		if o != nil {
			o.applyOption(&c)
		}
	}
	o := c.opts
	if c.shared != nil {
		return &Session{
			eng:       c.shared.eng,
			fs:        c.shared.fs,
			sharedEng: true,
			owner:     o.Owner,
			weight:    o.PassWeight,
		}, nil
	}
	var fs *safs.FS
	var err error
	if len(o.SSDDirs) > 0 {
		fs, err = safs.Open(safs.Config{
			Drives:        o.SSDDirs,
			ReadMBps:      o.ReadMBps,
			WriteMBps:     o.WriteMBps,
			MaxRetries:    o.MaxIORetries,
			RetryBackoff:  o.IORetryBackoff,
			DisableVerify: o.DisableVerify,
		})
		if err != nil {
			return nil, err
		}
	} else if o.EM {
		return nil, fmt.Errorf("flashr: EM session requires SSDDirs")
	}
	var topo *numa.Topology
	if o.NumaNodes > 0 {
		topo = numa.NewTopology(o.NumaNodes, 0)
	}
	ecfg := core.Config{
		Workers:                 o.Workers,
		Fuse:                    o.Fuse,
		Topo:                    topo,
		FS:                      fs,
		EM:                      o.EM,
		PartRows:                o.PartRows,
		PcacheBytes:             o.PcacheBytes,
		SyncWrites:              o.SyncWrites,
		WriteBehindDepth:        o.WriteBehindDepth,
		DisableCSE:              o.DisableCSE,
		ResultCacheBytes:        o.ResultCacheBytes,
		DisableRewrites:         o.DisableRewrites,
		DisableRewriteView:      o.DisableRewriteView,
		DisableRewriteCrossProd: o.DisableRewriteCrossProd,
		DisableRewriteAggFold:   o.DisableRewriteAggFold,
		DisableRewriteDCE:       o.DisableRewriteDCE,
		MaxConcurrentPasses:     o.MaxConcurrentPasses,
		PassMemBudget:           o.PassMemBudget,
	}
	eng, err := core.NewEngine(ecfg)
	if err != nil {
		if fs != nil {
			fs.Close()
		}
		return nil, err
	}
	var coord *shard.Coordinator
	if o.Sharding != nil {
		if o.EM {
			if fs != nil {
				fs.Close()
			}
			return nil, fmt.Errorf("flashr: sharded sessions keep matrices worker-resident; configure EM on the workers, not the coordinator")
		}
		coord, err = shard.NewCoordinator(*o.Sharding, ecfg)
		if err != nil {
			if fs != nil {
				fs.Close()
			}
			return nil, err
		}
		eng.SetRemoteExecutor(coord)
	}
	return &Session{eng: eng, fs: fs, coord: coord, ownsFS: fs != nil, owner: o.Owner, weight: o.PassWeight}, nil
}

// NewMemSession builds an in-memory session (FlashR-IM) with default
// settings.
func NewMemSession() *Session {
	s, err := NewSession(Options{})
	if err != nil {
		panic(err) // cannot fail without EM options
	}
	return s
}

// Engine exposes the underlying execution engine (benchmarks and tests).
func (s *Session) Engine() *core.Engine { return s.eng }

// Coordinator exposes the sharded-execution coordinator, or nil for a local
// session (benchmarks, the conformance suite).
func (s *Session) Coordinator() *shard.Coordinator { return s.coord }

// Owner returns the session's pass-attribution label.
func (s *Session) Owner() string { return s.owner }

// MaterializeStats aliases the engine's per-materialization observability
// record (I/O volume, prefetch hit rate, write-queue stall vs. write time,
// phase wall times).
type MaterializeStats = core.MaterializeStats

// LastMaterializeStats returns the record of this session's most recent
// materialization pass. On a shared engine this is the session's own pass,
// not whichever pass the engine ran last.
func (s *Session) LastMaterializeStats() MaterializeStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.lastMat
}

// TotalMaterializeStats returns the session-lifetime accumulated record;
// snapshot before and after a region and Sub the two to attribute I/O. On a
// shared engine the per-session totals of every session sum to the engine's
// total (Engine().TotalMaterializeStats()).
func (s *Session) TotalMaterializeStats() MaterializeStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.totalMat
}

// TraceTo starts execution tracing on the session's engine and returns a
// stop function that ends tracing and writes everything recorded since as
// Chrome trace_event JSON to w (loadable in chrome://tracing or Perfetto;
// each pass appears as a process named with its owner). On a shared engine
// the trace covers every session's passes — owner labels tell them apart.
//
//	stop := s.TraceTo(f)
//	... run the workload ...
//	err := stop()
func (s *Session) TraceTo(w io.Writer) (stop func() error) {
	s.eng.StartTrace()
	return func() error {
		d := s.eng.StopTrace()
		if d == nil {
			return nil
		}
		return trace.WriteChrome(w, d)
	}
}

// Metrics returns the session's metrics registry: the engine-wide registry
// (engine totals, scheduler gauges, NUMA topology, SSD array) plus this
// session's own pass totals labeled owner="<owner>". Render it with WriteTo
// or serve it with trace.Handler.
func (s *Session) Metrics() *trace.Registry {
	s.metricsOnce.Do(func() {
		reg := trace.NewRegistry()
		if s.owner != "" {
			core.RegisterStatsMetrics(reg, s.owner, s.TotalMaterializeStats)
		}
		reg.Include(s.eng.Metrics())
		s.metrics = reg
	})
	return s.metrics
}

// Wrap adopts an existing engine matrix (e.g. a leaf over a store opened
// from an SSD array) into the session. The matrix's partition height must
// match the session engine's.
func (s *Session) Wrap(m *core.Mat) *FM { return s.bigFM(m) }

// FS exposes the SSD array, or nil for an in-memory session.
func (s *Session) FS() *safs.FS { return s.fs }

// Close drops the session's result cache and releases the SSD array if the
// session owns one. Closing a session built with WithSharedEngine touches
// neither the shared engine's cache nor its array.
func (s *Session) Close() error {
	if s.sharedEng {
		return nil
	}
	// Flush before closing the coordinator: cache entries may hold
	// shard-backed stores whose Free is an RPC over its transports.
	s.eng.FlushResultCache()
	if s.coord != nil {
		s.coord.Close()
	}
	if s.ownsFS && s.fs != nil {
		return s.fs.Close()
	}
	return nil
}

// deferSink registers a sink for batched materialization.
func (s *Session) deferSink(k *core.Sink) {
	s.mu.Lock()
	s.pending = append(s.pending, k)
	s.mu.Unlock()
}

// Flush materializes every pending sink now. It is FlushCtx with
// context.Background().
//
// Deprecated: prefer FlushCtx, which honors cancellation; Flush is kept for
// source compatibility.
func (s *Session) Flush() error { return s.FlushCtx(context.Background()) }

// FlushCtx materializes every pending sink under ctx: the session's batch
// runs as one admission-arbitrated pass per partition dimension, and a
// cancelled ctx aborts the remaining passes with ctx.Err().
func (s *Session) FlushCtx(ctx context.Context) error { return s.flushCtx(ctx) }

// FlushBatchCtx is FlushCtx with request-batch attribution: every pass it
// submits carries the given batch label in its PassOptions, so the pass's
// MaterializeStats and trace metadata name the coalesced request batch it
// materialized for. Serving front-ends use this to prove (and debug) that
// N client requests became fewer than N engine passes.
//
// Tall matrix results the batch intends to hand out (result handles) may be
// passed as extra targets: still-virtual tall matrices among them
// materialize in the same shared passes as the batch's sinks, so returning a
// reference to a matrix-valued result costs no pass of its own. Transposed
// views, small matrices, and already-materialized talls are skipped.
func (s *Session) FlushBatchCtx(ctx context.Context, batch string, results ...*FM) error {
	var talls []*core.Mat
	for _, x := range results {
		if x != nil && x.big != nil && !x.trans {
			talls = append(talls, x.big)
		}
	}
	return s.flushBatchCtx(ctx, batch, talls...)
}

// materializeNow submits one pass to the engine under this session's owner
// label, bandwidth weight, and (when flushing on behalf of a request batch)
// batch label, and folds the pass's record into the session-local stats.
func (s *Session) materializeNow(ctx context.Context, batch string, talls []*core.Mat, sinks []*core.Sink) error {
	ms, err := s.eng.MaterializePass(ctx, talls, sinks, core.PassOptions{Owner: s.owner, Weight: s.weight, Batch: batch})
	if ms.Wall > 0 { // an empty pass (nothing to run) leaves no record
		s.statsMu.Lock()
		s.lastMat = ms
		s.totalMat.Add(ms)
		s.statsMu.Unlock()
	}
	return err
}

// flush materializes every pending sink (plus the given tall targets),
// grouping by partition dimension so each group is one fused pass.
func (s *Session) flush(talls ...*core.Mat) error {
	return s.flushCtx(context.Background(), talls...)
}

func (s *Session) flushCtx(ctx context.Context, talls ...*core.Mat) error {
	return s.flushBatchCtx(ctx, "", talls...)
}

func (s *Session) flushBatchCtx(ctx context.Context, batch string, talls ...*core.Mat) error {
	s.mu.Lock()
	pend := s.pending
	s.pending = nil
	s.mu.Unlock()

	groups := map[int64]*struct {
		sinks []*core.Sink
		talls []*core.Mat
	}{}
	add := func(nrow int64) *struct {
		sinks []*core.Sink
		talls []*core.Mat
	} {
		g, ok := groups[nrow]
		if !ok {
			g = &struct {
				sinks []*core.Sink
				talls []*core.Mat
			}{}
			groups[nrow] = g
		}
		return g
	}
	for _, k := range pend {
		if k.Done() {
			continue
		}
		g := add(sinkNRow(k))
		g.sinks = append(g.sinks, k)
	}
	for _, m := range talls {
		if m == nil || m.Materialized() {
			continue
		}
		g := add(m.NRow())
		g.talls = append(g.talls, m)
	}
	for _, g := range groups {
		if err := s.materializeNow(ctx, batch, g.talls, g.sinks); err != nil {
			return err
		}
	}
	return nil
}

// sinkNRow recovers the partition dimension a sink aggregates over.
func sinkNRow(k *core.Sink) int64 { return k.Input().NRow() }

// forceSink materializes a specific sink (flushing the whole pending batch
// with it) and returns its result.
func (s *Session) forceSink(k *core.Sink) (*dense.Dense, error) {
	if !k.Done() {
		if err := s.flush(); err != nil {
			return nil, err
		}
		if !k.Done() {
			// The sink was created outside the pending list (defensive).
			if err := s.materializeNow(context.Background(), "", nil, []*core.Sink{k}); err != nil {
				return nil, err
			}
		}
	}
	return k.Result(), nil
}
