// Package flashr is a Go reproduction of FlashR (Zheng et al., PPoPP 2018):
// a matrix-oriented programming framework that parallelizes R-base-style
// matrix operations and scales them beyond memory with SSDs.
//
// The public surface mirrors the paper's programming interface (§3.1):
// matrix creation (runif.matrix, rnorm.matrix, load.dense), the overridden
// R-base matrix functions of Table 2 (arithmetic, sum/rowSums/colSums,
// pmin/pmax, sweep, %*%, t, rbind/cbind, unique/table, cumsum, [ ]), the
// generalized operations of Table 1 (sapply, mapply, agg, agg.row/col,
// groupby.row/col, inner.prod, cum.row/col), and the tuning functions of
// Table 3 (materialize, set.cache, as.vector, as.matrix).
//
// Everything is lazily evaluated: operations build DAGs of virtual matrices
// and the engine materializes a whole DAG in one parallel pass when a result
// is forced (as.vector/as.matrix, element access, unique/table) or when
// Materialize is called. A Session selects in-memory (FlashR-IM) or SSD
// (FlashR-EM) execution and the operation-fusion level.
package flashr

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/numa"
	"repro/internal/safs"
)

// Options configures a Session.
type Options struct {
	// Workers is the number of evaluation goroutines (0 = GOMAXPROCS).
	Workers int
	// Fuse selects the operation-fusion level (default FuseCache; the
	// lower levels exist for the Figure 10 ablation).
	Fuse core.FuseLevel
	// EM stores matrices on the SSD array instead of memory (FlashR-EM).
	EM bool
	// SSDDirs are the drive directories of the simulated SSD array;
	// required when EM is set. OpenTempSSDs builds a throwaway array.
	SSDDirs []string
	// ReadMBps / WriteMBps throttle the SSD array's aggregate bandwidth
	// (0 = unthrottled).
	ReadMBps  float64
	WriteMBps float64
	// PartRows overrides the I/O partition height (power of two).
	PartRows int
	// PcacheBytes overrides the processor-cache partition budget.
	PcacheBytes int
	// NumaNodes sets the simulated NUMA topology size (0 = 4 nodes).
	NumaNodes int
	// SyncWrites disables the write-behind pipeline and writes tall-output
	// partitions synchronously (debugging escape hatch / A-B comparison).
	SyncWrites bool
	// WriteBehindDepth bounds in-flight asynchronous partition writes
	// (0 = 2×Workers clamped to [4, 32]).
	WriteBehindDepth int
	// MaxIORetries bounds how many times the SSD array retries a failed
	// stripe request with exponential backoff before it surfaces as a
	// permanent error naming the drive, file, and stripe
	// (0 = safs.DefaultMaxRetries, negative = no retries).
	MaxIORetries int
	// IORetryBackoff is the delay before the first retry, doubling per
	// attempt (0 = safs.DefaultRetryBackoff).
	IORetryBackoff time.Duration
	// DisableVerify turns off CRC32C verification on SSD reads (checksums
	// are still maintained on writes). Escape hatch for measuring the
	// verification overhead; leave off in normal operation.
	DisableVerify bool
	// DisableCSE turns off structural hash-consing: no common-subexpression
	// unification at DAG-build time and no sub-DAG result cache (the
	// ablation knob for the equivalence suites).
	DisableCSE bool
	// ResultCacheBytes bounds the cross-materialize sub-DAG result cache
	// (0 = core.DefaultResultCacheBytes; negative disables the cache while
	// keeping within-pass CSE unification on).
	ResultCacheBytes int64
}

// FuseLevel aliases the engine's fusion-level type for Options.Fuse.
type FuseLevel = core.FuseLevel

// The engine fusion levels, re-exported for Options.Fuse.
const (
	FuseNone  = core.FuseNone
	FuseMem   = core.FuseMem
	FuseCache = core.FuseCache
)

// Session owns an execution engine plus the set of not-yet-materialized sink
// matrices. The session grows DAGs as large as possible: every pending sink
// sharing a partition dimension is materialized in the same parallel pass
// the first time any of them is forced (§3.4).
type Session struct {
	eng *core.Engine
	fs  *safs.FS

	mu      sync.Mutex
	pending []*core.Sink
	ownsFS  bool
	// named tracks the engine leaves opened from each named on-array matrix,
	// so SetNamed can invalidate cached results built over them when the
	// name's files are overwritten.
	named map[string][]*core.Mat
}

// noteNamed records that m is backed by the named matrix's files.
func (s *Session) noteNamed(name string, m *core.Mat) {
	s.mu.Lock()
	if s.named == nil {
		s.named = make(map[string][]*core.Mat)
	}
	s.named[name] = append(s.named[name], m)
	s.mu.Unlock()
}

// NewSession builds a session from options.
func NewSession(opts Options) (*Session, error) {
	var fs *safs.FS
	var err error
	if len(opts.SSDDirs) > 0 {
		fs, err = safs.Open(safs.Config{
			Drives:        opts.SSDDirs,
			ReadMBps:      opts.ReadMBps,
			WriteMBps:     opts.WriteMBps,
			MaxRetries:    opts.MaxIORetries,
			RetryBackoff:  opts.IORetryBackoff,
			DisableVerify: opts.DisableVerify,
		})
		if err != nil {
			return nil, err
		}
	} else if opts.EM {
		return nil, fmt.Errorf("flashr: EM session requires SSDDirs")
	}
	var topo *numa.Topology
	if opts.NumaNodes > 0 {
		topo = numa.NewTopology(opts.NumaNodes, 0)
	}
	eng, err := core.NewEngine(core.Config{
		Workers:          opts.Workers,
		Fuse:             opts.Fuse,
		Topo:             topo,
		FS:               fs,
		EM:               opts.EM,
		PartRows:         opts.PartRows,
		PcacheBytes:      opts.PcacheBytes,
		SyncWrites:       opts.SyncWrites,
		WriteBehindDepth: opts.WriteBehindDepth,
		DisableCSE:       opts.DisableCSE,
		ResultCacheBytes: opts.ResultCacheBytes,
	})
	if err != nil {
		if fs != nil {
			fs.Close()
		}
		return nil, err
	}
	return &Session{eng: eng, fs: fs, ownsFS: fs != nil}, nil
}

// NewMemSession builds an in-memory session (FlashR-IM) with default
// settings.
func NewMemSession() *Session {
	s, err := NewSession(Options{})
	if err != nil {
		panic(err) // cannot fail without EM options
	}
	return s
}

// Engine exposes the underlying execution engine (benchmarks and tests).
func (s *Session) Engine() *core.Engine { return s.eng }

// MaterializeStats aliases the engine's per-materialization observability
// record (I/O volume, prefetch hit rate, write-queue stall vs. write time,
// phase wall times).
type MaterializeStats = core.MaterializeStats

// LastMaterializeStats returns the record of the session's most recent
// materialization pass.
func (s *Session) LastMaterializeStats() MaterializeStats {
	return s.eng.LastMaterializeStats()
}

// TotalMaterializeStats returns the session-lifetime accumulated record;
// snapshot before and after a region and Sub the two to attribute I/O.
func (s *Session) TotalMaterializeStats() MaterializeStats {
	return s.eng.TotalMaterializeStats()
}

// Wrap adopts an existing engine matrix (e.g. a leaf over a store opened
// from an SSD array) into the session. The matrix's partition height must
// match the session engine's.
func (s *Session) Wrap(m *core.Mat) *FM { return s.bigFM(m) }

// FS exposes the SSD array, or nil for an in-memory session.
func (s *Session) FS() *safs.FS { return s.fs }

// Close drops the session's result cache and releases the SSD array if the
// session owns one.
func (s *Session) Close() error {
	s.eng.FlushResultCache()
	if s.ownsFS && s.fs != nil {
		return s.fs.Close()
	}
	return nil
}

// deferSink registers a sink for batched materialization.
func (s *Session) deferSink(k *core.Sink) {
	s.mu.Lock()
	s.pending = append(s.pending, k)
	s.mu.Unlock()
}

// flush materializes every pending sink (plus the given tall targets),
// grouping by partition dimension so each group is one fused pass.
func (s *Session) flush(talls ...*core.Mat) error {
	s.mu.Lock()
	pend := s.pending
	s.pending = nil
	s.mu.Unlock()

	groups := map[int64]*struct {
		sinks []*core.Sink
		talls []*core.Mat
	}{}
	add := func(nrow int64) *struct {
		sinks []*core.Sink
		talls []*core.Mat
	} {
		g, ok := groups[nrow]
		if !ok {
			g = &struct {
				sinks []*core.Sink
				talls []*core.Mat
			}{}
			groups[nrow] = g
		}
		return g
	}
	for _, k := range pend {
		if k.Done() {
			continue
		}
		g := add(sinkNRow(k))
		g.sinks = append(g.sinks, k)
	}
	for _, m := range talls {
		if m == nil || m.Materialized() {
			continue
		}
		g := add(m.NRow())
		g.talls = append(g.talls, m)
	}
	for _, g := range groups {
		if err := s.eng.Materialize(g.talls, g.sinks); err != nil {
			return err
		}
	}
	return nil
}

// sinkNRow recovers the partition dimension a sink aggregates over.
func sinkNRow(k *core.Sink) int64 { return k.Input().NRow() }

// forceSink materializes a specific sink (flushing the whole pending batch
// with it) and returns its result.
func (s *Session) forceSink(k *core.Sink) (*dense.Dense, error) {
	if !k.Done() {
		if err := s.flush(); err != nil {
			return nil, err
		}
		if !k.Done() {
			// The sink was created outside the pending list (defensive).
			if err := s.eng.Materialize(nil, []*core.Sink{k}); err != nil {
				return nil, err
			}
		}
	}
	return k.Result(), nil
}
