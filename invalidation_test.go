package flashr

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/dense"
)

// Regression tests for result-cache invalidation: after an in-place `[]<-`
// mutation or a SetNamed overwrite between materializations, a warm session
// (cache populated over the old contents) must produce bit-for-bit the same
// results as a cold session that only ever saw the new contents.

func invalDense(r, c int, seed int64) *dense.Dense {
	rng := rand.New(rand.NewSource(seed))
	d := dense.New(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// invalProbe computes a fingerprint of several expressions over x: a sink, a
// column sink, and a tall output. Rebuilt from scratch each call so a warm
// session's structurally identical rebuild is the cache-hit candidate.
func invalProbe(t *testing.T, x *FM) []float64 {
	t.Helper()
	e := Pmax(Mul(x, 3.0), Neg(x))
	v, err := Sum(Round(e)).Float()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ColSums(Round(e)).AsVector()
	if err != nil {
		t.Fatal(err)
	}
	d, err := Square(x).AsDense()
	if err != nil {
		t.Fatal(err)
	}
	out := append([]float64{v}, cs...)
	return append(out, d.Data...)
}

func bitsMatch(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: fingerprint length %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: word %d = %v, want %v (stale cache?)", name, i, got[i], want[i])
		}
	}
}

// TestSetElementMatchesColdSession: materialize, mutate the leaf with []<-,
// re-materialize the same structures — the warm session must agree exactly
// with a cold session over the already-mutated data.
func TestSetElementMatchesColdSession(t *testing.T) {
	d0 := invalDense(1400, 3, 21)

	warm, err := NewSession(Options{Workers: 4, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	x, err := warm.FromDense(d0)
	if err != nil {
		t.Fatal(err)
	}
	invalProbe(t, x) // populate the cache over the pre-mutation contents
	if entries, _ := warm.Engine().ResultCacheStats(); entries == 0 {
		t.Fatal("probe left no cache entries")
	}

	// R's x[i, j] <- v, twice, including a partition past the first.
	if err := x.SetElement(2, 1, 42.5); err != nil {
		t.Fatal(err)
	}
	if err := x.SetElement(1000, 0, -7.25); err != nil {
		t.Fatal(err)
	}
	before := warm.TotalMaterializeStats()
	got := invalProbe(t, x)
	if d := warm.TotalMaterializeStats().Sub(before); d.CacheHits != 0 {
		t.Fatalf("post-mutation probe served %d cache hits over stale contents", d.CacheHits)
	}

	d1 := invalDense(1400, 3, 21)
	d1.Set(2, 1, 42.5)
	d1.Set(1000, 0, -7.25)
	cold, err := NewSession(Options{Workers: 4, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	cx, err := cold.FromDense(d1)
	if err != nil {
		t.Fatal(err)
	}
	bitsMatch(t, "set-element", got, invalProbe(t, cx))
}

// TestSetNamedMatchesColdSession: results cached over leaves opened from a
// named on-array matrix must be invalidated when SetNamed overwrites the
// name's files, and the already-open handle must then compute over the new
// bytes exactly as a cold session does.
func TestSetNamedMatchesColdSession(t *testing.T) {
	dir := t.TempDir()
	dirs := []string{filepath.Join(dir, "d0"), filepath.Join(dir, "d1")}
	d0 := invalDense(1200, 2, 31)
	d1 := invalDense(1200, 2, 32)

	warm, err := NewSession(Options{Workers: 4, PartRows: 256, EM: true, SSDDirs: dirs})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := warm.FromDense(d0)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.SaveNamed(seed, "m"); err != nil {
		t.Fatal(err)
	}
	x, err := warm.OpenNamed("m")
	if err != nil {
		t.Fatal(err)
	}
	old := invalProbe(t, x) // cached over the original file contents

	repl, err := warm.FromDense(d1)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.SetNamed(repl, "m"); err != nil {
		t.Fatal(err)
	}
	// The pre-overwrite handle's checksum table describes the replaced
	// bytes, so forcing it must fail verification loudly — and must not be
	// short-circuited by a stale cache entry silently returning the old
	// value (the regression this test pins down).
	before := warm.TotalMaterializeStats()
	if v, err := Sum(Round(Pmax(Mul(x, 3.0), Neg(x)))).Float(); err == nil {
		t.Fatalf("pre-overwrite handle materialized without error (value %v); stale cache served?", v)
	}
	if d := warm.TotalMaterializeStats().Sub(before); d.CacheHits != 0 {
		t.Fatalf("post-SetNamed probe served %d cache hits over stale contents", d.CacheHits)
	}
	reopened, err := warm.OpenNamed("m")
	if err != nil {
		t.Fatal(err)
	}
	gotReopen := invalProbe(t, reopened)
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}

	cold, err := NewSession(Options{Workers: 4, PartRows: 256, EM: true, SSDDirs: dirs})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	cx, err := cold.OpenNamed("m")
	if err != nil {
		t.Fatal(err)
	}
	want := invalProbe(t, cx)
	bitsMatch(t, "set-named (reopened)", gotReopen, want)

	// Sanity: the overwrite actually changed the data.
	same := true
	for i := range old {
		if math.Float64bits(old[i]) != math.Float64bits(want[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("replacement data produced an identical fingerprint; test proves nothing")
	}
}
