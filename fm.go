package flashr

import (
	"context"

	"repro/internal/core"
	"repro/internal/dense"
)

// FM is a FlashR matrix. It is one of:
//
//   - a tall matrix flowing through the partitioned engine, possibly virtual
//     (an unevaluated GenOp DAG node) and possibly a zero-copy transposed
//     view;
//   - a small in-memory matrix — the result of a sink GenOp (aggregations,
//     Gramians, group-bys) or user-provided small data — on which operations
//     evaluate eagerly, mirroring the paper's treatment of sink matrices;
//   - a pending sink: a lazily-evaluated aggregation whose small result has
//     not been forced yet.
//
// Vectors are one-column matrices, as in the paper.
type FM struct {
	s     *Session
	big   *core.Mat
	small *dense.Dense
	sink  *core.Sink
	trans bool // transposed view (big matrices only; smalls transpose eagerly)
}

func (s *Session) bigFM(m *core.Mat) *FM      { return &FM{s: s, big: m} }
func (s *Session) smallFM(d *dense.Dense) *FM { return &FM{s: s, small: d} }
func (s *Session) sinkFM(k *core.Sink) *FM {
	s.deferSink(k)
	return &FM{s: s, sink: k}
}

// isBig reports whether the matrix lives in the partitioned engine.
func (x *FM) isBig() bool { return x.big != nil }

// Session returns the session the matrix belongs to.
func (x *FM) Session() *Session { return x.s }

// resolveSmall forces a pending sink into its dense result; it leaves big
// matrices untouched.
func (x *FM) resolveSmall() (*dense.Dense, error) {
	if x.small != nil {
		return x.small, nil
	}
	if x.sink != nil {
		d, err := x.s.forceSink(x.sink)
		if err != nil {
			return nil, err
		}
		if x.trans {
			d = d.T()
		}
		x.small = d
		x.sink = nil
		x.trans = false
		return d, nil
	}
	return nil, errf("resolve", shapesOf(x), "big matrix where small expected")
}

// mustSmall is resolveSmall for internal call sites that already checked.
func (x *FM) mustSmall() *dense.Dense {
	d, err := x.resolveSmall()
	if err != nil {
		panic(err)
	}
	return d
}

// NRow returns the number of rows.
func (x *FM) NRow() int64 {
	r, _ := x.dims()
	return r
}

// NCol returns the number of columns.
func (x *FM) NCol() int64 {
	_, c := x.dims()
	return c
}

func (x *FM) dims() (int64, int64) {
	var r, c int64
	switch {
	case x.big != nil:
		r, c = x.big.NRow(), int64(x.big.NCol())
	case x.small != nil:
		r, c = int64(x.small.R), int64(x.small.C)
	case x.sink != nil:
		rr, cc := sinkShape(x.sink)
		r, c = int64(rr), int64(cc)
	}
	if x.trans {
		r, c = c, r
	}
	return r, c
}

func sinkShape(k *core.Sink) (int, int) { return k.Shape() }

// Dim returns (rows, cols), R's dim().
func (x *FM) Dim() (int64, int64) { return x.dims() }

// Length returns the number of elements, R's length().
func (x *FM) Length() int64 {
	r, c := x.dims()
	return r * c
}

// IsVirtual reports whether the matrix is an unevaluated virtual matrix.
func (x *FM) IsVirtual() bool {
	if x.big != nil {
		return !x.big.Materialized()
	}
	return x.sink != nil && !x.sink.Done()
}

// T returns the transpose. For big matrices this is a zero-copy view (§3.1:
// "transpose of a matrix only needs to change data access"); small matrices
// transpose eagerly.
func (x *FM) T() *FM {
	if x.small != nil {
		return x.s.smallFM(x.small.T())
	}
	out := *x
	out.trans = !x.trans
	return &out
}

// Materialize forces evaluation of the matrix (R's materialize in Table 3).
// Pending sinks sharing the partition dimension materialize in the same
// pass. It is MaterializeCtx with context.Background().
//
// Deprecated: prefer MaterializeCtx, which honors cancellation; Materialize
// is kept for source compatibility.
func (x *FM) Materialize() error {
	return x.MaterializeCtx(context.Background())
}

// MaterializeCtx is Materialize with cancellation: the session's pending
// pass runs under ctx, and a cancelled ctx aborts it (including while the
// pass waits for admission on a busy engine) with ctx.Err().
func (x *FM) MaterializeCtx(ctx context.Context) error {
	if x.big != nil {
		if x.big.Materialized() {
			return nil
		}
		return x.s.flushCtx(ctx, x.big)
	}
	_, err := x.resolveSmall()
	return err
}

// SetCache marks a virtual matrix to be saved (in memory, or on SSDs when
// em is true) when its DAG materializes — the paper's set.cache.
func (x *FM) SetCache(em bool) *FM {
	if x.big != nil {
		x.big.SetCache(em)
	}
	return x
}

// Free releases the matrix's backing storage.
func (x *FM) Free() error {
	if x.big != nil {
		return x.big.Free()
	}
	x.small = nil
	return nil
}

// AsDense materializes the matrix and gathers it into a dense in-memory
// matrix (R's as.matrix).
func (x *FM) AsDense() (*dense.Dense, error) {
	if x.big != nil {
		if err := x.MaterializeCtx(context.Background()); err != nil {
			return nil, err
		}
		d, err := x.s.eng.ToDense(x.big)
		if err != nil {
			return nil, err
		}
		if x.trans {
			d = d.T()
		}
		return d, nil
	}
	return x.resolveSmall()
}

// AsVector materializes and returns the elements in row-major order (R's
// as.vector; for one-column matrices this is the natural vector).
func (x *FM) AsVector() ([]float64, error) {
	d, err := x.AsDense()
	if err != nil {
		return nil, err
	}
	return d.Data, nil
}

// Float forces a 1×1 matrix into its scalar value.
func (x *FM) Float() (float64, error) {
	r, c := x.dims()
	if r != 1 || c != 1 {
		return 0, errf("float", [][2]int64{{r, c}}, "not a 1x1 matrix")
	}
	d, err := x.AsDense()
	if err != nil {
		return 0, err
	}
	return d.Data[0], nil
}

// MustFloat is Float, panicking on error (examples and tests).
func (x *FM) MustFloat() float64 {
	v, err := x.Float()
	if err != nil {
		panic(err)
	}
	return v
}

// Element materializes and returns element (i, j) — access to individual
// elements of a sink triggers DAG materialization (§3.4 case iii).
func (x *FM) Element(i, j int64) (float64, error) {
	d, err := x.AsDense()
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= int64(d.R) || j < 0 || j >= int64(d.C) {
		return 0, errf("element", nil, "(%d,%d) out of %dx%d", i, j, d.R, d.C)
	}
	return d.At(int(i), int(j)), nil
}

// SetElement writes element (i, j) in place — R's x[i, j] <- v. Big matrices
// materialize first, then the engine privatizes any store shared with the
// result cache and records the mutation, so no cached result built over the
// old contents is ever served again.
func (x *FM) SetElement(i, j int64, v float64) error {
	if x.big != nil {
		if x.trans {
			i, j = j, i
		}
		if i < 0 || i >= x.big.NRow() || j < 0 || j >= int64(x.big.NCol()) {
			return errf("set.element", nil, "(%d,%d) out of %dx%d", i, j, x.big.NRow(), x.big.NCol())
		}
		if err := x.MaterializeCtx(context.Background()); err != nil {
			return err
		}
		return x.s.eng.SetElement(x.big, i, int(j), v)
	}
	d, err := x.resolveSmall()
	if err != nil {
		return err
	}
	if i < 0 || i >= int64(d.R) || j < 0 || j >= int64(d.C) {
		return errf("set.element", nil, "(%d,%d) out of %dx%d", i, j, d.R, d.C)
	}
	d.Set(int(i), int(j), v)
	return nil
}

// promote converts a small matrix into a tall engine leaf so it can mix with
// big matrices of the same partition dimension.
func (x *FM) promote() (*core.Mat, error) {
	if x.big != nil {
		if x.trans {
			return nil, errf("promote", shapesOf(x), "operation not supported on transposed large matrix; transpose is consumed by %%*%%/crossprod")
		}
		return x.big, nil
	}
	d, err := x.resolveSmall()
	if err != nil {
		return nil, err
	}
	m, err := x.s.eng.FromDense(d)
	if err != nil {
		return nil, err
	}
	return m, nil
}
