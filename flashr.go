package flashr

// Version identifies this reproduction build of FlashR.
const Version = "1.0.0"

// Paper is the citation for the reproduced system.
const Paper = "Zheng et al., FlashR: Parallelize and Scale R for Machine Learning using SSDs, PPoPP 2018"
