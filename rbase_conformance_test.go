package flashr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

// This file systematically checks every R-base function of the paper's
// Table 2 against a scalar reference implementation, across the engine's
// operand classes (tall-virtual, tall-materialized, small) and both storage
// backends. The contract is R's: these functions are elementwise or
// reductions with double semantics.

type unaryCase struct {
	name string
	ref  func(float64) float64
	// domain maps a raw normal sample into the function's domain.
	domain func(float64) float64
}

func unaryCases() []unaryCase {
	id := func(v float64) float64 { return v }
	posOnly := func(v float64) float64 { return math.Abs(v) + 0.01 }
	return []unaryCase{
		{"sqrt", math.Sqrt, posOnly},
		{"exp", math.Exp, id},
		{"log", math.Log, posOnly},
		{"log1p", math.Log1p, posOnly},
		{"abs", math.Abs, id},
		{"floor", math.Floor, id},
		{"ceiling", math.Ceil, id},
		{"round", math.Round, id},
		{"sign", func(v float64) float64 {
			if v > 0 {
				return 1
			}
			if v < 0 {
				return -1
			}
			return 0
		}, id},
		{"square", func(v float64) float64 { return v * v }, id},
		{"sigmoid", func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }, id},
	}
}

type binaryCase struct {
	name string
	ref  func(a, b float64) float64
	// bDomain adjusts the right operand (e.g. away from zero for "/").
	bDomain func(float64) float64
}

func binaryCases() []binaryCase {
	id := func(v float64) float64 { return v }
	nonzero := func(v float64) float64 {
		if math.Abs(v) < 0.1 {
			return 0.1
		}
		return v
	}
	pos := func(v float64) float64 { return math.Abs(v) + 0.1 }
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return []binaryCase{
		{"+", func(a, b float64) float64 { return a + b }, id},
		{"-", func(a, b float64) float64 { return a - b }, id},
		{"*", func(a, b float64) float64 { return a * b }, id},
		{"/", func(a, b float64) float64 { return a / b }, nonzero},
		{"^", math.Pow, pos},
		{"pmin", math.Min, id},
		{"pmax", math.Max, id},
		{"==", func(a, b float64) float64 { return b2f(a == b) }, id},
		{"!=", func(a, b float64) float64 { return b2f(a != b) }, id},
		{"<", func(a, b float64) float64 { return b2f(a < b) }, id},
		{"<=", func(a, b float64) float64 { return b2f(a <= b) }, id},
		{">", func(a, b float64) float64 { return b2f(a > b) }, id},
		{">=", func(a, b float64) float64 { return b2f(a >= b) }, id},
	}
}

// TestUnaryConformance checks every Table 2 unary against its reference, on
// tall matrices in both backends and on small matrices.
func TestUnaryConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const n, p = 1100, 3
	raw := dense.New(n, p)
	for i := range raw.Data {
		raw.Data[i] = rng.NormFloat64() * 3
	}
	for name, s := range testSessions(t) {
		for _, c := range unaryCases() {
			in := raw.Apply(c.domain)
			want := in.Apply(c.ref)
			// Tall path.
			x, err := s.FromDense(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Sapply(x, c.name).AsDense()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, c.name, err)
			}
			if !dense.Equalish(got, want, 1e-12) {
				t.Fatalf("%s/%s tall mismatch", name, c.name)
			}
			// Small path.
			sm := Sapply(s.Small(in), c.name).mustSmall()
			if !dense.Equalish(sm, want, 1e-12) {
				t.Fatalf("%s/%s small mismatch", name, c.name)
			}
			x.Free()
		}
	}
}

// TestBinaryConformance checks every Table 2 binary against its reference,
// in matrix-matrix, matrix-scalar and scalar-matrix forms.
func TestBinaryConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	const n, p = 900, 3
	ad := dense.New(n, p)
	bd := dense.New(n, p)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
		bd.Data[i] = rng.NormFloat64()
	}
	// Make some elements exactly equal so ==/!= have both outcomes.
	for i := 0; i < len(ad.Data); i += 7 {
		bd.Data[i] = ad.Data[i]
	}
	s := NewMemSession()
	for _, c := range binaryCases() {
		bAdj := bd.Apply(c.bDomain)
		wantMM := dense.New(n, p)
		for i := range wantMM.Data {
			wantMM.Data[i] = c.ref(ad.Data[i], bAdj.Data[i])
		}
		a, _ := s.FromDense(ad)
		b, _ := s.FromDense(bAdj)
		got, err := Mapply(a, b, c.name).AsDense()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !dense.Equalish(got, wantMM, 1e-12) {
			t.Fatalf("%s matrix-matrix mismatch", c.name)
		}
		// Matrix-scalar both ways.
		const sc = 0.73
		gotMS, err := Mapply(a, sc, c.name).AsDense()
		if err != nil {
			t.Fatal(err)
		}
		gotSM, err := Mapply(sc, a, c.name).AsDense()
		if err != nil {
			t.Fatal(err)
		}
		for i := range gotMS.Data {
			if !sameFloat(gotMS.Data[i], c.ref(ad.Data[i], sc)) {
				t.Fatalf("%s matrix-scalar mismatch at %d", c.name, i)
			}
			if !sameFloat(gotSM.Data[i], c.ref(sc, ad.Data[i])) {
				t.Fatalf("%s scalar-matrix mismatch at %d", c.name, i)
			}
		}
		a.Free()
		b.Free()
	}
}

// TestReductionConformance checks sum/prod/min/max/any/all/mean against
// references, including the R empty-ish identities via constant inputs.
func TestReductionConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	const n = 1500
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	s := NewMemSession()
	x, _ := s.FromVec(vals)
	var sum float64
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		sum += v
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	if got := Sum(x).MustFloat(); math.Abs(got-sum) > 1e-9 {
		t.Fatalf("sum %g want %g", got, sum)
	}
	if got := Min(x).MustFloat(); got != mn {
		t.Fatalf("min %g want %g", got, mn)
	}
	if got := Max(x).MustFloat(); got != mx {
		t.Fatalf("max %g want %g", got, mx)
	}
	if got := Mean(x).MustFloat(); math.Abs(got-sum/n) > 1e-12 {
		t.Fatalf("mean %g", got)
	}
	// any/all on logicals.
	pos := Gt(x, 0.0)
	if got := Any(pos).MustFloat(); got != 1 {
		t.Fatalf("any %g", got)
	}
	if got := All(pos).MustFloat(); got != 0 {
		t.Fatalf("all %g", got)
	}
	ones := s.Ones(n, 1)
	if got := All(Gt(ones, 0.0)).MustFloat(); got != 1 {
		t.Fatalf("all(ones>0) %g", got)
	}
	// prod on a short vector (avoids under/overflow).
	v, _ := s.FromVec([]float64{1.5, -2, 4, 0.25})
	if got := Prod(v).MustFloat(); math.Abs(got-(-3)) > 1e-12 {
		t.Fatalf("prod %g", got)
	}
}

// TestGroupByColGenOp covers the groupby.col GenOp (columns grouped by
// label, aggregated within each row) — Table 1's row-preserving groupby.
func TestGroupByColGenOp(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	const n, p, k = 800, 6, 3
	ad := dense.New(n, p)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
	}
	labels := []int{0, 1, 2, 0, 1, 0}
	want := dense.New(n, k)
	for i := 0; i < n; i++ {
		for j, g := range labels {
			want.Set(i, g, want.At(i, g)+ad.At(i, j))
		}
	}
	for name, s := range testSessions(t) {
		x, _ := s.FromDense(ad)
		got, err := GroupByCol(x, labels, k, "+").AsDense()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !dense.Equalish(got, want, 1e-12) {
			t.Fatalf("%s groupby.col mismatch", name)
		}
		x.Free()
	}
}

// TestAggColGenOpNamedFuncs exercises agg.col with non-sum folds.
func TestAggColGenOpNamedFuncs(t *testing.T) {
	s := NewMemSession()
	x, _ := s.FromRows([][]float64{
		{1, -5, 2},
		{4, 0, -2},
		{-3, 7, 9},
	})
	mx, err := AggCol(x, "max").AsVector()
	if err != nil {
		t.Fatal(err)
	}
	if mx[0] != 4 || mx[1] != 7 || mx[2] != 9 {
		t.Fatalf("agg.col max %v", mx)
	}
	mn, err := AggRow(x, "min").AsVector()
	if err != nil {
		t.Fatal(err)
	}
	if mn[0] != -5 || mn[1] != -2 || mn[2] != -3 {
		t.Fatalf("agg.row min %v", mn)
	}
}

// TestConcurrentMaterializations runs independent DAG materializations from
// multiple goroutines against one session — sessions must be safe for
// concurrent use the way an R front end driving background jobs would.
func TestConcurrentMaterializations(t *testing.T) {
	s := NewMemSession()
	const goroutines = 6
	xs := make([]*FM, goroutines)
	wants := make([]float64, goroutines)
	rng := rand.New(rand.NewSource(105))
	for g := range xs {
		d := dense.New(2000, 2)
		var sum float64
		for i := range d.Data {
			d.Data[i] = rng.NormFloat64()
			sum += d.Data[i] * d.Data[i]
		}
		x, err := s.FromDense(d)
		if err != nil {
			t.Fatal(err)
		}
		xs[g] = x
		wants[g] = sum
	}
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			got, err := Sum(Square(xs[g])).Float()
			if err == nil && math.Abs(got-wants[g]) > 1e-8 {
				err = errFor(g, got, wants[g])
			}
			errs <- err
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestNonFiniteConformance: NaN and ±Inf propagate through elementwise ops
// and reductions with R's double semantics in both backends — including
// through the aggregation-fold rewrite, whose affine publish transform must
// forward a non-finite raw sum unchanged.
func TestNonFiniteConformance(t *testing.T) {
	for name, s := range testSessions(t) {
		zero := s.Zeros(600, 2)
		cases := []struct {
			desc string
			x    *FM
			want float64
		}{
			{"sum(log(0))", Sum(Log(zero)), math.Inf(-1)},
			{"sum(1/0)", Sum(Div(1.0, zero)), math.Inf(1)},
			{"sum(sqrt(-1))", Sum(Sqrt(Sub(zero, 1.0))), math.NaN()},
			// The scalar-add layer folds into the sink's publish transform;
			// -Inf + c·n·p must still be -Inf.
			{"sum(log(0) + 5)", Sum(Add(Log(zero), 5.0)), math.Inf(-1)},
			{"sum(-sqrt(-1))", Sum(Neg(Sqrt(Sub(zero, 1.0)))), math.NaN()},
		}
		for _, c := range cases {
			got, err := c.x.Float()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, c.desc, err)
			}
			if !sameFloat(got, c.want) {
				t.Fatalf("%s/%s = %v, want %v", name, c.desc, got, c.want)
			}
		}
	}
}

// sameFloat treats NaN as equal to NaN (R's ^ on negative bases with
// fractional exponents yields NaN on both sides of the comparison).
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

func errFor(g int, got, want float64) error {
	return &mismatchErr{g: g, got: got, want: want}
}

type mismatchErr struct {
	g         int
	got, want float64
}

func (e *mismatchErr) Error() string {
	return "goroutine result mismatch"
}
