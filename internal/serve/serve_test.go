package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	flashr "repro"
)

// testServer is an in-memory flashr engine behind a Server behind httptest.
type testServer struct {
	sv  *Server
	hs  *httptest.Server
	url string
}

func newTestServer(t *testing.T, mutate func(*Config)) *testServer {
	t.Helper()
	root, err := flashr.NewSession(flashr.Options{Workers: 2, PartRows: 256})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	t.Cleanup(func() { root.Close() })
	cfg := Config{Root: root, BatchWait: time.Millisecond, SessionIdle: -1}
	if mutate != nil {
		mutate(&cfg)
	}
	sv, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sv.Drain(ctx); err != nil {
			t.Errorf("cleanup Drain: %v", err)
		}
	})
	hs := httptest.NewServer(sv)
	t.Cleanup(hs.Close)
	return &testServer{sv: sv, hs: hs, url: hs.URL}
}

// post sends a JSON body and decodes a JSON reply into a generic map.
func (ts *testServer) post(t *testing.T, path string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.url+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
	return resp.StatusCode, out
}

func (ts *testServer) createSession(t *testing.T, tenant string) string {
	t.Helper()
	code, out := ts.post(t, "/v1/sessions", map[string]string{"tenant": tenant})
	if code != http.StatusOK {
		t.Fatalf("create session: HTTP %d: %v", code, out)
	}
	id, _ := out["session"].(string)
	if id == "" {
		t.Fatalf("create session: no id in %v", out)
	}
	return id
}

func (ts *testServer) eval(t *testing.T, sid, program string) (int, map[string]any) {
	t.Helper()
	return ts.post(t, "/v1/sessions/"+sid+"/eval", map[string]string{"program": program})
}

func results(out map[string]any) []string {
	raw, _ := out["results"].([]any)
	rs := make([]string, len(raw))
	for i, v := range raw {
		rs[i], _ = v.(string)
	}
	return rs
}

func TestServeSessionLifecycle(t *testing.T) {
	ts := newTestServer(t, nil)
	sid := ts.createSession(t, "acme")

	code, out := ts.eval(t, sid, "x <- runif.matrix(512, 4, 0, 1, 7)")
	if code != http.StatusOK {
		t.Fatalf("eval assign: HTTP %d: %v", code, out)
	}
	if rs := results(out); len(rs) != 1 || rs[0] != "" {
		t.Errorf("assignment printed %q, want one blank result", rs)
	}

	resp, err := http.Get(ts.url + "/v1/sessions/" + sid)
	if err != nil {
		t.Fatalf("GET session: %v", err)
	}
	var info struct {
		Tenant string   `json:"tenant"`
		Vars   []string `json:"vars"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode session info: %v", err)
	}
	resp.Body.Close()
	if info.Tenant != "acme" || len(info.Vars) != 1 || info.Vars[0] != "x" {
		t.Errorf("session info = %+v, want tenant acme vars [x]", info)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.url+"/v1/sessions/"+sid, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE session: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE: HTTP %d, want 204", dresp.StatusCode)
	}
	if code, _ := ts.eval(t, sid, "1 + 1"); code != http.StatusNotFound {
		t.Errorf("eval on deleted session: HTTP %d, want 404", code)
	}
}

func TestServeEvalComputes(t *testing.T) {
	ts := newTestServer(t, nil)
	sid := ts.createSession(t, "acme")

	// A multi-statement program: the reduction is exact because the matrix
	// is all ones.
	code, out := ts.eval(t, sid, "x <- runif.matrix(300, 3, 1, 1, 7)\nsum(x)")
	if code != http.StatusOK {
		t.Fatalf("eval: HTTP %d: %v", code, out)
	}
	rs := results(out)
	if len(rs) != 2 || rs[1] != "[1] 900" {
		t.Errorf("results = %q, want [\"\", \"[1] 900\"]", rs)
	}
	if out["batch"] == "" || out["batch_size"] == nil {
		t.Errorf("response lacks batch attribution: %v", out)
	}
}

func TestServeTypedOp(t *testing.T) {
	ts := newTestServer(t, nil)
	sid := ts.createSession(t, "acme")

	code, out := ts.post(t, "/v1/sessions/"+sid+"/op",
		OpRequest{Op: "runif", Out: "x", Rows: 200, Cols: 2, Seed: 3})
	if code != http.StatusOK {
		t.Fatalf("op create: HTTP %d: %v", code, out)
	}
	code, out = ts.post(t, "/v1/sessions/"+sid+"/op", OpRequest{Op: "sum", X: "x"})
	if code != http.StatusOK {
		t.Fatalf("op sum: HTTP %d: %v", code, out)
	}
	if rs := results(out); len(rs) != 1 || !strings.HasPrefix(rs[0], "[1] ") {
		t.Errorf("op sum results = %q, want a scalar rendering", rs)
	}

	// Invalid ops are rejected before reaching the interpreter.
	for _, op := range []OpRequest{
		{Op: "explode"},
		{Op: "sum", X: "x; drop"},
		{Op: "runif", Rows: 0, Cols: 2},
		{Op: "sapply", X: "x", F: "fn()"},
	} {
		if code, _ := ts.post(t, "/v1/sessions/"+sid+"/op", op); code != http.StatusBadRequest {
			t.Errorf("op %+v: HTTP %d, want 400", op, code)
		}
	}
}

// A bad program must poison only its own response, even when it shares a
// batch with healthy requests.
func TestServeErrorIsolation(t *testing.T) {
	ts := newTestServer(t, func(c *Config) { c.BatchWait = 50 * time.Millisecond })
	good := ts.createSession(t, "acme")
	bad := ts.createSession(t, "acme")
	if code, _ := ts.eval(t, good, "x <- runif.matrix(256, 2, 1, 1, 7)"); code != http.StatusOK {
		t.Fatal("setup failed")
	}

	var wg sync.WaitGroup
	var goodCode, badCode int
	var goodOut, badOut map[string]any
	wg.Add(2)
	go func() { defer wg.Done(); goodCode, goodOut = ts.eval(t, good, "sum(x)") }()
	go func() { defer wg.Done(); badCode, badOut = ts.eval(t, bad, "sum(missing_var)") }()
	wg.Wait()

	if goodCode != http.StatusOK {
		t.Errorf("good request: HTTP %d: %v", goodCode, goodOut)
	}
	if rs := results(goodOut); len(rs) != 1 || rs[0] != "[1] 512" {
		t.Errorf("good request results = %q, want [1] 512", rs)
	}
	if badCode != http.StatusUnprocessableEntity {
		t.Errorf("bad request: HTTP %d, want 422 (%v)", badCode, badOut)
	}
	if msg, _ := badOut["error"].(string); !strings.Contains(msg, "missing_var") {
		t.Errorf("bad request error %q does not name the missing variable", msg)
	}
}

// Concurrent requests from one tenant must coalesce: far fewer materialization
// passes than requests, and at least some responses sharing a batch.
func TestServeCoalescing(t *testing.T) {
	ts := newTestServer(t, func(c *Config) { c.BatchWait = 100 * time.Millisecond })
	sid := ts.createSession(t, "acme")
	if code, _ := ts.eval(t, sid, "x <- runif.matrix(2048, 4, 0, 1, 7)"); code != http.StatusOK {
		t.Fatal("setup failed")
	}
	tn := ts.sv.table.tenants["acme"]

	const n = 8
	sids := make([]string, n)
	for i := range sids {
		sids[i] = ts.createSession(t, "acme")
		if code, _ := ts.eval(t, sids[i], "y <- runif.matrix(2048, 4, 0, 1, 9)"); code != http.StatusOK {
			t.Fatal("per-session setup failed")
		}
	}
	start := tn.fs.TotalMaterializeStats().Passes
	var wg sync.WaitGroup
	codes := make([]int, n)
	outs := make([]map[string]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], outs[i] = ts.eval(t, sids[i], "sum(y * y)")
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d: %v", i, code, outs[i])
		}
	}
	passes := tn.fs.TotalMaterializeStats().Passes - start
	if passes >= n {
		t.Errorf("%d requests cost %d passes; batching should coalesce them", n, passes)
	}
	shared := 0
	for _, out := range outs {
		if bs, _ := out["batch_size"].(float64); bs > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Errorf("no response reports batch_size > 1 across %d concurrent requests", n)
	}
}

func TestServeShedLadder(t *testing.T) {
	ts := newTestServer(t, func(c *Config) {
		c.MaxProgramBytes = 32
		c.MaxSessionsPerTenant = 1
		c.MaxInflightPerTenant = 1
	})

	// Unknown session: 404.
	if code, _ := ts.eval(t, "deadbeef", "1"); code != http.StatusNotFound {
		t.Errorf("unknown session: HTTP %d, want 404", code)
	}

	sid := ts.createSession(t, "acme")

	// Session quota: 429.
	if code, _ := ts.post(t, "/v1/sessions", map[string]string{"tenant": "acme"}); code != http.StatusTooManyRequests {
		t.Errorf("over session quota: HTTP %d, want 429", code)
	}
	// Another tenant is unaffected.
	ts.createSession(t, "other")

	// Oversized program: 413.
	if code, _ := ts.eval(t, sid, strings.Repeat("1+", 40)+"1"); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized program: HTTP %d, want 413", code)
	}

	// In-flight quota: 429. The quota check reads the tenant's gauge, so
	// holding a synthetic in-flight request is enough to trip it.
	tn := ts.sv.table.tenants["acme"]
	tn.inflight.Add(1)
	if code, _ := ts.eval(t, sid, "1"); code != http.StatusTooManyRequests {
		t.Errorf("over in-flight quota: HTTP %d, want 429", code)
	}
	tn.inflight.Add(-1)

	// Invalid tenant names: 400.
	for _, name := range []string{"", "a b", "x/y", strings.Repeat("z", 65)} {
		if code, _ := ts.post(t, "/v1/sessions", map[string]string{"tenant": name}); code != http.StatusBadRequest {
			t.Errorf("tenant %q: HTTP %d, want 400", name, code)
		}
	}

	// Shed counters moved.
	tr := metricsText(t, ts)
	for _, want := range []string{
		`flashr_serve_shed_total{tenant="acme",reason="session_limit"} 1`,
		`flashr_serve_shed_total{tenant="acme",reason="program_too_large"} 1`,
		`flashr_serve_shed_total{tenant="acme",reason="inflight_limit"} 1`,
	} {
		if !strings.Contains(tr, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServeDrain(t *testing.T) {
	ts := newTestServer(t, nil)
	sid := ts.createSession(t, "acme")
	for i := 0; i < 3; i++ {
		if code, _ := ts.eval(t, sid, "x <- runif.matrix(256, 2, 0, 1, 5)\nsum(x)"); code != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.sv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if acc, ans := ts.sv.Accepted(), ts.sv.Answered(); acc != ans {
		t.Errorf("accepted=%d answered=%d after drain; must balance", acc, ans)
	}
	if code, _ := ts.eval(t, sid, "1"); code != http.StatusServiceUnavailable {
		t.Errorf("eval while draining: HTTP %d, want 503", code)
	}
	if code, _ := ts.post(t, "/v1/sessions", map[string]string{"tenant": "acme"}); code != http.StatusServiceUnavailable {
		t.Errorf("create while draining: HTTP %d, want 503", code)
	}
}

func TestServeIdleExpiry(t *testing.T) {
	ts := newTestServer(t, func(c *Config) {
		c.SessionIdle = 30 * time.Millisecond
		c.JanitorInterval = 10 * time.Millisecond
	})
	sid := ts.createSession(t, "acme")
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.url + "/v1/sessions/" + sid)
		if err != nil {
			t.Fatalf("GET session: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break // expired
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := ts.sv.table.tenants["acme"].sessions.Load(); got != 0 {
		t.Errorf("tenant session gauge = %d after expiry, want 0", got)
	}
}

// TestServeNoExpiryMidRequest: the idle janitor must not expire a session
// while one of its requests is in flight. The batch window is held open far
// longer than the idle limit, so lastUsed goes stale mid-request; without
// the in-flight guard the sweep removes the session under its active client
// and the follow-up request 404s.
func TestServeNoExpiryMidRequest(t *testing.T) {
	ts := newTestServer(t, func(c *Config) {
		c.BatchWait = 300 * time.Millisecond
		c.SessionIdle = 30 * time.Millisecond
		c.JanitorInterval = 5 * time.Millisecond
	})
	sid := ts.createSession(t, "acme")
	// Submit immediately: the idle clock (set at create) goes stale during
	// the 300ms batch window, an order of magnitude past the 30ms cutoff.
	if code, out := ts.eval(t, sid, "1 + 1"); code != http.StatusOK {
		t.Fatalf("slow-batch eval: HTTP %d: %v", code, out)
	}
	// The answered request refreshed the idle clock; the session must still
	// be live for an immediate follow-up.
	if code, out := ts.eval(t, sid, "2 + 2"); code != http.StatusOK {
		t.Fatalf("follow-up after slow batch: HTTP %d: %v (session expired mid-request?)", code, out)
	}
	// Once truly idle, the session still expires.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.url + "/v1/sessions/" + sid)
		if err != nil {
			t.Fatalf("GET session: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("session with no in-flight requests never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// One /metrics scrape must show per-tenant serving series side by side with
// the per-owner engine pass totals the smoke test compares against.
func TestServeMetricsExposition(t *testing.T) {
	ts := newTestServer(t, nil)
	for _, tenant := range []string{"acme", "zen"} {
		sid := ts.createSession(t, tenant)
		if code, _ := ts.eval(t, sid, "x <- runif.matrix(256, 2, 0, 1, 5)\nsum(x)"); code != http.StatusOK {
			t.Fatalf("tenant %s request failed", tenant)
		}
	}
	tr := metricsText(t, ts)
	for _, want := range []string{
		`flashr_serve_requests_total{tenant="acme"} 1`,
		`flashr_serve_requests_total{tenant="zen"} 1`,
		`flashr_materialize_passes_total{owner="acme"}`,
		`flashr_materialize_passes_total{owner="zen"}`,
		"flashr_serve_batches_total",
		"flashr_serve_batch_size_bucket",
		"flashr_serve_accepted_total 2",
		"flashr_serve_answered_total 2",
	} {
		if !strings.Contains(tr, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func metricsText(t *testing.T, ts *testServer) string {
	t.Helper()
	resp, err := http.Get(ts.url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	return string(raw)
}

// Tenants with different weights both make progress under concurrent load
// (the fairness *ratio* is asserted end-to-end by the CI smoke test; here we
// only prove the weighted path executes).
func TestServeWeightedTenants(t *testing.T) {
	ts := newTestServer(t, func(c *Config) {
		c.TenantWeights = map[string]int{"gold": 4, "bronze": 1}
		c.BatchWait = 20 * time.Millisecond
	})
	sids := map[string]string{}
	for _, tenant := range []string{"gold", "bronze"} {
		sid := ts.createSession(t, tenant)
		if code, _ := ts.eval(t, sid, "x <- runif.matrix(1024, 4, 1, 1, 7)"); code != http.StatusOK {
			t.Fatalf("tenant %s setup failed", tenant)
		}
		sids[tenant] = sid
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for _, tenant := range []string{"gold", "bronze"} {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				code, out := ts.eval(t, sids[tenant], "sum(x)")
				if code != http.StatusOK {
					errs <- fmt.Errorf("tenant %s: HTTP %d: %v", tenant, code, out)
				}
			}(tenant)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
