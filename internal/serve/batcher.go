// Package serve turns a shared FlashR engine into a multi-tenant network
// service: clients create sessions, submit R-flavored programs (or typed op
// requests translated into them), and read results over HTTP/JSON. The core
// is a request batcher that coalesces requests arriving within a short
// max-wait window into shared materialization passes; each tenant maps to
// one shared-engine flashr.Session whose PassOptions{Owner, Weight} put the
// engine's pass-admission arbiter and per-owner fair I/O queueing to work as
// the per-tenant QoS layer.
package serve

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	flashr "repro"
)

// Shedding and lifecycle errors surfaced to the HTTP layer.
var (
	// ErrQueueFull is returned by Submit when the bounded accept queue is
	// at capacity; the HTTP layer sheds the request with a 429.
	ErrQueueFull = errors.New("serve: accept queue full")
	// ErrDraining is returned by Submit once Drain has begun; accepted
	// requests still complete but new ones are refused with a 503.
	ErrDraining = errors.New("serve: server draining")
)

// Request is one client program queued for batched execution.
type Request struct {
	// Sess is the serving session the program runs in.
	Sess *Session
	// Program is the raw program text, one statement per line.
	Program string
	// Ctx covers the request's whole lifetime (HTTP request context).
	Ctx context.Context
	// V2 selects the reference-returning result shape: matrix values come
	// back as Items carrying the FM (for the handler to pin) instead of
	// being rendered inline into Results.
	V2 bool

	enqueued time.Time
	resp     chan *Response
}

// ResultItem is one statement's result on the v2 surface: either rendered
// text (scalars, strings, 1×1 reductions) or a matrix to be pinned behind a
// result handle by the HTTP layer.
type ResultItem struct {
	// Show reports whether the statement prints at all (assignments do not).
	Show bool
	// Text is the rendered value when Mat is nil.
	Text string
	// Mat is the materialized matrix result (Length > 1) to pin.
	Mat *flashr.FM
}

// Response is the per-caller answer delivered on the request's private
// channel, with the timing breakdown of where the request spent its life.
type Response struct {
	// Results holds one rendered value per program statement (empty
	// strings for statements with no printable value). Nil when Err is set.
	Results []string
	// Items holds the v2 per-statement results (set instead of Results for
	// V2 requests). Nil when Err is set.
	Items []ResultItem
	// Err is the request-level failure (parse/eval/materialize error for
	// this caller only; batchmates are unaffected).
	Err error

	// BatchID identifies the batch the request rode in; BatchSize is how
	// many requests shared it — the batch attribution clients and tests
	// use to confirm coalescing.
	BatchID   string
	BatchSize int
	// QueueWait is time spent in the accept queue and batching window;
	// Exec is time inside batch execution (eval + shared flush + render).
	QueueWait time.Duration
	Exec      time.Duration
}

// Batcher coalesces requests into batches bounded by size and by a max-wait
// window, in the style of channel-based write batchers: submitters enqueue
// on a bounded channel and block on a private response channel; a dispatcher
// goroutine accumulates a batch until it is full or the window since the
// batch's first request expires, then hands it to run on a fresh goroutine,
// so slow batches never stall the collection of the next one.
type Batcher struct {
	in       chan *Request
	maxBatch int
	maxWait  time.Duration
	// window, when non-nil, is consulted as each batch's first request
	// arrives and overrides maxWait for that batch (rate-adaptive batching).
	window func() time.Duration
	run    func(batchID string, reqs []*Request)

	seq      atomic.Int64
	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{}
	execWG   sync.WaitGroup
	reqWG    sync.WaitGroup

	mu       sync.Mutex
	draining bool
}

// NewBatcher builds and starts a batcher. run is invoked with each batch
// (size ≥ 1) and must deliver a Response to every request via its deliver
// method. maxBatch bounds batch size, maxWait bounds how long the first
// request of a batch waits for company, and queueDepth bounds the accept
// queue beyond which Submit sheds.
func NewBatcher(maxBatch int, maxWait time.Duration, queueDepth int, run func(batchID string, reqs []*Request)) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	if queueDepth < 1 {
		queueDepth = 256
	}
	b := &Batcher{
		in:       make(chan *Request, queueDepth),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		run:      run,
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go b.loop()
	return b
}

// NewAdaptiveBatcher is NewBatcher with a rate-adaptive flush window: window
// is consulted at the start of each batch and its result (when positive)
// replaces maxWait for that batch. maxWait remains the fallback when window
// returns a non-positive duration.
func NewAdaptiveBatcher(maxBatch int, maxWait time.Duration, queueDepth int, window func() time.Duration, run func(batchID string, reqs []*Request)) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	if queueDepth < 1 {
		queueDepth = 256
	}
	b := &Batcher{
		in:       make(chan *Request, queueDepth),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		window:   window,
		run:      run,
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go b.loop()
	return b
}

// Submit enqueues a request and returns its private response channel. It
// never blocks: a full accept queue sheds with ErrQueueFull, and a draining
// batcher refuses with ErrDraining.
func (b *Batcher) Submit(r *Request) (<-chan *Response, error) {
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return nil, ErrDraining
	}
	// Count the request as accepted before releasing the lock so Drain,
	// which flips draining under the same lock, always waits for it.
	b.reqWG.Add(1)
	b.mu.Unlock()

	r.resp = make(chan *Response, 1)
	r.enqueued = time.Now()
	select {
	case b.in <- r:
		return r.resp, nil
	default:
		b.reqWG.Done()
		return nil, ErrQueueFull
	}
}

// deliver completes one request. Exactly one deliver per accepted request.
func (b *Batcher) deliver(r *Request, resp *Response) {
	r.resp <- resp
	b.reqWG.Done()
}

// loop is the dispatcher: collect a batch, hand it off, repeat.
func (b *Batcher) loop() {
	defer close(b.loopDone)
	for {
		var first *Request
		select {
		case first = <-b.in:
		case <-b.stop:
			return
		}
		batch := append(make([]*Request, 0, b.maxBatch), first)
		wait := b.maxWait
		if b.window != nil {
			if w := b.window(); w > 0 {
				wait = w
			}
		}
		timer := time.NewTimer(wait)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.in:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		id := batchID(b.seq.Add(1))
		b.execWG.Add(1)
		go func(id string, batch []*Request) {
			defer b.execWG.Done()
			b.run(id, batch)
		}(id, batch)
	}
}

// Drain stops accepting new requests, waits for every accepted request to be
// answered (bounded by ctx), then stops the dispatcher. It is idempotent and
// returns ctx.Err() if the in-flight work outlives the context.
func (b *Batcher) Drain(ctx context.Context) error {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()

	done := make(chan struct{})
	go func() {
		b.reqWG.Wait()
		b.execWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	b.stopOnce.Do(func() { close(b.stop) })
	select {
	case <-b.loopDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}

// Draining reports whether Drain has begun.
func (b *Batcher) Draining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

// batchID renders a batch sequence number as a stable label.
func batchID(n int64) string { return "b" + strconv.FormatInt(n, 10) }
