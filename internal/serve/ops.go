package serve

import (
	"fmt"
	"strconv"
)

// OpRequest is a typed alternative to submitting raw program text: one
// operation named by a small vocabulary, with variable operands. The server
// translates it into a single program statement (identifiers validated, so
// no client text reaches the parser unchecked) and runs it through the same
// batched path as /eval.
type OpRequest struct {
	// Op selects the operation: create (runif|rnorm), elementwise
	// (add|sub|mul|div), matmul, crossprod, reductions
	// (sum|mean|min|max), row/col reductions
	// (rowsums|rowmeans|colsums|colmeans), sapply, or t.
	Op string `json:"op"`
	// Out, when set, assigns the result to this variable instead of
	// returning it.
	Out string `json:"out,omitempty"`
	// X and Y name operand variables.
	X string `json:"x,omitempty"`
	Y string `json:"y,omitempty"`
	// Rows, Cols, Seed parameterize the create ops.
	Rows int64 `json:"rows,omitempty"`
	Cols int64 `json:"cols,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// F names the function for sapply (validated against the repl's
	// unary vocabulary by the evaluator).
	F string `json:"f,omitempty"`
}

// binaryOps maps elementwise op names to infix operators.
var binaryOps = map[string]string{"add": "+", "sub": "-", "mul": "*", "div": "/"}

// unaryCalls maps op names straight to single-argument call syntax.
var unaryCalls = map[string]string{
	"sum": "sum", "mean": "mean", "min": "min", "max": "max",
	"rowsums": "rowSums", "rowmeans": "rowMeans",
	"colsums": "colSums", "colmeans": "colMeans",
	"crossprod": "crossprod", "t": "t",
}

// Program translates the op into one program statement, or an error naming
// the first invalid field.
func (o *OpRequest) Program() (string, error) {
	var expr string
	switch {
	case o.Op == "runif" || o.Op == "rnorm":
		if o.Rows < 1 || o.Cols < 1 {
			return "", fmt.Errorf("op %q needs rows ≥ 1 and cols ≥ 1", o.Op)
		}
		seed := o.Seed
		if seed == 0 {
			seed = 1
		}
		expr = fmt.Sprintf("%s.matrix(%s, %s, 0, 1, %s)", o.Op,
			strconv.FormatInt(o.Rows, 10), strconv.FormatInt(o.Cols, 10), strconv.FormatInt(seed, 10))
	case binaryOps[o.Op] != "":
		if err := needVars(o.Op, o.X, o.Y); err != nil {
			return "", err
		}
		expr = fmt.Sprintf("%s %s %s", o.X, binaryOps[o.Op], o.Y)
	case o.Op == "matmul":
		if err := needVars(o.Op, o.X, o.Y); err != nil {
			return "", err
		}
		expr = fmt.Sprintf("%s %%*%% %s", o.X, o.Y)
	case unaryCalls[o.Op] != "":
		if err := needVars(o.Op, o.X); err != nil {
			return "", err
		}
		expr = fmt.Sprintf("%s(%s)", unaryCalls[o.Op], o.X)
	case o.Op == "sapply":
		if err := needVars(o.Op, o.X); err != nil {
			return "", err
		}
		if !validIdent(o.F) {
			return "", fmt.Errorf("op sapply needs a valid function name, got %q", o.F)
		}
		expr = fmt.Sprintf("sapply(%s, %q)", o.X, o.F)
	default:
		return "", fmt.Errorf("unknown op %q", o.Op)
	}
	if o.Out != "" {
		if !validIdent(o.Out) {
			return "", fmt.Errorf("invalid output variable %q", o.Out)
		}
		return fmt.Sprintf("%s <- %s", o.Out, expr), nil
	}
	return expr, nil
}

// needVars checks that each named operand is a valid identifier.
func needVars(op string, vars ...string) error {
	for _, v := range vars {
		if !validIdent(v) {
			return fmt.Errorf("op %q needs variable operands, got %q", op, v)
		}
	}
	return nil
}

// validIdent accepts R-style variable names: a letter followed by letters,
// digits, dots, or underscores, at most 64 bytes.
func validIdent(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i, c := range s {
		letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		if i == 0 && !letter {
			return false
		}
		if !letter && !(c >= '0' && c <= '9') && c != '.' && c != '_' {
			return false
		}
	}
	return true
}
