package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	flashr "repro"
	"repro/internal/repl"
	"repro/internal/trace"
)

// Quota errors surfaced as HTTP 429s.
var (
	errSessionLimit  = errors.New("serve: tenant session limit reached")
	errInflightLimit = errors.New("serve: tenant in-flight request limit reached")
)

// Defaults for zero Config fields.
const (
	DefaultMaxBatch             = 16
	DefaultBatchWait            = 2 * time.Millisecond
	DefaultQueueDepth           = 256
	DefaultMaxSessionsPerTenant = 64
	DefaultMaxInflightPerTenant = 128
	DefaultMaxProgramBytes      = 64 << 10
	DefaultSessionIdle          = 15 * time.Minute
)

// Config parameterizes a Server.
type Config struct {
	// Root is the engine-owning flashr session every tenant session
	// shares. The server does not close it; the caller owns its lifetime.
	Root *flashr.Session
	// MaxBatch bounds how many requests one batch may coalesce
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// BatchWait is how long the first request of a batch waits for
	// company before the batch flushes (0 = DefaultBatchWait).
	BatchWait time.Duration
	// QueueDepth bounds the accept queue; requests beyond it are shed
	// with 429 (0 = DefaultQueueDepth).
	QueueDepth int
	// MaxSessionsPerTenant bounds live serving sessions per tenant
	// (0 = DefaultMaxSessionsPerTenant, negative = unlimited).
	MaxSessionsPerTenant int
	// MaxInflightPerTenant bounds a tenant's accepted-but-unanswered
	// requests (0 = DefaultMaxInflightPerTenant, negative = unlimited).
	MaxInflightPerTenant int
	// MaxProgramBytes bounds one submitted program
	// (0 = DefaultMaxProgramBytes).
	MaxProgramBytes int
	// SessionIdle expires serving sessions idle this long
	// (0 = DefaultSessionIdle, negative = never).
	SessionIdle time.Duration
	// JanitorInterval overrides the idle-sweep period (0 = SessionIdle/4
	// clamped to [1s, 30s]).
	JanitorInterval time.Duration
	// TenantWeights maps tenant names to SAFS bandwidth weights for the
	// engine's fair queueing (absent or <1 means weight 1).
	TenantWeights map[string]int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.BatchWait == 0 {
		c.BatchWait = DefaultBatchWait
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxSessionsPerTenant == 0 {
		c.MaxSessionsPerTenant = DefaultMaxSessionsPerTenant
	}
	if c.MaxInflightPerTenant == 0 {
		c.MaxInflightPerTenant = DefaultMaxInflightPerTenant
	}
	if c.MaxProgramBytes == 0 {
		c.MaxProgramBytes = DefaultMaxProgramBytes
	}
	if c.SessionIdle == 0 {
		c.SessionIdle = DefaultSessionIdle
	}
	if c.JanitorInterval == 0 {
		c.JanitorInterval = c.SessionIdle / 4
		if c.JanitorInterval < time.Second {
			c.JanitorInterval = time.Second
		}
		if c.JanitorInterval > 30*time.Second {
			c.JanitorInterval = 30 * time.Second
		}
	}
	return c
}

// Server is the multi-tenant serving front-end over one shared engine. It
// implements http.Handler; the caller wraps it in an http.Server and, on
// shutdown, calls Drain after the HTTP listener stops accepting.
type Server struct {
	cfg     Config
	reg     *trace.Registry
	table   *sessionTable
	batcher *Batcher
	mux     *http.ServeMux

	batches   *trace.Counter
	batchSize *trace.Histogram
	expired   *trace.Counter
	accepted  atomic.Int64
	answered  atomic.Int64
	draining  atomic.Bool

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds and starts a server over cfg.Root.
func New(cfg Config) (*Server, error) {
	if cfg.Root == nil {
		return nil, errors.New("serve: Config.Root is required")
	}
	cfg = cfg.withDefaults()
	reg := trace.NewRegistry()
	sv := &Server{
		cfg:         cfg,
		reg:         reg,
		table:       newSessionTable(cfg.Root, cfg.TenantWeights, reg),
		mux:         http.NewServeMux(),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	sv.batches = reg.Counter("flashr_serve_batches_total", "Request batches executed.")
	sv.batchSize = trace.NewHistogram(1, 2, 4, 8, 16, 32, 64)
	reg.AddHistogram("flashr_serve_batch_size", "Requests coalesced per batch.", sv.batchSize)
	sv.expired = reg.Counter("flashr_serve_expired_sessions_total", "Serving sessions removed by idle expiry.")
	reg.CounterFunc("flashr_serve_accepted_total", "Requests accepted across all tenants.",
		func() float64 { return float64(sv.accepted.Load()) })
	reg.CounterFunc("flashr_serve_answered_total", "Responses delivered across all tenants.",
		func() float64 { return float64(sv.answered.Load()) })
	sv.batcher = NewBatcher(cfg.MaxBatch, cfg.BatchWait, cfg.QueueDepth, sv.runBatch)
	reg.GaugeFunc("flashr_serve_queue_depth", "Requests waiting in the accept queue.",
		func() float64 { return float64(len(sv.batcher.in)) })
	reg.Include(cfg.Root.Engine().Metrics())

	sv.mux.HandleFunc("POST /v1/sessions", sv.handleCreateSession)
	sv.mux.HandleFunc("GET /v1/sessions/{id}", sv.handleGetSession)
	sv.mux.HandleFunc("DELETE /v1/sessions/{id}", sv.handleDeleteSession)
	sv.mux.HandleFunc("POST /v1/sessions/{id}/eval", sv.handleEval)
	sv.mux.HandleFunc("POST /v1/sessions/{id}/op", sv.handleOp)
	sv.mux.Handle("GET /metrics", trace.Handler(reg))
	sv.mux.HandleFunc("GET /healthz", sv.handleHealthz)
	go sv.janitor()
	return sv, nil
}

// ServeHTTP implements http.Handler.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { sv.mux.ServeHTTP(w, r) }

// Metrics exposes the server registry (per-tenant serving metrics, batch
// counters, and the engine registry underneath).
func (sv *Server) Metrics() *trace.Registry { return sv.reg }

// Accepted and Answered report the lifetime request accounting used by the
// drain proof: after a clean drain the two are equal.
func (sv *Server) Accepted() int64 { return sv.accepted.Load() }
func (sv *Server) Answered() int64 { return sv.answered.Load() }

// Drain stops accepting work, waits (bounded by ctx) for every accepted
// request to be answered, and stops the janitor. The HTTP listener should
// already be shut down (or shutting down) when Drain is called; in-flight
// handlers block on their responses, so http.Server.Shutdown and Drain
// together guarantee no accepted request is dropped.
func (sv *Server) Drain(ctx context.Context) error {
	sv.draining.Store(true)
	err := sv.batcher.Drain(ctx)
	select {
	case <-sv.janitorDone:
	default:
		close(sv.janitorStop)
		<-sv.janitorDone
	}
	return err
}

// Draining reports whether Drain has begun.
func (sv *Server) Draining() bool { return sv.draining.Load() }

// janitor sweeps idle sessions.
func (sv *Server) janitor() {
	defer close(sv.janitorDone)
	if sv.cfg.SessionIdle < 0 {
		<-sv.janitorStop
		return
	}
	t := time.NewTicker(sv.cfg.JanitorInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := sv.table.expireIdle(sv.cfg.SessionIdle); n > 0 {
				sv.expired.Add(int64(n))
			}
		case <-sv.janitorStop:
			return
		}
	}
}

// ---- batch execution ----

// runBatch executes one batch: requests group by tenant, tenant groups run
// concurrently (the engine's pass arbiter and per-owner fair queueing
// interleave their passes), and within a group every request's program is
// evaluated lazily before one shared flush materializes the whole group's
// sinks in admission-arbitrated passes labeled with the batch id.
func (sv *Server) runBatch(id string, reqs []*Request) {
	sv.batches.Inc()
	sv.batchSize.Observe(float64(len(reqs)))
	groups := make(map[*tenant][]*Request)
	var order []*tenant
	for _, r := range reqs {
		tn := r.Sess.tenant
		if _, ok := groups[tn]; !ok {
			order = append(order, tn)
		}
		groups[tn] = append(groups[tn], r)
	}
	var wg sync.WaitGroup
	for _, tn := range order {
		wg.Add(1)
		go func(tn *tenant, rs []*Request) {
			defer wg.Done()
			sv.runTenantGroup(id, len(reqs), tn, rs)
		}(tn, groups[tn])
	}
	wg.Wait()
}

// evaled is one request's evaluation state between the eval and render
// phases.
type evaled struct {
	stmts []string
	vals  []repl.Value
	show  []bool
	err   error
}

// runTenantGroup runs one tenant's slice of a batch. Error isolation is per
// caller: a program that fails to parse or evaluate poisons only its own
// response, and if the shared flush fails, each request re-forces its own
// values during rendering and reports its own error.
func (sv *Server) runTenantGroup(batch string, batchSize int, tn *tenant, rs []*Request) {
	started := time.Now()
	// Phase 1: evaluate every program. Reductions are lazy (SetLazyScalars),
	// so the group's sinks pile up on the tenant's shared flashr session.
	evs := make([]*evaled, len(rs))
	for i, r := range rs {
		ev := &evaled{stmts: splitProgram(r.Program)}
		r.Sess.mu.Lock()
		for _, stmt := range ev.stmts {
			v, printable, err := r.Sess.env.EvalStmt(stmt)
			if err != nil {
				ev.err = fmt.Errorf("statement %q: %w", stmt, err)
				break
			}
			ev.vals = append(ev.vals, v)
			ev.show = append(ev.show, printable)
		}
		r.Sess.mu.Unlock()
		evs[i] = ev
	}
	// Phase 2: one shared flush, attributed to the batch. On error the
	// per-request render phase re-forces and isolates the failure.
	_ = tn.fs.FlushBatchCtx(context.Background(), batch)
	// Phase 3: render per caller and deliver.
	for i, r := range rs {
		ev := evs[i]
		resp := &Response{
			BatchID:   batch,
			BatchSize: batchSize,
			QueueWait: started.Sub(r.enqueued),
		}
		if ev.err != nil {
			resp.Err = ev.err
		} else {
			r.Sess.mu.Lock()
			for j, v := range ev.vals {
				if !ev.show[j] {
					resp.Results = append(resp.Results, "")
					continue
				}
				out, err := r.Sess.env.Format(v)
				if err != nil {
					resp.Err = fmt.Errorf("statement %q: %w", ev.stmts[j], err)
					resp.Results = nil
					break
				}
				resp.Results = append(resp.Results, out)
			}
			r.Sess.mu.Unlock()
		}
		resp.Exec = time.Since(started)
		r.Sess.touch()
		sv.batcher.deliver(r, resp)
	}
}

// splitProgram cuts a program into statements: one per line, blank lines and
// #-comments skipped.
func splitProgram(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}

// ---- HTTP handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (sv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": sv.draining.Load()})
}

func (sv *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if sv.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var body struct {
		Tenant string `json:"tenant"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !validTenant(body.Tenant) {
		writeError(w, http.StatusBadRequest, "invalid tenant name %q", body.Tenant)
		return
	}
	s, err := sv.table.create(body.Tenant, sv.cfg.MaxSessionsPerTenant)
	if errors.Is(err, errSessionLimit) {
		writeError(w, http.StatusTooManyRequests, "tenant %q at its session limit", body.Tenant)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"session": s.ID, "tenant": body.Tenant})
}

func (sv *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.table.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	s.mu.Lock()
	vars := s.env.Vars()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"session": s.ID, "tenant": s.Tenant(), "vars": vars})
}

func (sv *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !sv.table.remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (sv *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Program string `json:"program"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sv.execute(w, r, body.Program)
}

func (sv *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	var op OpRequest
	if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	prog, err := op.Program()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sv.execute(w, r, prog)
}

// execute runs one program through the batcher for the session in the URL
// and writes the response, applying the shed ladder: unknown session,
// oversized program, tenant in-flight quota, drain, accept-queue bound.
func (sv *Server) execute(w http.ResponseWriter, r *http.Request, program string) {
	s, ok := sv.table.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	tn := s.tenant
	if len(program) > sv.cfg.MaxProgramBytes {
		tn.shed["program_too_large"].Inc()
		writeError(w, http.StatusRequestEntityTooLarge, "program exceeds %d bytes", sv.cfg.MaxProgramBytes)
		return
	}
	if max := sv.cfg.MaxInflightPerTenant; max > 0 && tn.inflight.Load() >= int64(max) {
		tn.shed["inflight_limit"].Inc()
		writeError(w, http.StatusTooManyRequests, "tenant %q at its in-flight limit", tn.name)
		return
	}
	req := &Request{Sess: s, Program: program, Ctx: r.Context()}
	// Claim the session's in-flight slot before Submit: once the request is
	// queued the idle janitor must already see the session as busy, or a
	// sweep between Submit and the batch finishing could expire it under us.
	s.inflight.Add(1)
	ch, err := sv.batcher.Submit(req)
	if err != nil {
		s.inflight.Add(-1)
	}
	switch {
	case errors.Is(err, ErrDraining):
		tn.shed["draining"].Inc()
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	case errors.Is(err, ErrQueueFull):
		tn.shed["queue_full"].Inc()
		writeError(w, http.StatusTooManyRequests, "accept queue full")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	tn.inflight.Add(1)
	tn.requests.Inc()
	sv.accepted.Add(1)

	resp := <-ch
	s.inflight.Add(-1)
	tn.inflight.Add(-1)
	sv.answered.Add(1)
	tn.latency.Observe(time.Since(req.enqueued).Seconds())
	if resp.Err != nil {
		tn.errors.Inc()
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":      resp.Err.Error(),
			"batch":      resp.BatchID,
			"batch_size": resp.BatchSize,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results":       resp.Results,
		"batch":         resp.BatchID,
		"batch_size":    resp.BatchSize,
		"queue_wait_ms": float64(resp.QueueWait) / float64(time.Millisecond),
		"exec_ms":       float64(resp.Exec) / float64(time.Millisecond),
	})
}

// validTenant restricts tenant names to a metrics- and filesystem-safe set.
func validTenant(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, c := range s {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_') {
			return false
		}
	}
	return true
}
