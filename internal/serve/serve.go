package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	flashr "repro"
	"repro/internal/repl"
	"repro/internal/trace"
)

// Quota errors surfaced as HTTP 429s.
var (
	errSessionLimit  = errors.New("serve: tenant session limit reached")
	errInflightLimit = errors.New("serve: tenant in-flight request limit reached")
)

// Defaults for zero Config fields.
const (
	DefaultMaxBatch             = 16
	DefaultBatchWait            = 2 * time.Millisecond
	DefaultQueueDepth           = 256
	DefaultMaxSessionsPerTenant = 64
	DefaultMaxInflightPerTenant = 128
	DefaultMaxProgramBytes      = 64 << 10
	DefaultSessionIdle          = 15 * time.Minute
)

// Config parameterizes a Server.
type Config struct {
	// Root is the engine-owning flashr session every tenant session
	// shares. The server does not close it; the caller owns its lifetime.
	Root *flashr.Session
	// MaxBatch bounds how many requests one batch may coalesce
	// (0 = DefaultMaxBatch).
	MaxBatch int
	// BatchWait is how long the first request of a batch waits for
	// company before the batch flushes (0 = DefaultBatchWait).
	BatchWait time.Duration
	// QueueDepth bounds the accept queue; requests beyond it are shed
	// with 429 (0 = DefaultQueueDepth).
	QueueDepth int
	// MaxSessionsPerTenant bounds live serving sessions per tenant
	// (0 = DefaultMaxSessionsPerTenant, negative = unlimited).
	MaxSessionsPerTenant int
	// MaxInflightPerTenant bounds a tenant's accepted-but-unanswered
	// requests (0 = DefaultMaxInflightPerTenant, negative = unlimited).
	MaxInflightPerTenant int
	// MaxProgramBytes bounds one submitted program
	// (0 = DefaultMaxProgramBytes).
	MaxProgramBytes int
	// SessionIdle expires serving sessions idle this long
	// (0 = DefaultSessionIdle, negative = never).
	SessionIdle time.Duration
	// ResultIdle expires unreleased result handles idle this long
	// (0 = SessionIdle, negative = never). Released and expired handles
	// linger as tombstones (answering 410) for one further ResultIdle
	// before lookups return 404 again.
	ResultIdle time.Duration
	// JanitorInterval overrides the idle-sweep period (0 = SessionIdle/4
	// clamped to [1s, 30s]).
	JanitorInterval time.Duration
	// TenantWeights maps tenant names to SAFS bandwidth weights for the
	// engine's fair queueing (absent or <1 means weight 1).
	TenantWeights map[string]int
	// AuthTokens maps bearer tokens to tenant names. When non-empty, every
	// /v1 and /v2 request must present Authorization: Bearer <token> and is
	// bound to that token's tenant; when empty, authentication is off and
	// /v1 trusts the client-asserted tenant (development mode).
	AuthTokens map[string]string
	// BatchWaitFloor and BatchWaitCeil enable rate-adaptive batching when
	// BatchWaitCeil > 0: the flush window tracks an EWMA of the aggregate
	// request arrival rate and sizes itself to the expected time for
	// (MaxBatch-1) more arrivals, clamped to [floor, ceil]. BatchWait is
	// then ignored. BatchWaitFloor of 0 defaults to 1ms.
	BatchWaitFloor time.Duration
	BatchWaitCeil  time.Duration
	// MaxEstimatedBytes rejects programs whose statically estimated working
	// set exceeds it with 413 before any evaluation (0 = no budget).
	// Programs whose shapes cannot be bounded statically are admitted.
	MaxEstimatedBytes int64
	// MaxPinnedBytesPerTenant bounds the bytes a tenant may hold in live
	// result handles; v2 programs whose estimated result bytes would exceed
	// it are rejected with 413 at admission, and pinning enforces it again
	// exactly at handle-creation time (0 = unlimited).
	MaxPinnedBytesPerTenant int64
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.BatchWait == 0 {
		c.BatchWait = DefaultBatchWait
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxSessionsPerTenant == 0 {
		c.MaxSessionsPerTenant = DefaultMaxSessionsPerTenant
	}
	if c.MaxInflightPerTenant == 0 {
		c.MaxInflightPerTenant = DefaultMaxInflightPerTenant
	}
	if c.MaxProgramBytes == 0 {
		c.MaxProgramBytes = DefaultMaxProgramBytes
	}
	if c.SessionIdle == 0 {
		c.SessionIdle = DefaultSessionIdle
	}
	if c.ResultIdle == 0 {
		c.ResultIdle = c.SessionIdle
	}
	if c.BatchWaitFloor <= 0 {
		c.BatchWaitFloor = time.Millisecond
	}
	if c.JanitorInterval == 0 {
		c.JanitorInterval = c.SessionIdle / 4
		if c.JanitorInterval < time.Second {
			c.JanitorInterval = time.Second
		}
		if c.JanitorInterval > 30*time.Second {
			c.JanitorInterval = 30 * time.Second
		}
	}
	return c
}

// Server is the multi-tenant serving front-end over one shared engine. It
// implements http.Handler; the caller wraps it in an http.Server and, on
// shutdown, calls Drain after the HTTP listener stops accepting.
type Server struct {
	cfg     Config
	reg     *trace.Registry
	table   *sessionTable
	batcher *Batcher
	results *resultTable
	rates   *rateController
	mux     *http.ServeMux

	batches        *trace.Counter
	batchSize      *trace.Histogram
	expired        *trace.Counter
	expiredHandles *trace.Counter
	authFailures   *trace.Counter
	accepted       atomic.Int64
	answered       atomic.Int64
	draining       atomic.Bool
	streamSeq      atomic.Int64
	streamMu       sync.Mutex // guards draining flip vs streamWG.Add
	streamWG       sync.WaitGroup

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds and starts a server over cfg.Root.
func New(cfg Config) (*Server, error) {
	if cfg.Root == nil {
		return nil, errors.New("serve: Config.Root is required")
	}
	cfg = cfg.withDefaults()
	reg := trace.NewRegistry()
	sv := &Server{
		cfg:         cfg,
		reg:         reg,
		table:       newSessionTable(cfg.Root, cfg.TenantWeights, reg),
		results:     newResultTable(),
		rates:       newRateController(cfg.BatchWaitFloor, cfg.BatchWaitCeil, cfg.MaxBatch),
		mux:         http.NewServeMux(),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	sv.batches = reg.Counter("flashr_serve_batches_total", "Request batches executed.")
	sv.batchSize = trace.NewHistogram(1, 2, 4, 8, 16, 32, 64)
	reg.AddHistogram("flashr_serve_batch_size", "Requests coalesced per batch.", sv.batchSize)
	sv.expired = reg.Counter("flashr_serve_expired_sessions_total", "Serving sessions removed by idle expiry.")
	sv.expiredHandles = reg.Counter("flashr_serve_expired_handles_total", "Result handles released by idle expiry.")
	sv.authFailures = reg.Counter("flashr_serve_auth_failures_total", "Requests refused for missing or invalid bearer tokens.")
	reg.CounterFunc("flashr_serve_accepted_total", "Requests accepted across all tenants.",
		func() float64 { return float64(sv.accepted.Load()) })
	reg.CounterFunc("flashr_serve_answered_total", "Responses delivered across all tenants.",
		func() float64 { return float64(sv.answered.Load()) })
	if cfg.BatchWaitCeil > 0 {
		sv.batcher = NewAdaptiveBatcher(cfg.MaxBatch, cfg.BatchWait, cfg.QueueDepth,
			func() time.Duration { return sv.rates.window(time.Now()) }, sv.runBatch)
		reg.GaugeFunc("flashr_serve_batch_window_seconds", "Current adaptive flush window.",
			func() float64 { return sv.rates.window(time.Now()).Seconds() })
		reg.GaugeFunc("flashr_serve_arrival_rate", "Aggregate EWMA request arrival rate (requests/s).",
			func() float64 { return sv.rates.rate(time.Now()) })
	} else {
		sv.batcher = NewBatcher(cfg.MaxBatch, cfg.BatchWait, cfg.QueueDepth, sv.runBatch)
	}
	reg.GaugeFunc("flashr_serve_queue_depth", "Requests waiting in the accept queue.",
		func() float64 { return float64(len(sv.batcher.in)) })
	reg.Include(cfg.Root.Engine().Metrics())

	// The v1 inline-rendering surface is deprecated in favor of /v2 result
	// handles; responses say so in a Deprecation header.
	v1 := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", `</v2>; rel="successor-version"`)
			h(w, r)
		}
	}
	sv.mux.HandleFunc("POST /v1/sessions", v1(sv.handleCreateSession))
	sv.mux.HandleFunc("GET /v1/sessions/{id}", v1(sv.handleGetSession))
	sv.mux.HandleFunc("DELETE /v1/sessions/{id}", v1(sv.handleDeleteSession))
	sv.mux.HandleFunc("POST /v1/sessions/{id}/eval", v1(sv.handleEval))
	sv.mux.HandleFunc("POST /v1/sessions/{id}/op", v1(sv.handleOp))
	sv.mux.HandleFunc("POST /v2/sessions", sv.handleCreateSession)
	sv.mux.HandleFunc("GET /v2/sessions/{id}", sv.handleGetSession)
	sv.mux.HandleFunc("DELETE /v2/sessions/{id}", sv.handleDeleteSession)
	sv.mux.HandleFunc("POST /v2/sessions/{id}/eval", sv.handleEval)
	sv.mux.HandleFunc("POST /v2/sessions/{id}/eval/stream", sv.handleEvalStream)
	sv.mux.HandleFunc("POST /v2/sessions/{id}/op", sv.handleOp)
	sv.mux.HandleFunc("GET /v2/results/{h}", sv.handleFetchResult)
	sv.mux.HandleFunc("DELETE /v2/results/{h}", sv.handleReleaseResult)
	sv.mux.Handle("GET /metrics", trace.Handler(reg))
	sv.mux.HandleFunc("GET /healthz", sv.handleHealthz)
	go sv.janitor()
	return sv, nil
}

// ServeHTTP implements http.Handler.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { sv.mux.ServeHTTP(w, r) }

// Metrics exposes the server registry (per-tenant serving metrics, batch
// counters, and the engine registry underneath).
func (sv *Server) Metrics() *trace.Registry { return sv.reg }

// Accepted and Answered report the lifetime request accounting used by the
// drain proof: after a clean drain the two are equal.
func (sv *Server) Accepted() int64 { return sv.accepted.Load() }
func (sv *Server) Answered() int64 { return sv.answered.Load() }

// Drain stops accepting work, waits (bounded by ctx) for every accepted
// request to be answered, and stops the janitor. The HTTP listener should
// already be shut down (or shutting down) when Drain is called; in-flight
// handlers block on their responses, so http.Server.Shutdown and Drain
// together guarantee no accepted request is dropped.
func (sv *Server) Drain(ctx context.Context) error {
	// Flip draining under streamMu so claimStream either sees the flip or
	// has already added itself to streamWG before we wait on it.
	sv.streamMu.Lock()
	sv.draining.Store(true)
	sv.streamMu.Unlock()
	err := sv.batcher.Drain(ctx)
	// Streaming evals run outside the batcher; wait for them too so the
	// accepted==answered proof covers every surface.
	streamsDone := make(chan struct{})
	go func() {
		sv.streamWG.Wait()
		close(streamsDone)
	}()
	select {
	case <-streamsDone:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	select {
	case <-sv.janitorDone:
	default:
		close(sv.janitorStop)
		<-sv.janitorDone
	}
	sv.results.releaseAll()
	return err
}

// Draining reports whether Drain has begun.
func (sv *Server) Draining() bool { return sv.draining.Load() }

// janitor sweeps idle sessions and idle result handles.
func (sv *Server) janitor() {
	defer close(sv.janitorDone)
	if sv.cfg.SessionIdle < 0 && sv.cfg.ResultIdle < 0 {
		<-sv.janitorStop
		return
	}
	t := time.NewTicker(sv.cfg.JanitorInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := sv.table.expireIdle(sv.cfg.SessionIdle); n > 0 {
				sv.expired.Add(int64(n))
			}
			if n := sv.results.expireIdle(sv.cfg.ResultIdle); n > 0 {
				sv.expiredHandles.Add(int64(n))
			}
		case <-sv.janitorStop:
			return
		}
	}
}

// ---- batch execution ----

// runBatch executes one batch: requests group by tenant, tenant groups run
// concurrently (the engine's pass arbiter and per-owner fair queueing
// interleave their passes), and within a group every request's program is
// evaluated lazily before one shared flush materializes the whole group's
// sinks in admission-arbitrated passes labeled with the batch id.
func (sv *Server) runBatch(id string, reqs []*Request) {
	sv.batches.Inc()
	sv.batchSize.Observe(float64(len(reqs)))
	groups := make(map[*tenant][]*Request)
	var order []*tenant
	for _, r := range reqs {
		tn := r.Sess.tenant
		if _, ok := groups[tn]; !ok {
			order = append(order, tn)
		}
		groups[tn] = append(groups[tn], r)
	}
	var wg sync.WaitGroup
	for _, tn := range order {
		wg.Add(1)
		go func(tn *tenant, rs []*Request) {
			defer wg.Done()
			sv.runTenantGroup(id, len(reqs), tn, rs)
		}(tn, groups[tn])
	}
	wg.Wait()
}

// evaled is one request's evaluation state between the eval and render
// phases.
type evaled struct {
	stmts []string
	vals  []repl.Value
	show  []bool
	err   error
}

// runTenantGroup runs one tenant's slice of a batch. Error isolation is per
// caller: a program that fails to parse or evaluate poisons only its own
// response, and if the shared flush fails, each request re-forces its own
// values during rendering and reports its own error.
func (sv *Server) runTenantGroup(batch string, batchSize int, tn *tenant, rs []*Request) {
	started := time.Now()
	// Phase 1: evaluate every program. Reductions are lazy (SetLazyScalars),
	// so the group's sinks pile up on the tenant's shared flashr session.
	evs := make([]*evaled, len(rs))
	for i, r := range rs {
		ev := &evaled{stmts: splitProgram(r.Program)}
		r.Sess.mu.Lock()
		for _, stmt := range ev.stmts {
			v, printable, err := r.Sess.env.EvalStmt(stmt)
			if err != nil {
				ev.err = fmt.Errorf("statement %q: %w", stmt, err)
				break
			}
			ev.vals = append(ev.vals, v)
			ev.show = append(ev.show, printable)
		}
		r.Sess.mu.Unlock()
		evs[i] = ev
	}
	// Phase 2: one shared flush, attributed to the batch. Printable tall
	// matrix results ride along as extra flush targets so v2 result handles
	// materialize in the group's shared passes instead of paying their own
	// pass at pin time. On error the per-request render phase re-forces and
	// isolates the failure.
	var talls []*flashr.FM
	for _, ev := range evs {
		if ev.err != nil {
			continue
		}
		for j, v := range ev.vals {
			if ev.show[j] && v.Mat != nil && v.Mat.Length() > 1 {
				talls = append(talls, v.Mat)
			}
		}
	}
	_ = tn.fs.FlushBatchCtx(context.Background(), batch, talls...)
	// Phase 3: render per caller and deliver. v1 renders matrices inline;
	// v2 hands matrix values back as Items for the HTTP layer to pin.
	for i, r := range rs {
		ev := evs[i]
		resp := &Response{
			BatchID:   batch,
			BatchSize: batchSize,
			QueueWait: started.Sub(r.enqueued),
		}
		if ev.err != nil {
			resp.Err = ev.err
		} else {
			r.Sess.mu.Lock()
			for j, v := range ev.vals {
				if !ev.show[j] {
					if r.V2 {
						resp.Items = append(resp.Items, ResultItem{})
					} else {
						resp.Results = append(resp.Results, "")
					}
					continue
				}
				if r.V2 && v.Mat != nil && v.Mat.Length() > 1 {
					resp.Items = append(resp.Items, ResultItem{Show: true, Mat: v.Mat})
					continue
				}
				out, err := r.Sess.env.Format(v)
				if err != nil {
					resp.Err = fmt.Errorf("statement %q: %w", ev.stmts[j], err)
					resp.Results, resp.Items = nil, nil
					break
				}
				if r.V2 {
					resp.Items = append(resp.Items, ResultItem{Show: true, Text: out})
				} else {
					resp.Results = append(resp.Results, out)
				}
			}
			r.Sess.mu.Unlock()
		}
		resp.Exec = time.Since(started)
		r.Sess.touch()
		sv.batcher.deliver(r, resp)
	}
}

// splitProgram cuts a program into statements: one per line, blank lines and
// #-comments skipped.
func splitProgram(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}

// ---- HTTP handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// isV2 reports whether the request came in on the /v2 surface.
func isV2(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/v2/") }

// authTenant resolves the request's tenant binding from its bearer token.
// With authentication off (no configured tokens) it returns ("", true): no
// binding, proceed. A false second return means a 401 was already written.
func (sv *Server) authTenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	if len(sv.cfg.AuthTokens) == 0 {
		return "", true
	}
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if !strings.HasPrefix(auth, prefix) {
		sv.authFailures.Inc()
		writeError(w, http.StatusUnauthorized, CodeAuth, "missing bearer token")
		return "", false
	}
	tenant, ok := sv.cfg.AuthTokens[strings.TrimSpace(auth[len(prefix):])]
	if !ok {
		sv.authFailures.Inc()
		writeError(w, http.StatusUnauthorized, CodeAuth, "unknown bearer token")
		return "", false
	}
	return tenant, true
}

// sessionFor authenticates the request and resolves its session. A token
// bound to a different tenant sees 404, not 403: handle and session ids of
// other tenants must be indistinguishable from nonexistent ones.
func (sv *Server) sessionFor(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	tenant, ok := sv.authTenant(w, r)
	if !ok {
		return nil, false
	}
	s, found := sv.table.get(r.PathValue("id"))
	if !found || (tenant != "" && s.tenant.name != tenant) {
		writeError(w, http.StatusNotFound, CodeUnknownSession, "unknown session")
		return nil, false
	}
	return s, true
}

func (sv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "draining": sv.draining.Load()})
}

func (sv *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if sv.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server draining")
		return
	}
	authed, ok := sv.authTenant(w, r)
	if !ok {
		return
	}
	var body struct {
		Tenant string `json:"tenant"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	tenant := body.Tenant
	if authed != "" {
		// With auth on the token decides the tenant; a mismatched body
		// assertion is an authorization error, not a quiet override.
		if tenant != "" && tenant != authed {
			sv.authFailures.Inc()
			writeError(w, http.StatusForbidden, CodeAuth, "token is not for tenant %q", tenant)
			return
		}
		tenant = authed
	}
	if !validTenant(tenant) {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid tenant name %q", tenant)
		return
	}
	s, err := sv.table.create(tenant, sv.cfg.MaxSessionsPerTenant)
	if errors.Is(err, errSessionLimit) {
		writeError(w, http.StatusTooManyRequests, CodeSessionLimit, "tenant %q at its session limit", tenant)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"session": s.ID, "tenant": tenant})
}

func (sv *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.sessionFor(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	vars := s.env.Vars()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"session": s.ID, "tenant": s.Tenant(), "vars": vars})
}

func (sv *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if _, ok := sv.sessionFor(w, r); !ok {
		return
	}
	sv.table.remove(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

func (sv *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.sessionFor(w, r)
	if !ok {
		return
	}
	var body struct {
		Program string `json:"program"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	sv.execute(w, r, s, body.Program)
}

func (sv *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.sessionFor(w, r)
	if !ok {
		return
	}
	var op OpRequest
	if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	prog, err := op.Program()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	sv.execute(w, r, s, prog)
}

// admit applies the pre-eval shed ladder shared by batched and streaming
// eval: program size, static byte budgets (the FlashR premise that shapes
// are known before any data moves makes this a pre-evaluation check — a
// refused program has run zero materialization passes), and the tenant
// in-flight quota. Returns false once a refusal has been written.
func (sv *Server) admit(w http.ResponseWriter, s *Session, program string, v2 bool) bool {
	tn := s.tenant
	if len(program) > sv.cfg.MaxProgramBytes {
		tn.shed["program_too_large"].Inc()
		writeError(w, http.StatusRequestEntityTooLarge, CodeProgramTooLarge,
			"program exceeds %d bytes", sv.cfg.MaxProgramBytes)
		return false
	}
	if sv.cfg.MaxEstimatedBytes > 0 || (v2 && sv.cfg.MaxPinnedBytesPerTenant > 0) {
		s.mu.Lock()
		est, ok := s.env.EstimateProgram(splitProgram(program))
		s.mu.Unlock()
		if ok {
			if max := sv.cfg.MaxEstimatedBytes; max > 0 && est.WorkBytes > max {
				tn.shed["budget_exceeded"].Inc()
				writeError(w, http.StatusRequestEntityTooLarge, CodeBudgetExceeded,
					"estimated working set %d bytes exceeds budget %d", est.WorkBytes, max)
				return false
			}
			if q := sv.cfg.MaxPinnedBytesPerTenant; v2 && q > 0 && tn.pinned.Load()+est.ResultBytes > q {
				tn.shed["quota_exceeded"].Inc()
				writeError(w, http.StatusRequestEntityTooLarge, CodeQuotaExceeded,
					"estimated result bytes %d exceed tenant pinned quota %d (%d pinned)",
					est.ResultBytes, q, tn.pinned.Load())
				return false
			}
		}
	}
	if max := sv.cfg.MaxInflightPerTenant; max > 0 && tn.inflight.Load() >= int64(max) {
		tn.shed["inflight_limit"].Inc()
		writeError(w, http.StatusTooManyRequests, CodeInflightLimit,
			"tenant %q at its in-flight limit", tn.name)
		return false
	}
	return true
}

// execute runs one program through the batcher for the session and writes
// the response, applying the shed ladder: oversized program, byte budgets,
// tenant in-flight quota, drain, accept-queue bound.
func (sv *Server) execute(w http.ResponseWriter, r *http.Request, s *Session, program string) {
	v2 := isV2(r)
	tn := s.tenant
	if !sv.admit(w, s, program, v2) {
		return
	}
	req := &Request{Sess: s, Program: program, Ctx: r.Context(), V2: v2}
	// Claim the session's in-flight slot before Submit: once the request is
	// queued the idle janitor must already see the session as busy, or a
	// sweep between Submit and the batch finishing could expire it under us.
	s.inflight.Add(1)
	ch, err := sv.batcher.Submit(req)
	if err != nil {
		s.inflight.Add(-1)
	}
	switch {
	case errors.Is(err, ErrDraining):
		tn.shed["draining"].Inc()
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server draining")
		return
	case errors.Is(err, ErrQueueFull):
		tn.shed["queue_full"].Inc()
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, "accept queue full")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	sv.rates.observe(tn.name, time.Now())
	tn.inflight.Add(1)
	tn.requests.Inc()
	sv.accepted.Add(1)

	resp := <-ch
	s.inflight.Add(-1)
	tn.inflight.Add(-1)
	sv.answered.Add(1)
	tn.latency.Observe(time.Since(req.enqueued).Seconds())
	if resp.Err != nil {
		tn.errors.Inc()
		writeJSON(w, http.StatusUnprocessableEntity, evalEnvelope(resp.Err, resp.BatchID, resp.BatchSize))
		return
	}
	if !v2 {
		writeJSON(w, http.StatusOK, map[string]any{
			"results":       resp.Results,
			"batch":         resp.BatchID,
			"batch_size":    resp.BatchSize,
			"queue_wait_ms": float64(resp.QueueWait) / float64(time.Millisecond),
			"exec_ms":       float64(resp.Exec) / float64(time.Millisecond),
		})
		return
	}
	results, errEnv := sv.renderItems(r.Context(), tn, resp.Items)
	if errEnv != nil {
		if errEnv.Code == CodeQuotaExceeded {
			tn.shed["quota_exceeded"].Inc()
			writeJSON(w, http.StatusRequestEntityTooLarge, *errEnv)
		} else {
			writeJSON(w, http.StatusInternalServerError, *errEnv)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results":       results,
		"batch":         resp.BatchID,
		"batch_size":    resp.BatchSize,
		"queue_wait_ms": float64(resp.QueueWait) / float64(time.Millisecond),
		"exec_ms":       float64(resp.Exec) / float64(time.Millisecond),
	})
}

// renderItems turns v2 result items into response entries, pinning matrix
// results behind handles. On failure every handle already created for this
// response is released again — a response either hands out all its
// references or none.
func (sv *Server) renderItems(ctx context.Context, tn *tenant, items []ResultItem) ([]any, *errorEnvelope) {
	results := make([]any, 0, len(items))
	var created []*handle
	undo := func() {
		for _, h := range created {
			h.release(CodeResultReleased)
		}
	}
	for _, it := range items {
		switch {
		case !it.Show:
			results = append(results, nil)
		case it.Mat == nil:
			results = append(results, map[string]any{"type": "value", "text": it.Text})
		default:
			pr, err := it.Mat.PinCtx(ctx)
			if err != nil {
				undo()
				env := evalEnvelope(err, "", 0)
				env.Code = CodeInternal
				return nil, &env
			}
			h, err := sv.results.put(tn, pr, sv.cfg.MaxPinnedBytesPerTenant)
			if errors.Is(err, errPinnedQuota) {
				undo()
				return nil, &errorEnvelope{
					Error: fmt.Sprintf("pinning result would exceed tenant pinned quota %d bytes", sv.cfg.MaxPinnedBytesPerTenant),
					Code:  CodeQuotaExceeded,
				}
			}
			if err != nil {
				undo()
				return nil, &errorEnvelope{Error: err.Error(), Code: CodeInternal}
			}
			created = append(created, h)
			results = append(results, map[string]any{
				"type":   "matrix",
				"handle": h.id,
				"nrow":   h.nrow,
				"ncol":   h.ncol,
				"bytes":  h.bytes,
			})
		}
	}
	return results, nil
}

// ---- streaming eval ----

// claimStream registers a streaming request with the drain accounting. The
// same lock that Drain takes to flip draining guards the WaitGroup add, so
// a stream is either refused or waited for — never dropped mid-flight.
func (sv *Server) claimStream() bool {
	sv.streamMu.Lock()
	defer sv.streamMu.Unlock()
	if sv.draining.Load() {
		return false
	}
	sv.streamWG.Add(1)
	return true
}

// handleEvalStream evaluates a program statement by statement, emitting
// NDJSON events as each statement's results materialize: per-statement
// "progress" events carry the pass and byte deltas from MaterializeStats,
// "stmt" events carry the rendered value or result handle, and the stream
// ends with "done" (or a terminal "error" event). Statements flush
// individually — a long program streams results as they compute instead of
// answering all at once — at the price of not coalescing with batchmates.
func (sv *Server) handleEvalStream(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.sessionFor(w, r)
	if !ok {
		return
	}
	var body struct {
		Program string `json:"program"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, CodeStreamUnsupported, "response writer cannot stream")
		return
	}
	if !sv.admit(w, s, body.Program, true) {
		return
	}
	tn := s.tenant
	if !sv.claimStream() {
		tn.shed["draining"].Inc()
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server draining")
		return
	}
	defer sv.streamWG.Done()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	tn.inflight.Add(1)
	defer tn.inflight.Add(-1)
	tn.requests.Inc()
	sv.accepted.Add(1)
	defer sv.answered.Add(1)
	start := time.Now()
	defer func() { tn.latency.Observe(time.Since(start).Seconds()) }()
	sv.rates.observe(tn.name, start)

	batch := "s" + strconv.FormatInt(sv.streamSeq.Add(1), 10)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		_ = enc.Encode(v)
		fl.Flush()
	}
	fail := func(i int, err error) {
		tn.errors.Inc()
		env := evalEnvelope(err, batch, 1)
		emit(map[string]any{
			"event": "error", "index": i, "error": env.Error, "code": env.Code,
			"op": env.Op, "shapes": env.Shapes, "reason": env.Reason,
		})
	}
	stmts := splitProgram(body.Program)
	for i, stmt := range stmts {
		before := tn.fs.TotalMaterializeStats()
		s.mu.Lock()
		v, show, err := s.env.EvalStmt(stmt)
		s.mu.Unlock()
		if err != nil {
			fail(i, fmt.Errorf("statement %q: %w", stmt, err))
			return
		}
		var talls []*flashr.FM
		isMat := show && v.Mat != nil && v.Mat.Length() > 1
		if isMat {
			talls = append(talls, v.Mat)
		}
		if err := tn.fs.FlushBatchCtx(r.Context(), batch, talls...); err != nil {
			fail(i, fmt.Errorf("statement %q: %w", stmt, err))
			return
		}
		after := tn.fs.TotalMaterializeStats()
		emit(map[string]any{
			"event": "progress", "index": i,
			"passes":        after.Passes - before.Passes,
			"bytes_read":    after.BytesRead - before.BytesRead,
			"bytes_written": after.BytesWritten - before.BytesWritten,
		})
		var result any
		switch {
		case !show:
			result = nil
		case isMat:
			items := []ResultItem{{Show: true, Mat: v.Mat}}
			rendered, errEnv := sv.renderItems(r.Context(), tn, items)
			if errEnv != nil {
				tn.errors.Inc()
				emit(map[string]any{"event": "error", "index": i, "error": errEnv.Error, "code": errEnv.Code})
				return
			}
			result = rendered[0]
		default:
			s.mu.Lock()
			out, ferr := s.env.Format(v)
			s.mu.Unlock()
			if ferr != nil {
				fail(i, fmt.Errorf("statement %q: %w", stmt, ferr))
				return
			}
			result = map[string]any{"type": "value", "text": out}
		}
		emit(map[string]any{"event": "stmt", "index": i, "result": result})
	}
	s.touch()
	emit(map[string]any{"event": "done", "stmts": len(stmts), "batch": batch,
		"exec_ms": float64(time.Since(start)) / float64(time.Millisecond)})
}

// ---- result handles ----

// resultFor authenticates the request and resolves its handle; like
// sessionFor, other tenants' handles are indistinguishable from unknown ones.
func (sv *Server) resultFor(w http.ResponseWriter, r *http.Request) (*handle, bool) {
	tenant, ok := sv.authTenant(w, r)
	if !ok {
		return nil, false
	}
	h, found := sv.results.get(r.PathValue("h"))
	if !found || (tenant != "" && h.tenant.name != tenant) {
		writeError(w, http.StatusNotFound, CodeUnknownResult, "unknown result handle")
		return nil, false
	}
	return h, true
}

// fetchChunkRows bounds how many rows one read against the pinned store
// pulls at a time while streaming a fetch response.
const fetchChunkRows = 1024

func (sv *Server) handleFetchResult(w http.ResponseWriter, r *http.Request) {
	h, ok := sv.resultFor(w, r)
	if !ok {
		return
	}
	lo, hi := int64(0), h.nrow
	if q := r.URL.Query().Get("rows"); q != "" {
		a, b, err := parseRowRange(q, h.nrow)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
			return
		}
		lo, hi = a, b
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "ndjson" && format != "bin" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "unknown format %q (want ndjson or bin)", format)
		return
	}
	// acquire/finish bracket the reads: a concurrent release (client DELETE
	// or the idle janitor) marks the handle released but the pin itself only
	// drops after finish — a fetch never reads freed memory.
	if code, live := h.acquire(); !live {
		writeError(w, http.StatusGone, code, "result handle %s", strings.ReplaceAll(code, "_", " "))
		return
	}
	defer h.finish()
	if format == "bin" {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Flashr-Rows", strconv.FormatInt(hi-lo, 10))
		w.Header().Set("X-Flashr-Cols", strconv.FormatInt(h.ncol, 10))
		w.WriteHeader(http.StatusOK)
		for at := lo; at < hi; at += fetchChunkRows {
			end := at + fetchChunkRows
			if end > hi {
				end = hi
			}
			d, err := h.pr.Rows(at, end)
			if err != nil {
				return // headers are gone; the truncated body fails checks client-side
			}
			if err := binary.Write(w, binary.LittleEndian, d.Data); err != nil {
				return
			}
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for at := lo; at < hi; at += fetchChunkRows {
		end := at + fetchChunkRows
		if end > hi {
			end = hi
		}
		d, err := h.pr.Rows(at, end)
		if err != nil {
			return
		}
		for i := int64(0); i < end-at; i++ {
			row := d.Data[i*h.ncol : (i+1)*h.ncol]
			if err := enc.Encode(map[string]any{"row": at + i, "values": row}); err != nil {
				return
			}
		}
	}
}

func (sv *Server) handleReleaseResult(w http.ResponseWriter, r *http.Request) {
	h, ok := sv.resultFor(w, r)
	if !ok {
		return
	}
	h.release(CodeResultReleased) // idempotent: releasing twice is a no-op
	w.WriteHeader(http.StatusNoContent)
}

// parseRowRange parses "a:b" as the half-open row range [a, b).
func parseRowRange(s string, nrow int64) (int64, int64, error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("rows must be a:b, got %q", s)
	}
	lo, err := strconv.ParseInt(a, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("rows lower bound %q: %v", a, err)
	}
	hi, err := strconv.ParseInt(b, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("rows upper bound %q: %v", b, err)
	}
	if lo < 0 || hi > nrow || lo > hi {
		return 0, 0, fmt.Errorf("rows [%d:%d) out of range for %d rows", lo, hi, nrow)
	}
	return lo, hi, nil
}

// validTenant restricts tenant names to a metrics- and filesystem-safe set.
func validTenant(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, c := range s {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_') {
			return false
		}
	}
	return true
}
