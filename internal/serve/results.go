package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	flashr "repro"
)

// handle is one pinned result reference handed to a client. Its lifecycle is
// a small state machine guarded by mu:
//
//	live      — fetchable; fetches counts in-flight row reads
//	released  — no new fetches (410); the pin is dropped the moment the last
//	            in-flight fetch finishes, never under one
//	(gone)    — the janitor forgets released handles after a further idle
//	            period; lookups then 404
//
// The released/freed split is what makes "janitor never frees a handle with
// an in-flight fetch" structural: release marks, finish frees.
type handle struct {
	id     string
	tenant *tenant
	pr     *flashr.Pinned
	nrow   int64
	ncol   int64
	bytes  int64

	lastUsed atomic.Int64 // unix nanos

	mu       sync.Mutex
	fetches  int
	released bool
	code     string // CodeResultReleased or CodeResultExpired once released
	relAt    int64  // unix nanos of release, for tombstone expiry
}

func (h *handle) touch() { h.lastUsed.Store(time.Now().UnixNano()) }

// acquire registers an in-flight fetch. It fails with the release code once
// the handle is released or expired.
func (h *handle) acquire() (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.released {
		return h.code, false
	}
	h.fetches++
	h.touch()
	return "", true
}

// finish retires an in-flight fetch, dropping the pin if a release was
// deferred behind it.
func (h *handle) finish() {
	h.mu.Lock()
	h.fetches--
	free := h.released && h.fetches == 0
	h.mu.Unlock()
	if free {
		h.free()
	}
}

// release moves the handle to the released state under the given code. The
// pin drops now if no fetch is in flight, else when the last one finishes.
// Reports whether this call performed the release.
func (h *handle) release(code string) bool {
	h.mu.Lock()
	if h.released {
		h.mu.Unlock()
		return false
	}
	h.released = true
	h.code = code
	h.relAt = time.Now().UnixNano()
	free := h.fetches == 0
	h.mu.Unlock()
	if free {
		h.free()
	}
	return true
}

// free drops the pin and the tenant's pinned-byte accounting. Called exactly
// once, by whichever of release/finish observed fetches==0 after release.
func (h *handle) free() {
	_ = h.pr.Release()
	h.tenant.pinned.Add(-h.bytes)
	h.tenant.handles.Add(-1)
}

// resultTable owns every live and tombstoned result handle.
type resultTable struct {
	mu      sync.Mutex
	handles map[string]*handle
}

func newResultTable() *resultTable {
	return &resultTable{handles: make(map[string]*handle)}
}

// errPinnedQuota is returned by put when creating the handle would push the
// tenant past its pinned-byte quota; the pin is released before returning.
var errPinnedQuota = errors.New("serve: tenant pinned-byte quota reached")

// put registers a pinned result for the tenant and returns its handle. The
// quota claim is claim-first (like session creation) so concurrent pins
// cannot both slip under it.
func (t *resultTable) put(tn *tenant, pr *flashr.Pinned, quota int64) (*handle, error) {
	b := pr.Bytes()
	if n := tn.pinned.Add(b); quota > 0 && n > quota {
		tn.pinned.Add(-b)
		pr.Release()
		return nil, errPinnedQuota
	}
	id, err := newSessionID()
	if err != nil {
		tn.pinned.Add(-b)
		pr.Release()
		return nil, err
	}
	r, c := pr.Dim()
	h := &handle{id: "r" + id, tenant: tn, pr: pr, nrow: r, ncol: c, bytes: b}
	h.touch()
	tn.handles.Add(1)
	t.mu.Lock()
	t.handles[h.id] = h
	t.mu.Unlock()
	return h, nil
}

// get looks a handle up by id (live or tombstoned).
func (t *resultTable) get(id string) (*handle, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.handles[id]
	return h, ok
}

// expireIdle releases handles idle longer than maxIdle (they 410 as expired)
// and forgets tombstones released longer than maxIdle ago (they 404 again).
// Returns how many live handles it expired.
func (t *resultTable) expireIdle(maxIdle time.Duration) int {
	if maxIdle <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-maxIdle).UnixNano()
	t.mu.Lock()
	live := make([]*handle, 0)
	var gone []string
	for id, h := range t.handles {
		h.mu.Lock()
		released, relAt := h.released, h.relAt
		h.mu.Unlock()
		if released {
			if relAt < cutoff {
				gone = append(gone, id)
			}
			continue
		}
		if h.lastUsed.Load() < cutoff {
			live = append(live, h)
		}
	}
	for _, id := range gone {
		delete(t.handles, id)
	}
	t.mu.Unlock()
	n := 0
	for _, h := range live {
		if h.release(CodeResultExpired) {
			n++
		}
	}
	return n
}

// releaseAll releases every live handle (server drain).
func (t *resultTable) releaseAll() {
	t.mu.Lock()
	hs := make([]*handle, 0, len(t.handles))
	for _, h := range t.handles {
		hs = append(hs, h)
	}
	t.mu.Unlock()
	for _, h := range hs {
		h.release(CodeResultReleased)
	}
}
