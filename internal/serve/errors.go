package serve

import (
	"errors"
	"fmt"
	"net/http"

	flashr "repro"
)

// Machine-readable error codes. Every JSON error the server writes carries
// exactly one of these in its "code" field, so clients can branch on shed
// and reject paths without parsing English. The strings are API surface:
// never renumber or reuse them.
const (
	CodeBadRequest        = "bad_request"
	CodeUnknownSession    = "unknown_session"
	CodeUnknownResult     = "unknown_result"
	CodeResultReleased    = "result_released"
	CodeResultExpired     = "result_expired"
	CodeProgramTooLarge   = "program_too_large"
	CodeBudgetExceeded    = "budget_exceeded"
	CodeQuotaExceeded     = "quota_exceeded"
	CodeInflightLimit     = "inflight_limit"
	CodeSessionLimit      = "session_limit"
	CodeQueueFull         = "queue_full"
	CodeDraining          = "draining"
	CodeAuth              = "auth"
	CodeEvalError         = "eval_error"
	CodeStreamUnsupported = "stream_unsupported"
	CodeInternal          = "internal"
)

// errorEnvelope is the unified JSON error shape. Error and Code are always
// set; Op/Shapes/Reason mirror flashr.Error for evaluation failures so the
// HTTP surface reports the same structured fields as the public Try* API;
// Batch/BatchSize carry the batch attribution on 422s.
type errorEnvelope struct {
	Error     string     `json:"error"`
	Code      string     `json:"code"`
	Op        string     `json:"op,omitempty"`
	Shapes    [][2]int64 `json:"shapes,omitempty"`
	Reason    string     `json:"reason,omitempty"`
	Batch     string     `json:"batch,omitempty"`
	BatchSize int        `json:"batch_size,omitempty"`
}

func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: fmt.Sprintf(format, args...), Code: code})
}

// evalEnvelope builds the envelope for a request-level evaluation failure,
// unwrapping the typed *flashr.Error (preserved through the REPL's panic
// recovery and the serving layer's statement wrapping) into op/shapes/reason.
func evalEnvelope(err error, batch string, batchSize int) errorEnvelope {
	env := errorEnvelope{Error: err.Error(), Code: CodeEvalError, Batch: batch, BatchSize: batchSize}
	var fe *flashr.Error
	if errors.As(err, &fe) {
		env.Op = fe.Op
		env.Shapes = fe.Shapes
		env.Reason = fe.Reason
	}
	return env
}
