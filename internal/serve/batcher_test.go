package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collectRuns returns a run callback that records every batch it executes and
// answers each request with an OK response carrying the batch attribution.
func collectRuns(mu *sync.Mutex, sizes *[]int) func(*Batcher) func(string, []*Request) {
	return func(b *Batcher) func(string, []*Request) {
		return func(id string, reqs []*Request) {
			mu.Lock()
			*sizes = append(*sizes, len(reqs))
			mu.Unlock()
			for _, r := range reqs {
				b.deliver(r, &Response{BatchID: id, BatchSize: len(reqs)})
			}
		}
	}
}

// newTestBatcher wires a batcher to a run callback that needs the batcher
// itself (for deliver), working around the construction cycle.
func newTestBatcher(maxBatch int, maxWait time.Duration, depth int, mk func(*Batcher) func(string, []*Request)) *Batcher {
	var b *Batcher
	var once sync.Once
	var run func(string, []*Request)
	b = NewBatcher(maxBatch, maxWait, depth, func(id string, reqs []*Request) {
		once.Do(func() { run = mk(b) })
		run(id, reqs)
	})
	return b
}

func submitN(t *testing.T, b *Batcher, n int) []<-chan *Response {
	t.Helper()
	chs := make([]<-chan *Response, n)
	for i := range chs {
		ch, err := b.Submit(&Request{Ctx: context.Background()})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		chs[i] = ch
	}
	return chs
}

func recv(t *testing.T, ch <-chan *Response, within time.Duration) *Response {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(within):
		t.Fatalf("no response within %s", within)
		return nil
	}
}

// A full batch must flush immediately, without waiting out the max-wait
// window, and every member must see the same batch id and size.
func TestBatcherSizeFlush(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	b := newTestBatcher(3, 10*time.Second, 16, collectRuns(&mu, &sizes))
	defer b.Drain(context.Background())

	start := time.Now()
	chs := submitN(t, b, 3)
	var ids []string
	for _, ch := range chs {
		r := recv(t, ch, 2*time.Second)
		if r.BatchSize != 3 {
			t.Errorf("BatchSize = %d, want 3", r.BatchSize)
		}
		ids = append(ids, r.BatchID)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("full batch took %s; should flush on size, not max-wait", elapsed)
	}
	if ids[0] == "" || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("batch ids differ across one batch: %v", ids)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Errorf("run saw batches %v, want one batch of 3", sizes)
	}
}

// An under-full batch must flush once the max-wait window since its first
// request expires — neither immediately nor never.
func TestBatcherMaxWaitFlush(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	const wait = 50 * time.Millisecond
	b := newTestBatcher(64, wait, 16, collectRuns(&mu, &sizes))
	defer b.Drain(context.Background())

	start := time.Now()
	ch, err := b.Submit(&Request{Ctx: context.Background()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	r := recv(t, ch, 5*time.Second)
	elapsed := time.Since(start)
	if r.BatchSize != 1 {
		t.Errorf("BatchSize = %d, want 1", r.BatchSize)
	}
	// The timer arms at the first request; allow generous scheduling slack
	// above, but flushing measurably before the window means the timer is
	// not being honored.
	if elapsed < wait/2 {
		t.Errorf("lone request flushed after %s, before the %s max-wait window", elapsed, wait)
	}
}

// Distinct batches get distinct ids, and requests separated by more than the
// window must not share a batch.
func TestBatcherSeparateWindows(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	b := newTestBatcher(64, 20*time.Millisecond, 16, collectRuns(&mu, &sizes))
	defer b.Drain(context.Background())

	r1 := recv(t, submitN(t, b, 1)[0], 5*time.Second)
	r2 := recv(t, submitN(t, b, 1)[0], 5*time.Second)
	if r1.BatchID == r2.BatchID {
		t.Errorf("requests a window apart shared batch %q", r1.BatchID)
	}
}

// Each caller gets its own response: one request's error must not leak into
// its batchmates' channels.
func TestBatcherPerCallerDelivery(t *testing.T) {
	errBoom := errors.New("boom")
	b := newTestBatcher(2, 10*time.Second, 16, func(b *Batcher) func(string, []*Request) {
		return func(id string, reqs []*Request) {
			for i, r := range reqs {
				resp := &Response{BatchID: id, BatchSize: len(reqs)}
				if i == 0 {
					resp.Err = errBoom
				} else {
					resp.Results = []string{fmt.Sprintf("ok-%d", i)}
				}
				b.deliver(r, resp)
			}
		}
	})
	defer b.Drain(context.Background())

	chs := submitN(t, b, 2)
	r0 := recv(t, chs[0], 2*time.Second)
	r1 := recv(t, chs[1], 2*time.Second)
	if !errors.Is(r0.Err, errBoom) {
		t.Errorf("request 0: err = %v, want boom", r0.Err)
	}
	if r1.Err != nil || len(r1.Results) != 1 {
		t.Errorf("request 1 poisoned by batchmate: err=%v results=%v", r1.Err, r1.Results)
	}
}

// Drain must wait for in-flight batches, answer every accepted request, and
// refuse new submissions with ErrDraining.
func TestBatcherDrainDuringInflight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	b := newTestBatcher(1, time.Millisecond, 16, func(b *Batcher) func(string, []*Request) {
		return func(id string, reqs []*Request) {
			close(started)
			<-release
			for _, r := range reqs {
				b.deliver(r, &Response{BatchID: id, BatchSize: len(reqs)})
			}
		}
	})

	ch := submitN(t, b, 1)[0]
	<-started // the batch is now executing

	drained := make(chan error, 1)
	go func() { drained <- b.Drain(context.Background()) }()
	for !b.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := b.Submit(&Request{Ctx: context.Background()}); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit while draining: err = %v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a batch still executing", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if r := recv(t, ch, time.Second); r.Err != nil {
		t.Errorf("in-flight request answered with error %v across drain", r.Err)
	}

	// A second Drain is idempotent.
	if err := b.Drain(context.Background()); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// Drain must give up with the context's error if in-flight work outlives it.
func TestBatcherDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	b := newTestBatcher(1, time.Millisecond, 16, func(b *Batcher) func(string, []*Request) {
		return func(id string, reqs []*Request) {
			close(started)
			<-release
			for _, r := range reqs {
				b.deliver(r, &Response{BatchID: id})
			}
		}
	})
	ch := submitN(t, b, 1)[0]
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := b.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Drain with stuck batch: err = %v, want DeadlineExceeded", err)
	}
	close(release)
	recv(t, ch, time.Second)
	if err := b.Drain(context.Background()); err != nil {
		t.Errorf("follow-up Drain: %v", err)
	}
}

// A full accept queue sheds with ErrQueueFull instead of blocking the caller.
// The dispatcher is deliberately not running (the Batcher is hand-built) so
// the queue state is deterministic.
func TestBatcherQueueFullSheds(t *testing.T) {
	b := &Batcher{in: make(chan *Request, 2)}
	if _, err := b.Submit(&Request{}); err != nil {
		t.Fatalf("Submit 0: %v", err)
	}
	if _, err := b.Submit(&Request{}); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	if _, err := b.Submit(&Request{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit beyond queue depth: err = %v, want ErrQueueFull", err)
	}
	// The shed must not have leaked into the accepted-request accounting:
	// draining after answering the two queued requests must not hang on a
	// phantom third.
	go func() {
		for i := 0; i < 2; i++ {
			b.deliver(<-b.in, &Response{})
		}
	}()
	done := make(chan struct{})
	go func() {
		b.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reqWG still counting a shed request")
	}
}
