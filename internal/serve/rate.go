package serve

import (
	"math"
	"sync"
	"time"
)

// rateController adapts the batcher's flush window to the measured request
// arrival rate. The fixed -batch-wait window forces a trade the operator must
// guess in advance: a long window coalesces well under load but taxes every
// request with its full length when traffic is sparse; a short one answers
// fast but forfeits coalescing exactly when it pays most. The controller
// resolves it per batch: it tracks an EWMA of inter-arrival gaps per tenant,
// sums the tenants' rates into an aggregate λ, and sizes the window to the
// time it expects (maxBatch−1) more requests to take to arrive —
//
//	window = clamp((maxBatch−1)/λ, floor, ceil)
//
// — collapsing to the floor when λ·ceil < 1 (no company is coming within
// even the longest window, so waiting buys nothing). Staleness is handled at
// read time: a tenant's effective gap is max(EWMA gap, time since its last
// arrival), so a burst that ended decays the aggregate rate instead of
// holding the window small forever.
type rateController struct {
	floor, ceil time.Duration
	maxBatch    int

	mu      sync.Mutex
	tenants map[string]*tenantRate
}

type tenantRate struct {
	last time.Time // last arrival
	gap  float64   // EWMA inter-arrival gap, seconds
	init bool      // a gap has been observed
}

// rateAlpha is the EWMA smoothing factor: ~the last 10 arrivals dominate.
const rateAlpha = 0.2

// rateMaxGap caps one observed gap so a single long pause cannot poison the
// average; tenants idle past pruneAfter are forgotten entirely.
const (
	rateMaxGap = 10.0 // seconds
	pruneAfter = 60 * time.Second
)

func newRateController(floor, ceil time.Duration, maxBatch int) *rateController {
	if floor <= 0 {
		floor = time.Millisecond
	}
	if ceil < floor {
		ceil = floor
	}
	if maxBatch < 2 {
		maxBatch = 2
	}
	return &rateController{floor: floor, ceil: ceil, maxBatch: maxBatch, tenants: make(map[string]*tenantRate)}
}

// observe records one arrival for the tenant.
func (rc *rateController) observe(tenant string, now time.Time) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	tr, ok := rc.tenants[tenant]
	if !ok {
		rc.tenants[tenant] = &tenantRate{last: now}
		return
	}
	gap := now.Sub(tr.last).Seconds()
	if gap < 0 {
		gap = 0
	}
	if gap > rateMaxGap {
		gap = rateMaxGap
	}
	if tr.init {
		tr.gap = (1-rateAlpha)*tr.gap + rateAlpha*gap
	} else {
		tr.gap = gap
		tr.init = true
	}
	tr.last = now
}

// rate returns the aggregate arrival rate λ in requests/second as of now.
func (rc *rateController) rate(now time.Time) float64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var sum float64
	for name, tr := range rc.tenants {
		idle := now.Sub(tr.last)
		if idle > pruneAfter {
			delete(rc.tenants, name)
			continue
		}
		if !tr.init {
			continue
		}
		// Staleness decay: the tenant cannot be arriving faster than its
		// silence since the last request allows.
		gap := math.Max(tr.gap, idle.Seconds())
		if gap <= 0 {
			gap = 1e-6
		}
		sum += 1 / gap
	}
	return sum
}

// tenantRateOf returns one tenant's staleness-decayed arrival rate, for
// metrics exposition.
func (rc *rateController) tenantRateOf(tenant string, now time.Time) float64 {
	rc.mu.Lock()
	tr, ok := rc.tenants[tenant]
	rc.mu.Unlock()
	if !ok || !tr.init {
		return 0
	}
	gap := math.Max(tr.gap, now.Sub(tr.last).Seconds())
	if gap <= 0 {
		gap = 1e-6
	}
	return 1 / gap
}

// window sizes the next batch's flush window from the current aggregate rate.
func (rc *rateController) window(now time.Time) time.Duration {
	lambda := rc.rate(now)
	if lambda*rc.ceil.Seconds() < 1 {
		return rc.floor
	}
	w := time.Duration(float64(rc.maxBatch-1) / lambda * float64(time.Second))
	if w < rc.floor {
		w = rc.floor
	}
	if w > rc.ceil {
		w = rc.ceil
	}
	return w
}
