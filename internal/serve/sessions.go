package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	flashr "repro"
	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/trace"
)

// tenant is the unit of QoS and accounting: one shared-engine flashr session
// (owner = tenant name, weight = the tenant's bandwidth share) plus the
// serving sessions, quotas, and metrics hanging off it. All of a tenant's
// serving sessions evaluate against the same flashr session, which is what
// lets the sinks of a whole batch of its requests flush as shared passes.
type tenant struct {
	name string
	fs   *flashr.Session

	inflight atomic.Int64 // requests accepted and not yet answered
	sessions atomic.Int64 // live serving sessions
	pinned   atomic.Int64 // bytes held by live result handles
	handles  atomic.Int64 // live result handles

	requests *trace.Counter
	errors   *trace.Counter
	shed     map[string]*trace.Counter
	latency  *trace.Histogram
}

// Session is one client-facing serving session: an interpreter environment
// (variables) over its tenant's shared flashr session. Programs of one
// serving session execute serially under mu; programs of different sessions
// — same tenant or not — run concurrently.
type Session struct {
	ID     string
	tenant *tenant

	mu       sync.Mutex
	env      *repl.Env
	lastUsed atomic.Int64 // unix nanos
	// inflight counts requests accepted for this session and not yet
	// answered. The idle janitor must not expire a session mid-request:
	// lastUsed is only refreshed when a batch finishes, so a batch slower
	// than the idle limit would otherwise let the sweep remove the session
	// under its active client (and a follow-up request would 404).
	inflight atomic.Int64
	closed   atomic.Bool
}

// touch refreshes the idle-expiry clock.
func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// Tenant returns the owning tenant's name.
func (s *Session) Tenant() string { return s.tenant.name }

// sessionTable owns every live serving session and tenant.
type sessionTable struct {
	root    *flashr.Session
	weights map[string]int
	reg     *trace.Registry

	mu       sync.Mutex
	tenants  map[string]*tenant
	sessions map[string]*Session
}

func newSessionTable(root *flashr.Session, weights map[string]int, reg *trace.Registry) *sessionTable {
	return &sessionTable{
		root:     root,
		weights:  weights,
		reg:      reg,
		tenants:  make(map[string]*tenant),
		sessions: make(map[string]*Session),
	}
}

// tenantFor returns (building on first use) the tenant record. A new tenant
// gets a shared-engine flashr session owned by its name and a per-tenant
// metrics registry included into the server registry, so one /metrics scrape
// shows every tenant's requests, sheds, latency, and engine pass totals side
// by side.
func (t *sessionTable) tenantFor(name string) (*tenant, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tn, ok := t.tenants[name]; ok {
		return tn, nil
	}
	w := t.weights[name]
	fs, err := flashr.NewSession(
		flashr.WithSharedEngine(t.root),
		flashr.WithOwner(name),
		flashr.WithPassWeight(w),
	)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %q session: %w", name, err)
	}
	tn := &tenant{name: name, fs: fs, shed: make(map[string]*trace.Counter)}
	lbl := trace.Label{Key: "tenant", Value: name}
	tr := trace.NewRegistry()
	tn.requests = tr.Counter("flashr_serve_requests_total", "Programs accepted for execution.", lbl)
	tn.errors = tr.Counter("flashr_serve_errors_total", "Requests answered with a program error.", lbl)
	for _, reason := range shedReasons {
		c := tr.Counter("flashr_serve_shed_total", "Requests shed before execution.", lbl, trace.Label{Key: "reason", Value: reason})
		tn.shed[reason] = c
	}
	tn.latency = trace.NewHistogram(0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10)
	tr.AddHistogram("flashr_serve_request_seconds", "End-to-end request latency.", tn.latency, lbl)
	tr.GaugeFunc("flashr_serve_inflight", "Requests accepted and not yet answered.",
		func() float64 { return float64(tn.inflight.Load()) }, lbl)
	tr.GaugeFunc("flashr_serve_sessions", "Live serving sessions.",
		func() float64 { return float64(tn.sessions.Load()) }, lbl)
	tr.GaugeFunc("flashr_serve_pinned_bytes", "Bytes held by live result handles.",
		func() float64 { return float64(tn.pinned.Load()) }, lbl)
	tr.GaugeFunc("flashr_serve_result_handles", "Live result handles.",
		func() float64 { return float64(tn.handles.Load()) }, lbl)
	// The tenant's engine-pass totals, labeled owner=<tenant>: the series
	// the smoke test compares against requests to prove coalescing.
	core.RegisterStatsMetrics(tr, name, tn.fs.TotalMaterializeStats)
	t.reg.Include(tr)
	t.tenants[name] = tn
	return tn, nil
}

// shedReasons enumerates the shed counter's reason label values so every
// series exists from the tenant's first scrape.
var shedReasons = []string{
	"queue_full", "inflight_limit", "session_limit", "draining",
	"program_too_large", "budget_exceeded", "quota_exceeded",
}

// create builds a serving session for the tenant, enforcing the per-tenant
// session quota.
func (t *sessionTable) create(tenantName string, maxSessions int) (*Session, error) {
	tn, err := t.tenantFor(tenantName)
	if err != nil {
		return nil, err
	}
	// Claim the slot first so concurrent creates cannot both slip under
	// the quota; roll back on refusal.
	if n := tn.sessions.Add(1); maxSessions > 0 && n > int64(maxSessions) {
		tn.sessions.Add(-1)
		tn.shed["session_limit"].Inc()
		return nil, errSessionLimit
	}
	id, err := newSessionID()
	if err != nil {
		tn.sessions.Add(-1)
		return nil, err
	}
	env := repl.NewEnv(tn.fs)
	env.SetLazyScalars(true)
	s := &Session{ID: id, tenant: tn, env: env}
	s.touch()
	t.mu.Lock()
	t.sessions[id] = s
	t.mu.Unlock()
	return s, nil
}

// get looks a session up by id.
func (t *sessionTable) get(id string) (*Session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	return s, ok
}

// remove closes and forgets a session. Idempotent.
func (t *sessionTable) remove(id string) bool {
	t.mu.Lock()
	s, ok := t.sessions[id]
	delete(t.sessions, id)
	t.mu.Unlock()
	if !ok {
		return false
	}
	if s.closed.CompareAndSwap(false, true) {
		s.tenant.sessions.Add(-1)
	}
	return true
}

// expireIdle removes sessions idle longer than maxIdle and returns how many.
func (t *sessionTable) expireIdle(maxIdle time.Duration) int {
	if maxIdle <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-maxIdle).UnixNano()
	t.mu.Lock()
	var stale []string
	for id, s := range t.sessions {
		if s.inflight.Load() > 0 {
			continue // mid-request: not idle, whatever the clock says
		}
		if s.lastUsed.Load() < cutoff {
			stale = append(stale, id)
		}
	}
	t.mu.Unlock()
	for _, id := range stale {
		t.remove(id)
	}
	return len(stale)
}

// each calls f for every live tenant.
func (t *sessionTable) each(f func(*tenant)) {
	t.mu.Lock()
	tns := make([]*tenant, 0, len(t.tenants))
	for _, tn := range t.tenants {
		tns = append(tns, tn)
	}
	t.mu.Unlock()
	for _, tn := range tns {
		f(tn)
	}
}

// newSessionID returns a 128-bit random hex id.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
