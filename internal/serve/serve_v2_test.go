package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	flashr "repro"
)

// ---- v2 helpers ----

// do issues a request with an optional bearer token and returns the raw
// response; callers own closing the body.
func (ts *testServer) do(t *testing.T, method, path, token string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, ts.url+path, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	return resp
}

// reqJSON issues a request and decodes the JSON reply.
func (ts *testServer) reqJSON(t *testing.T, method, path, token string, body any) (int, map[string]any) {
	t.Helper()
	resp := ts.do(t, method, path, token, body)
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	return resp.StatusCode, out
}

func (ts *testServer) createV2Session(t *testing.T, tenant string) string {
	t.Helper()
	code, out := ts.reqJSON(t, http.MethodPost, "/v2/sessions", "", map[string]string{"tenant": tenant})
	if code != http.StatusOK {
		t.Fatalf("create v2 session: HTTP %d: %v", code, out)
	}
	id, _ := out["session"].(string)
	if id == "" {
		t.Fatalf("create v2 session: no id in %v", out)
	}
	return id
}

func (ts *testServer) evalV2(t *testing.T, sid, program string) (int, map[string]any) {
	t.Helper()
	return ts.reqJSON(t, http.MethodPost, "/v2/sessions/"+sid+"/eval", "", map[string]string{"program": program})
}

// matrixHandle extracts the handle object at results[i] of a v2 eval reply.
func matrixHandle(t *testing.T, out map[string]any, i int) (id string, nrow, ncol, bytes int64) {
	t.Helper()
	raw, _ := out["results"].([]any)
	if i >= len(raw) {
		t.Fatalf("results[%d] missing in %v", i, out)
	}
	m, ok := raw[i].(map[string]any)
	if !ok || m["type"] != "matrix" {
		t.Fatalf("results[%d] = %v, want a matrix handle", i, raw[i])
	}
	id, _ = m["handle"].(string)
	if id == "" {
		t.Fatalf("results[%d] has no handle: %v", i, m)
	}
	f := func(k string) int64 { v, _ := m[k].(float64); return int64(v) }
	return id, f("nrow"), f("ncol"), f("bytes")
}

// fetchBin fetches a handle in binary format and decodes the float64 payload.
func (ts *testServer) fetchBin(t *testing.T, h, query string) (int, string, []float64) {
	t.Helper()
	path := "/v2/results/" + h
	if query != "" {
		path += "?" + query
	}
	resp := ts.do(t, http.MethodGet, path+sep(query)+"format=bin", "", nil)
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var env map[string]any
		_ = json.Unmarshal(raw, &env)
		code, _ := env["code"].(string)
		return resp.StatusCode, code, nil
	}
	vals := make([]float64, len(raw)/8)
	if err := binary.Read(bytes.NewReader(raw), binary.LittleEndian, vals); err != nil {
		t.Fatalf("decode bin fetch: %v", err)
	}
	return resp.StatusCode, "", vals
}

func sep(query string) string {
	if query == "" {
		return "?"
	}
	return "&"
}

// oneMatrix is a 300×3 matrix whose every element is exactly 1.0
// (min == max == 1), so fetched values are checkable without tolerance.
const oneMatrix = "x <- runif.matrix(300, 3, 1, 1, 7)"

// ---- versioned surface ----

func TestServeV1DeprecationHeader(t *testing.T) {
	ts := newTestServer(t, nil)
	resp := ts.do(t, http.MethodPost, "/v1/sessions", "", map[string]string{"tenant": "acme"})
	resp.Body.Close()
	if got := resp.Header.Get("Deprecation"); got != "true" {
		t.Errorf("v1 Deprecation header = %q, want \"true\"", got)
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "successor-version") {
		t.Errorf("v1 Link header = %q, want successor-version pointer", link)
	}
	resp = ts.do(t, http.MethodPost, "/v2/sessions", "", map[string]string{"tenant": "acme"})
	resp.Body.Close()
	if got := resp.Header.Get("Deprecation"); got != "" {
		t.Errorf("v2 carries Deprecation header %q", got)
	}
}

// TestServeV2Conformance checks that v1 and v2 agree on everything except the
// result encoding: scalar statements render the same text, and a v2 matrix
// handle's fetched bytes are the values v1 would have printed.
func TestServeV2Conformance(t *testing.T) {
	ts := newTestServer(t, nil)
	prog := oneMatrix + "\nsum(x)\nnrow(x) * ncol(x)"

	v1sid := ts.createSession(t, "acme")
	code, v1out := ts.eval(t, v1sid, prog)
	if code != http.StatusOK {
		t.Fatalf("v1 eval: HTTP %d: %v", code, v1out)
	}
	v1res := results(v1out)

	v2sid := ts.createV2Session(t, "acme")
	code, v2out := ts.evalV2(t, v2sid, prog)
	if code != http.StatusOK {
		t.Fatalf("v2 eval: HTTP %d: %v", code, v2out)
	}
	v2raw, _ := v2out["results"].([]any)
	if len(v1res) != 3 || len(v2raw) != 3 {
		t.Fatalf("result counts v1=%d v2=%d, want 3", len(v1res), len(v2raw))
	}
	// Statement 0 is an assignment: blank on v1, null on v2.
	if v1res[0] != "" || v2raw[0] != nil {
		t.Errorf("assignment rendered v1=%q v2=%v, want blank/null", v1res[0], v2raw[0])
	}
	// Statements 1 and 2 are scalars: identical text on both surfaces.
	for i := 1; i < 3; i++ {
		m, ok := v2raw[i].(map[string]any)
		if !ok || m["type"] != "value" {
			t.Fatalf("v2 results[%d] = %v, want a value", i, v2raw[i])
		}
		if text := m["text"]; text != v1res[i] {
			t.Errorf("results[%d]: v2 text %q != v1 text %q", i, text, v1res[i])
		}
	}
	if v1res[1] != "[1] 900" {
		t.Errorf("sum(x) = %q, want \"[1] 900\"", v1res[1])
	}

	// A printed matrix becomes a handle whose fetched values match exactly.
	code, out := ts.evalV2(t, v2sid, "x")
	if code != http.StatusOK {
		t.Fatalf("v2 eval x: HTTP %d: %v", code, out)
	}
	h, nrow, ncol, nbytes := matrixHandle(t, out, 0)
	if nrow != 300 || ncol != 3 || nbytes != 300*3*8 {
		t.Fatalf("handle shape %dx%d (%d bytes), want 300x3 (7200)", nrow, ncol, nbytes)
	}
	code, _, vals := ts.fetchBin(t, h, "")
	if code != http.StatusOK {
		t.Fatalf("fetch bin: HTTP %d", code)
	}
	if len(vals) != 900 {
		t.Fatalf("fetched %d values, want 900", len(vals))
	}
	for i, v := range vals {
		if v != 1.0 {
			t.Fatalf("value[%d] = %v, want exactly 1.0", i, v)
		}
	}
}

// ---- result-handle lifecycle ----

func TestServeV2HandleLifecycle(t *testing.T) {
	ts := newTestServer(t, nil)
	sid := ts.createV2Session(t, "acme")
	if code, out := ts.evalV2(t, sid, oneMatrix); code != http.StatusOK {
		t.Fatalf("setup: HTTP %d: %v", code, out)
	}
	code, out := ts.evalV2(t, sid, "x")
	if code != http.StatusOK {
		t.Fatalf("eval x: HTTP %d: %v", code, out)
	}
	h, _, _, _ := matrixHandle(t, out, 0)

	// Row-ranged NDJSON fetch.
	resp := ts.do(t, http.MethodGet, "/v2/results/"+h+"?rows=10:13", "", nil)
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("ndjson fetch: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var rows []int64
	for sc.Scan() {
		var line struct {
			Row    int64     `json:"row"`
			Values []float64 `json:"values"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("ndjson line: %v", err)
		}
		rows = append(rows, line.Row)
		if len(line.Values) != 3 || line.Values[0] != 1.0 {
			t.Fatalf("row %d values %v, want three 1.0s", line.Row, line.Values)
		}
	}
	resp.Body.Close()
	if len(rows) != 3 || rows[0] != 10 || rows[2] != 12 {
		t.Fatalf("fetched rows %v, want [10 11 12]", rows)
	}

	// Bad ranges and formats are 400s.
	for _, q := range []string{"rows=10", "rows=5:1", "rows=0:9999", "format=xml"} {
		resp := ts.do(t, http.MethodGet, "/v2/results/"+h+"?"+q, "", nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("fetch with %q: HTTP %d, want 400", q, resp.StatusCode)
		}
	}

	// Release → 204; fetch-after-release → 410 result_released; releasing
	// again stays a 204 no-op; a bogus handle is 404.
	resp = ts.do(t, http.MethodDelete, "/v2/results/"+h, "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("release: HTTP %d, want 204", resp.StatusCode)
	}
	code, ecode, _ := ts.fetchBin(t, h, "")
	if code != http.StatusGone || ecode != CodeResultReleased {
		t.Fatalf("fetch after release: HTTP %d code %q, want 410 %q", code, ecode, CodeResultReleased)
	}
	resp = ts.do(t, http.MethodDelete, "/v2/results/"+h, "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("second release: HTTP %d, want 204", resp.StatusCode)
	}
	code, out = ts.reqJSON(t, http.MethodGet, "/v2/results/bogus", "", nil)
	if code != http.StatusNotFound || out["code"] != CodeUnknownResult {
		t.Fatalf("bogus handle: HTTP %d %v, want 404 %s", code, out, CodeUnknownResult)
	}
}

func TestServeV2HandleIdleExpiry(t *testing.T) {
	ts := newTestServer(t, func(c *Config) {
		c.ResultIdle = 30 * time.Millisecond
		c.JanitorInterval = 10 * time.Millisecond
	})
	sid := ts.createV2Session(t, "acme")
	if code, out := ts.evalV2(t, sid, oneMatrix); code != http.StatusOK {
		t.Fatalf("setup: HTTP %d: %v", code, out)
	}
	code, out := ts.evalV2(t, sid, "x")
	if code != http.StatusOK {
		t.Fatalf("eval x: HTTP %d: %v", code, out)
	}
	h, _, _, _ := matrixHandle(t, out, 0)

	// The janitor expires the idle handle: 410 result_expired. Each probe
	// touches the handle, so probe slower than ResultIdle to let it go stale.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, ecode, _ := ts.fetchBin(t, h, "")
		if code == http.StatusGone {
			if ecode != CodeResultExpired {
				t.Fatalf("expired fetch code %q, want %q", ecode, CodeResultExpired)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handle never expired (last HTTP %d)", code)
		}
		time.Sleep(60 * time.Millisecond)
	}
	// After a further idle period the tombstone is forgotten: 404.
	for {
		code, _, _ := ts.fetchBin(t, h, "")
		if code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tombstone never forgotten (last HTTP %d)", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeHandleSurvivesBatches holds a result handle open while other
// sessions run concurrent batched passes, fetching throughout: the pinned
// values must stay exact across every pass the engine coalesces around it.
func TestServeHandleSurvivesBatches(t *testing.T) {
	ts := newTestServer(t, nil)
	sid := ts.createV2Session(t, "acme")
	if code, out := ts.evalV2(t, sid, oneMatrix); code != http.StatusOK {
		t.Fatalf("setup: HTTP %d: %v", code, out)
	}
	code, out := ts.evalV2(t, sid, "x")
	if code != http.StatusOK {
		t.Fatalf("eval x: HTTP %d: %v", code, out)
	}
	h, _, _, _ := matrixHandle(t, out, 0)

	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sid := ts.createV2Session(t, fmt.Sprintf("other-%d", c))
			if code, out := ts.evalV2(t, sid, "y <- rnorm.matrix(512, 4, 0, 1, 11)"); code != http.StatusOK {
				t.Errorf("worker %d setup: HTTP %d: %v", c, code, out)
				return
			}
			for i := 0; i < 5; i++ {
				if code, out := ts.evalV2(t, sid, "sum(y * y)"); code != http.StatusOK {
					t.Errorf("worker %d eval: HTTP %d: %v", c, code, out)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			code, _, vals := ts.fetchBin(t, h, "rows=0:300")
			if code != http.StatusOK {
				t.Errorf("fetch %d: HTTP %d", i, code)
				return
			}
			for j, v := range vals {
				if v != 1.0 {
					t.Errorf("fetch %d: value[%d] = %v, want 1.0", i, j, v)
					return
				}
			}
		}
	}()
	wg.Wait()
}

// TestServeJanitorFetchRace exercises the release/finish split directly: a
// handle marked released (as the idle janitor does) while a fetch is in
// flight keeps its pin readable until the fetch finishes, and only then frees.
func TestServeJanitorFetchRace(t *testing.T) {
	root, err := flashr.NewSession(flashr.Options{Workers: 2, PartRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	x, err := root.Runif(200, 2, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := x.PinCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tn := &tenant{name: "acme"}
	rt := newResultTable()
	h, err := rt.put(tn, pr, 0)
	if err != nil {
		t.Fatal(err)
	}

	if code, live := h.acquire(); !live {
		t.Fatalf("acquire on live handle refused with %q", code)
	}
	// Make the handle stale and run the janitor sweep: it must mark the
	// handle released without freeing the pin under the in-flight fetch.
	h.lastUsed.Store(time.Now().Add(-time.Hour).UnixNano())
	if n := rt.expireIdle(time.Minute); n != 1 {
		t.Fatalf("expireIdle expired %d handles, want 1", n)
	}
	if _, live := h.acquire(); live {
		t.Fatal("acquire succeeded on expired handle")
	}
	d, err := h.pr.Rows(0, 200)
	if err != nil {
		t.Fatalf("read mid-fetch after expiry: %v", err)
	}
	for i, v := range d.Data {
		if v != 1.0 {
			t.Fatalf("value[%d] = %v, want 1.0", i, v)
		}
	}
	if got := tn.pinned.Load(); got != 200*2*8 {
		t.Fatalf("pinned bytes %d before finish, want %d", got, 200*2*8)
	}
	h.finish() // retires the fetch; now the deferred free runs
	if got := tn.pinned.Load(); got != 0 {
		t.Fatalf("pinned bytes %d after finish, want 0", got)
	}
	if _, err := h.pr.Rows(0, 1); err == nil {
		t.Fatal("pin still readable after deferred free")
	}
}

// TestServePinnedQuotaPutClaimFirst pins two results against a quota that
// only fits one: the loser must be refused and its pin released immediately.
func TestServePinnedQuotaPutClaimFirst(t *testing.T) {
	root, err := flashr.NewSession(flashr.Options{Workers: 2, PartRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	tn := &tenant{name: "acme"}
	rt := newResultTable()
	pin := func() *flashr.Pinned {
		x, err := root.Runif(100, 2, 1, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := x.PinCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return pr
	}
	quota := int64(100*2*8 + 10) // fits one 1600-byte pin, not two
	if _, err := rt.put(tn, pin(), quota); err != nil {
		t.Fatalf("first put: %v", err)
	}
	p2 := pin()
	if _, err := rt.put(tn, p2, quota); err != errPinnedQuota {
		t.Fatalf("second put err = %v, want errPinnedQuota", err)
	}
	if _, err := p2.Rows(0, 1); err == nil {
		t.Fatal("refused pin not released")
	}
	if got := tn.pinned.Load(); got != 1600 {
		t.Fatalf("pinned bytes %d after refusal, want 1600", got)
	}
}

// ---- admission budgets ----

func TestServeBudgetRejects413BeforePass(t *testing.T) {
	ts := newTestServer(t, func(c *Config) { c.MaxEstimatedBytes = 1 << 20 })
	sid := ts.createV2Session(t, "acme")

	// 100000×10 doubles = 8 MB > the 1 MiB budget: refused pre-eval.
	code, out := ts.evalV2(t, sid, "x <- runif.matrix(100000, 10, 0, 1, 7)\nsum(x)")
	if code != http.StatusRequestEntityTooLarge || out["code"] != CodeBudgetExceeded {
		t.Fatalf("over-budget eval: HTTP %d %v, want 413 %s", code, out, CodeBudgetExceeded)
	}
	// The refusal must predate any materialization: zero passes have run.
	tn, err := ts.sv.table.tenantFor("acme")
	if err != nil {
		t.Fatal(err)
	}
	if passes := tn.fs.TotalMaterializeStats().Passes; passes != 0 {
		t.Fatalf("rejected program still ran %d materialization passes", passes)
	}

	// Under budget runs normally — and the unbounded estimate path (shapes
	// the estimator cannot model) is admitted rather than rejected.
	code, out = ts.evalV2(t, sid, "y <- runif.matrix(100, 2, 0, 1, 7)\nsum(y)")
	if code != http.StatusOK {
		t.Fatalf("under-budget eval: HTTP %d: %v", code, out)
	}
	if passes := tn.fs.TotalMaterializeStats().Passes; passes == 0 {
		t.Fatal("admitted program ran no passes")
	}
}

func TestServePinnedQuotaAdmission(t *testing.T) {
	ts := newTestServer(t, func(c *Config) { c.MaxPinnedBytesPerTenant = 4096 })
	sid := ts.createV2Session(t, "acme")
	if code, out := ts.evalV2(t, sid, oneMatrix); code != http.StatusOK {
		t.Fatalf("setup: HTTP %d: %v", code, out)
	}
	// Printing x would pin 7200 bytes > the 4096 quota: refused at admission.
	code, out := ts.evalV2(t, sid, "x")
	if code != http.StatusRequestEntityTooLarge || out["code"] != CodeQuotaExceeded {
		t.Fatalf("over-quota print: HTTP %d %v, want 413 %s", code, out, CodeQuotaExceeded)
	}
	// A slice under quota pins fine, and releasing it returns the bytes.
	code, out = ts.evalV2(t, sid, "head(x, 10)")
	if code != http.StatusOK {
		t.Fatalf("small print: HTTP %d: %v", code, out)
	}
	h, nrow, _, _ := matrixHandle(t, out, 0)
	if nrow != 10 {
		t.Fatalf("slice handle has %d rows, want 10", nrow)
	}
	resp := ts.do(t, http.MethodDelete, "/v2/results/"+h, "", nil)
	resp.Body.Close()
	tn, err := ts.sv.table.tenantFor("acme")
	if err != nil {
		t.Fatal(err)
	}
	if got := tn.pinned.Load(); got != 0 {
		t.Fatalf("pinned bytes %d after release, want 0", got)
	}
}

// ---- auth ----

func TestServeAuth(t *testing.T) {
	ts := newTestServer(t, func(c *Config) {
		c.AuthTokens = map[string]string{"tok-a": "acme", "tok-b": "bob"}
	})
	// No token and unknown token are 401s.
	code, out := ts.reqJSON(t, http.MethodPost, "/v2/sessions", "", nil)
	if code != http.StatusUnauthorized || out["code"] != CodeAuth {
		t.Fatalf("no token: HTTP %d %v, want 401 %s", code, out, CodeAuth)
	}
	code, out = ts.reqJSON(t, http.MethodPost, "/v2/sessions", "tok-x", nil)
	if code != http.StatusUnauthorized || out["code"] != CodeAuth {
		t.Fatalf("unknown token: HTTP %d %v, want 401 %s", code, out, CodeAuth)
	}
	// The token decides the tenant; an empty body inherits it.
	code, out = ts.reqJSON(t, http.MethodPost, "/v2/sessions", "tok-a", nil)
	if code != http.StatusOK || out["tenant"] != "acme" {
		t.Fatalf("token create: HTTP %d %v, want tenant acme", code, out)
	}
	sid, _ := out["session"].(string)
	// Asserting a different tenant against the token is a 403.
	code, out = ts.reqJSON(t, http.MethodPost, "/v1/sessions", "tok-a", map[string]string{"tenant": "bob"})
	if code != http.StatusForbidden || out["code"] != CodeAuth {
		t.Fatalf("tenant mismatch: HTTP %d %v, want 403 %s", code, out, CodeAuth)
	}
	// Another tenant's session is indistinguishable from a missing one.
	code, out = ts.reqJSON(t, http.MethodPost, "/v2/sessions/"+sid+"/eval", "tok-b", map[string]string{"program": "1 + 1"})
	if code != http.StatusNotFound || out["code"] != CodeUnknownSession {
		t.Fatalf("cross-tenant eval: HTTP %d %v, want 404 %s", code, out, CodeUnknownSession)
	}
	// The owner evaluates normally, and cross-tenant handle fetches 404 too.
	code, out = ts.reqJSON(t, http.MethodPost, "/v2/sessions/"+sid+"/eval", "tok-a",
		map[string]string{"program": oneMatrix + "\nx"})
	if code != http.StatusOK {
		t.Fatalf("owner eval: HTTP %d: %v", code, out)
	}
	h, _, _, _ := matrixHandle(t, out, 1)
	resp := ts.do(t, http.MethodGet, "/v2/results/"+h, "tok-b", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant fetch: HTTP %d, want 404", resp.StatusCode)
	}
	resp = ts.do(t, http.MethodGet, "/v2/results/"+h, "tok-a", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner fetch: HTTP %d, want 200", resp.StatusCode)
	}
}

// ---- streaming eval ----

func TestServeStreamingEval(t *testing.T) {
	ts := newTestServer(t, nil)
	sid := ts.createV2Session(t, "acme")
	prog := oneMatrix + "\nsum(x)\nx"
	resp := ts.do(t, http.MethodPost, "/v2/sessions/"+sid+"/eval/stream", "", map[string]string{"program": prog})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream eval: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	type event struct {
		Event  string         `json:"event"`
		Index  int            `json:"index"`
		Passes int64          `json:"passes"`
		Result map[string]any `json:"result"`
		Stmts  int            `json:"stmts"`
	}
	var events []event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	// Three statements: (progress, stmt) each, then done.
	if len(events) != 7 {
		t.Fatalf("got %d events %v, want 7", len(events), events)
	}
	for i := 0; i < 3; i++ {
		pg, st := events[2*i], events[2*i+1]
		if pg.Event != "progress" || pg.Index != i {
			t.Fatalf("event %d = %+v, want progress index %d", 2*i, pg, i)
		}
		if st.Event != "stmt" || st.Index != i {
			t.Fatalf("event %d = %+v, want stmt index %d", 2*i+1, st, i)
		}
	}
	if done := events[6]; done.Event != "done" || done.Stmts != 3 {
		t.Fatalf("final event %+v, want done with 3 stmts", events[6])
	}
	if r := events[1].Result; r != nil {
		t.Errorf("assignment stmt result %v, want null", r)
	}
	if r := events[3].Result; r == nil || r["type"] != "value" || r["text"] != "[1] 900" {
		t.Errorf("sum stmt result %v, want value \"[1] 900\"", events[3].Result)
	}
	r := events[5].Result
	if r == nil || r["type"] != "matrix" {
		t.Fatalf("matrix stmt result %v, want a handle", r)
	}
	h, _ := r["handle"].(string)
	code, _, vals := ts.fetchBin(t, h, "rows=0:2")
	if code != http.StatusOK || len(vals) != 6 || vals[0] != 1.0 {
		t.Fatalf("fetch streamed handle: HTTP %d values %v", code, vals)
	}
	// A failing statement ends the stream with an error event carrying the
	// typed envelope fields.
	resp2 := ts.do(t, http.MethodPost, "/v2/sessions/"+sid+"/eval/stream", "", map[string]string{"program": "x %*% x"})
	defer resp2.Body.Close()
	var last map[string]any
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		last = nil
		if err := json.Unmarshal(sc2.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc2.Text(), err)
		}
	}
	if last == nil || last["event"] != "error" || last["code"] != CodeEvalError {
		t.Fatalf("error stream final event %v, want error/%s", last, CodeEvalError)
	}
	if op, _ := last["op"].(string); op == "" {
		t.Errorf("error event carries no op: %v", last)
	}
}

// ---- error envelope parity ----

// TestServeErrorEnvelopeHTTPParity proves the HTTP envelope carries the same
// typed op/shapes/reason a direct Try* caller sees for the same misuse.
func TestServeErrorEnvelopeHTTPParity(t *testing.T) {
	root, err := flashr.NewSession(flashr.Options{Workers: 2, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	mk := func(n int64, p int) *flashr.FM {
		m, err := root.Runif(n, p, 0, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name    string
		program string
		direct  func() error
	}{
		{"matmul shape mismatch",
			"a <- runif.matrix(300, 3, 0, 1, 7)\nb <- runif.matrix(300, 3, 0, 1, 8)\nsum(a %*% b)",
			func() error { _, err := flashr.TryMatMul(mk(300, 3), mk(300, 3)); return err }},
		{"add shape mismatch",
			"a <- runif.matrix(300, 3, 0, 1, 7)\nc <- runif.matrix(200, 3, 0, 1, 8)\nsum(a + c)",
			func() error { _, err := flashr.TryAdd(mk(300, 3), mk(200, 3)); return err }},
	}
	ts := newTestServer(t, nil)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want *flashr.Error
			if derr := tc.direct(); !errors.As(derr, &want) {
				t.Fatalf("direct call error %v is not *flashr.Error", derr)
			}
			sid := ts.createV2Session(t, "acme")
			code, out := ts.evalV2(t, sid, tc.program)
			if code != http.StatusUnprocessableEntity {
				t.Fatalf("eval: HTTP %d %v, want 422", code, out)
			}
			if out["code"] != CodeEvalError {
				t.Errorf("envelope code %v, want %s", out["code"], CodeEvalError)
			}
			if got, _ := out["op"].(string); got != want.Op {
				t.Errorf("envelope op %q, want %q", got, want.Op)
			}
			if got, _ := out["reason"].(string); got != want.Reason {
				t.Errorf("envelope reason %q, want %q", got, want.Reason)
			}
			gotShapes, _ := json.Marshal(out["shapes"])
			wantShapes, _ := json.Marshal(want.Shapes)
			if !bytes.Equal(gotShapes, wantShapes) {
				t.Errorf("envelope shapes %s, want %s", gotShapes, wantShapes)
			}
		})
	}
}

// ---- adaptive batching ----

func TestServeRateControllerWindow(t *testing.T) {
	rc := newRateController(time.Millisecond, 50*time.Millisecond, 16)
	base := time.Unix(1000, 0)

	// No arrivals: λ = 0 → floor.
	if w := rc.window(base); w != time.Millisecond {
		t.Fatalf("idle window %s, want 1ms", w)
	}
	// A steady 1000 req/s stream: window ≈ 15/1000 s = 15ms.
	now := base
	for i := 0; i < 50; i++ {
		now = now.Add(time.Millisecond)
		rc.observe("acme", now)
	}
	w := rc.window(now)
	if w < 10*time.Millisecond || w > 25*time.Millisecond {
		t.Fatalf("1000 req/s window %s, want ≈15ms", w)
	}
	// Sparse traffic (5 req/s): λ·ceil = 0.25 < 1 → floor again.
	rc2 := newRateController(time.Millisecond, 50*time.Millisecond, 16)
	now = base
	for i := 0; i < 20; i++ {
		now = now.Add(200 * time.Millisecond)
		rc2.observe("acme", now)
	}
	if w := rc2.window(now); w != time.Millisecond {
		t.Fatalf("sparse window %s, want 1ms floor", w)
	}
	// Staleness decay: a finished burst stops holding the window small.
	if w := rc.window(now.Add(time.Minute)); w != time.Millisecond {
		t.Fatalf("stale window %s, want 1ms floor", w)
	}
	// Two tenants' rates sum: each at 100 req/s → λ=200 → 15/200 = 75ms → ceil.
	rc3 := newRateController(time.Millisecond, 50*time.Millisecond, 16)
	now = base
	for i := 0; i < 30; i++ {
		now = now.Add(10 * time.Millisecond)
		rc3.observe("a", now)
		rc3.observe("b", now)
	}
	if w := rc3.window(now); w != 50*time.Millisecond {
		t.Fatalf("two-tenant window %s, want 50ms ceil", w)
	}
}

// TestBatcherAdaptiveWindow proves the batcher consults the window hook per
// batch: with a huge fixed maxWait but a tiny adaptive window, a lone request
// still flushes promptly.
func TestBatcherAdaptiveWindow(t *testing.T) {
	done := make(chan []*Request, 1)
	var b *Batcher
	b = NewAdaptiveBatcher(8, time.Hour, 16,
		func() time.Duration { return 2 * time.Millisecond },
		func(id string, reqs []*Request) {
			done <- reqs
			for _, r := range reqs {
				b.deliver(r, &Response{})
			}
		})
	defer b.Drain(context.Background())
	ch, err := b.Submit(&Request{Ctx: context.Background(), Program: "1"})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	select {
	case reqs := <-done:
		if len(reqs) != 1 {
			t.Fatalf("batch of %d, want 1", len(reqs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch never flushed under adaptive window")
	}
	if wait := time.Since(start); wait > time.Second {
		t.Fatalf("flush took %s; adaptive window ignored", wait)
	}
	<-ch
}

// TestServeAdaptiveConfigWiring checks New wires the controller in when
// BatchWaitCeil is set, exposing its gauges.
func TestServeAdaptiveConfigWiring(t *testing.T) {
	ts := newTestServer(t, func(c *Config) {
		c.BatchWaitFloor = time.Millisecond
		c.BatchWaitCeil = 20 * time.Millisecond
	})
	sid := ts.createV2Session(t, "acme")
	if code, out := ts.evalV2(t, sid, "1 + 1"); code != http.StatusOK {
		t.Fatalf("eval: HTTP %d: %v", code, out)
	}
	resp := ts.do(t, http.MethodGet, "/metrics", "", nil)
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, metric := range []string{"flashr_serve_batch_window_seconds", "flashr_serve_arrival_rate"} {
		if !bytes.Contains(raw, []byte(metric)) {
			t.Errorf("metrics missing %s", metric)
		}
	}
}
