// Package cluster simulates distributed execution of the eager baselines
// for the paper's cloud experiment (Fig. 7b): Spark MLlib and H2O running on
// a cluster of four m4.16xlarge instances (256 vCPUs total, 20 Gbps
// network) against FlashR on a single i3.16xlarge.
//
// Real multi-node hardware is unavailable, so this package implements a
// documented cost model on top of real measured execution:
//
//	T_cluster = T_compute / (1 + (Nodes−1)·Efficiency)
//	          + ReduceOps × RoundTripLatency
//	          + ShuffleBytes × 2·Nodes / Bandwidth
//
// The compute term scales with a documented parallel efficiency; the
// network terms charge what distributed dataflow engines actually pay — a
// stage barrier per aggregation boundary (tens of milliseconds in Spark,
// per the COST critique [McSherry et al., HotOS'15] the paper cites) plus
// the partial-aggregate traffic. This reproduces Fig. 7b's point: the
// per-operation materialization engines pay a coordination cost per op that
// a single fat SSD node does not.
package cluster

import (
	"time"

	"repro/internal/eager"
)

// Config describes the simulated cluster.
type Config struct {
	// Nodes in the cluster (the paper uses 4 m4.16xlarge).
	Nodes int
	// BandwidthGbps is the inter-node network bandwidth (20 Gbps in the
	// paper's cluster).
	BandwidthGbps float64
	// RoundTripLatency is the per-synchronization-round cost: scheduler
	// dispatch, task serialization, and the stage barrier. Measured Spark
	// stage overheads are tens of milliseconds (the "COST" critique the
	// paper cites [McSherry et al., HotOS'15] documents exactly these
	// constants); 50 ms is mid-range.
	RoundTripLatency time.Duration
	// Efficiency is the parallel efficiency per added node (data-parallel
	// engines scale sublinearly due to stragglers, skew and coordination;
	// 0.6–0.8 is typical for Spark ML workloads). Effective speedup =
	// 1 + (Nodes-1)·Efficiency.
	Efficiency float64
}

// DefaultConfig matches the paper's cloud setup with documented engine
// constants.
func DefaultConfig() Config {
	return Config{
		Nodes:            4,
		BandwidthGbps:    20,
		RoundTripLatency: 50 * time.Millisecond,
		Efficiency:       0.7,
	}
}

// Result reports a simulated distributed run.
type Result struct {
	MeasuredCompute time.Duration // single-machine wall time of the algorithm
	ComputeTime     time.Duration // compute term after perfect node scaling
	NetworkTime     time.Duration // synchronization + shuffle traffic
	Total           time.Duration
	ReduceRounds    int64
	ShuffleBytes    int64
}

// Run executes body (an algorithm on the given eager engine), measures its
// single-machine wall time and its shuffle/reduce counters, and applies the
// cluster cost model.
func Run(cfg Config, eng *eager.Engine, body func()) Result {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	startReduce := eng.Stats.ReduceOps.Load()
	startShuffle := eng.Stats.ShuffleBytes.Load()
	t0 := time.Now()
	body()
	elapsed := time.Since(t0)
	rounds := eng.Stats.ReduceOps.Load() - startReduce
	shuffle := eng.Stats.ShuffleBytes.Load() - startShuffle

	eff := cfg.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	speedup := 1 + float64(cfg.Nodes-1)*eff
	res := Result{
		MeasuredCompute: elapsed,
		ComputeTime:     time.Duration(float64(elapsed) / speedup),
		ReduceRounds:    rounds,
		ShuffleBytes:    shuffle,
	}
	// Each reduce boundary costs one synchronization round; every node
	// ships its partial to the driver (all-to-one), and broadcast back.
	bytesPerSec := cfg.BandwidthGbps * 1e9 / 8
	perRoundBytes := float64(shuffle) * float64(cfg.Nodes) * 2
	net := time.Duration(float64(rounds))*cfg.RoundTripLatency +
		time.Duration(perRoundBytes/bytesPerSec*float64(time.Second))
	res.NetworkTime = net
	res.Total = res.ComputeTime + res.NetworkTime
	return res
}
