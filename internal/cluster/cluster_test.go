package cluster

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dense"
	"repro/internal/eager"
)

func TestCostModelAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := dense.New(2000, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	e := eager.New(eager.StyleMLlib, 2)
	cfg := DefaultConfig()
	res := Run(cfg, e, func() {
		e.Correlation(x) // crossprod + colsums: 2 reduce boundaries
	})
	if res.ReduceRounds != 2 {
		t.Fatalf("reduce rounds %d, want 2", res.ReduceRounds)
	}
	if res.ShuffleBytes == 0 {
		t.Fatal("no shuffle bytes recorded")
	}
	if res.ComputeTime >= res.MeasuredCompute {
		t.Fatal("node scaling did not reduce compute term")
	}
	wantNet := time.Duration(res.ReduceRounds) * cfg.RoundTripLatency
	if res.NetworkTime < wantNet {
		t.Fatalf("network time %v below latency floor %v", res.NetworkTime, wantNet)
	}
	if res.Total != res.ComputeTime+res.NetworkTime {
		t.Fatal("total mismatch")
	}
}

func TestMoreRoundsCostMore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := dense.New(500, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	cfg := DefaultConfig()
	e1 := eager.New(eager.StyleMLlib, 2)
	one := Run(cfg, e1, func() { e1.ColSums(x) })
	e2 := eager.New(eager.StyleMLlib, 2)
	many := Run(cfg, e2, func() {
		for i := 0; i < 10; i++ {
			e2.ColSums(x)
		}
	})
	if many.NetworkTime <= one.NetworkTime {
		t.Fatalf("10 reduces (%v) not costlier than 1 (%v)", many.NetworkTime, one.NetworkTime)
	}
	if many.ReduceRounds != 10 {
		t.Fatalf("rounds %d", many.ReduceRounds)
	}
}

func TestSingleNodeNoScaling(t *testing.T) {
	e := eager.New(eager.StyleH2O, 2)
	res := Run(Config{Nodes: 1, BandwidthGbps: 20, RoundTripLatency: time.Millisecond}, e, func() {
		time.Sleep(5 * time.Millisecond)
	})
	if res.ComputeTime != res.MeasuredCompute {
		t.Fatal("single node should not scale compute")
	}
}
