package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/eager"
	"repro/internal/matrix"
	"repro/internal/shard"
)

// TestReduceRoundConformance pins the cost model's synchronization
// accounting to the real distributed engine. The model charges one
// RoundTripLatency per aggregation boundary; that constant only means
// something if a boundary in the simulator corresponds to exactly one
// coordinator round on the real sharded path. A workload of L column-sum
// forces must therefore count L ReduceRounds in the eager simulator and L
// aggregation rounds on a live 2-shard coordinator — and, with
// integer-valued data (exact under any regrouping of the parallel fold),
// both engines must also agree on the sums bitwise.
func TestReduceRoundConformance(t *testing.T) {
	const (
		nrow = 300
		ncol = 3
		L    = 5
	)
	val := func(r, c int) float64 { return float64((r*7+c*3)%11 - 5) }
	x := dense.New(nrow, ncol)
	for r := 0; r < nrow; r++ {
		for c := 0; c < ncol; c++ {
			x.Data[r*ncol+c] = val(r, c)
		}
	}

	// Cost-model path: L eager reduces under the simulator.
	eag := eager.New(eager.StyleMLlib, 2)
	var eagerSums [][]float64
	res := Run(DefaultConfig(), eag, func() {
		for i := 0; i < L; i++ {
			eagerSums = append(eagerSums, eag.ColSums(x))
		}
	})
	if res.ReduceRounds != L {
		t.Fatalf("cost model counted %d reduce rounds, want %d", res.ReduceRounds, L)
	}

	// Real distributed path: the same L boundaries through a 2-shard
	// coordinator. The sub-DAG result cache is disabled so every force is
	// a real aggregation round, matching the cache-less eager engine.
	ecfg := core.Config{Workers: 2, PartRows: 64, ResultCacheBytes: -1}
	eng, err := core.NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := shard.NewCoordinator(shard.Config{Shards: 2,
		Retries: 8, RetryBackoff: time.Millisecond}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	eng.SetRemoteExecutor(coord)

	leaf, err := eng.Generate(nrow, ncol, matrix.F64, func(part int, startRow int64, rows int, buf []float64) {
		for r := 0; r < rows; r++ {
			for c := 0; c < ncol; c++ {
				buf[r*ncol+c] = val(int(startRow)+r, c)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	plus, err := core.LookupAgg("+")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < L; i++ {
		s := core.AggCol(leaf, plus)
		if err := eng.MaterializeCtx(ctx, nil, []*core.Sink{s}); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		got := s.Result()
		if got == nil || got.C != ncol {
			t.Fatalf("round %d: bad colsum shape", i)
		}
		for c := 0; c < ncol; c++ {
			if got.Data[c] != eagerSums[i][c] {
				t.Fatalf("round %d col %d: shard %v, eager %v", i, c, got.Data[c], eagerSums[i][c])
			}
		}
	}
	if n := coord.AggRounds(); n != L {
		t.Fatalf("coordinator measured %d aggregation rounds, cost model predicted %d",
			n, res.ReduceRounds)
	}
}
