package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccess(t *testing.T) {
	d := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if d.R != 2 || d.C != 3 {
		t.Fatalf("shape %dx%d", d.R, d.C)
	}
	if d.At(1, 2) != 6 {
		t.Fatalf("At=%g", d.At(1, 2))
	}
	d.Set(0, 1, 9)
	if d.Row(0)[1] != 9 {
		t.Fatal("Set/Row broken")
	}
	col := d.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col=%v", col)
	}
	i := Identity(3)
	if i.Sum() != 3 {
		t.Fatal("identity sum")
	}
	c := d.Clone()
	c.Set(0, 0, -1)
	if d.At(0, 0) == -1 {
		t.Fatal("clone aliases")
	}
}

func TestRaggedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows accepted")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

// TestTransposeInvolution property-tests t(t(A)) == A.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(1+rng.Intn(10), 1+rng.Intn(10))
		for i := range d.Data {
			d.Data[i] = rng.NormFloat64()
		}
		return Equalish(d.T().T(), d, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestArithmetic(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := Add(a, b).Sum(); got != 36 {
		t.Fatalf("add sum=%g", got)
	}
	if got := Sub(b, a).Sum(); got != 16 {
		t.Fatalf("sub sum=%g", got)
	}
	if got := MulElem(a, b).At(1, 1); got != 32 {
		t.Fatalf("mul=%g", got)
	}
	if got := DivElem(b, a).At(0, 1); got != 3 {
		t.Fatalf("div=%g", got)
	}
	if got := a.Scale(2).At(1, 0); got != 6 {
		t.Fatalf("scale=%g", got)
	}
	if got := a.AddScalar(1).At(0, 0); got != 2 {
		t.Fatalf("addscalar=%g", got)
	}
	if got := a.Apply(math.Sqrt).At(1, 1); got != 2 {
		t.Fatalf("apply=%g", got)
	}
}

// TestMatMulProperties checks (AB)ᵀ == BᵀAᵀ and crossprod == t(A)%*%B.
func TestMatMulProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a, b := New(m, k), New(k, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		ab := MatMul(a, b)
		if !Equalish(ab.T(), MatMul(b.T(), a.T()), 1e-10) {
			return false
		}
		return Equalish(CrossProd(a, MatMul(a, b)), MatMul(a.T(), MatMul(a, b)), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSums(t *testing.T) {
	d := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	rs := d.RowSums()
	if rs[0] != 6 || rs[1] != 15 {
		t.Fatalf("rowsums=%v", rs)
	}
	cs := d.ColSums()
	if cs[0] != 5 || cs[1] != 7 || cs[2] != 9 {
		t.Fatalf("colsums=%v", cs)
	}
}

func TestSweep(t *testing.T) {
	d := FromRows([][]float64{{1, 2}, {3, 4}})
	byCol := d.SweepRows([]float64{1, 10}, func(x, s float64) float64 { return x - s })
	if byCol.At(0, 1) != -8 || byCol.At(1, 0) != 2 {
		t.Fatalf("sweep rows=%v", byCol.Data)
	}
	byRow := d.SweepCols([]float64{1, 10}, func(x, s float64) float64 { return x / s })
	if byRow.At(0, 0) != 1 || byRow.At(1, 1) != 0.4 {
		t.Fatalf("sweep cols=%v", byRow.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	Add(New(2, 2), New(2, 3))
}
