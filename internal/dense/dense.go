// Package dense implements small, always-in-memory row-major matrices.
//
// In FlashR the results of sink GenOps (aggregations, group-bys, Gramians,
// cluster centers) are small and kept in memory (§3.4: "Sink matrices tend
// to be small and, once materialized, store results in memory"), and small
// operands such as the right-hand side of an inner product are shared
// read-only among all worker threads. This package is that small-matrix
// substrate: a plain dense type with the eager operations the public API and
// the linear-algebra layer need.
package dense

import (
	"fmt"
	"math"

	"repro/internal/blas"
)

// Dense is a row-major r×c matrix of float64.
type Dense struct {
	R, C int
	Data []float64
}

// New allocates a zeroed r×c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: invalid shape %dx%d", r, c))
	}
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// FromSlice wraps existing row-major data (not copied).
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("dense: %d elements for %dx%d", len(data), r, c))
	}
	return &Dense{R: r, C: c, Data: data}
}

// FromRows builds a matrix from row slices (copied).
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	d := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != d.C {
			panic(fmt.Sprintf("dense: ragged row %d: %d != %d", i, len(row), d.C))
		}
		copy(d.Row(i), row)
	}
	return d
}

// Identity returns the n×n identity.
func Identity(n int) *Dense {
	d := New(n, n)
	for i := 0; i < n; i++ {
		d.Data[i*n+i] = 1
	}
	return d
}

// Clone deep-copies the matrix.
func (d *Dense) Clone() *Dense {
	out := New(d.R, d.C)
	copy(out.Data, d.Data)
	return out
}

// At returns element (i,j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.C+j] }

// Set assigns element (i,j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.C+j] = v }

// Row returns row i as a slice view.
func (d *Dense) Row(i int) []float64 { return d.Data[i*d.C : (i+1)*d.C] }

// Col copies column j into a new slice.
func (d *Dense) Col(j int) []float64 {
	out := make([]float64, d.R)
	for i := 0; i < d.R; i++ {
		out[i] = d.Data[i*d.C+j]
	}
	return out
}

// T returns the transpose as a new matrix.
func (d *Dense) T() *Dense {
	out := New(d.C, d.R)
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			out.Data[j*d.R+i] = d.Data[i*d.C+j]
		}
	}
	return out
}

// sameShape panics unless a and b have identical shape.
func sameShape(op string, a, b *Dense) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("dense: %s shape mismatch %dx%d vs %dx%d", op, a.R, a.C, b.R, b.C))
	}
}

// Add returns a+b.
func Add(a, b *Dense) *Dense { return zip("add", a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a-b.
func Sub(a, b *Dense) *Dense { return zip("sub", a, b, func(x, y float64) float64 { return x - y }) }

// MulElem returns the Hadamard product a*b.
func MulElem(a, b *Dense) *Dense {
	return zip("mul", a, b, func(x, y float64) float64 { return x * y })
}

// DivElem returns elementwise a/b.
func DivElem(a, b *Dense) *Dense {
	return zip("div", a, b, func(x, y float64) float64 { return x / y })
}

func zip(op string, a, b *Dense, f func(x, y float64) float64) *Dense {
	sameShape(op, a, b)
	out := New(a.R, a.C)
	for i, v := range a.Data {
		out.Data[i] = f(v, b.Data[i])
	}
	return out
}

// Apply returns f mapped over every element.
func (d *Dense) Apply(f func(float64) float64) *Dense {
	out := New(d.R, d.C)
	for i, v := range d.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Scale returns alpha*d.
func (d *Dense) Scale(alpha float64) *Dense {
	return d.Apply(func(v float64) float64 { return alpha * v })
}

// AddScalar returns d+alpha.
func (d *Dense) AddScalar(alpha float64) *Dense {
	return d.Apply(func(v float64) float64 { return v + alpha })
}

// MatMul returns a %*% b using the blocked BLAS kernel.
func MatMul(a, b *Dense) *Dense {
	if a.C != b.R {
		panic(fmt.Sprintf("dense: matmul %dx%d by %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.C)
	blas.Gemm(a.R, b.C, a.C, a.Data, a.C, b.Data, b.C, out.Data, out.C)
	return out
}

// CrossProd returns t(a) %*% b.
func CrossProd(a, b *Dense) *Dense {
	if a.R != b.R {
		panic(fmt.Sprintf("dense: crossprod %dx%d by %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.C, b.C)
	blas.GemmTA(a.R, b.C, a.C, a.Data, a.C, b.Data, b.C, out.Data, out.C)
	return out
}

// Sum returns the sum over all elements.
func (d *Dense) Sum() float64 {
	var s float64
	for _, v := range d.Data {
		s += v
	}
	return s
}

// RowSums returns the length-R vector of row sums.
func (d *Dense) RowSums() []float64 {
	out := make([]float64, d.R)
	for i := 0; i < d.R; i++ {
		var s float64
		for _, v := range d.Row(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

// ColSums returns the length-C vector of column sums.
func (d *Dense) ColSums() []float64 {
	out := make([]float64, d.C)
	for i := 0; i < d.R; i++ {
		row := d.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// SweepRows applies f(x, v[j]) to every element of every row (R's
// sweep(X, 2, v, f): the sweep vector runs along columns).
func (d *Dense) SweepRows(v []float64, f func(x, s float64) float64) *Dense {
	if len(v) != d.C {
		panic(fmt.Sprintf("dense: sweep vector %d != ncol %d", len(v), d.C))
	}
	out := New(d.R, d.C)
	for i := 0; i < d.R; i++ {
		row := d.Row(i)
		orow := out.Row(i)
		for j, x := range row {
			orow[j] = f(x, v[j])
		}
	}
	return out
}

// SweepCols applies f(x, v[i]) to every element of every column (R's
// sweep(X, 1, v, f)).
func (d *Dense) SweepCols(v []float64, f func(x, s float64) float64) *Dense {
	if len(v) != d.R {
		panic(fmt.Sprintf("dense: sweep vector %d != nrow %d", len(v), d.R))
	}
	out := New(d.R, d.C)
	for i := 0; i < d.R; i++ {
		row := d.Row(i)
		orow := out.Row(i)
		for j, x := range row {
			orow[j] = f(x, v[i])
		}
	}
	return out
}

// MaxAbsDiff returns max |a-b| over elements, for convergence tests.
func MaxAbsDiff(a, b *Dense) float64 {
	sameShape("maxabsdiff", a, b)
	var m float64
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Equalish reports whether a and b agree within tol elementwise.
func Equalish(a, b *Dense, tol float64) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}
