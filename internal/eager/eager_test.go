package eager

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
)

func randDense(rng *rand.Rand, r, c int) *dense.Dense {
	d := dense.New(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// TestOpsAgreeAcrossStyles: all three styles must produce identical math —
// they differ only in execution strategy.
func TestOpsAgreeAcrossStyles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 500, 6)
	b := randDense(rng, 500, 6)
	engines := []*Engine{New(StyleMLlib, 3), New(StyleH2O, 3), New(StyleROpen, 3)}
	var refSum float64
	var refCross *dense.Dense
	for i, e := range engines {
		m := e.Map(a, math.Abs)
		z := e.Zip(m, b, func(x, y float64) float64 { return x + y })
		sum := e.Sum(z)
		cross := e.CrossProd(a, b)
		if i == 0 {
			refSum, refCross = sum, cross
			continue
		}
		if math.Abs(sum-refSum) > 1e-9 {
			t.Fatalf("style %v sum %g != %g", e.Style, sum, refSum)
		}
		if !dense.Equalish(cross, refCross, 1e-9) {
			t.Fatalf("style %v crossprod differs", e.Style)
		}
	}
}

func TestReduceCountsAndSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 400, 3)
	spark := New(StyleMLlib, 4)
	_ = spark.ColSums(a)
	if spark.Stats.ReduceOps.Load() != 1 {
		t.Fatalf("reduce ops %d", spark.Stats.ReduceOps.Load())
	}
	if spark.Stats.ShuffleBytes.Load() == 0 {
		t.Fatal("MLlib style recorded no shuffle bytes")
	}
	h2o := New(StyleH2O, 4)
	_ = h2o.ColSums(a)
	if h2o.Stats.ShuffleBytes.Load() != 0 {
		t.Fatal("H2O style should not serialize partials")
	}
}

func TestEagerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 300, 4)
	e := New(StyleH2O, 2)
	cs := e.ColSums(a)
	want := a.ColSums()
	for j := range cs {
		if math.Abs(cs[j]-want[j]) > 1e-9 {
			t.Fatalf("colsums[%d]", j)
		}
	}
	rs := e.RowSums(a)
	wantR := a.RowSums()
	for i := range wantR {
		if math.Abs(rs.Data[i]-wantR[i]) > 1e-9 {
			t.Fatalf("rowsums[%d]", i)
		}
	}
	d := e.EuclidDist(a, dense.FromRows([][]float64{{0, 0, 0, 0}}))
	for i := 0; i < a.R; i++ {
		var s float64
		for _, v := range a.Row(i) {
			s += v * v
		}
		if math.Abs(d.At(i, 0)-s) > 1e-9 {
			t.Fatalf("euclid[%d]", i)
		}
	}
	am := e.ArgMinRow(a)
	amx := e.ArgMaxRow(a)
	for i := 0; i < a.R; i++ {
		row := a.Row(i)
		bi, bv := 0, row[0]
		wi, wv := 0, row[0]
		for j, v := range row {
			if v < bv {
				bv, bi = v, j
			}
			if v > wv {
				wv, wi = v, j
			}
		}
		if int(am.Data[i]) != bi || int(amx.Data[i]) != wi {
			t.Fatalf("arg rows at %d", i)
		}
	}
}

func TestEagerKMeansConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := dense.New(600, 2)
	for i := 0; i < 600; i++ {
		off := float64(i%2) * 10
		x.Set(i, 0, rng.NormFloat64()+off)
		x.Set(i, 1, rng.NormFloat64()+off)
	}
	init := dense.FromRows([][]float64{{1, 1}, {9, 9}})
	e := New(StyleH2O, 2)
	centers, iters := e.KMeans(x, init, 50)
	if iters >= 50 {
		t.Fatal("did not converge")
	}
	if math.Abs(centers.At(0, 0)) > 0.5 || math.Abs(centers.At(1, 0)-10) > 0.5 {
		t.Fatalf("centers %v", centers.Data)
	}
}

func TestEagerLogisticLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 800
	x := dense.New(n, 3)
	y := dense.New(n, 1)
	for i := 0; i < n; i++ {
		c := float64(i % 2)
		y.Data[i] = c
		x.Set(i, 0, rng.NormFloat64()+(c*2-1)*2)
		x.Set(i, 1, rng.NormFloat64())
		x.Set(i, 2, 1)
	}
	e := New(StyleMLlib, 2)
	w, iters := e.Logistic(x, y, 50, 1e-9)
	if iters == 0 {
		t.Fatal("no iterations")
	}
	if w[0] < 0.5 {
		t.Fatalf("weight on informative feature %g", w[0])
	}
}

func TestEagerGMMAndNB(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 600
	x := dense.New(n, 2)
	y := dense.New(n, 1)
	for i := 0; i < n; i++ {
		c := i % 2
		y.Data[i] = float64(c)
		x.Set(i, 0, rng.NormFloat64()+float64(c)*6)
		x.Set(i, 1, rng.NormFloat64())
	}
	e := New(StyleH2O, 2)
	priors, mean, variance := e.NaiveBayes(x, y, 2)
	if math.Abs(priors[0]-0.5) > 0.05 {
		t.Fatalf("priors %v", priors)
	}
	if math.Abs(mean.At(1, 0)-6) > 0.3 || variance.At(0, 0) < 0.5 {
		t.Fatalf("NB params mean=%v var=%v", mean.Data, variance.Data)
	}
	weights, means, iters, ll := e.GMM(x, dense.FromRows([][]float64{{1, 0}, {5, 0}}), 30, 1e-6)
	if iters == 0 || math.IsNaN(ll) {
		t.Fatalf("GMM iters=%d ll=%g", iters, ll)
	}
	lo := math.Min(means.At(0, 0), means.At(1, 0))
	hi := math.Max(means.At(0, 0), means.At(1, 0))
	if math.Abs(lo) > 0.5 || math.Abs(hi-6) > 0.5 {
		t.Fatalf("GMM means %v (weights %v)", means.Data, weights)
	}
}

func TestEagerLDAAndMvrnorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 500
	x := dense.New(n, 2)
	y := dense.New(n, 1)
	for i := 0; i < n; i++ {
		c := i % 2
		y.Data[i] = float64(c)
		x.Set(i, 0, rng.NormFloat64()+float64(c)*5)
		x.Set(i, 1, rng.NormFloat64())
	}
	e := New(StyleROpen, 1)
	w, bias := e.LDA(x, y, 2)
	if w.R != 2 || w.C != 2 || len(bias) != 2 {
		t.Fatal("LDA shapes")
	}
	// Discriminant for class 1 must dominate on a far-right point.
	s0 := 10*w.At(0, 0) + 0*w.At(1, 0) + bias[0]
	s1 := 10*w.At(0, 1) + 0*w.At(1, 1) + bias[1]
	if s1 <= s0 {
		t.Fatalf("LDA discriminants s0=%g s1=%g", s0, s1)
	}
	z := randDense(rng, 2000, 2)
	out := e.Mvrnorm(z, []float64{3, -3}, dense.Identity(2))
	cm := out.ColSums()
	if math.Abs(cm[0]/2000-3) > 0.2 || math.Abs(cm[1]/2000+3) > 0.2 {
		t.Fatalf("mvrnorm means %g %g", cm[0]/2000, cm[1]/2000)
	}
}

// TestSymmetricCrossProdAgrees: the ROpen dsyrk path must match the generic
// kernel on symmetric Gramians.
func TestSymmetricCrossProdAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randDense(rng, 300, 7)
	want := New(StyleH2O, 2).CrossProd(a, a)
	got := New(StyleROpen, 1).CrossProd(a, a)
	if !dense.Equalish(got, want, 1e-9) {
		t.Fatal("ROpen syrk crossprod differs")
	}
	// Symmetry of the result.
	for i := 0; i < 7; i++ {
		for j := 0; j < i; j++ {
			if got.At(i, j) != got.At(j, i) {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}
