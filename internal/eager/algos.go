package eager

import (
	"math"

	"repro/internal/dense"
	"repro/internal/linalg"
	"repro/ml/optim"
)

// The benchmark algorithm suite, implemented identically to the ml package
// (the paper: "We implement these algorithms identically to our
// competitors") but executed on the eager per-op engine.

// Correlation computes the Pearson correlation matrix.
func (e *Engine) Correlation(x *dense.Dense) *dense.Dense {
	n := float64(x.R)
	p := x.C
	g := e.CrossProd(x, x)
	sums := e.ColSums(x)
	out := dense.New(p, p)
	mean := make([]float64, p)
	for j := range mean {
		mean[j] = sums[j] / n
	}
	cov := dense.New(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			cov.Set(i, j, g.At(i, j)/n-mean[i]*mean[j])
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			sd := math.Sqrt(cov.At(i, i) * cov.At(j, j))
			if sd == 0 {
				out.Set(i, j, 0)
			} else {
				out.Set(i, j, cov.At(i, j)/sd)
			}
		}
	}
	return out
}

// PCA computes eigenvalues/vectors of the covariance from the Gramian.
func (e *Engine) PCA(x *dense.Dense, ncomp int) ([]float64, *dense.Dense) {
	n := float64(x.R)
	p := x.C
	if ncomp <= 0 || ncomp > p {
		ncomp = p
	}
	g := e.CrossProd(x, x)
	sums := e.ColSums(x)
	cov := dense.New(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			cov.Set(i, j, (g.At(i, j)-sums[i]*sums[j]/n)/(n-1))
		}
	}
	vals, vecs, err := linalg.EigSym(cov)
	if err != nil {
		panic(err)
	}
	rot := dense.New(p, ncomp)
	for i := 0; i < p; i++ {
		for j := 0; j < ncomp; j++ {
			rot.Set(i, j, vecs.At(i, j))
		}
	}
	return vals[:ncomp], rot
}

// NaiveBayes trains Gaussian NB and returns per-class means and variances.
func (e *Engine) NaiveBayes(x, y *dense.Dense, k int) (priors []float64, mean, variance *dense.Dense) {
	sums, counts := e.GroupByRow(x, y, k)
	x2 := e.Zip(x, x, func(a, b float64) float64 { return a * b })
	sq, _ := e.GroupByRow(x2, y, k)
	p := x.C
	n := float64(x.R)
	priors = make([]float64, k)
	mean = dense.New(k, p)
	variance = dense.New(k, p)
	for c := 0; c < k; c++ {
		nc := counts[c]
		priors[c] = nc / n
		for j := 0; j < p; j++ {
			mu := sums.At(c, j) / nc
			mean.Set(c, j, mu)
			v := sq.At(c, j)/nc - mu*mu
			if v < 1e-9 {
				v = 1e-9
			}
			variance.Set(c, j, v)
		}
	}
	return priors, mean, variance
}

// Logistic trains binary logistic regression with LBFGS; every loss/grad
// evaluation is a sequence of separately-materialized ops.
func (e *Engine) Logistic(x, y *dense.Dense, maxIter int, tol float64) ([]float64, int) {
	n := float64(x.R)
	p := x.C
	if tol <= 0 {
		tol = 1e-6
	}
	// Every elementwise step materializes separately, exactly as the
	// R-style expression decomposes — the execution model Spark/H2O expose
	// (and the cost the paper's fusion removes).
	obj := optim.ObjectiveFunc(func(w []float64) (float64, []float64, error) {
		wm := dense.FromSlice(p, 1, append([]float64(nil), w...))
		z := e.MatMul(x, wm)
		// prob = 1/(1+exp(-z))
		negZ := e.Map(z, func(v float64) float64 { return -v })
		expNegZ := e.Map(negZ, math.Exp)
		denom := e.MapScalar(expNegZ, 1, func(v, s float64) float64 { return v + s })
		prob := e.Map(denom, func(v float64) float64 { return 1 / v })
		resid := e.Zip(prob, y, func(a, b float64) float64 { return a - b })
		grad := e.CrossProd(x, resid)
		// logloss = sum( pmax(z,0) + log1p(exp(-|z|)) - y*z ).
		zPos := e.MapScalar(z, 0, math.Max)
		absZ := e.Map(z, math.Abs)
		negAbs := e.Map(absZ, func(v float64) float64 { return -v })
		expTerm := e.Map(negAbs, math.Exp)
		logTerm := e.Map(expTerm, math.Log1p)
		yz := e.Zip(y, z, func(a, b float64) float64 { return a * b })
		stable := e.Zip(zPos, logTerm, func(a, b float64) float64 { return a + b })
		lossTerms := e.Zip(stable, yz, func(a, b float64) float64 { return a - b })
		f := e.Sum(lossTerms) / n
		g := make([]float64, p)
		for j := 0; j < p; j++ {
			g[j] = grad.Data[j] / n
		}
		return f, g, nil
	})
	res, err := optim.Minimize(obj, make([]float64, p), optim.Options{MaxIter: maxIter, TolObj: tol})
	if err != nil {
		panic(err)
	}
	return res.W, res.Iters
}

// KMeans runs Lloyd's algorithm with per-op materialization.
func (e *Engine) KMeans(x *dense.Dense, init *dense.Dense, maxIter int) (*dense.Dense, int) {
	k := init.R
	centers := init.Clone()
	var prev *dense.Dense
	iters := 0
	for it := 0; it < maxIter; it++ {
		iters = it + 1
		d := e.EuclidDist(x, centers)
		assign := e.ArgMinRow(d)
		sums, counts := e.GroupByRow(x, assign, k)
		for g := 0; g < k; g++ {
			if counts[g] == 0 {
				continue
			}
			for j := 0; j < x.C; j++ {
				centers.Set(g, j, sums.At(g, j)/counts[g])
			}
		}
		if prev != nil {
			diff := e.Zip(assign, prev, func(a, b float64) float64 {
				if a != b {
					return 1
				}
				return 0
			})
			if e.Sum(diff) == 0 {
				break
			}
		}
		prev = assign
	}
	return centers, iters
}

// GMM fits a Gaussian mixture by EM with per-op materialization.
func (e *Engine) GMM(x *dense.Dense, init *dense.Dense, maxIter int, tol float64) (weights []float64, means *dense.Dense, iters int, loglike float64) {
	n := x.R
	p := x.C
	k := init.R
	means = init.Clone()
	weights = make([]float64, k)
	covs := make([]*dense.Dense, k)
	// Global covariance init.
	g := e.CrossProd(x, x)
	cs := e.ColSums(x)
	global := dense.New(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			global.Set(i, j, g.At(i, j)/float64(n)-cs[i]*cs[j]/float64(n)/float64(n))
		}
	}
	for c := 0; c < k; c++ {
		weights[c] = 1 / float64(k)
		covs[c] = ridge(global.Clone())
	}
	prevLL := math.Inf(-1)
	for it := 0; it < maxIter; it++ {
		iters = it + 1
		// E-step: per-component log densities, each a chain of
		// materialized ops.
		logd := dense.New(n, k)
		for c := 0; c < k; c++ {
			l, err := linalg.Cholesky(covs[c])
			if err != nil {
				covs[c] = ridge(covs[c])
				l, err = linalg.Cholesky(covs[c])
				if err != nil {
					panic(err)
				}
			}
			a := linalg.SolveChol(l, dense.Identity(p))
			logDet := linalg.LogDetChol(l)
			mu := dense.New(p, 1)
			for j := 0; j < p; j++ {
				mu.Set(j, 0, means.At(c, j))
			}
			amu := dense.MatMul(a, mu)
			var muAmu float64
			for j := 0; j < p; j++ {
				muAmu += mu.At(j, 0) * amu.At(j, 0)
			}
			xa := e.MatMul(x, a)
			quadM := e.Zip(xa, x, func(u, v float64) float64 { return u * v })
			quad := e.RowSums(quadM)
			lin := e.MatMul(x, amu)
			logConst := math.Log(weights[c]) - 0.5*(float64(p)*math.Log(2*math.Pi)+logDet)
			// mahal = quad - 2·lin + μᵀAμ; column = -mahal/2 + const —
			// each step its own materialized op.
			lin2 := e.MapScalar(lin, 2, func(v, s float64) float64 { return v * s })
			mahal := e.Zip(quad, lin2, func(a, b float64) float64 { return a - b })
			col := e.MapScalar(mahal, muAmu, func(v, s float64) float64 { return -0.5*(v+s) + logConst })
			e.Stats.Passes.Add(1) // column binding into the n×k density matrix
			for i := 0; i < n; i++ {
				logd.Set(i, c, col.Data[i])
			}
		}
		// Responsibilities and log-likelihood, decomposed op by op (the
		// same softmax expression the flashr implementation builds).
		rowMax := e.RowMax(logd)
		shifted := e.SweepCols(logd, rowMax.Data, func(v, m float64) float64 { return v - m })
		expd := e.Map(shifted, math.Exp)
		se := e.RowSums(expd)
		resp := e.SweepCols(expd, se.Data, func(v, s float64) float64 { return v / s })
		logSE := e.Map(se, math.Log)
		lls := e.Zip(rowMax, logSE, func(a, b float64) float64 { return a + b })
		ll := e.Sum(lls) / float64(n)
		// M-step.
		nc := e.ColSums(resp)
		wsum := e.CrossProd(resp, x)
		for c := 0; c < k; c++ {
			w := math.Max(nc[c], 1e-10)
			weights[c] = w / float64(n)
			for j := 0; j < p; j++ {
				means.Set(c, j, wsum.At(c, j)/w)
			}
		}
		for c := 0; c < k; c++ {
			rc := dense.New(n, 1)
			for i := 0; i < n; i++ {
				rc.Data[i] = resp.At(i, c)
			}
			xw := e.SweepCols(x, rc.Data, func(v, r float64) float64 { return v * r })
			gw := e.CrossProd(x, xw)
			w := math.Max(nc[c], 1e-10)
			cov := dense.New(p, p)
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					cov.Set(i, j, gw.At(i, j)/w-means.At(c, i)*means.At(c, j))
				}
			}
			covs[c] = ridge(cov)
		}
		loglike = ll
		if it > 0 && ll-prevLL >= 0 && ll-prevLL < tol {
			break
		}
		prevLL = ll
	}
	return weights, means, iters, loglike
}

// Mvrnorm draws from N(mu, Sigma) MASS-style.
func (e *Engine) Mvrnorm(z *dense.Dense, mu []float64, sigma *dense.Dense) *dense.Dense {
	root, err := linalg.SqrtSPD(sigma)
	if err != nil {
		panic(err)
	}
	xz := e.MatMul(z, root)
	return e.SweepRows(xz, mu, func(v, m float64) float64 { return v + m })
}

// LDA trains MASS-style linear discriminant analysis and returns the
// discriminant weights (p×k) and biases.
func (e *Engine) LDA(x, y *dense.Dense, k int) (*dense.Dense, []float64) {
	n := x.R
	p := x.C
	sums, counts := e.GroupByRow(x, y, k)
	g := e.CrossProd(x, x)
	means := dense.New(k, p)
	for c := 0; c < k; c++ {
		for j := 0; j < p; j++ {
			means.Set(c, j, sums.At(c, j)/counts[c])
		}
	}
	w := dense.New(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			v := g.At(i, j)
			for c := 0; c < k; c++ {
				v -= counts[c] * means.At(c, i) * means.At(c, j)
			}
			w.Set(i, j, v/float64(n-k))
		}
	}
	l, err := linalg.Cholesky(ridge(w))
	if err != nil {
		panic(err)
	}
	wInvMuT := linalg.SolveChol(l, means.T())
	bias := make([]float64, k)
	for c := 0; c < k; c++ {
		var quad float64
		for j := 0; j < p; j++ {
			quad += means.At(c, j) * wInvMuT.At(j, c)
		}
		bias[c] = -0.5*quad + math.Log(counts[c]/float64(n))
	}
	return wInvMuT, bias
}

func ridge(c *dense.Dense) *dense.Dense {
	var tr float64
	for i := 0; i < c.R; i++ {
		tr += c.At(i, i)
	}
	eps := 1e-6*tr/float64(c.R) + 1e-9
	for i := 0; i < c.R; i++ {
		c.Set(i, i, c.At(i, i)+eps)
	}
	return c
}
