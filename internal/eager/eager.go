// Package eager implements the competitor baselines of the paper's
// evaluation (§4.3): execution engines that materialize every matrix
// operation separately, the way H2O and Spark MLlib do. The paper attributes
// FlashR's 3–20× advantage to exactly the costs modelled here — per-op
// passes and allocations, boxed per-element function dispatch, and
// serialization at aggregation boundaries — while all frameworks share BLAS
// for matrix multiplication ("All implementations rely on BLAS for matrix
// multiplication, but H2O and MLlib implement non-BLAS operations with Java
// and Scala. Spark materializes operations such as aggregation
// separately.").
//
// Three styles are provided:
//
//   - StyleMLlib (Spark-like): row-iterator execution with per-element
//     boxed function calls through an interface, a fresh allocation per
//     operation, and partial-aggregate serialization/deserialization at
//     every reduce boundary (Spark's shuffle path).
//   - StyleH2O: vectorized chunk kernels (H2O compiles tight loops over
//     chunks) but still one full pass and one materialized result per
//     operation.
//   - StyleROpen (Revolution R Open-like): parallel BLAS matrix multiply,
//     single-threaded eager everything else — Fig. 8's comparator, which
//     demonstrates that parallelizing only matmul is insufficient.
//
// The same algorithm implementations run on all styles; only the operator
// layer differs. Instrumentation counters record passes, bytes moved and
// reduce boundaries so the cluster cost simulator (internal/cluster) can
// model distributed execution on top.
package eager

import (
	"encoding/binary"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/blas"
	"repro/internal/dense"
)

// Style selects the framework being modelled.
type Style int8

const (
	// StyleMLlib models Spark MLlib.
	StyleMLlib Style = iota
	// StyleH2O models H2O.
	StyleH2O
	// StyleROpen models Revolution R Open.
	StyleROpen
)

func (s Style) String() string {
	switch s {
	case StyleMLlib:
		return "MLlib-like"
	case StyleH2O:
		return "H2O-like"
	case StyleROpen:
		return "ROpen-like"
	default:
		return "eager"
	}
}

// Stats counts the framework-characteristic work an algorithm performed.
type Stats struct {
	Passes       atomic.Int64 // materialized operations (full data passes)
	ReduceOps    atomic.Int64 // aggregation boundaries (Spark shuffles)
	ShuffleBytes atomic.Int64 // partial-aggregate bytes serialized
	BytesTouched atomic.Int64 // matrix bytes read+written across passes
}

// Engine is an eager, materialize-every-op executor.
type Engine struct {
	Style   Style
	Workers int
	Stats   Stats
}

// New builds an engine; workers<=0 selects GOMAXPROCS (StyleROpen forces 1
// worker for non-BLAS ops regardless).
func New(style Style, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{Style: style, Workers: workers}
}

// boxed is the JVM-ish virtual-dispatch element function used by the
// MLlib-style row iterator.
type boxed interface {
	apply(x float64) float64
}

type boxedFunc struct{ f func(float64) float64 }

func (b *boxedFunc) apply(x float64) float64 { return b.f(x) }

type boxed2 interface {
	apply2(a, b float64) float64
}

type boxedFunc2 struct{ f func(a, b float64) float64 }

func (b *boxedFunc2) apply2(x, y float64) float64 { return b.f(x, y) }

// parallelRows splits [0, rows) across the engine's workers. StyleROpen
// runs everything single-threaded (only its BLAS is parallel).
func (e *Engine) parallelRows(rows int, body func(r0, r1 int)) {
	workers := e.Workers
	if e.Style == StyleROpen {
		workers = 1
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		body(0, rows)
		return
	}
	var wg sync.WaitGroup
	step := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * step
		r1 := minInt(r0+step, rows)
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			body(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

func (e *Engine) touch(d *dense.Dense) {
	e.Stats.BytesTouched.Add(int64(len(d.Data)) * 8)
}

// Map materializes f applied elementwise — one pass, one allocation.
func (e *Engine) Map(a *dense.Dense, f func(float64) float64) *dense.Dense {
	e.Stats.Passes.Add(1)
	e.touch(a)
	out := dense.New(a.R, a.C)
	e.touch(out)
	if e.Style == StyleMLlib {
		bf := boxed(&boxedFunc{f})
		e.parallelRows(a.R, func(r0, r1 int) {
			for r := r0; r < r1; r++ {
				// Spark's RDD path materializes a Row object per record
				// before the UDF sees it.
				src := append([]float64(nil), a.Row(r)...)
				dst := out.Row(r)
				for j := range src {
					dst[j] = bf.apply(src[j]) // boxed per-element dispatch
				}
			}
		})
		return out
	}
	e.parallelRows(a.R, func(r0, r1 int) {
		copy(out.Data[r0*a.C:r1*a.C], a.Data[r0*a.C:r1*a.C])
		seg := out.Data[r0*a.C : r1*a.C]
		for i, v := range seg {
			seg[i] = f(v)
		}
	})
	return out
}

// Zip materializes the elementwise combination of two matrices.
func (e *Engine) Zip(a, b *dense.Dense, f func(x, y float64) float64) *dense.Dense {
	e.Stats.Passes.Add(1)
	e.touch(a)
	e.touch(b)
	out := dense.New(a.R, a.C)
	e.touch(out)
	if e.Style == StyleMLlib {
		bf := boxed2(&boxedFunc2{f})
		e.parallelRows(a.R, func(r0, r1 int) {
			for r := r0; r < r1; r++ {
				ra := append([]float64(nil), a.Row(r)...) // Row object
				rb := b.Row(r)
				ro := out.Row(r)
				for j := range ro {
					ro[j] = bf.apply2(ra[j], rb[j])
				}
			}
		})
		return out
	}
	e.parallelRows(a.R, func(r0, r1 int) {
		for i := r0 * a.C; i < r1*a.C; i++ {
			out.Data[i] = f(a.Data[i], b.Data[i])
		}
	})
	return out
}

// MapScalar materializes f(x, s) elementwise.
func (e *Engine) MapScalar(a *dense.Dense, s float64, f func(x, s float64) float64) *dense.Dense {
	return e.Map(a, func(x float64) float64 { return f(x, s) })
}

// SweepRows materializes f(x, v[col]) (R's sweep margin 2).
func (e *Engine) SweepRows(a *dense.Dense, v []float64, f func(x, s float64) float64) *dense.Dense {
	e.Stats.Passes.Add(1)
	e.touch(a)
	out := dense.New(a.R, a.C)
	e.touch(out)
	e.parallelRows(a.R, func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			src, dst := a.Row(r), out.Row(r)
			for j := range src {
				dst[j] = f(src[j], v[j])
			}
		}
	})
	return out
}

// SweepCols materializes f(x, v[row]) (R's sweep margin 1).
func (e *Engine) SweepCols(a *dense.Dense, v []float64, f func(x, s float64) float64) *dense.Dense {
	e.Stats.Passes.Add(1)
	e.touch(a)
	out := dense.New(a.R, a.C)
	e.touch(out)
	e.parallelRows(a.R, func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			src, dst := a.Row(r), out.Row(r)
			for j := range src {
				dst[j] = f(src[j], v[r])
			}
		}
	})
	return out
}

// reduce runs per-worker partial aggregation with the style's
// serialization overhead at the combine boundary, and returns the combined
// partials.
func (e *Engine) reduce(rows, width int, fold func(r0, r1 int, acc []float64), combine func(dst, src []float64)) []float64 {
	e.Stats.Passes.Add(1)
	e.Stats.ReduceOps.Add(1)
	workers := e.Workers
	if e.Style == StyleROpen {
		workers = 1
	}
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	partials := make([][]float64, workers)
	var wg sync.WaitGroup
	step := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * step
		r1 := minInt(r0+step, rows)
		partials[w] = make([]float64, width)
		if r0 >= r1 {
			continue
		}
		wg.Add(1)
		go func(w, r0, r1 int) {
			defer wg.Done()
			fold(r0, r1, partials[w])
		}(w, r0, r1)
	}
	wg.Wait()
	if e.Style == StyleMLlib {
		// Spark serializes partial aggregates between stages.
		for w := range partials {
			partials[w] = roundTripSerialize(partials[w])
			e.Stats.ShuffleBytes.Add(int64(width) * 8)
		}
	}
	acc := partials[0]
	for _, p := range partials[1:] {
		combine(acc, p)
	}
	return acc
}

// roundTripSerialize encodes and decodes a partial aggregate, modelling the
// JVM serialization cost on Spark's shuffle path.
func roundTripSerialize(v []float64) []float64 {
	buf := make([]byte, len(v)*8)
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
	}
	out := make([]float64, len(v))
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out
}

// Sum reduces to a scalar.
func (e *Engine) Sum(a *dense.Dense) float64 {
	e.touch(a)
	acc := e.reduce(a.R, 1, func(r0, r1 int, acc []float64) {
		var s float64
		for i := r0 * a.C; i < r1*a.C; i++ {
			s += a.Data[i]
		}
		acc[0] = s
	}, func(dst, src []float64) { dst[0] += src[0] })
	return acc[0]
}

// ColSums reduces every column.
func (e *Engine) ColSums(a *dense.Dense) []float64 {
	e.touch(a)
	return e.reduce(a.R, a.C, func(r0, r1 int, acc []float64) {
		for r := r0; r < r1; r++ {
			row := a.Row(r)
			for j, v := range row {
				acc[j] += v
			}
		}
	}, func(dst, src []float64) {
		for j := range dst {
			dst[j] += src[j]
		}
	})
}

// RowMax materializes the per-row maxima (no reduce boundary).
func (e *Engine) RowMax(a *dense.Dense) *dense.Dense {
	e.Stats.Passes.Add(1)
	e.touch(a)
	out := dense.New(a.R, 1)
	e.parallelRows(a.R, func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			row := a.Row(r)
			m := row[0]
			for _, v := range row[1:] {
				if v > m {
					m = v
				}
			}
			out.Data[r] = m
		}
	})
	return out
}

// RowSums materializes the per-row sums (no reduce boundary).
func (e *Engine) RowSums(a *dense.Dense) *dense.Dense {
	e.Stats.Passes.Add(1)
	e.touch(a)
	out := dense.New(a.R, 1)
	e.parallelRows(a.R, func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			var s float64
			for _, v := range a.Row(r) {
				s += v
			}
			out.Data[r] = s
		}
	})
	return out
}

// MatMul uses the shared BLAS kernel (parallel in every style — Revolution
// R Open parallelizes exactly this).
func (e *Engine) MatMul(a, b *dense.Dense) *dense.Dense {
	e.Stats.Passes.Add(1)
	e.touch(a)
	e.touch(b)
	out := dense.New(a.R, b.C)
	e.touch(out)
	blas.ParallelGemm(e.Workers, a.R, b.C, a.C, a.Data, a.C, b.Data, b.C, out.Data, out.C)
	return out
}

// CrossProd computes t(a) %*% b with per-worker partials and a reduce
// boundary. The MLlib style accumulates one rank-1 update per row (Spark's
// RowMatrix.computeGramianMatrix folds BLAS.spr over a row iterator) with a
// Vector object per record; the other styles use the blocked level-3 kernel.
func (e *Engine) CrossProd(a, b *dense.Dense) *dense.Dense {
	e.touch(a)
	e.touch(b)
	pa, pb := a.C, b.C
	symmetric := a == b
	style := e.Style
	acc := e.reduce(a.R, pa*pb, func(r0, r1 int, acc []float64) {
		switch {
		case style == StyleMLlib:
			for r := r0; r < r1; r++ {
				arow := append([]float64(nil), a.Row(r)...) // Vector object
				brow := b.Row(r)
				for i, av := range arow {
					row := acc[i*pb : (i+1)*pb]
					for j, bv := range brow {
						row[j] += av * bv
					}
				}
			}
		case style == StyleROpen && symmetric:
			// Revolution R's crossprod calls MKL dsyrk.
			blas.Syrk(r1-r0, pa, a.Data[r0*pa:], pa, acc, pa)
		default:
			blas.GemmTA(r1-r0, pb, pa, a.Data[r0*pa:], pa, b.Data[r0*pb:], pb, acc, pb)
		}
	}, func(dst, src []float64) {
		for i := range dst {
			dst[i] += src[i]
		}
	})
	if style == StyleROpen && symmetric {
		blas.SymmetrizeLower(pa, acc, pa)
	}
	return dense.FromSlice(pa, pb, acc)
}

// EuclidDist materializes the n×k squared distances from rows of a to rows
// of c.
func (e *Engine) EuclidDist(a, c *dense.Dense) *dense.Dense {
	e.Stats.Passes.Add(1)
	e.touch(a)
	out := dense.New(a.R, c.R)
	e.touch(out)
	mllib := e.Style == StyleMLlib
	e.parallelRows(a.R, func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			row := a.Row(r)
			if mllib {
				// Spark materializes a Vector object per point before
				// fastSquaredDistance sees it.
				row = append([]float64(nil), row...)
			}
			dst := out.Row(r)
			for g := 0; g < c.R; g++ {
				var s float64
				crow := c.Row(g)
				for j := range row {
					d := row[j] - crow[j]
					s += d * d
				}
				dst[g] = s
			}
		}
	})
	return out
}

// ArgMinRow materializes each row's argmin.
func (e *Engine) ArgMinRow(a *dense.Dense) *dense.Dense {
	e.Stats.Passes.Add(1)
	e.touch(a)
	out := dense.New(a.R, 1)
	e.parallelRows(a.R, func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			row := a.Row(r)
			best, bv := 0, row[0]
			for j, v := range row[1:] {
				if v < bv {
					bv, best = v, j+1
				}
			}
			out.Data[r] = float64(best)
		}
	})
	return out
}

// ArgMaxRow materializes each row's argmax.
func (e *Engine) ArgMaxRow(a *dense.Dense) *dense.Dense {
	neg := e.Map(a, func(v float64) float64 { return -v })
	return e.ArgMinRow(neg)
}

// GroupByRow aggregates rows by 0-based labels into k×p sums plus counts,
// with a reduce boundary.
func (e *Engine) GroupByRow(a *dense.Dense, labels *dense.Dense, k int) (sums *dense.Dense, counts []float64) {
	e.touch(a)
	p := a.C
	acc := e.reduce(a.R, k*p+k, func(r0, r1 int, acc []float64) {
		for r := r0; r < r1; r++ {
			g := int(labels.Data[r])
			row := a.Row(r)
			for j, v := range row {
				acc[g*p+j] += v
			}
			acc[k*p+g]++
		}
	}, func(dst, src []float64) {
		for i := range dst {
			dst[i] += src[i]
		}
	})
	return dense.FromSlice(k, p, acc[:k*p]), acc[k*p:]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
