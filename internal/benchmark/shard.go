package benchmark

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	flashr "repro"
	"repro/internal/dense"
	"repro/ml"
)

// Shard compares one local engine against a sharded session running the
// identical k-means and logistic-regression workloads, and self-gates on
// equivalence: integer-valued channels (cluster sizes, per-iteration moves,
// iteration counts) must be bit-identical, and float aggregation results
// (centers, objective, weights, logloss) must agree within a pinned
// tolerance — the shard combine regroups the floating-point fold, nothing
// more. A gate failure returns an error, so CI fails the build rather than
// reporting a wrong speedup.
//
// Workers come from Config.ShardAddrs (already-running flashr-shardworker
// TCP processes) or, when empty, Config.ShardWorkers in-process engines.
func Shard(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	shards := cfg.ShardWorkers
	if len(cfg.ShardAddrs) > 0 {
		shards = len(cfg.ShardAddrs)
	}
	if shards <= 0 {
		shards = 2
	}
	n := cfg.N / 2
	if n < 4096 {
		n = 4096
	}
	const p = 8
	const k = 4

	initCenters := dense.New(k, p)
	crng := rand.New(rand.NewSource(cfg.Seed*31 + 7))
	for i := range initCenters.Data {
		initCenters.Data[i] = crng.NormFloat64()
	}

	type result struct {
		km    *ml.KMeansResult
		lg    *ml.LogisticModel
		kmSec float64
		lgSec float64
		stats flashr.MaterializeStats
		wire  string
	}
	run := func(sharded bool) (result, error) {
		var res result
		opts := flashr.Options{Workers: cfg.Workers, PartRows: cfg.ShardPartRows,
			DisableCSE: cfg.DisableCSE, ResultCacheBytes: cfg.ResultCacheBytes,
			DisableRewrites: cfg.DisableRewrites,
			Owner:           fmt.Sprintf("bench-shard-%v", sharded)}
		if sharded {
			sc := flashr.ShardConfig{}
			if len(cfg.ShardAddrs) > 0 {
				sc.Addrs = cfg.ShardAddrs
				// Real worker processes can be killed and restarted under the
				// bench (the chaos smoke does exactly that): spread a generous
				// retry budget over the restart window instead of exhausting
				// it in milliseconds.
				sc.Retries = 12
				sc.RetryBackoff = 50 * time.Millisecond
				sc.RetryBackoffMax = 2 * time.Second
			} else {
				sc.Shards = shards
			}
			opts.Sharding = &sc
		}
		s, err := flashr.NewSession(opts)
		if err != nil {
			return res, err
		}
		defer s.Close()
		if cfg.Trace != nil {
			s.Engine().StartTrace()
			defer func() { cfg.Trace.add(s.Engine().StopTrace()) }()
		}
		x, err := s.GenerateSeeded(n, p, cfg.Seed, func(rng *rand.Rand, row []float64) {
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		})
		if err != nil {
			return res, err
		}
		defer x.Free()
		y, err := s.GenerateSeeded(n, 1, cfg.Seed+1, func(rng *rand.Rand, row []float64) {
			if rng.NormFloat64() > 0 {
				row[0] = 1
			}
		})
		if err != nil {
			return res, err
		}
		defer y.Free()
		before := s.TotalMaterializeStats()
		if sharded {
			// Marker for external chaos drivers (scripts/shard-smoke.sh): the
			// leaves are pushed, the iterative passes start now — killing a
			// worker after this line exercises mid-iteration recovery.
			fmt.Fprintln(os.Stderr, "flashr-bench: distributed workload starting")
			// The workloads run in milliseconds, far too fast for an external
			// kill -9 to land mid-run; FLASHR_SHARD_CHAOS_PAUSE opens a
			// deterministic window between the leaf push and the first pass.
			if d, err := time.ParseDuration(os.Getenv("FLASHR_SHARD_CHAOS_PAUSE")); err == nil && d > 0 {
				time.Sleep(d)
			}
		}
		res.kmSec, err = timeIt(func() error {
			km, kerr := ml.KMeans(s, x, k, ml.KMeansOptions{MaxIter: cfg.Iters, InitCenters: initCenters})
			res.km = km
			return kerr
		})
		if err != nil {
			return res, fmt.Errorf("kmeans: %w", err)
		}
		res.lgSec, err = timeIt(func() error {
			lg, lerr := ml.LogisticRegressionGD(s, x, y, ml.LogisticOptions{MaxIter: cfg.Iters})
			res.lg = lg
			return lerr
		})
		if err != nil {
			return res, fmt.Errorf("logistic: %w", err)
		}
		res.stats = s.TotalMaterializeStats().Sub(before)
		if sharded {
			if res.stats.ShardPasses == 0 || res.stats.ShardAggRounds == 0 {
				return res, fmt.Errorf("sharded run reported passes=%d rounds=%d — the remote path did not execute",
					res.stats.ShardPasses, res.stats.ShardAggRounds)
			}
			sent, recv, retries := s.Coordinator().Totals()
			res.wire = fmt.Sprintf("wire-sent=%.1fMB wire-recv=%.1fMB retries=%d rounds=%d recoveries=%d ",
				float64(sent)/(1<<20), float64(recv)/(1<<20), retries, s.Coordinator().AggRounds(),
				s.Coordinator().Recoveries())
		} else if res.stats.ShardPasses != 0 {
			return res, fmt.Errorf("local run reported %d shard passes", res.stats.ShardPasses)
		}
		return res, nil
	}

	local, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("shard local: %w", err)
	}
	dist, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("shard %d-way: %w", shards, err)
	}

	exactf := func(what string, a, b []float64) error {
		if len(a) != len(b) {
			return fmt.Errorf("%s: length %d vs %d", what, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return fmt.Errorf("%s[%d]: local %v, shard %v", what, i, a[i], b[i])
			}
		}
		return nil
	}
	closef := func(what string, a, b []float64) error {
		if len(a) != len(b) {
			return fmt.Errorf("%s: length %d vs %d", what, len(a), len(b))
		}
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > 1e-9*math.Abs(a[i])+1e-12 {
				return fmt.Errorf("%s[%d] outside tolerance: local %v, shard %v", what, i, a[i], b[i])
			}
		}
		return nil
	}
	moves := func(m []int64) []float64 {
		out := make([]float64, len(m))
		for i, v := range m {
			out[i] = float64(v)
		}
		return out
	}
	gates := []error{
		// Integer-valued channels: per-row assignment is not a cross-shard
		// fold, so sizes and move counts must survive sharding bitwise.
		exactf("kmeans sizes", local.km.Sizes, dist.km.Sizes),
		exactf("kmeans moves", moves(local.km.Moves), moves(dist.km.Moves)),
		// Float folds regroup across shards: tolerance-pinned.
		closef("kmeans centers", local.km.Centers.Data, dist.km.Centers.Data),
		closef("kmeans objective", []float64{local.km.Objective}, []float64{dist.km.Objective}),
		closef("logistic weights", local.lg.W, dist.lg.W),
		closef("logistic logloss", []float64{local.lg.LogLoss}, []float64{dist.lg.LogLoss}),
	}
	if local.km.Iters != dist.km.Iters {
		gates = append(gates, fmt.Errorf("kmeans iterations: local %d, shard %d", local.km.Iters, dist.km.Iters))
	}
	if local.lg.Iters != dist.lg.Iters {
		gates = append(gates, fmt.Errorf("logistic iterations: local %d, shard %d", local.lg.Iters, dist.lg.Iters))
	}
	for _, g := range gates {
		if g != nil {
			return nil, fmt.Errorf("shard equivalence gate: %w", g)
		}
	}

	params := fmt.Sprintf("n=%d p=%d k=%d iters=%d shards=%d", n, p, k, cfg.Iters, shards)
	mode := fmt.Sprintf("shard-%d", shards)
	if len(cfg.ShardAddrs) > 0 {
		mode += "-tcp"
	}
	return []Row{
		{Experiment: "shard", Algorithm: "kmeans", System: "local-1", Params: params,
			Seconds: local.kmSec, Normalized: 1, Extra: ioExtra(local.stats)},
		{Experiment: "shard", Algorithm: "kmeans", System: mode, Params: params,
			Seconds: dist.kmSec, Normalized: dist.kmSec / local.kmSec,
			Extra: dist.wire + ioExtra(dist.stats)},
		{Experiment: "shard", Algorithm: "logistic", System: "local-1", Params: params,
			Seconds: local.lgSec, Normalized: 1, Extra: ioExtra(local.stats)},
		{Experiment: "shard", Algorithm: "logistic", System: mode, Params: params,
			Seconds: dist.lgSec, Normalized: dist.lgSec / local.lgSec,
			Extra: dist.wire + ioExtra(dist.stats)},
	}, nil
}
