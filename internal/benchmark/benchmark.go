// Package benchmark regenerates every table and figure of the paper's
// evaluation section (§4) at configurable scale. Each experiment returns
// tabular rows so cmd/flashr-bench and the testing.B benches in
// bench_test.go share one implementation.
//
// Paper → experiment mapping (see DESIGN.md §4 for the full index):
//
//	Fig. 7a  → Fig7a:   FlashR-IM / FlashR-EM vs H2O-like / MLlib-like
//	Fig. 7b  → Fig7b:   one machine vs a simulated 4-node cluster
//	Fig. 8   → Fig8:    FlashR vs Revolution-R-Open-like on MASS functions
//	Fig. 9   → Fig9:    EM/IM runtime ratio sweeping p and k
//	Fig. 10  → Fig10:   fusion ablation (base / mem-fuse / cache-fuse)
//	Table 4  → Table4:  measured I/O bytes per algorithm vs its complexity
//	Table 6  → Table6:  runtime and peak memory at the largest scale
package benchmark

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	flashr "repro"
	"repro/internal/cluster"
	"repro/internal/dense"
	"repro/internal/eager"
	"repro/internal/safs"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/ml"
)

// Config scales the experiments to the host.
type Config struct {
	// N is the base row count (the paper's Criteo-sub is 325M rows; the
	// default here is laptop-sized).
	N int64
	// Workers per engine (0 = GOMAXPROCS).
	Workers int
	// SSDRoot hosts the simulated drive directories (default: a temp dir
	// removed afterwards).
	SSDRoot string
	// Drives in the simulated array.
	Drives int
	// ReadMBps / WriteMBps throttle the array (0 = unthrottled). The
	// defaults (1200/1000 MiB/s) keep the paper's SSD:DRAM bandwidth
	// ratio (12 GB/s array vs ~100 GB/s four-socket memory, about 1:8) on
	// a host whose single-core memory streams roughly 10 GiB/s.
	ReadMBps  float64
	WriteMBps float64
	// Iters fixes the iteration count of iterative algorithms so every
	// engine does identical work (the paper: "All iterative algorithms
	// take the same number of iterations").
	Iters int
	// Seed for workload generation.
	Seed int64
	// SweepReadMBps / SweepWriteMBps are the bandwidths used by the two
	// I/O-sensitivity experiments (Fig. 9's compute/I-O crossover and
	// Fig. 10's fusion ablation on SSDs). These calibrate to the paper's
	// per-core I/O share — 12 GB/s over 48 cores ≈ 250 MiB/s — so the
	// crossover the figures study lands inside the swept range on a
	// single-core host. Zero selects the 250/200 defaults.
	SweepReadMBps  float64
	SweepWriteMBps float64
	// SyncWrites disables the engines' write-behind pipeline (A/B baseline).
	SyncWrites bool
	// WriteBehindDepth bounds in-flight async partition writes (0 = auto).
	WriteBehindDepth int
	// DisableVerify turns off CRC32C verification on EM reads, to measure
	// the checksumming overhead A/B (checksums are still written).
	DisableVerify bool
	// ReadErrRate / FlipBitRate inject transient read failures and in-flight
	// bit flips into the EM session's SSD array, exercising the retry and
	// verify-on-read paths under benchmark load (0 = no injection).
	ReadErrRate float64
	FlipBitRate float64
	// FaultSeed seeds the per-drive fault RNGs (0 = derive from Seed).
	FaultSeed int64
	// DisableCSE turns off structural hash-consing and the sub-DAG result
	// cache in every session the experiments open (the A/B baseline the
	// "cse" experiment runs internally).
	DisableCSE bool
	// ResultCacheBytes bounds the sub-DAG result cache (0 = engine default,
	// negative = cache off with unification kept on).
	ResultCacheBytes int64
	// DisableRewrites turns off the algebraic DAG rewrite pass in every
	// session the experiments open (the A/B baseline the "rewrite"
	// experiment runs internally).
	DisableRewrites bool
	// ConcurrentSessions is the session count for the "concurrent"
	// experiment (0 = 4).
	ConcurrentSessions int
	// ShardWorkers is the in-process shard count for the "shard"
	// experiment (0 = 2); ignored when ShardAddrs is set.
	ShardWorkers int
	// ShardAddrs lists already-running flashr-shardworker TCP addresses;
	// when set, the "shard" experiment distributes over real processes.
	ShardAddrs []string
	// ShardPartRows overrides the I/O partition height for both runs of
	// the "shard" experiment (0 = engine default). TCP workers validate
	// their own -part-rows against this at hello; smaller partitions let
	// small smoke datasets span every shard.
	ShardPartRows int
	// Trace, when non-nil, collects execution-span traces from every engine
	// the experiments open; render the merged result with
	// TraceSink.WriteChromeFile after the run (flashr-bench -trace).
	Trace *TraceSink
	// MetricsTo, when non-nil, receives an expfmt metrics dump from each
	// experiment's EM session just before its engine closes
	// (flashr-bench -metrics).
	MetricsTo io.Writer
}

// TraceSink accumulates the span traces of every engine the experiments
// open, so one flashr-bench run — possibly many experiments, each with an
// IM and an EM engine — yields a single merged Chrome trace file.
type TraceSink struct {
	mu    sync.Mutex
	datas []*trace.Data
}

func (ts *TraceSink) add(ds ...*trace.Data) {
	ts.mu.Lock()
	for _, d := range ds {
		if d != nil && (len(d.Events) > 0 || len(d.Passes) > 0) {
			ts.datas = append(ts.datas, d)
		}
	}
	ts.mu.Unlock()
}

// Datas returns the traces collected so far.
func (ts *TraceSink) Datas() []*trace.Data {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]*trace.Data(nil), ts.datas...)
}

// WriteChromeFile renders every collected trace as one Chrome trace_event
// JSON file and self-validates it: the rendered bytes are parsed back and
// the span invariants re-checked before anything lands on disk, so a file
// this returns nil for is known to load in the viewer with well-formed,
// correctly attributed spans.
func (ts *TraceSink) WriteChromeFile(path string) error {
	datas := ts.Datas()
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, datas...); err != nil {
		return err
	}
	parsed, err := trace.ParseChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("benchmark: trace self-validation: %w", err)
	}
	if err := trace.Verify(parsed); err != nil {
		return fmt.Errorf("benchmark: trace self-validation: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// liveMetrics points at the most recently opened experiment's EM-session
// registry, for the optional flashr-bench -debug-addr endpoint.
var liveMetrics atomic.Pointer[trace.Registry]

// LiveMetricsHandler serves the metrics registry of the most recently
// opened experiment sessions (503 until an experiment opens one).
func LiveMetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reg := liveMetrics.Load()
		if reg == nil {
			http.Error(w, "no experiment sessions open yet", http.StatusServiceUnavailable)
			return
		}
		trace.Handler(reg).ServeHTTP(w, req)
	})
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.N == 0 {
		c.N = 200_000
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Drives == 0 {
		c.Drives = 4
	}
	if c.Iters == 0 {
		c.Iters = 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.ReadMBps == 0 {
		c.ReadMBps = 1200
	}
	if c.WriteMBps == 0 {
		c.WriteMBps = 1000
	}
	if c.SweepReadMBps == 0 {
		c.SweepReadMBps = 250
	}
	if c.SweepWriteMBps == 0 {
		c.SweepWriteMBps = 200
	}
	return c
}

// sweepConfig returns the config with the I/O-sensitivity bandwidths
// substituted (Fig. 9 / Fig. 10).
func (c Config) sweepConfig() Config {
	c.ReadMBps = c.SweepReadMBps
	c.WriteMBps = c.SweepWriteMBps
	return c
}

// Row is one reported measurement.
type Row struct {
	Experiment string
	Algorithm  string
	System     string
	Params     string
	Seconds    float64
	// Normalized is relative to the experiment's reference system
	// (FlashR-IM = 1, matching the paper's normalized-runtime plots).
	Normalized float64
	// Extra carries experiment-specific values (peak MB, bytes, ratios).
	Extra string
}

// Format renders rows as an aligned text table.
func Format(rows []Row) string {
	var b strings.Builder
	if len(rows) == 0 {
		return "(no rows)\n"
	}
	fmt.Fprintf(&b, "%-8s %-14s %-14s %-22s %10s %8s  %s\n",
		"exp", "algorithm", "system", "params", "seconds", "norm", "extra")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-14s %-14s %-22s %10.3f %8.2f  %s\n",
			r.Experiment, r.Algorithm, r.System, r.Params, r.Seconds, r.Normalized, r.Extra)
	}
	return b.String()
}

// sessionSet builds the FlashR sessions an experiment needs.
type sessionSet struct {
	im        *flashr.Session
	em        *flashr.Session
	dir       string
	trace     *TraceSink
	metricsTo io.Writer
}

func (c Config) openSessions(fuseEM flashr.Options) (*sessionSet, error) {
	im, err := flashr.NewSession(flashr.Options{
		Workers: c.Workers, SyncWrites: c.SyncWrites, WriteBehindDepth: c.WriteBehindDepth,
		DisableCSE: c.DisableCSE, ResultCacheBytes: c.ResultCacheBytes,
		DisableRewrites: c.DisableRewrites,
		Owner:           "bench-im",
	})
	if err != nil {
		return nil, err
	}
	dir := c.SSDRoot
	if dir == "" {
		dir, err = os.MkdirTemp("", "flashr-bench-")
		if err != nil {
			return nil, err
		}
	}
	drives := make([]string, c.Drives)
	for i := range drives {
		drives[i] = filepath.Join(dir, fmt.Sprintf("ssd-%02d", i))
	}
	opts := flashr.Options{
		Workers: c.Workers, EM: true, SSDDirs: drives,
		ReadMBps: c.ReadMBps, WriteMBps: c.WriteMBps,
		Fuse:       fuseEM.Fuse,
		SyncWrites: c.SyncWrites, WriteBehindDepth: c.WriteBehindDepth,
		DisableVerify: c.DisableVerify,
		DisableCSE:    c.DisableCSE, ResultCacheBytes: c.ResultCacheBytes,
		DisableRewrites: c.DisableRewrites,
		Owner:           "bench-em",
	}
	em, err := flashr.NewSession(opts)
	if err != nil {
		return nil, err
	}
	if c.ReadErrRate > 0 || c.FlipBitRate > 0 {
		seed := c.FaultSeed
		if seed == 0 {
			seed = c.Seed
		}
		em.FS().InjectFaults(&safs.Faults{
			Seed:        seed,
			ReadErrRate: c.ReadErrRate,
			FlipBitRate: c.FlipBitRate,
		})
	}
	if c.Trace != nil {
		im.Engine().StartTrace()
		em.Engine().StartTrace()
	}
	liveMetrics.Store(em.Metrics())
	return &sessionSet{im: im, em: em, dir: dir, trace: c.Trace, metricsTo: c.MetricsTo}, nil
}

func (s *sessionSet) close(cfg Config) {
	if s.metricsTo != nil {
		s.em.Metrics().WriteTo(s.metricsTo)
	}
	if s.trace != nil {
		s.trace.add(s.im.Engine().StopTrace(), s.em.Engine().StopTrace())
	}
	s.em.Close()
	if cfg.SSDRoot == "" {
		os.RemoveAll(s.dir)
	}
}

func timeIt(f func() error) (float64, error) {
	t0 := time.Now()
	err := f()
	return time.Since(t0).Seconds(), err
}

// ioExtra compresses a MaterializeStats delta into a Row.Extra fragment.
// wstall < wtime is the visible proof that the write-behind queue overlapped
// SSD writes with compute (under SyncWrites the two are equal by
// construction).
func ioExtra(s flashr.MaterializeStats) string {
	out := fmt.Sprintf("read=%.0fMB written=%.0fMB pf=%d/%d wstall=%.3fs wtime=%.3fs verify=%.3fs",
		float64(s.BytesRead)/(1<<20), float64(s.BytesWritten)/(1<<20),
		s.PrefetchHits, s.PrefetchMisses,
		s.WriteStall.Seconds(), s.WriteTime.Seconds(), s.VerifyTime.Seconds())
	if s.ChecksumFailures != 0 || s.IORetries != 0 || s.RecoveredReads != 0 || s.RecoveredWrites != 0 {
		out += fmt.Sprintf(" csfail=%d retries=%d recovered=%d/%d",
			s.ChecksumFailures, s.IORetries, s.RecoveredReads, s.RecoveredWrites)
	}
	if s.CSEUnifications != 0 || s.CacheHits != 0 || s.CacheMisses != 0 {
		out += fmt.Sprintf(" cse=%d hits=%d/%d saved=%.0fMB evict=%d nodes=%d",
			s.CSEUnifications, s.CacheHits, s.CacheMisses,
			float64(s.CacheHitBytes)/(1<<20), s.CacheEvictions, s.NodesExecuted)
	}
	return out
}

// algoSpec is one benchmark algorithm bound to its dataset family.
type algoSpec struct {
	name    string
	dataset string // "criteo" or "pagegraph"
	// runFlashr executes the algorithm on a FlashR session.
	runFlashr func(s *flashr.Session, x, y *flashr.FM, cfg Config) error
	// runEager executes the identical algorithm on an eager engine.
	runEager func(e *eager.Engine, x, y *dense.Dense, cfg Config) error
	// inH2O mirrors the paper's footnote: H2O lacks correlation and GMM.
	inH2O bool
}

func fixedInitCenters(p, k int) *dense.Dense {
	c := dense.New(k, p)
	for g := 0; g < k; g++ {
		for j := 0; j < p; j++ {
			c.Set(g, j, float64(g)*0.5-float64(k)/4+0.1*float64(j%3))
		}
	}
	return c
}

func algoSuite() []algoSpec {
	const k = 10 // paper: "we run k-means to split a dataset into 10 clusters"
	return []algoSpec{
		{
			name: "correlation", dataset: "criteo", inH2O: false,
			runFlashr: func(s *flashr.Session, x, _ *flashr.FM, cfg Config) error {
				_, err := ml.Correlation(x)
				return err
			},
			runEager: func(e *eager.Engine, x, _ *dense.Dense, cfg Config) error {
				e.Correlation(x)
				return nil
			},
		},
		{
			name: "pca", dataset: "criteo", inH2O: true,
			runFlashr: func(s *flashr.Session, x, _ *flashr.FM, cfg Config) error {
				_, err := ml.PCA(x, 8)
				return err
			},
			runEager: func(e *eager.Engine, x, _ *dense.Dense, cfg Config) error {
				e.PCA(x, 8)
				return nil
			},
		},
		{
			name: "naivebayes", dataset: "criteo", inH2O: true,
			runFlashr: func(s *flashr.Session, x, y *flashr.FM, cfg Config) error {
				_, err := ml.NaiveBayes(s, x, y, 2)
				return err
			},
			runEager: func(e *eager.Engine, x, y *dense.Dense, cfg Config) error {
				e.NaiveBayes(x, y, 2)
				return nil
			},
		},
		{
			name: "logistic", dataset: "criteo", inH2O: true,
			runFlashr: func(s *flashr.Session, x, y *flashr.FM, cfg Config) error {
				_, err := ml.LogisticRegressionLBFGS(s, x, y, ml.LogisticOptions{MaxIter: cfg.Iters, Tol: 1e-12})
				return err
			},
			runEager: func(e *eager.Engine, x, y *dense.Dense, cfg Config) error {
				e.Logistic(x, y, cfg.Iters, 1e-12)
				return nil
			},
		},
		{
			name: "kmeans", dataset: "pagegraph", inH2O: true,
			runFlashr: func(s *flashr.Session, x, _ *flashr.FM, cfg Config) error {
				init := fixedInitCenters(int(x.NCol()), k)
				res, err := ml.KMeans(s, x, k, ml.KMeansOptions{MaxIter: cfg.Iters, InitCenters: init})
				if err == nil {
					res.Assign.Free()
				}
				return err
			},
			runEager: func(e *eager.Engine, x, _ *dense.Dense, cfg Config) error {
				e.KMeans(x, fixedInitCenters(x.C, k), cfg.Iters)
				return nil
			},
		},
		{
			name: "gmm", dataset: "pagegraph", inH2O: false,
			runFlashr: func(s *flashr.Session, x, _ *flashr.FM, cfg Config) error {
				init := fixedInitCenters(int(x.NCol()), 4)
				_, err := ml.GMM(s, x, 4, ml.GMMOptions{MaxIter: cfg.Iters, Tol: 1e-12, InitMeans: init})
				return err
			},
			runEager: func(e *eager.Engine, x, _ *dense.Dense, cfg Config) error {
				e.GMM(x, fixedInitCenters(x.C, 4), cfg.Iters, 1e-12)
				return nil
			},
		},
	}
}

// loadData generates the algorithm's dataset in a given session.
func loadData(s *flashr.Session, spec algoSpec, n, seed int64) (x, y *flashr.FM, err error) {
	switch spec.dataset {
	case "criteo":
		return workload.Criteo(s, n, seed)
	case "pagegraph":
		x, err = workload.PageGraph(s, n, seed)
		return x, nil, err
	default:
		return nil, nil, fmt.Errorf("benchmark: unknown dataset %q", spec.dataset)
	}
}

// denseData gathers a dataset into memory for the eager baselines (the
// paper caches all competitor data in memory before timing).
func denseData(s *flashr.Session, x, y *flashr.FM) (*dense.Dense, *dense.Dense, error) {
	xd, err := x.AsDense()
	if err != nil {
		return nil, nil, err
	}
	var yd *dense.Dense
	if y != nil {
		yd, err = y.AsDense()
		if err != nil {
			return nil, nil, err
		}
	}
	return xd, yd, nil
}

// Fig7a measures FlashR-IM, FlashR-EM, H2O-like and MLlib-like on every
// algorithm; normalized runtime relative to FlashR-IM.
func Fig7a(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	ss, err := cfg.openSessions(flashr.Options{})
	if err != nil {
		return nil, err
	}
	defer ss.close(cfg)
	var rows []Row
	for _, spec := range algoSuite() {
		xi, yi, err := loadData(ss.im, spec, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		xe, ye, err := loadData(ss.em, spec, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		xd, yd, err := denseData(ss.im, xi, yi)
		if err != nil {
			return nil, err
		}

		tIM, err := timeIt(func() error { return spec.runFlashr(ss.im, xi, yi, cfg) })
		if err != nil {
			return nil, fmt.Errorf("%s flashr-im: %w", spec.name, err)
		}
		emBefore := ss.em.TotalMaterializeStats()
		tEM, err := timeIt(func() error { return spec.runFlashr(ss.em, xe, ye, cfg) })
		if err != nil {
			return nil, fmt.Errorf("%s flashr-em: %w", spec.name, err)
		}
		emIO := ss.em.TotalMaterializeStats().Sub(emBefore)
		spark := eager.New(eager.StyleMLlib, cfg.Workers)
		tSpark, err := timeIt(func() error { return spec.runEager(spark, xd, yd, cfg) })
		if err != nil {
			return nil, err
		}
		add := func(system string, sec float64, extra string) {
			rows = append(rows, Row{
				Experiment: "fig7a", Algorithm: spec.name, System: system,
				Params:  fmt.Sprintf("n=%d p=%d", cfg.N, int(xi.NCol())),
				Seconds: sec, Normalized: sec / tIM, Extra: extra,
			})
		}
		add("FlashR-IM", tIM, "")
		add("FlashR-EM", tEM, ioExtra(emIO))
		if spec.inH2O {
			h2o := eager.New(eager.StyleH2O, cfg.Workers)
			tH2O, err := timeIt(func() error { return spec.runEager(h2o, xd, yd, cfg) })
			if err != nil {
				return nil, err
			}
			add("H2O-like", tH2O, "")
		}
		add("MLlib-like", tSpark, "")
		freeAll(xi, yi, xe, ye)
	}
	return rows, nil
}

// Fig7b compares FlashR on one machine against the simulated 4-node
// cluster running the eager baselines (cost model in internal/cluster).
func Fig7b(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	ss, err := cfg.openSessions(flashr.Options{})
	if err != nil {
		return nil, err
	}
	defer ss.close(cfg)
	cl := cluster.DefaultConfig()
	var rows []Row
	for _, spec := range algoSuite() {
		xi, yi, err := loadData(ss.im, spec, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		xe, ye, err := loadData(ss.em, spec, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		xd, yd, err := denseData(ss.im, xi, yi)
		if err != nil {
			return nil, err
		}
		tIM, err := timeIt(func() error { return spec.runFlashr(ss.im, xi, yi, cfg) })
		if err != nil {
			return nil, err
		}
		tEM, err := timeIt(func() error { return spec.runFlashr(ss.em, xe, ye, cfg) })
		if err != nil {
			return nil, err
		}
		add := func(system string, sec float64, extra string) {
			rows = append(rows, Row{
				Experiment: "fig7b", Algorithm: spec.name, System: system,
				Params:  fmt.Sprintf("n=%d nodes=%d", cfg.N, cl.Nodes),
				Seconds: sec, Normalized: sec / tIM, Extra: extra,
			})
		}
		add("FlashR-IM", tIM, "1 machine")
		add("FlashR-EM", tEM, "1 machine")
		spark := eager.New(eager.StyleMLlib, cfg.Workers)
		var sres cluster.Result
		sres = cluster.Run(cl, spark, func() {
			if err2 := spec.runEager(spark, xd, yd, cfg); err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return nil, err
		}
		add("MLlib-cluster", sres.Total.Seconds(),
			fmt.Sprintf("net=%.3fs rounds=%d", sres.NetworkTime.Seconds(), sres.ReduceRounds))
		if spec.inH2O {
			h2o := eager.New(eager.StyleH2O, cfg.Workers)
			hres := cluster.Run(cl, h2o, func() {
				if err2 := spec.runEager(h2o, xd, yd, cfg); err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
			add("H2O-cluster", hres.Total.Seconds(),
				fmt.Sprintf("net=%.3fs rounds=%d", hres.NetworkTime.Seconds(), hres.ReduceRounds))
		}
		freeAll(xi, yi, xe, ye)
	}
	return rows, nil
}

// cfgSeedForFig8 seeds the baseline's serial normal draw in Fig8.
const cfgSeedForFig8 = 77

// Fig8 compares FlashR with the Revolution-R-Open-like baseline on
// matmul-heavy MASS workloads (paper: 1M×1000; scaled by default to
// 20k×256).
func Fig8(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	n := cfg.N / 10
	if n < 2048 {
		n = 2048
	}
	const p = 256
	ss, err := cfg.openSessions(flashr.Options{})
	if err != nil {
		return nil, err
	}
	defer ss.close(cfg)

	mu := make([]float64, p)
	sigma := dense.Identity(p)
	for i := 0; i < p; i++ {
		mu[i] = float64(i%7) / 7
		for j := 0; j < p; j++ {
			if i != j {
				sigma.Set(i, j, 0.3/float64(1+absInt(i-j)))
			}
		}
	}

	type fig8Case struct {
		name string
		fr   func(s *flashr.Session) error
		ro   func(e *eager.Engine, xd *dense.Dense, zd *dense.Dense, yd *dense.Dense) error
	}
	// Shared inputs.
	xim, err := ss.im.Rnorm(n, p, 0, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	xem, err := ss.em.Rnorm(n, p, 0, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	xd, err := xim.AsDense()
	if err != nil {
		return nil, err
	}
	labelsIM := flashr.Mod(flashr.Round(flashr.Mul(flashr.GetCol(xim, 0), 100.0)), 2.0)
	labelsEM := flashr.Mod(flashr.Round(flashr.Mul(flashr.GetCol(xem, 0), 100.0)), 2.0)
	if err := labelsIM.MaterializeCtx(context.Background()); err != nil {
		return nil, err
	}
	if err := labelsEM.MaterializeCtx(context.Background()); err != nil {
		return nil, err
	}
	yd, err := labelsIM.AsDense()
	if err != nil {
		return nil, err
	}

	cases := []fig8Case{
		{
			name: "crossprod",
			fr: func(s *flashr.Session) error {
				x := xim
				if s == ss.em {
					x = xem
				}
				_, err := flashr.CrossProd(x).AsDense()
				return err
			},
			ro: func(e *eager.Engine, xd, _, _ *dense.Dense) error {
				e.CrossProd(xd, xd)
				return nil
			},
		},
		{
			name: "mvrnorm",
			fr: func(s *flashr.Session) error {
				out, err := ml.Mvrnorm(s, n, mu, sigma, cfg.Seed)
				if err != nil {
					return err
				}
				if err := out.MaterializeCtx(context.Background()); err != nil {
					return err
				}
				return out.Free()
			},
			ro: func(e *eager.Engine, _, _, _ *dense.Dense) error {
				// Revolution R's rnorm is serial C; generate the standard
				// normals here just as the FlashR side does.
				rng := rand.New(rand.NewSource(cfgSeedForFig8))
				zd := dense.New(int(n), p)
				for i := range zd.Data {
					zd.Data[i] = rng.NormFloat64()
				}
				e.Mvrnorm(zd, mu, sigma)
				return nil
			},
		},
		{
			name: "lda",
			fr: func(s *flashr.Session) error {
				x, y := xim, labelsIM
				if s == ss.em {
					x, y = xem, labelsEM
				}
				_, err := ml.LDA(s, x, y, 2)
				return err
			},
			ro: func(e *eager.Engine, xd, _, yd *dense.Dense) error {
				e.LDA(xd, yd, 2)
				return nil
			},
		},
	}
	var rows []Row
	for _, cse := range cases {
		tIM, err := timeIt(func() error { return cse.fr(ss.im) })
		if err != nil {
			return nil, fmt.Errorf("fig8 %s im: %w", cse.name, err)
		}
		tEM, err := timeIt(func() error { return cse.fr(ss.em) })
		if err != nil {
			return nil, fmt.Errorf("fig8 %s em: %w", cse.name, err)
		}
		ro := eager.New(eager.StyleROpen, cfg.Workers)
		tRO, err := timeIt(func() error { return cse.ro(ro, xd, xd, yd) })
		if err != nil {
			return nil, err
		}
		params := fmt.Sprintf("n=%d p=%d", n, p)
		rows = append(rows,
			Row{Experiment: "fig8", Algorithm: cse.name, System: "FlashR-IM", Params: params, Seconds: tIM, Normalized: 1},
			Row{Experiment: "fig8", Algorithm: cse.name, System: "FlashR-EM", Params: params, Seconds: tEM, Normalized: tEM / tIM},
			Row{Experiment: "fig8", Algorithm: cse.name, System: "ROpen-like", Params: params, Seconds: tRO, Normalized: tRO / tIM},
		)
	}
	return rows, nil
}

// Fig9 sweeps the dimensionality p (correlation, naive bayes) and the
// cluster count k (k-means) and reports the EM/IM runtime ratio, which
// should fall toward 1 as computation grows faster than I/O.
func Fig9(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults().sweepConfig()
	n := cfg.N / 2
	if n < 4096 {
		n = 4096
	}
	ss, err := cfg.openSessions(flashr.Options{})
	if err != nil {
		return nil, err
	}
	defer ss.close(cfg)
	var rows []Row
	ps := []int{8, 32, 128, 512}
	for _, p := range ps {
		for _, alg := range []string{"correlation", "naivebayes"} {
			run := func(s *flashr.Session) (float64, error) {
				x, y, err := workload.GaussianBlobs(s, n, p, 2, 2, cfg.Seed)
				if err != nil {
					return 0, err
				}
				defer freeAll(x, y)
				return timeIt(func() error {
					switch alg {
					case "correlation":
						_, err := ml.Correlation(x)
						return err
					default:
						_, err := ml.NaiveBayes(s, x, y, 2)
						return err
					}
				})
			}
			tIM, err := run(ss.im)
			if err != nil {
				return nil, err
			}
			tEM, err := run(ss.em)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Experiment: "fig9", Algorithm: alg, System: "EM/IM",
				Params: fmt.Sprintf("n=%d p=%d", n, p), Seconds: tEM,
				Normalized: tEM / tIM,
				Extra:      fmt.Sprintf("im=%.3fs em=%.3fs", tIM, tEM),
			})
		}
	}
	for _, k := range []int{2, 8, 32, 64} {
		const p = 32
		run := func(s *flashr.Session) (float64, error) {
			x, err := workload.PageGraph(s, n, cfg.Seed)
			if err != nil {
				return 0, err
			}
			defer x.Free()
			init := fixedInitCenters(p, k)
			return timeIt(func() error {
				res, err := ml.KMeans(s, x, k, ml.KMeansOptions{MaxIter: cfg.Iters, InitCenters: init})
				if err == nil {
					res.Assign.Free()
				}
				return err
			})
		}
		tIM, err := run(ss.im)
		if err != nil {
			return nil, err
		}
		tEM, err := run(ss.em)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Experiment: "fig9", Algorithm: "kmeans", System: "EM/IM",
			Params: fmt.Sprintf("n=%d p=%d k=%d", n, p, k), Seconds: tEM,
			Normalized: tEM / tIM,
			Extra:      fmt.Sprintf("im=%.3fs em=%.3fs", tIM, tEM),
		})
	}
	return rows, nil
}

// Fig10 is the fusion ablation on SSDs: speedup of mem-fuse and cache-fuse
// over the per-op-materialization base, per algorithm.
func Fig10(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults().sweepConfig()
	n := cfg.N / 2
	if n < 4096 {
		n = 4096
	}
	var rows []Row
	for _, spec := range algoSuite() {
		times := map[string]float64{}
		for _, fuse := range []struct {
			Name  string
			Level flashr.FuseLevel
		}{
			{Name: "base", Level: flashr.FuseNone},
			{Name: "mem-fuse", Level: flashr.FuseMem},
			{Name: "cache-fuse", Level: flashr.FuseCache},
		} {
			ss, err := cfg.openSessions(flashr.Options{Fuse: fuse.Level})
			if err != nil {
				return nil, err
			}
			x, y, err := loadData(ss.em, spec, n, cfg.Seed)
			if err != nil {
				ss.close(cfg)
				return nil, err
			}
			sec, err := timeIt(func() error { return spec.runFlashr(ss.em, x, y, cfg) })
			freeAll(x, y)
			ss.close(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s %s: %w", spec.name, fuse.Name, err)
			}
			times[fuse.Name] = sec
		}
		for _, name := range []string{"base", "mem-fuse", "cache-fuse"} {
			rows = append(rows, Row{
				Experiment: "fig10", Algorithm: spec.name, System: name,
				Params:  fmt.Sprintf("n=%d (EM)", n),
				Seconds: times[name], Normalized: times["base"] / times[name],
				Extra: "speedup over base",
			})
		}
	}
	return rows, nil
}

// Table6 runs every algorithm out-of-core at the experiment's largest scale
// and reports runtime plus peak heap — the paper's point being that EM
// execution touches a negligible amount of memory relative to the data.
func Table6(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	ss, err := cfg.openSessions(flashr.Options{})
	if err != nil {
		return nil, err
	}
	defer ss.close(cfg)
	var rows []Row
	for _, spec := range algoSuite() {
		x, y, err := loadData(ss.em, spec, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		dataMB := float64(cfg.N) * float64(x.NCol()) * 8 / (1 << 20)
		peak := newPeakTracker()
		before := ss.em.TotalMaterializeStats()
		sec, err := timeIt(func() error { return spec.runFlashr(ss.em, x, y, cfg) })
		io := ss.em.TotalMaterializeStats().Sub(before)
		peakMB := peak.stop()
		freeAll(x, y)
		if err != nil {
			return nil, fmt.Errorf("table6 %s: %w", spec.name, err)
		}
		rows = append(rows, Row{
			Experiment: "table6", Algorithm: spec.name, System: "FlashR-EM",
			Params:  fmt.Sprintf("n=%d p=%d", cfg.N, int(x.NCol())),
			Seconds: sec,
			Extra: fmt.Sprintf("peakheap=%.0fMB data=%.0fMB ratio=%.2f %s",
				peakMB, dataMB, peakMB/dataMB, ioExtra(io)),
		})
	}
	return rows, nil
}

// Table4 verifies the complexity table empirically: measured SAFS bytes per
// algorithm against the expected I/O complexity, and compute scaling in p.
func Table4(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	n := cfg.N / 4
	if n < 4096 {
		n = 4096
	}
	var rows []Row
	for _, spec := range algoSuite() {
		ss, err := cfg.openSessions(flashr.Options{})
		if err != nil {
			return nil, err
		}
		x, y, err := loadData(ss.em, spec, n, cfg.Seed)
		if err != nil {
			ss.close(cfg)
			return nil, err
		}
		before := ss.em.FS().Stats().BytesRead
		sec, err := timeIt(func() error { return spec.runFlashr(ss.em, x, y, cfg) })
		readMB := float64(ss.em.FS().Stats().BytesRead-before) / (1 << 20)
		dataMB := float64(n) * float64(x.NCol()) * 8 / (1 << 20)
		freeAll(x, y)
		ss.close(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Experiment: "table4", Algorithm: spec.name, System: "FlashR-EM",
			Params:  fmt.Sprintf("n=%d iters=%d", n, cfg.Iters),
			Seconds: sec,
			Extra:   fmt.Sprintf("read=%.0fMB data=%.0fMB passes=%.1f", readMB, dataMB, readMB/dataMB),
		})
	}
	return rows, nil
}

// CSE is the hash-consing/result-cache A/B: an iterative EM workload whose
// per-iteration DAG contains an iteration-invariant statistics pass (plus a
// deliberate duplicate sink) and an iteration-dependent update pass, run with
// structural hash-consing on and off. The two runs must produce bit-identical
// outputs, and the CSE-on run must report unifications, cache hits, and
// strictly less leaf I/O and node execution — violations surface as errors,
// so CI gates on this experiment simply by running it.
func CSE(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	n := cfg.N / 2
	if n < 4096 {
		n = 4096
	}
	type result struct {
		vals  []float64
		stats flashr.MaterializeStats
		sec   float64
	}
	runMode := func(disable bool) (result, error) {
		var res result
		dir, err := os.MkdirTemp(cfg.SSDRoot, "flashr-cse-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		drives := make([]string, cfg.Drives)
		for i := range drives {
			drives[i] = filepath.Join(dir, fmt.Sprintf("ssd-%02d", i))
		}
		s, err := flashr.NewSession(flashr.Options{
			Workers: cfg.Workers, EM: true, SSDDirs: drives,
			ReadMBps: cfg.ReadMBps, WriteMBps: cfg.WriteMBps,
			SyncWrites: cfg.SyncWrites, WriteBehindDepth: cfg.WriteBehindDepth,
			DisableVerify: cfg.DisableVerify,
			DisableCSE:    disable, ResultCacheBytes: cfg.ResultCacheBytes,
			Owner: map[bool]string{false: "bench-cse-on", true: "bench-cse-off"}[disable],
		})
		if err != nil {
			return res, err
		}
		defer s.Close()
		if cfg.Trace != nil {
			s.Engine().StartTrace()
			defer func() { cfg.Trace.add(s.Engine().StopTrace()) }()
		}
		x, err := workload.PageGraph(s, n, cfg.Seed)
		if err != nil {
			return res, err
		}
		defer x.Free()
		before := s.TotalMaterializeStats()
		res.sec, err = timeIt(func() error {
			for it := 0; it < cfg.Iters; it++ {
				// Pass 1: iteration-invariant statistics — the same DAG every
				// iteration, with a structural duplicate in the same flush.
				a := flashr.Sum(flashr.Sqrt(flashr.Abs(x)))
				b := flashr.Sum(flashr.Sqrt(flashr.Abs(x)))
				av, err := a.Float()
				if err != nil {
					return err
				}
				bv, err := b.Float()
				if err != nil {
					return err
				}
				// Pass 2: iteration-dependent update — never cache-served.
				cv, err := flashr.Sum(flashr.Mul(x, float64(it+1))).Float()
				if err != nil {
					return err
				}
				res.vals = append(res.vals, av, bv, cv)
			}
			return nil
		})
		if err != nil {
			return res, err
		}
		res.stats = s.TotalMaterializeStats().Sub(before)
		return res, nil
	}
	on, err := runMode(false)
	if err != nil {
		return nil, fmt.Errorf("cse on: %w", err)
	}
	off, err := runMode(true)
	if err != nil {
		return nil, fmt.Errorf("cse off: %w", err)
	}
	if len(on.vals) != len(off.vals) {
		return nil, fmt.Errorf("cse: output lengths differ: %d vs %d", len(on.vals), len(off.vals))
	}
	for i := range on.vals {
		if math.Float64bits(on.vals[i]) != math.Float64bits(off.vals[i]) {
			return nil, fmt.Errorf("cse: output %d differs: %v (on) vs %v (off)", i, on.vals[i], off.vals[i])
		}
	}
	if on.stats.CSEUnifications == 0 {
		return nil, fmt.Errorf("cse: CSE-on iterative run reported zero unifications")
	}
	if on.stats.CacheHits == 0 {
		return nil, fmt.Errorf("cse: CSE-on iterative run reported zero cache hits")
	}
	if on.stats.BytesRead >= off.stats.BytesRead {
		return nil, fmt.Errorf("cse: CSE-on read %d bytes, not fewer than CSE-off's %d",
			on.stats.BytesRead, off.stats.BytesRead)
	}
	if on.stats.NodesExecuted >= off.stats.NodesExecuted {
		return nil, fmt.Errorf("cse: CSE-on executed %d nodes, not fewer than CSE-off's %d",
			on.stats.NodesExecuted, off.stats.NodesExecuted)
	}
	params := fmt.Sprintf("n=%d iters=%d (EM)", n, cfg.Iters)
	return []Row{
		{Experiment: "cse", Algorithm: "iterative", System: "cse-on", Params: params,
			Seconds: on.sec, Normalized: 1, Extra: ioExtra(on.stats)},
		{Experiment: "cse", Algorithm: "iterative", System: "cse-off", Params: params,
			Seconds: off.sec, Normalized: off.sec / on.sec, Extra: ioExtra(off.stats)},
	}, nil
}

// Rewrite is the algebraic-rewrite A/B: three EM workload shapes, each run
// with the optimizer on and off, each self-gating. "kmeans" is a k-means-like
// assignment/update loop whose feature columns are selected out of a wider
// cbind — dead-input elimination must prune the unread half, with
// bit-identical outputs (view/DCE rules are exact). "logistic" is an
// iterative loop whose per-iteration step scales an iteration-invariant
// reduction by a learning rate — aggregation folding must turn the scaled
// sink into an affine transform over a cacheable raw reduction, with
// tolerance-pinned outputs (folding reassociates the float reduction).
// "crossprod" computes t(X)%*%X through two structurally identical but
// distinct operands over a DCE-able selection — crossprod self-recognition
// must select the Syrk kernel, with bit-identical outputs. Every shape must
// read strictly fewer bytes with rewrites on and not regress wall time;
// violations surface as errors, so CI gates on this experiment by running it.
func Rewrite(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	n := cfg.N / 2
	if n < 4096 {
		n = 4096
	}
	const p = 16
	sel := make([]int, p)
	for i := range sel {
		sel[i] = i
	}
	type result struct {
		vals  []float64
		stats flashr.MaterializeStats
		sec   float64
	}
	runShape := func(shape string, disable bool, prog func(s *flashr.Session, feat, junk *flashr.FM, out *[]float64) error) (result, error) {
		var res result
		dir, err := os.MkdirTemp(cfg.SSDRoot, "flashr-rewrite-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		drives := make([]string, cfg.Drives)
		for i := range drives {
			drives[i] = filepath.Join(dir, fmt.Sprintf("ssd-%02d", i))
		}
		s, err := flashr.NewSession(flashr.Options{
			Workers: cfg.Workers, EM: true, SSDDirs: drives,
			ReadMBps: cfg.ReadMBps, WriteMBps: cfg.WriteMBps,
			SyncWrites: cfg.SyncWrites, WriteBehindDepth: cfg.WriteBehindDepth,
			DisableVerify: cfg.DisableVerify,
			DisableCSE:    cfg.DisableCSE, ResultCacheBytes: cfg.ResultCacheBytes,
			DisableRewrites: disable,
			Owner:           fmt.Sprintf("bench-rw-%s-%v", shape, map[bool]string{false: "on", true: "off"}[disable]),
		})
		if err != nil {
			return res, err
		}
		defer s.Close()
		if cfg.Trace != nil {
			s.Engine().StartTrace()
			defer func() { cfg.Trace.add(s.Engine().StopTrace()) }()
		}
		feat, err := s.GenerateSeeded(n, p, cfg.Seed, func(rng *rand.Rand, row []float64) {
			for j := range row {
				row[j] = rng.NormFloat64()
			}
		})
		if err != nil {
			return res, err
		}
		defer feat.Free()
		junk, err := s.GenerateSeeded(n, p, cfg.Seed+1, func(rng *rand.Rand, row []float64) {
			for j := range row {
				row[j] = rng.NormFloat64() * 3
			}
		})
		if err != nil {
			return res, err
		}
		defer junk.Free()
		before := s.TotalMaterializeStats()
		res.sec, err = timeIt(func() error { return prog(s, feat, junk, &res.vals) })
		if err != nil {
			return res, err
		}
		res.stats = s.TotalMaterializeStats().Sub(before)
		return res, nil
	}

	// kmeans: each iteration shifts the selected features by the iteration
	// index (so no whole-sink result is reused across iterations in either
	// run) and reduces them — the junk half of the cbind must never be read.
	kmeansProg := func(s *flashr.Session, feat, junk *flashr.FM, out *[]float64) error {
		for it := 0; it < cfg.Iters; it++ {
			x := flashr.GetCols(flashr.Cbind(feat, junk), sel)
			// Square the shifted features so the sinks see a non-linear top
			// layer: this shape must stay bit-identical, exercising only the
			// exact view/DCE rules, not aggregation folding.
			d := flashr.Add(x, float64(it))
			sq, err := flashr.Sum(flashr.Mul(d, d)).Float()
			if err != nil {
				return err
			}
			cs, err := flashr.ColSums(flashr.Mul(d, d)).AsVector()
			if err != nil {
				return err
			}
			*out = append(*out, sq)
			*out = append(*out, cs...)
		}
		return nil
	}
	// logistic: the sigmoid reduction is iteration-invariant; only the
	// learning-rate scale changes. Folding leaves a cacheable raw sink.
	logisticProg := func(s *flashr.Session, feat, junk *flashr.FM, out *[]float64) error {
		for it := 0; it < cfg.Iters; it++ {
			lr := 0.1 / float64(it+1)
			g, err := flashr.Sum(flashr.Mul(flashr.Sigmoid(feat), lr)).Float()
			if err != nil {
				return err
			}
			*out = append(*out, g)
		}
		return nil
	}
	// crossprod: two distinct but structurally identical operands over the
	// DCE-able selection; recognition must pick the symmetric kernel.
	crossprodProg := func(s *flashr.Session, feat, junk *flashr.FM, out *[]float64) error {
		for it := 0; it < cfg.Iters; it++ {
			x := flashr.GetCols(flashr.Cbind(feat, junk), sel)
			a := flashr.Mul(x, float64(it+1))
			b := flashr.Mul(x, float64(it+1))
			g, err := flashr.CrossProd2(a, b).AsDense()
			if err != nil {
				return err
			}
			*out = append(*out, g.Data...)
		}
		return nil
	}

	type shapeSpec struct {
		name  string
		prog  func(s *flashr.Session, feat, junk *flashr.FM, out *[]float64) error
		exact bool // bit-identical gate vs tolerance-pinned
		check func(on result) error
	}
	shapes := []shapeSpec{
		{"kmeans", kmeansProg, true, func(on result) error {
			if on.stats.RewriteDCE == 0 || on.stats.RewriteViews == 0 {
				return fmt.Errorf("expected view+DCE rewrites, got view=%d dce=%d",
					on.stats.RewriteViews, on.stats.RewriteDCE)
			}
			return nil
		}},
		{"logistic", logisticProg, false, func(on result) error {
			if on.stats.RewriteAggFolds == 0 {
				return fmt.Errorf("expected aggregation folds, got none")
			}
			if on.stats.CacheHits == 0 {
				return fmt.Errorf("expected folded raw sink to cache-hit across iterations")
			}
			return nil
		}},
		{"crossprod", crossprodProg, true, func(on result) error {
			if on.stats.RewriteCrossProds == 0 {
				return fmt.Errorf("expected crossprod self-recognition, got none")
			}
			if on.stats.RewriteDCE == 0 {
				return fmt.Errorf("expected DCE on the crossprod input, got none")
			}
			return nil
		}},
	}
	var rows []Row
	for _, sp := range shapes {
		on, err := runShape(sp.name, false, sp.prog)
		if err != nil {
			return nil, fmt.Errorf("rewrite %s on: %w", sp.name, err)
		}
		off, err := runShape(sp.name, true, sp.prog)
		if err != nil {
			return nil, fmt.Errorf("rewrite %s off: %w", sp.name, err)
		}
		if len(on.vals) != len(off.vals) {
			return nil, fmt.Errorf("rewrite %s: output lengths differ: %d vs %d", sp.name, len(on.vals), len(off.vals))
		}
		for i := range on.vals {
			if sp.exact {
				if math.Float64bits(on.vals[i]) != math.Float64bits(off.vals[i]) {
					return nil, fmt.Errorf("rewrite %s: output %d differs: %v (on) vs %v (off)",
						sp.name, i, on.vals[i], off.vals[i])
				}
			} else if d := math.Abs(on.vals[i] - off.vals[i]); d > 1e-9*math.Abs(off.vals[i])+1e-12 {
				return nil, fmt.Errorf("rewrite %s: output %d outside tolerance: %v (on) vs %v (off)",
					sp.name, i, on.vals[i], off.vals[i])
			}
		}
		if err := sp.check(on); err != nil {
			return nil, fmt.Errorf("rewrite %s: %w", sp.name, err)
		}
		if off.stats.Rewrites != 0 {
			return nil, fmt.Errorf("rewrite %s: rewrites-off run reported %d rewrites", sp.name, off.stats.Rewrites)
		}
		if on.stats.BytesRead >= off.stats.BytesRead {
			return nil, fmt.Errorf("rewrite %s: rewrites-on read %d bytes, not fewer than rewrites-off's %d",
				sp.name, on.stats.BytesRead, off.stats.BytesRead)
		}
		// Wall-time no-regression gate, with slack for scheduling noise on
		// loaded CI hosts (the on-run does strictly less I/O and compute).
		if on.sec > off.sec*1.5 {
			return nil, fmt.Errorf("rewrite %s: rewrites-on took %.3fs, regressing past rewrites-off's %.3fs",
				sp.name, on.sec, off.sec)
		}
		params := fmt.Sprintf("n=%d p=%d iters=%d (EM)", n, p, cfg.Iters)
		rwExtra := fmt.Sprintf("rw=%d view=%d xprod=%d fold=%d dce=%d dead=%d ",
			on.stats.Rewrites, on.stats.RewriteViews, on.stats.RewriteCrossProds,
			on.stats.RewriteAggFolds, on.stats.RewriteDCE, on.stats.RewriteDeadNodes)
		rows = append(rows,
			Row{Experiment: "rewrite", Algorithm: sp.name, System: "rewrite-on", Params: params,
				Seconds: on.sec, Normalized: 1, Extra: rwExtra + ioExtra(on.stats)},
			Row{Experiment: "rewrite", Algorithm: sp.name, System: "rewrite-off", Params: params,
				Seconds: off.sec, Normalized: off.sec / on.sec, Extra: ioExtra(off.stats)},
		)
	}
	return rows, nil
}

// Concurrent measures multi-session materialization: N sessions sharing one
// EM engine each run logistic regression on a private dataset, first
// back-to-back (serial reference) and then all at once from a barrier start.
// Rows report the serial and concurrent wall times plus one row per session
// with its own duration and attributed read throughput — the per-pass stats
// the engine's arbiter and the fair-queued SAFS reader account for.
func Concurrent(cfg Config) ([]Row, error) {
	cfg = cfg.Defaults()
	nSess := cfg.ConcurrentSessions
	if nSess <= 0 {
		nSess = 4
	}
	n := cfg.N / 2
	if n < 4096 {
		n = 4096
	}
	ss, err := cfg.openSessions(flashr.Options{})
	if err != nil {
		return nil, err
	}
	defer ss.close(cfg)

	type unit struct {
		s    *flashr.Session
		x, y *flashr.FM
	}
	// Distinct seeds per session and per phase keep the shared result cache
	// from serving one phase's passes to the other.
	open := func(tag string, seedOff int64) ([]unit, error) {
		units := make([]unit, nSess)
		for i := range units {
			cs, err := flashr.NewSession(
				flashr.WithSharedEngine(ss.em),
				flashr.WithOwner(fmt.Sprintf("%s-%d", tag, i)))
			if err != nil {
				return nil, err
			}
			x, y, err := workload.Criteo(cs, n, cfg.Seed+seedOff+int64(i))
			if err != nil {
				return nil, err
			}
			units[i] = unit{s: cs, x: x, y: y}
		}
		return units, nil
	}
	runLogistic := func(u unit) error {
		_, err := ml.LogisticRegressionLBFGS(u.s, u.x, u.y, ml.LogisticOptions{MaxIter: cfg.Iters, Tol: 1e-12})
		return err
	}

	serial, err := open("serial", 10_000)
	if err != nil {
		return nil, err
	}
	serialSec, err := timeIt(func() error {
		for _, u := range serial {
			if err := runLogistic(u); err != nil {
				return err
			}
		}
		return nil
	})
	for _, u := range serial {
		freeAll(u.x, u.y)
	}
	if err != nil {
		return nil, fmt.Errorf("concurrent serial reference: %w", err)
	}

	conc, err := open("sess", 20_000)
	if err != nil {
		return nil, err
	}
	durs := make([]time.Duration, nSess)
	errs := make([]error, nSess)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range conc {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			t0 := time.Now()
			errs[i] = runLogistic(conc[i])
			durs[i] = time.Since(t0)
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	concSec := time.Since(t0).Seconds()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("concurrent session %d: %w", i, err)
		}
	}

	params := fmt.Sprintf("n=%d sessions=%d iters=%d (EM)", n, nSess, cfg.Iters)
	minD, maxD := durs[0], durs[0]
	var aggRead int64
	rows := []Row{{
		Experiment: "conc", Algorithm: "logistic", System: "serial",
		Params: params, Seconds: serialSec, Normalized: 1,
		Extra: fmt.Sprintf("%d sessions back-to-back", nSess),
	}}
	for i, u := range conc {
		if durs[i] < minD {
			minD = durs[i]
		}
		if durs[i] > maxD {
			maxD = durs[i]
		}
		st := u.s.TotalMaterializeStats()
		aggRead += st.BytesRead
		rows = append(rows, Row{
			Experiment: "conc", Algorithm: "logistic", System: u.s.Owner(),
			Params: params, Seconds: durs[i].Seconds(), Normalized: durs[i].Seconds() / concSec,
			Extra: fmt.Sprintf("read=%.1fMB/s passes=%d %s",
				float64(st.BytesRead)/(1<<20)/durs[i].Seconds(), st.Passes, ioExtra(st)),
		})
		freeAll(u.x, u.y)
	}
	fair := float64(maxD) / float64(minD)
	rows = append(rows, Row{
		Experiment: "conc", Algorithm: "logistic", System: "concurrent",
		Params: params, Seconds: concSec, Normalized: concSec / serialSec,
		Extra: fmt.Sprintf("speedup=%.2fx fairness=%.2f agg-read=%.1fMB/s",
			serialSec/concSec, fair, float64(aggRead)/(1<<20)/concSec),
	})
	return rows, nil
}

// Experiments lists the runnable experiment names.
func Experiments() []string {
	return []string{"fig7a", "fig7b", "fig8", "fig9", "fig10", "table4", "table6", "cse", "rewrite", "concurrent", "shard"}
}

// Run dispatches an experiment by name ("all" runs everything).
func Run(name string, cfg Config) ([]Row, error) {
	switch name {
	case "fig7a":
		return Fig7a(cfg)
	case "fig7b":
		return Fig7b(cfg)
	case "fig8":
		return Fig8(cfg)
	case "fig9":
		return Fig9(cfg)
	case "fig10":
		return Fig10(cfg)
	case "table4":
		return Table4(cfg)
	case "table6":
		return Table6(cfg)
	case "cse":
		return CSE(cfg)
	case "rewrite":
		return Rewrite(cfg)
	case "concurrent":
		return Concurrent(cfg)
	case "shard":
		return Shard(cfg)
	case "all":
		var all []Row
		for _, e := range Experiments() {
			rows, err := Run(e, cfg)
			if err != nil {
				return all, err
			}
			all = append(all, rows...)
			// Return prior experiments' memory before the next one so
			// Table 6's peak-heap measurement stays uncontaminated.
			runtime.GC()
			debug.FreeOSMemory()
		}
		return all, nil
	default:
		return nil, fmt.Errorf("benchmark: unknown experiment %q (have %s, all)",
			name, strings.Join(Experiments(), ", "))
	}
}

// peakTracker samples heap usage during a measurement.
type peakTracker struct {
	stopCh chan struct{}
	peak   atomic.Int64
	done   chan struct{}
}

func newPeakTracker() *peakTracker {
	p := &peakTracker{stopCh: make(chan struct{}), done: make(chan struct{})}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := int64(ms.HeapAlloc)
	p.peak.Store(base)
	go func() {
		defer close(p.done)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-p.stopCh:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if h := int64(ms.HeapAlloc); h > p.peak.Load() {
					p.peak.Store(h)
				}
			}
		}
	}()
	return p
}

// stop ends sampling and returns the peak heap in MB.
func (p *peakTracker) stop() float64 {
	close(p.stopCh)
	<-p.done
	return float64(p.peak.Load()) / (1 << 20)
}

func freeAll(fms ...*flashr.FM) {
	for _, f := range fms {
		if f != nil {
			f.Free()
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SortRows orders rows by (experiment, algorithm, system) for stable output.
func SortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		return a.System < b.System
	})
}
