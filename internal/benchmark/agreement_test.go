package benchmark

import (
	"math"
	"testing"

	flashr "repro"
	"repro/internal/dense"
	"repro/internal/eager"
	"repro/internal/workload"
	"repro/ml"
)

// TestEnginesAgree verifies the central validity condition of the Fig. 7
// comparisons: the FlashR implementations and the eager baselines compute
// the same models from the same data and the same initialization — the
// measured differences are purely about execution strategy.
func TestEnginesAgree(t *testing.T) {
	s, err := flashr.NewSession(flashr.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	x, y, err := workload.Criteo(s, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := workload.PageGraph(s, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	xd, err := x.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	yd, err := y.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	pgd, err := pg.AsDense()
	if err != nil {
		t.Fatal(err)
	}
	for _, style := range []eager.Style{eager.StyleH2O, eager.StyleMLlib} {
		e := eager.New(style, 2)

		// Correlation matrices identical.
		cf, err := ml.Correlation(x)
		if err != nil {
			t.Fatal(err)
		}
		ce := e.Correlation(xd)
		if !dense.Equalish(cf, ce, 1e-9) {
			t.Fatalf("%v: correlation disagrees", style)
		}

		// PCA eigenvalues identical (eigenvectors may flip sign).
		vf, err := ml.PCA(x, 8)
		if err != nil {
			t.Fatal(err)
		}
		ve, _ := e.PCA(xd, 8)
		for i := range vf.Values {
			if math.Abs(vf.Values[i]-ve[i]) > 1e-7*math.Max(1, ve[i]) {
				t.Fatalf("%v: PCA eigenvalue %d: %g vs %g", style, i, vf.Values[i], ve[i])
			}
		}

		// Naive Bayes models identical.
		nbf, err := ml.NaiveBayes(s, x, y, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, nbMean, nbVar := e.NaiveBayes(xd, yd, 2)
		if !dense.Equalish(nbf.Mean, nbMean, 1e-10) || !dense.Equalish(nbf.Var, nbVar, 1e-10) {
			t.Fatalf("%v: naive bayes disagrees", style)
		}

		// Logistic: same optimizer on the same objective → same weights.
		lf, err := ml.LogisticRegressionLBFGS(s, x, y, ml.LogisticOptions{MaxIter: 4, Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		we, _ := e.Logistic(xd, yd, 4, 1e-12)
		for j := range lf.W {
			if math.Abs(lf.W[j]-we[j]) > 1e-8 {
				t.Fatalf("%v: logistic w[%d]: %g vs %g", style, j, lf.W[j], we[j])
			}
		}

		// K-means from identical centers → identical centers after the
		// same number of iterations.
		init := fixedInitCenters(workload.PageGraphCols, 10)
		kf, err := ml.KMeans(s, pg, 10, ml.KMeansOptions{MaxIter: 3, InitCenters: init})
		if err != nil {
			t.Fatal(err)
		}
		ke, _ := e.KMeans(pgd, init, 3)
		if !dense.Equalish(kf.Centers, ke, 1e-9) {
			t.Fatalf("%v: kmeans centers disagree", style)
		}
		kf.Assign.Free()

		// GMM means agree after the same EM iterations.
		ginit := fixedInitCenters(workload.PageGraphCols, 4)
		gf, err := ml.GMM(s, pg, 4, ml.GMMOptions{MaxIter: 2, Tol: 1e-12, InitMeans: ginit})
		if err != nil {
			t.Fatal(err)
		}
		_, gMeans, _, gll := e.GMM(pgd, ginit, 2, 1e-12)
		if !dense.Equalish(gf.Means, gMeans, 1e-6) {
			t.Fatalf("%v: GMM means disagree", style)
		}
		if math.Abs(gf.LogLike-gll) > 1e-6 {
			t.Fatalf("%v: GMM loglike %g vs %g", style, gf.LogLike, gll)
		}
	}
}
