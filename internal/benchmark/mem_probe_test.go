package benchmark

import (
	"runtime"
	"testing"

	flashr "repro"
	"repro/internal/workload"
	"repro/ml"
)

// TestMemProbe diagnoses Table 6's peak-heap measurement at modest scale.
func TestMemProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	cfg := Config{N: 600_000, Workers: 1, Drives: 2, SSDRoot: t.TempDir()}.Defaults()
	ss, err := cfg.openSessions(flashr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.close(cfg)
	x, y, err := workload.Criteo(ss.em, cfg.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer freeAll(x, y)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	t.Logf("baseline live heap: %d MB", before.HeapAlloc>>20)
	peak := newPeakTracker()
	if _, err := ml.Correlation(x); err != nil {
		t.Fatal(err)
	}
	peakMB := peak.stop()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	t.Logf("peak during correlation: %.0f MB, live after GC: %d MB, totalAlloc delta: %d MB",
		peakMB, after.HeapAlloc>>20, (after.TotalAlloc-before.TotalAlloc)>>20)
}
