package benchmark

import (
	"strings"
	"testing"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig(t *testing.T) Config {
	return Config{
		N: 6000, Workers: 2, Drives: 2, Iters: 1,
		ReadMBps: 0, WriteMBps: 0, // unthrottled for test speed
		SSDRoot: t.TempDir(),
	}
}

func TestFig7aSmoke(t *testing.T) {
	rows, err := Fig7a(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// 6 algorithms; correlation and gmm lack the H2O system (footnote 2).
	systems := map[string]map[string]bool{}
	for _, r := range rows {
		if systems[r.Algorithm] == nil {
			systems[r.Algorithm] = map[string]bool{}
		}
		systems[r.Algorithm][r.System] = true
		if r.Seconds <= 0 {
			t.Fatalf("%s/%s has no measurement", r.Algorithm, r.System)
		}
	}
	if len(systems) != 6 {
		t.Fatalf("expected 6 algorithms, got %d", len(systems))
	}
	if systems["correlation"]["H2O-like"] || systems["gmm"]["H2O-like"] {
		t.Fatal("H2O must not report correlation/GMM (paper footnote 2)")
	}
	if !systems["pca"]["H2O-like"] || !systems["kmeans"]["MLlib-like"] {
		t.Fatal("missing baseline systems")
	}
	for _, r := range rows {
		if r.System == "FlashR-IM" && r.Normalized != 1 {
			t.Fatalf("FlashR-IM not the normalization reference: %v", r)
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	rows, err := Fig9(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var pSweep, kSweep int
	for _, r := range rows {
		if r.Normalized <= 0 {
			t.Fatalf("non-positive EM/IM ratio: %v", r)
		}
		if r.Algorithm == "kmeans" {
			kSweep++
		} else {
			pSweep++
		}
	}
	if pSweep != 8 || kSweep != 4 {
		t.Fatalf("sweep sizes p=%d k=%d", pSweep, kSweep)
	}
}

func TestFig10Smoke(t *testing.T) {
	rows, err := Fig10(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]bool{}
	for _, r := range rows {
		if r.System == "base" {
			if r.Normalized != 1 {
				t.Fatalf("base speedup must be 1: %v", r)
			}
			base[r.Algorithm] = true
		}
	}
	if len(base) != 6 {
		t.Fatalf("fig10 covers %d algorithms, want 6", len(base))
	}
}

func TestTable6Smoke(t *testing.T) {
	rows, err := Table6(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !strings.Contains(r.Extra, "peakheap=") {
			t.Fatalf("missing memory accounting: %v", r)
		}
	}
}

func TestTable4Smoke(t *testing.T) {
	rows, err := Table4(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !strings.Contains(r.Extra, "passes=") {
			t.Fatalf("missing pass accounting: %v", r)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nonsense", tinyConfig(t)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, e := range Experiments() {
		switch e {
		case "fig7a", "fig9": // covered above; skip re-running the slow ones
		}
	}
	rows, err := Run("table4", tinyConfig(t))
	if err != nil || len(rows) == 0 {
		t.Fatalf("dispatch: %v", err)
	}
	out := Format(rows)
	if !strings.Contains(out, "table4") {
		t.Fatal("format output missing experiment id")
	}
	SortRows(rows)
}

func TestFig7bSmoke(t *testing.T) {
	rows, err := Fig7b(tinyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var clusterRows int
	for _, r := range rows {
		if strings.HasSuffix(r.System, "-cluster") {
			clusterRows++
			if !strings.Contains(r.Extra, "rounds=") {
				t.Fatalf("cluster row missing cost-model detail: %v", r)
			}
		}
	}
	if clusterRows == 0 {
		t.Fatal("no simulated cluster measurements")
	}
}

func TestFig8Smoke(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.N = 20000 // fig8 divides by 10 with a floor of 2048
	rows, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	algos := map[string]int{}
	for _, r := range rows {
		algos[r.Algorithm]++
	}
	for _, want := range []string{"crossprod", "mvrnorm", "lda"} {
		if algos[want] != 3 {
			t.Fatalf("fig8 %s has %d systems, want 3", want, algos[want])
		}
	}
}
