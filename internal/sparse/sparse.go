// Package sparse implements the sparse-matrix support FlashR integrates for
// large sparse inputs: compressed sparse row (CSR) matrices and
// semi-external-memory sparse-matrix × dense-matrix multiplication (SpMM)
// in the style of Zheng et al., "Semi-External Memory Sparse Matrix
// Multiplication on Billion-node Graphs" (TPDS 2016), the system cited by
// §3 of the FlashR paper.
//
// Semi-external memory means the sparse matrix streams from the SSD array
// row-block by row-block while the (skinny) dense operand and the result
// stay in memory — the access pattern that makes billion-edge multiplies
// feasible on one machine.
package sparse

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dense"
	"repro/internal/safs"
)

// CSR is an in-memory compressed sparse row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64 // len Rows+1
	ColIdx     []int32
	Val        []float64
}

// NewCSR builds a CSR from coordinate triplets (duplicates are summed).
func NewCSR(rows, cols int, ri, ci []int, v []float64) (*CSR, error) {
	if len(ri) != len(ci) || len(ri) != len(v) {
		return nil, fmt.Errorf("sparse: triplet lengths %d/%d/%d differ", len(ri), len(ci), len(v))
	}
	type trip struct {
		r, c int
		v    float64
	}
	ts := make([]trip, len(ri))
	for i := range ri {
		if ri[i] < 0 || ri[i] >= rows || ci[i] < 0 || ci[i] >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", ri[i], ci[i], rows, cols)
		}
		ts[i] = trip{ri[i], ci[i], v[i]}
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].r != ts[b].r {
			return ts[a].r < ts[b].r
		}
		return ts[a].c < ts[b].c
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	for i := 0; i < len(ts); {
		j := i
		var sum float64
		for ; j < len(ts) && ts[j].r == ts[i].r && ts[j].c == ts[i].c; j++ {
			sum += ts[j].v
		}
		m.ColIdx = append(m.ColIdx, int32(ts[i].c))
		m.Val = append(m.Val, sum)
		m.RowPtr[ts[i].r+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m, nil
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// Row returns the column indices and values of row r.
func (m *CSR) Row(r int) ([]int32, []float64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// MulDense computes A %*% B for dense B (Cols×k) into a dense Rows×k
// result, in parallel over row blocks.
func (m *CSR) MulDense(b *dense.Dense, workers int) (*dense.Dense, error) {
	if b.R != m.Cols {
		return nil, fmt.Errorf("sparse: SpMM %dx%d by %dx%d", m.Rows, m.Cols, b.R, b.C)
	}
	out := dense.New(m.Rows, b.C)
	if workers <= 0 {
		workers = 4
	}
	var next atomic.Int64
	const block = 1024
	nblocks := (m.Rows + block - 1) / block
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				bi := int(next.Add(1) - 1)
				if bi >= nblocks {
					return
				}
				r0 := bi * block
				r1 := minInt(r0+block, m.Rows)
				spmmRows(m, b, out, r0, r1)
			}
		}()
	}
	wg.Wait()
	return out, nil
}

func spmmRows(m *CSR, b, out *dense.Dense, r0, r1 int) {
	k := b.C
	for r := r0; r < r1; r++ {
		orow := out.Row(r)
		cols, vals := m.Row(r)
		for i, c := range cols {
			v := vals[i]
			brow := b.Row(int(c))
			for j := 0; j < k; j++ {
				orow[j] += v * brow[j]
			}
		}
	}
}

// RandomGraph generates a sparse random adjacency-like matrix with an
// average of degree entries per row (used to synthesize the PageGraph-style
// spectral substrate).
func RandomGraph(n, degree int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}
	for r := 0; r < n; r++ {
		d := 1 + rng.Intn(2*degree)
		seen := map[int32]bool{}
		for i := 0; i < d; i++ {
			// Preferential-attachment-ish skew: favor low ids.
			c := int32(float64(n) * rng.Float64() * rng.Float64())
			if c >= int32(n) {
				c = int32(n - 1)
			}
			if seen[c] {
				continue
			}
			seen[c] = true
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, 1)
			m.RowPtr[r+1]++
		}
	}
	for r := 0; r < n; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// --- Semi-external-memory SpMM -------------------------------------------

// header layout of an on-SSD CSR file: rows, cols, nnz (int64 each),
// followed by RowPtr, ColIdx (padded to 8 bytes), Val.
const headerBytes = 24

// SEMatrix is a CSR matrix stored on the SSD array. Row pointers stay in
// memory (O(rows) — the "semi" part); column indices and values stream.
type SEMatrix struct {
	fs     *safs.FS
	file   *safs.File
	Rows   int
	Cols   int
	RowPtr []int64
	colOff int64 // byte offset of ColIdx section
	valOff int64 // byte offset of Val section
}

// WriteSE stores a CSR on the SSD array.
func WriteSE(fs *safs.FS, name string, m *CSR) (*SEMatrix, error) {
	nnz := int64(m.NNZ())
	colBytes := pad8(nnz * 4)
	rowPtrBytes := int64(len(m.RowPtr)) * 8
	total := int64(headerBytes) + rowPtrBytes + colBytes + nnz*8
	f, err := fs.Create(name, total)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerBytes)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.Cols))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(nnz))
	if err := f.WriteAt(hdr, 0); err != nil {
		return nil, err
	}
	buf := make([]byte, rowPtrBytes)
	for i, v := range m.RowPtr {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	if err := f.WriteAt(buf, headerBytes); err != nil {
		return nil, err
	}
	colOff := int64(headerBytes) + rowPtrBytes
	cb := make([]byte, colBytes)
	for i, c := range m.ColIdx {
		binary.LittleEndian.PutUint32(cb[i*4:], uint32(c))
	}
	if err := f.WriteAt(cb, colOff); err != nil {
		return nil, err
	}
	valOff := colOff + colBytes
	vb := make([]byte, nnz*8)
	for i, v := range m.Val {
		binary.LittleEndian.PutUint64(vb[i*8:], floatBits(v))
	}
	if err := f.WriteAt(vb, valOff); err != nil {
		return nil, err
	}
	return &SEMatrix{
		fs: fs, file: f, Rows: m.Rows, Cols: m.Cols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		colOff: colOff, valOff: valOff,
	}, nil
}

// OpenSE opens a previously written semi-external matrix, reloading the
// in-memory row pointers.
func OpenSE(fs *safs.FS, name string) (*SEMatrix, error) {
	f, err := fs.OpenFile(name)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerBytes)
	if err := f.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	rows := int(binary.LittleEndian.Uint64(hdr[0:]))
	cols := int(binary.LittleEndian.Uint64(hdr[8:]))
	nnz := int64(binary.LittleEndian.Uint64(hdr[16:]))
	rowPtrBytes := int64(rows+1) * 8
	buf := make([]byte, rowPtrBytes)
	if err := f.ReadAt(buf, headerBytes); err != nil {
		return nil, err
	}
	m := &SEMatrix{fs: fs, file: f, Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	for i := range m.RowPtr {
		m.RowPtr[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	m.colOff = int64(headerBytes) + rowPtrBytes
	m.valOff = m.colOff + pad8(nnz*4)
	return m, nil
}

// NNZ returns the stored entry count.
func (m *SEMatrix) NNZ() int64 { return m.RowPtr[m.Rows] }

// MulDense computes A %*% B semi-externally: row blocks of the sparse
// matrix stream from SSD while B and the result stay in memory. Parallel
// across row blocks with sequential block dispatch, mirroring the engine's
// scheduler.
func (m *SEMatrix) MulDense(b *dense.Dense, workers int) (*dense.Dense, error) {
	if b.R != m.Cols {
		return nil, fmt.Errorf("sparse: SE SpMM %dx%d by %dx%d", m.Rows, m.Cols, b.R, b.C)
	}
	out := dense.New(m.Rows, b.C)
	if workers <= 0 {
		workers = 4
	}
	const blockRows = 8192
	nblocks := (m.Rows + blockRows - 1) / blockRows
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var colBuf []byte
			var valBuf []byte
			for {
				bi := int(next.Add(1) - 1)
				if bi >= nblocks {
					return
				}
				r0 := bi * blockRows
				r1 := minInt(r0+blockRows, m.Rows)
				lo, hi := m.RowPtr[r0], m.RowPtr[r1]
				if lo == hi {
					continue
				}
				cn := int(hi-lo) * 4
				vn := int(hi-lo) * 8
				if cap(colBuf) < cn {
					colBuf = make([]byte, cn)
				}
				if cap(valBuf) < vn {
					valBuf = make([]byte, vn)
				}
				if err := m.file.ReadAt(colBuf[:cn], m.colOff+lo*4); err != nil {
					errs[w] = err
					return
				}
				if err := m.file.ReadAt(valBuf[:vn], m.valOff+lo*8); err != nil {
					errs[w] = err
					return
				}
				for r := r0; r < r1; r++ {
					orow := out.Row(r)
					for e := m.RowPtr[r]; e < m.RowPtr[r+1]; e++ {
						i := int(e - lo)
						c := binary.LittleEndian.Uint32(colBuf[i*4:])
						v := bitsFloat(binary.LittleEndian.Uint64(valBuf[i*8:]))
						brow := b.Row(int(c))
						for j := range orow {
							orow[j] += v * brow[j]
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func pad8(n int64) int64 { return (n + 7) &^ 7 }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
