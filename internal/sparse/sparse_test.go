package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/safs"
)

func randCSR(rng *rand.Rand, rows, cols, nnz int) *CSR {
	ri := make([]int, nnz)
	ci := make([]int, nnz)
	v := make([]float64, nnz)
	for i := 0; i < nnz; i++ {
		ri[i] = rng.Intn(rows)
		ci[i] = rng.Intn(cols)
		v[i] = rng.NormFloat64()
	}
	m, err := NewCSR(rows, cols, ri, ci, v)
	if err != nil {
		panic(err)
	}
	return m
}

func denseOf(m *CSR) *dense.Dense {
	d := dense.New(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		cols, vals := m.Row(r)
		for i, c := range cols {
			d.Set(r, int(c), vals[i])
		}
	}
	return d
}

func TestCSRConstruction(t *testing.T) {
	// Duplicates sum; rows sorted.
	m, err := NewCSR(3, 3, []int{2, 0, 2}, []int{1, 0, 1}, []float64{1, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz=%d", m.NNZ())
	}
	cols, vals := m.Row(2)
	if len(cols) != 1 || cols[0] != 1 || vals[0] != 3 {
		t.Fatalf("row 2: %v %v", cols, vals)
	}
	if _, err := NewCSR(2, 2, []int{5}, []int{0}, []float64{1}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

// TestSpMMMatchesDense property-tests in-memory SpMM against dense matmul.
func TestSpMMMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols, k := 1+rng.Intn(60), 1+rng.Intn(60), 1+rng.Intn(8)
		m := randCSR(rng, rows, cols, rng.Intn(200))
		b := dense.New(cols, k)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		got, err := m.MulDense(b, 3)
		if err != nil {
			return false
		}
		want := dense.MatMul(denseOf(m), b)
		return dense.Equalish(got, want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSemiExternalSpMM round-trips a CSR through the SSD array and checks
// the streaming multiply, including a block boundary crossing.
func TestSemiExternalSpMM(t *testing.T) {
	fs, err := safs.OpenTempDir(t.TempDir(), 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	rng := rand.New(rand.NewSource(4))
	const rows, cols, k = 20000, 500, 4
	m := randCSR(rng, rows, cols, 60000)
	se, err := WriteSE(fs, "graph", m)
	if err != nil {
		t.Fatal(err)
	}
	if se.NNZ() != int64(m.NNZ()) {
		t.Fatalf("nnz %d != %d", se.NNZ(), m.NNZ())
	}
	b := dense.New(cols, k)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got, err := se.MulDense(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.MulDense(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equalish(got, want, 1e-9) {
		t.Fatal("semi-external SpMM differs from in-memory")
	}
	// Reopen and verify metadata recovery.
	se2, err := OpenSE(fs, "graph")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := se2.MulDense(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equalish(got2, want, 1e-9) {
		t.Fatal("reopened SpMM differs")
	}
}

func TestRandomGraphShape(t *testing.T) {
	g := RandomGraph(5000, 8, 1)
	if g.Rows != 5000 || g.Cols != 5000 {
		t.Fatal("bad shape")
	}
	avg := float64(g.NNZ()) / 5000
	if avg < 2 || avg > 20 {
		t.Fatalf("average degree %g", avg)
	}
	// Degree skew: low ids should accumulate more in-edges. Compare column
	// counts in the first and last decile.
	counts := make([]int, 5000)
	for _, c := range g.ColIdx {
		counts[c]++
	}
	var lo, hi int
	for i := 0; i < 500; i++ {
		lo += counts[i]
		hi += counts[4500+i]
	}
	if lo <= hi {
		t.Fatalf("no preferential skew: first decile %d, last %d", lo, hi)
	}
}

func TestSpMMShapeMismatch(t *testing.T) {
	m := randCSR(rand.New(rand.NewSource(1)), 10, 10, 20)
	if _, err := m.MulDense(dense.New(11, 2), 1); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestPowerIterationOnGraph(t *testing.T) {
	// One power-iteration step keeps vector norms finite and positive —
	// the spectral-embedding substrate behaves.
	g := RandomGraph(2000, 6, 2)
	v := dense.New(2000, 1)
	for i := range v.Data {
		v.Data[i] = 1
	}
	w, err := g.MulDense(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	for _, x := range w.Data {
		norm += x * x
	}
	if norm <= 0 || math.IsNaN(norm) {
		t.Fatalf("norm %g", norm)
	}
}
