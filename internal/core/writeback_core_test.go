package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/dense"
	"repro/internal/matrix"
	"repro/internal/numa"
	"repro/internal/safs"
)

// failingWriteStore wraps a Store and fails writes on one partition — the
// injection seam for proving write failures surface through the async
// write-back path.
type failingWriteStore struct {
	matrix.Store
	failPart int
}

func (f *failingWriteStore) WritePart(i int, src []float64) error {
	if i == f.failPart {
		return fmt.Errorf("injected write failure on partition %d", i)
	}
	return f.Store.WritePart(i, src)
}

// TestWriteErrorPropagates: a store write failure must fail Materialize with
// the injected error — through the write-behind queue and through the
// synchronous escape hatch alike — and must not publish the target.
func TestWriteErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ad := dense.New(2000, 3)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
	}
	for _, syncW := range []bool{false, true} {
		e, err := NewEngine(Config{Workers: 3, PartRows: 256, SyncWrites: syncW})
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.FromDense(ad)
		if err != nil {
			t.Fatal(err)
		}
		e.testStoreWrap = func(st matrix.Store) matrix.Store {
			return &failingWriteStore{Store: st, failPart: 3}
		}
		out := Sapply(a, UnarySquare)
		err = e.Materialize([]*Mat{out}, nil)
		if err == nil {
			t.Fatalf("sync=%v: materialization with failing writes succeeded", syncW)
		}
		if !strings.Contains(err.Error(), "injected write failure") {
			t.Fatalf("sync=%v: error %v does not carry the injected failure", syncW, err)
		}
		if out.Materialized() {
			t.Fatalf("sync=%v: target published after failed pass", syncW)
		}
		// The engine must remain usable after the failed pass.
		e.testStoreWrap = nil
		if _, err := e.ToDense(Sapply(a, UnaryAbs)); err != nil {
			t.Fatalf("sync=%v: engine unusable after write failure: %v", syncW, err)
		}
	}
}

// TestCancelledMaterializeDrains: cancelling a materialization mid-pass must
// return promptly with the context error, drain in-flight writes, and leave
// the NUMA chunk pools consistent (every pooled chunk back after frees).
func TestCancelledMaterializeDrains(t *testing.T) {
	topo := numa.NewTopology(2, 1<<15)
	// Throttled array so the pass is slow enough to cancel mid-flight.
	fs, err := safs.OpenTempDir(t.TempDir(), 2, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const nrow, ncol, partRows = 2048, 8, 256
	st, err := matrix.NewSAFSStore(fs, "leaf", nrow, ncol, partRows)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, partRows*ncol)
	rng := rand.New(rand.NewSource(12))
	for p := 0; p < st.NumParts(); p++ {
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
		if err := st.WritePart(p, buf); err != nil {
			t.Fatal(err)
		}
	}
	leaf := NewLeaf(st, matrix.F64)

	e, err := NewEngine(Config{Workers: 2, PartRows: partRows, Topo: topo, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	out := Sapply(leaf, UnarySquare) // tall output → pooled MemStore partitions
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.MaterializeCtx(ctx, []*Mat{out}, nil) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err = <-done:
	case <-timeoutC(t):
		t.Fatal("cancelled materialization did not return")
	}
	if !errors.Is(err, context.Canceled) {
		// A worker that abandons in-flight prefetches trips the pass's
		// pool-consistency invariant and surfaces an internal error here
		// instead of the bare context error.
		t.Fatalf("MaterializeCtx err = %v, want context.Canceled", err)
	}
	if out.Materialized() {
		t.Fatal("cancelled target was published")
	}
	// The engine and pools must be reusable: run the same pass to completion.
	out2 := Sapply(leaf, UnarySquare)
	if _, err := e.ToDense(out2); err != nil {
		t.Fatalf("engine unusable after cancellation: %v", err)
	}
	if ms := e.LastMaterializeStats(); ms.PrefetchAbandoned != 0 {
		t.Fatalf("clean pass after cancellation abandoned %d prefetches", ms.PrefetchAbandoned)
	}
	out2.Free()
	leaf.Free()
	// The result cache retains a reference on out2's store past Free; drop
	// it so the pool-balance check below sees every buffer returned.
	e.FlushResultCache()
	idle, allocated := topo.PoolStats()
	for n := range idle {
		if idle[n] != allocated[n] {
			t.Fatalf("node %d pool inconsistent after cancel: idle=%d allocated=%d",
				n, idle[n], allocated[n])
		}
	}
}

// TestMaterializeStatsRecorded checks the observability record: an EM pass
// reports its I/O volume and write-queue activity, and the synchronous
// escape hatch reports stall == write time by construction.
func TestMaterializeStatsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ad := dense.New(4096, 4)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
	}
	for _, syncW := range []bool{false, true} {
		fs, err := safs.OpenTempDir(t.TempDir(), 2, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(Config{Workers: 2, PartRows: 256, FS: fs, EM: true, SyncWrites: syncW})
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.FromDense(ad)
		if err != nil {
			t.Fatal(err)
		}
		out := Sapply(a, UnaryExp)
		if err := e.Materialize([]*Mat{out}, nil); err != nil {
			t.Fatal(err)
		}
		ms := e.LastMaterializeStats()
		wantBytes := int64(4096 * 4 * 8)
		if ms.SyncWrites != syncW {
			t.Fatalf("stats SyncWrites = %v, want %v", ms.SyncWrites, syncW)
		}
		if ms.Parts != 16 || ms.Passes != 1 {
			t.Fatalf("sync=%v: parts=%d passes=%d, want 16/1", syncW, ms.Parts, ms.Passes)
		}
		if ms.BytesRead != wantBytes || ms.BytesWritten != wantBytes {
			t.Fatalf("sync=%v: read=%d written=%d, want %d", syncW, ms.BytesRead, ms.BytesWritten, wantBytes)
		}
		if ms.PrefetchHits+ms.PrefetchMisses != 16 {
			t.Fatalf("sync=%v: prefetch hits=%d misses=%d, want 16 loads", syncW, ms.PrefetchHits, ms.PrefetchMisses)
		}
		if syncW {
			if ms.WriteJobs != 0 {
				t.Fatalf("sync mode recorded %d write-behind jobs", ms.WriteJobs)
			}
			if ms.WriteStall != ms.WriteTime {
				t.Fatalf("sync mode: stall %v != write time %v", ms.WriteStall, ms.WriteTime)
			}
		} else if ms.WriteJobs != 16 {
			t.Fatalf("async mode write jobs = %d, want 16", ms.WriteJobs)
		}
		total := e.TotalMaterializeStats()
		if total.BytesWritten < ms.BytesWritten {
			t.Fatal("total stats did not accumulate the pass")
		}
		if s := ms.String(); !strings.Contains(s, "wstall=") || !strings.Contains(s, "parts=16") {
			t.Fatalf("stats string %q missing fields", s)
		}
		fs.Close()
	}
}

// TestWriteBehindBitIdentical: for every fusion level, results with the
// write-behind pipeline must be bit-identical to the synchronous escape
// hatch. The expressions are order-sensitive (cumulative sums) so this also
// catches partition writes landing in the wrong slot.
func TestWriteBehindBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ad := dense.New(3000, 3)
	bd := dense.New(3000, 3)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
		bd.Data[i] = rng.NormFloat64()
	}
	exprs := []struct {
		name  string
		build func(a, b *Mat) *Mat
	}{
		{"sapply-chain", func(a, _ *Mat) *Mat { return Sapply(Sapply(a, UnaryAbs), UnarySqrt) }},
		{"cumcol-of-mapply", func(a, b *Mat) *Mat { return CumCol(Mapply(a, b, BinAdd), AggSum) }},
	}
	for _, ex := range exprs {
		var want *dense.Dense
		for _, fuse := range []FuseLevel{FuseCache, FuseMem, FuseNone} {
			for _, syncW := range []bool{true, false} {
				fs, err := safs.OpenTempDir(t.TempDir(), 2, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				e, err := NewEngine(Config{
					Workers: 3, Fuse: fuse, PartRows: 256,
					FS: fs, EM: true, SyncWrites: syncW, WriteBehindDepth: 3,
				})
				if err != nil {
					t.Fatal(err)
				}
				a, err := e.FromDense(ad)
				if err != nil {
					t.Fatal(err)
				}
				b, err := e.FromDense(bd)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.ToDense(ex.build(a, b))
				if err != nil {
					t.Fatalf("%s fuse=%v sync=%v: %v", ex.name, fuse, syncW, err)
				}
				if want == nil {
					want = got
				} else if !dense.Equalish(got, want, 0) {
					t.Fatalf("%s fuse=%v sync=%v differs from reference", ex.name, fuse, syncW)
				}
				fs.Close()
			}
		}
	}
}
