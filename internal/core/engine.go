package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dense"
	"repro/internal/matrix"
	"repro/internal/numa"
	"repro/internal/safs"
	"repro/internal/trace"
)

// FuseLevel selects how aggressively the engine fuses the operations of a
// DAG — the knob behind the Figure 10 ablation.
type FuseLevel int8

const (
	// FuseCache is the default and the paper's full optimization: one
	// fused pass per DAG with I/O partitions split into processor-cache
	// (Pcache) partitions, the DAG evaluated depth-first per Pcache chunk,
	// and chunk buffers recycled the moment their last consumer finishes.
	FuseCache FuseLevel = iota
	// FuseMem fuses all operations of a DAG into a single pass over the
	// I/O partitions but materializes intermediates one whole I/O
	// partition at a time in memory ("mem-fuse" minus "cache-fuse" in
	// Figure 10).
	FuseMem
	// FuseNone materializes every matrix operation separately (one full
	// parallel pass and one intermediate matrix per op) — the "base"
	// configuration of Figure 10, and how Spark-style engines execute.
	FuseNone
)

func (f FuseLevel) String() string {
	switch f {
	case FuseNone:
		return "none"
	case FuseMem:
		return "mem-fuse"
	case FuseCache:
		return "cache-fuse"
	default:
		return fmt.Sprintf("FuseLevel(%d)", int(f))
	}
}

// DefaultPartRows is the engine-wide I/O partition height. The paper fixes
// the number of rows per I/O partition across all matrices ("All
// I/O-partitions have the same number of rows regardless of the number of
// columns", §3.2.1) so that partition i of every matrix in a DAG lines up.
const DefaultPartRows = 1 << 14

// DefaultPcacheBytes sizes Pcache partitions to fit comfortably in L1/L2.
const DefaultPcacheBytes = 64 << 10

// Config configures an execution engine.
type Config struct {
	// Workers is the number of parallel evaluation goroutines
	// (0 = GOMAXPROCS).
	Workers int
	// Fuse selects the fusion level (default FuseCache).
	Fuse FuseLevel
	// Topo is the simulated NUMA topology (nil = process default).
	Topo *numa.Topology
	// FS is the SSD array for external-memory matrices. Required when EM
	// is set or when leaves live on SAFS.
	FS *safs.FS
	// EM directs materialized tall outputs to the SSD array instead of
	// memory (FlashR-EM vs FlashR-IM in the evaluation).
	EM bool
	// PartRows is the I/O partition height, a power of two
	// (0 = DefaultPartRows).
	PartRows int
	// PcacheBytes bounds a Pcache partition (0 = DefaultPcacheBytes).
	PcacheBytes int
	// SuperParts is how many contiguous I/O partitions form one scheduler
	// super-task at the start of a pass (0 = derived from the SAFS stripe
	// size; the scheduler shrinks to single partitions near the end,
	// §3.3).
	SuperParts int
	// SyncWrites disables the write-behind pipeline and writes tall-output
	// partitions synchronously from the compute workers — the pre-pipeline
	// behavior, kept as a debugging escape hatch and for A/B comparison.
	SyncWrites bool
	// WriteBehindDepth bounds in-flight asynchronous partition writes
	// (0 = 2×Workers clamped to [4, 32]).
	WriteBehindDepth int
	// DisableCSE turns off structural hash-consing entirely: no
	// common-subexpression unification at DAG-build time and no sub-DAG
	// result cache (the ablation knob for the equivalence suites). Because
	// the algebraic rewrite pass relies on canonical signatures (crossprod
	// recognition, re-interning of rewritten nodes), disabling CSE also
	// disables all rewrites.
	DisableCSE bool
	// DisableRewrites turns off the whole algebraic rewrite pass
	// (optimize.go); the per-rule flags below ablate individual rule
	// families while leaving the others on.
	DisableRewrites bool
	// DisableRewriteView disables view push-down (column-selection
	// elimination, composition, and push-down through elementwise chains).
	DisableRewriteView bool
	// DisableRewriteCrossProd disables crossprod self-recognition
	// (t(A)%*%B with structurally identical inputs → the Syrk form).
	DisableRewriteCrossProd bool
	// DisableRewriteAggFold disables aggregation folding (sum-sinks over
	// scalar/constant/row-vector broadcast chains fold into an affine
	// publish transform over the bare reduction).
	DisableRewriteAggFold bool
	// DisableRewriteDCE disables dead-input elimination (column selections
	// over cbind/setcols that provably never observe one input disconnect
	// it).
	DisableRewriteDCE bool
	// ResultCacheBytes bounds the cross-materialize sub-DAG result cache
	// (0 = DefaultResultCacheBytes; negative disables the cache while
	// keeping within-pass CSE unification on).
	ResultCacheBytes int64
	// MaxConcurrentPasses bounds materialization passes running at once on
	// this engine (0 = DefaultMaxConcurrentPasses, negative = 1). Excess
	// passes queue in the admission arbiter: FIFO per owner, round-robin
	// across owners.
	MaxConcurrentPasses int
	// PassMemBudget caps the summed buffer-footprint reservations of
	// concurrently admitted passes, in bytes, against the NUMA chunk pools
	// (0 = unlimited). A pass that would run alone is admitted even when it
	// exceeds the budget, so oversized work degrades to serial execution
	// instead of deadlocking.
	PassMemBudget int64
}

// DefaultMaxConcurrentPasses bounds in-flight passes when
// Config.MaxConcurrentPasses is zero.
const DefaultMaxConcurrentPasses = 4

// Stats counts engine activity.
type Stats struct {
	DAGs      atomic.Int64 // fused passes executed
	Parts     atomic.Int64 // I/O partitions processed
	Chunks    atomic.Int64 // Pcache chunks evaluated
	NodesEval atomic.Int64 // virtual-matrix nodes evaluated (×chunks)
	Passes    atomic.Int64 // total parallel passes (per-op under FuseNone)
}

// Engine materializes FlashR DAGs.
type Engine struct {
	cfg      Config
	stats    Stats
	fileSeq  atomic.Int64
	matSeqMu sync.Mutex

	statsMu  sync.Mutex
	lastMat  MaterializeStats
	totalMat MaterializeStats

	// passSeq numbers every pass for tracing and pprof labels; tracer is the
	// active span collector (nil = tracing off, the zero-cost path).
	passSeq atomic.Int64
	tracer  atomic.Pointer[trace.Tracer]

	metricsOnce sync.Once
	metrics     *trace.Registry

	// arb admits concurrent passes; planMu serializes the (cheap) plan and
	// cache-publication phases of each pass so the intern table, the result
	// cache, and per-Mat store attachment stay coherent while the (long)
	// execution phases overlap freely.
	arb    *passArbiter
	planMu sync.Mutex

	// cons interns structural node signatures (nil when Config.DisableCSE);
	// rcache is the cross-materialize result cache keyed on them (nil when
	// disabled by DisableCSE or a negative ResultCacheBytes).
	cons   *consTable
	rcache *resultCache

	// remote, when set (SetRemoteExecutor), replaces the local execution
	// phase of every pass with a sharded coordinator: planning and
	// publication still run here, so CSE, the result cache, and the rewrite
	// pass behave identically to single-engine execution.
	remote RemoteExecutor

	// testStoreWrap, when set by tests, wraps every tall-output store the
	// engine creates — the injection seam for write-failure coverage.
	testStoreWrap func(matrix.Store) matrix.Store
	// testSchedEvent, when set by tests, observes scheduler events: kind is
	// "prefetch" (async read-ahead issued for partition p) or "process"
	// (compute started on partition p). Called from worker goroutines, so a
	// hook must be safe for concurrent use when Workers > 1.
	testSchedEvent func(kind string, p int)
}

// NewEngine validates the configuration and returns an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Topo == nil {
		cfg.Topo = numa.Default()
	}
	if cfg.PartRows == 0 {
		cfg.PartRows = DefaultPartRows
	}
	if cfg.PartRows <= 0 || cfg.PartRows&(cfg.PartRows-1) != 0 {
		return nil, fmt.Errorf("core: partition rows %d is not a power of two", cfg.PartRows)
	}
	if cfg.PcacheBytes == 0 {
		cfg.PcacheBytes = DefaultPcacheBytes
	}
	if cfg.EM && cfg.FS == nil {
		return nil, fmt.Errorf("core: EM engine requires an SSD array (Config.FS)")
	}
	if cfg.WriteBehindDepth == 0 {
		cfg.WriteBehindDepth = 2 * cfg.Workers
		if cfg.WriteBehindDepth < 4 {
			cfg.WriteBehindDepth = 4
		}
		if cfg.WriteBehindDepth > 32 {
			cfg.WriteBehindDepth = 32
		}
	}
	if cfg.SuperParts == 0 {
		cfg.SuperParts = 4
		if cfg.FS != nil {
			sp := cfg.FS.StripeBytes() / (cfg.PartRows * 8)
			if sp > cfg.SuperParts {
				cfg.SuperParts = sp
			}
			if cfg.SuperParts > 64 {
				cfg.SuperParts = 64
			}
		}
	}
	if cfg.ResultCacheBytes == 0 {
		cfg.ResultCacheBytes = DefaultResultCacheBytes
	}
	if cfg.MaxConcurrentPasses == 0 {
		cfg.MaxConcurrentPasses = DefaultMaxConcurrentPasses
	}
	if cfg.MaxConcurrentPasses < 1 {
		cfg.MaxConcurrentPasses = 1
	}
	if cfg.PassMemBudget > 0 {
		cfg.Topo.SetMemBudget(cfg.PassMemBudget)
	}
	e := &Engine{cfg: cfg}
	e.arb = newPassArbiter(cfg.Topo, cfg.MaxConcurrentPasses)
	if !cfg.DisableCSE {
		e.cons = newConsTable(DefaultConsTableBytes)
		if cfg.ResultCacheBytes > 0 {
			e.rcache = newResultCache(cfg.ResultCacheBytes)
		}
	}
	return e, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats exposes the engine counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// LastMaterializeStats returns the observability record of the most recent
// Materialize call.
func (e *Engine) LastMaterializeStats() MaterializeStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.lastMat
}

// TotalMaterializeStats returns the engine-lifetime accumulation of every
// Materialize call's record. Snapshot before and after a region and Sub the
// two to attribute I/O to it.
func (e *Engine) TotalMaterializeStats() MaterializeStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.totalMat
}

// PartRows returns the engine-wide I/O partition height.
func (e *Engine) PartRows() int { return e.cfg.PartRows }

// NewStore allocates a tall-matrix store on the engine's preferred backend
// (SAFS when EM, memory otherwise), using a blocked layout for matrices
// wider than matrix.BlockCols.
func (e *Engine) NewStore(nrow int64, ncol int) (matrix.Store, error) {
	return e.newStoreOn(nrow, ncol, e.cfg.EM)
}

// NewMemStoreFor allocates an in-memory store with the engine partitioning.
func (e *Engine) NewMemStoreFor(nrow int64, ncol int) (matrix.Store, error) {
	return e.newStoreOn(nrow, ncol, false)
}

func (e *Engine) newStoreOn(nrow int64, ncol int, em bool) (matrix.Store, error) {
	if em {
		name := fmt.Sprintf("mat-%06d", e.fileSeq.Add(1))
		if ncol > matrix.BlockCols {
			nb := matrix.NumBlockCols(ncol)
			blocks := make([]matrix.Store, nb)
			for b := 0; b < nb; b++ {
				st, err := matrix.NewSAFSStore(e.cfg.FS, fmt.Sprintf("%s.b%02d", name, b),
					nrow, matrix.BlockWidth(ncol, b), e.cfg.PartRows)
				if err != nil {
					return nil, err
				}
				blocks[b] = st
			}
			return matrix.NewBlockedStore(blocks)
		}
		return matrix.NewSAFSStore(e.cfg.FS, name, nrow, ncol, e.cfg.PartRows)
	}
	// In-memory matrices stay flat row-major regardless of width: the
	// 32-column block format exists for 2-D partitioning of SSD-resident
	// matrices (column-subset I/O); in memory the zero-copy flat layout
	// wins and the Pcache chunking already provides the cache blocking.
	return matrix.NewMemStore(e.cfg.Topo, nrow, ncol, e.cfg.PartRows, matrix.RowMajor)
}

// Generate creates a materialized tall matrix by filling partitions in
// parallel: fill receives the partition index, its starting row, and a
// row-major rows×ncol buffer to populate. Used by runif.matrix/rnorm.matrix
// and the workload generators.
func (e *Engine) Generate(nrow int64, ncol int, dt matrix.DType, fill func(part int, startRow int64, rows int, buf []float64)) (*Mat, error) {
	st, err := e.NewStore(nrow, ncol)
	if err != nil {
		return nil, err
	}
	nparts := st.NumParts()
	var wg sync.WaitGroup
	var next atomic.Int64
	errs := make([]error, e.cfg.Workers)
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]float64, e.cfg.PartRows*ncol)
			for {
				p := int(next.Add(1) - 1)
				if p >= nparts {
					return
				}
				rows := matrix.PartRowsOf(nrow, e.cfg.PartRows, p)
				start := int64(p) * int64(e.cfg.PartRows)
				fill(p, start, rows, buf[:rows*ncol])
				if err := st.WritePart(p, buf[:rows*ncol]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			st.Free()
			return nil, err
		}
	}
	return NewLeaf(st, dt), nil
}

// FromDense materializes an in-memory dense matrix as a tall leaf.
func (e *Engine) FromDense(d *dense.Dense) (*Mat, error) {
	return e.Generate(int64(d.R), d.C, matrix.F64, func(part int, start int64, rows int, buf []float64) {
		copy(buf, d.Data[int(start)*d.C:(int(start)+rows)*d.C])
	})
}

// ToDense materializes m if needed and gathers it into memory. Intended for
// small results and tests; it is the engine half of R's as.matrix.
func (e *Engine) ToDense(m *Mat) (*dense.Dense, error) {
	if !m.Materialized() {
		if err := e.Materialize([]*Mat{m}, nil); err != nil {
			return nil, err
		}
	}
	st := m.Store()
	out := dense.New(int(m.nrow), m.ncol)
	buf := make([]float64, st.PartRows()*m.ncol)
	for p := 0; p < st.NumParts(); p++ {
		rows := matrix.PartRowsOf(m.nrow, st.PartRows(), p)
		if err := st.ReadPart(p, buf[:rows*m.ncol]); err != nil {
			return nil, err
		}
		copy(out.Data[p*st.PartRows()*m.ncol:], buf[:rows*m.ncol])
	}
	return out, nil
}

// Materialize computes the given tall targets and sinks. All targets must
// share one partition dimension; nodes flagged with SetCache inside the DAG
// are materialized alongside. Under FuseMem/FuseCache the whole DAG runs as
// a single parallel pass over the I/O partitions; under FuseNone every
// operation is materialized separately (§3.5 / Figure 10 "base").
func (e *Engine) Materialize(talls []*Mat, sinks []*Sink) error {
	return e.MaterializeCtx(context.Background(), talls, sinks)
}

// MaterializeCtx is Materialize with cancellation: when ctx is cancelled the
// pass aborts (queued passes withdraw from the admission arbiter), in-flight
// write-behind jobs drain, buffer pools stay consistent, and ctx.Err() is
// returned.
func (e *Engine) MaterializeCtx(ctx context.Context, talls []*Mat, sinks []*Sink) error {
	_, err := e.MaterializePass(ctx, talls, sinks, PassOptions{})
	return err
}

// MaterializePass is the concurrent-session materialization entry point: the
// pass waits for admission (bounded in-flight passes, per-pass memory
// reservation), runs with its SAFS I/O fair-queued under the pass's weight,
// and returns the pass's own observability record — exact per-pass
// attribution even while other passes run on the same engine and array.
func (e *Engine) MaterializePass(ctx context.Context, talls []*Mat, sinks []*Sink, opts PassOptions) (MaterializeStats, error) {
	ms := MaterializeStats{Fuse: e.cfg.Fuse, SyncWrites: e.cfg.SyncWrites, Owner: opts.Owner, Batch: opts.Batch}
	// Drop already-materialized targets.
	var mt []*Mat
	for _, m := range talls {
		if m != nil && !m.Materialized() {
			mt = append(mt, m)
		}
	}
	var sk []*Sink
	for _, s := range sinks {
		if s != nil && !s.Done() {
			sk = append(sk, s)
		}
	}
	if len(mt) == 0 && len(sk) == 0 {
		return ms, nil
	}
	passID := e.passSeq.Add(1)
	pt := e.newPassTrace(passID, opts.Owner, opts.Batch)
	pr := passRun{id: passID, owner: opts.Owner, pt: pt}
	rootSp := pt.rootBuf().Begin(trace.KindPass, passID)
	admitSp := pt.rootBuf().Begin(trace.KindAdmit, passID)
	release, err := e.arb.acquire(ctx, opts.Owner, e.estimatePassBytes(mt, sk))
	if err != nil {
		pt.rootBuf().End(admitSp)
		pt.rootBuf().End(rootSp)
		pt.finish()
		return ms, err
	}
	pt.rootBuf().End(admitSp)
	defer release()
	t0 := time.Now()
	// Label the orchestrating goroutine (workers label themselves) so CPU
	// profiles segment by pass and session owner. context.Background().Done()
	// is nil, so a nil ctx keeps its no-watcher semantics downstream.
	lctx := ctx
	if lctx == nil {
		lctx = context.Background()
	}
	pprof.Do(lctx, pprof.Labels("flashr_pass", strconv.FormatInt(passID, 10), "flashr_owner", opts.Owner),
		func(lctx context.Context) {
			err = e.materialize(lctx, mt, sk, &ms, opts, pr)
		})
	ms.Wall = time.Since(t0)
	e.statsMu.Lock()
	e.lastMat = ms
	e.totalMat.Add(ms)
	e.statsMu.Unlock()
	pt.rootBuf().End(rootSp)
	pt.finish()
	return ms, err
}

// estimatePassBytes approximates a pass's peak buffer footprint for the
// admission reservation: per worker, one I/O partition of every leaf and
// every tall target, plus the write-behind queue's in-flight output
// partitions. The walk is bounded — an estimate feeding a soft admission
// budget does not justify traversing a pathological DAG forever.
func (e *Engine) estimatePassBytes(talls []*Mat, sinks []*Sink) int64 {
	const maxVisit = 1 << 14
	seen := make(map[uint64]bool)
	var leafCols, tallCols int64
	var visit func(m *Mat)
	visit = func(m *Mat) {
		if m == nil || seen[m.id] || len(seen) >= maxVisit {
			return
		}
		seen[m.id] = true
		if m.Materialized() {
			leafCols += int64(m.ncol)
			return
		}
		visit(m.a)
		visit(m.b)
	}
	for _, m := range talls {
		tallCols += int64(m.ncol)
		visit(m)
	}
	for _, s := range sinks {
		visit(s.a)
		visit(s.b)
	}
	perPart := int64(e.cfg.PartRows) * 8
	return perPart * (int64(e.cfg.Workers)*(leafCols+tallCols) +
		int64(e.cfg.WriteBehindDepth)*tallCols)
}

// materialize runs one materialization: cache-serves and CSE-unifies what it
// can, executes the remaining DAG, and (only on a fully successful pass)
// inserts the fresh results into the result cache. The plan phase (intern
// table, cache lookups, DAG construction) and the publication phase (cache
// inserts, duplicate-sink payloads) run under planMu; only the execution
// phase between them overlaps with other passes.
func (e *Engine) materialize(ctx context.Context, mt []*Mat, sk []*Sink, ms *MaterializeStats, opts PassOptions, pr passRun) error {
	lookupSp := pr.pt.rootBuf().Begin(trace.KindCacheLookup, pr.id)
	e.planMu.Lock()
	var sc *sigCtx
	if e.cons != nil {
		// Reset the intern table between passes once it outgrows its budget.
		// Interned ids change across a reset, so the result cache (whose
		// keys embed them) flushes with it.
		if e.cons.overLimit() {
			e.cons.reset()
			if e.rcache != nil {
				e.rcache.flush()
			}
		}
		sc = newSigCtx(e.cons)
	}
	var rwFwd [][2]*Mat
	if sc != nil && !e.cfg.DisableRewrites {
		// Algebraic rewriting runs before any signature is interned for
		// cache lookups, so every key below describes the post-rewrite
		// graph — a cached pre-rewrite result can never be served for a
		// structurally different post-rewrite node, and vice versa. Tall
		// roots are rewritten by substitution: the pass executes the
		// rewritten graph and forwards its store onto the caller's root.
		rwSp := pr.pt.rootBuf().Begin(trace.KindRewrite, pr.id)
		mt, rwFwd = e.rewriteGraphs(mt, sk, sc, ms)
		rwSp.N = ms.Rewrites
		pr.pt.rootBuf().End(rwSp)
	}
	// Serve whole sinks from the result cache, and unify structurally
	// identical sinks within the pass: the canonical one computes, each
	// duplicate receives a copy of its payload after the pass.
	var dupSinks [][2]*Sink
	if sc != nil {
		canon := make(map[uint64]*Sink)
		kept := sk[:0]
		for _, s := range sk {
			kid := sc.sinkID(s)
			if e.rcache != nil {
				if pl, n, ok := e.rcache.lookupSink(sc.epoch, sc.sinkKey(s)); ok {
					// Cached payloads are raw reductions; a folded sink
					// applies its own publish transform on the way out.
					s.publishPayload(s.applyPost(pl))
					ms.CacheHits++
					ms.CacheHitBytes += n
					continue
				}
			}
			if c, ok := canon[kid]; ok {
				dupSinks = append(dupSinks, [2]*Sink{s, c})
				ms.CSEUnifications++
				continue
			}
			canon[kid] = s
			kept = append(kept, s)
		}
		sk = kept
	}
	d, err := e.buildDAG(mt, sk, sc, ms)
	if err != nil {
		e.planMu.Unlock()
		pr.pt.rootBuf().End(lookupSp)
		return err
	}
	if e.rcache != nil && sc != nil {
		// Misses are the cache candidates this pass has to compute.
		ms.CacheMisses += int64(len(d.talls) + len(d.sinks))
	}
	var validateErr error
	run := len(d.talls) > 0 || len(d.sinks) > 0
	if run {
		validateErr = e.validateDAG(d)
	}
	e.planMu.Unlock()
	lookupSp.Bytes, lookupSp.N = ms.CacheHitBytes, ms.CacheHits
	pr.pt.rootBuf().End(lookupSp)
	if validateErr != nil {
		return validateErr
	}
	if run {
		e.stats.DAGs.Add(1)
		if e.remote != nil {
			// Sharded execution: the coordinator row-partitions the residual
			// DAG across its workers and combines their sink partials; no
			// local partition I/O happens on this engine.
			shSp := pr.pt.rootBuf().Begin(trace.KindShard, pr.id)
			rd := &RemoteDAG{NRow: d.nrow, Talls: d.talls, Sinks: d.sinks, Cums: d.cums,
				Owner: opts.Owner, Canon: d.canonOf}
			err = e.remote.RunDAG(ctx, rd, ms)
			shSp.Bytes = ms.ShardBytesSent + ms.ShardBytesRecv
			shSp.N = ms.ShardAggRounds
			pr.pt.rootBuf().End(shSp)
			if err == nil && ms.ShardRecoveries > 0 {
				// Worker recoveries the pass absorbed surface as their own
				// root span so chaos runs are visible in traces.
				rcSp := pr.pt.rootBuf().Begin(trace.KindRecover, pr.id)
				rcSp.N = ms.ShardRecoveries
				pr.pt.rootBuf().End(rcSp)
			}
		} else {
			// The pass identity ties the execution phase's SAFS traffic to
			// this materialization for fair queueing and exact attribution.
			var pass *safs.Pass
			if e.cfg.FS != nil {
				pass = e.cfg.FS.RegisterPass(opts.Weight)
			}
			if e.cfg.Fuse == FuseNone {
				err = e.runUnfused(ctx, d, ms, pass, pr)
			} else {
				err = e.runFused(ctx, d, e.cfg.Fuse, ms, pass, pr)
			}
		}
		if err != nil {
			return err
		}
	}
	pubSp := pr.pt.rootBuf().Begin(trace.KindPublish, pr.id)
	e.planMu.Lock()
	if run && e.rcache != nil && sc != nil {
		e.insertResults(d, sc, ms)
	}
	forwardTallStores(rwFwd)
	for _, pair := range dupSinks {
		// Duplicates share the canonical sink's raw reduction but publish
		// through their own folded transform (signatures exclude it, so two
		// sinks differing only in folded scalars unify here).
		pair[0].publishPayload(pair[0].applyPost(pair[1].rawPayload()))
	}
	e.planMu.Unlock()
	pr.pt.rootBuf().End(pubSp)
	return nil
}

// insertResults records a successful pass's tall-target stores and sink
// payloads in the result cache under their pre-pass structural keys.
func (e *Engine) insertResults(d *dag, sc *sigCtx, ms *MaterializeStats) {
	for _, m := range d.talls {
		key, ok := sc.keys[m]
		if !ok {
			continue
		}
		st := m.Store()
		if st == nil {
			continue
		}
		rst, isRef := st.(*refStore)
		if !isRef {
			// Wrap so the cache and the Mat share the store refcounted.
			rst = newRefStore(st)
			m.swapStore(rst)
		}
		ms.CacheEvictions += int64(e.rcache.insertTall(sc.epoch, key, rst, m.nrow, m.ncol, sc.depsOf(m)))
	}
	for _, s := range d.sinks {
		key, ok := sc.sinkKeys[s]
		if !ok {
			continue
		}
		ms.CacheEvictions += int64(e.rcache.insertSink(sc.epoch, key, s.rawPayload(), sc.sinkDepsOf(s)))
	}
}

// NoteMutation records an in-place mutation of m's data: it bumps the
// node's content version (changing every signature built over it) and drops
// every cached result that depends on it.
func (e *Engine) NoteMutation(m *Mat) {
	m.NoteMutated()
	if e.rcache != nil {
		e.rcache.invalidateDep(m.id)
	}
}

// FlushResultCache drops every cached sub-DAG result and releases its
// storage references (session close).
func (e *Engine) FlushResultCache() {
	if e.rcache != nil {
		e.rcache.flush()
	}
}

// ResultCacheStats returns the result cache's entry count and resident
// bytes (zero when the cache is disabled).
func (e *Engine) ResultCacheStats() (entries int, bytes int64) {
	if e.rcache == nil {
		return 0, 0
	}
	return e.rcache.stats()
}

// SetElement writes one element of a materialized tall matrix in place —
// the engine half of R's x[i, j] <- v. A store shared with the result cache
// is privatized (copied) first so cached results keep their bit-exact
// values, then the mutation is recorded so no cached result built over the
// old contents can be served again.
func (e *Engine) SetElement(m *Mat, i int64, j int, v float64) error {
	if i < 0 || i >= m.nrow || j < 0 || j >= m.ncol {
		return fmt.Errorf("core: SetElement (%d,%d) out of %dx%d", i, j, m.nrow, m.ncol)
	}
	st := m.Store()
	if st == nil {
		return fmt.Errorf("core: SetElement on virtual matrix %d (materialize first)", m.id)
	}
	if rst, ok := st.(*refStore); ok {
		priv, err := e.copyStore(rst)
		if err != nil {
			return err
		}
		m.swapStore(priv)
		rst.Free()
		st = priv
	}
	p := int(i / int64(e.cfg.PartRows))
	rows := matrix.PartRowsOf(m.nrow, e.cfg.PartRows, p)
	buf := make([]float64, rows*m.ncol)
	if err := st.ReadPart(p, buf); err != nil {
		return err
	}
	r := int(i - int64(p)*int64(e.cfg.PartRows))
	buf[r*m.ncol+j] = v
	if err := st.WritePart(p, buf); err != nil {
		return err
	}
	e.NoteMutation(m)
	return nil
}

// copyStore clones a store partition-by-partition onto the engine's
// preferred backend (copy-on-write for cache-shared stores).
func (e *Engine) copyStore(src matrix.Store) (matrix.Store, error) {
	dst, err := e.NewStore(src.NRow(), src.NCol())
	if err != nil {
		return nil, err
	}
	buf := make([]float64, src.PartRows()*src.NCol())
	for p := 0; p < src.NumParts(); p++ {
		rows := matrix.PartRowsOf(src.NRow(), src.PartRows(), p)
		if err := src.ReadPart(p, buf[:rows*src.NCol()]); err != nil {
			dst.Free()
			return nil, err
		}
		if err := dst.WritePart(p, buf[:rows*src.NCol()]); err != nil {
			dst.Free()
			return nil, err
		}
	}
	return dst, nil
}

// dag is the collected graph for one materialization, flattened into an
// execution plan: every node gets a dense slot index so the per-chunk hot
// path runs on arrays instead of hash maps.
type dag struct {
	talls []*Mat  // tall materialization targets (incl. cache-flagged nodes)
	sinks []*Sink // sink targets
	nodes []*Mat  // every reachable Mat, leaves included, in topo order (inputs first)
	nrow  int64
	cums  []*Mat // opCumCol nodes in the DAG

	slotOf    map[uint64]int // node id → slot (== index into nodes)
	aSlot     []int          // slot of input a per node (-1 if none)
	bSlot     []int          // slot of input b per node (-1 if none)
	refs      []int32        // consumer count per node
	tallSlots []int          // slot per tall target
	sinkASlot []int          // slot of each sink's a input
	sinkBSlot []int          // slot of each sink's b input (-1 if none)
}

// canonOf resolves a node to its execution representative: a CSE-unified
// duplicate shares the slot of the first structurally identical node, and
// that first node is the one that executes (and, for cum.col, publishes
// carries). Nodes the plan never unified map to themselves.
func (d *dag) canonOf(m *Mat) *Mat {
	if slot, ok := d.slotOf[m.id]; ok && slot >= 0 && slot < len(d.nodes) {
		return d.nodes[slot]
	}
	return m
}

// buildDAG walks the graph from the targets, collecting nodes in topological
// order, assigning slot indices, and counting consumers per node. With a
// signature context it also (a) serves whole subtrees from the result cache
// by attaching the cached store to the subtree root, and (b) unifies
// structurally identical nodes within the pass onto one execution slot.
func (e *Engine) buildDAG(talls []*Mat, sinks []*Sink, sc *sigCtx, ms *MaterializeStats) (*dag, error) {
	d := &dag{slotOf: make(map[uint64]int)}
	// consSlot maps an interned structural id to the slot of the first node
	// carrying it: later nodes with the same id reuse that slot.
	consSlot := make(map[uint64]int)
	var visit func(m *Mat) error
	visit = func(m *Mat) error {
		if m == nil {
			return nil
		}
		if _, ok := d.slotOf[m.id]; ok {
			return nil
		}
		if sc != nil && e.rcache != nil && !m.Materialized() && m.kind != opLeaf && m.kind != opConst {
			// The key is computed before any attach below so it reflects the
			// node's structural (interior) form.
			key := sc.keyOf(m)
			if st, n, ok := e.rcache.lookupTall(sc.epoch, key, m.nrow, m.ncol); ok {
				if m.attachStore(st) {
					ms.CacheHits++
					ms.CacheHitBytes += n
				} else {
					st.Free() // lost the race: drop the retained reference
				}
			}
		}
		// Mark before recursion; inputs carry distinct ids so the
		// placeholder value is fixed up right after.
		d.slotOf[m.id] = -1
		if !m.Materialized() {
			if err := visit(m.a); err != nil {
				return err
			}
			if err := visit(m.b); err != nil {
				return err
			}
			m.mu.Lock()
			cached := m.cache
			m.mu.Unlock()
			if cached {
				d.talls = append(d.talls, m)
			}
			if sc != nil && m.kind != opLeaf {
				id := sc.idOf(m)
				if slot, ok := consSlot[id]; ok {
					// Structurally identical to an earlier node: share its
					// slot and don't schedule a second evaluation. A
					// cache-flagged duplicate keeps its own store (appended
					// to d.talls above), fed from the shared slot.
					d.slotOf[m.id] = slot
					ms.CSEUnifications++
					return nil
				}
				consSlot[id] = len(d.nodes)
			}
			// Register cumCol coordination only for nodes that will actually
			// execute: a unified duplicate never publishes carries.
			if m.kind == opCumCol {
				d.cums = append(d.cums, m)
			}
		}
		d.slotOf[m.id] = len(d.nodes)
		d.nodes = append(d.nodes, m)
		return nil
	}
	for _, m := range talls {
		if err := visit(m); err != nil {
			return nil, err
		}
		d.talls = append(d.talls, m)
	}
	for _, s := range sinks {
		if err := visit(s.a); err != nil {
			return nil, err
		}
		if err := visit(s.b); err != nil {
			return nil, err
		}
		d.sinks = append(d.sinks, s)
	}
	// Dedup talls (a node may be both explicit target and cache-flagged).
	dedup := d.talls[:0]
	seenT := map[uint64]bool{}
	for _, m := range d.talls {
		if !seenT[m.id] && !m.Materialized() {
			seenT[m.id] = true
			dedup = append(dedup, m)
		}
	}
	d.talls = dedup
	// Flatten to the execution plan.
	n := len(d.nodes)
	d.aSlot = make([]int, n)
	d.bSlot = make([]int, n)
	d.refs = make([]int32, n)
	for i, m := range d.nodes {
		d.aSlot[i], d.bSlot[i] = -1, -1
		if m.Materialized() {
			continue
		}
		if m.a != nil {
			s := d.slotOf[m.a.id]
			d.aSlot[i] = s
			d.refs[s]++
		}
		if m.b != nil {
			s := d.slotOf[m.b.id]
			d.bSlot[i] = s
			d.refs[s]++
		}
	}
	for _, s := range d.sinks {
		sa := d.slotOf[s.a.id]
		d.refs[sa]++
		d.sinkASlot = append(d.sinkASlot, sa)
		if s.b != nil {
			sb := d.slotOf[s.b.id]
			d.refs[sb]++
			d.sinkBSlot = append(d.sinkBSlot, sb)
		} else {
			d.sinkBSlot = append(d.sinkBSlot, -1)
		}
	}
	for _, m := range d.talls {
		slot := d.slotOf[m.id]
		d.refs[slot]++
		d.tallSlots = append(d.tallSlots, slot)
	}
	return d, nil
}

// validateDAG checks the single-partition-dimension invariant (§3.5: "all
// matrices in a DAG except sink matrices share the same partition dimension
// and the same I/O partition size").
func (e *Engine) validateDAG(d *dag) error {
	d.nrow = -1
	for _, m := range d.nodes {
		if d.nrow == -1 {
			d.nrow = m.nrow
		}
		if m.nrow != d.nrow {
			return fmt.Errorf("core: DAG mixes partition dimensions %d and %d", d.nrow, m.nrow)
		}
		if st := m.Store(); st != nil && st.PartRows() != e.cfg.PartRows {
			return fmt.Errorf("core: leaf %d has partition height %d, engine uses %d",
				m.id, st.PartRows(), e.cfg.PartRows)
		}
	}
	if d.nrow < 0 {
		return fmt.Errorf("core: empty DAG")
	}
	return nil
}

// runUnfused materializes every non-leaf node separately in topological
// order, then evaluates sinks over materialized inputs — one parallel pass
// and one intermediate matrix per operation.
func (e *Engine) runUnfused(ctx context.Context, d *dag, ms *MaterializeStats, pass *safs.Pass, pr passRun) error {
	for _, m := range d.nodes {
		if m.Materialized() || m.kind == opConst {
			continue
		}
		sd, err := e.buildDAG([]*Mat{m}, nil, nil, ms)
		if err != nil {
			return err
		}
		sd.nrow = d.nrow
		if err := e.runFused(ctx, sd, FuseMem, ms, pass, pr); err != nil {
			return err
		}
	}
	// Every aggregation materializes in its own pass too ("Spark
	// materializes operations such as aggregation separately", §4.3).
	for _, s := range d.sinks {
		sd, err := e.buildDAG(nil, []*Sink{s}, nil, ms)
		if err != nil {
			return err
		}
		sd.nrow = d.nrow
		if err := e.runFused(ctx, sd, FuseMem, ms, pass, pr); err != nil {
			return err
		}
	}
	return nil
}
