package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/matrix"
	"repro/internal/numa"
	"repro/internal/safs"
)

// refEval is a tiny reference interpreter for random GenOp expressions; the
// property tests below build random DAGs and check that every fusion level
// and worker count computes exactly what the reference computes.
type exprCase struct {
	build func(a, b *Mat) *Mat
	ref   func(a, b *dense.Dense) *dense.Dense
	name  string
}

func exprCases() []exprCase {
	return []exprCase{
		{
			name:  "sapply-chain",
			build: func(a, _ *Mat) *Mat { return Sapply(Sapply(a, UnaryAbs), UnarySqrt) },
			ref: func(a, _ *dense.Dense) *dense.Dense {
				return a.Apply(func(v float64) float64 { return math.Sqrt(math.Abs(v)) })
			},
		},
		{
			name:  "mapply-mix",
			build: func(a, b *Mat) *Mat { return Mapply(Mapply(a, b, BinMul), a, BinAdd) },
			ref: func(a, b *dense.Dense) *dense.Dense {
				return dense.Add(dense.MulElem(a, b), a)
			},
		},
		{
			name: "scalar-and-compare",
			build: func(a, b *Mat) *Mat {
				return Mapply(MapplyScalar(a, 0.3, BinGt, false), Sapply(b, UnarySign), BinPmax)
			},
			ref: func(a, b *dense.Dense) *dense.Dense {
				out := dense.New(a.R, a.C)
				for i := range out.Data {
					l := 0.0
					if a.Data[i] > 0.3 {
						l = 1
					}
					s := 0.0
					if b.Data[i] > 0 {
						s = 1
					} else if b.Data[i] < 0 {
						s = -1
					}
					out.Data[i] = math.Max(l, s)
				}
				return out
			},
		},
		{
			name:  "cumcol-of-mapply",
			build: func(a, b *Mat) *Mat { return CumCol(Mapply(a, b, BinAdd), AggSum) },
			ref: func(a, b *dense.Dense) *dense.Dense {
				sum := dense.Add(a, b)
				out := dense.New(a.R, a.C)
				run := make([]float64, a.C)
				for i := 0; i < a.R; i++ {
					for j := 0; j < a.C; j++ {
						run[j] += sum.At(i, j)
						out.Set(i, j, run[j])
					}
				}
				return out
			},
		},
		{
			name:  "aggrow-of-cbind",
			build: func(a, b *Mat) *Mat { return AggRow(Cbind2(a, b), AggMax) },
			ref: func(a, b *dense.Dense) *dense.Dense {
				out := dense.New(a.R, 1)
				for i := 0; i < a.R; i++ {
					m := math.Inf(-1)
					for _, v := range a.Row(i) {
						m = math.Max(m, v)
					}
					for _, v := range b.Row(i) {
						m = math.Max(m, v)
					}
					out.Data[i] = m
				}
				return out
			},
		},
	}
}

// TestRandomDAGEquivalence: random shapes, random data, every fusion level,
// random worker counts — results must match the reference bit-for-bit (the
// expressions avoid reassociation).
func TestRandomDAGEquivalence(t *testing.T) {
	cases := exprCases()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(100 + rng.Intn(3000))
		p := 1 + rng.Intn(6)
		ad := dense.New(int(n), p)
		bd := dense.New(int(n), p)
		for i := range ad.Data {
			ad.Data[i] = rng.NormFloat64()
			bd.Data[i] = rng.NormFloat64()
		}
		cse := cases[rng.Intn(len(cases))]
		want := cse.ref(ad, bd)
		for _, fuse := range []FuseLevel{FuseCache, FuseMem, FuseNone} {
			e, err := NewEngine(Config{
				Workers:  1 + rng.Intn(5),
				Fuse:     fuse,
				PartRows: 256,
				Topo:     numa.NewTopology(1+rng.Intn(3), 1<<15),
			})
			if err != nil {
				t.Fatal(err)
			}
			a, err := e.FromDense(ad)
			if err != nil {
				t.Fatal(err)
			}
			b, err := e.FromDense(bd)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.ToDense(cse.build(a, b))
			if err != nil {
				t.Fatalf("%s/%v: %v", cse.name, fuse, err)
			}
			if !dense.Equalish(got, want, 0) {
				t.Logf("case %s fuse %v seed %d differs", cse.name, fuse, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSinkEquivalenceUnderWorkers: per-thread partial aggregation and the
// final combine must be insensitive to the worker count.
func TestSinkEquivalenceUnderWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n, p, k = 3000, 4, 5
	ad := dense.New(n, p)
	ld := dense.New(n, 1)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
	}
	for i := range ld.Data {
		ld.Data[i] = float64(rng.Intn(k))
	}
	var ref *dense.Dense
	for _, workers := range []int{1, 2, 3, 7} {
		e, err := NewEngine(Config{Workers: workers, PartRows: 256})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := e.FromDense(ad)
		l, _ := e.FromDense(ld)
		g := GroupByRow(a, l, k, AggSum)
		if err := e.Materialize(nil, []*Sink{g}); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = g.Result()
			continue
		}
		if !dense.Equalish(g.Result(), ref, 1e-12) {
			t.Fatalf("groupby differs at %d workers", workers)
		}
	}
}

// failingStore wraps a Store and fails reads on one partition.
type failingStore struct {
	matrix.Store
	failPart int
}

func (f *failingStore) ReadPart(i int, dst []float64) error {
	if i == f.failPart {
		return fmt.Errorf("injected read failure on partition %d", i)
	}
	return f.Store.ReadPart(i, dst)
}

// TestLeafReadErrorPropagates: an I/O error inside a worker must fail the
// materialization cleanly (no hang, no partial sink results).
func TestLeafReadErrorPropagates(t *testing.T) {
	e, err := NewEngine(Config{Workers: 3, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	ad := dense.New(2000, 3)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
	}
	leaf, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	bad := NewLeaf(&failingStore{Store: leaf.Store(), failPart: 4}, matrix.F64)
	s := Agg(Sapply(bad, UnarySquare), AggSum)
	if err := e.Materialize(nil, []*Sink{s}); err == nil {
		t.Fatal("materialization with failing store succeeded")
	}
	if s.Done() {
		t.Fatal("sink marked done after failed pass")
	}
}

// TestCumErrorDoesNotDeadlock: a failure while cumulative carries are in
// flight must wake waiting workers.
func TestCumErrorDoesNotDeadlock(t *testing.T) {
	e, err := NewEngine(Config{Workers: 4, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	ad := dense.New(4000, 2)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
	}
	leaf, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	bad := NewLeaf(&failingStore{Store: leaf.Store(), failPart: 7}, matrix.F64)
	cc := CumCol(bad, AggSum)
	done := make(chan error, 1)
	go func() { done <- e.Materialize([]*Mat{cc}, nil) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected failure")
		}
	case <-timeoutC(t):
		t.Fatal("cumulative materialization deadlocked on error")
	}
}

func timeoutC(t *testing.T) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		// Generous bound; the failure path should return in milliseconds.
		for i := 0; i < 100; i++ {
			if t.Failed() {
				return
			}
			sleepMs(100)
		}
	}()
	return ch
}

// TestBuildTasks checks the scheduler's dispatch shape: big sequential
// super-tasks first, single partitions at the tail (§3.3).
func TestBuildTasks(t *testing.T) {
	tasks := buildTasks(100, 8, 4)
	if len(tasks) == 0 {
		t.Fatal("no tasks")
	}
	// Coverage exactly [0,100) in order.
	next := 0
	singlesAtEnd := true
	seenSingle := false
	for _, tr := range tasks {
		if tr.lo != next {
			t.Fatalf("gap at %d", tr.lo)
		}
		next = tr.hi
		if tr.hi-tr.lo == 1 {
			seenSingle = true
		} else if seenSingle {
			singlesAtEnd = false
		}
	}
	if next != 100 {
		t.Fatalf("covered up to %d", next)
	}
	if !seenSingle || !singlesAtEnd {
		t.Fatal("tail must be dispatched as single partitions")
	}
	// Degenerate cases.
	if got := buildTasks(3, 8, 4); len(got) != 3 {
		t.Fatalf("tiny pass tasks %v", got)
	}
	if got := buildTasks(1, 1, 1); len(got) != 1 || got[0] != (taskRange{0, 1}) {
		t.Fatalf("single task %v", got)
	}
}

// TestEngineStatsAdvance sanity-checks the counters the ablation benches
// rely on: FuseNone uses more passes than FuseCache for the same DAG.
func TestEngineStatsAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ad := dense.New(2000, 3)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
	}
	passes := map[FuseLevel]int64{}
	for _, fuse := range []FuseLevel{FuseCache, FuseNone} {
		e, err := NewEngine(Config{Workers: 2, Fuse: fuse, PartRows: 256})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := e.FromDense(ad)
		s := Agg(Sapply(Sapply(Mapply(a, a, BinMul), UnarySqrt), UnaryExp), AggSum)
		if err := e.Materialize(nil, []*Sink{s}); err != nil {
			t.Fatal(err)
		}
		passes[fuse] = e.Stats().Passes.Load() - 1 // exclude FromDense? Generate doesn't count passes
	}
	if passes[FuseNone] <= passes[FuseCache] {
		t.Fatalf("FuseNone passes %d not greater than FuseCache %d", passes[FuseNone], passes[FuseCache])
	}
}

// TestZeroCopyLeafIntegrity: engine passes must not mutate in-memory leaf
// data through the zero-copy read path.
func TestZeroCopyLeafIntegrity(t *testing.T) {
	e, err := NewEngine(Config{Workers: 2, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	ad := dense.New(1500, 3)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
	}
	a, _ := e.FromDense(ad)
	before, err := e.ToDense(a)
	if err != nil {
		t.Fatal(err)
	}
	out := Sapply(Mapply(a, a, BinAdd), UnaryExp)
	if _, err := e.ToDense(out); err != nil {
		t.Fatal(err)
	}
	after, err := e.ToDense(a)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equalish(before, after, 0) {
		t.Fatal("leaf data mutated by fused pass")
	}
}

func sleepMs(ms int) { timeSleep(ms) }

// TestSetCacheToSSD: set.cache(em=TRUE) must place the cached intermediate
// on the SSD array when one is attached, and fall back to memory when not.
func TestSetCacheToSSD(t *testing.T) {
	fs, err := safs.OpenTempDir(t.TempDir(), 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	e, err := NewEngine(Config{Workers: 2, PartRows: 256, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	ad := dense.New(1000, 2)
	for i := range ad.Data {
		ad.Data[i] = rng.NormFloat64()
	}
	a, _ := e.FromDense(ad)
	mid := Sapply(a, UnarySquare)
	mid.SetCache(true)
	s := Agg(mid, AggSum)
	if err := e.Materialize(nil, []*Sink{s}); err != nil {
		t.Fatal(err)
	}
	if got := mid.Store().Kind(); got != "safs" {
		t.Fatalf("cached store kind %q, want safs", got)
	}
	// Without an array, em=TRUE degrades to a memory cache, not a crash.
	e2, err := NewEngine(Config{Workers: 2, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := e2.FromDense(ad)
	mid2 := Sapply(a2, UnarySquare)
	mid2.SetCache(true)
	s2 := Agg(mid2, AggSum)
	if err := e2.Materialize(nil, []*Sink{s2}); err != nil {
		t.Fatal(err)
	}
	if got := mid2.Store().Kind(); got != "mem" {
		t.Fatalf("fallback cache kind %q, want mem", got)
	}
	if s.Result().At(0, 0) != s2.Result().At(0, 0) {
		t.Fatal("results differ between cache placements")
	}
}
