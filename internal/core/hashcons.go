package core

// Structural hash-consing for DAG nodes. Every lazy node gets a canonical
// content signature — op kind, scalar arguments (by float bit pattern),
// function identities, shape metadata, and the interned signatures of its
// children — so that structurally identical sub-expressions can be detected
// in O(1) per node. Two uses:
//
//   - common-subexpression elimination at DAG-build time: equal-signature
//     nodes within one pass share a single execution slot (§3.4's DAG
//     growing, extended with deduplication);
//   - the cross-materialize result cache (cache.go): signatures key cached
//     sub-DAG results so iterative algorithms rebuild structurally identical
//     subtrees for free.
//
// The 64-bit hash only selects the intern-table bucket; equality is always
// decided by full key comparison inside the bucket's collision chain, so a
// hash collision can never unify distinct structures.

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// funcIDs assigns stable process-lifetime identifiers to the Unary/Binary/
// AggFunc objects signatures reference. Identity is pointer identity — two
// functions with the same R name but different code must never unify — and
// the map retains its keys, so a function's address can never be reused for
// a different function while its id is live in a signature.
var funcIDs struct {
	mu   sync.Mutex
	next uint64
	ids  map[any]uint64
}

func funcID(f any) uint64 {
	switch v := f.(type) {
	case *Unary:
		if v == nil {
			return 0
		}
	case *Binary:
		if v == nil {
			return 0
		}
	case *AggFunc:
		if v == nil {
			return 0
		}
	case nil:
		return 0
	}
	funcIDs.mu.Lock()
	defer funcIDs.mu.Unlock()
	if funcIDs.ids == nil {
		funcIDs.ids = make(map[any]uint64)
	}
	if id, ok := funcIDs.ids[f]; ok {
		return id
	}
	funcIDs.next++
	funcIDs.ids[f] = funcIDs.next
	return funcIDs.next
}

// DefaultConsTableBytes bounds the intern table's retained key bytes before
// it resets (resetting also flushes the result cache, whose keys embed
// interned child ids of the retiring epoch).
const DefaultConsTableBytes = 64 << 20

type consEntry struct {
	key string
	id  uint64
}

// consTable interns structural keys: equal keys get equal ids, distinct keys
// distinct ids. Buckets are keyed by a 64-bit FNV hash; membership within a
// bucket is decided by comparing the full key strings.
type consTable struct {
	mu       sync.Mutex
	byHash   map[uint64][]consEntry
	nextID   uint64
	bytes    int64
	maxBytes int64
	epoch    uint64
	// testHash, when set by tests, replaces the bucket hash — forcing every
	// key into one bucket proves unification never trusts the hash alone.
	testHash func(string) uint64
}

func newConsTable(maxBytes int64) *consTable {
	if maxBytes <= 0 {
		maxBytes = DefaultConsTableBytes
	}
	return &consTable{byHash: make(map[uint64][]consEntry), maxBytes: maxBytes}
}

func (t *consTable) hash(key string) uint64 {
	if t.testHash != nil {
		return t.testHash(key)
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// intern returns the canonical id of key: equal keys map to equal ids.
func (t *consTable) intern(key string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.hash(key)
	for _, e := range t.byHash[h] {
		if e.key == key {
			return e.id
		}
	}
	t.nextID++
	t.byHash[h] = append(t.byHash[h], consEntry{key: key, id: t.nextID})
	t.bytes += int64(len(key)) + 48
	return t.nextID
}

func (t *consTable) overLimit() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes > t.maxBytes
}

// reset drops every interned key and advances the epoch. Ids interned before
// a reset are not comparable with ids interned after, so the caller flushes
// any cache keyed on them. Only called between passes.
func (t *consTable) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.byHash = make(map[uint64][]consEntry)
	t.bytes = 0
	t.epoch++
}

func (t *consTable) epochNow() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// sigCtx computes canonical signatures for the nodes of one materialization
// call. Signatures are memoized per node pointer; because a node's contents
// cannot change during the pass (mutation APIs run between passes), the memo
// is a consistent snapshot even for nodes that become materialized mid-call.
type sigCtx struct {
	t        *consTable
	epoch    uint64
	ids      map[*Mat]uint64
	keys     map[*Mat]string
	sinkKeys map[*Sink]string
	// leafForm records nodes whose signature took identity form (leaf,
	// materialized, or mutated): the version-carrying dependencies of every
	// signature built above them.
	leafForm map[*Mat]bool
}

func newSigCtx(t *consTable) *sigCtx {
	return &sigCtx{
		t:        t,
		epoch:    t.epochNow(),
		ids:      make(map[*Mat]uint64),
		keys:     make(map[*Mat]string),
		sinkKeys: make(map[*Sink]string),
		leafForm: make(map[*Mat]bool),
	}
}

// idOf interns m's signature and returns the canonical id: nodes with equal
// ids are structurally identical (same ops, same parameters, same leaves at
// the same content versions).
func (c *sigCtx) idOf(m *Mat) uint64 {
	if id, ok := c.ids[m]; ok {
		return id
	}
	id := c.t.intern(c.keyOf(m))
	c.ids[m] = id
	return id
}

// keyOf builds m's structural key. Interior nodes encode their op and
// parameters plus the interned ids of their children (keeping keys O(node),
// not O(subtree), even for diamond-shaped DAGs); leaves, materialized nodes
// and mutated nodes take identity form keyed by (node id, content version).
func (c *sigCtx) keyOf(m *Mat) string {
	if k, ok := c.keys[m]; ok {
		return k
	}
	var b strings.Builder
	switch {
	case m.kind == opConst:
		fmt.Fprintf(&b, "C:%d:%d:%016x", m.nrow, m.ncol, math.Float64bits(m.vec[0]))
	case m.kind == opLeaf || m.Materialized() || m.isMutated():
		c.leafForm[m] = true
		fmt.Fprintf(&b, "L:%d@%d", m.id, m.contentVer())
	default:
		var aid, bid uint64
		if m.a != nil {
			aid = c.idOf(m.a)
		}
		if m.b != nil {
			bid = c.idOf(m.b)
		}
		fmt.Fprintf(&b, "%d:%d:%d|%d,%d", int(m.kind), m.ncol, int(m.dt), aid, bid)
		switch m.kind {
		case opSapply:
			fmt.Fprintf(&b, "|u=%d", funcID(m.un))
		case opMapplyMM:
			fmt.Fprintf(&b, "|f=%d", funcID(m.bin))
		case opMapplyScalar:
			fmt.Fprintf(&b, "|f=%d:s=%016x:l=%t", funcID(m.bin), math.Float64bits(m.scalar), m.scalarLeft)
		case opMapplyRowVec:
			fmt.Fprintf(&b, "|f=%d:l=%t:v=", funcID(m.bin), m.vecLeft)
			writeFloatBits(&b, m.vec)
		case opMapplyColVec:
			fmt.Fprintf(&b, "|f=%d:l=%t", funcID(m.bin), m.vecLeft)
		case opInnerProd:
			// The small operand is keyed by full contents (bit patterns):
			// in-place edits to the dense between materializations change
			// the key, so stale matches are structurally impossible.
			fmt.Fprintf(&b, "|f1=%d:f2=%d:B=%dx%d:", funcID(m.f1), funcID(m.f2), m.small.R, m.small.C)
			writeFloatBits(&b, m.small.Data)
		case opAggRow:
			fmt.Fprintf(&b, "|g=%d:arg=%d", funcID(m.agg), int(m.arg))
		case opGroupByCol:
			fmt.Fprintf(&b, "|g=%d:k=%d:lab=%v", funcID(m.agg), m.groupK, m.colLabels)
		case opCumRow, opCumCol:
			fmt.Fprintf(&b, "|g=%d", funcID(m.agg))
			if m.kind == opCumCol && m.vec != nil {
				// Carry-seeded cum.col (shard workers): the entering
				// accumulator is part of the structure — the same scan under a
				// different carry computes different values.
				b.WriteString(":c=")
				writeFloatBits(&b, m.vec)
			}
		case opCols, opSetCols:
			fmt.Fprintf(&b, "|c=%v", m.cols)
		}
	}
	k := b.String()
	c.keys[m] = k
	return k
}

// sinkID interns the signature of a sink GenOp.
func (c *sigCtx) sinkID(s *Sink) uint64 {
	return c.t.intern(c.sinkKey(s))
}

// sinkKey builds a sink's structural key. The crossprod kernel choice
// depends on operand object identity (Syrk for t(A)%*%A, GemmTA otherwise),
// so that identity bit is part of the key: a cached Syrk result is never
// served where the GemmTA path would have run, keeping results bit-identical
// to recomputation.
func (c *sigCtx) sinkKey(s *Sink) string {
	if k, ok := c.sinkKeys[s]; ok {
		return k
	}
	aid := c.idOf(s.a)
	var bid uint64
	self := 0
	if s.b != nil {
		bid = c.idOf(s.b)
		if s.a == s.b {
			self = 1
		}
	}
	k := fmt.Sprintf("S:%d:g=%d:f1=%d:f2=%d:k=%d:self=%d|%d,%d",
		int(s.kind), funcID(s.agg), funcID(s.f1), funcID(s.f2), s.k, self, aid, bid)
	c.sinkKeys[s] = k
	return k
}

func writeFloatBits(b *strings.Builder, xs []float64) {
	for _, v := range xs {
		fmt.Fprintf(b, "%016x,", math.Float64bits(v))
	}
}

// depsOf collects the ids of the identity-form nodes m's signature was built
// over — the version-carrying leaves a cached result depends on, indexed for
// explicit invalidation on mutation.
func (c *sigCtx) depsOf(m *Mat) []uint64 {
	var deps []uint64
	seen := make(map[uint64]bool)
	var walk func(*Mat)
	walk = func(m *Mat) {
		if m == nil || seen[m.id] {
			return
		}
		seen[m.id] = true
		if c.leafForm[m] {
			deps = append(deps, m.id)
			return
		}
		if m.kind == opConst {
			return
		}
		walk(m.a)
		walk(m.b)
	}
	walk(m)
	return deps
}

// sinkDepsOf is depsOf over a sink's inputs.
func (c *sigCtx) sinkDepsOf(s *Sink) []uint64 {
	deps := c.depsOf(s.a)
	if s.b != nil && s.b != s.a {
		for _, id := range c.depsOf(s.b) {
			dup := false
			for _, d := range deps {
				if d == id {
					dup = true
					break
				}
			}
			if !dup {
				deps = append(deps, id)
			}
		}
	}
	return deps
}

// refStore shares one materialized store between the result cache and any
// number of Mats (cache hits attach the same physical store to fresh nodes).
// Free releases one reference; the wrapped store is freed when the last
// reference goes, so neither side can pull the data out from under the
// other.
type refStore struct {
	matrix.Store
	refs atomic.Int32
}

func newRefStore(st matrix.Store) *refStore {
	r := &refStore{Store: st}
	r.refs.Store(1)
	return r
}

func (r *refStore) retain() { r.refs.Add(1) }

func (r *refStore) Free() error {
	if r.refs.Add(-1) > 0 {
		return nil
	}
	return r.Store.Free()
}

// unwrapStore strips the sharing wrapper for backend-specific fast paths
// (SAFS async prefetch, MemStore zero-copy partition references).
func unwrapStore(st matrix.Store) matrix.Store {
	if r, ok := st.(*refStore); ok {
		return r.Store
	}
	return st
}
