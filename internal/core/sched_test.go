package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dense"
	"repro/internal/matrix"
	"repro/internal/safs"
)

// TestBuildTasksCoverage: for any (nparts, super, workers) — including the
// degenerate and hostile corners — the dispatch units must cover [0, nparts)
// exactly once, stay in bounds, and place every super-task strictly before
// every single. A negative workers count used to make the tail reservation
// negative and extend super ranges past nparts.
func TestBuildTasksCoverage(t *testing.T) {
	cases := []struct{ nparts, super, workers int }{
		{0, 4, 2},    // empty pass
		{4, 2, -1},   // negative workers (the out-of-bounds regression)
		{4, 2, 0},    // zero workers
		{10, 4, 1},   // non-divisible remainder
		{3, 8, 2},    // super > nparts
		{5, 2, 4},    // nparts < workers*super
		{1, 1, 1},    // single partition
		{16, 4, 4},   // exact division
		{13, 5, 3},   // everything ragged
		{7, 0, 3},    // zero super
		{64, 2, 8},   // larger pass
		{-3, 2, 2},   // negative nparts
		{6, -2, -2},  // all negative
		{100, 7, 13}, // mutually prime
	}
	for _, tc := range cases {
		name := fmt.Sprintf("n%d_s%d_w%d", tc.nparts, tc.super, tc.workers)
		t.Run(name, func(t *testing.T) {
			tasks := buildTasks(tc.nparts, tc.super, tc.workers)
			n := tc.nparts
			if n < 0 {
				n = 0
			}
			seen := make([]bool, n)
			sawSingle := false
			for _, tr := range tasks {
				if tr.lo >= tr.hi {
					t.Fatalf("empty/inverted range %+v", tr)
				}
				if tr.lo < 0 || tr.hi > n {
					t.Fatalf("range %+v out of [0,%d)", tr, n)
				}
				if tr.hi-tr.lo > 1 && sawSingle {
					t.Fatalf("super-task %+v after a single", tr)
				}
				if tr.hi-tr.lo == 1 {
					sawSingle = true
				}
				for p := tr.lo; p < tr.hi; p++ {
					if seen[p] {
						t.Fatalf("partition %d covered twice", p)
					}
					seen[p] = true
				}
			}
			for p, s := range seen {
				if !s {
					t.Fatalf("partition %d not covered", p)
				}
			}
		})
	}
}

// safsLeaf builds an nrow×ncol SAFS-backed leaf filled from seed.
func safsLeaf(t *testing.T, fs *safs.FS, name string, nrow int64, ncol, partRows int, seed int64) *Mat {
	t.Helper()
	st, err := matrix.NewSAFSStore(fs, name, nrow, ncol, partRows)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	buf := make([]float64, partRows*ncol)
	for p := 0; p < st.NumParts(); p++ {
		rows := matrix.PartRowsOf(nrow, partRows, p)
		for i := range buf[:rows*ncol] {
			buf[i] = rng.NormFloat64()
		}
		if err := st.WritePart(p, buf[:rows*ncol]); err != nil {
			t.Fatal(err)
		}
	}
	return NewLeaf(st, matrix.F64)
}

// TestPrefetchCrossesRangeBoundary: when a worker reaches the last partition
// of its claimed range it must claim the next range and issue that range's
// first prefetch before computing — previously read-ahead stopped at the
// boundary (`p+1 < tr.hi`), making the first partition of every later range a
// guaranteed cold read.
func TestPrefetchCrossesRangeBoundary(t *testing.T) {
	fs, err := safs.OpenTempDir(t.TempDir(), 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const partRows, nparts = 256, 4
	leaf := safsLeaf(t, fs, "leaf", partRows*nparts, 3, partRows, 21)

	e, err := NewEngine(Config{Workers: 1, PartRows: partRows, FS: fs, SuperParts: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Workers=1 ⇒ tasks [0,2) [2,3) [3,4) and a strictly sequential event log.
	var events []string
	e.testSchedEvent = func(kind string, p int) { events = append(events, fmt.Sprintf("%s:%d", kind, p)) }
	out := Sapply(leaf, UnarySquare)
	if err := e.Materialize([]*Mat{out}, nil); err != nil {
		t.Fatal(err)
	}
	e.testSchedEvent = nil

	idx := func(ev string) int {
		for i, got := range events {
			if got == ev {
				return i
			}
		}
		t.Fatalf("event %q missing from %v", ev, events)
		return -1
	}
	for p := 0; p < nparts; p++ {
		if idx(fmt.Sprintf("prefetch:%d", p)) > idx(fmt.Sprintf("process:%d", p)) {
			t.Fatalf("partition %d processed before its prefetch: %v", p, events)
		}
	}
	// The boundary cases: partition 2 opens range [2,3) and must be prefetched
	// before partition 1 (the end of range [0,2)) is processed; likewise 3
	// before 2.
	if idx("prefetch:2") > idx("process:1") {
		t.Fatalf("read-ahead stopped at the range boundary: %v", events)
	}
	if idx("prefetch:3") > idx("process:2") {
		t.Fatalf("read-ahead stopped at the second boundary: %v", events)
	}
	// Accounting stays exact: every load was a prefetch hit.
	ms := e.LastMaterializeStats()
	if ms.PrefetchHits != nparts || ms.PrefetchMisses != 0 {
		t.Fatalf("prefetch accounting hits=%d misses=%d, want %d/0", ms.PrefetchHits, ms.PrefetchMisses, nparts)
	}
	if ms.PrefetchAbandoned != 0 {
		t.Fatalf("clean pass abandoned %d prefetches", ms.PrefetchAbandoned)
	}
}

// TestWorkerExitDrainsPrefetches: a worker that exits early (here: its own
// write failure under SyncWrites) must drain its in-flight prefetches and
// return the buffers — previously the pending map was abandoned with async
// reads still writing into pooled buffers.
func TestWorkerExitDrainsPrefetches(t *testing.T) {
	fs, err := safs.OpenTempDir(t.TempDir(), 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const partRows = 256
	leaf := safsLeaf(t, fs, "leaf", partRows*8, 3, partRows, 22)

	e, err := NewEngine(Config{Workers: 1, PartRows: partRows, FS: fs, SuperParts: 2, SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	e.testStoreWrap = func(st matrix.Store) matrix.Store {
		return &failingWriteStore{Store: st, failPart: 0}
	}
	out := Sapply(leaf, UnarySquare)
	err = e.Materialize([]*Mat{out}, nil)
	if err == nil || !strings.Contains(err.Error(), "injected write failure") {
		t.Fatalf("want injected write failure, got %v", err)
	}
	// The worker had prefetched partition 1 before failing on partition 0's
	// write; the exit path must have drained it (and only it).
	ms := e.LastMaterializeStats()
	if ms.PrefetchAbandoned != 1 {
		t.Fatalf("abandoned prefetches = %d, want 1", ms.PrefetchAbandoned)
	}
	// Engine and pools stay usable: the same pass runs clean without the
	// failing store, and a clean pass abandons nothing.
	e.testStoreWrap = nil
	out2 := Sapply(leaf, UnarySquare)
	got, err := e.ToDense(out2)
	if err != nil {
		t.Fatalf("engine unusable after drained failure: %v", err)
	}
	if ms2 := e.LastMaterializeStats(); ms2.PrefetchAbandoned != 0 {
		t.Fatalf("clean pass abandoned %d prefetches", ms2.PrefetchAbandoned)
	}
	want, err := e.ToDense(Sapply(leaf, UnarySquare))
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equalish(got, want, 0) {
		t.Fatal("post-failure pass produced wrong data")
	}
}

// TestSinkReductionDeterministic: materializing the same DAG repeatedly must
// produce bit-identical sink results even though workers race for task
// ranges. Partials fold per task and commit in task-index order; before the
// ordered merge they folded per worker, so the floating-point summation
// order — and the low bits of every aggregate — depended on which worker won
// which range.
func TestSinkReductionDeterministic(t *testing.T) {
	const (
		partRows = 64
		nparts   = 48
		ncol     = 3
	)
	fs, err := safs.OpenTempDir(t.TempDir(), 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	leaf := safsLeaf(t, fs, "det", int64(partRows*nparts), ncol, partRows, 99)
	e, err := NewEngine(Config{Workers: 8, PartRows: partRows, FS: fs, SuperParts: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wantSum float64
	var wantCols []float64
	for it := 0; it < 20; it++ {
		sum := Agg(Sapply(leaf, UnarySquare), AggSum)
		cols := AggCol(leaf, AggSum)
		if err := e.Materialize(nil, []*Sink{sum, cols}); err != nil {
			t.Fatal(err)
		}
		gotSum := sum.Result().At(0, 0)
		gotCols := make([]float64, ncol)
		for j := range gotCols {
			gotCols[j] = cols.Result().At(0, j)
		}
		if it == 0 {
			wantSum, wantCols = gotSum, gotCols
			continue
		}
		if gotSum != wantSum {
			t.Fatalf("pass %d: sum %.17g != first pass %.17g", it, gotSum, wantSum)
		}
		for j := range gotCols {
			if gotCols[j] != wantCols[j] {
				t.Fatalf("pass %d: colSum[%d] %.17g != first pass %.17g", it, j, gotCols[j], wantCols[j])
			}
		}
	}
}
