package core

import (
	"errors"
	"sync"
)

// cumCoord coordinates cumulative GenOps down the partition dimension
// (cum.col on a tall matrix, Figure 5 (j)): partition i's output depends on
// the column accumulator ("carry") left by partition i-1. The paper
// evaluates this with a single scan by exploiting sequential task dispatch:
// a thread whose carry is not yet available waits; because partitions are
// dispatched in order, some thread always holds the preceding partition and
// progress is guaranteed. errAborted wakes waiters when the pass fails.
type cumCoord struct {
	mu    sync.Mutex
	cond  *sync.Cond
	nodes []*Mat
	// carries[id][p] is the accumulator entering partition p for cum node
	// id; ready[p] is set once every node's carry for p is published.
	carries map[uint64][][]float64
	ready   []bool
	aborted bool
}

var errAborted = errors.New("core: materialization aborted")

func newCumCoord(nodes []*Mat, nparts int) *cumCoord {
	c := &cumCoord{
		nodes:   nodes,
		carries: make(map[uint64][][]float64, len(nodes)),
		ready:   make([]bool, nparts+1),
	}
	c.cond = sync.NewCond(&c.mu)
	for _, m := range nodes {
		cs := make([][]float64, nparts+1)
		init := make([]float64, m.ncol)
		if m.vec != nil {
			// Carry-seeded node (CumColCarry): the scan continues from the
			// accumulator a preceding shard left.
			copy(init, m.vec)
		} else {
			for j := range init {
				init[j] = m.agg.Init
			}
		}
		cs[0] = init
		c.carries[m.id] = cs
	}
	c.ready[0] = true
	return c
}

// wait blocks until partition p's carries are available and returns a
// private copy per cum node (the worker mutates its copy while scanning the
// partition).
func (c *cumCoord) wait(p int) (map[uint64][]float64, error) {
	c.mu.Lock()
	for !c.ready[p] && !c.aborted {
		c.cond.Wait()
	}
	if c.aborted {
		c.mu.Unlock()
		return nil, errAborted
	}
	out := make(map[uint64][]float64, len(c.nodes))
	for _, m := range c.nodes {
		out[m.id] = append([]float64(nil), c.carries[m.id][p]...)
	}
	c.mu.Unlock()
	return out, nil
}

// publish records the accumulators leaving partition p-1 (= entering p) and
// wakes waiters.
func (c *cumCoord) publish(p int, runs map[uint64][]float64) {
	c.mu.Lock()
	if p < len(c.ready) {
		for _, m := range c.nodes {
			c.carries[m.id][p] = append([]float64(nil), runs[m.id]...)
		}
		c.ready[p] = true
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// abort wakes all waiters with failure.
func (c *cumCoord) abort() {
	c.mu.Lock()
	c.aborted = true
	c.cond.Broadcast()
	c.mu.Unlock()
}
