package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dense"
	"repro/internal/matrix"
)

// opKind identifies the GenOp a virtual matrix node represents. Ops here
// preserve the partition dimension (Figure 5 (a)–(f), (j)); aggregation-type
// GenOps whose output loses the partition dimension become Sink nodes.
type opKind int8

const (
	opLeaf  opKind = iota // materialized store
	opConst               // constant-valued virtual matrix (no I/O at all)
	opSapply
	opMapplyMM     // elementwise binary, both inputs tall with equal shape
	opMapplyScalar // elementwise binary against a scalar
	opMapplyRowVec // elementwise binary against a length-ncol vector (sweep over columns)
	opMapplyColVec // elementwise binary against an n×1 tall matrix broadcast across columns
	opInnerProd    // generalized A(n×p) ∘ B(p×m), B small and shared read-only
	opAggRow       // per-row aggregation → n×1 (Figure 5 (c))
	opGroupByCol   // group columns by label, agg within row → n×k (Figure 5 (d))
	opCumRow       // cumulative along each row → same shape (partition-local)
	opCumCol       // cumulative down the partition dimension (Figure 5 (j))
	opCols         // column-subset view
	opCbind        // column concatenation of two tall matrices
	opSetCols      // functional column assignment: a with cols replaced by b
)

func (k opKind) String() string {
	switch k {
	case opLeaf:
		return "leaf"
	case opConst:
		return "const"
	case opSapply:
		return "sapply"
	case opMapplyMM:
		return "mapply"
	case opMapplyScalar:
		return "mapply.scalar"
	case opMapplyRowVec:
		return "mapply.rowvec"
	case opMapplyColVec:
		return "mapply.colvec"
	case opInnerProd:
		return "inner.prod"
	case opAggRow:
		return "agg.row"
	case opGroupByCol:
		return "groupby.col"
	case opCumRow:
		return "cum.row"
	case opCumCol:
		return "cum.col"
	case opCols:
		return "cols"
	case opCbind:
		return "cbind"
	case opSetCols:
		return "setcols"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// argMode selects index-returning variants of agg.row (R's which.min /
// which.max, used by k-means to assign points to clusters).
type argMode int8

const (
	argNone argMode = iota
	argMin          // 0-based index of the row minimum
	argMax          // 0-based index of the row maximum
)

var matIDs atomic.Uint64

// Mat is a tall matrix node in a FlashR DAG: either a materialized leaf
// (backed by a Store) or a virtual matrix describing how to compute its
// partitions from its inputs. Mats are immutable once created; materializing
// sets store under mu.
type Mat struct {
	id   uint64
	nrow int64
	ncol int
	dt   matrix.DType

	kind opKind
	a, b *Mat

	un         *Unary
	bin        *Binary
	agg        *AggFunc
	arg        argMode
	scalar     float64
	scalarLeft bool
	vec        []float64    // opMapplyRowVec operand / opConst value in vec[0]
	vecLeft    bool         // vector (or scalar) is the left operand of bin
	small      *dense.Dense // opInnerProd right operand (p×m), shared read-only
	smallT     *dense.Dense // transposed copy (m×p) for dot-oriented kernels
	f1, f2     *Binary      // opInnerProd functions; nil f1 selects the BLAS path
	cols       []int        // opCols subset
	colLabels  []int        // opGroupByCol: label of each input column, in [0,k)
	groupK     int          // opGroupByCol: number of groups

	mu       sync.Mutex
	store    matrix.Store // non-nil once materialized
	cache    bool         // set.cache: materialize alongside the DAG's targets
	cacheEM  bool         // cache on SSDs instead of memory
	freed    bool
	mutated  bool   // data written in place: signature falls back to identity form
	ver      uint64 // content version, bumped per in-place mutation
	refCount int32  // DAG bookkeeping during materialization
}

// NRow returns the number of rows (the partition dimension).
func (m *Mat) NRow() int64 { return m.nrow }

// NCol returns the number of columns.
func (m *Mat) NCol() int { return m.ncol }

// DType returns the logical element type.
func (m *Mat) DType() matrix.DType { return m.dt }

// ID returns a process-unique node identifier (diagnostics).
func (m *Mat) ID() uint64 { return m.id }

// OpName names the GenOp this node represents ("leaf" when materialized).
func (m *Mat) OpName() string {
	if m.Materialized() {
		return "leaf"
	}
	return m.kind.String()
}

// Materialized reports whether the node has physical data.
func (m *Mat) Materialized() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store != nil
}

// Store returns the backing store, or nil for a virtual matrix.
func (m *Mat) Store() matrix.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store
}

// SetCache marks the node to be saved (in memory, or on SSDs when em is
// true) when the DAG containing it is materialized — the paper's set.cache,
// used by iterative algorithms to avoid recomputation across iterations.
func (m *Mat) SetCache(em bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache = true
	m.cacheEM = em
}

// NoteMutated records an in-place write to the node's materialized data.
// The content version feeds the node's structural signature, so cached
// results built over the old contents can no longer match; callers go
// through Engine.NoteMutation, which also drops dependent cache entries.
func (m *Mat) NoteMutated() {
	m.mu.Lock()
	m.mutated = true
	m.ver++
	m.mu.Unlock()
}

func (m *Mat) isMutated() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mutated
}

func (m *Mat) contentVer() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ver
}

// attachStore installs a store on a still-virtual node (cache hits turning a
// subtree into a leaf); it reports false, leaving ownership with the caller,
// if the node is already materialized.
func (m *Mat) attachStore(st matrix.Store) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.store != nil {
		return false
	}
	m.store = st
	return true
}

// swapStore replaces the backing store, returning the old one (store
// privatization and cache sharing).
func (m *Mat) swapStore(st matrix.Store) matrix.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.store
	m.store = st
	return old
}

// Free releases the backing store, if any.
func (m *Mat) Free() error {
	m.mu.Lock()
	st := m.store
	m.store = nil
	m.freed = true
	m.mu.Unlock()
	if st != nil {
		return st.Free()
	}
	return nil
}

func newMat(nrow int64, ncol int, dt matrix.DType, kind opKind) *Mat {
	return &Mat{id: matIDs.Add(1), nrow: nrow, ncol: ncol, dt: dt, kind: kind}
}

// NewLeaf wraps a materialized store as a DAG leaf.
func NewLeaf(st matrix.Store, dt matrix.DType) *Mat {
	m := newMat(st.NRow(), st.NCol(), dt, opLeaf)
	m.store = st
	return m
}

// NewConst creates a virtual constant matrix: every element equals v. It
// consumes no storage and no I/O (rep.int(1, n) in Figure 3 compiles to
// this).
func NewConst(nrow int64, ncol int, v float64) *Mat {
	m := newMat(nrow, ncol, matrix.F64, opConst)
	m.vec = []float64{v}
	return m
}

func checkTallShape(op string, a, b *Mat) {
	if a.nrow != b.nrow || a.ncol != b.ncol {
		panic(fmt.Sprintf("core: %s shape mismatch %dx%d vs %dx%d", op, a.nrow, a.ncol, b.nrow, b.ncol))
	}
}

// Sapply is the elementwise unary GenOp: C[i,j] = f(A[i,j]).
func Sapply(a *Mat, f *Unary) *Mat {
	m := newMat(a.nrow, a.ncol, matrix.F64, opSapply)
	m.a, m.un = a, f
	return m
}

// Mapply is the elementwise binary GenOp on two equally-shaped tall
// matrices: C[i,j] = f(A[i,j], B[i,j]).
func Mapply(a, b *Mat, f *Binary) *Mat {
	checkTallShape("mapply", a, b)
	m := newMat(a.nrow, a.ncol, matrix.F64, opMapplyMM)
	m.a, m.b, m.bin = a, b, f
	return m
}

// MapplyScalar applies f between every element of a and a scalar s;
// scalarLeft selects f(s, x) instead of f(x, s).
func MapplyScalar(a *Mat, s float64, f *Binary, scalarLeft bool) *Mat {
	m := newMat(a.nrow, a.ncol, matrix.F64, opMapplyScalar)
	m.a, m.scalar, m.bin, m.scalarLeft = a, s, f, scalarLeft
	return m
}

// MapplyRowVec applies f between every row of a and a length-ncol vector v
// (R's sweep(A, 2, v, f)); vecLeft selects f(v[j], x).
func MapplyRowVec(a *Mat, v []float64, f *Binary, vecLeft bool) *Mat {
	if len(v) != a.ncol {
		panic(fmt.Sprintf("core: mapply.rowvec vector %d != ncol %d", len(v), a.ncol))
	}
	m := newMat(a.nrow, a.ncol, matrix.F64, opMapplyRowVec)
	m.a, m.bin, m.vecLeft = a, f, vecLeft
	m.vec = append([]float64(nil), v...)
	return m
}

// MapplyColVec applies f between every column of a and the n×1 tall matrix
// v, broadcast across columns (R's sweep(A, 1, v, f) with an out-of-core
// sweep vector); vecLeft selects f(v[i], x).
func MapplyColVec(a, v *Mat, f *Binary, vecLeft bool) *Mat {
	if v.ncol != 1 || v.nrow != a.nrow {
		panic(fmt.Sprintf("core: mapply.colvec operand is %dx%d, want %dx1", v.nrow, v.ncol, a.nrow))
	}
	m := newMat(a.nrow, a.ncol, matrix.F64, opMapplyColVec)
	m.a, m.b, m.bin, m.vecLeft = a, v, f, vecLeft
	return m
}

// InnerProd is the generalized matrix multiplication GenOp with a small,
// in-memory right operand B (p×m): t = f1(A[i,k], B[k,j]); C[i,j] = f2
// accumulated over k. Passing f1 == nil selects the BLAS kernel (the Table 2
// float path); then f2 is ignored.
func InnerProd(a *Mat, b *dense.Dense, f1, f2 *Binary) *Mat {
	if b.R != a.ncol {
		panic(fmt.Sprintf("core: inner.prod %dx%d by %dx%d", a.nrow, a.ncol, b.R, b.C))
	}
	m := newMat(a.nrow, b.C, matrix.F64, opInnerProd)
	m.a, m.small, m.f1, m.f2 = a, b, f1, f2
	m.smallT = b.T()
	return m
}

// AggRow is the per-row aggregation GenOp: C[i] = f over row i, producing an
// n×1 tall matrix.
func AggRow(a *Mat, f *AggFunc) *Mat {
	m := newMat(a.nrow, 1, matrix.F64, opAggRow)
	m.a, m.agg = a, f
	return m
}

// WhichMinRow returns the 0-based index of each row's minimum as an n×1
// matrix (agg.row with "which.min" in Figure 3).
func WhichMinRow(a *Mat) *Mat {
	m := newMat(a.nrow, 1, matrix.I64, opAggRow)
	m.a, m.arg = a, argMin
	return m
}

// WhichMaxRow returns the 0-based index of each row's maximum as an n×1
// matrix.
func WhichMaxRow(a *Mat) *Mat {
	m := newMat(a.nrow, 1, matrix.I64, opAggRow)
	m.a, m.arg = a, argMax
	return m
}

// GroupByCol groups the columns of a by labels (labels[j] in [0,k)) and
// aggregates within each row and group: C[i,g] = f over {A[i,j] :
// labels[j]=g}. The output is n×k and keeps the partition dimension
// (groupby.col of Table 1 on a tall matrix).
func GroupByCol(a *Mat, labels []int, k int, f *AggFunc) *Mat {
	if len(labels) != a.ncol {
		panic(fmt.Sprintf("core: groupby.col labels %d != ncol %d", len(labels), a.ncol))
	}
	for _, l := range labels {
		if l < 0 || l >= k {
			panic(fmt.Sprintf("core: groupby.col label %d out of range [0,%d)", l, k))
		}
	}
	m := newMat(a.nrow, k, matrix.F64, opGroupByCol)
	m.a, m.agg, m.groupK = a, f, k
	m.colLabels = append([]int(nil), labels...)
	return m
}

// CumRow computes cumulative aggregation along each row: C[i,j] =
// f(A[i,j], C[i,j-1]). Partition-local, so it parallelizes freely.
func CumRow(a *Mat, f *AggFunc) *Mat {
	m := newMat(a.nrow, a.ncol, matrix.F64, opCumRow)
	m.a, m.agg = a, f
	return m
}

// CumCol computes cumulative aggregation down each column: C[i,j] =
// f(A[i,j], C[i-1,j]). This crosses partitions; the engine evaluates it in a
// single scan by propagating per-partition carries (§3.3 (j)).
func CumCol(a *Mat, f *AggFunc) *Mat {
	m := newMat(a.nrow, a.ncol, matrix.F64, opCumCol)
	m.a, m.agg = a, f
	return m
}

// CumColCarry is CumCol with an explicit accumulator entering row 0: C[0,j]
// = f(A[0,j], carry[j]). Shard workers use it to continue a column scan that
// began on a preceding shard — the cross-process form of the per-partition
// carry propagation of §3.3 (j). The carry participates in the node's
// structural signature, so results computed under different carries never
// unify.
func CumColCarry(a *Mat, f *AggFunc, carry []float64) *Mat {
	if len(carry) != a.ncol {
		panic(fmt.Sprintf("core: cum.col carry %d != ncol %d", len(carry), a.ncol))
	}
	m := CumCol(a, f)
	m.vec = append([]float64(nil), carry...)
	return m
}

// Cbind2 concatenates two tall matrices with the same partition dimension
// column-wise: C = [A | B]. Like all non-sink GenOps it is virtual.
func Cbind2(a, b *Mat) *Mat {
	if a.nrow != b.nrow {
		panic(fmt.Sprintf("core: cbind row mismatch %d vs %d", a.nrow, b.nrow))
	}
	m := newMat(a.nrow, a.ncol+b.ncol, a.dt, opCbind)
	m.a, m.b = a, b
	return m
}

// SetCols is the functional form of R's `A[, cols] <- B`: the result equals
// a with the given columns replaced by the columns of b (n×len(cols)). Per
// §3.1 of the paper, "writing to a matrix outputs a virtual matrix that
// constructs the modified matrix on the fly" — no copy of a is made.
func SetCols(a, b *Mat, cols []int) *Mat {
	if b.nrow != a.nrow || b.ncol != len(cols) {
		panic(fmt.Sprintf("core: setcols value is %dx%d, want %dx%d", b.nrow, b.ncol, a.nrow, len(cols)))
	}
	for _, c := range cols {
		if c < 0 || c >= a.ncol {
			panic(fmt.Sprintf("core: setcols column %d out of range [0,%d)", c, a.ncol))
		}
	}
	m := newMat(a.nrow, a.ncol, a.dt, opSetCols)
	m.a, m.b = a, b
	m.cols = append([]int(nil), cols...)
	return m
}

// Cols returns a virtual column-subset view of a.
func Cols(a *Mat, cols []int) *Mat {
	for _, c := range cols {
		if c < 0 || c >= a.ncol {
			panic(fmt.Sprintf("core: column %d out of range [0,%d)", c, a.ncol))
		}
	}
	m := newMat(a.nrow, len(cols), a.dt, opCols)
	m.a = a
	m.cols = append([]int(nil), cols...)
	return m
}

// SinkKind identifies an aggregation GenOp whose output drops the partition
// dimension (a sink matrix, §3.4).
type SinkKind int8

const (
	// SinkAgg is agg(A, f) → scalar.
	SinkAgg SinkKind = iota
	// SinkAggCol is agg.col(A, f) → 1×p (aggregate each column over all
	// rows).
	SinkAggCol
	// SinkGroupByRow is groupby.row(A, B, f) → k×p: rows grouped by the
	// n×1 label matrix B.
	SinkGroupByRow
	// SinkCrossProd is t(A) %*% B (or generalized with f1/f2) → pa×pb.
	SinkCrossProd
	// SinkTable is table(A)/unique(A): per-value counts; its output size
	// depends on the data, so reaching it triggers DAG materialization.
	SinkTable
	// SinkGroupByVal is the general groupby(A, f) of Table 1: elements are
	// grouped by their value and folded with f per group. table() is the
	// "count" instance. Output size is data-dependent (immediate
	// materialization, like SinkTable).
	SinkGroupByVal
)

func (k SinkKind) String() string {
	switch k {
	case SinkAgg:
		return "agg"
	case SinkAggCol:
		return "agg.col"
	case SinkGroupByRow:
		return "groupby.row"
	case SinkCrossProd:
		return "crossprod"
	case SinkTable:
		return "table"
	case SinkGroupByVal:
		return "groupby"
	default:
		return fmt.Sprintf("sink(%d)", int(k))
	}
}

// Sink is an aggregation-GenOp node. Its result is small and is stored in
// memory once materialized.
type Sink struct {
	id   uint64
	kind SinkKind
	a, b *Mat
	agg  *AggFunc
	f1   *Binary // generalized crossprod; nil selects BLAS
	f2   *Binary
	k    int // group count for groupby.row

	rows, cols int

	// Aggregation-folding publish transform (optimize.go): when hasPost is
	// set, the sink computes the raw reduction over its (rewritten) input and
	// publishes postMul·raw + postAdd. The structural signature deliberately
	// excludes these coefficients — it describes the raw computation, so an
	// iteration-varying scalar folded out of the input no longer defeats
	// result-cache sharing of the underlying reduction.
	postMul float64
	postAdd float64
	hasPost bool

	mu     sync.Mutex
	done   bool
	result *dense.Dense
	keys   []float64    // SinkTable/SinkGroupByVal: sorted distinct values
	counts []int64      // SinkTable: matching counts
	folds  []float64    // SinkGroupByVal: per-group folded values
	raw    *dense.Dense // pre-transform result when hasPost (cache payload)
}

// Kind returns the sink's GenOp kind.
func (s *Sink) Kind() SinkKind { return s.kind }

// Input returns the tall matrix the sink aggregates over.
func (s *Sink) Input() *Mat { return s.a }

// Shape returns the result dimensions fixed at construction (0×0 for
// SinkTable, whose size is data-dependent).
func (s *Sink) Shape() (rows, cols int) { return s.rows, s.cols }

// Done reports whether the sink has been materialized.
func (s *Sink) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Result returns the materialized result; it panics if the sink has not
// been materialized (callers go through Engine.Materialize or the public
// API, which materializes on demand).
func (s *Sink) Result() *dense.Dense {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		panic("core: sink not materialized")
	}
	return s.result
}

// TableResult returns the sorted distinct values and their counts for a
// SinkTable.
func (s *Sink) TableResult() (keys []float64, counts []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		panic("core: sink not materialized")
	}
	return s.keys, s.counts
}

var sinkIDs atomic.Uint64

func newSink(kind SinkKind, rows, cols int) *Sink {
	return &Sink{id: sinkIDs.Add(1), kind: kind, rows: rows, cols: cols}
}

// Agg builds the full-matrix aggregation sink: a scalar f-fold over every
// element.
func Agg(a *Mat, f *AggFunc) *Sink {
	s := newSink(SinkAgg, 1, 1)
	s.a, s.agg = a, f
	return s
}

// AggCol builds the per-column aggregation sink (1×p): C[j] = f over column
// j across all rows.
func AggCol(a *Mat, f *AggFunc) *Sink {
	s := newSink(SinkAggCol, 1, a.ncol)
	s.a, s.agg = a, f
	return s
}

// GroupByRow builds the row-grouping sink (k×p): rows of a are grouped by
// the n×1 label matrix (values in [0,k)) and aggregated per column.
func GroupByRow(a, labels *Mat, k int, f *AggFunc) *Sink {
	if labels.ncol != 1 || labels.nrow != a.nrow {
		panic(fmt.Sprintf("core: groupby.row labels are %dx%d, want %dx1", labels.nrow, labels.ncol, a.nrow))
	}
	s := newSink(SinkGroupByRow, k, a.ncol)
	s.a, s.b, s.k, s.agg = a, labels, k, f
	return s
}

// CrossProd builds the t(A)%*%B sink (pa×pb). A and B are tall with the same
// row count; f1 == nil selects the BLAS kernel, otherwise the generalized
// inner product with f1/f2 (the Table 2 integer path).
func CrossProd(a, b *Mat, f1, f2 *Binary) *Sink {
	if a.nrow != b.nrow {
		panic(fmt.Sprintf("core: crossprod row mismatch %d vs %d", a.nrow, b.nrow))
	}
	s := newSink(SinkCrossProd, a.ncol, b.ncol)
	s.a, s.b, s.f1, s.f2 = a, b, f1, f2
	return s
}

// Table builds the value-histogram sink (R's table/unique). Its output size
// depends on the data, so the paper materializes it immediately; the public
// API does the same.
func Table(a *Mat) *Sink {
	s := newSink(SinkTable, 0, 0)
	s.a = a
	return s
}

// GroupByVal builds the generalized element groupby sink: elements grouped
// by value, each group folded with f (groupby(A, f) in Table 1).
func GroupByVal(a *Mat, f *AggFunc) *Sink {
	s := newSink(SinkGroupByVal, 0, 0)
	s.a, s.agg = a, f
	return s
}

// GroupByValResult returns the sorted distinct values and the per-group
// folds for a SinkGroupByVal.
func (s *Sink) GroupByValResult() (keys, folds []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		panic("core: sink not materialized")
	}
	return s.keys, s.folds
}
