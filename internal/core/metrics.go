package core

import (
	"repro/internal/trace"
)

// RegisterStatsMetrics registers a MaterializeStats source as counter
// families on reg. snap must return a self-consistent snapshot (the engine
// and session totals do: they are copied under a mutex). The snapshot is
// taken once per collection via the registry's OnCollect hook, so every
// family of one scrape comes from the same MaterializeStats value — the fix
// for torn reads when a scrape races an in-flight pass completing.
//
// owner, when non-empty, labels every series (per-session registries).
func RegisterStatsMetrics(reg *trace.Registry, owner string, snap func() MaterializeStats) {
	var labels []trace.Label
	if owner != "" {
		labels = []trace.Label{{Key: "owner", Value: owner}}
	}
	var cur MaterializeStats
	reg.OnCollect(func() { cur = snap() })
	for _, c := range []struct {
		name, help string
		read       func() float64
	}{
		{"flashr_materialize_passes_total", "Parallel materialization passes executed.", func() float64 { return float64(cur.Passes) }},
		{"flashr_materialize_parts_total", "I/O partitions processed.", func() float64 { return float64(cur.Parts) }},
		{"flashr_materialize_chunks_total", "Pcache chunks evaluated.", func() float64 { return float64(cur.Chunks) }},
		{"flashr_materialize_read_bytes_total", "Leaf partition bytes copied into compute buffers.", func() float64 { return float64(cur.BytesRead) }},
		{"flashr_materialize_written_bytes_total", "Tall-output partition bytes handed to stores.", func() float64 { return float64(cur.BytesWritten) }},
		{"flashr_materialize_prefetch_hits_total", "Leaf loads served by the read-ahead pipeline.", func() float64 { return float64(cur.PrefetchHits) }},
		{"flashr_materialize_prefetch_misses_total", "Leaf loads that fell back to synchronous reads.", func() float64 { return float64(cur.PrefetchMisses) }},
		{"flashr_materialize_prefetch_abandoned_total", "Prefetched partitions drained unconsumed on exit paths.", func() float64 { return float64(cur.PrefetchAbandoned) }},
		{"flashr_materialize_write_jobs_total", "Partitions routed through the write-behind queue.", func() float64 { return float64(cur.WriteJobs) }},
		{"flashr_materialize_checksum_failures_total", "Stripe reads failing CRC32C verification, attributed to passes.", func() float64 { return float64(cur.ChecksumFailures) }},
		{"flashr_materialize_io_retries_total", "SAFS retry attempts attributed to passes.", func() float64 { return float64(cur.IORetries) }},
		{"flashr_materialize_recovered_reads_total", "Reads recovered within the retry budget, attributed to passes.", func() float64 { return float64(cur.RecoveredReads) }},
		{"flashr_materialize_recovered_writes_total", "Writes recovered within the retry budget, attributed to passes.", func() float64 { return float64(cur.RecoveredWrites) }},
		{"flashr_materialize_cse_unifications_total", "Nodes and sinks deduplicated within passes.", func() float64 { return float64(cur.CSEUnifications) }},
		{"flashr_materialize_nodes_executed_total", "Virtual matrix nodes actually evaluated.", func() float64 { return float64(cur.NodesExecuted) }},
		{"flashr_materialize_cache_hits_total", "Sub-DAG results served from the result cache.", func() float64 { return float64(cur.CacheHits) }},
		{"flashr_materialize_cache_misses_total", "Sub-DAG cache candidates this engine had to compute.", func() float64 { return float64(cur.CacheMisses) }},
		{"flashr_materialize_cache_evictions_total", "Result-cache LRU evictions.", func() float64 { return float64(cur.CacheEvictions) }},
		{"flashr_materialize_cache_hit_bytes_total", "Result bytes served without recomputation or I/O.", func() float64 { return float64(cur.CacheHitBytes) }},
		{"flashr_materialize_rewrites_total", "Algebraic rewrite rule applications.", func() float64 { return float64(cur.Rewrites) }},
		{"flashr_materialize_rewrite_views_total", "View push-down rewrites (column-selection elimination/composition/push-down).", func() float64 { return float64(cur.RewriteViews) }},
		{"flashr_materialize_rewrite_crossprods_total", "Crossprod self-recognition rewrites (GemmTA to Syrk).", func() float64 { return float64(cur.RewriteCrossProds) }},
		{"flashr_materialize_rewrite_aggfolds_total", "Aggregation folds into affine publish transforms.", func() float64 { return float64(cur.RewriteAggFolds) }},
		{"flashr_materialize_rewrite_dce_total", "Dead-input eliminations applied.", func() float64 { return float64(cur.RewriteDCE) }},
		{"flashr_materialize_rewrite_dead_nodes_total", "Virtual nodes disconnected by dead-input elimination.", func() float64 { return float64(cur.RewriteDeadNodes) }},
		{"flashr_materialize_shard_passes_total", "Worker-side passes executed by the sharded coordinator.", func() float64 { return float64(cur.ShardPasses) }},
		{"flashr_materialize_shard_agg_rounds_total", "Cross-shard aggregation exchange rounds.", func() float64 { return float64(cur.ShardAggRounds) }},
		{"flashr_materialize_shard_sent_bytes_total", "Coordinator wire bytes sent to shard workers.", func() float64 { return float64(cur.ShardBytesSent) }},
		{"flashr_materialize_shard_recv_bytes_total", "Coordinator wire bytes received from shard workers.", func() float64 { return float64(cur.ShardBytesRecv) }},
		{"flashr_materialize_shard_retries_total", "Transport retries after transient shard faults.", func() float64 { return float64(cur.ShardRetries) }},
		{"flashr_materialize_shard_worker_read_bytes_total", "Partition bytes read by shard workers.", func() float64 { return float64(cur.ShardWorkerRead) }},
		{"flashr_materialize_shard_worker_written_bytes_total", "Partition bytes written by shard workers.", func() float64 { return float64(cur.ShardWorkerWritten) }},
		{"flashr_materialize_shard_recoveries_total", "Worker recoveries (re-hello, re-push, lineage replay) after epoch-fence rejections.", func() float64 { return float64(cur.ShardRecoveries) }},
		{"flashr_materialize_shard_replayed_keeps_total", "Kept talls reconstructed by lineage replay during worker recovery.", func() float64 { return float64(cur.ShardReplayedKeeps) }},
		{"flashr_materialize_wall_seconds_total", "End-to-end Materialize wall time.", func() float64 { return cur.Wall.Seconds() }},
		{"flashr_materialize_read_wait_seconds_total", "Worker time blocked on in-flight prefetch reads.", func() float64 { return cur.ReadWait.Seconds() }},
		{"flashr_materialize_write_stall_seconds_total", "Compute time blocked handing partitions to the write queue.", func() float64 { return cur.WriteStall.Seconds() }},
		{"flashr_materialize_write_seconds_total", "Cumulative time inside partition writes.", func() float64 { return cur.WriteTime.Seconds() }},
		{"flashr_materialize_write_drain_seconds_total", "Time at the end-of-pass write-behind drain barrier.", func() float64 { return cur.WriteDrain.Seconds() }},
		{"flashr_materialize_verify_seconds_total", "SAFS integrity work attributed to passes.", func() float64 { return cur.VerifyTime.Seconds() }},
	} {
		reg.CounterFunc(c.name, c.help, c.read, labels...)
	}
}

// Metrics returns the engine's metrics registry, building it on first use:
// the engine-lifetime MaterializeStats total, scheduler counters, admission
// gauges, the NUMA topology, and (when attached) the SSD array.
func (e *Engine) Metrics() *trace.Registry {
	e.metricsOnce.Do(func() {
		reg := trace.NewRegistry()
		RegisterStatsMetrics(reg, "", e.TotalMaterializeStats)
		reg.CounterFunc("flashr_engine_dags_total", "Fused DAGs executed.",
			func() float64 { return float64(e.stats.DAGs.Load()) })
		reg.CounterFunc("flashr_engine_nodes_eval_total", "Node-chunk evaluations.",
			func() float64 { return float64(e.stats.NodesEval.Load()) })
		reg.GaugeFunc("flashr_engine_passes_running", "Admitted passes currently executing.",
			func() float64 { return float64(e.arb.running()) })
		reg.GaugeFunc("flashr_engine_passes_queued", "Passes waiting for admission.",
			func() float64 { return float64(e.arb.queued()) })
		if e.rcache != nil {
			reg.GaugeFunc("flashr_result_cache_bytes", "Bytes held by the sub-DAG result cache.",
				func() float64 { _, b := e.rcache.stats(); return float64(b) })
			reg.GaugeFunc("flashr_result_cache_entries", "Entries in the sub-DAG result cache.",
				func() float64 { n, _ := e.rcache.stats(); return float64(n) })
		}
		e.cfg.Topo.RegisterMetrics(reg)
		if e.cfg.FS != nil {
			e.cfg.FS.RegisterMetrics(reg)
		}
		e.metrics = reg
	})
	return e.metrics
}
