package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dense"
	"repro/internal/matrix"
	"repro/internal/safs"
)

// integrityRig is one EM pipeline under test: a SAFS array with a small
// stripe, an engine, and a SAFS-resident leaf.
type integrityRig struct {
	fs   *safs.FS
	e    *Engine
	leaf *Mat
}

const (
	intPartRows = 256
	intNParts   = 64
	intNCol     = 2
)

func newIntegrityRig(t *testing.T, syncWrites bool, mbps float64) *integrityRig {
	t.Helper()
	dirs := make([]string, 3)
	root := t.TempDir()
	for i := range dirs {
		dirs[i] = filepath.Join(root, fmt.Sprintf("ssd-%02d", i))
	}
	fs, err := safs.Open(safs.Config{
		Drives: dirs, StripeBytes: 8192,
		ReadMBps: mbps, WriteMBps: mbps,
		MaxRetries: 8, RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	e, err := NewEngine(Config{Workers: 3, PartRows: intPartRows, FS: fs, EM: true, SyncWrites: syncWrites})
	if err != nil {
		t.Fatal(err)
	}
	st, err := matrix.NewSAFSStore(fs, "leaf", intPartRows*intNParts, intNCol, intPartRows)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	buf := make([]float64, intPartRows*intNCol)
	for p := 0; p < st.NumParts(); p++ {
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
		if err := st.WritePart(p, buf); err != nil {
			t.Fatal(err)
		}
	}
	return &integrityRig{fs: fs, e: e, leaf: NewLeaf(st, matrix.F64)}
}

func (r *integrityRig) pipeline() *Mat {
	return Mapply(Sapply(r.leaf, UnarySquare), r.leaf, BinAdd)
}

// TestFaultInjectionMatrix runs {transient errors, bit-flip corruption,
// permanent on-media corruption, dropped writes} × {SyncWrites on/off}
// through a full EM materialization: recovered runs must be bit-identical to
// a fault-free run with nonzero retry/verify counters, unrecoverable ones
// must name the drive, file, and stripe, and the clean path must report
// all-zero fault counters.
func TestFaultInjectionMatrix(t *testing.T) {
	// Fault-free reference, also asserting the clean-path counters.
	ref := newIntegrityRig(t, false, 0)
	want, err := ref.e.ToDense(ref.pipeline())
	if err != nil {
		t.Fatal(err)
	}
	ms := ref.e.TotalMaterializeStats()
	if ms.ChecksumFailures != 0 || ms.IORetries != 0 || ms.RecoveredReads != 0 || ms.RecoveredWrites != 0 {
		t.Fatalf("clean path reported faults: %+v", ms)
	}
	if ms.VerifyTime <= 0 {
		t.Fatal("verification enabled but no verify time recorded")
	}
	if ms.PrefetchAbandoned != 0 {
		t.Fatalf("clean path abandoned %d prefetches", ms.PrefetchAbandoned)
	}

	for _, syncW := range []bool{false, true} {
		syncW := syncW
		name := map[bool]string{false: "async", true: "sync"}[syncW]

		t.Run("transient/"+name, func(t *testing.T) {
			rig := newIntegrityRig(t, syncW, 0)
			rig.fs.InjectFaults(&safs.Faults{Seed: 7, ReadErrRate: 0.05, WriteErrRate: 0.05})
			got, err := rig.e.ToDense(rig.pipeline())
			if err != nil {
				t.Fatalf("transient faults not recovered: %v", err)
			}
			if !dense.Equalish(got, want, 0) {
				t.Fatal("recovered run not bit-identical to fault-free run")
			}
			ms := rig.e.TotalMaterializeStats()
			if ms.IORetries == 0 {
				t.Fatal("no retries recorded under 5% transient error rate")
			}
			if ms.RecoveredReads+ms.RecoveredWrites == 0 {
				t.Fatal("no recoveries recorded under injection")
			}
		})

		t.Run("flipbit/"+name, func(t *testing.T) {
			rig := newIntegrityRig(t, syncW, 0)
			rig.fs.InjectFaults(&safs.Faults{Seed: 8, FlipBitRate: 0.2})
			got, err := rig.e.ToDense(rig.pipeline())
			if err != nil {
				t.Fatalf("bit flips not recovered: %v", err)
			}
			if !dense.Equalish(got, want, 0) {
				t.Fatal("flip-bit run not bit-identical to fault-free run")
			}
			ms := rig.e.TotalMaterializeStats()
			if ms.ChecksumFailures == 0 {
				t.Fatal("no checksum failures recorded under 20% flip rate")
			}
			if ms.RecoveredReads == 0 {
				t.Fatal("no recovered reads recorded under flip injection")
			}
		})

		t.Run("permanent/"+name, func(t *testing.T) {
			rig := newIntegrityRig(t, syncW, 0)
			// Flip a bit directly on media: retries cannot heal this.
			lf := rig.leaf.Store().(*matrix.SAFSStore).File()
			const badStripe = 3
			if err := lf.Corrupt(badStripe, 17); err != nil {
				t.Fatal(err)
			}
			err := rig.e.Materialize([]*Mat{rig.pipeline()}, nil)
			var se *safs.StripeError
			if !errors.As(err, &se) {
				t.Fatalf("want StripeError from on-media corruption, got %v", err)
			}
			if se.File != "leaf" || se.Stripe != badStripe || se.Op != "read" {
				t.Fatalf("StripeError misidentifies the failure: %+v", se)
			}
			var ce *safs.ChecksumError
			if !errors.As(err, &ce) {
				t.Fatalf("want wrapped ChecksumError, got %v", err)
			}
			ms := rig.e.LastMaterializeStats()
			if ms.ChecksumFailures == 0 {
				t.Fatal("permanent corruption not counted")
			}
		})

		t.Run("dropwrite/"+name, func(t *testing.T) {
			rig := newIntegrityRig(t, syncW, 0)
			out := rig.pipeline()
			rig.fs.InjectFaults(&safs.Faults{Seed: 9, DropWriteRate: 1})
			// Torn writes look successful, so the pass itself completes...
			if err := rig.e.Materialize([]*Mat{out}, nil); err != nil {
				t.Fatalf("dropped writes must ack like a real torn write, got %v", err)
			}
			rig.fs.InjectFaults(nil)
			// ...and the corruption surfaces on the next verified read.
			_, err := rig.e.ToDense(out)
			var se *safs.StripeError
			if !errors.As(err, &se) {
				t.Fatalf("torn write not detected on read-back, got %v", err)
			}
		})
	}
}

// TestFaultInjectionCancelled: cancelling a pass while transient faults and
// retries are in flight must still return context.Canceled promptly, drain
// cleanly, and leave the engine usable.
func TestFaultInjectionCancelled(t *testing.T) {
	rig := newIntegrityRig(t, false, 4) // throttled so the pass outlives the cancel
	rig.fs.InjectFaults(&safs.Faults{Seed: 10, ReadErrRate: 0.05, FlipBitRate: 0.05, Latency: 200 * time.Microsecond})
	out := rig.pipeline()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rig.e.MaterializeCtx(ctx, []*Mat{out}, nil) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("MaterializeCtx err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled materialization under injection did not return")
	}
	if out.Materialized() {
		t.Fatal("cancelled target was published")
	}
	// The engine recovers: with faults cleared the same pipeline completes
	// and abandons nothing.
	rig.fs.InjectFaults(nil)
	if _, err := rig.e.ToDense(rig.pipeline()); err != nil {
		t.Fatalf("engine unusable after cancelled injected pass: %v", err)
	}
	if ms := rig.e.LastMaterializeStats(); ms.PrefetchAbandoned != 0 {
		t.Fatalf("clean pass after cancellation abandoned %d prefetches", ms.PrefetchAbandoned)
	}
}
