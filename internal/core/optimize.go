package core

// Algebraic rewriting of hash-consed DAGs — the optimizer pass that runs
// between graph construction and pass scheduling (inside materialize, under
// planMu, before any structural signature is interned for cache lookups).
//
// The pass rewrites the input graphs of the sinks submitted to one
// materialization. Four rule families, each individually toggleable for
// ablation (Config.DisableRewrite*):
//
//   - view push-down (the core manifestation of transpose push-down:
//     physical transposition is an FM-level view flag and t(t(X)) cancels by
//     construction, so the structural view family here is opCols):
//     identity-selection elimination, Cols∘Cols composition, and pushing a
//     column selection below elementwise chains so narrowed subtrees never
//     compute columns the consumer drops;
//   - crossprod recognition: a SinkCrossProd whose two tall inputs are
//     structurally identical but distinct objects is rewritten to the self
//     form (s.b = s.a), selecting the Syrk kernel — bit-identical to the
//     GemmTA path (IEEE multiply commutes; the row-accumulation order and
//     zero-skip sets coincide) at half the multiplies;
//   - aggregation folding: sum-sinks over scalar-broadcast chains
//     (sum(X + c), sum(c*X), sum(X + v), sum(-X), sum(X + X)) fold into the
//     sink over the bare operand plus an affine publish transform, so the
//     residual sink is iteration-invariant and cacheable even when the
//     scalar changes per iteration. Folding reassociates float reductions,
//     so its equivalence gate is tolerance-pinned, not bit-identical;
//   - dead-input elimination: a column selection over cbind or setcols that
//     provably never observes one input disconnects it (and a setcols that
//     overwrites every column shadows its base entirely). In a lazy engine
//     nothing unreachable ever executes, so "DCE" here means rewrites that
//     make an input unreachable — its leaves are then never read at all.
//
// Discipline: rewriting never mutates a Mat. Rewritten subtrees are rebuilt
// as fresh nodes through the public constructors and installed by
// reassigning the sink's input fields (sinks are pass-local until done).
// Fresh nodes re-intern through the PR 3 table exactly like user-built ones,
// so CSE and the result cache see canonical post-rewrite signatures — a
// cached pre-rewrite result can never be served for a structurally different
// post-rewrite node, because every key this pass computes is post-rewrite by
// construction. Subtrees rooted at materialized, mutated, or set.cache
// flagged nodes are left intact: their identity (and any store the user
// asked to keep) must survive the pass.

// rewriter carries one materialization's rewrite state: rule toggles, the
// signature context for structural-identity queries, and per-node memoization
// so shared subtrees rewrite once and keep sharing.
type rewriter struct {
	sc      *sigCtx
	view    bool
	xprod   bool
	aggfold bool
	dce     bool

	memo map[*Mat]*Mat
	// colsMemo memoizes colsOf per (node, selection) so push-down through
	// diamond-shaped DAGs stays linear instead of exponential.
	colsMemo map[colsKey]*Mat

	applied   int64 // total rule applications
	views     int64
	xprods    int64
	aggfolds  int64
	dces      int64 // dead-input eliminations applied
	deadNodes int64 // virtual nodes disconnected by them
}

type colsKey struct {
	m    *Mat
	cols string
}

// rewriteGraphs rewrites the input graphs of one materialization's targets
// and folds the rule-application counters into ms. Sinks are rewritten in
// place (their input fields are pass-local until done). Tall targets cannot
// be — the caller holds the root pointer and will read its store — so a
// rewritten root is substituted into the returned target list and paired in
// fwd; after the pass the engine forwards the substitute's store onto the
// original root (see forwardTallStores). Callers hold planMu and have
// already built sc; rewriting before any signature is interned is what keeps
// the result cache coherent with the rewritten graph.
func (e *Engine) rewriteGraphs(mt []*Mat, sk []*Sink, sc *sigCtx, ms *MaterializeStats) (talls []*Mat, fwd [][2]*Mat) {
	rw := &rewriter{
		sc:       sc,
		view:     !e.cfg.DisableRewriteView,
		xprod:    !e.cfg.DisableRewriteCrossProd,
		aggfold:  !e.cfg.DisableRewriteAggFold,
		dce:      !e.cfg.DisableRewriteDCE,
		memo:     make(map[*Mat]*Mat),
		colsMemo: make(map[colsKey]*Mat),
	}
	if !rw.view && !rw.xprod && !rw.aggfold && !rw.dce {
		return mt, nil
	}
	talls = mt
	copied := false
	for i, m := range mt {
		if r := rw.node(m); r != m {
			if !copied {
				talls = append([]*Mat(nil), mt...)
				copied = true
			}
			talls[i] = r
			fwd = append(fwd, [2]*Mat{m, r})
		}
	}
	for _, s := range sk {
		if s.a != nil {
			if ra := rw.node(s.a); ra != s.a {
				s.a = ra
			}
		}
		if s.b != nil {
			if rb := rw.node(s.b); rb != s.b {
				s.b = rb
			}
		}
		rw.crossprod(s)
		rw.aggFold(s)
	}
	ms.Rewrites += rw.applied
	ms.RewriteViews += rw.views
	ms.RewriteCrossProds += rw.xprods
	ms.RewriteAggFolds += rw.aggfolds
	ms.RewriteDCE += rw.dces
	ms.RewriteDeadNodes += rw.deadNodes
	return talls, fwd
}

// forwardTallStores publishes each rewritten substitute's store onto its
// original tall root, sharing it refcounted: the caller of Materialize reads
// the root it built, never knowing an equivalent graph computed the bits.
// Callers hold planMu; runs after insertResults so a cache-managed store is
// already wrapped.
func forwardTallStores(fwd [][2]*Mat) {
	for _, pair := range fwd {
		orig, sub := pair[0], pair[1]
		st := sub.Store()
		if st == nil {
			continue // pass failed or substitute served elsewhere
		}
		rst, ok := st.(*refStore)
		if !ok {
			rst = newRefStore(st)
			sub.swapStore(rst)
		}
		rst.retain()
		if !orig.attachStore(rst) {
			rst.Free() // raced with another pass materializing orig
		}
	}
}

// canRewrite reports whether m's own structure may be replaced by an
// equivalent one. Leaves, constants, materialized or mutated nodes (identity
// signature form) and set.cache flagged nodes (the user asked for this exact
// node's store) are fixed points.
func (rw *rewriter) canRewrite(m *Mat) bool {
	if m == nil || m.kind == opLeaf || m.kind == opConst {
		return false
	}
	m.mu.Lock()
	fixed := m.store != nil || m.mutated || m.cache
	m.mu.Unlock()
	return !fixed
}

// node returns the rewritten form of m, memoized so shared subtrees stay
// shared. It returns m itself when nothing below it changed.
func (rw *rewriter) node(m *Mat) *Mat {
	if m == nil {
		return nil
	}
	if r, ok := rw.memo[m]; ok {
		return r
	}
	r := rw.rewriteNode(m)
	rw.memo[m] = r
	return r
}

func (rw *rewriter) rewriteNode(m *Mat) *Mat {
	if !rw.canRewrite(m) {
		return m
	}
	ra, rb := rw.node(m.a), rw.node(m.b)
	switch m.kind {
	case opCols:
		before := rw.applied
		r := rw.colsOf(ra, m.cols)
		if rw.applied == before && ra == m.a {
			return m
		}
		return r
	case opSetCols:
		if rw.dce && len(m.cols) == m.ncol && isIdentitySelection(m.cols) {
			// Every column is overwritten in order: the result is b exactly
			// and the base matrix is never observed.
			rw.eliminate(ra)
			return rb
		}
	}
	if ra == m.a && rb == m.b {
		return m
	}
	return rebuildNode(m, ra, rb)
}

// rebuildNode clones m with new inputs through the public constructors,
// preserving every operator parameter.
func rebuildNode(m *Mat, ra, rb *Mat) *Mat {
	switch m.kind {
	case opSapply:
		return Sapply(ra, m.un)
	case opMapplyMM:
		return Mapply(ra, rb, m.bin)
	case opMapplyScalar:
		return MapplyScalar(ra, m.scalar, m.bin, m.scalarLeft)
	case opMapplyRowVec:
		return MapplyRowVec(ra, m.vec, m.bin, m.vecLeft)
	case opMapplyColVec:
		return MapplyColVec(ra, rb, m.bin, m.vecLeft)
	case opInnerProd:
		return InnerProd(ra, m.small, m.f1, m.f2)
	case opAggRow:
		switch m.arg {
		case argMin:
			return WhichMinRow(ra)
		case argMax:
			return WhichMaxRow(ra)
		default:
			return AggRow(ra, m.agg)
		}
	case opGroupByCol:
		return GroupByCol(ra, m.colLabels, m.groupK, m.agg)
	case opCumRow:
		return CumRow(ra, m.agg)
	case opCumCol:
		return CumCol(ra, m.agg)
	case opCols:
		return Cols(ra, m.cols)
	case opCbind:
		return Cbind2(ra, rb)
	case opSetCols:
		return SetCols(ra, rb, m.cols)
	default:
		// Leaves and constants never reach here (canRewrite).
		return m
	}
}

// colsOf builds the rewritten form of Cols(x, cols), applying the view
// push-down and dead-input rules. x is already rewritten.
func (rw *rewriter) colsOf(x *Mat, cols []int) *Mat {
	if rw.view && len(cols) == x.ncol && isIdentitySelection(cols) {
		rw.views++
		rw.applied++
		return x
	}
	key := colsKey{m: x, cols: intsKey(cols)}
	if r, ok := rw.colsMemo[key]; ok {
		return r
	}
	r := rw.colsOfUncached(x, cols)
	rw.colsMemo[key] = r
	return r
}

func (rw *rewriter) colsOfUncached(x *Mat, cols []int) *Mat {
	if rw.canRewrite(x) {
		switch x.kind {
		case opCols:
			if rw.view {
				comp := make([]int, len(cols))
				for i, c := range cols {
					comp[i] = x.cols[c]
				}
				rw.views++
				rw.applied++
				return rw.colsOf(x.a, comp)
			}
		case opSapply:
			if rw.view {
				rw.views++
				rw.applied++
				return Sapply(rw.colsOf(x.a, cols), x.un)
			}
		case opMapplyScalar:
			if rw.view {
				rw.views++
				rw.applied++
				return MapplyScalar(rw.colsOf(x.a, cols), x.scalar, x.bin, x.scalarLeft)
			}
		case opMapplyMM:
			if rw.view {
				rw.views++
				rw.applied++
				return Mapply(rw.colsOf(x.a, cols), rw.colsOf(x.b, cols), x.bin)
			}
		case opMapplyRowVec:
			if rw.view {
				v := make([]float64, len(cols))
				for i, c := range cols {
					v[i] = x.vec[c]
				}
				rw.views++
				rw.applied++
				return MapplyRowVec(rw.colsOf(x.a, cols), v, x.bin, x.vecLeft)
			}
		case opMapplyColVec:
			if rw.view {
				rw.views++
				rw.applied++
				return MapplyColVec(rw.colsOf(x.a, cols), x.b, x.bin, x.vecLeft)
			}
		case opCbind:
			if rw.dce {
				aw := x.a.ncol
				allA, allB := true, true
				for _, c := range cols {
					if c < aw {
						allB = false
					} else {
						allA = false
					}
				}
				if allA {
					rw.eliminate(x.b)
					return rw.colsOf(x.a, cols)
				}
				if allB {
					shifted := make([]int, len(cols))
					for i, c := range cols {
						shifted[i] = c - aw
					}
					rw.eliminate(x.a)
					return rw.colsOf(x.b, shifted)
				}
			}
		case opSetCols:
			if rw.dce {
				// src[j] = index into b when column j was overwritten, -1
				// when it still comes from the base matrix.
				src := make([]int, x.ncol)
				for j := range src {
					src[j] = -1
				}
				for k, c := range x.cols {
					src[c] = k
				}
				allBase, allOver := true, true
				for _, c := range cols {
					if src[c] >= 0 {
						allBase = false
					} else {
						allOver = false
					}
				}
				if allBase {
					rw.eliminate(x.b)
					return rw.colsOf(x.a, cols)
				}
				if allOver {
					pos := make([]int, len(cols))
					for i, c := range cols {
						pos[i] = src[c]
					}
					rw.eliminate(x.a)
					return rw.colsOf(x.b, pos)
				}
			}
		}
	}
	return Cols(x, cols)
}

// crossprod applies the self-recognition rule: t(A)%*%B with structurally
// identical tall inputs becomes the symmetric t(A)%*%A form, which the sink
// kernel executes with Syrk on the upper triangle instead of a full GemmTA.
func (rw *rewriter) crossprod(s *Sink) {
	if !rw.xprod || s.kind != SinkCrossProd || s.f1 != nil {
		return
	}
	if s.a == nil || s.b == nil || s.a == s.b || s.a.ncol != s.b.ncol {
		return
	}
	if rw.sc.idOf(s.a) == rw.sc.idOf(s.b) {
		s.b = s.a
		rw.xprods++
		rw.applied++
	}
}

// aggFold peels linear layers off a sum-sink's input, accumulating them into
// the sink's affine publish transform (result = postMul·raw + postAdd). The
// raw residual sink keys the result cache, so an iteration-varying scalar no
// longer defeats caching of the expensive reduction under it.
func (rw *rewriter) aggFold(s *Sink) {
	if !rw.aggfold || s.agg != AggSum {
		return
	}
	if s.kind != SinkAgg && s.kind != SinkAggCol {
		return
	}
	for iter := 0; iter < 64; iter++ {
		y := s.a
		if !rw.canRewrite(y) {
			return
		}
		// perCell is how many input elements fold into one output cell: the
		// whole matrix for agg, one column for agg.col.
		perCell := float64(y.nrow)
		if s.kind == SinkAgg {
			perCell *= float64(y.ncol)
		}
		var x *Mat
		var alpha, beta float64
		ok := false
		switch y.kind {
		case opSapply:
			if y.un == UnaryNeg {
				x, alpha, beta, ok = y.a, -1, 0, true
			}
		case opMapplyScalar:
			c := y.scalar
			switch y.bin {
			case BinAdd:
				x, alpha, beta, ok = y.a, 1, c*perCell, true
			case BinSub:
				if y.scalarLeft {
					x, alpha, beta, ok = y.a, -1, c*perCell, true
				} else {
					x, alpha, beta, ok = y.a, 1, -c*perCell, true
				}
			case BinMul:
				x, alpha, beta, ok = y.a, c, 0, true
			}
		case opMapplyMM:
			av, bv := y.a, y.b
			switch {
			case av.kind == opConst || bv.kind == opConst:
				cnode, other, constLeft := bv, av, false
				if av.kind == opConst {
					cnode, other, constLeft = av, bv, true
				}
				c := cnode.vec[0]
				switch y.bin {
				case BinAdd:
					x, alpha, beta, ok = other, 1, c*perCell, true
				case BinSub:
					if constLeft {
						x, alpha, beta, ok = other, -1, c*perCell, true
					} else {
						x, alpha, beta, ok = other, 1, -c*perCell, true
					}
				case BinMul:
					x, alpha, beta, ok = other, c, 0, true
				}
			case rw.sc.idOf(av) == rw.sc.idOf(bv):
				switch y.bin {
				case BinAdd:
					x, alpha, beta, ok = av, 2, 0, true
				case BinSub:
					// X - X' with X ≡ X': identically zero.
					x, alpha, beta, ok = av, 0, 0, true
				}
			}
		case opMapplyRowVec:
			// sum(X ± v) folds for the full-matrix sink: every row adds Σv.
			if s.kind == SinkAgg {
				var vs float64
				for _, v := range y.vec {
					vs += v
				}
				switch y.bin {
				case BinAdd:
					x, alpha, beta, ok = y.a, 1, vs*float64(y.nrow), true
				case BinSub:
					if y.vecLeft {
						x, alpha, beta, ok = y.a, -1, vs*float64(y.nrow), true
					} else {
						x, alpha, beta, ok = y.a, 1, -vs*float64(y.nrow), true
					}
				}
			}
		}
		if !ok {
			return
		}
		if !s.hasPost {
			s.hasPost, s.postMul, s.postAdd = true, 1, 0
		}
		// Compose: result = postMul·(α·raw' + β) + postAdd.
		s.postAdd += s.postMul * beta
		s.postMul *= alpha
		s.a = x
		rw.aggfolds++
		rw.applied++
	}
}

// eliminate records a dead-input elimination: the subtree rooted at dead is
// no longer reachable from this consumer. The counter reports the nodes
// disconnected along the pruned edge — leaves included, since an unread leaf
// is exactly the byte savings — without descending past materialization
// boundaries. Shared nodes still reachable elsewhere are CSE-served, so the
// count is an upper bound on removed work and exact for exclusive subtrees.
func (rw *rewriter) eliminate(dead *Mat) {
	rw.dces++
	rw.applied++
	seen := make(map[*Mat]bool)
	var walk func(*Mat)
	walk = func(m *Mat) {
		if m == nil || seen[m] {
			return
		}
		seen[m] = true
		rw.deadNodes++
		if m.kind == opConst || m.kind == opLeaf || m.Materialized() {
			return
		}
		walk(m.a)
		walk(m.b)
	}
	walk(dead)
}

func isIdentitySelection(cols []int) bool {
	for i, c := range cols {
		if c != i {
			return false
		}
	}
	return true
}

func intsKey(cols []int) string {
	b := make([]byte, 0, len(cols)*3)
	for _, c := range cols {
		for c >= 10 {
			b = append(b, byte('0'+c%10))
			c /= 10
		}
		b = append(b, byte('0'+c), ',')
	}
	return string(b)
}
