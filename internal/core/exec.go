package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/safs"
	"repro/internal/trace"
)

// partInfo describes one I/O partition of the DAG's partition dimension.
type partInfo struct {
	idx      int
	rows     int
	startRow int64
}

// taskRange is one scheduler dispatch unit: a contiguous run of I/O
// partitions. The scheduler hands out multi-partition ranges first (matched
// to the SAFS stripe so one range is one large sequential I/O) and single
// partitions near the end of the pass for load balance (§3.3).
type taskRange struct{ lo, hi int }

// runState carries everything shared by the workers of one fused pass.
type runState struct {
	e         *Engine
	d         *dag
	fuse      FuseLevel
	nparts    int
	chunkRows int
	outStores []matrix.Store // per tall target (originals, published on success)
	// writeStores are pass-tagged views of outStores: partition writes go
	// through them so the array queues and attributes the I/O to this pass.
	writeStores []matrix.Store
	leafSlots   []int // slots of store-backed nodes
	// leafPass[slot] is the pass-tagged view of a leaf's store (nil for
	// non-leaf slots); workers read and prefetch through these.
	leafPass []matrix.Store
	// pass is this run's SAFS identity (nil without an array).
	pass     *safs.Pass
	tasks    []taskRange
	taskNext atomic.Int64
	cum      *cumCoord
	// wb is the bounded write-behind queue for tall-output partitions
	// (nil under Config.SyncWrites).
	wb *safs.WriteBack

	// Per-pass observability counters, folded into MaterializeStats when
	// the pass finishes.
	bytesRead   atomic.Int64
	prefHits    atomic.Int64
	prefMiss    atomic.Int64
	readWaitNs  atomic.Int64
	syncWriteNs atomic.Int64
	syncBytes   atomic.Int64
	parts       atomic.Int64
	chunks      atomic.Int64
	// prefAbandoned counts prefetched partitions drained unconsumed on
	// worker-exit paths.
	prefAbandoned atomic.Int64

	// Deterministic sink reduction: each task folds into its own accumulator
	// set and commits it when the task's last partition finishes; commits
	// merge into global strictly in task-index order, so floating-point sink
	// results do not depend on which worker won the race for which task.
	// mergeQueue buffers out-of-order commits (normally at most one per
	// worker; more only under heavy task skew) until their turn.
	mergeMu    sync.Mutex
	mergeNext  int
	mergeQueue map[int][]*sinkAcc
	global     []*sinkAcc

	// outPool recycles tall-output partition buffers. It is shared (unlike
	// the per-worker chunk pools) because ownership round-trips through the
	// async writers: a worker checks a buffer out, the write-behind goroutine
	// checks it back in.
	outMu   sync.Mutex
	outPool map[int][][]float64

	errMu  sync.Mutex
	err    error
	failed atomic.Bool
}

func (rs *runState) getOut(n int) []float64 {
	rs.outMu.Lock()
	if bs := rs.outPool[n]; len(bs) > 0 {
		b := bs[len(bs)-1]
		rs.outPool[n] = bs[:len(bs)-1]
		rs.outMu.Unlock()
		return b
	}
	rs.outMu.Unlock()
	return make([]float64, n)
}

func (rs *runState) putOut(b []float64) {
	rs.outMu.Lock()
	rs.outPool[len(b)] = append(rs.outPool[len(b)], b)
	rs.outMu.Unlock()
}

func (rs *runState) fail(err error) {
	rs.errMu.Lock()
	if rs.err == nil {
		rs.err = err
	}
	rs.errMu.Unlock()
	rs.failed.Store(true)
	if rs.cum != nil {
		rs.cum.abort()
	}
}

// runFused executes the whole DAG in a single parallel pass at the given
// fusion level. Tall-output partition writes ride the write-behind queue
// (unless Config.SyncWrites): a worker hands partition i's outputs to the
// queue and immediately starts partition i+1's compute, and the pass drains
// the queue at a barrier before returning — so a write failure, like any
// compute failure, always surfaces here. ms accumulates the pass's
// observability counters.
func (e *Engine) runFused(ctx context.Context, d *dag, fuse FuseLevel, ms *MaterializeStats, pass *safs.Pass, pr passRun) error {
	e.stats.Passes.Add(1)
	// Integrity counters are attributed through the pass identity's own
	// counters (not by diffing the array-wide totals, which would misattribute
	// under concurrent passes). Snapshot around the run since FuseNone reuses
	// one pass across several runFused calls.
	p0 := pass.Stats()
	rs := &runState{e: e, d: d, fuse: fuse, pass: pass, outPool: make(map[int][][]float64)}
	rs.nparts = matrix.NumParts(d.nrow, e.cfg.PartRows)
	rs.chunkRows = e.chunkRowsFor(d, fuse)
	rs.outStores = make([]matrix.Store, len(d.talls))
	rs.writeStores = make([]matrix.Store, len(d.talls))
	freeOut := func() {
		for _, st := range rs.outStores {
			if st != nil {
				st.Free()
			}
		}
	}
	for i, m := range d.talls {
		em := e.cfg.EM
		m.mu.Lock()
		// set.cache(..., em=TRUE) caches on SSDs when an array is
		// attached; without one the cache falls back to memory.
		if m.cache && m.cacheEM && e.cfg.FS != nil {
			em = true
		}
		m.mu.Unlock()
		st, err := e.newStoreOn(m.nrow, m.ncol, em)
		if err != nil {
			freeOut()
			return err
		}
		if e.testStoreWrap != nil {
			st = e.testStoreWrap(st)
		}
		rs.outStores[i] = st
		rs.writeStores[i] = matrix.StoreWithPass(st, pass)
	}
	rs.leafPass = make([]matrix.Store, len(d.nodes))
	for slot, m := range d.nodes {
		if m.Materialized() {
			rs.leafSlots = append(rs.leafSlots, slot)
			rs.leafPass[slot] = matrix.StoreWithPass(unwrapStore(m.Store()), pass)
		}
	}
	if len(d.cums) > 0 {
		rs.cum = newCumCoord(d.cums, rs.nparts)
	}
	rs.tasks = buildTasks(rs.nparts, e.cfg.SuperParts, e.cfg.Workers)
	rs.mergeQueue = make(map[int][]*sinkAcc)
	rs.global = rs.newTaskAccs()
	if !e.cfg.SyncWrites && len(d.talls) > 0 {
		// A failed write aborts the pass right away rather than at the
		// drain barrier, so compute stops producing partitions nobody can
		// persist.
		rs.wb = safs.NewWriteBack(e.cfg.WriteBehindDepth, func(err error) { rs.fail(err) })
		if pr.pt != nil {
			// One span buffer per write-behind lane; the lane token's channel
			// round-trip serializes buffer ownership across jobs.
			laneBufs := make([]*trace.Buf, rs.wb.Lanes())
			for i := range laneBufs {
				laneBufs[i] = pr.pt.newBuf(trace.WriterTrack(i))
			}
			rs.wb.SetTraceBufs(laneBufs)
		}
	}

	nw := e.cfg.Workers
	if nw > rs.nparts {
		nw = rs.nparts
	}
	if nw < 1 {
		nw = 1
	}
	// Goroutine labels are per goroutine, so each worker labels itself; CPU
	// profiles then segment by pass and session owner.
	labels := pprof.Labels("flashr_pass", strconv.FormatInt(pr.id, 10), "flashr_owner", pr.owner)
	var wg sync.WaitGroup
	workers := make([]*worker, nw)
	for i := 0; i < nw; i++ {
		workers[i] = newWorker(rs, i, nw)
		workers[i].buf = pr.pt.newBuf(trace.WorkerTrack(i))
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			pprof.Do(context.Background(), labels, func(context.Context) { w.run() })
		}(workers[i])
	}
	// Cancellation watcher: flips the pass into the failed state so workers
	// stop at the next partition boundary; the drain below still waits out
	// writes already in flight.
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	if ctx != nil && ctx.Done() != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctx.Done():
				rs.fail(ctx.Err())
			case <-watchDone:
			}
		}()
	}
	wg.Wait()
	close(watchDone)
	watchWG.Wait()
	// Invariant: every worker drained its pending prefetches before exiting
	// (the reads write into pooled buffers, so an abandoned map is a leak and
	// a latent use-after-recycle).
	for _, w := range workers {
		if len(w.pending) != 0 {
			rs.fail(fmt.Errorf("core: worker %d exited with %d pending prefetches", w.id, len(w.pending)))
		}
	}

	// Drain barrier: every queued write completes (or reports its failure)
	// before the pass returns and before any store is freed.
	if rs.wb != nil {
		drainSp := pr.pt.rootBuf().Begin(trace.KindDrain, pr.id)
		d0 := time.Now()
		if err := rs.wb.Drain(); err != nil {
			rs.fail(err)
		}
		pr.pt.rootBuf().End(drainSp)
		ms.WriteDrain += time.Since(d0)
		wst := rs.wb.Stats()
		ms.WriteStall += wst.Stall
		ms.WriteTime += wst.WriteTime
		ms.BytesWritten += wst.Bytes
		ms.WriteJobs += wst.Jobs
	}
	ms.Passes++
	ms.Parts += rs.parts.Load()
	ms.Chunks += rs.chunks.Load()
	// Virtual nodes this pass evaluated: what CSE unification and cache hits
	// remove shows up directly as a smaller count here.
	for _, m := range d.nodes {
		if !m.Materialized() && m.kind != opConst {
			ms.NodesExecuted++
		}
	}
	ms.BytesRead += rs.bytesRead.Load()
	ms.PrefetchHits += rs.prefHits.Load()
	ms.PrefetchMisses += rs.prefMiss.Load()
	ms.ReadWait += time.Duration(rs.readWaitNs.Load())
	// Synchronous writes stall compute for their full duration.
	ms.WriteStall += time.Duration(rs.syncWriteNs.Load())
	ms.WriteTime += time.Duration(rs.syncWriteNs.Load())
	ms.BytesWritten += rs.syncBytes.Load()
	ms.PrefetchAbandoned += rs.prefAbandoned.Load()
	if pass != nil {
		p1 := pass.Stats()
		ms.ChecksumFailures += p1.ChecksumFailures - p0.ChecksumFailures
		ms.IORetries += p1.Retries - p0.Retries
		ms.RecoveredReads += p1.RecoveredReads - p0.RecoveredReads
		ms.RecoveredWrites += p1.RecoveredWrites - p0.RecoveredWrites
		ms.VerifyTime += p1.VerifyTime - p0.VerifyTime
	}

	if rs.err != nil {
		freeOut()
		return rs.err
	}
	// Publish sink results. A clean pass committed every task in order; an
	// unmerged remainder means a worker exited without committing or
	// failing, which must not pass silently.
	if rs.mergeNext != len(rs.tasks) || len(rs.mergeQueue) != 0 {
		freeOut()
		return fmt.Errorf("core: %d of %d tasks merged at pass end (%d queued)",
			rs.mergeNext, len(rs.tasks), len(rs.mergeQueue))
	}
	for si, s := range d.sinks {
		rs.global[si].finish(s)
	}
	// Publish tall-target stores. attachStore refuses a target another pass
	// beat us to (possible only when passes share a node); the loser frees
	// its redundant store rather than clobbering the winner's.
	for i, m := range d.talls {
		if !m.attachStore(rs.outStores[i]) {
			rs.outStores[i].Free()
		}
	}
	return nil
}

// chunkRowsFor sizes a Pcache partition: small enough that one chunk of the
// widest matrix in the DAG fits the Pcache budget; FuseMem evaluates whole
// I/O partitions.
func (e *Engine) chunkRowsFor(d *dag, fuse FuseLevel) int {
	if fuse != FuseCache {
		return e.cfg.PartRows
	}
	maxNcol := 1
	for _, m := range d.nodes {
		if m.ncol > maxNcol {
			maxNcol = m.ncol
		}
	}
	rows := e.cfg.PcacheBytes / 8 / maxNcol
	if rows < 4 {
		rows = 4
	}
	if rows > e.cfg.PartRows {
		rows = e.cfg.PartRows
	}
	return rows
}

// buildTasks precomputes scheduler dispatch units: super-task ranges first,
// then single partitions for the tail so threads finish together. The ranges
// exactly cover [0, nparts) with no overlap for any super/workers values —
// non-positive workers or super are treated as 1 (an unclamped negative
// workers once made the tail reservation negative, extending super ranges
// past nparts into partitions that do not exist).
func buildTasks(nparts, super, workers int) []taskRange {
	if nparts <= 0 {
		return nil
	}
	if super < 1 {
		super = 1
	}
	if workers < 1 {
		workers = 1
	}
	tail := workers * super
	if tail > nparts {
		tail = nparts
	}
	var tasks []taskRange
	p := 0
	for ; p+super <= nparts-tail; p += super {
		tasks = append(tasks, taskRange{p, p + super})
	}
	for ; p < nparts; p++ {
		tasks = append(tasks, taskRange{p, p + 1})
	}
	return tasks
}

// entry is one node's chunk buffer during depth-first evaluation.
type entry struct {
	buf   []float64
	refs  int32
	live  bool
	owned bool
}

// worker evaluates partitions; it owns a buffer pool keyed by exact length
// (chunk shapes repeat, so recycling hits nearly always — the paper's
// fixed-chunk recycling at Pcache granularity) and a slot-indexed memo so
// the per-chunk hot path is array arithmetic, not hashing.
type worker struct {
	rs   *runState
	id   int
	node int // simulated NUMA node this worker is bound to
	// buf is this worker's span lane (nil when tracing is off).
	buf  *trace.Buf
	pool map[int][][]float64
	memo []entry // indexed by slot
	used []int   // slots touched in the current chunk
	// sinks is the accumulator set of the task currently being processed;
	// swapped per task and handed to commitTask for the ordered merge.
	sinks []*sinkAcc
	// cumRun holds, per opCumCol node id, the running column accumulator
	// for the partition currently being processed.
	cumRun map[uint64][]float64
	// leafBufs holds the full current I/O partition per leaf slot;
	// leafOwned marks which came from the pool (vs zero-copy MemStore
	// references that must not be recycled).
	leafBufs  []([]float64)
	leafOwned []bool
	// pending holds prefetched partitions: partition → in-flight reads.
	pending map[int]*prefetched
}

type prefetched struct {
	bufs map[int][]float64 // slot → buffer
	ch   chan safs.Request
	want int
}

func newWorker(rs *runState, id, total int) *worker {
	w := &worker{
		rs:        rs,
		id:        id,
		node:      rs.e.cfg.Topo.NodeOfWorker(id, total),
		pool:      make(map[int][][]float64),
		memo:      make([]entry, len(rs.d.nodes)),
		cumRun:    make(map[uint64][]float64),
		leafBufs:  make([][]float64, len(rs.d.nodes)),
		leafOwned: make([]bool, len(rs.d.nodes)),
		pending:   make(map[int]*prefetched),
	}
	return w
}

// newTaskAccs builds a fresh accumulator set (one per sink in the DAG).
func (rs *runState) newTaskAccs() []*sinkAcc {
	accs := make([]*sinkAcc, len(rs.d.sinks))
	for i, s := range rs.d.sinks {
		accs[i] = newSinkAcc(s)
	}
	return accs
}

// commitTask hands a finished task's sink partials to the ordered merge:
// queued under the task index, then merged into rs.global together with any
// consecutive successors already waiting. Only the commit under mergeMu
// touches rs.global, so the merge order is exactly task order.
func (rs *runState) commitTask(t int, accs []*sinkAcc) {
	rs.mergeMu.Lock()
	defer rs.mergeMu.Unlock()
	rs.mergeQueue[t] = accs
	for {
		q, ok := rs.mergeQueue[rs.mergeNext]
		if !ok {
			return
		}
		delete(rs.mergeQueue, rs.mergeNext)
		for si := range rs.global {
			rs.global[si].merge(q[si])
		}
		rs.mergeNext++
	}
}

func (w *worker) get(n int) []float64 {
	if bs := w.pool[n]; len(bs) > 0 {
		b := bs[len(bs)-1]
		w.pool[n] = bs[:len(bs)-1]
		return b
	}
	return make([]float64, n)
}

func (w *worker) put(b []float64) {
	w.pool[len(b)] = append(w.pool[len(b)], b)
}

func (w *worker) run() {
	// Registered first so it runs last: even when the recover handler above
	// it fires, every in-flight prefetch is waited out and its buffers return
	// to the pool. An exit path that abandons the pending map leaves async
	// reads writing into buffers the pool may hand to a later pass.
	defer w.drainPending()
	defer func() {
		if r := recover(); r != nil {
			w.rs.fail(fmt.Errorf("core: worker %d panic: %v", w.id, r))
		}
	}()
	t := int(w.rs.taskNext.Add(1) - 1)
	if t >= len(w.rs.tasks) {
		return
	}
	// Issue read-ahead for the first partition of the range; each partition
	// then prefetches its successor before computing.
	w.prefetch(w.rs.tasks[t].lo)
	for t >= 0 && !w.rs.failed.Load() {
		t = w.runTask(t)
	}
}

// runTask processes one scheduler dispatch unit under a super-task span and
// returns the next claimed task index (-1 when the worker should exit).
func (w *worker) runTask(t int) (next int) {
	tr := w.rs.tasks[t]
	sp := w.buf.Begin(trace.KindSuperTask, int64(t))
	defer w.buf.End(sp)
	w.sinks = w.rs.newTaskAccs()
	next = -1
	for p := tr.lo; p < tr.hi; p++ {
		if w.rs.failed.Load() {
			return -1
		}
		if p+1 < tr.hi {
			w.prefetch(p + 1)
		} else if n := int(w.rs.taskNext.Add(1) - 1); n < len(w.rs.tasks) {
			// Last partition of the range: claim the next range now and
			// prefetch across the boundary, so the first partition of
			// every range after the first is read ahead too (read-ahead
			// used to stop at super-task boundaries, making it a
			// guaranteed cold read).
			next = n
			w.prefetch(w.rs.tasks[n].lo)
		}
		if err := w.processPartition(p); err != nil {
			w.rs.fail(err)
			return -1
		}
	}
	w.rs.commitTask(t, w.sinks)
	return next
}

// drainPending waits out every still-pending prefetch and returns its
// buffers to the worker pool. Runs on every worker-exit path.
func (w *worker) drainPending() {
	for p, pf := range w.pending {
		delete(w.pending, p)
		for i := 0; i < pf.want; i++ {
			<-pf.ch
		}
		for _, b := range pf.bufs {
			w.put(b)
		}
		w.rs.prefAbandoned.Add(1)
	}
}

// prefetch issues asynchronous SAFS reads for every flat-SAFS leaf of
// partition p. Blocked and in-memory leaves are read synchronously at use
// time.
func (w *worker) prefetch(p int) {
	if _, ok := w.pending[p]; ok {
		return
	}
	pf := &prefetched{bufs: make(map[int][]float64)}
	for _, slot := range w.rs.leafSlots {
		m := w.rs.d.nodes[slot]
		st, ok := w.rs.leafPass[slot].(*matrix.SAFSStore)
		if !ok {
			continue
		}
		rows := matrix.PartRowsOf(m.nrow, w.rs.e.cfg.PartRows, p)
		buf := w.get(rows * m.ncol)
		if pf.ch == nil {
			pf.ch = make(chan safs.Request, len(w.rs.leafSlots))
		}
		if err := st.ReadPartAsync(p, buf, slot, pf.ch); err != nil {
			// Fall back to a synchronous read at use time.
			w.put(buf)
			continue
		}
		pf.bufs[slot] = buf
		pf.want++
	}
	if pf.want > 0 {
		w.pending[p] = pf
		if h := w.rs.e.testSchedEvent; h != nil {
			h("prefetch", p)
		}
	}
}

// takePrefetched waits for partition p's async reads, returning the buffer
// map (nil when nothing was prefetched).
func (w *worker) takePrefetched(p int) (map[int][]float64, error) {
	pf, ok := w.pending[p]
	if !ok {
		return nil, nil
	}
	delete(w.pending, p)
	var firstErr error
	t0 := time.Now()
	for i := 0; i < pf.want; i++ {
		req := <-pf.ch
		if req.Err != nil && firstErr == nil {
			firstErr = req.Err
		}
	}
	w.rs.readWaitNs.Add(time.Since(t0).Nanoseconds())
	if firstErr != nil {
		for _, b := range pf.bufs {
			w.put(b)
		}
		return nil, firstErr
	}
	return pf.bufs, nil
}

func (w *worker) processPartition(p int) error {
	rs := w.rs
	e := rs.e
	if h := e.testSchedEvent; h != nil {
		h("process", p)
	}
	rows := matrix.PartRowsOf(rs.d.nrow, e.cfg.PartRows, p)
	if rows == 0 {
		return nil
	}
	pi := partInfo{idx: p, rows: rows, startRow: int64(p) * int64(e.cfg.PartRows)}
	partNode := e.cfg.Topo.NodeOfPart(p)

	// 1. Leaf partitions into memory (prefetched where possible). The read
	// span's Bytes/N mirror the bytesRead and prefetch counters exactly —
	// zero-copy in-memory references count in neither — which is what the
	// conservation suite pins.
	rsp := w.buf.Begin(trace.KindRead, int64(p))
	pfBufs, err := w.takePrefetched(p)
	if err != nil {
		w.buf.End(rsp)
		return err
	}
	for _, slot := range rs.leafSlots {
		m := rs.d.nodes[slot]
		e.cfg.Topo.RecordAccess(w.node, partNode)
		if buf, ok := pfBufs[slot]; ok {
			w.leafBufs[slot] = buf
			w.leafOwned[slot] = true
			rs.prefHits.Add(1)
			rs.bytesRead.Add(int64(rows*m.ncol) * 8)
			rsp.Bytes += int64(rows*m.ncol) * 8
			rsp.N++
			continue
		}
		st := rs.leafPass[slot]
		// Zero-copy fast path for row-major in-memory partitions.
		if ms, ok := st.(*matrix.MemStore); ok {
			if ref, ok := ms.PartRef(p); ok {
				w.leafBufs[slot] = ref
				w.leafOwned[slot] = false
				continue
			}
		}
		buf := w.get(rows * m.ncol)
		if err := st.ReadPart(p, buf); err != nil {
			w.put(buf)
			w.buf.End(rsp)
			return fmt.Errorf("core: reading leaf %d partition %d: %w", m.id, p, err)
		}
		rs.prefMiss.Add(1)
		rs.bytesRead.Add(int64(rows*m.ncol) * 8)
		rsp.Bytes += int64(rows*m.ncol) * 8
		rsp.N++
		w.leafBufs[slot] = buf
		w.leafOwned[slot] = true
	}
	w.buf.End(rsp)

	csp := w.buf.Begin(trace.KindCompute, int64(p))
	// 2. Cumulative carries: wait for partition p's carry vectors (§3.3(j)).
	if rs.cum != nil {
		carries, err := rs.cum.wait(p)
		if err != nil {
			w.buf.End(csp)
			return err
		}
		for id, c := range carries {
			w.cumRun[id] = c
		}
	}

	// 3. Output partition buffers for tall targets (from the shared pool —
	// the async writers return them, possibly to a different worker).
	outBufs := make([][]float64, len(rs.d.talls))
	for i, m := range rs.d.talls {
		outBufs[i] = rs.getOut(rows * m.ncol)
	}

	// 4. Pcache chunk loop: depth-first DAG evaluation per chunk.
	for r0 := 0; r0 < rows; r0 += rs.chunkRows {
		cr := rs.chunkRows
		if r0+cr > rows {
			cr = rows - r0
		}
		for i, slot := range rs.d.tallSlots {
			m := rs.d.talls[i]
			buf := w.use(slot, pi, r0, cr)
			copy(outBufs[i][r0*m.ncol:(r0+cr)*m.ncol], buf[:cr*m.ncol])
			w.done(slot)
		}
		for si, acc := range w.sinks {
			acc.accumulate(w, rs.d.sinkASlot[si], rs.d.sinkBSlot[si], pi, r0, cr)
		}
		if len(w.used) != 0 {
			w.buf.End(csp)
			return fmt.Errorf("core: %d chunk buffers leaked after chunk eval", len(w.used))
		}
		e.stats.Chunks.Add(1)
		rs.chunks.Add(1)
		csp.N++
	}

	// 5. Publish cumulative carries for partition p+1.
	if rs.cum != nil {
		rs.cum.publish(p+1, w.cumRun)
	}
	w.buf.End(csp)

	// 6. Hand tall-target partitions to the write-behind queue and move on
	// to the next partition's compute; buffer ownership transfers to the
	// writer until its release callback returns it to the shared pool.
	// Under SyncWrites the worker stalls through each write instead. The
	// worker-side span carries bytes only for synchronous writes; async bytes
	// land on the writer-lane spans, so summing Bytes over every write-back
	// span equals BytesWritten with no double counting.
	wsp := w.buf.Begin(trace.KindWriteBack, int64(p))
	for i, m := range rs.d.talls {
		buf := outBufs[i]
		n := rows * m.ncol
		st := rs.writeStores[i]
		mid := m.id
		if rs.wb != nil {
			rs.wb.Enqueue(n*8, func() error {
				if err := st.WritePart(p, buf[:n]); err != nil {
					return fmt.Errorf("core: writing target %d partition %d: %w", mid, p, err)
				}
				return nil
			}, func() { rs.putOut(buf) })
			continue
		}
		t0 := time.Now()
		err := st.WritePart(p, buf[:n])
		rs.syncWriteNs.Add(time.Since(t0).Nanoseconds())
		rs.syncBytes.Add(int64(n) * 8)
		wsp.Bytes += int64(n) * 8
		rs.putOut(buf)
		if err != nil {
			w.buf.End(wsp)
			return fmt.Errorf("core: writing target %d partition %d: %w", mid, p, err)
		}
	}
	w.buf.End(wsp)
	for _, slot := range rs.leafSlots {
		if w.leafOwned[slot] {
			w.put(w.leafBufs[slot])
		}
		w.leafBufs[slot] = nil
		w.leafOwned[slot] = false
	}
	e.stats.Parts.Add(1)
	rs.parts.Add(1)
	return nil
}

// use returns node slot's chunk [r0, r0+cr) of partition pi, evaluating it
// (and transitively its inputs) if this is the first consumer in the current
// chunk. Every use must be paired with done.
func (w *worker) use(slot int, pi partInfo, r0, cr int) []float64 {
	ent := &w.memo[slot]
	if ent.live {
		return ent.buf
	}
	buf, owned := w.eval(slot, pi, r0, cr)
	ent.buf = buf
	ent.owned = owned
	ent.live = true
	ent.refs = w.rs.d.refs[slot]
	if ent.refs == 0 {
		// A root evaluated directly (no registered consumers).
		ent.refs = 1
	}
	w.used = append(w.used, slot)
	w.rs.e.stats.NodesEval.Add(1)
	return ent.buf
}

// done releases one reference on a slot's chunk buffer; the buffer returns
// to the pool (and becomes the next op's output, already cache-hot) when its
// last consumer finishes.
func (w *worker) done(slot int) {
	ent := &w.memo[slot]
	if !ent.live {
		panic(fmt.Sprintf("core: done(%d) without use", slot))
	}
	ent.refs--
	if ent.refs <= 0 {
		if ent.owned {
			w.put(ent.buf)
		}
		ent.live = false
		ent.buf = nil
		for i, s := range w.used {
			if s == slot {
				w.used = append(w.used[:i], w.used[i+1:]...)
				break
			}
		}
	}
}

// eval computes one Pcache chunk of the node at slot, returning the buffer
// and whether the worker owns it (pool-recyclable).
func (w *worker) eval(slot int, pi partInfo, r0, cr int) ([]float64, bool) {
	m := w.rs.d.nodes[slot]
	if lb := w.leafBufs[slot]; lb != nil {
		return lb[r0*m.ncol : (r0+cr)*m.ncol], false
	}
	if m.Materialized() {
		panic(fmt.Sprintf("core: leaf %d partition not loaded", m.id))
	}
	aSlot, bSlot := w.rs.d.aSlot[slot], w.rs.d.bSlot[slot]
	switch m.kind {
	case opConst:
		out := w.get(cr * m.ncol)
		v := m.vec[0]
		for i := range out {
			out[i] = v
		}
		return out, true

	case opSapply:
		in := w.use(aSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		m.un.ApplyV(out, in[:cr*m.ncol])
		w.done(aSlot)
		return out, true

	case opMapplyMM:
		a := w.use(aSlot, pi, r0, cr)
		b := w.use(bSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		m.bin.ApplyVV(out, a[:cr*m.ncol], b[:cr*m.ncol])
		w.done(aSlot)
		w.done(bSlot)
		return out, true

	case opMapplyScalar:
		a := w.use(aSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		if m.scalarLeft {
			m.bin.ApplySV(out, m.scalar, a[:cr*m.ncol])
		} else {
			m.bin.ApplyVS(out, a[:cr*m.ncol], m.scalar)
		}
		w.done(aSlot)
		return out, true

	case opMapplyRowVec:
		a := w.use(aSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		nc := m.ncol
		for r := 0; r < cr; r++ {
			arow := a[r*nc : (r+1)*nc]
			orow := out[r*nc : (r+1)*nc]
			if m.vecLeft {
				m.bin.ApplyVV(orow, m.vec, arow)
			} else {
				m.bin.ApplyVV(orow, arow, m.vec)
			}
		}
		w.done(aSlot)
		return out, true

	case opMapplyColVec:
		a := w.use(aSlot, pi, r0, cr)
		v := w.use(bSlot, pi, r0, cr) // cr×1
		out := w.get(cr * m.ncol)
		nc := m.ncol
		for r := 0; r < cr; r++ {
			arow := a[r*nc : (r+1)*nc]
			orow := out[r*nc : (r+1)*nc]
			if m.vecLeft {
				m.bin.ApplySV(orow, v[r], arow)
			} else {
				m.bin.ApplyVS(orow, arow, v[r])
			}
		}
		w.done(aSlot)
		w.done(bSlot)
		return out, true

	case opInnerProd:
		a := w.use(aSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		p, mm := m.small.R, m.small.C
		switch {
		case m.f1 == nil:
			for i := range out[:cr*mm] {
				out[i] = 0
			}
			blas.Gemm(cr, mm, p, a, p, m.small.Data, mm, out, mm)
		case m.f1 == BinEuclid && m.f2 == BinAdd:
			evalInnerProdEuclid(out[:cr*mm], a[:cr*p], m.smallT.Data, p, mm, cr)
		default:
			evalInnerProdGen(out[:cr*mm], a[:cr*p], m.small.Data, p, mm, m.f1, m.f2, cr)
		}
		w.done(aSlot)
		return out, true

	case opAggRow:
		a := w.use(aSlot, pi, r0, cr)
		out := w.get(cr)
		nc := m.a.ncol
		switch {
		case m.arg == argMin:
			for r := 0; r < cr; r++ {
				out[r] = float64(argExtreme(a[r*nc:(r+1)*nc], true))
			}
		case m.arg == argMax:
			for r := 0; r < cr; r++ {
				out[r] = float64(argExtreme(a[r*nc:(r+1)*nc], false))
			}
		case m.agg == AggSum:
			for r := 0; r < cr; r++ {
				var s float64
				for _, v := range a[r*nc : (r+1)*nc] {
					s += v
				}
				out[r] = s
			}
		default:
			f := m.agg
			for r := 0; r < cr; r++ {
				out[r] = f.StepV(f.Init, a[r*nc:(r+1)*nc])
			}
		}
		w.done(aSlot)
		return out, true

	case opGroupByCol:
		a := w.use(aSlot, pi, r0, cr)
		out := w.get(cr * m.groupK)
		nc := m.a.ncol
		k := m.groupK
		f := m.agg
		for i := range out[:cr*k] {
			out[i] = f.Init
		}
		if f == AggSum {
			for r := 0; r < cr; r++ {
				arow := a[r*nc : (r+1)*nc]
				orow := out[r*k : (r+1)*k]
				for j, x := range arow {
					orow[m.colLabels[j]] += x
				}
			}
		} else {
			for r := 0; r < cr; r++ {
				arow := a[r*nc : (r+1)*nc]
				orow := out[r*k : (r+1)*k]
				for j, x := range arow {
					g := m.colLabels[j]
					orow[g] = f.Step(orow[g], x)
				}
			}
		}
		w.done(aSlot)
		return out, true

	case opCumRow:
		a := w.use(aSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		nc := m.ncol
		f := m.agg
		for r := 0; r < cr; r++ {
			run := f.Init
			arow := a[r*nc : (r+1)*nc]
			orow := out[r*nc : (r+1)*nc]
			for j, x := range arow {
				run = f.Step(run, x)
				orow[j] = run
			}
		}
		w.done(aSlot)
		return out, true

	case opCumCol:
		a := w.use(aSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		nc := m.ncol
		f := m.agg
		run := w.cumRun[m.id]
		if run == nil {
			run = make([]float64, nc)
			if m.vec != nil {
				copy(run, m.vec) // carry-seeded (CumColCarry)
			} else {
				for j := range run {
					run[j] = f.Init
				}
			}
			w.cumRun[m.id] = run
		}
		for r := 0; r < cr; r++ {
			arow := a[r*nc : (r+1)*nc]
			orow := out[r*nc : (r+1)*nc]
			for j, x := range arow {
				run[j] = f.Step(run[j], x)
				orow[j] = run[j]
			}
		}
		w.done(aSlot)
		return out, true

	case opCols:
		a := w.use(aSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		matrix.GatherCols(out, a, cr, m.a.ncol, m.cols)
		w.done(aSlot)
		return out, true

	case opCbind:
		a := w.use(aSlot, pi, r0, cr)
		b := w.use(bSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		nca, ncb, nc := m.a.ncol, m.b.ncol, m.ncol
		for r := 0; r < cr; r++ {
			copy(out[r*nc:r*nc+nca], a[r*nca:(r+1)*nca])
			copy(out[r*nc+nca:(r+1)*nc], b[r*ncb:(r+1)*ncb])
		}
		w.done(aSlot)
		w.done(bSlot)
		return out, true

	case opSetCols:
		a := w.use(aSlot, pi, r0, cr)
		b := w.use(bSlot, pi, r0, cr)
		out := w.get(cr * m.ncol)
		nc, ncb := m.ncol, m.b.ncol
		copy(out[:cr*nc], a[:cr*nc])
		for r := 0; r < cr; r++ {
			brow := b[r*ncb : (r+1)*ncb]
			orow := out[r*nc : (r+1)*nc]
			for j, c := range m.cols {
				orow[c] = brow[j]
			}
		}
		w.done(aSlot)
		w.done(bSlot)
		return out, true

	default:
		panic(fmt.Sprintf("core: eval of unexpected op %v", m.kind))
	}
}

// evalInnerProdEuclid is the specialized kernel for the k-means distance
// computation (f1 = "euclidean", f2 = "+"): D[i,j] = Σ_k (A[i,k]-B[k,j])².
// btData is the small operand TRANSPOSED (mm×p row-major) so each output
// cell is one direct subtract-square pass over two contiguous p-vectors.
func evalInnerProdEuclid(out, a, btData []float64, p, mm, cr int) {
	for i := 0; i < cr; i++ {
		arow := a[i*p : (i+1)*p]
		orow := out[i*mm : (i+1)*mm]
		for j := 0; j < mm; j++ {
			brow := btData[j*p : (j+1)*p]
			var s float64
			for k, av := range arow {
				d := av - brow[k]
				s += d * d
			}
			orow[j] = s
		}
	}
}

// evalInnerProdGen is the generalized inner-product kernel (Table 1): for
// each output cell C[i,j], fold f2 over t = f1(A[i,k], B[k,j]) for all k.
// bData is the small operand, row-major p×mm. The fold identity comes from
// the aggregation function registered under f2's name (e.g. 0 for "+").
func evalInnerProdGen(out, a, bData []float64, p, mm int, f1, f2 *Binary, cr int) {
	init := aggInitFor(f2)
	for i := 0; i < cr; i++ {
		arow := a[i*p : (i+1)*p]
		orow := out[i*mm : (i+1)*mm]
		for j := 0; j < mm; j++ {
			acc := init
			for k := 0; k < p; k++ {
				acc = f2.F(f1.F(arow[k], bData[k*mm+j]), acc)
			}
			orow[j] = acc
		}
	}
}

// aggInitFor returns the fold identity matching a binary combiner by its R
// name (0 for "+", 1 for "*", ±Inf for pmin/pmax), defaulting to 0.
func aggInitFor(f *Binary) float64 {
	switch f.Name {
	case "*":
		return 1
	case "pmin", "min":
		return AggMin.Init
	case "pmax", "max":
		return AggMax.Init
	default:
		return 0
	}
}

// argExtreme returns the 0-based index of the min (or max) of xs.
func argExtreme(xs []float64, wantMin bool) int {
	best := 0
	bv := xs[0]
	for i, v := range xs[1:] {
		if (wantMin && v < bv) || (!wantMin && v > bv) {
			bv = v
			best = i + 1
		}
	}
	return best
}
