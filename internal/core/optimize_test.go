package core

import (
	"math"
	"testing"

	"repro/internal/dense"
)

// intDense builds a matrix of small integers so that sums and scalar folds
// are exact in float64 — fold tests can then assert bit-identity instead of
// a tolerance.
func intDense(r, c int, seed int64) *dense.Dense {
	d := dense.New(r, c)
	v := seed
	for i := range d.Data {
		v = (v*1103515245 + 12345) % 97
		d.Data[i] = float64(v - 48)
	}
	return d
}

// refValue materializes the same graph on a rewrite-free, CSE-free engine
// and returns the dense result — the ground truth every rewrite must match.
func refValue(t *testing.T, ad *dense.Dense, build func(*Mat) *Mat) *dense.Dense {
	t.Helper()
	ref := newCSEEngine(t, Config{DisableCSE: true})
	ra, err := ref.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ToDense(build(ra))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestRewriteIdentityColsEliminated: selecting every column in order is a
// no-op view; the rewriter must drop it and the result must be bit-identical.
func TestRewriteIdentityColsEliminated(t *testing.T) {
	ad := cseDense(900, 4, 11)
	build := func(a *Mat) *Mat { return Cols(Sapply(a, UnaryAbs), []int{0, 1, 2, 3}) }
	want := refValue(t, ad, build)

	e := newCSEEngine(t, Config{})
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.ToDense(build(a))
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "identity cols", got, want)
	if ms := e.LastMaterializeStats(); ms.RewriteViews == 0 {
		t.Fatalf("identity selection not eliminated: %+v", ms)
	}
}

// TestRewriteColsPushdown: a column selection above an elementwise chain is
// pushed below it, so the narrowed subtree computes (and reads) only the
// selected columns. Results stay bit-identical. (The bytes-read reduction is
// gated end-to-end on the external-memory path by the flashr-bench rewrite
// experiment; in-memory leaves report no read bytes.)
func TestRewriteColsPushdown(t *testing.T) {
	ad := cseDense(1200, 8, 12)
	sel := []int{1, 5}
	build := func(a *Mat) *Mat {
		return Cols(MapplyScalar(Sapply(a, UnaryAbs), 2, BinMul, false), sel)
	}
	want := refValue(t, ad, build)

	e := newCSEEngine(t, Config{})
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.ToDense(build(a))
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "cols pushdown", got, want)
	ms := e.LastMaterializeStats()
	if ms.RewriteViews < 2 {
		t.Fatalf("pushdown applied %d view rewrites, want >= 2", ms.RewriteViews)
	}
}

// TestRewriteColsComposition: Cols∘Cols composes into one selection over the
// base, and a row-vector operand is sliced to match the pushed selection.
func TestRewriteColsComposition(t *testing.T) {
	ad := cseDense(800, 6, 13)
	build := func(a *Mat) *Mat {
		inner := Cols(MapplyRowVec(a, []float64{1, 2, 3, 4, 5, 6}, BinAdd, false), []int{5, 3, 1, 0})
		return Cols(inner, []int{2, 0})
	}
	want := refValue(t, ad, build)

	e := newCSEEngine(t, Config{})
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.ToDense(build(a))
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "cols composition", got, want)
	if ms := e.LastMaterializeStats(); ms.RewriteViews < 2 {
		t.Fatalf("composition applied %d view rewrites, want >= 2", ms.RewriteViews)
	}
}

// TestRewriteDCECbind: selecting only left-input columns from a cbind must
// disconnect the right input entirely — it is never read.
func TestRewriteDCECbind(t *testing.T) {
	ad, bd := cseDense(1000, 3, 14), cseDense(1000, 5, 15)
	build := func(a, b *Mat) *Mat {
		return Cols(Cbind2(a, Sapply(b, UnaryAbs)), []int{2, 0})
	}

	ref := newCSEEngine(t, Config{DisableCSE: true})
	ra, _ := ref.FromDense(ad)
	rb, _ := ref.FromDense(bd)
	want, err := ref.ToDense(build(ra, rb))
	if err != nil {
		t.Fatal(err)
	}

	off := newCSEEngine(t, Config{DisableRewrites: true})
	offa, _ := off.FromDense(ad)
	offb, _ := off.FromDense(bd)
	if _, err := off.ToDense(build(offa, offb)); err != nil {
		t.Fatal(err)
	}
	offNodes := off.LastMaterializeStats().NodesExecuted

	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)
	b, _ := e.FromDense(bd)
	got, err := e.ToDense(build(a, b))
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "cbind dce", got, want)
	ms := e.LastMaterializeStats()
	if ms.RewriteDCE == 0 || ms.RewriteDeadNodes == 0 {
		t.Fatalf("cbind dead input not eliminated: %+v", ms)
	}
	if ms.NodesExecuted >= offNodes {
		t.Fatalf("dce executed %d nodes, rewrites-off executed %d — want strictly fewer", ms.NodesExecuted, offNodes)
	}

	// The mirror case: only right-input columns, shifted into b's frame.
	buildB := func(a, b *Mat) *Mat {
		return Cols(Cbind2(a, b), []int{3, 5, 4})
	}
	wantB := refValue(t, bd, func(m *Mat) *Mat { return Cols(m, []int{0, 2, 1}) })
	gotB, err := e.ToDense(buildB(a, b))
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "cbind dce right", gotB, wantB)
	if ms := e.LastMaterializeStats(); ms.RewriteDCE == 0 {
		t.Fatalf("cbind left input not eliminated: %+v", ms)
	}
}

// TestRewriteDCESetCols covers all three setcols eliminations: a selection
// touching only untouched base columns drops the overlay, a selection of only
// overwritten columns drops the base, and an identity overlay covering every
// column shadows the base entirely.
func TestRewriteDCESetCols(t *testing.T) {
	ad, bd := cseDense(700, 5, 16), cseDense(700, 2, 17)
	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)
	b, _ := e.FromDense(bd)

	// set(a)[, {1,3}] <- b; select {0, 4}: base only.
	base := func(a, b *Mat) *Mat { return Cols(SetCols(a, b, []int{1, 3}), []int{4, 0}) }
	want := refValue(t, ad, func(m *Mat) *Mat { return Cols(m, []int{4, 0}) })
	got, err := e.ToDense(base(a, b))
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "setcols base-only", got, want)
	if ms := e.LastMaterializeStats(); ms.RewriteDCE == 0 {
		t.Fatalf("setcols overlay not eliminated: %+v", ms)
	}

	// Select {3, 1}: overwritten only — positions into b.
	over := func(a, b *Mat) *Mat { return Cols(SetCols(a, b, []int{1, 3}), []int{3, 1}) }
	wantO := refValue(t, bd, func(m *Mat) *Mat { return Cols(m, []int{1, 0}) })
	gotO, err := e.ToDense(over(a, b))
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "setcols overlay-only", gotO, wantO)
	if ms := e.LastMaterializeStats(); ms.RewriteDCE == 0 {
		t.Fatalf("setcols base not eliminated: %+v", ms)
	}

	// Full shadow: every column overwritten in order — the result is the
	// overlay exactly and the base is never observed.
	bd5 := cseDense(700, 5, 18)
	b5, _ := e.FromDense(bd5)
	shadow := Sapply(SetCols(a, b5, []int{0, 1, 2, 3, 4}), UnaryAbs)
	wantS := refValue(t, bd5, func(m *Mat) *Mat { return Sapply(m, UnaryAbs) })
	gotS, err := e.ToDense(shadow)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "setcols full shadow", gotS, wantS)
	if ms := e.LastMaterializeStats(); ms.RewriteDCE == 0 {
		t.Fatalf("full-shadow base not eliminated: %+v", ms)
	}
}

// TestRewriteCrossProdSelf: t(A)%*%B with structurally identical but distinct
// inputs is rewritten to the symmetric self form (Syrk kernel) and must stay
// bit-identical to the general GemmTA path.
func TestRewriteCrossProdSelf(t *testing.T) {
	ad := cseDense(1100, 4, 19)
	mk := func(a *Mat) *Mat { return MapplyScalar(a, 3, BinMul, false) }

	ref := newCSEEngine(t, Config{DisableRewrites: true})
	ra, _ := ref.FromDense(ad)
	rs := CrossProd(mk(ra), mk(ra), nil, nil)
	if err := ref.Materialize(nil, []*Sink{rs}); err != nil {
		t.Fatal(err)
	}

	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)
	s := CrossProd(mk(a), mk(a), nil, nil)
	if err := e.Materialize(nil, []*Sink{s}); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.RewriteCrossProds != 1 {
		t.Fatalf("crossprod self form applied %d times, want 1: %+v", ms.RewriteCrossProds, ms)
	}
	bitsEqual(t, "crossprod syrk vs gemm", s.Result(), rs.Result())

	// Mismatched inputs must NOT be rewritten.
	s2 := CrossProd(mk(a), MapplyScalar(a, 4, BinMul, false), nil, nil)
	if err := e.Materialize(nil, []*Sink{s2}); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.RewriteCrossProds != 0 {
		t.Fatalf("distinct crossprod inputs wrongly unified: %+v", ms)
	}
}

// TestRewriteAggFold: sum sinks over scalar-broadcast chains fold the linear
// layers into the sink's affine publish transform. Integer data keeps the
// folded and unfolded reductions exact, so the check is equality.
func TestRewriteAggFold(t *testing.T) {
	ad := intDense(900, 3, 20)
	sumRef := func(build func(*Mat) *Mat) float64 {
		ref := newCSEEngine(t, Config{DisableRewrites: true})
		ra, _ := ref.FromDense(ad)
		s := Agg(build(ra), AggSum)
		if err := ref.Materialize(nil, []*Sink{s}); err != nil {
			t.Fatal(err)
		}
		return s.Result().Data[0]
	}

	cases := []struct {
		name  string
		folds int64
		build func(a *Mat) *Mat
	}{
		{"scalar add", 1, func(a *Mat) *Mat { return MapplyScalar(a, 2, BinAdd, false) }},
		{"scalar mul chain", 2, func(a *Mat) *Mat {
			return MapplyScalar(MapplyScalar(a, 3, BinMul, false), 5, BinAdd, false)
		}},
		{"scalar-left sub", 1, func(a *Mat) *Mat { return MapplyScalar(a, 7, BinSub, true) }},
		{"neg", 1, func(a *Mat) *Mat { return Sapply(a, UnaryNeg) }},
		{"const matrix add", 1, func(a *Mat) *Mat { return Mapply(a, NewConst(900, 3, 4), BinAdd) }},
		{"self add", 1, func(a *Mat) *Mat { return Mapply(a, Sapply(Sapply(a, UnaryNeg), UnaryNeg), BinMul) }},
		{"row vec add", 1, func(a *Mat) *Mat { return MapplyRowVec(a, []float64{1, 2, 3}, BinAdd, false) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := sumRef(tc.build)
			e := newCSEEngine(t, Config{})
			a, _ := e.FromDense(ad)
			s := Agg(tc.build(a), AggSum)
			if err := e.Materialize(nil, []*Sink{s}); err != nil {
				t.Fatal(err)
			}
			// "self add" multiplies structurally identical operands — a shape
			// the folder must leave alone (it is not linear); everything else
			// folds at least tc.folds layers.
			ms := e.LastMaterializeStats()
			if tc.name == "self add" {
				// Mul of identical operands is X², not linear: no fold.
				if ms.RewriteAggFolds != 0 {
					t.Fatalf("squared operand wrongly folded: %+v", ms)
				}
			} else if ms.RewriteAggFolds < tc.folds {
				t.Fatalf("folded %d layers, want >= %d: %+v", ms.RewriteAggFolds, tc.folds, ms)
			}
			got := s.Result().Data[0]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("folded sum = %v, reference = %v", got, want)
			}
		})
	}
}

// TestRewriteAggFoldSelfLinear: X + X and X - X with structurally identical
// operands fold to 2·sum(X) and exactly 0.
func TestRewriteAggFoldSelfLinear(t *testing.T) {
	ad := intDense(600, 2, 21)
	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)
	mk := func() *Mat { return MapplyScalar(a, 2, BinMul, false) }

	plain := Agg(a, AggSum)
	double := Agg(Mapply(mk(), mk(), BinAdd), AggSum)
	zero := Agg(Mapply(mk(), mk(), BinSub), AggSum)
	if err := e.Materialize(nil, []*Sink{plain, double, zero}); err != nil {
		t.Fatal(err)
	}
	base := plain.Result().Data[0]
	if got := double.Result().Data[0]; got != 4*base {
		t.Fatalf("sum(2x + 2x) = %v, want %v", got, 4*base)
	}
	if got := zero.Result().Data[0]; got != 0 {
		t.Fatalf("sum(2x - 2x) = %v, want 0", got)
	}
	if ms := e.LastMaterializeStats(); ms.RewriteAggFolds < 2 {
		t.Fatalf("self-linear folds = %d, want >= 2: %+v", ms.RewriteAggFolds, ms)
	}
}

// TestRewriteAggFoldAggCol: per-column sums fold too, with perCell = nrow.
func TestRewriteAggFoldAggCol(t *testing.T) {
	ad := intDense(500, 4, 22)
	ref := newCSEEngine(t, Config{DisableRewrites: true})
	ra, _ := ref.FromDense(ad)
	rs := AggCol(MapplyScalar(MapplyScalar(ra, 2, BinMul, false), 3, BinAdd, false), AggSum)
	if err := ref.Materialize(nil, []*Sink{rs}); err != nil {
		t.Fatal(err)
	}

	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)
	s := AggCol(MapplyScalar(MapplyScalar(a, 2, BinMul, false), 3, BinAdd, false), AggSum)
	if err := e.Materialize(nil, []*Sink{s}); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.RewriteAggFolds < 2 {
		t.Fatalf("agg.col folds = %d, want >= 2: %+v", ms.RewriteAggFolds, ms)
	}
	bitsEqual(t, "agg.col fold", s.Result(), rs.Result())
}

// TestRewriteAggFoldCacheSharing is the payoff property: the folded sink's
// cache key excludes the affine coefficients, so sum(c·X) hits the cached
// sum(X) reduction for every new c — the reduction executes once across
// "iterations" with different scalars.
func TestRewriteAggFoldCacheSharing(t *testing.T) {
	ad := intDense(800, 3, 23)
	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)

	s1 := Agg(MapplyScalar(Sapply(a, UnaryAbs), 2, BinMul, false), AggSum)
	if err := e.Materialize(nil, []*Sink{s1}); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.CacheHits != 0 {
		t.Fatalf("cold pass had %d cache hits", ms.CacheHits)
	}

	s2 := Agg(MapplyScalar(Sapply(a, UnaryAbs), 5, BinMul, false), AggSum)
	if err := e.Materialize(nil, []*Sink{s2}); err != nil {
		t.Fatal(err)
	}
	ms := e.LastMaterializeStats()
	if ms.CacheHits == 0 {
		t.Fatalf("iteration-varying scalar defeated the fold cache: %+v", ms)
	}
	if got, want := s2.Result().Data[0], s1.Result().Data[0]/2*5; got != want {
		t.Fatalf("cached folded sum = %v, want %v", got, want)
	}
}

// TestRewriteAggFoldDupSinks: two sinks in one batch that fold to the same
// raw reduction with different coefficients must dedup to one execution and
// each publish through its own affine transform.
func TestRewriteAggFoldDupSinks(t *testing.T) {
	ad := intDense(700, 2, 24)
	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)

	base := Agg(Sapply(a, UnaryAbs), AggSum)
	s2 := Agg(MapplyScalar(Sapply(a, UnaryAbs), 2, BinMul, false), AggSum)
	s7 := Agg(MapplyScalar(Sapply(a, UnaryAbs), 7, BinAdd, false), AggSum)
	if err := e.Materialize(nil, []*Sink{base, s2, s7}); err != nil {
		t.Fatal(err)
	}
	raw := base.Result().Data[0]
	if got := s2.Result().Data[0]; got != 2*raw {
		t.Fatalf("dup sink ×2 = %v, want %v", got, 2*raw)
	}
	if got, want := s7.Result().Data[0], raw+7*700*2; got != want {
		t.Fatalf("dup sink +7 = %v, want %v", got, want)
	}
}

// TestRewriteDisableFlags: each per-rule toggle silences exactly its own
// counter while the engine still produces correct results.
func TestRewriteDisableFlags(t *testing.T) {
	ad := intDense(600, 4, 25)
	bd := intDense(600, 2, 26)
	run := func(cfg Config) MaterializeStats {
		e := newCSEEngine(t, cfg)
		a, _ := e.FromDense(ad)
		b, _ := e.FromDense(bd)
		x := Cols(Cbind2(MapplyScalar(a, 2, BinMul, false), b), []int{1, 3})
		sum := Agg(MapplyScalar(x, 3, BinAdd, false), AggSum)
		mk := func() *Mat { return Sapply(a, UnaryAbs) }
		xp := CrossProd(mk(), mk(), nil, nil)
		if err := e.Materialize(nil, []*Sink{sum, xp}); err != nil {
			t.Fatal(err)
		}
		return e.LastMaterializeStats()
	}

	all := run(Config{})
	if all.RewriteViews == 0 || all.RewriteCrossProds == 0 || all.RewriteAggFolds == 0 || all.RewriteDCE == 0 {
		t.Fatalf("baseline pass missing rule applications: %+v", all)
	}
	if ms := run(Config{DisableRewrites: true}); ms.Rewrites != 0 {
		t.Fatalf("DisableRewrites left %d rewrites: %+v", ms.Rewrites, ms)
	}
	if ms := run(Config{DisableRewriteView: true}); ms.RewriteViews != 0 {
		t.Fatalf("DisableRewriteView left %d view rewrites", ms.RewriteViews)
	}
	if ms := run(Config{DisableRewriteCrossProd: true}); ms.RewriteCrossProds != 0 {
		t.Fatalf("DisableRewriteCrossProd left %d crossprod rewrites", ms.RewriteCrossProds)
	}
	if ms := run(Config{DisableRewriteAggFold: true}); ms.RewriteAggFolds != 0 {
		t.Fatalf("DisableRewriteAggFold left %d folds", ms.RewriteAggFolds)
	}
	if ms := run(Config{DisableRewriteDCE: true}); ms.RewriteDCE != 0 || ms.RewriteDeadNodes != 0 {
		t.Fatalf("DisableRewriteDCE left %d eliminations", ms.RewriteDCE)
	}
	// Hash-consing off means no signature context, hence no rewriting at all.
	if ms := run(Config{DisableCSE: true}); ms.Rewrites != 0 {
		t.Fatalf("DisableCSE left %d rewrites: %+v", ms.Rewrites, ms)
	}
}

// TestRewriteFixedPoints: materialized, mutated, and cache-flagged nodes are
// identity boundaries — the rewriter must not push views through them or
// fold them away.
func TestRewriteFixedPoints(t *testing.T) {
	ad := cseDense(800, 4, 27)

	// Materialized interior node: pushing Cols below it would discard the
	// store the first pass produced.
	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)
	mid := Sapply(a, UnaryAbs)
	if err := e.Materialize([]*Mat{mid}, nil); err != nil {
		t.Fatal(err)
	}
	want := refValue(t, ad, func(m *Mat) *Mat { return Cols(Sapply(m, UnaryAbs), []int{2, 0}) })
	got, err := e.ToDense(Cols(mid, []int{2, 0}))
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "cols over materialized", got, want)
	if ms := e.LastMaterializeStats(); ms.RewriteViews != 0 {
		t.Fatalf("rewriter pushed through a materialized node: %+v", ms)
	}

	// Cache-flagged node: the user asked for this exact node's store.
	e2 := newCSEEngine(t, Config{})
	a2, _ := e2.FromDense(ad)
	pinned := MapplyScalar(a2, 2, BinMul, false)
	pinned.SetCache(false)
	got2, err := e2.ToDense(Cols(pinned, []int{1}))
	if err != nil {
		t.Fatal(err)
	}
	want2 := refValue(t, ad, func(m *Mat) *Mat { return Cols(MapplyScalar(m, 2, BinMul, false), []int{1}) })
	bitsEqual(t, "cols over pinned", got2, want2)
	if ms := e2.LastMaterializeStats(); ms.RewriteViews != 0 {
		t.Fatalf("rewriter pushed through a cache-flagged node: %+v", ms)
	}
}

// TestRewriteCacheMutationRegression is the cache/rewrite interaction
// regression: materialize a rewrite-eligible DAG (so the cache holds entries
// under post-rewrite keys), mutate a live leaf via []<-, and re-materialize
// the same expression. The pass must recompute from the mutated data — a
// pre-mutation result served under either a pre- or post-rewrite signature
// would be stale.
func TestRewriteCacheMutationRegression(t *testing.T) {
	ad, bd := intDense(600, 3, 28), intDense(600, 2, 29)
	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)
	b, _ := e.FromDense(bd)

	// Cols-over-Cbind DCE plus an agg fold: both rewrite families produce
	// post-rewrite cache keys that mention only leaf a.
	build := func() *Sink {
		x := Cols(Cbind2(a, b), []int{2, 0})
		return Agg(MapplyScalar(x, 2, BinMul, false), AggSum)
	}
	s1 := build()
	if err := e.Materialize(nil, []*Sink{s1}); err != nil {
		t.Fatal(err)
	}
	ms := e.LastMaterializeStats()
	if ms.RewriteDCE == 0 || ms.RewriteAggFolds == 0 {
		t.Fatalf("expression not rewritten as expected: %+v", ms)
	}
	if entries, _ := e.ResultCacheStats(); entries == 0 {
		t.Fatal("no cache entries after cold pass")
	}

	// Mutate the live leaf in a selected column (column 0 survives the DCE).
	if err := e.SetElement(a, 0, 0, 1e6); err != nil {
		t.Fatal(err)
	}
	s2 := build()
	if err := e.Materialize(nil, []*Sink{s2}); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.CacheHits != 0 {
		t.Fatalf("post-mutation pass served %d stale cache hits", ms.CacheHits)
	}
	want := s1.Result().Data[0] + 2*(1e6-ad.At(0, 0))
	if got := s2.Result().Data[0]; got != want {
		t.Fatalf("post-mutation folded sum = %v, want %v", got, want)
	}
}

// TestRewriteSharedSubtreeStaysShared: a diamond — two consumers of one
// subtree, each selecting different columns — must not duplicate the shared
// node per selection beyond what the memo admits, and both results must be
// exact.
func TestRewriteSharedSubtreeStaysShared(t *testing.T) {
	ad := cseDense(900, 6, 30)
	e := newCSEEngine(t, Config{})
	a, _ := e.FromDense(ad)
	shared := MapplyScalar(Sapply(a, UnaryAbs), 2, BinMul, false)
	left := Cols(shared, []int{0, 1})
	right := Cols(shared, []int{0, 1})
	s1, s2 := Agg(left, AggSum), Agg(right, AggSum)
	if err := e.Materialize(nil, []*Sink{s1, s2}); err != nil {
		t.Fatal(err)
	}
	// Identical selections over the same node memoize to one rewritten
	// subtree, which then CSE-unifies: the whole pass executes one narrow
	// chain and the duplicate sink is served from its twin.
	if got1, got2 := s1.Result().Data[0], s2.Result().Data[0]; math.Float64bits(got1) != math.Float64bits(got2) {
		t.Fatalf("diamond results diverge: %v vs %v", got1, got2)
	}
	rd := refValue(t, ad, func(m *Mat) *Mat {
		return Cols(MapplyScalar(Sapply(m, UnaryAbs), 2, BinMul, false), []int{0, 1})
	})
	ref := newCSEEngine(t, Config{DisableCSE: true})
	rm, err := ref.FromDense(rd)
	if err != nil {
		t.Fatal(err)
	}
	rs := Agg(rm, AggSum)
	if err := ref.Materialize(nil, []*Sink{rs}); err != nil {
		t.Fatal(err)
	}
	if got, want := s1.Result().Data[0], rs.Result().Data[0]; math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("diamond sum = %v, reference = %v", got, want)
	}
}
