// Package core implements FlashR's primary contribution: the generalized
// operations (GenOps) of Table 1, lazy evaluation of matrix operations into
// directed acyclic graphs (§3.4), and memory-hierarchy-aware DAG
// materialization (§3.5) — a single parallel pass over the data with
// two-level partitioning (I/O partitions split into processor-cache
// partitions), depth-first per-chunk evaluation, and buffer recycling.
//
// Tall matrices (the partition dimension is rows) flow through the engine as
// virtual matrices; aggregation-style GenOps produce sink matrices whose
// small results live in memory, exactly as in the paper.
package core

import (
	"fmt"
	"math"
)

// Unary is a predefined elementwise unary function for sapply. ApplyV is the
// vectorized kernel the engine calls on Pcache chunks.
type Unary struct {
	Name   string
	F      func(float64) float64
	ApplyV func(dst, src []float64)
}

// Binary is a predefined elementwise binary function for mapply and the
// generalized inner product. The vectorized kernels cover the three operand
// shapes the engine encounters.
type Binary struct {
	Name string
	F    func(a, b float64) float64
	// ApplyVV computes dst[i] = F(a[i], b[i]).
	ApplyVV func(dst, a, b []float64)
	// ApplyVS computes dst[i] = F(a[i], s).
	ApplyVS func(dst, a []float64, s float64)
	// ApplySV computes dst[i] = F(s, b[i]).
	ApplySV func(dst []float64, s float64, b []float64)
}

// AggFunc is a predefined aggregation function for agg, agg.row, agg.col and
// groupby. Init is the fold identity; Step folds one element; Combine merges
// two partial results (used to merge per-thread partials, §3.3 (g,h,i)).
type AggFunc struct {
	Name    string
	Init    float64
	Step    func(acc, x float64) float64
	Combine func(a, b float64) float64
	// StepV folds a whole slice into acc.
	StepV func(acc float64, xs []float64) float64
}

func mkUnary(name string, f func(float64) float64) *Unary {
	return &Unary{
		Name: name,
		F:    f,
		ApplyV: func(dst, src []float64) {
			for i, v := range src {
				dst[i] = f(v)
			}
		},
	}
}

func mkBinary(name string, f func(a, b float64) float64) *Binary {
	return &Binary{
		Name: name,
		F:    f,
		ApplyVV: func(dst, a, b []float64) {
			for i := range dst {
				dst[i] = f(a[i], b[i])
			}
		},
		ApplyVS: func(dst, a []float64, s float64) {
			for i := range dst {
				dst[i] = f(a[i], s)
			}
		},
		ApplySV: func(dst []float64, s float64, b []float64) {
			for i := range dst {
				dst[i] = f(s, b[i])
			}
		},
	}
}

func mkAgg(name string, init float64, step func(acc, x float64) float64) *AggFunc {
	return &AggFunc{
		Name:    name,
		Init:    init,
		Step:    step,
		Combine: step,
		StepV: func(acc float64, xs []float64) float64 {
			for _, v := range xs {
				acc = step(acc, v)
			}
			return acc
		},
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Predefined unary functions, addressable by their R names via LookupUnary.
var (
	UnarySqrt  = mkUnary("sqrt", math.Sqrt)
	UnaryExp   = mkUnary("exp", math.Exp)
	UnaryLog   = mkUnary("log", math.Log)
	UnaryLog1p = mkUnary("log1p", math.Log1p)
	UnaryAbs   = mkUnary("abs", math.Abs)
	UnaryNeg   = mkUnary("-", func(v float64) float64 { return -v })
	UnaryNot   = mkUnary("!", func(v float64) float64 { return b2f(v == 0) })
	UnaryFloor = mkUnary("floor", math.Floor)
	UnaryCeil  = mkUnary("ceiling", math.Ceil)
	UnaryRound = mkUnary("round", math.Round)
	UnarySign  = mkUnary("sign", func(v float64) float64 {
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		default:
			return 0
		}
	})
	UnarySquare  = mkUnary("square", func(v float64) float64 { return v * v })
	UnarySigmoid = mkUnary("sigmoid", func(v float64) float64 { return 1 / (1 + math.Exp(-v)) })
	UnaryIdent   = mkUnary("identity", func(v float64) float64 { return v })
)

// Predefined binary functions (LookupBinary resolves R names).
var (
	BinAdd  = addBinary()
	BinSub  = mkBinary("-", func(a, b float64) float64 { return a - b })
	BinMul  = mulBinary()
	BinDiv  = mkBinary("/", func(a, b float64) float64 { return a / b })
	BinPow  = mkBinary("^", math.Pow)
	BinMod  = mkBinary("%%", func(a, b float64) float64 { return a - b*math.Floor(a/b) })
	BinPmin = mkBinary("pmin", math.Min)
	BinPmax = mkBinary("pmax", math.Max)
	BinEq   = mkBinary("==", func(a, b float64) float64 { return b2f(a == b) })
	BinNe   = mkBinary("!=", func(a, b float64) float64 { return b2f(a != b) })
	BinLt   = mkBinary("<", func(a, b float64) float64 { return b2f(a < b) })
	BinLe   = mkBinary("<=", func(a, b float64) float64 { return b2f(a <= b) })
	BinGt   = mkBinary(">", func(a, b float64) float64 { return b2f(a > b) })
	BinGe   = mkBinary(">=", func(a, b float64) float64 { return b2f(a >= b) })
	BinAnd  = mkBinary("&", func(a, b float64) float64 { return b2f(a != 0 && b != 0) })
	BinOr   = mkBinary("|", func(a, b float64) float64 { return b2f(a != 0 || b != 0) })
	// BinEuclid is the f1 of the Euclidean inner product in Figure 3:
	// accumulated with "+" it yields squared distances.
	BinEuclid = mkBinary("euclidean", func(a, b float64) float64 { d := a - b; return d * d })
)

// addBinary and mulBinary hand-unroll the hottest kernels instead of going
// through a function pointer per element.
func addBinary() *Binary {
	b := mkBinary("+", func(a, b float64) float64 { return a + b })
	b.ApplyVV = func(dst, a, bb []float64) {
		for i := range dst {
			dst[i] = a[i] + bb[i]
		}
	}
	b.ApplyVS = func(dst, a []float64, s float64) {
		for i := range dst {
			dst[i] = a[i] + s
		}
	}
	return b
}

func mulBinary() *Binary {
	b := mkBinary("*", func(a, b float64) float64 { return a * b })
	b.ApplyVV = func(dst, a, bb []float64) {
		for i := range dst {
			dst[i] = a[i] * bb[i]
		}
	}
	b.ApplyVS = func(dst, a []float64, s float64) {
		for i := range dst {
			dst[i] = a[i] * s
		}
	}
	return b
}

// Predefined aggregation functions (LookupAgg resolves R names).
var (
	AggSum = &AggFunc{
		Name: "+", Init: 0,
		Step:    func(acc, x float64) float64 { return acc + x },
		Combine: func(a, b float64) float64 { return a + b },
		StepV: func(acc float64, xs []float64) float64 {
			for _, v := range xs {
				acc += v
			}
			return acc
		},
	}
	AggProd  = mkAgg("*", 1, func(acc, x float64) float64 { return acc * x })
	AggMin   = mkAgg("min", math.Inf(1), math.Min)
	AggMax   = mkAgg("max", math.Inf(-1), math.Max)
	AggAny   = mkAgg("|", 0, func(acc, x float64) float64 { return b2f(acc != 0 || x != 0) })
	AggAll   = mkAgg("&", 1, func(acc, x float64) float64 { return b2f(acc != 0 && x != 0) })
	AggCount = &AggFunc{
		Name: "count", Init: 0,
		Step:    func(acc, x float64) float64 { return acc + 1 },
		Combine: func(a, b float64) float64 { return a + b },
		StepV:   func(acc float64, xs []float64) float64 { return acc + float64(len(xs)) },
	}
)

var unaryByName = map[string]*Unary{}
var binaryByName = map[string]*Binary{}
var aggByName = map[string]*AggFunc{}

func init() {
	for _, u := range []*Unary{UnarySqrt, UnaryExp, UnaryLog, UnaryLog1p, UnaryAbs,
		UnaryNeg, UnaryNot, UnaryFloor, UnaryCeil, UnaryRound, UnarySign,
		UnarySquare, UnarySigmoid, UnaryIdent} {
		unaryByName[u.Name] = u
	}
	for _, b := range []*Binary{BinAdd, BinSub, BinMul, BinDiv, BinPow, BinMod,
		BinPmin, BinPmax, BinEq, BinNe, BinLt, BinLe, BinGt, BinGe, BinAnd,
		BinOr, BinEuclid} {
		binaryByName[b.Name] = b
	}
	for _, a := range []*AggFunc{AggSum, AggProd, AggMin, AggMax, AggAny, AggAll, AggCount} {
		aggByName[a.Name] = a
	}
	aggByName["sum"] = AggSum
	aggByName["prod"] = AggProd
	aggByName["any"] = AggAny
	aggByName["all"] = AggAll
}

// LookupUnary resolves a predefined unary function by its R name.
func LookupUnary(name string) (*Unary, error) {
	if u, ok := unaryByName[name]; ok {
		return u, nil
	}
	return nil, fmt.Errorf("core: unknown unary function %q", name)
}

// LookupBinary resolves a predefined binary function by its R name.
func LookupBinary(name string) (*Binary, error) {
	if b, ok := binaryByName[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("core: unknown binary function %q", name)
}

// LookupAgg resolves a predefined aggregation function by its R name.
func LookupAgg(name string) (*AggFunc, error) {
	if a, ok := aggByName[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("core: unknown aggregation function %q", name)
}
