package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/numa"
)

// TestArbiterBoundsInFlight hammers the arbiter from many goroutines and
// asserts the number of concurrently admitted passes never exceeds max.
func TestArbiterBoundsInFlight(t *testing.T) {
	const max = 3
	a := newPassArbiter(numa.NewTopology(2, 0), max)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			owner := string(rune('a' + i%5))
			release, err := a.acquire(context.Background(), owner, 1<<20)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			release()
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > max {
		t.Fatalf("peak in-flight %d exceeds max %d", p, max)
	}
	if q := a.queued(); q != 0 {
		t.Fatalf("tickets still queued after all released: %d", q)
	}
}

// TestArbiterRoundRobinAcrossOwners fills the single slot, queues three
// tickets from owner A then one from owner B, and checks grants alternate
// A, B, A, A — round-robin across owners, FIFO within one.
func TestArbiterRoundRobinAcrossOwners(t *testing.T) {
	a := newPassArbiter(numa.NewTopology(1, 0), 1)
	blocker, err := a.acquire(context.Background(), "hog", 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	var mu sync.Mutex
	var got []string
	var wg sync.WaitGroup
	waitQueued := func(n int) {
		deadline := time.Now().Add(2 * time.Second)
		for a.queued() < n {
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached %d tickets", n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Enqueue one at a time so arrival order is deterministic.
	for i, owner := range []string{"A", "A", "A", "B"} {
		wg.Add(1)
		owner := owner
		go func() {
			defer wg.Done()
			release, err := a.acquire(context.Background(), owner, 0)
			if err != nil {
				t.Errorf("acquire(%s): %v", owner, err)
				return
			}
			mu.Lock()
			got = append(got, owner)
			mu.Unlock()
			release()
		}()
		waitQueued(i + 1)
	}

	blocker()
	wg.Wait()
	want := []string{"A", "B", "A", "A"}
	if len(got) != len(want) {
		t.Fatalf("granted %d passes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestArbiterCancelWhileQueued cancels a queued acquire and checks the
// ticket is withdrawn and ctx.Err() is surfaced.
func TestArbiterCancelWhileQueued(t *testing.T) {
	a := newPassArbiter(numa.NewTopology(1, 0), 1)
	blocker, err := a.acquire(context.Background(), "hog", 0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, "victim", 0)
		errc <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("ticket never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("acquire after cancel = %v, want context.Canceled", err)
	}
	if q := a.queued(); q != 0 {
		t.Fatalf("cancelled ticket still queued: %d", q)
	}
	blocker()
	// The slot must still be usable.
	release, err := a.acquire(context.Background(), "next", 0)
	if err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	release()
}

// TestArbiterMemoryBudget checks a second pass that does not fit the
// topology's budget waits until the first releases, while a pass that is
// alone is force-admitted even when oversized.
func TestArbiterMemoryBudget(t *testing.T) {
	topo := numa.NewTopology(1, 0)
	topo.SetMemBudget(100)
	a := newPassArbiter(topo, 4)

	// Oversized pass admitted when alone (ForceReserve path).
	release1, err := a.acquire(context.Background(), "big", 150)
	if err != nil {
		t.Fatalf("acquire oversized: %v", err)
	}
	if got := topo.MemReserved(); got != 150 {
		t.Fatalf("reserved = %d, want 150", got)
	}

	// A second pass cannot fit and must queue.
	admitted := make(chan struct{})
	go func() {
		release2, err := a.acquire(context.Background(), "small", 50)
		if err != nil {
			t.Errorf("acquire small: %v", err)
			close(admitted)
			return
		}
		close(admitted)
		release2()
	}()
	select {
	case <-admitted:
		t.Fatal("second pass admitted despite exhausted budget")
	case <-time.After(20 * time.Millisecond):
	}

	release1()
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("second pass never admitted after release")
	}
	deadline := time.Now().Add(2 * time.Second)
	for topo.MemReserved() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reserved = %d after all releases, want 0", topo.MemReserved())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestArbiterNoLeapfrog verifies a small pass arriving while others queue
// does not jump the queue even though it would fit.
func TestArbiterNoLeapfrog(t *testing.T) {
	topo := numa.NewTopology(1, 0)
	topo.SetMemBudget(100)
	a := newPassArbiter(topo, 4)
	release1, err := a.acquire(context.Background(), "first", 80)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Queue a pass that does not fit.
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		release, err := a.acquire(context.Background(), "blockedBig", 90)
		if err != nil {
			t.Errorf("acquire blockedBig: %v", err)
			return
		}
		mu.Lock()
		order = append(order, "blockedBig")
		mu.Unlock()
		release()
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("big ticket never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// A tiny pass that would fit must still queue behind it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		release, err := a.acquire(context.Background(), "tiny", 20)
		if err != nil {
			t.Errorf("acquire tiny: %v", err)
			return
		}
		mu.Lock()
		order = append(order, "tiny")
		mu.Unlock()
		release()
	}()
	for a.queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("tiny ticket never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	release1()
	wg.Wait()
	if len(order) != 2 || order[0] != "blockedBig" {
		t.Fatalf("grant order %v, want [blockedBig tiny]", order)
	}
}
