package core

// The cross-materialize sub-DAG result cache. Keys are the structural
// signatures of hashcons.go; values are either a shared tall store (refStore)
// or a sink payload. Entries are inserted only after a pass runs to
// completion — a cancelled or failed pass inserts nothing — and are evicted
// LRU under a byte budget, or explicitly when a dependency (a leaf at a
// recorded content version) is mutated.
//
// Soundness does not rest on explicit invalidation alone: leaf versions are
// embedded in the signatures themselves, so a mutated operand changes every
// key built over it and a stale entry can never match again. Explicit
// invalidation reclaims the memory immediately.
//
// Interaction with the algebraic rewrite pass (optimize.go): rewriting runs
// inside materialize before any lookup or insert computes a signature, so
// every key this cache ever sees describes the post-rewrite graph. A result
// cached under a pre-rewrite signature being served for a structurally
// different post-rewrite node (or vice versa) is impossible by construction —
// there is no code path that computes a pre-rewrite key. Folded sinks
// deliberately cache their raw (pre-transform) payload under a key that
// excludes the affine coefficients; the transform is re-applied on every hit
// (Sink.applyPost), so sums differing only in a folded scalar share one
// cached reduction without ever observing each other's published values.

import (
	"container/list"
	"sync"

	"repro/internal/dense"
)

// DefaultResultCacheBytes is the result-cache budget when
// Config.ResultCacheBytes is zero.
const DefaultResultCacheBytes int64 = 256 << 20

// sinkPayload snapshots a sink's published result for caching. Payloads are
// cloned on insert and on hit so user code mutating a returned dense can
// never corrupt the cached copy.
type sinkPayload struct {
	result *dense.Dense
	keys   []float64
	counts []int64
	folds  []float64
}

func (p *sinkPayload) clone() *sinkPayload {
	if p == nil {
		return nil
	}
	q := &sinkPayload{}
	if p.result != nil {
		q.result = p.result.Clone()
	}
	q.keys = append([]float64(nil), p.keys...)
	q.counts = append([]int64(nil), p.counts...)
	q.folds = append([]float64(nil), p.folds...)
	return q
}

func (p *sinkPayload) sizeBytes() int64 {
	var n int64
	if p.result != nil {
		n += int64(len(p.result.Data)) * 8
	}
	n += int64(len(p.keys))*8 + int64(len(p.counts))*8 + int64(len(p.folds))*8
	if n == 0 {
		n = 8
	}
	return n
}

type cacheEntry struct {
	key   string
	epoch uint64
	// Tall results hold a retained reference on a shared store; sink results
	// hold a payload snapshot. Exactly one is set.
	store *refStore
	nrow  int64
	ncol  int
	sink  *sinkPayload
	deps  []uint64
	bytes int64
	elem  *list.Element
}

// resultCache is the byte-budgeted LRU over cached sub-DAG results.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recently used
	byDep    map[uint64]map[string]*cacheEntry
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		entries:  make(map[string]*cacheEntry),
		lru:      list.New(),
		byDep:    make(map[uint64]map[string]*cacheEntry),
	}
}

// lookupTall returns a retained shared store for key, or ok=false. The shape
// check is defensive: signatures encode shape, so a mismatch means a key bug
// and must read as a miss, never as wrong data.
func (c *resultCache) lookupTall(epoch uint64, key string, nrow int64, ncol int) (*refStore, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.epoch != epoch || e.store == nil || e.nrow != nrow || e.ncol != ncol {
		return nil, 0, false
	}
	c.lru.MoveToFront(e.elem)
	e.store.retain()
	return e.store, e.bytes, true
}

// lookupSink returns a clone of the cached sink payload for key.
func (c *resultCache) lookupSink(epoch uint64, key string) (*sinkPayload, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil || e.epoch != epoch || e.sink == nil {
		return nil, 0, false
	}
	c.lru.MoveToFront(e.elem)
	return e.sink.clone(), e.bytes, true
}

// insertTall caches a materialized tall result, retaining one reference on
// its store. Returns the number of LRU evictions the insert forced.
func (c *resultCache) insertTall(epoch uint64, key string, st *refStore, nrow int64, ncol int, deps []uint64) int {
	bytes := nrow * int64(ncol) * 8
	if bytes > c.maxBytes {
		return 0 // larger than the whole budget: never cacheable
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil && e.epoch == epoch {
		c.lru.MoveToFront(e.elem)
		return 0
	}
	st.retain()
	e := &cacheEntry{key: key, epoch: epoch, store: st, nrow: nrow, ncol: ncol, deps: deps, bytes: bytes}
	c.addLocked(e)
	return c.evictOverLocked()
}

// insertSink caches a sink payload snapshot (ownership of pl transfers to
// the cache; callers pass a clone).
func (c *resultCache) insertSink(epoch uint64, key string, pl *sinkPayload, deps []uint64) int {
	if pl == nil {
		return 0
	}
	bytes := pl.sizeBytes()
	if bytes > c.maxBytes {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil && e.epoch == epoch {
		c.lru.MoveToFront(e.elem)
		return 0
	}
	e := &cacheEntry{key: key, epoch: epoch, sink: pl, deps: deps, bytes: bytes}
	c.addLocked(e)
	return c.evictOverLocked()
}

func (c *resultCache) addLocked(e *cacheEntry) {
	if old := c.entries[e.key]; old != nil {
		c.removeLocked(old) // stale epoch under the same key
	}
	c.entries[e.key] = e
	e.elem = c.lru.PushFront(e)
	c.bytes += e.bytes
	for _, id := range e.deps {
		m := c.byDep[id]
		if m == nil {
			m = make(map[string]*cacheEntry)
			c.byDep[id] = m
		}
		m[e.key] = e
	}
}

func (c *resultCache) evictOverLocked() int {
	n := 0
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*cacheEntry))
		n++
	}
	return n
}

func (c *resultCache) removeLocked(e *cacheEntry) {
	if c.entries[e.key] != e {
		return
	}
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
	for _, id := range e.deps {
		if m := c.byDep[id]; m != nil {
			delete(m, e.key)
			if len(m) == 0 {
				delete(c.byDep, id)
			}
		}
	}
	if e.store != nil {
		e.store.Free() // release the cache's reference
	}
}

// invalidateDep drops every entry whose recorded dependencies include the
// given node id (called on []<- mutation and SetNamed overwrite).
func (c *resultCache) invalidateDep(id uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.byDep[id]
	n := 0
	for _, e := range m {
		c.removeLocked(e)
		n++
	}
	return n
}

// flush drops every entry (session close, intern-table epoch reset).
func (c *resultCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		c.removeLocked(e)
	}
}

func (c *resultCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes
}
