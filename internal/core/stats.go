package core

import (
	"fmt"
	"strings"
	"time"
)

// MaterializeStats is the per-materialization observability record: how much
// I/O a pass moved, how well the read prefetcher and the write-behind queue
// overlapped it with compute, and where the wall time went. One record is
// produced per Materialize/MaterializeCtx call (covering every internal pass
// under FuseNone) and accumulated into an engine-lifetime total.
//
// The write-overlap proof the paper's §3.3 pipeline promises is visible
// here: with write-behind enabled, WriteStall (time compute spent blocked on
// the queue's depth bound) should be well below WriteTime (time the writers
// spent inside the SAFS token-bucket); under SyncWrites the two collapse to
// the same value because compute waits out every write.
type MaterializeStats struct {
	// Owner labels the session/client the pass ran for (PassOptions.Owner;
	// empty for untagged passes).
	Owner string
	// Batch labels the request batch the pass coalesced (PassOptions.Batch;
	// empty for passes submitted outside a batching front-end).
	Batch string
	// Fuse is the fusion level the materialization ran at.
	Fuse FuseLevel
	// SyncWrites records whether the synchronous-write escape hatch was on.
	SyncWrites bool
	// Wall is the end-to-end Materialize duration.
	Wall time.Duration

	// Passes, Parts and Chunks count parallel passes, I/O partitions and
	// Pcache chunks processed.
	Passes int64
	Parts  int64
	Chunks int64

	// BytesRead counts leaf partition bytes copied into compute buffers
	// (zero-copy in-memory references are not counted). BytesWritten counts
	// tall-output partition bytes handed to stores.
	BytesRead    int64
	BytesWritten int64

	// PrefetchHits counts leaf partition loads served by the read-ahead
	// pipeline; PrefetchMisses counts loads that fell back to a synchronous
	// read.
	PrefetchHits   int64
	PrefetchMisses int64

	// ReadWait is time workers spent blocked on in-flight prefetch reads.
	ReadWait time.Duration
	// WriteStall is time compute spent blocked handing partitions to the
	// write queue (equal to WriteTime when SyncWrites).
	WriteStall time.Duration
	// WriteTime is cumulative time inside partition writes, summed across
	// writers.
	WriteTime time.Duration
	// WriteDrain is time spent at the end-of-pass barrier waiting for
	// in-flight writes.
	WriteDrain time.Duration
	// WriteJobs counts partitions that went through the write-behind queue.
	WriteJobs int64

	// PrefetchAbandoned counts prefetched partitions a worker drained without
	// consuming on an exit path (its own failure, a peer's, or cancellation).
	// Always zero on a pass that runs to completion.
	PrefetchAbandoned int64

	// SAFS integrity counters attributed to this pass (deltas of the array's
	// cumulative counters around the pass): stripe reads failing CRC32C
	// verification, retry attempts after transient errors, and requests that
	// failed at least once but succeeded within the retry budget. All zero on
	// a fault-free pass.
	ChecksumFailures int64
	IORetries        int64
	RecoveredReads   int64
	RecoveredWrites  int64
	// VerifyTime is time the SAFS drive workers spent on integrity work
	// (CRC32C computation plus partial-stripe read-modify-checksum cycles).
	VerifyTime time.Duration

	// Hash-consing and result-cache counters. CSEUnifications counts nodes
	// and sinks deduplicated within the pass (scheduled once instead of N
	// times); NodesExecuted counts virtual nodes actually evaluated, the
	// direct measure of work CSE and the cache removed. CacheHits/Misses
	// count sub-DAG results served from / inserted as candidates into the
	// cross-materialize cache, CacheHitBytes the result bytes served without
	// recomputation or I/O, and CacheEvictions the LRU evictions this pass's
	// inserts forced.
	CSEUnifications int64
	NodesExecuted   int64
	CacheHits       int64
	CacheMisses     int64
	CacheEvictions  int64
	CacheHitBytes   int64

	// Algebraic-rewrite counters (optimize.go). Rewrites is total rule
	// applications; the per-family counters break it down (view push-down,
	// crossprod self-recognition, aggregation folds, dead-input
	// eliminations). RewriteDeadNodes counts the virtual nodes those
	// eliminations disconnected — subtrees whose leaves are never read.
	Rewrites          int64
	RewriteViews      int64
	RewriteCrossProds int64
	RewriteAggFolds   int64
	RewriteDCE        int64
	RewriteDeadNodes  int64

	// Sharded-execution counters (internal/shard), all zero on a local pass.
	// ShardPasses counts worker-side passes executed for this
	// materialization (one per active shard, more under FuseNone);
	// ShardAggRounds counts aggregation exchange rounds (one per remote pass
	// that combined sink partials); ShardBytesSent/Recv count coordinator
	// wire traffic (programs, leaf pushes, partials, carries); ShardRetries
	// counts transport-level retry attempts after transient faults;
	// ShardWorkerRead/Written sum the workers' own partition I/O — kept
	// separate from BytesRead/Written, which remain strictly local I/O so
	// the trace conservation invariants are unchanged.
	ShardPasses        int64
	ShardAggRounds     int64
	ShardBytesSent     int64
	ShardBytesRecv     int64
	ShardRetries       int64
	ShardWorkerRead    int64
	ShardWorkerWritten int64
	// ShardRecoveries counts worker recoveries (re-hello + re-push + lineage
	// replay after an epoch-fence rejection); ShardReplayedKeeps counts kept
	// talls reconstructed by those replays.
	ShardRecoveries    int64
	ShardReplayedKeeps int64
}

// Add accumulates o into s (numeric fields sum; Fuse and SyncWrites take
// o's values so a running total reflects the latest configuration).
func (s *MaterializeStats) Add(o MaterializeStats) {
	if o.Owner != "" {
		s.Owner = o.Owner
	}
	if o.Batch != "" {
		s.Batch = o.Batch
	}
	s.Fuse = o.Fuse
	s.SyncWrites = o.SyncWrites
	s.Wall += o.Wall
	s.Passes += o.Passes
	s.Parts += o.Parts
	s.Chunks += o.Chunks
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.PrefetchHits += o.PrefetchHits
	s.PrefetchMisses += o.PrefetchMisses
	s.ReadWait += o.ReadWait
	s.WriteStall += o.WriteStall
	s.WriteTime += o.WriteTime
	s.WriteDrain += o.WriteDrain
	s.WriteJobs += o.WriteJobs
	s.PrefetchAbandoned += o.PrefetchAbandoned
	s.ChecksumFailures += o.ChecksumFailures
	s.IORetries += o.IORetries
	s.RecoveredReads += o.RecoveredReads
	s.RecoveredWrites += o.RecoveredWrites
	s.VerifyTime += o.VerifyTime
	s.CSEUnifications += o.CSEUnifications
	s.NodesExecuted += o.NodesExecuted
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheEvictions += o.CacheEvictions
	s.CacheHitBytes += o.CacheHitBytes
	s.Rewrites += o.Rewrites
	s.RewriteViews += o.RewriteViews
	s.RewriteCrossProds += o.RewriteCrossProds
	s.RewriteAggFolds += o.RewriteAggFolds
	s.RewriteDCE += o.RewriteDCE
	s.RewriteDeadNodes += o.RewriteDeadNodes
	s.ShardPasses += o.ShardPasses
	s.ShardAggRounds += o.ShardAggRounds
	s.ShardBytesSent += o.ShardBytesSent
	s.ShardBytesRecv += o.ShardBytesRecv
	s.ShardRetries += o.ShardRetries
	s.ShardWorkerRead += o.ShardWorkerRead
	s.ShardWorkerWritten += o.ShardWorkerWritten
	s.ShardRecoveries += o.ShardRecoveries
	s.ShardReplayedKeeps += o.ShardReplayedKeeps
}

// Sub returns s minus o field-by-field — the delta between two snapshots of
// an engine's running total (Fuse and SyncWrites come from s).
func (s MaterializeStats) Sub(o MaterializeStats) MaterializeStats {
	d := s
	d.Wall -= o.Wall
	d.Passes -= o.Passes
	d.Parts -= o.Parts
	d.Chunks -= o.Chunks
	d.BytesRead -= o.BytesRead
	d.BytesWritten -= o.BytesWritten
	d.PrefetchHits -= o.PrefetchHits
	d.PrefetchMisses -= o.PrefetchMisses
	d.ReadWait -= o.ReadWait
	d.WriteStall -= o.WriteStall
	d.WriteTime -= o.WriteTime
	d.WriteDrain -= o.WriteDrain
	d.WriteJobs -= o.WriteJobs
	d.PrefetchAbandoned -= o.PrefetchAbandoned
	d.ChecksumFailures -= o.ChecksumFailures
	d.IORetries -= o.IORetries
	d.RecoveredReads -= o.RecoveredReads
	d.RecoveredWrites -= o.RecoveredWrites
	d.VerifyTime -= o.VerifyTime
	d.CSEUnifications -= o.CSEUnifications
	d.NodesExecuted -= o.NodesExecuted
	d.CacheHits -= o.CacheHits
	d.CacheMisses -= o.CacheMisses
	d.CacheEvictions -= o.CacheEvictions
	d.CacheHitBytes -= o.CacheHitBytes
	d.Rewrites -= o.Rewrites
	d.RewriteViews -= o.RewriteViews
	d.RewriteCrossProds -= o.RewriteCrossProds
	d.RewriteAggFolds -= o.RewriteAggFolds
	d.RewriteDCE -= o.RewriteDCE
	d.RewriteDeadNodes -= o.RewriteDeadNodes
	d.ShardPasses -= o.ShardPasses
	d.ShardAggRounds -= o.ShardAggRounds
	d.ShardBytesSent -= o.ShardBytesSent
	d.ShardBytesRecv -= o.ShardBytesRecv
	d.ShardRetries -= o.ShardRetries
	d.ShardWorkerRead -= o.ShardWorkerRead
	d.ShardWorkerWritten -= o.ShardWorkerWritten
	d.ShardRecoveries -= o.ShardRecoveries
	d.ShardReplayedKeeps -= o.ShardReplayedKeeps
	return d
}

// String renders a compact single-line summary for benchmark output.
func (s MaterializeStats) String() string {
	var b strings.Builder
	if s.Owner != "" {
		fmt.Fprintf(&b, "owner=%s ", s.Owner)
	}
	fmt.Fprintf(&b, "fuse=%s wall=%s passes=%d parts=%d", s.Fuse, round(s.Wall), s.Passes, s.Parts)
	fmt.Fprintf(&b, " read=%s written=%s", mib(s.BytesRead), mib(s.BytesWritten))
	fmt.Fprintf(&b, " pf=%d/%d rwait=%s", s.PrefetchHits, s.PrefetchMisses, round(s.ReadWait))
	mode := "async"
	if s.SyncWrites {
		mode = "sync"
	}
	fmt.Fprintf(&b, " writes=%s wstall=%s wtime=%s wdrain=%s",
		mode, round(s.WriteStall), round(s.WriteTime), round(s.WriteDrain))
	fmt.Fprintf(&b, " verify=%s", round(s.VerifyTime))
	fmt.Fprintf(&b, " nodes=%d", s.NodesExecuted)
	if s.CSEUnifications != 0 || s.CacheHits != 0 || s.CacheMisses != 0 {
		fmt.Fprintf(&b, " cse=%d hit=%d/%d saved=%s evict=%d",
			s.CSEUnifications, s.CacheHits, s.CacheMisses, mib(s.CacheHitBytes), s.CacheEvictions)
	}
	if s.Rewrites != 0 {
		fmt.Fprintf(&b, " rw=%d (view=%d xprod=%d fold=%d dce=%d dead=%d)",
			s.Rewrites, s.RewriteViews, s.RewriteCrossProds, s.RewriteAggFolds,
			s.RewriteDCE, s.RewriteDeadNodes)
	}
	if s.ChecksumFailures != 0 || s.IORetries != 0 || s.RecoveredReads != 0 || s.RecoveredWrites != 0 {
		fmt.Fprintf(&b, " csfail=%d retries=%d recovered=%d/%d",
			s.ChecksumFailures, s.IORetries, s.RecoveredReads, s.RecoveredWrites)
	}
	if s.PrefetchAbandoned != 0 {
		fmt.Fprintf(&b, " pfabandoned=%d", s.PrefetchAbandoned)
	}
	if s.ShardPasses != 0 {
		fmt.Fprintf(&b, " shard(passes=%d rounds=%d sent=%s recv=%s wread=%s wwritten=%s retries=%d)",
			s.ShardPasses, s.ShardAggRounds, mib(s.ShardBytesSent), mib(s.ShardBytesRecv),
			mib(s.ShardWorkerRead), mib(s.ShardWorkerWritten), s.ShardRetries)
	}
	if s.ShardRecoveries != 0 {
		fmt.Fprintf(&b, " recoveries=%d replayed=%d", s.ShardRecoveries, s.ShardReplayedKeeps)
	}
	return b.String()
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}

func mib(n int64) string {
	return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
}
