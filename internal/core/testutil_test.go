package core

import "time"

func timeSleep(ms int) { time.Sleep(time.Duration(ms) * time.Millisecond) }
