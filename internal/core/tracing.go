package core

import (
	"sync"

	"repro/internal/trace"
)

// passTrace is the per-pass tracing state: the root-lane span buffer plus
// every lane buffer handed out to workers and write-behind lanes, stitched
// into the engine tracer when the pass finishes. A nil *passTrace is the
// disabled state — every method is nil-receiver safe and returns nil Bufs,
// whose Begin/End are themselves free no-ops.
type passTrace struct {
	tr   *trace.Tracer
	meta trace.PassMeta
	root *trace.Buf

	mu   sync.Mutex
	bufs []*trace.Buf
}

// newPassTrace starts recording one pass. A nil tracer returns nil.
func (e *Engine) newPassTrace(passID int64, owner, batch string) *passTrace {
	tr := e.tracer.Load()
	if tr == nil {
		return nil
	}
	return &passTrace{
		tr:   tr,
		meta: trace.PassMeta{Pass: passID, Owner: owner, Batch: batch},
		root: tr.NewBuf(passID, trace.TrackRoot),
	}
}

// rootBuf returns the orchestrator-lane buffer (nil when disabled).
func (pt *passTrace) rootBuf() *trace.Buf {
	if pt == nil {
		return nil
	}
	return pt.root
}

// newBuf creates and tracks a lane buffer for this pass.
func (pt *passTrace) newBuf(track int32) *trace.Buf {
	if pt == nil {
		return nil
	}
	b := pt.tr.NewBuf(pt.meta.Pass, track)
	pt.mu.Lock()
	pt.bufs = append(pt.bufs, b)
	pt.mu.Unlock()
	return b
}

// finish stitches all lane buffers into the tracer. Every lane must have
// quiesced; the caller guarantees this by finishing only after worker
// WaitGroups and the write-behind drain barrier.
func (pt *passTrace) finish() {
	if pt == nil {
		return
	}
	pt.mu.Lock()
	bufs := append([]*trace.Buf{pt.root}, pt.bufs...)
	pt.bufs = nil
	pt.mu.Unlock()
	pt.tr.Collect(pt.meta, bufs...)
}

// passRun carries a pass's identity and tracing state through the
// materialize → runFused call chain.
type passRun struct {
	id    int64
	owner string
	pt    *passTrace
}

// StartTrace enables span recording on the engine. Passes that begin after
// the call are recorded; it is a no-op if tracing is already on.
func (e *Engine) StartTrace() {
	e.tracer.CompareAndSwap(nil, trace.New())
}

// StopTrace disables recording and returns everything recorded since
// StartTrace, or nil if tracing was off. Passes still running keep their
// trace state and are simply dropped at collection, so stopping mid-pass is
// safe.
func (e *Engine) StopTrace() *trace.Data {
	tr := e.tracer.Swap(nil)
	if tr == nil {
		return nil
	}
	return tr.Data()
}

// Tracing reports whether span recording is on.
func (e *Engine) Tracing() bool { return e.tracer.Load() != nil }
