package core

import (
	"context"
	"sync"

	"repro/internal/numa"
)

// PassOptions identifies and weights one materialization pass for the
// engine's admission arbiter and the array's fair queueing.
type PassOptions struct {
	// Owner labels the session/client the pass runs for. Queued passes are
	// admitted FIFO within an owner and round-robin across owners, so one
	// chatty client cannot starve the others of admission slots.
	Owner string
	// Weight is the pass's share of SAFS bandwidth relative to other active
	// passes (values < 1 mean 1).
	Weight int
	// Batch labels the request batch the pass materializes for, when a
	// front-end coalesced several client requests into this pass. It flows
	// into the pass's MaterializeStats and trace metadata so coalesced
	// passes can be attributed back to the batch that produced them; empty
	// for passes submitted outside a batching front-end.
	Batch string
}

// passTicket is one queued admission request.
type passTicket struct {
	owner   string
	mem     int64
	ready   chan struct{}
	granted bool
}

// passArbiter is the engine's pass-admission layer: it bounds in-flight
// materialization passes and reserves each admitted pass's estimated buffer
// footprint against the NUMA topology's chunk-pool budget, so concurrent
// passes cannot oversubscribe memory. Waiters queue FIFO per owner and are
// granted round-robin across owners.
type passArbiter struct {
	topo *numa.Topology
	max  int

	mu       sync.Mutex
	inFlight int
	queues   map[string][]*passTicket
	order    []string // owners with queued tickets, in arrival order
	rrPos    int
}

func newPassArbiter(topo *numa.Topology, max int) *passArbiter {
	if max < 1 {
		max = 1
	}
	return &passArbiter{topo: topo, max: max, queues: make(map[string][]*passTicket)}
}

// admitLocked claims a slot and a memory reservation for a pass needing mem
// bytes, or reports false. A pass that would be alone on the engine is
// always admitted — its reservation is forced past the budget if necessary —
// so an oversized pass runs by itself instead of deadlocking.
func (a *passArbiter) admitLocked(mem int64) bool {
	if a.inFlight >= a.max {
		return false
	}
	if a.inFlight == 0 {
		a.topo.ForceReserve(mem)
		a.inFlight++
		return true
	}
	if !a.topo.TryReserve(mem) {
		return false
	}
	a.inFlight++
	return true
}

// acquire blocks until the pass is admitted or ctx is cancelled. On success
// the returned release function must be called exactly once when the pass
// finishes; on cancellation the ticket is withdrawn (and a grant that raced
// with the cancellation is handed back).
func (a *passArbiter) acquire(ctx context.Context, owner string, mem int64) (func(), error) {
	release := func() { a.release(mem) }
	a.mu.Lock()
	// Admit immediately only when nobody is queued ahead of us; otherwise a
	// small pass could leapfrog the whole queue forever.
	if len(a.order) == 0 && a.admitLocked(mem) {
		a.mu.Unlock()
		return release, nil
	}
	t := &passTicket{owner: owner, mem: mem, ready: make(chan struct{})}
	if _, ok := a.queues[owner]; !ok {
		a.order = append(a.order, owner)
	}
	a.queues[owner] = append(a.queues[owner], t)
	a.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-t.ready:
		return release, nil
	case <-done:
		a.mu.Lock()
		if t.granted {
			// The grant raced with the cancellation: we hold a slot and a
			// reservation; hand both back before reporting the cancel.
			a.mu.Unlock()
			release()
			return nil, ctx.Err()
		}
		a.removeTicketLocked(t)
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns a pass's slot and reservation, then grants as many queued
// tickets as now fit.
func (a *passArbiter) release(mem int64) {
	a.mu.Lock()
	a.inFlight--
	a.topo.ReleaseMem(mem)
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked admits queued tickets round-robin across owners (FIFO within
// an owner) until no head-of-queue ticket fits.
func (a *passArbiter) grantLocked() {
	for a.grantOneLocked() {
	}
}

// grantOneLocked scans owners round-robin starting at rrPos and admits the
// first head-of-queue ticket that fits, leaving rrPos on the owner after the
// granted one (so repeated grants rotate across owners instead of draining
// whichever owner the scan happens to start on). Reports false when no
// queued ticket can be admitted.
func (a *passArbiter) grantOneLocked() bool {
	// Reap owners whose queues drained (cancelled tickets).
	for i := 0; i < len(a.order); {
		if len(a.queues[a.order[i]]) == 0 {
			a.dropOwnerLocked(i)
		} else {
			i++
		}
	}
	n := len(a.order)
	if n == 0 {
		a.rrPos = 0
		return false
	}
	if a.rrPos >= n {
		a.rrPos = 0
	}
	for k := 0; k < n; k++ {
		i := (a.rrPos + k) % n
		owner := a.order[i]
		q := a.queues[owner]
		t := q[0]
		if !a.admitLocked(t.mem) {
			continue
		}
		q[0] = nil
		a.queues[owner] = q[1:]
		if len(a.queues[owner]) == 0 {
			a.dropOwnerLocked(i)
			a.rrPos = i // the owner after the granted one shifted into i
			if a.rrPos >= len(a.order) {
				a.rrPos = 0
			}
		} else {
			a.rrPos = (i + 1) % n
		}
		t.granted = true
		close(t.ready)
		return true
	}
	return false
}

// dropOwnerLocked removes the owner at order index i, keeping rrPos stable.
func (a *passArbiter) dropOwnerLocked(i int) {
	owner := a.order[i]
	delete(a.queues, owner)
	a.order = append(a.order[:i], a.order[i+1:]...)
	if a.rrPos > i {
		a.rrPos--
	}
}

// removeTicketLocked withdraws a still-queued ticket (ctx cancellation).
func (a *passArbiter) removeTicketLocked(t *passTicket) {
	q := a.queues[t.owner]
	for i, qt := range q {
		if qt == t {
			a.queues[t.owner] = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(a.queues[t.owner]) == 0 {
		for i, o := range a.order {
			if o == t.owner {
				a.dropOwnerLocked(i)
				break
			}
		}
	}
}

// running reports the number of admitted, still-running passes (metrics).
func (a *passArbiter) running() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight
}

// queued reports how many tickets are waiting for admission (tests, metrics).
func (a *passArbiter) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, q := range a.queues {
		n += len(q)
	}
	return n
}
