package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/matrix"
	"repro/internal/numa"
	"repro/internal/safs"
)

// testEngines builds IM and EM engines at every fusion level, all sharing a
// small partition height so even modest matrices span many partitions.
func testEngines(t *testing.T) map[string]*Engine {
	t.Helper()
	const partRows = 256
	fs, err := safs.OpenTempDir(t.TempDir(), 3, 0, 0)
	if err != nil {
		t.Fatalf("safs: %v", err)
	}
	t.Cleanup(func() { fs.Close() })
	topo := numa.NewTopology(4, 1<<16)
	engines := map[string]*Engine{}
	for _, em := range []bool{false, true} {
		for _, fuse := range []FuseLevel{FuseNone, FuseMem, FuseCache} {
			name := "im-" + fuse.String()
			if em {
				name = "em-" + fuse.String()
			}
			e, err := NewEngine(Config{
				Workers: 4, Fuse: fuse, Topo: topo, FS: fs, EM: em,
				PartRows: partRows, PcacheBytes: 2048,
			})
			if err != nil {
				t.Fatalf("engine %s: %v", name, err)
			}
			engines[name] = e
		}
	}
	return engines
}

func randDense(rng *rand.Rand, r, c int) *dense.Dense {
	d := dense.New(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

func toDense(t *testing.T, e *Engine, m *Mat) *dense.Dense {
	t.Helper()
	d, err := e.ToDense(m)
	if err != nil {
		t.Fatalf("ToDense: %v", err)
	}
	return d
}

func wantClose(t *testing.T, name string, got, want *dense.Dense, tol float64) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.R, got.C, want.R, want.C)
	}
	if d := dense.MaxAbsDiff(got, want); d > tol {
		t.Fatalf("%s: max abs diff %g > %g", name, d, tol)
	}
}

// TestElementwiseChains verifies that a fused chain of sapply/mapply ops
// produces identical results at every fusion level, in memory and on SSDs.
func TestElementwiseChains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, p = 2000, 7
	ad := randDense(rng, n, p)
	bd := randDense(rng, n, p)
	// want = sqrt(|a|) * b + (a - 2)
	want := dense.New(n, p)
	for i := range want.Data {
		want.Data[i] = math.Sqrt(math.Abs(ad.Data[i]))*bd.Data[i] + (ad.Data[i] - 2)
	}
	for name, e := range testEngines(t) {
		a, err := e.FromDense(ad)
		if err != nil {
			t.Fatalf("%s FromDense: %v", name, err)
		}
		b, err := e.FromDense(bd)
		if err != nil {
			t.Fatalf("%s FromDense: %v", name, err)
		}
		expr := Mapply(
			Mapply(Sapply(Sapply(a, UnaryAbs), UnarySqrt), b, BinMul),
			MapplyScalar(a, 2, BinSub, false),
			BinAdd,
		)
		got := toDense(t, e, expr)
		wantClose(t, name+"/chain", got, want, 1e-12)
	}
}

// TestAggSinks checks agg, agg.col, and per-row agg against naive folds.
func TestAggSinks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, p = 1500, 5
	ad := randDense(rng, n, p)
	var wantSum float64
	wantColSums := make([]float64, p)
	wantRowSums := dense.New(n, 1)
	wantMax := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			v := ad.At(i, j)
			wantSum += v
			wantColSums[j] += v
			wantRowSums.Data[i] += v
			if v > wantMax {
				wantMax = v
			}
		}
	}
	for name, e := range testEngines(t) {
		a, _ := e.FromDense(ad)
		sum := Agg(a, AggSum)
		colSums := AggCol(a, AggSum)
		maxS := Agg(a, AggMax)
		rows := AggRow(a, AggSum)
		if err := e.Materialize([]*Mat{rows}, []*Sink{sum, colSums, maxS}); err != nil {
			t.Fatalf("%s materialize: %v", name, err)
		}
		if got := sum.Result().At(0, 0); math.Abs(got-wantSum) > 1e-9 {
			t.Fatalf("%s sum=%g want %g", name, got, wantSum)
		}
		if got := maxS.Result().At(0, 0); got != wantMax {
			t.Fatalf("%s max=%g want %g", name, got, wantMax)
		}
		for j := 0; j < p; j++ {
			if got := colSums.Result().At(0, j); math.Abs(got-wantColSums[j]) > 1e-9 {
				t.Fatalf("%s colsum[%d]=%g want %g", name, j, got, wantColSums[j])
			}
		}
		wantClose(t, name+"/rowsums", toDense(t, e, rows), wantRowSums, 1e-9)
	}
}

// TestGroupByRowAndWhichMin covers the k-means building blocks: argmin per
// row, grouping rows by label, and group counts.
func TestGroupByRowAndWhichMin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, p, k = 1200, 4, 5
	ad := randDense(rng, n, p)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(k)
	}
	ld := dense.New(n, 1)
	for i, l := range labels {
		ld.Data[i] = float64(l)
	}
	wantGroup := dense.New(k, p)
	wantCnt := make([]float64, k)
	for i := 0; i < n; i++ {
		g := labels[i]
		wantCnt[g]++
		for j := 0; j < p; j++ {
			wantGroup.Data[g*p+j] += ad.At(i, j)
		}
	}
	wantArg := dense.New(n, 1)
	for i := 0; i < n; i++ {
		best, bv := 0, ad.At(i, 0)
		for j := 1; j < p; j++ {
			if ad.At(i, j) < bv {
				bv, best = ad.At(i, j), j
			}
		}
		wantArg.Data[i] = float64(best)
	}
	for name, e := range testEngines(t) {
		a, _ := e.FromDense(ad)
		l, _ := e.FromDense(ld)
		grp := GroupByRow(a, l, k, AggSum)
		cnt := GroupByRow(NewConst(n, 1, 1), l, k, AggSum)
		arg := WhichMinRow(a)
		if err := e.Materialize([]*Mat{arg}, []*Sink{grp, cnt}); err != nil {
			t.Fatalf("%s materialize: %v", name, err)
		}
		wantClose(t, name+"/groupby", grp.Result(), wantGroup, 1e-9)
		for g := 0; g < k; g++ {
			if got := cnt.Result().At(g, 0); got != wantCnt[g] {
				t.Fatalf("%s count[%d]=%g want %g", name, g, got, wantCnt[g])
			}
		}
		wantClose(t, name+"/whichmin", toDense(t, e, arg), wantArg, 0)
	}
}

// TestCrossProdAndInnerProd checks the BLAS and generalized kernels against
// naive matrix multiplication.
func TestCrossProdAndInnerProd(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, p, m = 900, 6, 3
	ad := randDense(rng, n, p)
	bd := randDense(rng, n, m)
	small := randDense(rng, p, m)
	wantCross := dense.CrossProd(ad, bd)
	wantIP := dense.MatMul(ad, small)
	// Euclidean inner product: D[i,j] = sum_k (a[i,k]-c[k,j])^2.
	wantEuc := dense.New(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			var s float64
			for kk := 0; kk < p; kk++ {
				d := ad.At(i, kk) - small.At(kk, j)
				s += d * d
			}
			wantEuc.Set(i, j, s)
		}
	}
	for name, e := range testEngines(t) {
		a, _ := e.FromDense(ad)
		b, _ := e.FromDense(bd)
		cross := CrossProd(a, b, nil, nil)
		crossGen := CrossProd(a, b, BinMul, BinAdd)
		ip := InnerProd(a, small, nil, nil)
		euc := InnerProd(a, small, BinEuclid, BinAdd)
		if err := e.Materialize([]*Mat{ip, euc}, []*Sink{cross, crossGen}); err != nil {
			t.Fatalf("%s materialize: %v", name, err)
		}
		wantClose(t, name+"/crossprod", cross.Result(), wantCross, 1e-9)
		wantClose(t, name+"/crossprod-gen", crossGen.Result(), wantCross, 1e-9)
		wantClose(t, name+"/innerprod", toDense(t, e, ip), wantIP, 1e-9)
		wantClose(t, name+"/euclid", toDense(t, e, euc), wantEuc, 1e-9)
	}
}

// TestCumulative checks cum.col (cross-partition single-scan prefix) and
// cum.row against serial prefixes.
func TestCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, p = 1700, 3
	ad := randDense(rng, n, p)
	wantCol := dense.New(n, p)
	run := make([]float64, p)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			run[j] += ad.At(i, j)
			wantCol.Set(i, j, run[j])
		}
	}
	wantRow := dense.New(n, p)
	for i := 0; i < n; i++ {
		var r float64
		for j := 0; j < p; j++ {
			r += ad.At(i, j)
			wantRow.Set(i, j, r)
		}
	}
	for name, e := range testEngines(t) {
		a, _ := e.FromDense(ad)
		cc := CumCol(a, AggSum)
		cr := CumRow(a, AggSum)
		if err := e.Materialize([]*Mat{cc, cr}, nil); err != nil {
			t.Fatalf("%s materialize: %v", name, err)
		}
		wantClose(t, name+"/cumcol", toDense(t, e, cc), wantCol, 1e-9)
		wantClose(t, name+"/cumrow", toDense(t, e, cr), wantRow, 1e-9)
	}
}

// TestColsAndConst covers column-subset views, constants, row-vector and
// column-vector broadcasts.
func TestColsAndConst(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n, p = 1100, 6
	ad := randDense(rng, n, p)
	cols := []int{4, 0, 2}
	sweepV := []float64{1, -2, 3}
	vd := randDense(rng, n, 1)
	want := dense.New(n, len(cols))
	for i := 0; i < n; i++ {
		for j, c := range cols {
			want.Set(i, j, (ad.At(i, c)-sweepV[j])*vd.At(i, 0)+5)
		}
	}
	for name, e := range testEngines(t) {
		a, _ := e.FromDense(ad)
		v, _ := e.FromDense(vd)
		sub := Cols(a, cols)
		expr := MapplyScalar(
			MapplyColVec(MapplyRowVec(sub, sweepV, BinSub, false), v, BinMul, false),
			5, BinAdd, false)
		wantClose(t, name+"/colsexpr", toDense(t, e, expr), want, 1e-12)
	}
}

// TestTableSink checks the data-dependent table/unique sink.
func TestTableSink(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 3000
	vals := dense.New(n, 1)
	wantCounts := map[float64]int64{}
	for i := 0; i < n; i++ {
		v := float64(rng.Intn(6))
		vals.Data[i] = v
		wantCounts[v]++
	}
	for name, e := range testEngines(t) {
		a, _ := e.FromDense(vals)
		tab := Table(a)
		if err := e.Materialize(nil, []*Sink{tab}); err != nil {
			t.Fatalf("%s materialize: %v", name, err)
		}
		keys, counts := tab.TableResult()
		if len(keys) != len(wantCounts) {
			t.Fatalf("%s table has %d keys, want %d", name, len(keys), len(wantCounts))
		}
		for i, k := range keys {
			if counts[i] != wantCounts[k] {
				t.Fatalf("%s table[%g]=%d want %d", name, k, counts[i], wantCounts[k])
			}
		}
	}
}

// TestSetCache verifies that cache-flagged interior nodes materialize
// alongside the DAG and short-circuit later evaluations.
func TestSetCache(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, p = 1300, 4
	ad := randDense(rng, n, p)
	for name, e := range testEngines(t) {
		a, _ := e.FromDense(ad)
		mid := Sapply(a, UnarySquare)
		mid.SetCache(false)
		total := Agg(mid, AggSum)
		if err := e.Materialize(nil, []*Sink{total}); err != nil {
			t.Fatalf("%s materialize: %v", name, err)
		}
		if !mid.Materialized() {
			t.Fatalf("%s: cached node not materialized", name)
		}
		// Reuse the cached node; its store must be readable directly.
		again := Agg(mid, AggSum)
		if err := e.Materialize(nil, []*Sink{again}); err != nil {
			t.Fatalf("%s rematerialize: %v", name, err)
		}
		if a, b := total.Result().At(0, 0), again.Result().At(0, 0); math.Abs(a-b) > 1e-9 {
			t.Fatalf("%s cached recompute %g != %g", name, b, a)
		}
	}
}

// TestNUMAPolicy asserts the placement policy: with workers == nodes and the
// partition→node mapping shared by every matrix, fused evaluation of
// partition i happens on a single node's data.
func TestNUMAPolicy(t *testing.T) {
	topo := numa.NewTopology(2, 1<<14)
	e, err := NewEngine(Config{Workers: 2, Fuse: FuseCache, Topo: topo, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	ad := randDense(rng, 4096, 3)
	a, _ := e.FromDense(ad)
	topo.ResetStats()
	s := Agg(Sapply(a, UnarySquare), AggSum)
	if err := e.Materialize(nil, []*Sink{s}); err != nil {
		t.Fatal(err)
	}
	local, remote := topo.Stats()
	if local+remote == 0 {
		t.Fatal("no accesses recorded")
	}
	// Dynamic dispatch means perfect locality is not guaranteed, but the
	// policy should keep a majority of accesses local; with exactly one
	// worker per node and round-robin partitions it is typically all of
	// them. Assert it is not inverted.
	if remote > local {
		t.Fatalf("NUMA policy inverted: %d local, %d remote", local, remote)
	}
}

// TestDifferentPartitionDims ensures mixing partition dimensions in one DAG
// is rejected.
func TestDifferentPartitionDims(t *testing.T) {
	e, err := NewEngine(Config{Workers: 1, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	a, _ := e.FromDense(randDense(rng, 512, 2))
	b, _ := e.FromDense(randDense(rng, 600, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("mapply across partition dimensions did not panic")
		}
	}()
	_ = Mapply(a, b, BinAdd)
}

// TestGenerateDeterminism checks that Generate fills partitions
// deterministically regardless of scheduling.
func TestGenerateDeterminism(t *testing.T) {
	e, err := NewEngine(Config{Workers: 4, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() *dense.Dense {
		m, err := e.Generate(2000, 3, matrix.F64, func(part int, start int64, rows int, buf []float64) {
			for r := 0; r < rows; r++ {
				for c := 0; c < 3; c++ {
					buf[r*3+c] = float64(start+int64(r))*10 + float64(c)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return toDense(t, e, m)
	}
	if d := dense.MaxAbsDiff(gen(), gen()); d != 0 {
		t.Fatalf("generate nondeterministic: %g", d)
	}
}
