package core

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/matrix"
)

// Program is a DAG serialized to pure data for shipping to shard workers:
// nodes in topological order (inputs before consumers), functions referenced
// by their registered R names, leaves referenced by coordinator-assigned
// handles. Sinks are encoded in their raw (pre-publish-transform) form — the
// aggregation-fold transform is applied exactly once, on the coordinator,
// after per-shard partials combine.
type Program struct {
	Nodes []ProgramNode
	Talls []int32 // node indexes to materialize as tall targets
	Sinks []ProgramSink
	Cums  []int32 // opCumCol node indexes, in topo order
}

// ProgramNode is one serialized Mat. A and B index earlier nodes (-1 = none);
// Leaf is non-empty for materialized nodes and names a worker-resident
// matrix handle.
type ProgramNode struct {
	Op         uint8
	A, B       int32
	DT         uint8
	NCol       int32
	Un         string // unary function name
	Bin        string // binary function name
	Agg        string // aggregation function name
	Arg        uint8  // argMode for opAggRow
	Scalar     float64
	ScalarLeft bool
	Vec        []float64
	VecLeft    bool
	SmallR     int32 // opInnerProd right operand
	SmallC     int32
	Small      []float64
	F1, F2     string // opInnerProd functions; empty F1 = BLAS path
	Cols       []int32
	Labels     []int32
	GroupK     int32
	Leaf       string
	Const      float64
}

// ProgramSink is one serialized sink GenOp. B == A preserves operand object
// identity, which selects the symmetric Syrk kernel for crossprod.
type ProgramSink struct {
	Kind   uint8
	A, B   int32 // B = -1 when absent
	Agg    string
	F1, F2 string // empty F1 = BLAS path
	K      int32
}

// EncodeProgram serializes a RemoteDAG. leafRef is called once per distinct
// materialized node and returns the worker-resident handle its data is (or
// will be, after pushing) available under.
//
// Every node is resolved through d.Canon before encoding, so CSE-unified
// duplicates collapse onto their representative's program index exactly as
// they share one slot in the local plan. This is load-bearing for cum.col:
// d.Cums lists only representatives, and a duplicate encoded as its own node
// would scan from the fold identity on every shard but the first instead of
// the threaded carry. It also means Talls may repeat an index (two targets
// unified onto one computation) — the coordinator keeps each position under
// its own handle.
func EncodeProgram(d *RemoteDAG, leafRef func(m *Mat) (string, error)) (*Program, error) {
	canon := d.Canon
	if canon == nil {
		canon = func(m *Mat) *Mat { return m }
	}
	p := &Program{}
	memo := make(map[*Mat]int32)
	var visit func(m *Mat) (int32, error)
	visit = func(m *Mat) (int32, error) {
		m = canon(m)
		if idx, ok := memo[m]; ok {
			return idx, nil
		}
		n := ProgramNode{A: -1, B: -1, DT: uint8(m.dt), NCol: int32(m.ncol)}
		switch {
		case m.kind == opConst:
			n.Op = uint8(opConst)
			n.Const = m.vec[0]
		case m.kind == opLeaf || m.Materialized():
			ref, err := leafRef(m)
			if err != nil {
				return 0, err
			}
			n.Op = uint8(opLeaf)
			n.Leaf = ref
		default:
			n.Op = uint8(m.kind)
			if m.a != nil {
				idx, err := visit(m.a)
				if err != nil {
					return 0, err
				}
				n.A = idx
			}
			if m.b != nil {
				idx, err := visit(m.b)
				if err != nil {
					return 0, err
				}
				n.B = idx
			}
			if m.un != nil {
				n.Un = m.un.Name
			}
			if m.bin != nil {
				n.Bin = m.bin.Name
			}
			if m.agg != nil {
				n.Agg = m.agg.Name
			}
			n.Arg = uint8(m.arg)
			n.Scalar, n.ScalarLeft = m.scalar, m.scalarLeft
			n.VecLeft = m.vecLeft
			if m.kind == opMapplyRowVec {
				n.Vec = m.vec
			}
			if m.small != nil {
				n.SmallR, n.SmallC = int32(m.small.R), int32(m.small.C)
				n.Small = m.small.Data
			}
			if m.f1 != nil {
				n.F1 = m.f1.Name
			}
			if m.f2 != nil {
				n.F2 = m.f2.Name
			}
			n.Cols = toInt32s(m.cols)
			n.Labels = toInt32s(m.colLabels)
			n.GroupK = int32(m.groupK)
		}
		idx := int32(len(p.Nodes))
		p.Nodes = append(p.Nodes, n)
		memo[m] = idx
		return idx, nil
	}
	for _, m := range d.Talls {
		idx, err := visit(m)
		if err != nil {
			return nil, err
		}
		p.Talls = append(p.Talls, idx)
	}
	for _, s := range d.Sinks {
		idx, err := visit(s.a)
		if err != nil {
			return nil, err
		}
		ps := ProgramSink{Kind: uint8(s.kind), A: idx, B: -1, K: int32(s.k)}
		if s.b != nil {
			bidx, err := visit(s.b)
			if err != nil {
				return nil, err
			}
			ps.B = bidx
		}
		if s.agg != nil {
			ps.Agg = s.agg.Name
		}
		if s.f1 != nil {
			ps.F1 = s.f1.Name
		}
		if s.f2 != nil {
			ps.F2 = s.f2.Name
		}
		p.Sinks = append(p.Sinks, ps)
	}
	for _, m := range d.Cums {
		idx, ok := memo[canon(m)]
		if !ok {
			return nil, fmt.Errorf("core: cum.col node %d not reachable from program targets", m.id)
		}
		p.Cums = append(p.Cums, idx)
	}
	return p, nil
}

// Instantiate rebuilds the program as a worker-local DAG over nrow rows (one
// shard's slice of the partition dimension). resolve maps a leaf handle to
// the worker-resident Mat holding its data; carries seeds cum.col nodes with
// the accumulator entering this shard (absent = the fold identity, i.e. the
// first shard). It returns every instantiated node (indexed like
// Program.Nodes) plus the built sinks. Constructor shape panics are converted
// to errors: a malformed program must fail an RPC, not kill the worker.
func (p *Program) Instantiate(nrow int64, resolve func(ref string) (*Mat, error), carries map[int32][]float64) (nodes []*Mat, sinks []*Sink, err error) {
	defer func() {
		if r := recover(); r != nil {
			nodes, sinks = nil, nil
			err = fmt.Errorf("core: invalid program: %v", r)
		}
	}()
	nodes = make([]*Mat, len(p.Nodes))
	in := func(idx int32, what string) (*Mat, error) {
		if idx < 0 || int(idx) >= len(nodes) || nodes[idx] == nil {
			return nil, fmt.Errorf("core: invalid program: %s index %d", what, idx)
		}
		return nodes[idx], nil
	}
	for i, n := range p.Nodes {
		var m *Mat
		var a, b *Mat
		if op := opKind(n.Op); op != opLeaf && op != opConst {
			if n.A >= 0 {
				if a, err = in(n.A, "input a"); err != nil {
					return nil, nil, err
				}
			}
			if n.B >= 0 {
				if b, err = in(n.B, "input b"); err != nil {
					return nil, nil, err
				}
			}
		}
		switch opKind(n.Op) {
		case opLeaf:
			m, err = resolve(n.Leaf)
			if err != nil {
				return nil, nil, err
			}
			if m.nrow != nrow || m.ncol != int(n.NCol) {
				return nil, nil, fmt.Errorf("core: leaf %q is %dx%d, program wants %dx%d",
					n.Leaf, m.nrow, m.ncol, nrow, n.NCol)
			}
			if uint8(m.dt) != n.DT {
				return nil, nil, fmt.Errorf("core: leaf %q has dtype %d, program wants %d", n.Leaf, m.dt, n.DT)
			}
		case opConst:
			m = NewConst(nrow, int(n.NCol), n.Const)
		case opSapply:
			un, lerr := LookupUnary(n.Un)
			if lerr != nil {
				return nil, nil, lerr
			}
			m = Sapply(a, un)
		case opMapplyMM:
			bin, lerr := LookupBinary(n.Bin)
			if lerr != nil {
				return nil, nil, lerr
			}
			m = Mapply(a, b, bin)
		case opMapplyScalar:
			bin, lerr := LookupBinary(n.Bin)
			if lerr != nil {
				return nil, nil, lerr
			}
			m = MapplyScalar(a, n.Scalar, bin, n.ScalarLeft)
		case opMapplyRowVec:
			bin, lerr := LookupBinary(n.Bin)
			if lerr != nil {
				return nil, nil, lerr
			}
			m = MapplyRowVec(a, n.Vec, bin, n.VecLeft)
		case opMapplyColVec:
			bin, lerr := LookupBinary(n.Bin)
			if lerr != nil {
				return nil, nil, lerr
			}
			m = MapplyColVec(a, b, bin, n.VecLeft)
		case opInnerProd:
			var f1, f2 *Binary
			if n.F1 != "" {
				if f1, err = LookupBinary(n.F1); err != nil {
					return nil, nil, err
				}
				if f2, err = LookupBinary(n.F2); err != nil {
					return nil, nil, err
				}
			}
			if int(n.SmallR)*int(n.SmallC) != len(n.Small) {
				return nil, nil, fmt.Errorf("core: invalid program: inner.prod operand %dx%d with %d values",
					n.SmallR, n.SmallC, len(n.Small))
			}
			m = InnerProd(a, dense.FromSlice(int(n.SmallR), int(n.SmallC), n.Small), f1, f2)
		case opAggRow:
			switch argMode(n.Arg) {
			case argMin:
				m = WhichMinRow(a)
			case argMax:
				m = WhichMaxRow(a)
			default:
				agg, lerr := LookupAgg(n.Agg)
				if lerr != nil {
					return nil, nil, lerr
				}
				m = AggRow(a, agg)
			}
		case opGroupByCol:
			agg, lerr := LookupAgg(n.Agg)
			if lerr != nil {
				return nil, nil, lerr
			}
			m = GroupByCol(a, toInts(n.Labels), int(n.GroupK), agg)
		case opCumRow:
			agg, lerr := LookupAgg(n.Agg)
			if lerr != nil {
				return nil, nil, lerr
			}
			m = CumRow(a, agg)
		case opCumCol:
			agg, lerr := LookupAgg(n.Agg)
			if lerr != nil {
				return nil, nil, lerr
			}
			if carry, ok := carries[int32(i)]; ok {
				m = CumColCarry(a, agg, carry)
			} else {
				m = CumCol(a, agg)
			}
		case opCols:
			m = Cols(a, toInts(n.Cols))
		case opCbind:
			m = Cbind2(a, b)
		case opSetCols:
			m = SetCols(a, b, toInts(n.Cols))
		default:
			return nil, nil, fmt.Errorf("core: invalid program: unknown op %d", n.Op)
		}
		if m.ncol != int(n.NCol) {
			return nil, nil, fmt.Errorf("core: program node %d rebuilt with %d cols, want %d", i, m.ncol, n.NCol)
		}
		nodes[i] = m
	}
	for _, ps := range p.Sinks {
		a, aerr := in(ps.A, "sink input a")
		if aerr != nil {
			return nil, nil, aerr
		}
		var b *Mat
		if ps.B >= 0 {
			if b, err = in(ps.B, "sink input b"); err != nil {
				return nil, nil, err
			}
		}
		var s *Sink
		switch SinkKind(ps.Kind) {
		case SinkAgg:
			agg, lerr := LookupAgg(ps.Agg)
			if lerr != nil {
				return nil, nil, lerr
			}
			s = Agg(a, agg)
		case SinkAggCol:
			agg, lerr := LookupAgg(ps.Agg)
			if lerr != nil {
				return nil, nil, lerr
			}
			s = AggCol(a, agg)
		case SinkGroupByRow:
			agg, lerr := LookupAgg(ps.Agg)
			if lerr != nil {
				return nil, nil, lerr
			}
			s = GroupByRow(a, b, int(ps.K), agg)
		case SinkCrossProd:
			var f1, f2 *Binary
			if ps.F1 != "" {
				if f1, err = LookupBinary(ps.F1); err != nil {
					return nil, nil, err
				}
				if f2, err = LookupBinary(ps.F2); err != nil {
					return nil, nil, err
				}
			}
			s = CrossProd(a, b, f1, f2)
		case SinkTable:
			s = Table(a)
		case SinkGroupByVal:
			agg, lerr := LookupAgg(ps.Agg)
			if lerr != nil {
				return nil, nil, lerr
			}
			s = GroupByVal(a, agg)
		default:
			return nil, nil, fmt.Errorf("core: invalid program: unknown sink kind %d", ps.Kind)
		}
		sinks = append(sinks, s)
	}
	return nodes, sinks, nil
}

// LeafDType decodes a wire dtype byte, validating it.
func LeafDType(b uint8) (matrix.DType, error) {
	switch dt := matrix.DType(b); dt {
	case matrix.F64, matrix.I64, matrix.Bool:
		return dt, nil
	default:
		return 0, fmt.Errorf("core: invalid dtype %d", b)
	}
}

func toInt32s(xs []int) []int32 {
	if xs == nil {
		return nil
	}
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

func toInts(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}
