package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dense"
	"repro/internal/numa"
)

// newCSEEngine builds a small in-memory engine with hash-consing on and a
// result cache sized for tests.
func newCSEEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.PartRows == 0 {
		cfg.PartRows = 256
	}
	if cfg.Topo == nil {
		cfg.Topo = numa.NewTopology(2, 1<<15)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func cseDense(r, c int, seed int64) *dense.Dense {
	rng := rand.New(rand.NewSource(seed))
	d := dense.New(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

func bitsEqual(t *testing.T, name string, got, want *dense.Dense) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.R, got.C, want.R, want.C)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %v (bits %016x), want %v (bits %016x)",
				name, i, got.Data[i], math.Float64bits(got.Data[i]),
				want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

// TestCSEUnifiesDuplicateSubtrees: two structurally identical tall targets in
// one pass must execute once, and both must still materialize with the exact
// same bits a CSE-free engine computes.
func TestCSEUnifiesDuplicateSubtrees(t *testing.T) {
	ad := cseDense(1500, 3, 1)
	build := func(a *Mat) *Mat { return Sapply(Sapply(a, UnaryAbs), UnarySqrt) }

	ref := newCSEEngine(t, Config{DisableCSE: true})
	ra, err := ref.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ToDense(build(ra))
	if err != nil {
		t.Fatal(err)
	}

	e := newCSEEngine(t, Config{})
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	x1, x2 := build(a), build(a)
	if err := e.Materialize([]*Mat{x1, x2}, nil); err != nil {
		t.Fatal(err)
	}
	ms := e.LastMaterializeStats()
	// x2's inner and outer Sapply both unify onto x1's slots.
	if ms.CSEUnifications != 2 {
		t.Fatalf("CSEUnifications = %d, want 2 (stats: %s)", ms.CSEUnifications, ms)
	}
	// Only x1's two virtual nodes execute; x2 contributes none.
	if ms.NodesExecuted != 2 {
		t.Fatalf("NodesExecuted = %d, want 2 (stats: %s)", ms.NodesExecuted, ms)
	}
	for i, x := range []*Mat{x1, x2} {
		if !x.Materialized() {
			t.Fatalf("target %d not materialized", i)
		}
		got, err := e.ToDense(x)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "unified target", got, want)
	}
}

// TestResultCacheCrossMaterialize: rebuilding a structurally identical DAG in
// a later pass must be served whole from the result cache — zero nodes
// executed — with bit-identical contents.
func TestResultCacheCrossMaterialize(t *testing.T) {
	ad := cseDense(2000, 4, 2)
	e := newCSEEngine(t, Config{})
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Mat { return MapplyScalar(Sapply(a, UnarySquare), 0.25, BinMul, false) }

	y1 := build()
	if err := e.Materialize([]*Mat{y1}, nil); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.CacheHits != 0 || ms.CacheMisses == 0 {
		t.Fatalf("cold pass: hits=%d misses=%d, want 0 and >0", ms.CacheHits, ms.CacheMisses)
	}
	want, err := e.ToDense(y1)
	if err != nil {
		t.Fatal(err)
	}

	y2 := build()
	if err := e.Materialize([]*Mat{y2}, nil); err != nil {
		t.Fatal(err)
	}
	ms := e.LastMaterializeStats()
	if ms.CacheHits != 1 {
		t.Fatalf("warm pass CacheHits = %d, want 1 (stats: %s)", ms.CacheHits, ms)
	}
	if ms.NodesExecuted != 0 || ms.Passes != 0 {
		t.Fatalf("warm pass executed nodes=%d passes=%d, want 0/0 (stats: %s)",
			ms.NodesExecuted, ms.Passes, ms)
	}
	if ms.CacheHitBytes != int64(want.R*want.C*8) {
		t.Fatalf("CacheHitBytes = %d, want %d", ms.CacheHitBytes, want.R*want.C*8)
	}
	got, err := e.ToDense(y2)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "cache-served target", got, want)
}

// TestSinkCacheAndUnification: duplicate sinks unify within a pass, and a
// structurally identical sink built later is served from the cache without a
// pass.
func TestSinkCacheAndUnification(t *testing.T) {
	ad := cseDense(1200, 2, 3)
	e := newCSEEngine(t, Config{})
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Sink { return Agg(Sapply(a, UnaryAbs), AggSum) }

	s1, s2 := mk(), mk()
	if err := e.Materialize(nil, []*Sink{s1, s2}); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.CSEUnifications < 1 {
		t.Fatalf("duplicate sinks: CSEUnifications = %d, want >= 1 (stats: %s)", ms.CSEUnifications, ms)
	}
	if !s1.Done() || !s2.Done() {
		t.Fatal("unified sinks not both done")
	}
	v1, v2 := s1.Result().Data[0], s2.Result().Data[0]
	if math.Float64bits(v1) != math.Float64bits(v2) {
		t.Fatalf("unified sink results differ: %v vs %v", v1, v2)
	}

	s3 := mk()
	if err := e.Materialize(nil, []*Sink{s3}); err != nil {
		t.Fatal(err)
	}
	ms := e.LastMaterializeStats()
	if ms.CacheHits != 1 || ms.Passes != 0 {
		t.Fatalf("warm sink: hits=%d passes=%d, want 1/0 (stats: %s)", ms.CacheHits, ms.Passes, ms)
	}
	if got := s3.Result().Data[0]; math.Float64bits(got) != math.Float64bits(v1) {
		t.Fatalf("cache-served sink = %v, want %v", got, v1)
	}
}

// TestHashCollisionNeverUnifies forces every structural key into a single
// intern bucket and checks that structurally distinct DAGs — permuted
// children, different scalars, different scalar side, different functions,
// different op kinds — never unify and never poison the result cache, while a
// genuine duplicate still unifies through the collision chain.
func TestHashCollisionNeverUnifies(t *testing.T) {
	ad := cseDense(900, 3, 4)
	bd := cseDense(900, 3, 5)

	e := newCSEEngine(t, Config{})
	e.cons.testHash = func(string) uint64 { return 42 }
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.FromDense(bd)
	if err != nil {
		t.Fatal(err)
	}

	// Each pair is structurally distinct in exactly one aspect.
	pairs := [][2]*Mat{
		{Mapply(a, b, BinSub), Mapply(b, a, BinSub)},                                // permuted children
		{MapplyScalar(a, 0.5, BinMul, false), MapplyScalar(a, 0.25, BinMul, false)}, // scalar value
		{MapplyScalar(a, 1.5, BinSub, false), MapplyScalar(a, 1.5, BinSub, true)},   // scalar side
		{Sapply(a, UnaryNeg), Sapply(a, UnaryFloor)},                                // function identity
		{CumRow(a, AggSum), CumCol(a, AggSum)},                                      // op kind
	}
	var talls []*Mat
	for _, p := range pairs {
		talls = append(talls, p[0], p[1])
	}
	if err := e.Materialize(talls, nil); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.CSEUnifications != 0 {
		t.Fatalf("distinct structures unified under full hash collision: cse=%d (stats: %s)",
			ms.CSEUnifications, ms)
	}

	// Bit-compare every output against a CSE-free engine over the same data.
	ref := newCSEEngine(t, Config{DisableCSE: true})
	ra, err := ref.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ref.FromDense(bd)
	if err != nil {
		t.Fatal(err)
	}
	refPairs := [][2]*Mat{
		{Mapply(ra, rb, BinSub), Mapply(rb, ra, BinSub)},
		{MapplyScalar(ra, 0.5, BinMul, false), MapplyScalar(ra, 0.25, BinMul, false)},
		{MapplyScalar(ra, 1.5, BinSub, false), MapplyScalar(ra, 1.5, BinSub, true)},
		{Sapply(ra, UnaryNeg), Sapply(ra, UnaryFloor)},
		{CumRow(ra, AggSum), CumCol(ra, AggSum)},
	}
	for i := range pairs {
		for side := 0; side < 2; side++ {
			got, err := e.ToDense(pairs[i][side])
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.ToDense(refPairs[i][side])
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, pairs[i][side].OpName(), got, want)
		}
	}

	// Positive control: a true duplicate still unifies inside the single
	// collided bucket (the chain compares full keys, not hashes).
	d1, d2 := Sapply(a, UnaryExp), Sapply(a, UnaryExp)
	if err := e.Materialize([]*Mat{d1, d2}, nil); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.CSEUnifications != 1 {
		t.Fatalf("true duplicate did not unify under collision: cse=%d", ms.CSEUnifications)
	}
}

// TestHashCollisionProperty is the randomized flavor: with every key forced
// into one bucket, random pairs of same-shape expressions differing only in a
// scalar must keep distinct values.
func TestHashCollisionProperty(t *testing.T) {
	ad := cseDense(600, 2, 6)
	e := newCSEEngine(t, Config{})
	e.cons.testHash = func(string) uint64 { return 0 }
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		s1 := rng.NormFloat64()
		s2 := s1 + 1 + rng.Float64() // always distinct
		x1 := MapplyScalar(a, s1, BinAdd, false)
		x2 := MapplyScalar(a, s2, BinAdd, false)
		before := e.TotalMaterializeStats()
		if err := e.Materialize([]*Mat{x1, x2}, nil); err != nil {
			t.Fatal(err)
		}
		if d := e.TotalMaterializeStats().Sub(before); d.CSEUnifications != 0 {
			t.Fatalf("trial %d: scalars %v vs %v unified", trial, s1, s2)
		}
		g1, err := e.ToDense(x1)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := e.ToDense(x2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range g1.Data {
			if math.Float64bits(g1.Data[i]) != math.Float64bits(ad.Data[i]+s1) {
				t.Fatalf("trial %d: x1[%d] = %v, want %v", trial, i, g1.Data[i], ad.Data[i]+s1)
			}
			if math.Float64bits(g2.Data[i]) != math.Float64bits(ad.Data[i]+s2) {
				t.Fatalf("trial %d: x2[%d] = %v, want %v", trial, i, g2.Data[i], ad.Data[i]+s2)
			}
		}
	}
}

// TestCancelledPassInsertsNothing: a pass aborted by context cancellation must
// leave the result cache exactly as it was — no partial entries — and the
// same DAG must still materialize cleanly afterwards.
func TestCancelledPassLeavesCacheEmpty(t *testing.T) {
	ad := cseDense(8192, 4, 8)
	e := newCSEEngine(t, Config{Workers: 1})
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	y := Sapply(Mapply(a, a, BinMul), UnarySqrt)
	k := Agg(a, AggSum)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	e.testSchedEvent = func(kind string, p int) {
		if kind != "process" {
			return
		}
		// Cancel at the first partition and stall the worker long enough for
		// the watcher to flag the failure before the next partition starts.
		once.Do(func() {
			cancel()
			time.Sleep(100 * time.Millisecond)
		})
	}
	err = e.MaterializeCtx(ctx, []*Mat{y}, []*Sink{k})
	e.testSchedEvent = nil
	if err == nil {
		t.Fatal("cancelled materialization returned nil error")
	}
	if entries, bytes := e.ResultCacheStats(); entries != 0 || bytes != 0 {
		t.Fatalf("cache holds %d entries / %d bytes after cancelled pass, want empty", entries, bytes)
	}
	if y.Materialized() || k.Done() {
		t.Fatal("targets published despite cancellation")
	}

	// The same nodes must run cleanly on retry, and only then populate the
	// cache.
	if err := e.Materialize([]*Mat{y}, []*Sink{k}); err != nil {
		t.Fatal(err)
	}
	if entries, _ := e.ResultCacheStats(); entries != 2 {
		t.Fatalf("cache entries after clean retry = %d, want 2", entries)
	}
	ref := newCSEEngine(t, Config{DisableCSE: true})
	ra, err := ref.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ToDense(Sapply(Mapply(ra, ra, BinMul), UnarySqrt))
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.ToDense(y)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "retried target", got, want)
}

// TestLeafMutationInvalidatesCache: an in-place write to a leaf must drop
// every cached result built over it, and rebuilding the expression must
// recompute against the new contents.
func TestLeafMutationInvalidatesCache(t *testing.T) {
	ad := cseDense(700, 2, 9)
	e := newCSEEngine(t, Config{})
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Mat { return MapplyScalar(a, 3, BinMul, false) }
	if err := e.Materialize([]*Mat{build()}, nil); err != nil {
		t.Fatal(err)
	}
	if entries, _ := e.ResultCacheStats(); entries == 0 {
		t.Fatal("no cache entry after cold pass")
	}

	if err := e.SetElement(a, 0, 0, 1234.5); err != nil {
		t.Fatal(err)
	}
	if entries, _ := e.ResultCacheStats(); entries != 0 {
		t.Fatalf("cache holds %d entries after leaf mutation, want 0", entries)
	}

	y := build()
	if err := e.Materialize([]*Mat{y}, nil); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.CacheHits != 0 {
		t.Fatalf("post-mutation pass served %d stale cache hits", ms.CacheHits)
	}
	got, err := e.ToDense(y)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 1234.5*3 {
		t.Fatalf("post-mutation result[0,0] = %v, want %v", got.At(0, 0), 1234.5*3)
	}
}

// TestMutationPrivatizesCachedStore: writing into a matrix whose store is
// shared with the result cache must copy-on-write, so cached bits stay exact
// and a later structurally identical expression is correctly served the
// pre-mutation value.
func TestMutationPrivatizesCachedStore(t *testing.T) {
	ad := cseDense(500, 2, 10)
	e := newCSEEngine(t, Config{})
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Mat { return Sapply(a, UnarySquare) }
	y := build()
	if err := e.Materialize([]*Mat{y}, nil); err != nil {
		t.Fatal(err)
	}
	want, err := e.ToDense(y)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate y itself. The leaf a is untouched, so square(a) stays cached —
	// and must still hold the pre-mutation bits.
	if err := e.SetElement(y, 0, 0, -1); err != nil {
		t.Fatal(err)
	}
	yd, err := e.ToDense(y)
	if err != nil {
		t.Fatal(err)
	}
	if yd.At(0, 0) != -1 {
		t.Fatalf("mutated y[0,0] = %v, want -1", yd.At(0, 0))
	}

	y2 := build()
	if err := e.Materialize([]*Mat{y2}, nil); err != nil {
		t.Fatal(err)
	}
	if ms := e.LastMaterializeStats(); ms.CacheHits != 1 {
		t.Fatalf("square(a) not cache-served after unrelated mutation: hits=%d", ms.CacheHits)
	}
	got, err := e.ToDense(y2)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "privatized cache entry", got, want)
}

// TestResultCacheEviction: a byte-budgeted cache must evict LRU entries
// instead of growing without bound.
func TestResultCacheEviction(t *testing.T) {
	// Each result is 512×4×8 = 16 KiB; budget fits at most four.
	e := newCSEEngine(t, Config{ResultCacheBytes: 64 << 10})
	ad := cseDense(512, 4, 11)
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		y := MapplyScalar(a, float64(i), BinAdd, false)
		if err := e.Materialize([]*Mat{y}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if total := e.TotalMaterializeStats(); total.CacheEvictions == 0 {
		t.Fatal("no evictions under a 64 KiB budget after 128 KiB of inserts")
	}
	entries, bytes := e.ResultCacheStats()
	if bytes > 64<<10 {
		t.Fatalf("cache resident bytes %d exceed the 64 KiB budget", bytes)
	}
	if entries == 0 || entries > 4 {
		t.Fatalf("cache entries = %d, want 1..4", entries)
	}
}

// TestConsTableResetFlushesCache: an intern-table reset advances the epoch
// and must flush the result cache (its keys embed ids of the retiring epoch),
// after which passes repopulate it normally.
func TestConsTableResetFlushesCache(t *testing.T) {
	e := newCSEEngine(t, Config{})
	// Shrink the intern budget so the second materialize trips the reset.
	e.cons.maxBytes = 1
	ad := cseDense(400, 2, 12)
	a, err := e.FromDense(ad)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Materialize([]*Mat{Sapply(a, UnaryAbs)}, nil); err != nil {
		t.Fatal(err)
	}
	if entries, _ := e.ResultCacheStats(); entries != 1 {
		t.Fatalf("entries after first pass = %d, want 1", entries)
	}
	epoch0 := e.cons.epochNow()
	if err := e.Materialize([]*Mat{Sapply(a, UnaryNeg)}, nil); err != nil {
		t.Fatal(err)
	}
	if e.cons.epochNow() != epoch0+1 {
		t.Fatalf("intern table did not reset: epoch %d, want %d", e.cons.epochNow(), epoch0+1)
	}
	// The flush dropped the first entry; the second pass inserted its own.
	if entries, _ := e.ResultCacheStats(); entries != 1 {
		t.Fatalf("entries after reset pass = %d, want 1 (fresh epoch only)", entries)
	}
}
