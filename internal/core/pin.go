package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/matrix"
)

// PinnedStore is a retained reference to a materialized matrix's backing
// store. Pinning reuses the result cache's refcounted-store machinery
// (refStore): the pin holds one reference, so the data survives cache
// eviction, session-level Free, and store privatization for as long as the
// pin is alive. Serving front-ends use pins to hand out result handles that
// outlive the FM that produced them.
type PinnedStore struct {
	st       *refStore
	nrow     int64
	ncol     int
	released atomic.Bool
}

// Pin retains m's materialized store and returns a PinnedStore holding one
// reference to it. The matrix must be materialized. The caller must Release
// the pin exactly once; until then the underlying data cannot be freed out
// from under readers, whatever happens to m.
func (e *Engine) Pin(m *Mat) (*PinnedStore, error) {
	// planMu serializes against insertResults' wrap-and-swap of the same
	// store when a pass publishes, so two wrappers are never raced into
	// place.
	e.planMu.Lock()
	defer e.planMu.Unlock()
	st := m.Store()
	if st == nil {
		return nil, fmt.Errorf("core: Pin on virtual matrix %d (materialize first)", m.id)
	}
	rst, ok := st.(*refStore)
	if !ok {
		rst = newRefStore(st)
		m.swapStore(rst)
	}
	rst.retain()
	return &PinnedStore{st: rst, nrow: m.nrow, ncol: m.ncol}, nil
}

// NRow returns the pinned matrix's row count.
func (p *PinnedStore) NRow() int64 { return p.nrow }

// NCol returns the pinned matrix's column count.
func (p *PinnedStore) NCol() int { return p.ncol }

// Bytes returns the pinned data's logical size.
func (p *PinnedStore) Bytes() int64 { return p.nrow * int64(p.ncol) * 8 }

// ReadRows fills dst (row-major (hi-lo)×NCol) with rows [lo, hi) of the
// pinned data, reading each overlapping I/O partition once.
func (p *PinnedStore) ReadRows(lo, hi int64, dst []float64) error {
	if lo < 0 || hi > p.nrow || lo > hi {
		return fmt.Errorf("core: pinned read rows [%d,%d) out of %d", lo, hi, p.nrow)
	}
	if p.released.Load() {
		return fmt.Errorf("core: read on released pin")
	}
	if lo == hi {
		return nil
	}
	if need := (hi - lo) * int64(p.ncol); int64(len(dst)) < need {
		return fmt.Errorf("core: pinned read buffer %d < %d", len(dst), need)
	}
	pr := p.st.PartRows()
	buf := make([]float64, pr*p.ncol)
	for part := int(lo / int64(pr)); int64(part)*int64(pr) < hi; part++ {
		rows := matrix.PartRowsOf(p.nrow, pr, part)
		if err := p.st.ReadPart(part, buf[:rows*p.ncol]); err != nil {
			return err
		}
		start := int64(part) * int64(pr)
		from, to := lo, hi
		if from < start {
			from = start
		}
		if end := start + int64(rows); to > end {
			to = end
		}
		copy(dst[(from-lo)*int64(p.ncol):(to-lo)*int64(p.ncol)],
			buf[(from-start)*int64(p.ncol):(to-start)*int64(p.ncol)])
	}
	return nil
}

// Release drops the pin's store reference. Idempotent; only the first call
// releases.
func (p *PinnedStore) Release() error {
	if !p.released.CompareAndSwap(false, true) {
		return nil
	}
	return p.st.Free()
}
