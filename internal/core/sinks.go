package core

import (
	"fmt"
	"sort"

	"repro/internal/blas"
	"repro/internal/dense"
)

// sinkAcc is one worker's partial state for a sink GenOp. Per §3.3 (g,h,i),
// each thread folds into a local buffer and the engine combines the partials
// once the pass completes.
type sinkAcc struct {
	s     *Sink
	used  bool
	acc   float64             // SinkAgg
	vec   []float64           // SinkAggCol (p) / SinkGroupByRow (k*p) / SinkCrossProd (pa*pb)
	table map[float64]int64   // SinkTable
	byVal map[float64]float64 // SinkGroupByVal
}

func newSinkAcc(s *Sink) *sinkAcc {
	a := &sinkAcc{s: s}
	switch s.kind {
	case SinkAgg:
		a.acc = s.agg.Init
	case SinkAggCol:
		a.vec = make([]float64, s.cols)
		for i := range a.vec {
			a.vec[i] = s.agg.Init
		}
	case SinkGroupByRow:
		a.vec = make([]float64, s.k*s.cols)
		for i := range a.vec {
			a.vec[i] = s.agg.Init
		}
	case SinkCrossProd:
		a.vec = make([]float64, s.rows*s.cols)
		if s.f1 != nil {
			init := aggInitFor(s.f2)
			for i := range a.vec {
				a.vec[i] = init
			}
		}
	case SinkTable:
		a.table = make(map[float64]int64)
	case SinkGroupByVal:
		a.byVal = make(map[float64]float64)
	}
	return a
}

// accumulate folds one Pcache chunk into the worker-local partial. aSlot and
// bSlot index the sink's inputs in the DAG plan.
func (a *sinkAcc) accumulate(w *worker, aSlot, bSlot int, pi partInfo, r0, cr int) {
	s := a.s
	a.used = true
	switch s.kind {
	case SinkAgg:
		in := w.use(aSlot, pi, r0, cr)
		a.acc = s.agg.StepV(a.acc, in[:cr*s.a.ncol])
		w.done(aSlot)

	case SinkAggCol:
		in := w.use(aSlot, pi, r0, cr)
		nc := s.a.ncol
		if s.agg == AggSum {
			for r := 0; r < cr; r++ {
				row := in[r*nc : (r+1)*nc]
				for j, x := range row {
					a.vec[j] += x
				}
			}
		} else {
			f := s.agg
			for r := 0; r < cr; r++ {
				row := in[r*nc : (r+1)*nc]
				for j, x := range row {
					a.vec[j] = f.Step(a.vec[j], x)
				}
			}
		}
		w.done(aSlot)

	case SinkGroupByRow:
		in := w.use(aSlot, pi, r0, cr)
		lab := w.use(bSlot, pi, r0, cr)
		nc := s.a.ncol
		if s.agg == AggSum {
			for r := 0; r < cr; r++ {
				g := int(lab[r])
				if g < 0 || g >= s.k {
					panic(fmt.Sprintf("core: groupby.row label %d out of range [0,%d)", g, s.k))
				}
				row := in[r*nc : (r+1)*nc]
				grow := a.vec[g*nc : (g+1)*nc]
				for j, x := range row {
					grow[j] += x
				}
			}
		} else {
			f := s.agg
			for r := 0; r < cr; r++ {
				g := int(lab[r])
				if g < 0 || g >= s.k {
					panic(fmt.Sprintf("core: groupby.row label %d out of range [0,%d)", g, s.k))
				}
				row := in[r*nc : (r+1)*nc]
				grow := a.vec[g*nc : (g+1)*nc]
				for j, x := range row {
					grow[j] = f.Step(grow[j], x)
				}
			}
		}
		w.done(aSlot)
		w.done(bSlot)

	case SinkCrossProd:
		ain := w.use(aSlot, pi, r0, cr)
		bin := w.use(bSlot, pi, r0, cr)
		pa, pb := s.rows, s.cols
		if s.f1 == nil {
			if s.a == s.b {
				// Symmetric Gramian t(A)%*%A: rank-k update on the upper
				// triangle only (BLAS dsyrk — what R's crossprod calls);
				// mirrored once in finish.
				blas.Syrk(cr, pa, ain, pa, a.vec, pa)
			} else {
				blas.GemmTA(cr, pb, pa, ain, pa, bin, pb, a.vec, pb)
			}
		} else {
			f1, f2 := s.f1.F, s.f2.F
			for r := 0; r < cr; r++ {
				arow := ain[r*pa : (r+1)*pa]
				brow := bin[r*pb : (r+1)*pb]
				for i, av := range arow {
					crow := a.vec[i*pb : (i+1)*pb]
					for j, bv := range brow {
						crow[j] = f2(f1(av, bv), crow[j])
					}
				}
			}
		}
		w.done(aSlot)
		w.done(bSlot)

	case SinkTable:
		in := w.use(aSlot, pi, r0, cr)
		for _, v := range in[:cr*s.a.ncol] {
			a.table[v]++
		}
		w.done(aSlot)

	case SinkGroupByVal:
		in := w.use(aSlot, pi, r0, cr)
		f := s.agg
		for _, v := range in[:cr*s.a.ncol] {
			acc, ok := a.byVal[v]
			if !ok {
				acc = f.Init
			}
			a.byVal[v] = f.Step(acc, v)
		}
		w.done(aSlot)
	}
}

// merge combines another worker's partial into this one.
func (a *sinkAcc) merge(o *sinkAcc) {
	if !o.used {
		return
	}
	s := a.s
	switch s.kind {
	case SinkAgg:
		if a.used {
			a.acc = s.agg.Combine(a.acc, o.acc)
		} else {
			a.acc = o.acc
		}
	case SinkAggCol, SinkGroupByRow:
		if a.used {
			for i := range a.vec {
				a.vec[i] = s.agg.Combine(a.vec[i], o.vec[i])
			}
		} else {
			copy(a.vec, o.vec)
		}
	case SinkCrossProd:
		if s.f1 == nil {
			for i, v := range o.vec {
				a.vec[i] += v
			}
		} else {
			f2 := s.f2.F
			for i, v := range o.vec {
				if a.used {
					a.vec[i] = f2(v, a.vec[i])
				} else {
					a.vec[i] = v
				}
			}
		}
	case SinkTable:
		for k, c := range o.table {
			a.table[k] += c
		}
	case SinkGroupByVal:
		f := s.agg
		for k, v := range o.byVal {
			if acc, ok := a.byVal[k]; ok {
				a.byVal[k] = f.Combine(acc, v)
			} else {
				a.byVal[k] = v
			}
		}
	}
	a.used = true
}

// finish publishes the combined result into the sink node.
func (a *sinkAcc) finish(s *Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.kind {
	case SinkAgg:
		s.result = dense.FromSlice(1, 1, []float64{a.acc})
	case SinkAggCol:
		s.result = dense.FromSlice(1, s.cols, a.vec)
	case SinkGroupByRow:
		s.result = dense.FromSlice(s.k, s.cols, a.vec)
	case SinkCrossProd:
		if s.f1 == nil && s.a == s.b {
			blas.SymmetrizeLower(s.rows, a.vec, s.rows)
		}
		s.result = dense.FromSlice(s.rows, s.cols, a.vec)
	case SinkTable:
		keys := make([]float64, 0, len(a.table))
		for k := range a.table {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		counts := make([]int64, len(keys))
		for i, k := range keys {
			counts[i] = a.table[k]
		}
		s.keys, s.counts = keys, counts
		s.result = dense.FromSlice(1, len(keys), append([]float64(nil), keys...))
	case SinkGroupByVal:
		keys := make([]float64, 0, len(a.byVal))
		for k := range a.byVal {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		folds := make([]float64, len(keys))
		for i, k := range keys {
			folds[i] = a.byVal[k]
		}
		s.keys, s.folds = keys, folds
		s.result = dense.FromSlice(1, len(keys), append([]float64(nil), folds...))
	}
	// When no rows were folded the result stays at the fold identity,
	// matching R's empty reductions (sum(c()) == 0, min(c()) == Inf).
	if s.hasPost && s.result != nil {
		// Keep the raw reduction for the result cache (its key describes the
		// raw computation), then publish the affine transform the optimizer
		// folded out of the input graph.
		s.raw = s.result.Clone()
		for i, v := range s.result.Data {
			s.result.Data[i] = s.postMul*v + s.postAdd
		}
	}
	s.done = true
}

// payload snapshots a finished sink's published result for the result cache
// (nil if the sink has not finished). The snapshot is a clone: the caller's
// dense stays private to whoever holds the sink.
func (s *Sink) payload() *sinkPayload {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return nil
	}
	p := &sinkPayload{keys: s.keys, counts: s.counts, folds: s.folds, result: s.result}
	return p.clone()
}

// rawPayload snapshots the pre-transform result for the result cache. For
// sinks without a folded publish transform this is the published result; for
// folded sinks it is the raw reduction stashed by finish, so the cache entry
// matches the structural key (which excludes the transform coefficients).
func (s *Sink) rawPayload() *sinkPayload {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return nil
	}
	res := s.result
	if s.hasPost {
		res = s.raw
	}
	p := &sinkPayload{keys: s.keys, counts: s.counts, folds: s.folds, result: res}
	return p.clone()
}

// applyPost applies this sink's folded publish transform to a raw payload in
// place (a no-op when no fold happened), returning pl for chaining. Callers
// pass a clone they own — the cache-hit and duplicate-sink serve paths.
func (s *Sink) applyPost(pl *sinkPayload) *sinkPayload {
	if pl == nil || !s.hasPost || pl.result == nil {
		return pl
	}
	for i, v := range pl.result.Data {
		pl.result.Data[i] = s.postMul*v + s.postAdd
	}
	return pl
}

// publishPayload installs a payload snapshot as this sink's result — the
// serve path for cache hits and within-pass duplicate unification. The sink
// takes ownership of pl (callers pass a clone).
func (s *Sink) publishPayload(pl *sinkPayload) {
	if pl == nil {
		return
	}
	s.mu.Lock()
	s.result = pl.result
	s.keys = pl.keys
	s.counts = pl.counts
	s.folds = pl.folds
	s.done = true
	s.mu.Unlock()
}
