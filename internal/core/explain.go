package core

import (
	"fmt"
	"strings"
)

// Explain renders the DAG rooted at a virtual matrix as an indented tree:
// one line per node with its GenOp, shape, and materialization state. This
// is the textual form of the paper's Figure 6(a).
func Explain(roots ...*Mat) string {
	var b strings.Builder
	seen := map[uint64]bool{}
	for _, m := range roots {
		explainMat(&b, m, 0, seen)
	}
	return b.String()
}

// ExplainSink renders a sink GenOp and the DAG feeding it.
func ExplainSink(s *Sink) string {
	var b strings.Builder
	state := "virtual"
	if s.Done() {
		state = "materialized"
	}
	fmt.Fprintf(&b, "%s → %dx%d sink [%s]\n", s.kind, s.rows, s.cols, state)
	seen := map[uint64]bool{}
	explainMat(&b, s.a, 1, seen)
	if s.b != nil {
		explainMat(&b, s.b, 1, seen)
	}
	return b.String()
}

func explainMat(b *strings.Builder, m *Mat, depth int, seen map[uint64]bool) {
	indent := strings.Repeat("  ", depth)
	if m == nil {
		return
	}
	if seen[m.id] {
		fmt.Fprintf(b, "%s#%d (shared, see above)\n", indent, m.id)
		return
	}
	seen[m.id] = true
	if m.Materialized() {
		fmt.Fprintf(b, "%s#%d leaf %dx%d [%s]\n", indent, m.id, m.nrow, m.ncol, m.Store().Kind())
		return
	}
	detail := ""
	switch m.kind {
	case opConst:
		detail = fmt.Sprintf(" value=%g", m.vec[0])
	case opSapply:
		detail = " f=" + m.un.Name
	case opMapplyMM, opMapplyColVec:
		detail = " f=" + m.bin.Name
	case opMapplyScalar:
		detail = fmt.Sprintf(" f=%s s=%g", m.bin.Name, m.scalar)
	case opMapplyRowVec:
		detail = fmt.Sprintf(" f=%s vec[%d]", m.bin.Name, len(m.vec))
	case opInnerProd:
		if m.f1 == nil {
			detail = " kernel=BLAS"
		} else {
			detail = fmt.Sprintf(" f1=%s f2=%s", m.f1.Name, m.f2.Name)
		}
	case opAggRow:
		switch m.arg {
		case argMin:
			detail = " f=which.min"
		case argMax:
			detail = " f=which.max"
		default:
			detail = " f=" + m.agg.Name
		}
	case opGroupByCol:
		detail = fmt.Sprintf(" f=%s k=%d", m.agg.Name, m.groupK)
	case opCumRow, opCumCol:
		detail = " f=" + m.agg.Name
	case opCols, opSetCols:
		detail = fmt.Sprintf(" cols=%v", m.cols)
	}
	fmt.Fprintf(b, "%s#%d %s %dx%d [virtual]%s\n", indent, m.id, m.kind, m.nrow, m.ncol, detail)
	explainMat(b, m.a, depth+1, seen)
	explainMat(b, m.b, depth+1, seen)
}
