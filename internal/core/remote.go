package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dense"
	"repro/internal/matrix"
)

// RemoteExecutor is the execution seam a sharded coordinator plugs into the
// engine. When set, the engine still runs its whole plan phase locally —
// algebraic rewriting, result-cache serving, within-pass CSE unification, DAG
// construction and validation — and hands only the residual execution to the
// executor: the post-plan tall targets and sinks of one materialization. The
// executor must attach a store to every tall in the RemoteDAG (AttachTall)
// and publish every sink's combined raw reduction (Sink.PublishRaw); the
// publication phase (result-cache inserts, duplicate-sink payload serving,
// rewrite store forwarding) then proceeds exactly as for local execution.
type RemoteExecutor interface {
	RunDAG(ctx context.Context, d *RemoteDAG, ms *MaterializeStats) error
}

// RemoteDAG is one materialization's residual execution plan as handed to a
// RemoteExecutor: the tall targets still to compute (cache-flagged interior
// nodes included), the sinks still to reduce, the cum.col nodes that need
// cross-partition carries, and the shared partition dimension.
type RemoteDAG struct {
	NRow  int64
	Talls []*Mat
	Sinks []*Sink
	Cums  []*Mat
	// Owner labels the session the pass runs for (PassOptions.Owner).
	Owner string
	// Canon maps a node to its execution representative: when the plan's CSE
	// unified structurally identical duplicates onto one slot, every
	// duplicate resolves to the node that actually executes. EncodeProgram
	// encodes through it so the shipped program matches the plan — without
	// it a unified cum.col duplicate would re-appear as a second node that
	// no carry ever seeds. Nil means identity.
	Canon func(m *Mat) *Mat
}

// AttachTall installs a store on tall target i — the remote path's equivalent
// of the local execution attaching freshly written stores. It reports false
// (and the caller keeps ownership of st) if the node was materialized
// concurrently by another pass.
func (d *RemoteDAG) AttachTall(i int, st matrix.Store) bool {
	return d.Talls[i].attachStore(st)
}

// SetRemoteExecutor installs (or, with nil, removes) the engine's remote
// execution seam. Call before submitting passes; the engine does not
// synchronize the swap against in-flight materializations.
func (e *Engine) SetRemoteExecutor(r RemoteExecutor) { e.remote = r }

// ContentVersion exposes the node's in-place-mutation version for leaf
// identity across a transport: a (ID, ContentVersion) pair names one
// immutable snapshot of a materialized matrix.
func (m *Mat) ContentVersion() uint64 { return m.contentVer() }

// UnwrapStore strips the engine's cache-sharing wrapper from a materialized
// store, exposing the backend store (a sharded coordinator uses this to
// recognize leaves whose data already lives on its workers).
func UnwrapStore(st matrix.Store) matrix.Store { return unwrapStore(st) }

// SinkPartial is one worker's raw (pre-publish-transform) sink reduction in
// wire-friendly form: a dense payload for the fixed-shape kinds, key/count or
// key/fold pairs for the data-dependent kinds. Partials combine across
// workers with the sink's own Combine semantics (CombinePartials) — the
// cross-shard form of the per-thread partial merging of §3.3 (g,h,i).
type SinkPartial struct {
	Used   bool
	R, C   int
	Data   []float64
	Keys   []float64
	Counts []int64
	Folds  []float64
}

// RawPartial snapshots a finished sink's raw reduction as a SinkPartial (nil
// if the sink has not finished). Worker-side sinks are built without a folded
// publish transform, so the raw reduction is the published result.
func (s *Sink) RawPartial() *SinkPartial {
	pl := s.rawPayload()
	if pl == nil {
		return nil
	}
	sp := &SinkPartial{Used: true, Keys: pl.keys, Counts: pl.counts, Folds: pl.folds}
	if pl.result != nil {
		sp.R, sp.C, sp.Data = pl.result.R, pl.result.C, pl.result.Data
	}
	return sp
}

// CombinePartials merges per-shard raw partials in shard order, mirroring
// sinkAcc.merge exactly: AggFunc.Combine for the fold kinds, elementwise
// addition for the BLAS crossprod (per-shard Syrk partials arrive already
// symmetrized, and symmetrization commutes with addition), f2 for the
// generalized crossprod, key-wise count addition for table, and key-wise
// Combine for groupby-by-value. Unused partials (zero-row shards) are
// skipped, matching the local merge's used-flag handling.
func (s *Sink) CombinePartials(parts []*SinkPartial) (*SinkPartial, error) {
	vecLen := 0
	switch s.kind {
	case SinkAggCol:
		vecLen = s.cols
	case SinkGroupByRow:
		vecLen = s.k * s.cols
	case SinkCrossProd:
		vecLen = s.rows * s.cols
	}
	acc := &SinkPartial{R: 1, C: 1}
	switch s.kind {
	case SinkAgg:
		acc.Data = []float64{s.agg.Init}
	case SinkAggCol, SinkGroupByRow, SinkCrossProd:
		acc.R, acc.C = s.rows, s.cols
		if s.kind == SinkGroupByRow {
			acc.R = s.k
		}
		acc.Data = make([]float64, vecLen)
		if s.kind != SinkCrossProd {
			for i := range acc.Data {
				acc.Data[i] = s.agg.Init
			}
		} else if s.f1 != nil {
			init := aggInitFor(s.f2)
			for i := range acc.Data {
				acc.Data[i] = init
			}
		}
	}
	table := make(map[float64]int64)
	byVal := make(map[float64]float64)
	for wi, p := range parts {
		if p == nil || !p.Used {
			continue
		}
		switch s.kind {
		case SinkAgg:
			if len(p.Data) != 1 {
				return nil, fmt.Errorf("core: shard %d agg partial has %d values, want 1", wi, len(p.Data))
			}
			if acc.Used {
				acc.Data[0] = s.agg.Combine(acc.Data[0], p.Data[0])
			} else {
				acc.Data[0] = p.Data[0]
			}
		case SinkAggCol, SinkGroupByRow:
			if len(p.Data) != vecLen {
				return nil, fmt.Errorf("core: shard %d %s partial has %d values, want %d", wi, s.kind, len(p.Data), vecLen)
			}
			if acc.Used {
				for i, v := range p.Data {
					acc.Data[i] = s.agg.Combine(acc.Data[i], v)
				}
			} else {
				copy(acc.Data, p.Data)
			}
		case SinkCrossProd:
			if len(p.Data) != vecLen {
				return nil, fmt.Errorf("core: shard %d crossprod partial has %d values, want %d", wi, len(p.Data), vecLen)
			}
			if s.f1 == nil {
				for i, v := range p.Data {
					acc.Data[i] += v
				}
			} else {
				f2 := s.f2.F
				for i, v := range p.Data {
					if acc.Used {
						acc.Data[i] = f2(v, acc.Data[i])
					} else {
						acc.Data[i] = v
					}
				}
			}
		case SinkTable:
			if len(p.Keys) != len(p.Counts) {
				return nil, fmt.Errorf("core: shard %d table partial keys/counts mismatch", wi)
			}
			for i, k := range p.Keys {
				table[k] += p.Counts[i]
			}
		case SinkGroupByVal:
			if len(p.Keys) != len(p.Folds) {
				return nil, fmt.Errorf("core: shard %d groupby partial keys/folds mismatch", wi)
			}
			for i, k := range p.Keys {
				if old, ok := byVal[k]; ok {
					byVal[k] = s.agg.Combine(old, p.Folds[i])
				} else {
					byVal[k] = p.Folds[i]
				}
			}
		}
		acc.Used = true
	}
	switch s.kind {
	case SinkTable:
		keys := sortedKeys(table)
		acc.Keys = keys
		acc.Counts = make([]int64, len(keys))
		for i, k := range keys {
			acc.Counts[i] = table[k]
		}
	case SinkGroupByVal:
		keys := sortedKeysF(byVal)
		acc.Keys = keys
		acc.Folds = make([]float64, len(keys))
		for i, k := range keys {
			acc.Folds[i] = byVal[k]
		}
	}
	return acc, nil
}

// PublishRaw installs a combined raw partial as this sink's result, applying
// the folded publish transform once (the rewrite pass runs on the coordinator
// only; per-shard application of the affine transform would fold it N times).
// The sink takes ownership of p. Crossprod partials are already symmetric
// (workers symmetrize Syrk partials before snapshotting), so no extra
// symmetrization happens here.
func (s *Sink) PublishRaw(p *SinkPartial) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.kind {
	case SinkAgg:
		s.result = dense.FromSlice(1, 1, p.Data)
	case SinkAggCol:
		s.result = dense.FromSlice(1, s.cols, p.Data)
	case SinkGroupByRow:
		s.result = dense.FromSlice(s.k, s.cols, p.Data)
	case SinkCrossProd:
		s.result = dense.FromSlice(s.rows, s.cols, p.Data)
	case SinkTable:
		s.keys, s.counts = p.Keys, p.Counts
		s.result = dense.FromSlice(1, len(p.Keys), append([]float64(nil), p.Keys...))
	case SinkGroupByVal:
		s.keys, s.folds = p.Keys, p.Folds
		s.result = dense.FromSlice(1, len(p.Keys), append([]float64(nil), p.Folds...))
	}
	if s.hasPost && s.result != nil {
		s.raw = s.result.Clone()
		for i, v := range s.result.Data {
			s.result.Data[i] = s.postMul*v + s.postAdd
		}
	}
	s.done = true
}

func sortedKeys(m map[float64]int64) []float64 {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

func sortedKeysF(m map[float64]float64) []float64 {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}
