package repl

import (
	"fmt"
	"math"
	"strings"

	flashr "repro"
	"repro/internal/dense"
)

// Value is a REPL value: a scalar, a string, or a FlashR matrix.
type Value struct {
	Num    float64
	Str    string
	Mat    *flashr.FM
	isNum  bool
	isStr  bool
	isNull bool
}

func numVal(v float64) Value    { return Value{Num: v, isNum: true} }
func strVal(s string) Value     { return Value{Str: s, isStr: true} }
func matVal(m *flashr.FM) Value { return Value{Mat: m} }
func nullVal() Value            { return Value{isNull: true} }

// IsMatrix reports whether the value is a FlashR matrix.
func (v Value) IsMatrix() bool { return v.Mat != nil }

// IsNumber reports whether the value is a scalar.
func (v Value) IsNumber() bool { return v.isNum }

// IsNull reports a missing value (blank statements).
func (v Value) IsNull() bool { return v.isNull }

// Env is an interpreter session: a variable environment over a flashr
// Session.
type Env struct {
	S    *flashr.Session
	vars map[string]Value
	// lazyScalars makes whole-matrix reductions (sum, mean, agg, …) return
	// lazy 1×1 matrices instead of forcing them to scalars inside Eval.
	// Serving front-ends set this so the sinks of a whole request batch
	// stay pending until one shared Flush materializes them together;
	// Format still renders the forced value as a scalar.
	lazyScalars bool
}

// NewEnv builds an interpreter over the given session.
func NewEnv(s *flashr.Session) *Env {
	return &Env{S: s, vars: map[string]Value{}}
}

// SetLazyScalars selects deferred reduction semantics: when on, whole-matrix
// reductions evaluate to pending 1×1 sinks that materialize on the session's
// next Flush (or when formatted) instead of forcing a pass per reduction.
func (e *Env) SetLazyScalars(on bool) { e.lazyScalars = on }

// Vars lists defined variable names.
func (e *Env) Vars() []string {
	out := make([]string, 0, len(e.vars))
	for k := range e.vars {
		out = append(out, k)
	}
	return out
}

// Eval parses and evaluates one statement.
func (e *Env) Eval(src string) (Value, error) {
	v, _, err := e.EvalStmt(src)
	return v, err
}

// EvalStmt parses and evaluates one statement, additionally reporting
// whether the statement's value would print at an R prompt (assignments and
// blank statements evaluate to a value but do not print). Batch servers use
// this to avoid forcing — and paying materialization passes for — values the
// client never asked to see.
func (e *Env) EvalStmt(src string) (Value, bool, error) {
	n, err := Parse(src)
	if err != nil {
		return Value{}, false, err
	}
	if n == nil {
		return nullVal(), false, nil
	}
	v, err := e.evalNode(n)
	if err != nil {
		return Value{}, false, err
	}
	_, assigned := n.(*assignNode)
	return v, !assigned && !v.IsNull(), nil
}

func (e *Env) evalNode(n node) (v Value, err error) {
	defer func() {
		// The flashr API panics on shape/type misuse (like R's stop());
		// surface those as REPL errors instead of crashing the shell. The
		// panic value is a typed *flashr.Error — keep it as the error value
		// (not just its rendering) so callers can errors.As it back out.
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("%v", r)
			}
		}
	}()
	return e.eval(n)
}

func (e *Env) eval(n node) (Value, error) {
	switch t := n.(type) {
	case *numNode:
		return numVal(t.v), nil
	case *strNode:
		return strVal(t.v), nil
	case *identNode:
		if v, ok := e.vars[t.name]; ok {
			return v, nil
		}
		return Value{}, fmt.Errorf("object '%s' not found", t.name)
	case *assignNode:
		v, err := e.eval(t.rhs)
		if err != nil {
			return Value{}, err
		}
		e.vars[t.name] = v
		return v, nil
	case *unNode:
		x, err := e.eval(t.x)
		if err != nil {
			return Value{}, err
		}
		switch t.op {
		case "-":
			if x.isNum {
				return numVal(-x.Num), nil
			}
			return matVal(flashr.Neg(x.Mat)), nil
		case "!":
			if x.isNum {
				if x.Num == 0 {
					return numVal(1), nil
				}
				return numVal(0), nil
			}
			return matVal(flashr.Not(x.Mat)), nil
		}
		return Value{}, fmt.Errorf("unary %q unsupported", t.op)
	case *binNode:
		return e.evalBin(t)
	case *callNode:
		return e.evalCall(t)
	case *indexNode:
		return e.evalIndex(t)
	}
	return Value{}, fmt.Errorf("unhandled syntax")
}

func (e *Env) evalBin(t *binNode) (Value, error) {
	l, err := e.eval(t.l)
	if err != nil {
		return Value{}, err
	}
	r, err := e.eval(t.r)
	if err != nil {
		return Value{}, err
	}
	if t.op == "%*%" {
		if !l.IsMatrix() || !r.IsMatrix() {
			return Value{}, fmt.Errorf("%%*%% needs two matrices")
		}
		return matVal(flashr.MatMul(l.Mat, r.Mat)), nil
	}
	// Scalar-scalar arithmetic stays scalar.
	if l.isNum && r.isNum {
		v, err := scalarBin(t.op, l.Num, r.Num)
		if err != nil {
			return Value{}, err
		}
		return numVal(v), nil
	}
	lo, ro := operand(l), operand(r)
	var out *flashr.FM
	switch t.op {
	case "+":
		out = flashr.Add(lo, ro)
	case "-":
		out = flashr.Sub(lo, ro)
	case "*":
		out = flashr.Mul(lo, ro)
	case "/":
		out = flashr.Div(lo, ro)
	case "^":
		out = flashr.Pow(lo, ro)
	case "%%":
		out = flashr.Mod(lo, ro)
	case "==":
		out = flashr.Eq(lo, ro)
	case "!=":
		out = flashr.Ne(lo, ro)
	case "<":
		out = flashr.Lt(lo, ro)
	case "<=":
		out = flashr.Le(lo, ro)
	case ">":
		out = flashr.Gt(lo, ro)
	case ">=":
		out = flashr.Ge(lo, ro)
	case "&", "&&":
		out = flashr.And(lo, ro)
	case "|", "||":
		out = flashr.Or(lo, ro)
	default:
		return Value{}, fmt.Errorf("operator %q unsupported", t.op)
	}
	return matVal(out), nil
}

func scalarBin(op string, a, b float64) (float64, error) {
	switch op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		return a / b, nil
	case "%%":
		return a - b*floor(a/b), nil
	case "^":
		return pow(a, b), nil
	case "==":
		return b2f(a == b), nil
	case "!=":
		return b2f(a != b), nil
	case "<":
		return b2f(a < b), nil
	case "<=":
		return b2f(a <= b), nil
	case ">":
		return b2f(a > b), nil
	case ">=":
		return b2f(a >= b), nil
	case "&", "&&":
		return b2f(a != 0 && b != 0), nil
	case "|", "||":
		return b2f(a != 0 || b != 0), nil
	}
	return 0, fmt.Errorf("operator %q unsupported on scalars", op)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func operand(v Value) any {
	if v.IsMatrix() {
		return v.Mat
	}
	return v.Num
}

// evalIndex handles x[rows, cols]; only column selection and single-element
// access are supported (matching the GetCols/Element surface).
func (e *Env) evalIndex(t *indexNode) (Value, error) {
	xv, err := e.eval(t.x)
	if err != nil {
		return Value{}, err
	}
	if !xv.IsMatrix() {
		return Value{}, fmt.Errorf("indexing a non-matrix")
	}
	if t.rows != nil && t.cols != nil {
		rv, err := e.eval(t.rows)
		if err != nil {
			return Value{}, err
		}
		cv, err := e.eval(t.cols)
		if err != nil {
			return Value{}, err
		}
		if !rv.isNum || !cv.isNum {
			return Value{}, fmt.Errorf("element access needs scalar indices")
		}
		// 1-based, like R.
		val, err := xv.Mat.Element(int64(rv.Num)-1, int64(cv.Num)-1)
		if err != nil {
			return Value{}, err
		}
		return numVal(val), nil
	}
	if t.cols != nil {
		cv, err := e.eval(t.cols)
		if err != nil {
			return Value{}, err
		}
		if !cv.isNum {
			return Value{}, fmt.Errorf("column index must be scalar")
		}
		return matVal(flashr.GetCol(xv.Mat, int(cv.Num)-1)), nil
	}
	if t.rows != nil {
		rv, err := e.eval(t.rows)
		if err != nil {
			return Value{}, err
		}
		if !rv.isNum {
			return Value{}, fmt.Errorf("row index must be scalar")
		}
		d, err := flashr.GetRows(xv.Mat, []int64{int64(rv.Num) - 1})
		if err != nil {
			return Value{}, err
		}
		return matVal(xv.Mat.Session().Small(d)), nil
	}
	return xv, nil
}

// Format renders a value for the prompt: scalars directly, small matrices
// fully, large matrices as a summary plus a corner preview.
func (e *Env) Format(v Value) (string, error) {
	switch {
	case v.isNull:
		return "", nil
	case v.isNum:
		return formatScalar(v.Num), nil
	case e.lazyScalars && v.Mat != nil && v.Mat.Length() == 1:
		// A deferred reduction: force it (served from the already-flushed
		// batch pass when one ran) and render it the way the eager path
		// would have.
		f, err := v.Mat.Float()
		if err != nil {
			return "", err
		}
		return formatScalar(f), nil
	case v.isStr:
		if strings.Contains(v.Str, "\n") {
			return strings.TrimRight(v.Str, "\n"), nil
		}
		return fmt.Sprintf("[1] %q", v.Str), nil
	case v.Mat != nil:
		return formatMatrix(v.Mat)
	}
	return "NULL", nil
}

// formatScalar renders a scalar the way R's print does. Both the eager path
// (Value.Num) and the deferred-reduction path (1×1 lazy sink) go through
// here, so non-finite values print identically whichever path produced them:
// R prints Inf, not Go's %g "+Inf".
func formatScalar(f float64) string {
	switch {
	case math.IsNaN(f):
		return "[1] NaN"
	case math.IsInf(f, 1):
		return "[1] Inf"
	case math.IsInf(f, -1):
		return "[1] -Inf"
	}
	return fmt.Sprintf("[1] %g", f)
}

func formatMatrix(m *flashr.FM) (string, error) {
	r, c := m.Dim()
	if r*c <= 64 {
		d, err := m.AsDense()
		if err != nil {
			return "", err
		}
		return renderDense(d), nil
	}
	head, err := flashr.Head(m, 4)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	virt := ""
	if m.IsVirtual() {
		virt = " (virtual)"
	}
	fmt.Fprintf(&b, "FlashR matrix %d x %d%s, showing first rows:\n", r, c, virt)
	b.WriteString(renderDense(head))
	return b.String(), nil
}

func renderDense(d *dense.Dense) string {
	var b strings.Builder
	cols := d.C
	if cols > 8 {
		cols = 8
	}
	for i := 0; i < d.R; i++ {
		fmt.Fprintf(&b, "[%d,]", i+1)
		for j := 0; j < cols; j++ {
			fmt.Fprintf(&b, " %10.4g", d.At(i, j))
		}
		if cols < d.C {
			b.WriteString(" …")
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

func pow(a, b float64) float64 { return mathPow(a, b) }

func floor(v float64) float64 { return mathFloor(v) }
