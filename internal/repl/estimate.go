package repl

// Static admission estimation. FlashR's premise (§3.1) is that every matrix
// shape is known the moment the expression is built — before any data moves.
// The serving layer exploits that: a program's result and working-set bytes
// can be bounded right after parsing, so over-budget programs are rejected
// with a typed error before the engine runs a single materialization pass.
//
// The estimator walks the parsed AST mirroring evalCall's shape semantics
// and propagating constant scalars (literals, scalar variables, nrow/ncol/
// length of known matrices) so creation calls like runif.matrix(n, p) have
// known dimensions. Anything it cannot bound statically — data-dependent
// shapes (table, unique, load.dense), unknown identifiers, non-constant
// dimensions — makes the whole estimate unavailable rather than wrong: the
// caller falls back to admitting the program without a byte bound.

// Estimate bounds a program's byte footprint from statically known shapes.
type Estimate struct {
	// ResultBytes is the total size of printable matrix-valued results
	// (those the v2 surface would pin behind result handles). Scalars,
	// strings, and 1×1 reductions render as text and count zero.
	ResultBytes int64
	// WorkBytes sums the logical size of every matrix the program
	// constructs — an upper bound on the working set (lazy fusion streams
	// most intermediates, so the true footprint is usually far smaller).
	WorkBytes int64
	// Stmts is the number of parsed non-blank statements.
	Stmts int
}

// shape kinds in the estimator's lattice.
const (
	kScalar = iota // numeric scalar (value in v when known)
	kString
	kNull
	kMatrix // r×c matrix
)

type eshape struct {
	kind  int
	r, c  int64
	known bool // scalar constant with value v
	v     float64
}

func scalarShape() eshape         { return eshape{kind: kScalar} }
func constShape(v float64) eshape { return eshape{kind: kScalar, known: true, v: v} }
func matShape(r, c int64) eshape  { return eshape{kind: kMatrix, r: r, c: c} }
func (s eshape) elems() int64     { return s.r * s.c }
func (s eshape) isMatrix() bool   { return s.kind == kMatrix }
func (s eshape) constInt() (int64, bool) {
	if s.kind == kScalar && s.known {
		return int64(s.v), true
	}
	return 0, false
}

type estimator struct {
	vars map[string]eshape
	est  Estimate
	ok   bool
}

// EstimateProgram bounds the byte footprint of a multi-statement program
// against the environment's current variable bindings. The second result is
// false when any statement's shape cannot be determined statically; the
// estimate is then meaningless and admission must fall back to shapeless
// limits.
func (e *Env) EstimateProgram(stmts []string) (Estimate, bool) {
	w := &estimator{vars: make(map[string]eshape, len(e.vars)), ok: true}
	for name, v := range e.vars {
		switch {
		case v.isNum:
			w.vars[name] = constShape(v.Num)
		case v.isStr:
			w.vars[name] = eshape{kind: kString}
		case v.Mat != nil:
			r, c := v.Mat.Dim()
			w.vars[name] = matShape(r, c)
		default:
			w.vars[name] = eshape{kind: kNull}
		}
	}
	for _, src := range stmts {
		n, err := Parse(src)
		if err != nil || n == nil {
			if err != nil {
				return Estimate{}, false
			}
			continue // blank/comment line
		}
		w.est.Stmts++
		if an, isAssign := n.(*assignNode); isAssign {
			s := w.walk(an.rhs)
			if !w.ok {
				return Estimate{}, false
			}
			w.vars[an.name] = s
			continue // assignments print nothing
		}
		s := w.walk(n)
		if !w.ok {
			return Estimate{}, false
		}
		// Matrix results larger than 1×1 are handed out as pinned result
		// handles on the v2 surface (1×1 lazy reductions render as text).
		if s.isMatrix() && s.elems() > 1 {
			w.est.ResultBytes += s.elems() * 8
		}
	}
	return w.est, true
}

func (w *estimator) fail() eshape {
	w.ok = false
	return eshape{kind: kNull}
}

// created records a matrix the program constructs toward the working-set
// bound and returns its shape.
func (w *estimator) created(r, c int64) eshape {
	w.est.WorkBytes += r * c * 8
	return matShape(r, c)
}

func (w *estimator) walk(n node) eshape {
	if !w.ok {
		return eshape{kind: kNull}
	}
	switch t := n.(type) {
	case *numNode:
		return constShape(t.v)
	case *strNode:
		return eshape{kind: kString}
	case *identNode:
		s, ok := w.vars[t.name]
		if !ok {
			return w.fail()
		}
		return s
	case *assignNode:
		// Nested assignment (rhs of another statement) — evaluate and bind.
		s := w.walk(t.rhs)
		w.vars[t.name] = s
		return s
	case *unNode:
		s := w.walk(t.x)
		if !w.ok {
			return s
		}
		if s.kind == kScalar {
			if t.op == "-" && s.known {
				return constShape(-s.v)
			}
			return scalarShape()
		}
		if s.isMatrix() {
			return w.created(s.r, s.c)
		}
		return w.fail()
	case *binNode:
		return w.walkBin(t)
	case *indexNode:
		return w.walkIndex(t)
	case *callNode:
		return w.walkCall(t)
	default:
		return w.fail()
	}
}

func (w *estimator) walkBin(t *binNode) eshape {
	l := w.walk(t.l)
	r := w.walk(t.r)
	if !w.ok {
		return l
	}
	if t.op == "%*%" {
		if !l.isMatrix() || !r.isMatrix() {
			return w.fail()
		}
		return w.created(l.r, r.c)
	}
	// Elementwise with scalar broadcast; matrix∘matrix takes the larger
	// operand's shape (covers column-vector recycling conservatively).
	switch {
	case l.kind == kScalar && r.kind == kScalar:
		if l.known && r.known {
			if v, ok := foldConst(t.op, l.v, r.v); ok {
				return constShape(v)
			}
		}
		return scalarShape()
	case l.isMatrix() && r.kind == kScalar:
		return w.created(l.r, l.c)
	case l.kind == kScalar && r.isMatrix():
		return w.created(r.r, r.c)
	case l.isMatrix() && r.isMatrix():
		if r.elems() > l.elems() {
			return w.created(r.r, r.c)
		}
		return w.created(l.r, l.c)
	default:
		return w.fail()
	}
}

func foldConst(op string, a, b float64) (float64, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b != 0 {
			return a / b, true
		}
	}
	return 0, false
}

func (w *estimator) walkIndex(t *indexNode) eshape {
	x := w.walk(t.x)
	if !w.ok {
		return x
	}
	if !x.isMatrix() {
		return w.fail()
	}
	sel := func(s node, all int64) (int64, bool) {
		if s == nil {
			return all, true
		}
		sh := w.walk(s)
		if !w.ok {
			return 0, false
		}
		switch {
		case sh.kind == kScalar:
			return 1, true
		case sh.isMatrix():
			return sh.elems(), true // index vector selects one row/col each
		default:
			return 0, false
		}
	}
	rows, ok := sel(t.rows, x.r)
	if !ok {
		return w.fail()
	}
	cols, ok := sel(t.cols, x.c)
	if !ok {
		return w.fail()
	}
	return w.created(rows, cols)
}

func (w *estimator) walkCall(t *callNode) eshape {
	arg := func(i int) (eshape, bool) {
		if i >= len(t.args) {
			return eshape{}, false
		}
		s := w.walk(t.args[i])
		return s, w.ok
	}
	matArg := func(i int) (eshape, bool) {
		s, ok := arg(i)
		if !ok || !s.isMatrix() {
			return s, false
		}
		return s, true
	}
	constArg := func(i int) (int64, bool) {
		s, ok := arg(i)
		if !ok {
			return 0, false
		}
		return s.constInt()
	}
	optConstArg := func(i int, def int64) (int64, bool) {
		if i >= len(t.args) {
			return def, true
		}
		return constArg(i)
	}

	if flashrUnary[t.name] {
		x, ok := matArg(0)
		if !ok {
			return w.fail()
		}
		return w.created(x.r, x.c)
	}
	if _, isRed := reductions[t.name]; isRed || t.name == "agg" {
		if _, ok := matArg(0); !ok {
			return w.fail()
		}
		return scalarShape() // 1×1 lazy sink, rendered as text
	}

	switch t.name {
	case "runif.matrix", "rnorm.matrix":
		n, ok1 := constArg(0)
		p, ok2 := constArg(1)
		if !ok1 || !ok2 || n < 0 || p < 0 {
			return w.fail()
		}
		return w.created(n, p)
	case "ones", "zeros":
		n, ok1 := constArg(0)
		p, ok2 := optConstArg(1, 1)
		if !ok1 || !ok2 || n < 0 || p < 0 {
			return w.fail()
		}
		return w.created(n, p)
	case "seq":
		n, ok := constArg(0)
		if !ok || n < 0 {
			return w.fail()
		}
		return w.created(n, 1)
	case "t":
		x, ok := matArg(0)
		if !ok {
			return w.fail()
		}
		return matShape(x.c, x.r) // zero-copy view: no new bytes
	case "dim":
		if _, ok := matArg(0); !ok {
			return w.fail()
		}
		return w.created(1, 2)
	case "nrow", "ncol", "length":
		x, ok := matArg(0)
		if !ok {
			return w.fail()
		}
		switch t.name {
		case "nrow":
			return constShape(float64(x.r))
		case "ncol":
			return constShape(float64(x.c))
		default:
			return constShape(float64(x.elems()))
		}
	case "cbind", "rbind":
		if len(t.args) == 0 {
			return w.fail()
		}
		var rows, cols int64
		for i := range t.args {
			x, ok := matArg(i)
			if !ok {
				return w.fail()
			}
			if i == 0 {
				rows, cols = x.r, x.c
				continue
			}
			if t.name == "cbind" {
				cols += x.c
			} else {
				rows += x.r
			}
		}
		return w.created(rows, cols)
	case "rowSums", "rowMeans", "which.min.row", "which.max.row", "agg.row":
		x, ok := matArg(0)
		if !ok {
			return w.fail()
		}
		return w.created(x.r, 1)
	case "colSums", "colMeans", "agg.col":
		x, ok := matArg(0)
		if !ok {
			return w.fail()
		}
		return w.created(1, x.c)
	case "pmin", "pmax", "mapply", "sapply", "sweep", "cumsum", "set.cache", "materialize":
		x, ok := matArg(0)
		if !ok {
			return w.fail()
		}
		// Walk remaining args for their own work (and to fail on unknowns
		// that would make eval's shape differ from x's).
		for i := 1; i < len(t.args); i++ {
			if _, ok := arg(i); !ok {
				return w.fail()
			}
		}
		if t.name == "set.cache" || t.name == "materialize" {
			return matShape(x.r, x.c) // aliases of x: no new bytes
		}
		return w.created(x.r, x.c)
	case "inner.prod":
		x, ok1 := matArg(0)
		y, ok2 := matArg(1)
		if !ok1 || !ok2 {
			return w.fail()
		}
		return w.created(x.r, y.c)
	case "groupby.row":
		x, ok1 := matArg(0)
		_, ok2 := matArg(1)
		k, ok3 := constArg(2)
		if !ok1 || !ok2 || !ok3 || k < 0 {
			return w.fail()
		}
		return w.created(k, x.c)
	case "crossprod":
		x, ok := matArg(0)
		if !ok {
			return w.fail()
		}
		if len(t.args) > 1 {
			y, ok := matArg(1)
			if !ok {
				return w.fail()
			}
			return w.created(x.c, y.c)
		}
		return w.created(x.c, x.c)
	case "as.matrix", "as.vector", "head":
		x, ok := matArg(0)
		if !ok {
			return w.fail()
		}
		n, okN := optConstArg(1, 6)
		if !okN || n < 0 {
			return w.fail()
		}
		if n > x.r {
			n = x.r
		}
		return w.created(n, x.c)
	case "explain":
		if _, ok := matArg(0); !ok {
			return w.fail()
		}
		return eshape{kind: kString}
	}
	// table, unique, load.dense, save.csv, and anything unknown: shape is
	// data-dependent or unmodeled — no static bound.
	return w.fail()
}
