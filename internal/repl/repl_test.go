package repl

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	flashr "repro"
)

func env(t *testing.T) *Env {
	t.Helper()
	s, err := flashr.NewSession(flashr.Options{Workers: 2, PartRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(s)
}

func evalNum(t *testing.T, e *Env, src string) float64 {
	t.Helper()
	v, err := e.Eval(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	if !v.IsNumber() {
		t.Fatalf("eval %q: not a number (%+v)", src, v)
	}
	return v.Num
}

func TestScalarArithmetic(t *testing.T) {
	e := env(t)
	cases := map[string]float64{
		"1 + 2 * 3":       7,
		"(1 + 2) * 3":     9,
		"2 ^ 3 ^ 2":       512, // right-assoc
		"-2 ^ 2":          -4,  // unary binds looser than ^ in R
		"10 %% 3":         1,
		"1 < 2":           1,
		"3 <= 2":          0,
		"1 == 1 & 2 != 3": 1,
		"!1":              0,
		"1e3 + 1_000":     2000,
	}
	for src, want := range cases {
		if got := evalNum(t, e, src); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%q = %g, want %g", src, got, want)
		}
	}
}

func TestAssignmentAndVariables(t *testing.T) {
	e := env(t)
	if _, err := e.Eval("x <- 41"); err != nil {
		t.Fatal(err)
	}
	if got := evalNum(t, e, "x + 1"); got != 42 {
		t.Fatalf("x+1 = %g", got)
	}
	if _, err := e.Eval("y"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing-variable error: %v", err)
	}
	if len(e.Vars()) != 1 {
		t.Fatalf("vars %v", e.Vars())
	}
}

func TestMatrixPipeline(t *testing.T) {
	e := env(t)
	must := func(src string) Value {
		v, err := e.Eval(src)
		if err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		return v
	}
	must("x <- rnorm.matrix(5000, 4, 0, 1, 7)")
	if got := evalNum(t, e, "nrow(x)"); got != 5000 {
		t.Fatalf("nrow %g", got)
	}
	if got := evalNum(t, e, "ncol(x)"); got != 4 {
		t.Fatalf("ncol %g", got)
	}
	// Standardize and check variance ≈ 1 through pure REPL code.
	must(`centered <- sweep(x, 2, colMeans(x), "-")`)
	v := evalNum(t, e, "sum(centered * centered) / (length(x) - 1)")
	if math.Abs(v-1) > 0.05 {
		t.Fatalf("sample variance %g", v)
	}
	// Matrix multiply against a small matrix.
	must("g <- crossprod(x)")
	gv := must("g")
	if !gv.IsMatrix() || gv.Mat.NRow() != 4 {
		t.Fatalf("gramian shape")
	}
	// Elementwise chain with comparison reduction.
	frac := evalNum(t, e, "mean(abs(x) > 2)")
	if frac < 0.02 || frac > 0.08 {
		t.Fatalf("P(|x|>2) = %g", frac)
	}
	// Element access is 1-based like R.
	must("e <- x[3, 2]")
	if !must("e").isNum {
		t.Fatal("element access not scalar")
	}
	// Column selection keeps laziness.
	must("c1 <- x[, 1]")
	if got := evalNum(t, e, "ncol(c1)"); got != 1 {
		t.Fatalf("col select ncol %g", got)
	}
}

func TestGenOpsThroughREPL(t *testing.T) {
	e := env(t)
	must := func(src string) {
		if _, err := e.Eval(src); err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
	}
	// The paper's k-means iteration, written in the REPL language.
	must("x <- rnorm.matrix(3000, 4, 0, 1, 3)")
	must("centers <- head(x, 3)")
	must(`d <- inner.prod(x, t(centers), "euclidean", "+")`)
	must("i <- which.min.row(d)")
	must(`cnt <- groupby.row(ones(3000, 1), i, 3, "+")`)
	must(`sums <- groupby.row(x, i, 3, "+")`)
	must(`newc <- sweep(sums, 1, cnt, "/")`)
	v, err := e.Eval("nrow(newc)")
	if err != nil || v.Num != 3 {
		t.Fatalf("centers rows: %v %v", v, err)
	}
	total := evalNum(t, e, "sum(cnt)")
	if total != 3000 {
		t.Fatalf("counts sum %g", total)
	}
	// agg/sapply/mapply GenOps.
	must(`s <- agg.row(x, "+")`)
	if got := evalNum(t, e, `agg(x, "+")`); math.Abs(got-evalNum(t, e, "sum(s)")) > 1e-8 {
		t.Fatal("agg vs rowsum-total mismatch")
	}
	if got := evalNum(t, e, `sum(mapply(x, x, "-"))`); got != 0 {
		t.Fatalf("x-x sum %g", got)
	}
}

func TestTableUniqueCumsum(t *testing.T) {
	e := env(t)
	if _, err := e.Eval("v <- round(runif.matrix(1000, 1, 0, 3, 9))"); err != nil {
		t.Fatal(err)
	}
	tab, err := e.Eval("table(v)")
	if err != nil {
		t.Fatal(err)
	}
	if !tab.IsMatrix() || tab.Mat.NCol() != 2 {
		t.Fatal("table shape")
	}
	u, err := e.Eval("unique(v)")
	if err != nil {
		t.Fatal(err)
	}
	if u.Mat.NRow() != tab.Mat.NRow() {
		t.Fatal("unique vs table size")
	}
	last := evalNum(t, e, "cumsum(ones(100,1))[100, 1]")
	if last != 100 {
		t.Fatalf("cumsum last %g", last)
	}
}

func TestLoadSaveThroughREPL(t *testing.T) {
	e := env(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.csv")
	if err := os.WriteFile(path, []byte("1,2\n3,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval(`m <- load.dense("` + path + `")`); err != nil {
		t.Fatal(err)
	}
	if got := evalNum(t, e, "sum(m)"); got != 10 {
		t.Fatalf("loaded sum %g", got)
	}
	out := filepath.Join(dir, "o.csv")
	if _, err := e.Eval(`save.csv(m, "` + out + `")`); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestErrorsAreRecoverable(t *testing.T) {
	e := env(t)
	bad := []string{
		"1 +",                      // parse error
		"nosuchfn(1)",              // unknown function
		"x",                        // unknown variable
		`sum(1)`,                   // type error
		"rnorm.matrix(10,2) %*% 3", // matmul with scalar
		`"unterminated`,            // lex error
	}
	for _, src := range bad {
		if _, err := e.Eval(src); err == nil {
			t.Fatalf("%q did not error", src)
		}
	}
	// Shape panics surface as errors, not crashes.
	if _, err := e.Eval("a <- rnorm.matrix(100, 2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval("b <- rnorm.matrix(100, 3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval("a + b"); err == nil {
		t.Fatal("shape mismatch did not error")
	}
	// Session still usable afterwards.
	if got := evalNum(t, e, "sum(ones(10, 1))"); got != 10 {
		t.Fatalf("session broken after error: %g", got)
	}
}

func TestFormatOutputs(t *testing.T) {
	e := env(t)
	v, _ := e.Eval("1 + 1")
	out, err := e.Format(v)
	if err != nil || out != "[1] 2" {
		t.Fatalf("scalar format %q %v", out, err)
	}
	m, _ := e.Eval("ones(3, 2)")
	out, err = e.Format(m)
	if err != nil || !strings.Contains(out, "[1,]") {
		t.Fatalf("small matrix format %q %v", out, err)
	}
	big, _ := e.Eval("rnorm.matrix(10000, 3)")
	out, err = e.Format(big)
	if err != nil || !strings.Contains(out, "10000 x 3") {
		t.Fatalf("big matrix format %q %v", out, err)
	}
	blank, _ := e.Eval("   # just a comment")
	out, _ = e.Format(blank)
	if out != "" {
		t.Fatalf("comment produced output %q", out)
	}
}

// TestFormatNonFiniteParity: NaN and ±Inf scalars print in R's spelling
// (NaN, Inf, -Inf — not Go's "+Inf"), and the deferred-reduction path must
// print them identically to the eager path.
func TestFormatNonFiniteParity(t *testing.T) {
	eager := env(t)
	lazy := env(t)
	lazy.SetLazyScalars(true)
	cases := []struct {
		src  string
		want string
	}{
		{"sum(log(zeros(64, 1)))", "[1] -Inf"},
		{"sum(exp(ones(64, 1) * 1000))", "[1] Inf"},
		{"sum(sqrt(0 - ones(64, 1)))", "[1] NaN"},
	}
	for _, c := range cases {
		ev, err := eager.Eval(c.src)
		if err != nil {
			t.Fatalf("eager eval %q: %v", c.src, err)
		}
		eout, err := eager.Format(ev)
		if err != nil {
			t.Fatalf("eager format %q: %v", c.src, err)
		}
		lv, err := lazy.Eval(c.src)
		if err != nil {
			t.Fatalf("lazy eval %q: %v", c.src, err)
		}
		lout, err := lazy.Format(lv)
		if err != nil {
			t.Fatalf("lazy format %q: %v", c.src, err)
		}
		if eout != c.want {
			t.Errorf("eager %q printed %q, want %q", c.src, eout, c.want)
		}
		if lout != eout {
			t.Errorf("lazy %q printed %q, eager printed %q — paths must agree", c.src, lout, eout)
		}
	}
}

func TestExplainThroughREPL(t *testing.T) {
	e := env(t)
	if _, err := e.Eval("x <- rnorm.matrix(2000, 2)"); err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval("explain(sqrt(abs(x)))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.Str, "sapply") {
		t.Fatalf("explain output: %q", v.Str)
	}
}
