package repl

import (
	"testing"
)

func parseOK(t *testing.T, src string) node {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return n
}

func TestParsePrecedence(t *testing.T) {
	// a + b * c parses as a + (b*c).
	n := parseOK(t, "a + b * c").(*binNode)
	if n.op != "+" {
		t.Fatalf("root %q", n.op)
	}
	r := n.r.(*binNode)
	if r.op != "*" {
		t.Fatalf("rhs %q", r.op)
	}
	// Comparison binds looser than arithmetic.
	n = parseOK(t, "a + 1 < b - 2").(*binNode)
	if n.op != "<" {
		t.Fatalf("root %q", n.op)
	}
	// %*% binds tighter than *.
	n = parseOK(t, "a * b %*% c").(*binNode)
	if n.op != "*" {
		t.Fatalf("root %q", n.op)
	}
	if n.r.(*binNode).op != "%*%" {
		t.Fatal("matmul should bind tighter than *")
	}
}

func TestParseAssignAndCalls(t *testing.T) {
	a := parseOK(t, "x <- f(1, g(2), \"s\")").(*assignNode)
	if a.name != "x" {
		t.Fatalf("assign name %q", a.name)
	}
	call := a.rhs.(*callNode)
	if call.name != "f" || len(call.args) != 3 {
		t.Fatalf("call %q/%d", call.name, len(call.args))
	}
	if call.args[1].(*callNode).name != "g" {
		t.Fatal("nested call lost")
	}
	if call.args[2].(*strNode).v != "s" {
		t.Fatal("string arg lost")
	}
	// '=' also assigns.
	if _, ok := parseOK(t, "y = 3").(*assignNode); !ok {
		t.Fatal("= assignment not parsed")
	}
	// Dotted identifiers.
	if parseOK(t, "runif.matrix(2, 2)").(*callNode).name != "runif.matrix" {
		t.Fatal("dotted name")
	}
}

func TestParseIndexForms(t *testing.T) {
	ix := parseOK(t, "x[1, 2]").(*indexNode)
	if ix.rows == nil || ix.cols == nil {
		t.Fatal("element access")
	}
	ix = parseOK(t, "x[, 3]").(*indexNode)
	if ix.rows != nil || ix.cols == nil {
		t.Fatal("column slice")
	}
	ix = parseOK(t, "x[7, ]").(*indexNode)
	if ix.rows == nil || ix.cols != nil {
		t.Fatal("row slice")
	}
	// Chained indexing.
	outer := parseOK(t, "x[, 1][2, 1]").(*indexNode)
	if _, ok := outer.x.(*indexNode); !ok {
		t.Fatal("chained index")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"f(1,", "x[1]", "(1 + 2", "1 2", "x <-", "@", "\"abc",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("%q parsed without error", src)
		}
	}
}

func TestLexerDetails(t *testing.T) {
	toks, err := lex(`x<-1.5e-3 + .5 # comment`)
	if err != nil {
		t.Fatal(err)
	}
	// ident, <-, num, +, num, EOF
	if len(toks) != 6 {
		t.Fatalf("%d tokens", len(toks))
	}
	if toks[2].num != 1.5e-3 || toks[4].num != 0.5 {
		t.Fatalf("numbers %g %g", toks[2].num, toks[4].num)
	}
	toks, err = lex(`'single' "double \" esc"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "single" || toks[1].text != `double " esc` {
		t.Fatalf("strings %q %q", toks[0].text, toks[1].text)
	}
}
