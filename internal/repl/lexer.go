// Package repl implements a small interactive R-flavored expression
// language over the flashr API — the stand-in for the R shell that makes
// FlashR "an interactive R programming framework" (§1 of the paper).
//
// The language covers the paper's programming surface: matrix creation
// (runif.matrix, rnorm.matrix, load.dense), the overridden R-base operators
// and functions of Table 2, the GenOps of Table 1, and the tuning functions
// of Table 3 (materialize, set.cache, as.matrix). Statements are either
// assignments (`x <- expr`) or expressions; everything stays lazy until a
// value must be shown.
package repl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int8

const (
	tokEOF tokKind = iota
	tokNumber
	tokIdent  // names, possibly dotted: runif.matrix, which.min
	tokString // "..." literals (function names, paths)
	tokOp     // operators and punctuation
)

type token struct {
	kind tokKind
	text string
	pos  int
	num  float64
}

// lexer splits an input line into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// operators, longest first so maximal munch works.
var operators = []string{
	"%*%", "%%", "<-", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "^", "<", ">", "!", "&", "|", "(", ")", "[", "]", ",", "=",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			break
		}
		c := l.src[l.pos]
		switch {
		case c == '#':
			// Comment to end of line.
			l.pos = len(l.src)
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case unicode.IsLetter(rune(c)) || c == '.' || c == '_':
			l.lexIdent()
		default:
			if !l.lexOp() {
				return nil, fmt.Errorf("unexpected character %q at %d", c, l.pos)
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: len(src)})
	return l.toks, nil
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t') {
		l.pos++
	}
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("unterminated string at %d", start)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsDigit(rune(c)):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		case c == '_': // digit separators: 1_000_000
			l.pos++
		default:
			goto done
		}
	}
done:
	text := strings.ReplaceAll(l.src[start:l.pos], "_", "")
	var v float64
	if _, err := fmt.Sscanf(text, "%g", &v); err != nil {
		return fmt.Errorf("bad number %q at %d", text, start)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, num: v, pos: start})
	return nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '.' || c == '_' {
			l.pos++
		} else {
			break
		}
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexOp() bool {
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: l.pos})
			l.pos += len(op)
			return true
		}
	}
	return false
}
