package repl

import (
	"context"
	"fmt"
	"math"

	flashr "repro"
)

func mathPow(a, b float64) float64 { return math.Pow(a, b) }

func mathFloor(v float64) float64 { return math.Floor(v) }

// evalCall dispatches function-call syntax to the flashr API. The table
// mirrors the paper's Tables 1–3.
func (e *Env) evalCall(t *callNode) (Value, error) {
	args := make([]Value, len(t.args))
	for i, a := range t.args {
		v, err := e.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	mat := func(i int) (*flashr.FM, error) {
		if i >= len(args) || !args[i].IsMatrix() {
			return nil, fmt.Errorf("%s: argument %d must be a matrix", t.name, i+1)
		}
		return args[i].Mat, nil
	}
	num := func(i int) (float64, error) {
		if i >= len(args) || !args[i].isNum {
			return 0, fmt.Errorf("%s: argument %d must be a number", t.name, i+1)
		}
		return args[i].Num, nil
	}
	str := func(i int) (string, error) {
		if i >= len(args) || !args[i].isStr {
			return "", fmt.Errorf("%s: argument %d must be a string", t.name, i+1)
		}
		return args[i].Str, nil
	}
	optNum := func(i int, def float64) float64 {
		if i < len(args) && args[i].isNum {
			return args[i].Num
		}
		return def
	}

	// Unary elementwise functions share one path.
	if flashrUnary[t.name] {
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		return matVal(flashr.Sapply(x, rName(t.name))), nil
	}
	// Whole-matrix reductions. Under lazy scalars the 1×1 result stays a
	// pending sink so a whole batch of reductions flushes as one pass.
	if agg, ok := reductions[t.name]; ok {
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		if e.lazyScalars {
			return matVal(agg(x)), nil
		}
		v, err := agg(x).Float()
		if err != nil {
			return Value{}, err
		}
		return numVal(v), nil
	}

	switch t.name {
	// ---- creation (Table 3) ----
	case "runif.matrix":
		n, err := num(0)
		if err != nil {
			return Value{}, err
		}
		p, err := num(1)
		if err != nil {
			return Value{}, err
		}
		m, err := e.S.Runif(int64(n), int(p), optNum(2, 0), optNum(3, 1), int64(optNum(4, 1)))
		if err != nil {
			return Value{}, err
		}
		return matVal(m), nil
	case "rnorm.matrix":
		n, err := num(0)
		if err != nil {
			return Value{}, err
		}
		p, err := num(1)
		if err != nil {
			return Value{}, err
		}
		m, err := e.S.Rnorm(int64(n), int(p), optNum(2, 0), optNum(3, 1), int64(optNum(4, 1)))
		if err != nil {
			return Value{}, err
		}
		return matVal(m), nil
	case "ones", "zeros":
		n, err := num(0)
		if err != nil {
			return Value{}, err
		}
		p := optNum(1, 1)
		if t.name == "ones" {
			return matVal(e.S.Ones(int64(n), int(p))), nil
		}
		return matVal(e.S.Zeros(int64(n), int(p))), nil
	case "seq":
		n, err := num(0)
		if err != nil {
			return Value{}, err
		}
		m, err := e.S.SeqVec(int64(n))
		if err != nil {
			return Value{}, err
		}
		return matVal(m), nil
	case "load.dense":
		path, err := str(0)
		if err != nil {
			return Value{}, err
		}
		sep := ","
		if len(args) > 1 && args[1].isStr {
			sep = args[1].Str
		}
		m, err := e.S.LoadCSV(path, sep)
		if err != nil {
			return Value{}, err
		}
		return matVal(m), nil
	case "save.csv":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		path, err := str(1)
		if err != nil {
			return Value{}, err
		}
		return nullVal(), flashr.SaveCSV(x, path, ",")

	// ---- structure (Table 3) ----
	case "t":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		return matVal(x.T()), nil
	case "dim":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		r, c := x.Dim()
		return matVal(e.S.SmallFromRows([][]float64{{float64(r), float64(c)}})), nil
	case "nrow":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		return numVal(float64(x.NRow())), nil
	case "ncol":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		return numVal(float64(x.NCol())), nil
	case "length":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		return numVal(float64(x.Length())), nil
	case "cbind", "rbind":
		ms := make([]*flashr.FM, len(args))
		for i := range args {
			m, err := mat(i)
			if err != nil {
				return Value{}, err
			}
			ms[i] = m
		}
		if t.name == "cbind" {
			return matVal(flashr.Cbind(ms...)), nil
		}
		return matVal(flashr.Rbind(ms...)), nil

	// ---- row/column reductions ----
	case "rowSums", "rowMeans", "colSums", "colMeans":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		switch t.name {
		case "rowSums":
			return matVal(flashr.RowSums(x)), nil
		case "rowMeans":
			return matVal(flashr.RowMeans(x)), nil
		case "colSums":
			return matVal(flashr.ColSums(x)), nil
		default:
			return matVal(flashr.ColMeans(x)), nil
		}

	// ---- binary elementwise with function-style call ----
	case "pmin", "pmax":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		if t.name == "pmin" {
			return matVal(flashr.Pmin(x, operand(args[1]))), nil
		}
		return matVal(flashr.Pmax(x, operand(args[1]))), nil

	// ---- GenOps (Table 1) ----
	case "sapply":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		f, err := str(1)
		if err != nil {
			return Value{}, err
		}
		return matVal(flashr.Sapply(x, f)), nil
	case "mapply":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		f, err := str(2)
		if err != nil {
			return Value{}, err
		}
		return matVal(flashr.Mapply(x, operand(args[1]), f)), nil
	case "agg":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		f, err := str(1)
		if err != nil {
			return Value{}, err
		}
		if e.lazyScalars {
			return matVal(flashr.Agg(x, f)), nil
		}
		v, err := flashr.Agg(x, f).Float()
		if err != nil {
			return Value{}, err
		}
		return numVal(v), nil
	case "agg.row", "agg.col":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		f, err := str(1)
		if err != nil {
			return Value{}, err
		}
		if t.name == "agg.row" {
			return matVal(flashr.AggRow(x, f)), nil
		}
		return matVal(flashr.AggCol(x, f)), nil
	case "which.min.row", "which.max.row":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		if t.name == "which.min.row" {
			return matVal(flashr.RowWhichMin(x)), nil
		}
		return matVal(flashr.RowWhichMax(x)), nil
	case "inner.prod":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		y, err := mat(1)
		if err != nil {
			return Value{}, err
		}
		f1, err := str(2)
		if err != nil {
			return Value{}, err
		}
		f2, err := str(3)
		if err != nil {
			return Value{}, err
		}
		return matVal(flashr.InnerProd(x, y, f1, f2)), nil
	case "groupby.row":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		lab, err := mat(1)
		if err != nil {
			return Value{}, err
		}
		k, err := num(2)
		if err != nil {
			return Value{}, err
		}
		f, err := str(3)
		if err != nil {
			return Value{}, err
		}
		return matVal(flashr.GroupByRow(x, lab, int(k), f)), nil
	case "crossprod":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		if len(args) > 1 {
			y, err := mat(1)
			if err != nil {
				return Value{}, err
			}
			return matVal(flashr.CrossProd2(x, y)), nil
		}
		return matVal(flashr.CrossProd(x)), nil
	case "sweep":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		margin, err := num(1)
		if err != nil {
			return Value{}, err
		}
		v, err := mat(2)
		if err != nil {
			return Value{}, err
		}
		f := "-"
		if len(args) > 3 && args[3].isStr {
			f = args[3].Str
		}
		return matVal(flashr.Sweep(x, int(margin), v, f)), nil
	case "cumsum":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		return matVal(flashr.Cumsum(x)), nil

	// ---- data-dependent sinks ----
	case "table":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		keys, counts, err := flashr.TableOf(x)
		if err != nil {
			return Value{}, err
		}
		rows := make([][]float64, len(keys))
		for i := range keys {
			rows[i] = []float64{keys[i], float64(counts[i])}
		}
		return matVal(e.S.SmallFromRows(rows)), nil
	case "unique":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		keys, err := flashr.Unique(x)
		if err != nil {
			return Value{}, err
		}
		rows := make([][]float64, len(keys))
		for i, k := range keys {
			rows[i] = []float64{k}
		}
		return matVal(e.S.SmallFromRows(rows)), nil

	// ---- tuning (Table 3) ----
	case "materialize":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		return args[0], x.MaterializeCtx(context.Background())
	case "set.cache":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		em := optNum(1, 0) != 0
		return matVal(x.SetCache(em)), nil
	case "as.matrix", "as.vector", "head":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		n := int(optNum(1, 6))
		d, err := flashr.Head(x, n)
		if err != nil {
			return Value{}, err
		}
		return matVal(e.S.Small(d)), nil
	case "explain":
		x, err := mat(0)
		if err != nil {
			return Value{}, err
		}
		return strVal(flashr.Explain(x)), nil
	}
	return Value{}, fmt.Errorf("could not find function %q", t.name)
}

// rName maps REPL names to flashr's registered unary names.
func rName(name string) string { return name }

var flashrUnary = map[string]bool{
	"sqrt": true, "exp": true, "log": true, "log1p": true, "abs": true,
	"floor": true, "ceiling": true, "round": true, "sign": true,
	"sigmoid": true, "square": true,
}

var reductions = map[string]func(*flashr.FM) *flashr.FM{
	"sum":  flashr.Sum,
	"mean": flashr.Mean,
	"min":  flashr.Min,
	"max":  flashr.Max,
	"prod": flashr.Prod,
	"any":  flashr.Any,
	"all":  flashr.All,
}
