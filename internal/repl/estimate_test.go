package repl

import (
	"strings"
	"testing"
)

func estimate(t *testing.T, e *Env, program string) (Estimate, bool) {
	t.Helper()
	return e.EstimateProgram(strings.Split(program, "\n"))
}

func TestEstimateCreationBytes(t *testing.T) {
	e := env(t)
	est, ok := estimate(t, e, "x <- runif.matrix(1000, 10, 0, 1, 7)")
	if !ok {
		t.Fatal("estimate unavailable")
	}
	if est.WorkBytes != 1000*10*8 {
		t.Errorf("WorkBytes = %d, want %d", est.WorkBytes, 1000*10*8)
	}
	if est.ResultBytes != 0 {
		t.Errorf("ResultBytes = %d for an assignment, want 0", est.ResultBytes)
	}
	if est.Stmts != 1 {
		t.Errorf("Stmts = %d, want 1", est.Stmts)
	}
}

func TestEstimateConstantPropagation(t *testing.T) {
	e := env(t)
	// n flows through arithmetic into the creation call; the printed matrix
	// counts toward ResultBytes as well as WorkBytes.
	est, ok := estimate(t, e, "n <- 250\nx <- runif.matrix(n * 2, 2, 0, 1, 7)\nx")
	if !ok {
		t.Fatal("estimate unavailable")
	}
	if est.WorkBytes != 500*2*8 {
		t.Errorf("WorkBytes = %d, want %d", est.WorkBytes, 500*2*8)
	}
	if est.ResultBytes != 500*2*8 {
		t.Errorf("ResultBytes = %d, want %d", est.ResultBytes, 500*2*8)
	}
}

func TestEstimateDimPropagation(t *testing.T) {
	e := env(t)
	// nrow of a known matrix is a constant the next creation call can use.
	est, ok := estimate(t, e, "x <- runif.matrix(100, 4, 0, 1, 7)\ny <- ones(nrow(x), 3)\nsum(y)")
	if !ok {
		t.Fatal("estimate unavailable")
	}
	want := int64(100*4*8 + 100*3*8)
	if est.WorkBytes != want {
		t.Errorf("WorkBytes = %d, want %d", est.WorkBytes, want)
	}
	if est.ResultBytes != 0 {
		t.Errorf("ResultBytes = %d, want 0 (sum renders as text)", est.ResultBytes)
	}
}

func TestEstimateMatMulShapes(t *testing.T) {
	e := env(t)
	est, ok := estimate(t, e, "a <- runif.matrix(100, 10, 0, 1, 1)\nb <- runif.matrix(50, 10, 0, 1, 2)\nc <- a %*% t(b)")
	if !ok {
		t.Fatal("estimate unavailable")
	}
	// a: 100×10, b: 50×10, t(b) is a view (no bytes), product: 100×50.
	want := int64(100*10*8 + 50*10*8 + 100*50*8)
	if est.WorkBytes != want {
		t.Errorf("WorkBytes = %d, want %d", est.WorkBytes, want)
	}
}

func TestEstimateSeededFromEnvironment(t *testing.T) {
	e := env(t)
	if _, err := e.Eval("x <- runif.matrix(64, 4, 0, 1, 7)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval("k <- 3"); err != nil {
		t.Fatal(err)
	}
	// x and k come from live bindings, not the program text.
	est, ok := estimate(t, e, "y <- x * x\nz <- ones(k, k)\nsum(y)")
	if !ok {
		t.Fatal("estimate unavailable")
	}
	want := int64(64*4*8 + 3*3*8)
	if est.WorkBytes != want {
		t.Errorf("WorkBytes = %d, want %d", est.WorkBytes, want)
	}
}

func TestEstimateUnavailable(t *testing.T) {
	e := env(t)
	if _, err := e.Eval("x <- runif.matrix(64, 4, 0, 1, 7)"); err != nil {
		t.Fatal(err)
	}
	for _, program := range []string{
		"y <- unknown.function(x)",              // unmodeled call
		"z + 1",                                 // unbound identifier
		"y <- table(x)",                         // data-dependent shape
		"y <- runif.matrix(nosuch, 2, 0, 1, 7)", // non-constant dimension
	} {
		if est, ok := estimate(t, e, program); ok {
			t.Errorf("estimate(%q) = %+v, want unavailable", program, est)
		}
	}
	// A parse error is also "no estimate", not a panic.
	if _, ok := estimate(t, e, "x <-"); ok {
		t.Error("estimate of unparsable program reported ok")
	}
}

func TestEstimateReductionsAndViews(t *testing.T) {
	e := env(t)
	est, ok := estimate(t, e, "x <- runif.matrix(200, 5, 0, 1, 7)\nrowSums(x)\ncolSums(x)\nmax(x)")
	if !ok {
		t.Fatal("estimate unavailable")
	}
	// rowSums: 200×1 printed; colSums: 1×5 printed; max: scalar text.
	wantWork := int64(200*5*8 + 200*8 + 5*8)
	if est.WorkBytes != wantWork {
		t.Errorf("WorkBytes = %d, want %d", est.WorkBytes, wantWork)
	}
	wantRes := int64(200*8 + 5*8)
	if est.ResultBytes != wantRes {
		t.Errorf("ResultBytes = %d, want %d", est.ResultBytes, wantRes)
	}
}
