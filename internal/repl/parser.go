package repl

import (
	"fmt"
)

// AST node kinds.
type node interface{ pos() int }

type numNode struct {
	p int
	v float64
}

type strNode struct {
	p int
	v string
}

type identNode struct {
	p    int
	name string
}

type callNode struct {
	p    int
	name string
	args []node
}

type binNode struct {
	p    int
	op   string
	l, r node
}

type unNode struct {
	p  int
	op string
	x  node
}

type indexNode struct { // x[rows, cols] — empty slot = all
	p          int
	x          node
	rows, cols node // nil when omitted
}

type assignNode struct {
	p    int
	name string
	rhs  node
}

func (n *numNode) pos() int    { return n.p }
func (n *strNode) pos() int    { return n.p }
func (n *identNode) pos() int  { return n.p }
func (n *callNode) pos() int   { return n.p }
func (n *binNode) pos() int    { return n.p }
func (n *unNode) pos() int     { return n.p }
func (n *indexNode) pos() int  { return n.p }
func (n *assignNode) pos() int { return n.p }

// parser is a Pratt-style expression parser matching R's operator
// precedence for the subset we support.
type parser struct {
	toks []token
	i    int
}

// Parse parses one statement: `name <- expr` or a bare expression.
func Parse(src string) (node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if p.peek().kind == tokEOF {
		return nil, nil // blank line
	}
	// Assignment?
	if p.peek().kind == tokIdent && p.peekAt(1).kind == tokOp &&
		(p.peekAt(1).text == "<-" || p.peekAt(1).text == "=") {
		name := p.next().text
		p.next() // <- or =
		rhs, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expectEOF(); err != nil {
			return nil, err
		}
		return &assignNode{p: 0, name: name, rhs: rhs}, nil
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peekAt(k int) token {
	if p.i+k >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+k]
}
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(op string) error {
	t := p.next()
	if t.kind != tokOp || t.text != op {
		return fmt.Errorf("expected %q at %d, got %q", op, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectEOF() error {
	if t := p.peek(); t.kind != tokEOF {
		return fmt.Errorf("unexpected %q at %d", t.text, t.pos)
	}
	return nil
}

// Binding powers, loosely mirroring R: | & < > == != then + - then * / %%
// then %*% then ^ then unary.
var binPower = map[string]int{
	"||": 10, "|": 10,
	"&&": 20, "&": 20,
	"==": 30, "!=": 30, "<": 30, "<=": 30, ">": 30, ">=": 30,
	"+": 40, "-": 40,
	"*": 50, "/": 50, "%%": 50,
	"%*%": 60,
	"^":   70,
}

func (p *parser) parseExpr(minPower int) (node, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			break
		}
		power, ok := binPower[t.text]
		if !ok || power < minPower {
			break
		}
		p.next()
		// ^ is right-associative in R.
		nextMin := power + 1
		if t.text == "^" {
			nextMin = power
		}
		rhs, err := p.parseExpr(nextMin)
		if err != nil {
			return nil, err
		}
		lhs = &binNode{p: t.pos, op: t.text, l: lhs, r: rhs}
	}
	return lhs, nil
}

func (p *parser) parseUnary() (node, error) {
	t := p.peek()
	if t.kind == tokOp && (t.text == "-" || t.text == "+") {
		p.next()
		// R's unary minus binds tighter than %any% and below, but looser
		// than ^: -2^2 is -(2^2).
		x, err := p.parseExpr(binPower["%*%"] + 1)
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			return x, nil
		}
		return &unNode{p: t.pos, op: t.text, x: x}, nil
	}
	if t.kind == tokOp && t.text == "!" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unNode{p: t.pos, op: t.text, x: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (node, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || t.text != "[" {
			break
		}
		p.next()
		idx := &indexNode{p: t.pos, x: x}
		// rows slot (may be empty).
		if !p.atOp(",") {
			idx.rows, err = p.parseExpr(0)
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		if !p.atOp("]") {
			idx.cols, err = p.parseExpr(0)
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		x = idx
	}
	return x, nil
}

func (p *parser) atOp(op string) bool {
	t := p.peek()
	return t.kind == tokOp && t.text == op
}

func (p *parser) parsePrimary() (node, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return &numNode{p: t.pos, v: t.num}, nil
	case tokString:
		return &strNode{p: t.pos, v: t.text}, nil
	case tokIdent:
		if p.atOp("(") {
			p.next()
			call := &callNode{p: t.pos, name: t.text}
			if !p.atOp(")") {
				for {
					arg, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					call.args = append(call.args, arg)
					if p.atOp(",") {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &identNode{p: t.pos, name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("unexpected %q at %d", t.text, t.pos)
}
