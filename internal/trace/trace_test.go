package trace

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestSpanHotPathZeroAlloc pins the disabled-tracing hot path at zero
// allocations: a nil Buf's Begin/End pair must not allocate (ISSUE overhead
// guard; a regression here would put garbage on every partition of every
// pass even with tracing off).
func TestSpanHotPathZeroAlloc(t *testing.T) {
	var b *Buf
	allocs := testing.AllocsPerRun(1000, func() {
		sp := b.Begin(KindRead, 7)
		sp.Bytes += 4096
		sp.N++
		b.End(sp)
	})
	if allocs != 0 {
		t.Fatalf("disabled span hot path allocates %v per op, want 0", allocs)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	b := tr.NewBuf(1, TrackRoot)
	if b != nil {
		t.Fatalf("nil tracer returned non-nil buf")
	}
	tr.Collect(PassMeta{Pass: 1}, b)
	if d := tr.Data(); d != nil {
		t.Fatalf("nil tracer returned non-nil data")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindPass; k < kindCount; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if KindFromString("nope") != KindInvalid {
		t.Errorf("unknown kind name parsed as valid")
	}
}

func TestTrackHelpers(t *testing.T) {
	if !IsWorkerTrack(WorkerTrack(0)) || !IsWorkerTrack(WorkerTrack(500)) {
		t.Errorf("worker tracks misclassified")
	}
	if !IsWriterTrack(WriterTrack(0)) || IsWorkerTrack(WriterTrack(3)) {
		t.Errorf("writer tracks misclassified")
	}
	if IsWorkerTrack(TrackRoot) || IsWriterTrack(TrackRoot) {
		t.Errorf("root track misclassified")
	}
	for _, tc := range []struct {
		track int32
		want  string
	}{{TrackRoot, "pass"}, {WorkerTrack(2), "worker 2"}, {WriterTrack(1), "writer 1"}} {
		if got := TrackName(tc.track); got != tc.want {
			t.Errorf("TrackName(%d) = %q, want %q", tc.track, got, tc.want)
		}
	}
}

// buildTrace assembles a synthetic well-formed single-pass trace by driving
// the real Buf/Tracer API.
func buildTrace(t *testing.T) *Data {
	t.Helper()
	tr := New()
	root := tr.NewBuf(1, TrackRoot)
	w0 := tr.NewBuf(1, WorkerTrack(0))
	wr0 := tr.NewBuf(1, WriterTrack(0))

	rootSp := root.Begin(KindPass, 0)
	admit := root.Begin(KindAdmit, 0)
	root.End(admit)
	lookup := root.Begin(KindCacheLookup, 0)
	root.End(lookup)

	st := w0.Begin(KindSuperTask, 0)
	rd := w0.Begin(KindRead, 0)
	rd.Bytes, rd.N = 8192, 2
	w0.End(rd)
	cp := w0.Begin(KindCompute, 0)
	cp.N = 4
	w0.End(cp)
	wb := w0.Begin(KindWriteBack, 0)
	w0.End(wb)
	w0.End(st)

	job := wr0.Begin(KindWriteBack, 0)
	job.Bytes = 8192
	wr0.End(job)

	dr := root.Begin(KindDrain, 0)
	root.End(dr)
	pub := root.Begin(KindPublish, 0)
	root.End(pub)
	root.End(rootSp)

	tr.Collect(PassMeta{Pass: 1, Owner: "sess-a"}, root, w0, wr0)
	return tr.Data()
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	d := buildTrace(t)
	if err := Verify(d); err != nil {
		t.Fatalf("well-formed trace rejected: %v", err)
	}
	if len(d.Events) != 10 {
		t.Fatalf("got %d events, want 10", len(d.Events))
	}
}

// TestVerifyViolations is the table-driven half of the invariant suite:
// each case mutates a valid trace into one specific violation and asserts
// Verify names it.
func TestVerifyViolations(t *testing.T) {
	mk := func() *Data {
		return &Data{
			Passes: []PassMeta{{Pass: 1}},
			Events: []Event{
				{Pass: 1, Track: TrackRoot, Kind: KindPass, Start: 0, End: 100},
				{Pass: 1, Track: WorkerTrack(0), Kind: KindSuperTask, Start: 10, End: 90},
				{Pass: 1, Track: WorkerTrack(0), Kind: KindRead, Start: 20, End: 40},
				{Pass: 1, Track: WorkerTrack(0), Kind: KindCompute, Start: 40, End: 80},
			},
		}
	}
	cases := []struct {
		name    string
		mutate  func(d *Data)
		wantErr string
	}{
		{"unclosed span", func(d *Data) { d.Unclosed = 2 }, "never ended"},
		{"invalid kind", func(d *Data) { d.Events[2].Kind = KindInvalid }, "invalid kind"},
		{"end before start", func(d *Data) { d.Events[2].Start, d.Events[2].End = 40, 20 }, "interval"},
		{"negative start", func(d *Data) { d.Events[0].Start = -1 }, "interval"},
		{"two roots", func(d *Data) {
			d.Events = append(d.Events, Event{Pass: 1, Track: TrackRoot, Kind: KindPass, Start: 0, End: 100})
		}, "more than one root"},
		{"no root", func(d *Data) { d.Events = d.Events[1:] }, "no root"},
		{"root off root track", func(d *Data) { d.Events[0].Track = WorkerTrack(3) }, "want root track"},
		{"span outside root", func(d *Data) { d.Events[1].End = 150 }, "outside root"},
		{"partial overlap", func(d *Data) { d.Events[3].Start = 30 }, "partially overlaps"},
		{"read outside super-task", func(d *Data) {
			d.Events = append(d.Events, Event{Pass: 1, Track: WorkerTrack(1), Kind: KindRead, Start: 5, End: 9})
		}, "outside any super-task"},
		{"super-task on root track", func(d *Data) { d.Events[1].Track = TrackRoot }, "non-worker track"},
		{"admit on worker track", func(d *Data) {
			d.Events = append(d.Events, Event{Pass: 1, Track: WorkerTrack(0), Kind: KindAdmit, Start: 11, End: 12})
		}, "want root track"},
		{"compute on writer track", func(d *Data) { d.Events[3].Track = WriterTrack(0) }, "non-worker track"},
		{"admit on writer track", func(d *Data) {
			d.Events = append(d.Events, Event{Pass: 1, Track: WriterTrack(2), Kind: KindDrain, Start: 11, End: 12})
		}, "want root track"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := mk()
			tc.mutate(d)
			err := Verify(d)
			if err == nil {
				t.Fatalf("violation accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestVerifyCountsUnclosed(t *testing.T) {
	tr := New()
	b := tr.NewBuf(1, TrackRoot)
	_ = b.Begin(KindPass, 0) // never ended
	tr.Collect(PassMeta{Pass: 1}, b)
	if err := Verify(tr.Data()); err == nil {
		t.Fatalf("trace with an unclosed span verified clean")
	}
}

func TestChromeRoundTrip(t *testing.T) {
	d := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, d); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	got, err := ParseChrome(&buf)
	if err != nil {
		t.Fatalf("ParseChrome: %v", err)
	}
	if err := Verify(got); err != nil {
		t.Fatalf("round-tripped trace fails verification: %v", err)
	}
	if len(got.Events) != len(d.Events) {
		t.Fatalf("round trip lost events: got %d, want %d", len(got.Events), len(d.Events))
	}
	if len(got.Passes) != 1 || got.Passes[0].Owner != "sess-a" {
		t.Fatalf("round trip lost pass metadata: %+v", got.Passes)
	}
	var wantBytes, gotBytes int64
	for _, ev := range d.Events {
		wantBytes += ev.Bytes
	}
	for _, ev := range got.Events {
		gotBytes += ev.Bytes
	}
	if wantBytes != gotBytes {
		t.Fatalf("round trip changed byte totals: got %d, want %d", gotBytes, wantBytes)
	}
}

func TestChromeMergesEngines(t *testing.T) {
	d := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, d, d); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	s := buf.String()
	if !strings.Contains(s, "engine 0 pass 1") || !strings.Contains(s, "engine 1 pass 1") {
		t.Fatalf("merged export missing per-engine process names:\n%s", s)
	}
}

func TestRegistryWriteTo(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flashr_test_ops_total", "Ops.", Label{"kind", "read"})
	c.Add(3)
	r.GaugeFunc("flashr_test_depth", "Depth.", func() float64 { return 2.5 })
	h := NewHistogram(0.001, 0.01, 0.1)
	h.Observe(0.005)
	h.Observe(0.5)
	r.AddHistogram("flashr_test_latency_seconds", "Latency.", h, Label{"drive", "0"})

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE flashr_test_ops_total counter",
		`flashr_test_ops_total{kind="read"} 3`,
		"# TYPE flashr_test_depth gauge",
		"flashr_test_depth 2.5",
		"# TYPE flashr_test_latency_seconds histogram",
		`flashr_test_latency_seconds_bucket{drive="0",le="0.001"} 0`,
		`flashr_test_latency_seconds_bucket{drive="0",le="0.01"} 1`,
		`flashr_test_latency_seconds_bucket{drive="0",le="+Inf"} 2`,
		`flashr_test_latency_seconds_count{drive="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshotAndInclude(t *testing.T) {
	child := NewRegistry()
	child.Counter("flashr_parts_total", "Parts.").Add(7)
	parent := NewRegistry()
	parent.Counter("flashr_parts_total", "Parts.").Add(11)
	parent.Include(child, Label{"owner", "sess-a"})

	snap := parent.Snapshot()
	if got := snap["flashr_parts_total"]; got != 11 {
		t.Errorf("parent series = %v, want 11", got)
	}
	if got := snap[`flashr_parts_total{owner="sess-a"}`]; got != 7 {
		t.Errorf("included series = %v, want 7", got)
	}

	var buf bytes.Buffer
	if _, err := parent.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n := strings.Count(buf.String(), "# TYPE flashr_parts_total"); n != 1 {
		t.Errorf("merged family emitted %d TYPE lines, want 1:\n%s", n, buf.String())
	}
}

func TestRegistryOnCollectConsistency(t *testing.T) {
	// Two counters derived from one two-field source must always agree within
	// a snapshot; the OnCollect hook caches the source once per collection.
	type src struct{ a, b int64 }
	var mu sync.Mutex
	live := src{}
	var cached src
	r := NewRegistry()
	r.OnCollect(func() { mu.Lock(); cached = live; mu.Unlock() })
	r.CounterFunc("flashr_a_total", "A.", func() float64 { return float64(cached.a) })
	r.CounterFunc("flashr_b_total", "B.", func() float64 { return float64(cached.b) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			live.a++
			live.b++
			mu.Unlock()
		}
	}()
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()
		if snap["flashr_a_total"] != snap["flashr_b_total"] {
			t.Fatalf("torn snapshot: a=%v b=%v", snap["flashr_a_total"], snap["flashr_b_total"])
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	var want float64
	for i := 0; i < 200; i++ {
		want += float64(i)
	}
	want *= 8 * 5
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}
