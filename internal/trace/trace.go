// Package trace is the execution-tracing and metrics subsystem of the
// FlashR engine: structured spans over the materialization path (pass →
// super-task → read/compute/write-back) and a registry of counters, gauges,
// and histograms exportable in Prometheus text format.
//
// The design is dictated by the execution model it instruments. A
// materialization pass is one orchestrating goroutine plus a set of worker
// goroutines and write-behind lanes, each a strictly sequential execution
// lane. Every lane records its spans into its own Buf — single-owner, append
// only, no locks, no interface boxing — and the pass stitches the buffers
// into the Tracer once, after the lane quiesces. Disabled tracing is a nil
// *Buf: Begin and End are nil-receiver no-ops, so the hot path costs one
// branch and zero allocations (pinned by TestSpanHotPathZeroAlloc).
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies a span within the per-pass taxonomy.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it never appears in a valid trace.
	KindInvalid Kind = iota
	// KindPass is the root span of one materialization pass.
	KindPass
	// KindAdmit covers the wait in the engine's pass-admission arbiter.
	KindAdmit
	// KindCacheLookup covers the plan phase: intern-table work, result-cache
	// lookups, and DAG construction (includes any wait for the plan lock).
	KindCacheLookup
	// KindPublish covers the publication phase: result-cache inserts and
	// duplicate-sink payload copies.
	KindPublish
	// KindSuperTask is one scheduler dispatch unit (a contiguous partition
	// range) on a worker.
	KindSuperTask
	// KindRead covers loading one partition's leaf data (prefetch wait plus
	// synchronous fallback reads). Bytes carries the bytes loaded, N the
	// leaf-partition loads — both mirror MaterializeStats exactly.
	KindRead
	// KindCompute covers one partition's Pcache chunk loop (N = chunks).
	KindCompute
	// KindWriteBack covers persisting one partition's tall outputs: on a
	// worker track it is the synchronous write or the enqueue stall; on a
	// writer track it is one async write-behind job. Bytes is set only where
	// the bytes are actually written, so summing over all KindWriteBack
	// spans equals MaterializeStats.BytesWritten.
	KindWriteBack
	// KindDrain covers the end-of-pass write-behind drain barrier.
	KindDrain
	// KindRewrite covers the algebraic DAG rewrite pass inside planning
	// (N = rule applications). It nests inside KindCacheLookup: rewriting
	// runs before any signature is interned for cache lookups.
	KindRewrite
	// KindShard covers a pass's sharded execution phase on the coordinator:
	// program encoding, leaf pushes, worker fan-out, and partial combining.
	// Bytes carries the wire bytes exchanged, N the aggregation rounds.
	KindShard
	// KindRecover covers worker recovery during a sharded pass: re-hello,
	// registry re-push, and lineage replay after an epoch-fence rejection.
	// N carries the number of recoveries the pass absorbed.
	KindRecover
	kindCount
)

var kindNames = [...]string{
	KindInvalid:     "invalid",
	KindPass:        "pass",
	KindAdmit:       "admit",
	KindCacheLookup: "cache-lookup",
	KindPublish:     "publish",
	KindSuperTask:   "super-task",
	KindRead:        "read",
	KindCompute:     "compute",
	KindWriteBack:   "write-back",
	KindDrain:       "drain",
	KindRewrite:     "rewrite",
	KindShard:       "shard-exec",
	KindRecover:     "shard-recover",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromString inverts Kind.String (Chrome JSON round-trips by name).
func KindFromString(s string) Kind {
	for k, n := range kindNames {
		if n == s {
			return Kind(k)
		}
	}
	return KindInvalid
}

// Track layout. Every span lives on one track of its pass: the root track is
// the pass's orchestrating goroutine, worker tracks are the compute workers,
// writer tracks are the write-behind lanes. Tracks are execution lanes, so
// spans on one track are strictly nested or disjoint — the invariant Verify
// enforces.
const (
	// TrackRoot is the pass's orchestrating goroutine.
	TrackRoot int32 = 0
	// writerBase offsets write-behind lane tracks past any realistic worker
	// count.
	writerBase int32 = 1 << 10
)

// WorkerTrack returns the track of compute worker i.
func WorkerTrack(i int) int32 { return 1 + int32(i) }

// WriterTrack returns the track of write-behind lane i.
func WriterTrack(i int) int32 { return writerBase + int32(i) }

// IsWorkerTrack reports whether t is a compute-worker track.
func IsWorkerTrack(t int32) bool { return t >= 1 && t < writerBase }

// IsWriterTrack reports whether t is a write-behind lane track.
func IsWriterTrack(t int32) bool { return t >= writerBase }

// TrackName renders a track for export.
func TrackName(t int32) string {
	switch {
	case t == TrackRoot:
		return "pass"
	case IsWriterTrack(t):
		return fmt.Sprintf("writer %d", t-writerBase)
	default:
		return fmt.Sprintf("worker %d", t-1)
	}
}

// Event is one closed span. Start and End are nanoseconds since the tracer's
// epoch.
type Event struct {
	Pass  int64
	Track int32
	Kind  Kind
	Start int64
	End   int64
	// Arg identifies the span's subject (partition or task index, lane id).
	Arg int64
	// Bytes and N carry span-kind-specific counters (see the Kind docs).
	Bytes int64
	N     int64
}

// Dur returns the span duration.
func (e Event) Dur() time.Duration { return time.Duration(e.End - e.Start) }

// Span is the open-span token returned by Buf.Begin and consumed by Buf.End.
// It is a plain value held on the caller's stack; the caller may set Bytes
// and N between Begin and End. A zero Span (from a nil Buf) is inert.
type Span struct {
	Bytes int64
	N     int64

	kind  Kind
	arg   int64
	start int64
	open  bool
}

// PassMeta is the identity of one recorded pass.
type PassMeta struct {
	Pass  int64  `json:"pass"`
	Owner string `json:"owner,omitempty"`
	// Batch labels the request batch a serving front-end coalesced into
	// this pass (empty for passes submitted outside one).
	Batch string `json:"batch,omitempty"`
}

// Buf is a single-owner span buffer: one per execution lane (the pass's own
// goroutine, each worker, each write-behind lane). Methods are nil-receiver
// safe — a nil *Buf is the disabled-tracing fast path and costs one branch.
// A Buf must only ever be appended to by one goroutine at a time; ownership
// hand-offs (write-behind lanes) must be synchronized by the caller.
type Buf struct {
	tr     *Tracer
	pass   int64
	track  int32
	opens  int
	events []Event
}

// Begin opens a span of the given kind. arg identifies the subject
// (partition index, task index, lane id — by Kind convention).
func (b *Buf) Begin(kind Kind, arg int64) Span {
	if b == nil {
		return Span{}
	}
	b.opens++
	return Span{kind: kind, arg: arg, start: b.tr.now(), open: true}
}

// End closes a span opened by Begin on this Buf, recording it as an Event.
// Ending a zero Span (nil-Buf Begin) is a no-op.
func (b *Buf) End(sp Span) {
	if b == nil || !sp.open {
		return
	}
	b.opens--
	b.events = append(b.events, Event{
		Pass: b.pass, Track: b.track, Kind: sp.kind,
		Start: sp.start, End: b.tr.now(),
		Arg: sp.arg, Bytes: sp.Bytes, N: sp.N,
	})
}

// Len returns the number of closed spans buffered (tests).
func (b *Buf) Len() int {
	if b == nil {
		return 0
	}
	return len(b.events)
}

// Tracer collects spans and pass metadata for one engine. All mutation after
// construction happens through Collect (mutex-guarded); the per-lane Bufs
// are lock-free by ownership.
type Tracer struct {
	epoch time.Time

	mu       sync.Mutex
	events   []Event
	passes   []PassMeta
	unclosed int
}

// New creates a tracer whose span timestamps count from now.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

func (t *Tracer) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// NewBuf creates a span buffer for one execution lane of one pass. A nil
// tracer returns a nil Buf, which is the valid disabled state.
func (t *Tracer) NewBuf(pass int64, track int32) *Buf {
	if t == nil {
		return nil
	}
	return &Buf{tr: t, pass: pass, track: track}
}

// Collect stitches a finished pass's lane buffers into the tracer. Every
// lane must have quiesced (no goroutine still appending). Buffers are
// consumed; spans left open at collection are counted so Verify can fail the
// trace. Nil buffers are skipped.
func (t *Tracer) Collect(meta PassMeta, bufs ...*Buf) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.passes = append(t.passes, meta)
	for _, b := range bufs {
		if b == nil {
			continue
		}
		t.events = append(t.events, b.events...)
		t.unclosed += b.opens
		b.events, b.opens = nil, 0
	}
}

// Data is an immutable snapshot of a tracer's collected trace.
type Data struct {
	Events []Event
	Passes []PassMeta
	// Unclosed counts spans that were begun but never ended by collection
	// time; a well-formed trace has zero.
	Unclosed int
}

// Data snapshots everything collected so far.
func (t *Tracer) Data() *Data {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &Data{
		Events:   append([]Event(nil), t.events...),
		Passes:   append([]PassMeta(nil), t.passes...),
		Unclosed: t.unclosed,
	}
	return d
}
