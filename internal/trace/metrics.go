package trace

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics half of the package: a small registry of counters, gauges, and
// histograms rendered in the Prometheus text exposition format. The engine,
// the SAFS array, and the NUMA topology register their counters here so one
// `flashr-info -metrics` snapshot (or the -debug-addr HTTP endpoint) covers
// the whole stack, with MaterializeStats subsumed as counter families rather
// than duplicated by hand.

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// metricType is the TYPE line vocabulary.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// sample is one labeled series within a family.
type sample struct {
	labels []Label
	read   func() float64 // counters and gauges
	hist   *Histogram     // histograms
}

// family groups all series sharing one metric name.
type family struct {
	name string
	help string
	typ  metricType
	// samples from this registry, in registration order.
	samples []sample
}

// Registry holds metric families and renders consistent snapshots. A
// collection (WriteTo or Snapshot) first runs the OnCollect hooks under the
// registry lock, so a hook can cache one coherent source-struct snapshot that
// every registered reader function then consults — the mechanism that keeps
// multi-field sources (e.g. MaterializeStats) from being read torn while the
// source is concurrently updated.
type Registry struct {
	mu       sync.Mutex
	fams     map[string]*family
	order    []string
	hooks    []func()
	includes []include
}

// include is a child registry merged into this one at render time.
type include struct {
	reg    *Registry
	labels []Label
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) register(name, help string, typ metricType, s sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("trace: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.samples = append(f.samples, s)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns a new counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, sample{labels: labels, read: func() float64 { return float64(c.Value()) }})
	return c
}

// CounterFunc registers a counter series backed by a read function. The
// function is called under the registry lock, after the OnCollect hooks.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, typeCounter, sample{labels: labels, read: f})
}

// GaugeFunc registers a gauge series backed by a read function.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.register(name, help, typeGauge, sample{labels: labels, read: f})
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe. Bucket
// counts are atomics; the sum is a CAS-updated float bit pattern.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	total  atomic.Int64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("trace: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// AddHistogram registers an existing histogram as a series. Components that
// live below the registry (SAFS drives) create their histograms at
// construction and adopt them into a registry later.
func (r *Registry) AddHistogram(name, help string, h *Histogram, labels ...Label) {
	r.register(name, help, typeHistogram, sample{labels: labels, hist: h})
}

// OnCollect registers a hook run under the registry lock at the start of
// every WriteTo/Snapshot, before any series is read. Hooks cache coherent
// snapshots of multi-field sources (see Registry doc).
func (r *Registry) OnCollect(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, f)
}

// Include merges another registry's families into this one at render time,
// adding the given labels to every included series. Same-named families must
// have the same type.
func (r *Registry) Include(other *Registry, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.includes = append(r.includes, include{reg: other, labels: labels})
}

// renderFamily is a family plus the extra labels its registry was included
// with.
type renderFamily struct {
	fam   *family
	extra []Label
}

// collect locks the registry tree, runs all hooks, and returns the families
// in a stable merged order. The caller must call the returned release func
// when done reading series.
func (r *Registry) collect() (fams []renderFamily, release func()) {
	var locked []*Registry
	var walk func(reg *Registry, extra []Label)
	byName := map[string]int{}
	var out []renderFamily
	walk = func(reg *Registry, extra []Label) {
		reg.mu.Lock()
		locked = append(locked, reg)
		for _, h := range reg.hooks {
			h()
		}
		for _, name := range reg.order {
			f := reg.fams[name]
			if i, ok := byName[name]; ok {
				if out[i].fam.typ != f.typ {
					panic(fmt.Sprintf("trace: metric %q included as both %s and %s", name, out[i].fam.typ, f.typ))
				}
				// Merge into a synthetic family so TYPE lines stay unique.
				merged := &family{name: f.name, help: out[i].fam.help, typ: f.typ}
				prev := out[i]
				for _, s := range prev.fam.samples {
					merged.samples = append(merged.samples, sample{
						labels: append(append([]Label(nil), prev.extra...), s.labels...),
						read:   s.read, hist: s.hist,
					})
				}
				for _, s := range f.samples {
					merged.samples = append(merged.samples, sample{
						labels: append(append([]Label(nil), extra...), s.labels...),
						read:   s.read, hist: s.hist,
					})
				}
				out[i] = renderFamily{fam: merged}
				continue
			}
			byName[name] = len(out)
			out = append(out, renderFamily{fam: f, extra: extra})
		}
		for _, inc := range reg.includes {
			walk(inc.reg, append(append([]Label(nil), extra...), inc.labels...))
		}
	}
	walk(r, nil)
	return out, func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].mu.Unlock()
		}
	}
}

// renderLabels formats a label set, with optional extra le label appended.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteTo renders a consistent snapshot of the registry (and everything it
// Includes) in the Prometheus text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	fams, release := r.collect()
	defer release()
	var n int64
	emit := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	for _, rf := range fams {
		f := rf.fam
		if err := emit("# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return n, err
		}
		for _, s := range f.samples {
			labels := append(append([]Label(nil), rf.extra...), s.labels...)
			if f.typ == typeHistogram {
				h := s.hist
				cum := int64(0)
				for i, ub := range h.bounds {
					cum += h.counts[i].Load()
					if err := emit("%s_bucket%s %d\n", f.name,
						renderLabels(labels, Label{"le", formatValue(ub)}), cum); err != nil {
						return n, err
					}
				}
				if err := emit("%s_bucket%s %d\n", f.name,
					renderLabels(labels, Label{"le", "+Inf"}), h.Count()); err != nil {
					return n, err
				}
				if err := emit("%s_sum%s %s\n%s_count%s %d\n",
					f.name, renderLabels(labels), formatValue(h.Sum()),
					f.name, renderLabels(labels), h.Count()); err != nil {
					return n, err
				}
				continue
			}
			if err := emit("%s%s %s\n", f.name, renderLabels(labels), formatValue(s.read())); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// Snapshot returns every scalar series as a map keyed "name{k="v",...}"
// (labels in registered order; no braces when unlabeled). Histograms
// contribute name_sum and name_count entries.
func (r *Registry) Snapshot() map[string]float64 {
	fams, release := r.collect()
	defer release()
	out := make(map[string]float64)
	for _, rf := range fams {
		f := rf.fam
		for _, s := range f.samples {
			labels := append(append([]Label(nil), rf.extra...), s.labels...)
			key := f.name + renderLabels(labels)
			if f.typ == typeHistogram {
				out[f.name+"_sum"+renderLabels(labels)] = s.hist.Sum()
				out[f.name+"_count"+renderLabels(labels)] = float64(s.hist.Count())
				continue
			}
			out[key] = s.read()
		}
	}
	return out
}

// Handler serves the registry as a text-format metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := r.WriteTo(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// SortedKeys returns a snapshot's keys sorted, for deterministic test output.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
