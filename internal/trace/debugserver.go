package trace

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugServer is the shared -debug-addr implementation of the cmd tools and
// flashr-serve: a live /metrics endpoint over a Registry plus the
// /debug/pprof/ handlers, on its own listener and mux so it never collides
// with an application's default mux. Unlike a fire-and-forget
// http.ListenAndServe goroutine, construction binds the listener
// synchronously — a taken port is reported as an error to the caller instead
// of a message lost inside a goroutine — and Close releases the port, so the
// owning session or engine can tear it down on shutdown.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	closed bool
	err    error
}

// StartDebugServer binds addr and serves /metrics (from metrics — typically
// Handler(reg), but any live source works), /healthz, and /debug/pprof/ until
// Close. It returns an error if the address cannot be bound (port taken, bad
// address) rather than failing silently in the background. metrics may be
// nil, in which case /metrics serves 404.
func StartDebugServer(addr string, metrics http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace: debug server: %w", err)
	}
	mux := http.NewServeMux()
	if metrics != nil {
		mux.Handle("/metrics", metrics)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		err := ds.srv.Serve(ln)
		ds.mu.Lock()
		if !ds.closed && err != http.ErrServerClosed {
			ds.err = err
		}
		ds.mu.Unlock()
	}()
	return ds, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ds *DebugServer) Addr() string { return ds.ln.Addr().String() }

// Close stops serving and releases the listener. It returns the first serve
// error that occurred before Close, if any.
func (ds *DebugServer) Close() error {
	ds.mu.Lock()
	if ds.closed {
		err := ds.err
		ds.mu.Unlock()
		return err
	}
	ds.closed = true
	ds.mu.Unlock()
	ds.srv.Close()
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.err
}
