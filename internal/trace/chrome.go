package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Chrome trace_event export: the JSON Object Format understood by
// chrome://tracing and Perfetto. Every closed span becomes one complete
// event (ph "X"); pass identity maps to pid and track to tid, with metadata
// events naming both, so the viewer shows one process per pass with its
// lanes as threads and owners in the process names.

// passPidStride separates the pid namespaces of multiple Data values merged
// into one file (e.g. the IM and EM engines of one benchmark run).
const passPidStride = 1 << 20

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChrome writes one or more traces as Chrome trace_event JSON. Each
// Data value gets its own pid namespace so pass ids from different engines
// cannot collide.
func WriteChrome(w io.Writer, datas ...*Data) error {
	var f chromeFile
	for di, d := range datas {
		if d == nil {
			continue
		}
		base := int64(di) * passPidStride
		for _, m := range d.Passes {
			name := fmt.Sprintf("pass %d", m.Pass)
			if m.Owner != "" {
				name += fmt.Sprintf(" owner=%s", m.Owner)
			}
			if m.Batch != "" {
				name += fmt.Sprintf(" batch=%s", m.Batch)
			}
			if len(datas) > 1 {
				name = fmt.Sprintf("engine %d %s", di, name)
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: base + m.Pass,
				Args: map[string]any{"name": name, "owner": m.Owner, "batch": m.Batch},
			})
		}
		tracks := map[[2]int64]bool{}
		for _, ev := range d.Events {
			key := [2]int64{ev.Pass, int64(ev.Track)}
			if !tracks[key] {
				tracks[key] = true
				f.TraceEvents = append(f.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: base + ev.Pass, Tid: int64(ev.Track),
					Args: map[string]any{"name": TrackName(ev.Track)},
				})
			}
			dur := float64(ev.End-ev.Start) / 1e3
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("%s %d", ev.Kind, ev.Arg),
				Cat:  ev.Kind.String(),
				Ph:   "X",
				Ts:   float64(ev.Start) / 1e3,
				Dur:  &dur,
				Pid:  base + ev.Pass,
				Tid:  int64(ev.Track),
				Args: map[string]any{"arg": ev.Arg, "bytes": ev.Bytes, "n": ev.N},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ParseChrome reads Chrome trace_event JSON produced by WriteChrome back into
// a Data, for round-trip validation with Verify. Only single-Data files
// round-trip pass ids exactly; merged files keep each engine's passes
// distinct under their pid-stride offsets, so Verify still sees one root
// per pass.
func ParseChrome(r io.Reader) (*Data, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: parsing chrome JSON: %w", err)
	}
	d := &Data{}
	seenPass := map[int64]bool{}
	for _, ce := range f.TraceEvents {
		pass := ce.Pid
		switch ce.Ph {
		case "M":
			if ce.Name != "process_name" {
				continue
			}
			if seenPass[pass] {
				continue
			}
			seenPass[pass] = true
			owner, _ := ce.Args["owner"].(string)
			batch, _ := ce.Args["batch"].(string)
			d.Passes = append(d.Passes, PassMeta{Pass: pass, Owner: owner, Batch: batch})
		case "X":
			k := KindFromString(ce.Cat)
			if k == KindInvalid {
				return nil, fmt.Errorf("trace: event %q has unknown category %q", ce.Name, ce.Cat)
			}
			var dur float64
			if ce.Dur != nil {
				dur = *ce.Dur
			}
			start := int64(math.Round(ce.Ts * 1e3))
			end := int64(math.Round((ce.Ts + dur) * 1e3))
			ev := Event{Pass: pass, Track: int32(ce.Tid), Kind: k, Start: start, End: end}
			if v, ok := ce.Args["arg"].(float64); ok {
				ev.Arg = int64(v)
			}
			if v, ok := ce.Args["bytes"].(float64); ok {
				ev.Bytes = int64(v)
			}
			if v, ok := ce.Args["n"].(float64); ok {
				ev.N = int64(v)
			}
			d.Events = append(d.Events, ev)
		}
	}
	sort.Slice(d.Passes, func(i, j int) bool { return d.Passes[i].Pass < d.Passes[j].Pass })
	return d, nil
}
