package trace

import (
	"fmt"
	"sort"
)

// Verify checks the well-formedness invariants every collected trace must
// satisfy. It is the enforcement half of the tracing subsystem: the invariant
// suite runs it over traces of seeded random DAG programs, and the trace-smoke
// CI step runs it over exported-and-reparsed Chrome JSON.
//
// The invariants:
//
//  1. Every span was closed: Data.Unclosed is zero and every event has
//     0 ≤ Start ≤ End and a valid Kind.
//  2. Single root: each pass id has exactly one KindPass span, on the root
//     track, and every other span of the pass nests inside its interval.
//  3. Stack discipline per (pass, track): a track is one sequential execution
//     lane, so any two of its spans are strictly nested or disjoint — never
//     partially overlapping. This is the "per-worker spans non-overlapping"
//     invariant: two same-level spans on one worker cannot intersect.
//  4. Taxonomy: KindPass/KindAdmit/KindCacheLookup/KindPublish/KindDrain live
//     on the root track only; KindSuperTask lives on worker tracks only, and
//     every KindRead/KindCompute (and worker-side KindWriteBack) span nests
//     inside a KindSuperTask on its track; writer tracks carry only
//     KindWriteBack spans.
func Verify(d *Data) error {
	if d == nil {
		return fmt.Errorf("trace: nil data")
	}
	if d.Unclosed != 0 {
		return fmt.Errorf("trace: %d spans begun but never ended", d.Unclosed)
	}
	byPass := make(map[int64][]Event)
	for i, ev := range d.Events {
		if ev.Kind == KindInvalid || ev.Kind >= kindCount {
			return fmt.Errorf("trace: event %d has invalid kind %d", i, ev.Kind)
		}
		if ev.Start < 0 || ev.End < ev.Start {
			return fmt.Errorf("trace: event %d (%v pass %d) has interval [%d,%d]",
				i, ev.Kind, ev.Pass, ev.Start, ev.End)
		}
		byPass[ev.Pass] = append(byPass[ev.Pass], ev)
	}
	for pass, evs := range byPass {
		if err := verifyPass(pass, evs); err != nil {
			return err
		}
	}
	return nil
}

func verifyPass(pass int64, evs []Event) error {
	var root *Event
	for i := range evs {
		ev := &evs[i]
		if ev.Kind != KindPass {
			continue
		}
		if root != nil {
			return fmt.Errorf("trace: pass %d has more than one root span", pass)
		}
		if ev.Track != TrackRoot {
			return fmt.Errorf("trace: pass %d root span on track %d, want root track", pass, ev.Track)
		}
		root = ev
	}
	if root == nil {
		return fmt.Errorf("trace: pass %d has no root span", pass)
	}
	byTrack := make(map[int32][]Event)
	for _, ev := range evs {
		if ev.Kind != KindPass && (ev.Start < root.Start || ev.End > root.End) {
			return fmt.Errorf("trace: pass %d: %v span [%d,%d] outside root [%d,%d]",
				pass, ev.Kind, ev.Start, ev.End, root.Start, root.End)
		}
		switch ev.Kind {
		case KindAdmit, KindCacheLookup, KindPublish, KindDrain, KindRewrite, KindShard, KindRecover:
			if ev.Track != TrackRoot {
				return fmt.Errorf("trace: pass %d: %v span on track %d, want root track", pass, ev.Kind, ev.Track)
			}
		case KindSuperTask:
			if !IsWorkerTrack(ev.Track) {
				return fmt.Errorf("trace: pass %d: super-task span on non-worker track %d", pass, ev.Track)
			}
		case KindRead, KindCompute:
			if !IsWorkerTrack(ev.Track) {
				return fmt.Errorf("trace: pass %d: %v span on non-worker track %d", pass, ev.Kind, ev.Track)
			}
		case KindWriteBack:
			if !IsWorkerTrack(ev.Track) && !IsWriterTrack(ev.Track) {
				return fmt.Errorf("trace: pass %d: write-back span on track %d, want worker or writer", pass, ev.Track)
			}
		}
		if IsWriterTrack(ev.Track) && ev.Kind != KindWriteBack {
			return fmt.Errorf("trace: pass %d: %v span on writer track %d", pass, ev.Kind, ev.Track)
		}
		byTrack[ev.Track] = append(byTrack[ev.Track], ev)
	}
	for track, tevs := range byTrack {
		if err := verifyTrack(pass, track, tevs); err != nil {
			return err
		}
	}
	return nil
}

// verifyTrack enforces stack discipline on one (pass, track) lane and, on
// worker tracks, that leaf-phase spans nest inside a super-task.
func verifyTrack(pass int64, track int32, evs []Event) error {
	// Sort by start ascending; ties put the longer (enclosing) span first.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		return evs[i].End > evs[j].End
	})
	var stack []Event
	for _, ev := range evs {
		for len(stack) > 0 && ev.Start >= stack[len(stack)-1].End {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 && ev.End > stack[len(stack)-1].End {
			top := stack[len(stack)-1]
			return fmt.Errorf("trace: pass %d track %d: %v span [%d,%d] partially overlaps %v span [%d,%d]",
				pass, track, ev.Kind, ev.Start, ev.End, top.Kind, top.Start, top.End)
		}
		if IsWorkerTrack(track) {
			switch ev.Kind {
			case KindRead, KindCompute, KindWriteBack:
				inSuper := false
				for _, s := range stack {
					if s.Kind == KindSuperTask {
						inSuper = true
						break
					}
				}
				if !inSuper {
					return fmt.Errorf("trace: pass %d track %d: %v span [%d,%d] outside any super-task",
						pass, track, ev.Kind, ev.Start, ev.End)
				}
			}
		}
		stack = append(stack, ev)
	}
	return nil
}
