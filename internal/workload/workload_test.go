package workload

import (
	"math"
	"testing"

	flashr "repro"
	"repro/ml"
)

func session(t *testing.T) *flashr.Session {
	t.Helper()
	s, err := flashr.NewSession(flashr.Options{Workers: 2, PartRows: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCriteoShapeAndLabels(t *testing.T) {
	s := session(t)
	x, y, err := Criteo(s, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := x.Dim(); r != 20000 || c != CriteoCols {
		t.Fatalf("x dims %dx%d", r, c)
	}
	if r, c := y.Dim(); r != 20000 || c != 1 {
		t.Fatalf("y dims %dx%d", r, c)
	}
	// Labels are 0/1 with a plausible click rate.
	keys, _, err := flashr.TableOf(y)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != 0 || keys[1] != 1 {
		t.Fatalf("label values %v", keys)
	}
	rate, err := flashr.Mean(y).Float()
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.05 || rate > 0.8 {
		t.Fatalf("click rate %g", rate)
	}
	// Count features (cols 0..12) are non-negative.
	mn, err := flashr.Min(GetColsHelper(x, 0, 13)).Float()
	if err != nil {
		t.Fatal(err)
	}
	if mn < 0 {
		t.Fatalf("count feature below zero: %g", mn)
	}
}

// GetColsHelper selects columns [lo,hi).
func GetColsHelper(x *flashr.FM, lo, hi int) *flashr.FM {
	cols := make([]int, 0, hi-lo)
	for c := lo; c < hi; c++ {
		cols = append(cols, c)
	}
	return flashr.GetCols(x, cols)
}

// TestCriteoLabelsLearnable: the ground-truth logistic model means a
// classifier must beat the base rate substantially.
func TestCriteoLabelsLearnable(t *testing.T) {
	s := session(t)
	x, y, err := Criteo(s, 30000, 2)
	if err != nil {
		t.Fatal(err)
	}
	xb := flashr.Cbind(x, s.Ones(x.NRow(), 1))
	m, err := ml.LogisticRegressionLBFGS(s, xb, y, ml.LogisticOptions{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := ml.Accuracy(m.Predict(s, xb), y)
	if err != nil {
		t.Fatal(err)
	}
	rate, _ := flashr.Mean(y).Float()
	base := math.Max(rate, 1-rate)
	if acc < base+0.03 {
		t.Fatalf("accuracy %g barely beats base rate %g — labels carry no signal", acc, base)
	}
}

func TestCriteoDeterministic(t *testing.T) {
	s := session(t)
	x1, y1, err := Criteo(s, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	x2, y2, err := Criteo(s, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d := flashr.Max(flashr.Abs(flashr.Sub(x1, x2))).MustFloat(); d != 0 {
		t.Fatalf("features differ across identical seeds: %g", d)
	}
	if d := flashr.Max(flashr.Abs(flashr.Sub(y1, y2))).MustFloat(); d != 0 {
		t.Fatalf("labels differ across identical seeds: %g", d)
	}
	// Different seed differs.
	x3, _, err := Criteo(s, 5000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d := flashr.Max(flashr.Abs(flashr.Sub(x1, x3))).MustFloat(); d == 0 {
		t.Fatal("different seeds produced identical data")
	}
}

// TestPageGraphSpectralShape: per-dimension scale must decay like a spectral
// embedding, and k-means must find meaningful clusters.
func TestPageGraphSpectralShape(t *testing.T) {
	s := session(t)
	x, err := PageGraph(s, 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := x.Dim(); r != 30000 || c != PageGraphCols {
		t.Fatalf("dims %dx%d", r, c)
	}
	// Column variances decay: dim 0 much larger than dim 31.
	mean, err := flashr.ColMeans(x).AsVector()
	if err != nil {
		t.Fatal(err)
	}
	sq, err := flashr.ColMeans(flashr.Square(x)).AsVector()
	if err != nil {
		t.Fatal(err)
	}
	var0 := sq[0] - mean[0]*mean[0]
	var31 := sq[31] - mean[31]*mean[31]
	if var0 < 20*var31 {
		t.Fatalf("no spectral decay: var0=%g var31=%g", var0, var31)
	}
	// K-means finds clusters far better than random: objective with k=10
	// centers must be well below the k=1 objective.
	res10, err := ml.KMeans(s, x, 10, ml.KMeansOptions{MaxIter: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := ml.KMeans(s, x, 1, ml.KMeansOptions{MaxIter: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res10.Objective > 0.8*res1.Objective {
		t.Fatalf("k=10 objective %g vs k=1 %g — no cluster structure", res10.Objective, res1.Objective)
	}
	res10.Assign.Free()
	res1.Assign.Free()
}

func TestGaussianBlobs(t *testing.T) {
	s := session(t)
	x, y, err := GaussianBlobs(s, 10000, 5, 3, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := x.Dim(); r != 10000 || c != 5 {
		t.Fatalf("dims %dx%d", r, c)
	}
	keys, counts, err := flashr.TableOf(y)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("labels %v", keys)
	}
	for _, c := range counts {
		if c < 2000 {
			t.Fatalf("unbalanced labels %v", counts)
		}
	}
}
