// Package workload synthesizes the paper's benchmark datasets (Table 5) at
// configurable scale. The originals — the Criteo 1TB click logs (4.3B×40)
// and PageGraph-32ev, 32 singular vectors of a 3.5-billion-vertex web graph
// — are not redistributable, so per the reproduction's substitution rule
// this package generates matrices with the same shapes and the statistical
// structure the benchmarked algorithms actually consume:
//
//   - Criteo(n): 40 columns — 13 skewed (log-normal) count features and 27
//     hashed-categorical features — plus a binary click label generated from
//     a ground-truth logistic model over the features, so classification
//     algorithms have real signal to find.
//   - PageGraph(n): 32 columns shaped like a spectral embedding of a
//     power-law graph: a Gaussian mixture (clustered communities) with
//     per-dimension decaying scale σ_j ∝ 1/(j+1), mirroring the decaying
//     singular-value spectrum of web graphs.
//
// Generators stream partition-parallel through the engine, so billion-row
// shapes can be written straight to the SSD array without staging in memory.
package workload

import (
	"math"
	"math/rand"

	flashr "repro"
)

// CriteoCols is the column count of the Criteo click-log dataset.
const CriteoCols = 40

// PageGraphCols is the column count of the PageGraph-32ev dataset.
const PageGraphCols = 32

// criteoWeights is the fixed ground-truth logistic model behind the labels.
func criteoWeights() []float64 {
	rng := rand.New(rand.NewSource(9001))
	w := make([]float64, CriteoCols)
	for j := range w {
		w[j] = rng.NormFloat64() * 0.4
	}
	return w
}

// Criteo generates an n×40 feature matrix and the matching n×1 binary click
// labels.
func Criteo(s *flashr.Session, n int64, seed int64) (x, y *flashr.FM, err error) {
	w := criteoWeights()
	x, err = s.GenerateSeeded(n, CriteoCols, seed, fillCriteoRow)
	if err != nil {
		return nil, nil, err
	}
	// Labels derive deterministically from the same per-row stream, so x
	// and y stay consistent across partitions and sessions.
	y, err = s.GenerateSeeded(n, 1, seed, func(rng *rand.Rand, row []float64) {
		feat := make([]float64, CriteoCols)
		fillCriteoRow(rng, feat)
		var z float64
		for j, v := range feat {
			// Center features so the logit has usable variance; the
			// scale keeps Bayes accuracy well above the base rate while
			// the offset calibrates a ~30% click rate.
			z += w[j] * (v - 0.5)
		}
		z = 2.5*z - 0.9
		p := 1 / (1 + math.Exp(-z))
		if rng.Float64() < p {
			row[0] = 1
		} else {
			row[0] = 0
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// fillCriteoRow writes one synthetic click-log row: 13 log-normal counts
// then 27 hashed categorical indicators.
func fillCriteoRow(rng *rand.Rand, row []float64) {
	for j := 0; j < 13; j++ {
		row[j] = math.Exp(rng.NormFloat64()) - 1 // log-normal count, ≥ -1+tiny
		if row[j] < 0 {
			row[j] = 0
		}
		row[j] = math.Log1p(row[j]) // the usual count transform
	}
	for j := 13; j < len(row); j++ {
		// Hashed categorical: a small integer bucket, scaled.
		row[j] = float64(rng.Intn(16)) / 15
	}
}

// PageGraph generates an n×32 matrix shaped like the spectral embedding of
// a power-law web graph: k latent communities with decaying per-dimension
// scales.
func PageGraph(s *flashr.Session, n int64, seed int64) (*flashr.FM, error) {
	const k = 10
	centers := pageGraphCenters(k)
	return s.GenerateSeeded(n, PageGraphCols, seed, func(rng *rand.Rand, row []float64) {
		// Zipf-ish community sizes: community c with weight 1/(c+1).
		c := zipfPick(rng, k)
		for j := 0; j < PageGraphCols; j++ {
			scale := 1 / float64(j+1)
			row[j] = centers[c][j] + rng.NormFloat64()*0.3*scale
		}
	})
}

func pageGraphCenters(k int) [][]float64 {
	rng := rand.New(rand.NewSource(7007))
	cs := make([][]float64, k)
	for c := range cs {
		cs[c] = make([]float64, PageGraphCols)
		for j := range cs[c] {
			cs[c][j] = rng.NormFloat64() / float64(j+1)
		}
	}
	return cs
}

func zipfPick(rng *rand.Rand, k int) int {
	var total float64
	for c := 0; c < k; c++ {
		total += 1 / float64(c+1)
	}
	u := rng.Float64() * total
	for c := 0; c < k; c++ {
		u -= 1 / float64(c+1)
		if u <= 0 {
			return c
		}
	}
	return k - 1
}

// GaussianBlobs generates n points around k well-separated centers in p
// dimensions plus the 0-based component labels — the generic clustering /
// classification workload used by tests and the Fig. 9 sweeps.
func GaussianBlobs(s *flashr.Session, n int64, p, k int, sep float64, seed int64) (x, y *flashr.FM, err error) {
	rng := rand.New(rand.NewSource(seed * 31))
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, p)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * sep
		}
	}
	x, err = s.GenerateSeeded(n, p, seed, func(rng *rand.Rand, row []float64) {
		c := rng.Intn(k)
		for j := 0; j < p; j++ {
			row[j] = centers[c][j] + rng.NormFloat64()
		}
	})
	if err != nil {
		return nil, nil, err
	}
	y, err = s.GenerateSeeded(n, 1, seed, func(rng *rand.Rand, row []float64) {
		row[0] = float64(rng.Intn(k))
	})
	if err != nil {
		return nil, nil, err
	}
	return x, y, nil
}
