package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveGemm(m, n, k int, a, b, c []float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] += s
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestGemmMatchesNaive property-tests the blocked kernel against the triple
// loop over random shapes, including non-multiples of the tile size.
func TestGemmMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(150), 1+rng.Intn(150), 1+rng.Intn(150)
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		got := make([]float64, m*n)
		want := make([]float64, m*n)
		Gemm(m, n, k, a, k, b, n, got, n)
		naiveGemm(m, n, k, a, b, want)
		return maxDiff(got, want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelGemmMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n, k := 300, 90, 110
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	serial := make([]float64, m*n)
	par := make([]float64, m*n)
	Gemm(m, n, k, a, k, b, n, serial, n)
	ParallelGemm(4, m, n, k, a, k, b, n, par, n)
	if d := maxDiff(serial, par); d > 1e-9 {
		t.Fatalf("parallel differs by %g", d)
	}
}

func TestGemmTA(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, n, k := 120, 7, 9 // A is m×k, B is m×n, C is k×n
	a := randSlice(rng, m*k)
	b := randSlice(rng, m*n)
	got := make([]float64, k*n)
	GemmTA(m, n, k, a, k, b, n, got, n)
	want := make([]float64, k*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				want[p*n+j] += a[i*k+p] * b[i*n+j]
			}
		}
	}
	if d := maxDiff(got, want); d > 1e-9 {
		t.Fatalf("GemmTA differs by %g", d)
	}
}

func TestGemmTB(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n, k := 80, 11, 6 // A m×k, B n×k, C m×n
	a := randSlice(rng, m*k)
	b := randSlice(rng, n*k)
	got := make([]float64, m*n)
	GemmTB(m, n, k, a, k, b, k, got, n)
	want := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				want[i*n+j] += a[i*k+p] * b[j*k+p]
			}
		}
	}
	if d := maxDiff(got, want); d > 1e-9 {
		t.Fatalf("GemmTB differs by %g", d)
	}
}

func TestSyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, k := 100, 13
	a := randSlice(rng, m*k)
	got := make([]float64, k*k)
	Syrk(m, k, a, k, got, k)
	SymmetrizeLower(k, got, k)
	want := make([]float64, k*k)
	GemmTA(m, k, k, a, k, a, k, want, k)
	if d := maxDiff(got, want); d > 1e-9 {
		t.Fatalf("Syrk differs from GemmTA by %g", d)
	}
}

func TestLevel1(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("Dot=%g", got)
	}
	if got := Nrm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Nrm2=%g", got)
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy=%v", y)
	}
	Scal(0.5, y)
	if y[0] != 3 || y[1] != 4.5 || y[2] != 6 {
		t.Fatalf("Scal=%v", y)
	}
	// Unrolled Dot tail handling.
	a := []float64{1, 1, 1, 1, 1, 1, 1}
	if got := Dot(a, a); got != 7 {
		t.Fatalf("Dot tail=%g", got)
	}
}
