// Package blas provides the dense floating-point kernels FlashR delegates
// floating-point matrix multiplication to (Table 2 of the paper routes f64
// `%*%` to BLAS and integer `%*%` to the generalized inner-product GenOp).
// The paper links ATLAS; under the stdlib-only constraint this package
// implements the needed subset from scratch: cache-blocked, goroutine-
// parallel GEMM and SYRK plus the level-1 routines used around them.
//
// All matrices are row-major. Kernels block over 64×64 tiles with an inner
// k-panel, which keeps the working set inside L1/L2 — the same design point
// as the engine's Pcache partitions.
package blas

import (
	"runtime"
	"sync"
)

// tile is the blocking factor for the level-3 kernels. 64×64 float64 tiles
// are 32 KiB, matching a typical L1 data cache.
const tile = 64

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	var s float64
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s += x[i]*y[i] + x[i+1]*y[i+1] + x[i+2]*y[i+2] + x[i+3]*y[i+3]
	}
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal scales x by alpha in place.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2(x []float64) float64 {
	return sqrt(Dot(x, x))
}

func sqrt(v float64) float64 {
	// Newton iterations seeded by a float bit trick are avoided; math.Sqrt
	// compiles to a single instruction and math is stdlib.
	return mathSqrt(v)
}

// Gemm computes C += A * B where A is m×k, B is k×n, C is m×n, all
// row-major. It runs serially; use ParallelGemm to split across workers.
func Gemm(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if n == 1 && ldb == 1 {
		// GEMV fast path: B is a contiguous column vector.
		col := b[:k]
		for i := 0; i < m; i++ {
			c[i*ldc] += Dot(a[i*lda:i*lda+k], col)
		}
		return
	}
	gemmRange(0, m, n, k, a, lda, b, ldb, c, ldc)
}

// gemmRange computes rows [r0,r1) of C += A*B with tiling over all three
// dimensions.
func gemmRange(r0, r1, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i0 := r0; i0 < r1; i0 += tile {
		iMax := min(i0+tile, r1)
		for k0 := 0; k0 < k; k0 += tile {
			kMax := min(k0+tile, k)
			for j0 := 0; j0 < n; j0 += tile {
				jMax := min(j0+tile, n)
				microKernel(i0, iMax, j0, jMax, k0, kMax, a, lda, b, ldb, c, ldc)
			}
		}
	}
}

// microKernel is the innermost tile product, written so the compiler keeps
// the accumulator rows in registers: for each (i,kk) it streams a row of B.
func microKernel(i0, iMax, j0, jMax, k0, kMax int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := i0; i < iMax; i++ {
		arow := a[i*lda : i*lda+kMax]
		crow := c[i*ldc+j0 : i*ldc+jMax]
		for kk := k0; kk < kMax; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*ldb+j0 : kk*ldb+jMax]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// ParallelGemm computes C += A*B splitting rows of A/C across workers
// goroutines (workers<=0 selects GOMAXPROCS).
func ParallelGemm(workers, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 || m < 2*tile {
		Gemm(m, n, k, a, lda, b, ldb, c, ldc)
		return
	}
	var wg sync.WaitGroup
	step := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * step
		r1 := min(r0+step, m)
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			gemmRange(r0, r1, n, k, a, lda, b, ldb, c, ldc)
		}(r0, r1)
	}
	wg.Wait()
}

// GemmTA computes C += Aᵀ * B where A is m×k, B is m×n and C is k×n; this is
// the crossprod kernel (t(X) %*% Y) the engine accumulates per partition.
func GemmTA(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if n == 1 && ldc == 1 {
		// Gradient-shaped crossprod t(X) %*% r: one AXPY per row.
		col := c[:k]
		for i := 0; i < m; i++ {
			bv := b[i*ldb]
			if bv == 0 {
				continue
			}
			Axpy(bv, a[i*lda:i*lda+k], col)
		}
		return
	}
	for i0 := 0; i0 < m; i0 += tile {
		iMax := min(i0+tile, m)
		for i := i0; i < iMax; i++ {
			arow := a[i*lda : i*lda+k]
			brow := b[i*ldb : i*ldb+n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				crow := c[p*ldc : p*ldc+n]
				for j := 0; j < n; j++ {
					crow[j] += av * brow[j]
				}
			}
		}
	}
}

// GemmTB computes C += A * Bᵀ where A is m×k, B is n×k and C is m×n. This is
// the kernel for X %*% t(C) with a small right operand (e.g. distances to
// cluster centers in k-means before generalization).
func GemmTB(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		arow := a[i*lda : i*lda+k]
		crow := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			crow[j] += Dot(arow, b[j*ldb:j*ldb+k])
		}
	}
}

// Syrk computes C += Aᵀ*A for row-major m×k A into k×k C, using symmetry to
// halve the flops and mirroring the result.
func Syrk(m, k int, a []float64, lda int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		arow := a[i*lda : i*lda+k]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			crow := c[p*ldc : p*ldc+k]
			for j := p; j < k; j++ {
				crow[j] += av * arow[j]
			}
		}
	}
}

// SymmetrizeLower copies the upper triangle of a k×k matrix into the lower
// triangle (completing a Syrk result).
func SymmetrizeLower(k int, c []float64, ldc int) {
	for i := 1; i < k; i++ {
		for j := 0; j < i; j++ {
			c[i*ldc+j] = c[j*ldc+i]
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
