package blas

import "math"

// mathSqrt indirects math.Sqrt so the hot path in Nrm2 stays inlinable.
func mathSqrt(v float64) float64 { return math.Sqrt(v) }
