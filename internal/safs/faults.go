package safs

import (
	"errors"
	"fmt"
	"time"
)

// Faults is a fault-injection profile for a simulated SSD array. A real
// 24-SSD array produces transient bus errors, torn writes, and decayed cells
// as a matter of course; this profile reproduces those failure modes at
// configurable rates so the retry and checksum machinery can be exercised
// deterministically in tests and chaos runs. Install with FS.InjectFaults
// (nil clears). Rates are per piece attempt (one stripe-granular request on
// one drive) and are rolled on a per-drive seeded RNG, so a run with a fixed
// seed and a fixed request order replays the same faults.
type Faults struct {
	// Seed derives each drive's injection RNG (drive i uses Seed ⊕ f(i)).
	Seed int64
	// ReadErrRate is the probability a read attempt fails with a transient
	// ErrInjected (a bus hiccup: the retry path re-reads and recovers).
	ReadErrRate float64
	// WriteErrRate is the transient-failure probability for write attempts.
	WriteErrRate float64
	// FlipBitRate is the probability a read attempt returns data with one
	// flipped bit (transfer corruption). With checksums enabled the flip is
	// detected and the retry re-reads clean data; without checksums it
	// silently corrupts the caller's buffer — the case checksums exist for.
	FlipBitRate float64
	// DropWriteRate is the probability a write is silently dropped (a torn
	// write: the drive reports success but the media keeps the old bytes).
	// The recorded checksum reflects the intended data, so the next read of
	// the stripe fails verification permanently.
	DropWriteRate float64
	// Latency is added to every piece attempt before any other processing.
	Latency time.Duration
}

// ErrInjected marks a fault-injected transient I/O error.
var ErrInjected = errors.New("safs: injected transient I/O error")

// ChecksumError reports a stripe whose data did not match its recorded
// CRC32C. It is retryable (transfer corruption heals on re-read); when the
// mismatch is on-media it survives every retry and surfaces wrapped in a
// StripeError naming the drive, file, and stripe.
type ChecksumError struct {
	Want, Got uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("crc32c mismatch (want %08x, got %08x)", e.Want, e.Got)
}

// StripeError is a permanent I/O failure: one stripe-granular request that
// still failed after the retry budget. It names the drive, file, and stripe
// so an operator of a real array would know which device to pull.
type StripeError struct {
	Op       string // "read" or "write"
	Drive    int
	File     string
	Stripe   int64
	Attempts int
	Err      error
}

func (e *StripeError) Error() string {
	return fmt.Sprintf("safs: %s failed on drive %d, file %q, stripe %d after %d attempts: %v",
		e.Op, e.Drive, e.File, e.Stripe, e.Attempts, e.Err)
}

func (e *StripeError) Unwrap() error { return e.Err }
