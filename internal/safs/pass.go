package safs

import (
	"sync/atomic"
	"time"
)

// Pass identifies one materialization pass to the array for weighted fair
// sharing and per-pass attribution. The real SAFS is shared by many
// concurrent workloads on one SSD array; a Pass is how one workload's I/O is
// told apart from another's. Requests tagged with a Pass land in that pass's
// per-drive queue (served by weighted deficit round robin against the other
// active passes) and bump the pass's own counters alongside the array-wide
// ones, so concurrent passes get exact, race-free attribution instead of
// diffing the global counters around a region.
//
// A Pass is cheap: registration allocates no queue — each drive materializes
// a queue for the pass when its first request arrives and drops it when it
// drains. Untagged I/O (nil pass) shares one default queue per drive.
type Pass struct {
	id     int64
	weight int

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64

	checksumFails   atomic.Int64
	retries         atomic.Int64
	recoveredReads  atomic.Int64
	recoveredWrites atomic.Int64
	verifyNs        atomic.Int64
}

// ID returns the pass's array-unique identifier (diagnostics).
func (p *Pass) ID() int64 { return p.id }

// Weight returns the pass's fair-share weight.
func (p *Pass) Weight() int { return p.weight }

// Stats returns a snapshot of the I/O attributed to this pass. Safe to call
// while the pass's requests are in flight; the snapshot is per-field atomic.
func (p *Pass) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		BytesRead:        p.bytesRead.Load(),
		BytesWritten:     p.bytesWritten.Load(),
		Reads:            p.reads.Load(),
		Writes:           p.writes.Load(),
		ChecksumFailures: p.checksumFails.Load(),
		Retries:          p.retries.Load(),
		RecoveredReads:   p.recoveredReads.Load(),
		RecoveredWrites:  p.recoveredWrites.Load(),
		VerifyTime:       time.Duration(p.verifyNs.Load()),
	}
}

// RegisterPass creates a pass identity with the given fair-share weight
// (values < 1 mean 1). Passes need no unregistration: a pass's drive queues
// are dropped as they drain, so an abandoned Pass costs only its counters.
func (fs *FS) RegisterPass(weight int) *Pass {
	if weight < 1 {
		weight = 1
	}
	return &Pass{id: fs.passSeq.Add(1), weight: weight}
}
