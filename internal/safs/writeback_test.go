package safs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestWriteBackOrderAndDrain checks that all enqueued jobs complete by the
// Drain barrier and that release runs for every job.
func TestWriteBackOrderAndDrain(t *testing.T) {
	wb := NewWriteBack(2, nil)
	var released atomic.Int32
	var wrote atomic.Int32
	for i := 0; i < 20; i++ {
		wb.Enqueue(8, func() error {
			wrote.Add(1)
			return nil
		}, func() { released.Add(1) })
	}
	if err := wb.Drain(); err != nil {
		t.Fatal(err)
	}
	if wrote.Load() != 20 || released.Load() != 20 {
		t.Fatalf("wrote=%d released=%d, want 20/20", wrote.Load(), released.Load())
	}
	st := wb.Stats()
	if st.Jobs != 20 || st.Bytes != 160 {
		t.Fatalf("stats jobs=%d bytes=%d, want 20/160", st.Jobs, st.Bytes)
	}
}

// TestWriteBackFirstError verifies the first failure is surfaced both via
// the onErr callback and Drain, and that release still runs on failure.
func TestWriteBackFirstError(t *testing.T) {
	boom := errors.New("boom")
	var cbErr atomic.Value
	wb := NewWriteBack(4, func(err error) { cbErr.Store(err) })
	var released atomic.Int32
	for i := 0; i < 8; i++ {
		fail := i == 3
		wb.Enqueue(1, func() error {
			if fail {
				return boom
			}
			return nil
		}, func() { released.Add(1) })
	}
	if err := wb.Drain(); !errors.Is(err, boom) {
		t.Fatalf("Drain err = %v, want %v", err, boom)
	}
	if got, _ := cbErr.Load().(error); !errors.Is(got, boom) {
		t.Fatalf("onErr got %v, want %v", got, boom)
	}
	if released.Load() != 8 {
		t.Fatalf("released=%d, want 8", released.Load())
	}
}

// TestWriteBackDepthBound proves the queue blocks producers at depth: with
// depth 1 and slow writes, enqueues serialize and stall time accrues.
func TestWriteBackDepthBound(t *testing.T) {
	wb := NewWriteBack(1, nil)
	var inFlight, peak atomic.Int32
	for i := 0; i < 4; i++ {
		wb.Enqueue(1, func() error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			inFlight.Add(-1)
			return nil
		}, nil)
	}
	if err := wb.Drain(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 1 {
		t.Fatalf("peak in-flight = %d, want 1", peak.Load())
	}
	if wb.Stats().Stall <= 0 {
		t.Fatal("expected stall time to accrue at depth 1")
	}
}

// TestWriteBackAgainstFS pushes real striped-file writes through the queue
// and confirms the data lands, including async error delivery for a write
// past EOF.
func TestWriteBackAgainstFS(t *testing.T) {
	fs := newFS(t, 2, 0, 0)
	const parts, psize = 8, 4096
	f, err := fs.Create("wb", parts*psize)
	if err != nil {
		t.Fatal(err)
	}
	wb := NewWriteBack(3, nil)
	for i := 0; i < parts; i++ {
		buf := make([]byte, psize)
		for j := range buf {
			buf[j] = byte(i)
		}
		off := int64(i) * psize
		wb.Enqueue(psize, func() error { return f.WriteAt(buf, off) }, nil)
	}
	if err := wb.Drain(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, parts*psize)
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < parts; i++ {
		for j := 0; j < psize; j++ {
			if got[i*psize+j] != byte(i) {
				t.Fatalf("part %d byte %d = %d", i, j, got[i*psize+j])
			}
		}
	}
	// A write that falls outside the file must surface at Drain.
	wb2 := NewWriteBack(2, nil)
	bad := make([]byte, psize)
	wb2.Enqueue(psize, func() error { return f.WriteAt(bad, parts*psize) }, nil)
	if err := wb2.Drain(); err == nil {
		t.Fatal("expected out-of-range write error from Drain")
	}
}

// TestAsyncErrorDelivery checks WriteAsync reports out-of-range errors
// through the completion channel rather than panicking or hanging.
func TestAsyncErrorDelivery(t *testing.T) {
	fs := newFS(t, 2, 0, 0)
	f, err := fs.Create("ae", 1024)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Request, 2)
	f.WriteAsync(make([]byte, 512), 900, 7, done) // spans past EOF
	r := <-done
	if r.Err == nil || r.Tag != 7 {
		t.Fatalf("want tagged error, got tag=%d err=%v", r.Tag, r.Err)
	}
	// A valid async write after an error still works.
	f.WriteAsync([]byte("hello"), 0, 8, done)
	if r := <-done; r.Err != nil || r.Tag != 8 {
		t.Fatalf("valid async write failed: %+v", r)
	}
	got := make([]byte, 5)
	if err := f.ReadAt(got, 0); err != nil || string(got) != "hello" {
		t.Fatalf("readback: %q err=%v", got, err)
	}
}

// TestQueueDepthConfig sanity-checks that a tiny per-drive queue depth still
// completes large multi-piece requests (no deadlock between pieces of one
// request sharing a drive queue).
func TestQueueDepthConfig(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(Config{
		Drives:      []string{dir + "/d0", dir + "/d1"},
		StripeBytes: 1024,
		QueueDepth:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const size = 64 * 1024 // 64 stripes → 32 pieces per drive
	f, err := fs.Create(fmt.Sprintf("qd%d", size), size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}
