package safs

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func newFS(t *testing.T, drives int, readMBps, writeMBps float64) *FS {
	t.Helper()
	fs, err := OpenTempDir(t.TempDir(), drives, readMBps, writeMBps)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

// TestRoundTrip writes and reads back data spanning many stripes on several
// drives.
func TestRoundTrip(t *testing.T) {
	fs := newFS(t, 4, 0, 0)
	const size = 5*DefaultStripeBytes + 12345
	f, err := fs.Create("m", size)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, size)
	rng.Read(data)
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Unaligned interior read crossing a stripe boundary.
	off := int64(DefaultStripeBytes - 100)
	part := make([]byte, 300)
	if err := f.ReadAt(part, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, data[off:off+300]) {
		t.Fatal("interior read mismatch")
	}
}

// TestStriping verifies data is spread over every drive.
func TestStriping(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenTempDir(dir, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	const size = 24 * DefaultStripeBytes
	f, err := fs.Create("m", size)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for i := 0; i < 3; i++ {
		matches, _ := filepath.Glob(filepath.Join(dir, "ssd-*", "m.seg"))
		if len(matches) != 3 {
			t.Fatalf("found %d segments, want 3", len(matches))
		}
		st, err := os.Stat(matches[i])
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, st.Size())
	}
	var total int64
	for _, s := range sizes {
		if s == 0 {
			t.Fatal("a drive holds no data")
		}
		total += s
	}
	if total != size {
		t.Fatalf("segments total %d, want %d", total, size)
	}
}

// TestOutOfRange checks bounds enforcement.
func TestOutOfRange(t *testing.T) {
	fs := newFS(t, 2, 0, 0)
	f, err := fs.Create("m", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ReadAt(make([]byte, 10), 995); err == nil {
		t.Fatal("read past EOF succeeded")
	}
	if err := f.WriteAt(make([]byte, 10), -1); err == nil {
		t.Fatal("negative-offset write succeeded")
	}
}

// TestAsyncIO exercises the async read path used by the engine's
// prefetcher.
func TestAsyncIO(t *testing.T) {
	fs := newFS(t, 2, 0, 0)
	const size = 1 << 20
	f, err := fs.Create("m", size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	done := make(chan Request, 4)
	f.WriteAsync(data, 0, 1, done)
	if req := <-done; req.Err != nil || req.Tag != 1 {
		t.Fatalf("write completion %+v", req)
	}
	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = make([]byte, size/4)
		f.ReadAsync(bufs[i], int64(i)*size/4, i, done)
	}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		req := <-done
		if req.Err != nil {
			t.Fatal(req.Err)
		}
		seen[req.Tag] = true
	}
	for i := range bufs {
		if !seen[i] {
			t.Fatalf("tag %d missing", i)
		}
		if !bytes.Equal(bufs[i], data[int64(i)*size/4:int64(i+1)*size/4]) {
			t.Fatalf("async read %d mismatch", i)
		}
	}
}

// TestThrottle checks that the token bucket enforces an aggregate bandwidth
// ceiling (loosely — timing tests must tolerate CI jitter).
func TestThrottle(t *testing.T) {
	fs := newFS(t, 2, 4, 0) // 4 MiB/s aggregate read
	const size = 1 << 20    // 1 MiB
	f, err := fs.Create("m", size)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 1 MiB at 4 MiB/s ≈ 250 ms minus a burst allowance; anything under
	// 100 ms means the throttle did not engage.
	if elapsed < 100*time.Millisecond {
		t.Fatalf("read of 1MiB at 4MiB/s took only %v", elapsed)
	}
	st := fs.Stats()
	if st.BytesRead < size {
		t.Fatalf("stats read %d < %d", st.BytesRead, size)
	}
}

// TestReopen verifies metadata recovery when opening an existing file from a
// fresh FS over the same drives.
func TestReopen(t *testing.T) {
	dir := t.TempDir()
	fs1, err := OpenTempDir(dir, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const size = 2*DefaultStripeBytes + 777
	f, err := fs1.Create("m", size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	fs1.Close()

	fs2, err := OpenTempDir(dir, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	f2, err := fs2.OpenFile("m")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != size {
		t.Fatalf("recovered size %d, want %d", f2.Size(), size)
	}
	got := make([]byte, size)
	if err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reopened data mismatch")
	}
}

// TestRemove checks file deletion and namespace listing.
func TestRemove(t *testing.T) {
	fs := newFS(t, 2, 0, 0)
	if _, err := fs.Create("a", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("b", 100); err != nil {
		t.Fatal(err)
	}
	if got := fs.List(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("list %v", got)
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if got := fs.List(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("list after remove %v", got)
	}
	if _, err := fs.OpenFile("a"); err == nil {
		t.Fatal("opened removed file")
	}
}

// TestStripingModes compares hash and round-robin mappings: both must
// round-trip and cover every drive; round-robin must be exactly even.
func TestStripingModes(t *testing.T) {
	for _, mode := range []Striping{StripeHash, StripeRoundRobin} {
		dir := t.TempDir()
		drives := make([]string, 4)
		for i := range drives {
			drives[i] = filepath.Join(dir, fmt.Sprintf("d%d", i))
		}
		fs, err := Open(Config{Drives: drives, Striping: mode})
		if err != nil {
			t.Fatal(err)
		}
		const size = 32*DefaultStripeBytes + 100
		f, err := fs.Create("m", size)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, size)
		rng := rand.New(rand.NewSource(int64(mode) + 5))
		rng.Read(data)
		if err := f.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, size)
		if err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("mode %d round trip", mode)
		}
		// Per-drive sizes cover all drives; RR is exactly even over the
		// 32 whole stripes.
		for id := range drives {
			seg := f.segmentSize(id)
			if seg == 0 {
				t.Fatalf("mode %d leaves drive %d empty", mode, id)
			}
			if mode == StripeRoundRobin && id > 0 && (seg < 8*DefaultStripeBytes || seg > 9*DefaultStripeBytes) {
				t.Fatalf("round-robin drive %d holds %d bytes", id, seg)
			}
		}
		fs.Close()
	}
}

// TestHashStripingDeterministic: the mapping must be stable across FS
// instances or reopened files read garbage.
func TestHashStripingDeterministic(t *testing.T) {
	dir := t.TempDir()
	write := func() []byte {
		fs, err := OpenTempDir(dir, 3, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer fs.Close()
		f, err := fs.Create("m", 5*DefaultStripeBytes)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 5*DefaultStripeBytes)
		for i := range data {
			data[i] = byte(i * 13)
		}
		if err := f.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		return data
	}
	data := write()
	fs2, err := OpenTempDir(dir, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	f2, err := fs2.OpenFile("m")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hash striping not deterministic across FS instances")
	}
}
