package safs

import (
	"testing"
	"time"
)

// TestPassAttributionExact drives two tagged passes concurrently and checks
// that the per-pass counters partition the array-wide delta exactly — the
// property that lets the engine report per-pass MaterializeStats without
// diffing global counters around a region.
func TestPassAttributionExact(t *testing.T) {
	fs, err := OpenTempDir(t.TempDir(), 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	const size = 3 << 20
	f, err := fs.Create("attr", size)
	if err != nil {
		t.Fatal(err)
	}
	before := fs.Stats()

	pa := fs.RegisterPass(1)
	pb := fs.RegisterPass(2)
	errc := make(chan error, 2)
	run := func(p *Pass, seed int64) {
		buf := make([]byte, 200_000)
		for i := 0; i < 20; i++ {
			off := (seed*131 + int64(i)*977_777) % (size - int64(len(buf)))
			if err := f.WriteAtPass(buf[:100_000+i*1000], off, p); err != nil {
				errc <- err
				return
			}
			if err := f.ReadAtPass(buf[:50_000+i*2000], off, p); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}
	go run(pa, 1)
	go run(pb, 2)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	delta := fs.Stats()
	delta.BytesRead -= before.BytesRead
	delta.BytesWritten -= before.BytesWritten
	delta.Reads -= before.Reads
	delta.Writes -= before.Writes
	sa, sb := pa.Stats(), pb.Stats()
	if got := sa.BytesRead + sb.BytesRead; got != delta.BytesRead {
		t.Errorf("bytes read: passes sum to %d, array delta %d", got, delta.BytesRead)
	}
	if got := sa.BytesWritten + sb.BytesWritten; got != delta.BytesWritten {
		t.Errorf("bytes written: passes sum to %d, array delta %d", got, delta.BytesWritten)
	}
	if got := sa.Reads + sb.Reads; got != delta.Reads {
		t.Errorf("reads: passes sum to %d, array delta %d", got, delta.Reads)
	}
	if got := sa.Writes + sb.Writes; got != delta.Writes {
		t.Errorf("writes: passes sum to %d, array delta %d", got, delta.Writes)
	}
	if sa.BytesRead == 0 || sb.BytesRead == 0 {
		t.Errorf("both passes should have read bytes attributed: %d, %d", sa.BytesRead, sb.BytesRead)
	}
}

// TestDRRInterleavesPasses builds a backlog for pass A on a single drive
// (injected per-piece latency keeps the worker busy), then queues pass B.
// The old FIFO drive queue would finish every A request before the first B;
// weighted deficit round robin must interleave, so B's first completion has
// to land before A's last.
func TestDRRInterleavesPasses(t *testing.T) {
	fs, err := OpenTempDir(t.TempDir(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("drr", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the checksum-free read path before injecting latency.
	buf := make([]byte, 4096)
	if err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	fs.InjectFaults(&Faults{Latency: 20 * time.Millisecond})
	defer fs.InjectFaults(nil)

	pa := fs.RegisterPass(1)
	pb := fs.RegisterPass(1)
	const perPass = 6
	done := make(chan Request, 2*perPass)
	bufs := make([][]byte, 2*perPass)
	for i := range bufs {
		// One DRR quantum per request, so each round-robin visit serves one
		// request and interleaving shows at request granularity.
		bufs[i] = make([]byte, drrQuantum)
	}
	for i := 0; i < perPass; i++ {
		f.ReadAsyncPass(bufs[i], 0, i, done, pa)
	}
	// Let the worker pick up A's backlog before B arrives, so a FIFO queue
	// would be committed to serving A first.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < perPass; i++ {
		f.ReadAsyncPass(bufs[perPass+i], 0, 100+i, done, pb)
	}

	firstB, lastA := -1, -1
	for i := 0; i < 2*perPass; i++ {
		r := <-done
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Tag >= 100 {
			if firstB < 0 {
				firstB = i
			}
		} else {
			lastA = i
		}
	}
	if firstB > lastA {
		t.Fatalf("no interleaving: first pass-B completion at %d, last pass-A at %d", firstB, lastA)
	}
}

// TestWeightedDRRFavorsHeavierPass checks that with a 3:1 weight ratio and
// both passes continuously backlogged, the heavier pass finishes its batch
// first even though it was queued second.
func TestWeightedDRRFavorsHeavierPass(t *testing.T) {
	fs, err := OpenTempDir(t.TempDir(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f, err := fs.Create("wdrr", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	fs.InjectFaults(&Faults{Latency: 10 * time.Millisecond})
	defer fs.InjectFaults(nil)

	light := fs.RegisterPass(1)
	heavy := fs.RegisterPass(3)
	const perPass = 8
	done := make(chan Request, 2*perPass)
	bufs := make([][]byte, 2*perPass)
	for i := range bufs {
		bufs[i] = make([]byte, drrQuantum)
	}
	for i := 0; i < perPass; i++ {
		f.ReadAsyncPass(bufs[i], 0, i, done, light)
	}
	time.Sleep(30 * time.Millisecond)
	for i := 0; i < perPass; i++ {
		f.ReadAsyncPass(bufs[perPass+i], 0, 100+i, done, heavy)
	}
	lastHeavy, lastLight := -1, -1
	for i := 0; i < 2*perPass; i++ {
		r := <-done
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Tag >= 100 {
			lastHeavy = i
		} else {
			lastLight = i
		}
	}
	if lastHeavy > lastLight {
		t.Fatalf("weight-3 pass finished at %d, after weight-1 pass at %d", lastHeavy, lastLight)
	}
}
