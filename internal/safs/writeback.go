package safs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// WriteBack is a bounded write-behind queue: the execution engine hands a
// finished output partition to the queue and immediately moves on to the
// next partition's compute, closing the write half of the paper's
// I/O/compute overlap (§3.3 — the read half is the prefetcher). Ownership
// of the buffer transfers to the queue until the job's release callback
// runs, so the scheduler never mutates a buffer a writer still holds.
//
// Depth bounds the number of in-flight writes; when the bound is hit,
// Enqueue blocks and the blocked time is recorded as write-stall — the
// quantity that collapses to the full write time under synchronous writes
// and shrinks toward zero when the overlap works.
//
// Write-behind jobs funnel through the same per-drive workers as
// synchronous writes, so stripe checksums, injected faults, and the
// retry/backoff policy all apply identically on both paths; no separate
// integrity handling lives here.
type WriteBack struct {
	// lanes holds the free lane tokens 0..depth-1. A job receives a token in
	// Enqueue and its goroutine returns it on completion, so the token bounds
	// in-flight writes AND grants exclusive ownership of the lane's trace
	// buffer — the channel round-trip is the happens-before edge between
	// successive jobs on one lane.
	lanes chan int
	// bufs, when tracing, is one span buffer per lane (indexed by token).
	bufs  []*trace.Buf
	wg    sync.WaitGroup
	onErr func(error)

	stallNs atomic.Int64
	writeNs atomic.Int64
	bytes   atomic.Int64
	jobs    atomic.Int64

	errMu sync.Mutex
	err   error
}

// WriteBackStats is a snapshot of queue activity.
type WriteBackStats struct {
	// Stall is the cumulative time producers spent blocked on the depth
	// bound in Enqueue.
	Stall time.Duration
	// WriteTime is the cumulative time spent inside write jobs (summed
	// across writers, so it can exceed wall time).
	WriteTime time.Duration
	// Bytes and Jobs count enqueued work.
	Bytes int64
	Jobs  int64
}

// DefaultWriteBehindDepth bounds in-flight partition writes when the caller
// does not configure a depth.
const DefaultWriteBehindDepth = 8

// NewWriteBack builds a queue allowing depth concurrent in-flight writes
// (0 selects DefaultWriteBehindDepth). onErr, if non-nil, is invoked once
// with the first write error as soon as it happens, letting the caller
// abort a pass early; the same error is returned again by Drain.
func NewWriteBack(depth int, onErr func(error)) *WriteBack {
	if depth <= 0 {
		depth = DefaultWriteBehindDepth
	}
	wb := &WriteBack{lanes: make(chan int, depth), onErr: onErr}
	for i := 0; i < depth; i++ {
		wb.lanes <- i
	}
	return wb
}

// Lanes returns the queue depth (the number of write lanes).
func (wb *WriteBack) Lanes() int { return cap(wb.lanes) }

// SetTraceBufs attaches one span buffer per lane (len must equal Lanes;
// entries may be nil). Call before the first Enqueue; each async job then
// records a write-back span on its lane's buffer.
func (wb *WriteBack) SetTraceBufs(bufs []*trace.Buf) {
	if len(bufs) != wb.Lanes() {
		panic("safs: SetTraceBufs length does not match lane count")
	}
	wb.bufs = bufs
}

// Enqueue schedules one write job of nbytes. write performs the actual
// store/file write; release is called exactly once when the job finishes
// (success or failure) and returns buffer ownership to the caller. Enqueue
// blocks while the queue is at depth; it never blocks indefinitely because
// in-flight writers always complete.
func (wb *WriteBack) Enqueue(nbytes int, write func() error, release func()) {
	t0 := time.Now()
	lane := <-wb.lanes
	if d := time.Since(t0); d > 0 {
		wb.stallNs.Add(d.Nanoseconds())
	}
	wb.jobs.Add(1)
	wb.bytes.Add(int64(nbytes))
	var buf *trace.Buf
	if wb.bufs != nil {
		buf = wb.bufs[lane]
	}
	wb.wg.Add(1)
	go func() {
		defer wb.wg.Done()
		defer func() { wb.lanes <- lane }()
		sp := buf.Begin(trace.KindWriteBack, int64(lane))
		sp.Bytes = int64(nbytes)
		sp.N = 1
		w0 := time.Now()
		err := write()
		wb.writeNs.Add(time.Since(w0).Nanoseconds())
		buf.End(sp)
		if release != nil {
			release()
		}
		if err != nil {
			wb.fail(err)
		}
	}()
}

func (wb *WriteBack) fail(err error) {
	wb.errMu.Lock()
	first := wb.err == nil
	if first {
		wb.err = err
	}
	wb.errMu.Unlock()
	if first && wb.onErr != nil {
		wb.onErr(err)
	}
}

// Err returns the first write failure observed so far, or nil.
func (wb *WriteBack) Err() error {
	wb.errMu.Lock()
	defer wb.errMu.Unlock()
	return wb.err
}

// Drain is the barrier at the end of a pass: it waits for every in-flight
// write to finish and returns the first error any of them hit. The queue
// may be reused after Drain returns.
func (wb *WriteBack) Drain() error {
	wb.wg.Wait()
	return wb.Err()
}

// Stats snapshots the queue counters.
func (wb *WriteBack) Stats() WriteBackStats {
	return WriteBackStats{
		Stall:     time.Duration(wb.stallNs.Load()),
		WriteTime: time.Duration(wb.writeNs.Load()),
		Bytes:     wb.bytes.Load(),
		Jobs:      wb.jobs.Load(),
	}
}
