package safs

import (
	"sync"
	"sync/atomic"
	"time"
)

// WriteBack is a bounded write-behind queue: the execution engine hands a
// finished output partition to the queue and immediately moves on to the
// next partition's compute, closing the write half of the paper's
// I/O/compute overlap (§3.3 — the read half is the prefetcher). Ownership
// of the buffer transfers to the queue until the job's release callback
// runs, so the scheduler never mutates a buffer a writer still holds.
//
// Depth bounds the number of in-flight writes; when the bound is hit,
// Enqueue blocks and the blocked time is recorded as write-stall — the
// quantity that collapses to the full write time under synchronous writes
// and shrinks toward zero when the overlap works.
//
// Write-behind jobs funnel through the same per-drive workers as
// synchronous writes, so stripe checksums, injected faults, and the
// retry/backoff policy all apply identically on both paths; no separate
// integrity handling lives here.
type WriteBack struct {
	slots chan struct{}
	wg    sync.WaitGroup
	onErr func(error)

	stallNs atomic.Int64
	writeNs atomic.Int64
	bytes   atomic.Int64
	jobs    atomic.Int64

	errMu sync.Mutex
	err   error
}

// WriteBackStats is a snapshot of queue activity.
type WriteBackStats struct {
	// Stall is the cumulative time producers spent blocked on the depth
	// bound in Enqueue.
	Stall time.Duration
	// WriteTime is the cumulative time spent inside write jobs (summed
	// across writers, so it can exceed wall time).
	WriteTime time.Duration
	// Bytes and Jobs count enqueued work.
	Bytes int64
	Jobs  int64
}

// DefaultWriteBehindDepth bounds in-flight partition writes when the caller
// does not configure a depth.
const DefaultWriteBehindDepth = 8

// NewWriteBack builds a queue allowing depth concurrent in-flight writes
// (0 selects DefaultWriteBehindDepth). onErr, if non-nil, is invoked once
// with the first write error as soon as it happens, letting the caller
// abort a pass early; the same error is returned again by Drain.
func NewWriteBack(depth int, onErr func(error)) *WriteBack {
	if depth <= 0 {
		depth = DefaultWriteBehindDepth
	}
	return &WriteBack{slots: make(chan struct{}, depth), onErr: onErr}
}

// Enqueue schedules one write job of nbytes. write performs the actual
// store/file write; release is called exactly once when the job finishes
// (success or failure) and returns buffer ownership to the caller. Enqueue
// blocks while the queue is at depth; it never blocks indefinitely because
// in-flight writers always complete.
func (wb *WriteBack) Enqueue(nbytes int, write func() error, release func()) {
	t0 := time.Now()
	wb.slots <- struct{}{}
	if d := time.Since(t0); d > 0 {
		wb.stallNs.Add(d.Nanoseconds())
	}
	wb.jobs.Add(1)
	wb.bytes.Add(int64(nbytes))
	wb.wg.Add(1)
	go func() {
		defer wb.wg.Done()
		defer func() { <-wb.slots }()
		w0 := time.Now()
		err := write()
		wb.writeNs.Add(time.Since(w0).Nanoseconds())
		if release != nil {
			release()
		}
		if err != nil {
			wb.fail(err)
		}
	}()
}

func (wb *WriteBack) fail(err error) {
	wb.errMu.Lock()
	first := wb.err == nil
	if first {
		wb.err = err
	}
	wb.errMu.Unlock()
	if first && wb.onErr != nil {
		wb.onErr(err)
	}
}

// Err returns the first write failure observed so far, or nil.
func (wb *WriteBack) Err() error {
	wb.errMu.Lock()
	defer wb.errMu.Unlock()
	return wb.err
}

// Drain is the barrier at the end of a pass: it waits for every in-flight
// write to finish and returns the first error any of them hit. The queue
// may be reused after Drain returns.
func (wb *WriteBack) Drain() error {
	wb.wg.Wait()
	return wb.Err()
}

// Stats snapshots the queue counters.
func (wb *WriteBack) Stats() WriteBackStats {
	return WriteBackStats{
		Stall:     time.Duration(wb.stallNs.Load()),
		WriteTime: time.Duration(wb.writeNs.Load()),
		Bytes:     wb.bytes.Load(),
		Jobs:      wb.jobs.Load(),
	}
}
