// Package safs is a user-space "SSD array filesystem" in the spirit of SAFS
// (Zheng et al., SC'13), the storage substrate FlashR stores matrices on.
//
// The real SAFS stripes a file over an array of SSDs, issues asynchronous
// direct I/O to bypass the page cache, and merges sequential writes from
// many threads to sustain device throughput. This package reproduces that
// architecture at laptop scale:
//
//   - a filesystem (FS) manages N "drives", each a directory on the host;
//   - a File is striped over the drives in fixed-size stripe blocks mapped
//     round-robin (the default hash) so that reading even a column subset of
//     a matrix touches every drive, as §3.2.1 of the paper requires;
//   - every drive has a token-bucket bandwidth model so the aggregate I/O
//     throughput is a hard, configurable ceiling an order of magnitude below
//     memory bandwidth — this is what makes the in-memory vs external-memory
//     experiments (Fig. 9) meaningful on hardware without a 24-SSD array;
//   - reads and writes can be issued asynchronously to a pool of per-drive
//     I/O goroutines, which is how the engine overlaps I/O with compute.
//
// Direct I/O (O_DIRECT) is not portable and the host page cache cannot be
// bypassed from pure Go; the token bucket dominates timing instead, which
// preserves the behaviour the engine depends on (a fixed bandwidth budget).
package safs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStripeBytes is the stripe-block size. The paper dispatches multiple
// contiguous I/O partitions per thread to match the SAFS block size; our
// engine does the same against this value.
const DefaultStripeBytes = 1 << 20 // 1 MiB

// Striping selects how stripe blocks map to drives.
type Striping int8

const (
	// StripeHash spreads stripes with a multiplicative hash — the paper's
	// default ("we use a hash function to map data to fully utilize the
	// bandwidth of all SSDs even if we access only a subset of columns").
	StripeHash Striping = iota
	// StripeRoundRobin places stripe i on drive i mod N.
	StripeRoundRobin
)

// Config configures a simulated SSD array.
type Config struct {
	// Drives are directories, one per simulated SSD. At least one.
	Drives []string
	// Striping selects the stripe→drive mapping (default StripeHash).
	Striping Striping
	// StripeBytes is the striping unit; 0 selects DefaultStripeBytes.
	StripeBytes int
	// ReadMBps and WriteMBps are the *aggregate* array bandwidths in
	// MiB/s, split evenly over drives. Zero disables throttling (the
	// drives are then as fast as the host filesystem).
	ReadMBps  float64
	WriteMBps float64
	// QueueDepth is the per-drive async request queue length (default 8).
	QueueDepth int
}

// FS is a user-space filesystem over an array of simulated SSDs.
type FS struct {
	cfg     Config
	stripe  int
	drives  []*drive
	mu      sync.Mutex
	files   map[string]*fileMeta
	closed  bool
	reqWG   sync.WaitGroup
	statsMu sync.Mutex
	stats   Stats
}

// Stats aggregates I/O accounting for an FS.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64
	Writes       int64
}

type fileMeta struct {
	name string
	size int64
}

// Open creates a filesystem over the configured drives, creating drive
// directories as needed.
func Open(cfg Config) (*FS, error) {
	if len(cfg.Drives) == 0 {
		return nil, errors.New("safs: no drives configured")
	}
	if cfg.StripeBytes <= 0 {
		cfg.StripeBytes = DefaultStripeBytes
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	fs := &FS{cfg: cfg, stripe: cfg.StripeBytes, files: make(map[string]*fileMeta)}
	perDriveRead := cfg.ReadMBps / float64(len(cfg.Drives))
	perDriveWrite := cfg.WriteMBps / float64(len(cfg.Drives))
	for i, dir := range cfg.Drives {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("safs: creating drive %d: %w", i, err)
		}
		d, err := newDrive(i, dir, perDriveRead, perDriveWrite, cfg.QueueDepth)
		if err != nil {
			return nil, err
		}
		fs.drives = append(fs.drives, d)
	}
	return fs, nil
}

// OpenTempDir builds an FS with n drives under a fresh directory inside dir
// (usually t.TempDir() in tests). Bandwidths follow cfg semantics.
func OpenTempDir(dir string, n int, readMBps, writeMBps float64) (*FS, error) {
	drives := make([]string, n)
	for i := range drives {
		drives[i] = filepath.Join(dir, fmt.Sprintf("ssd-%02d", i))
	}
	return Open(Config{Drives: drives, ReadMBps: readMBps, WriteMBps: writeMBps})
}

// StripeBytes returns the striping unit in bytes.
func (fs *FS) StripeBytes() int { return fs.stripe }

// NumDrives returns the number of simulated SSDs.
func (fs *FS) NumDrives() int { return len(fs.drives) }

// Stats returns a snapshot of cumulative I/O accounting.
func (fs *FS) Stats() Stats {
	fs.statsMu.Lock()
	defer fs.statsMu.Unlock()
	return fs.stats
}

// Close shuts down the drive workers. Outstanding async requests complete
// first. Files remain on disk.
func (fs *FS) Close() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return nil
	}
	fs.closed = true
	fs.mu.Unlock()
	// All submitted requests have registered with reqWG before this point
	// (submit checks closed under fs.mu), so waiting here guarantees every
	// queued piece is drained before the workers stop.
	fs.reqWG.Wait()
	var first error
	for _, d := range fs.drives {
		close(d.reqCh)
		d.wg.Wait()
		if err := d.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Create makes (or truncates) a striped file of the given size in bytes.
func (fs *FS) Create(name string, size int64) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("safs: negative size %d for %q", size, name)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, errors.New("safs: filesystem closed")
	}
	f := &File{fs: fs, name: name, size: size}
	for _, d := range fs.drives {
		if err := d.createSegment(name, f.segmentSize(d.id)); err != nil {
			return nil, err
		}
	}
	fs.files[name] = &fileMeta{name: name, size: size}
	return f, nil
}

// OpenFile opens an existing striped file.
func (fs *FS) OpenFile(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[name]
	if !ok {
		// Recover metadata from disk: sum of segment sizes.
		var total int64
		for _, d := range fs.drives {
			st, err := os.Stat(d.segPath(name))
			if err != nil {
				return nil, fmt.Errorf("safs: open %q: %w", name, err)
			}
			total += st.Size()
		}
		meta = &fileMeta{name: name, size: total}
		fs.files[name] = meta
	}
	return &File{fs: fs, name: name, size: meta.size}, nil
}

// Remove deletes a striped file from all drives.
func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
	var first error
	for _, d := range fs.drives {
		if err := os.Remove(d.segPath(name)); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

// List returns the names of files known to this FS instance, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// File is a file striped across the array's drives.
type File struct {
	fs   *FS
	name string
	size int64

	idxOnce sync.Once
	// ordinals[s] is the drive-local index of global stripe s (how many
	// earlier stripes share its drive).
	ordinals []int32
}

// Name returns the file's name within the FS namespace.
func (f *File) Name() string { return f.name }

// Size returns the logical file size in bytes.
func (f *File) Size() int64 { return f.size }

// buildIndex computes each stripe's drive-local ordinal once per file.
func (f *File) buildIndex() {
	f.idxOnce.Do(func() {
		stripe := int64(f.fs.stripe)
		nStripes := (f.size + stripe - 1) / stripe
		f.ordinals = make([]int32, nStripes)
		counts := make([]int32, len(f.fs.drives))
		for s := int64(0); s < nStripes; s++ {
			d := f.fs.driveOfStripe(s)
			f.ordinals[s] = counts[d]
			counts[d]++
		}
	})
}

// segmentSize computes how many bytes of this file live on drive id.
func (f *File) segmentSize(id int) int64 {
	stripe := int64(f.fs.stripe)
	var seg, off int64
	for s := int64(0); off < f.size; s++ {
		take := stripe
		if f.size-off < take {
			take = f.size - off
		}
		if f.fs.driveOfStripe(s) == id {
			seg += take
		}
		off += take
	}
	return seg
}

// driveOfStripe maps a global stripe index to a drive, either by hash (the
// paper's default) or round-robin.
func (fs *FS) driveOfStripe(stripe int64) int {
	n := int64(len(fs.drives))
	if fs.cfg.Striping == StripeRoundRobin {
		return int(stripe % n)
	}
	z := uint64(stripe)*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return int(z % uint64(n))
}

// segOffset maps a global file offset to (drive, offset within the drive's
// segment file, bytes until the end of the stripe block).
func (f *File) segOffset(off int64) (driveID int, segOff int64, contig int64) {
	f.buildIndex()
	stripe := int64(f.fs.stripe)
	sIdx := off / stripe
	within := off - sIdx*stripe
	driveID = f.fs.driveOfStripe(sIdx)
	segOff = int64(f.ordinals[sIdx])*stripe + within
	contig = stripe - within
	return driveID, segOff, contig
}

// ReadAt reads len(p) bytes at offset off, spanning stripes as needed. It
// blocks until every per-drive piece completes; pieces on different drives
// proceed in parallel, each throttled by its drive's token bucket.
func (f *File) ReadAt(p []byte, off int64) error {
	return f.rw(p, off, false)
}

// WriteAt writes len(p) bytes at offset off; blocking semantics mirror
// ReadAt.
func (f *File) WriteAt(p []byte, off int64) error {
	return f.rw(p, off, true)
}

func (f *File) rw(p []byte, off int64, write bool) error {
	done := make(chan Request, 1)
	f.submit(p, off, write, false, 0, done)
	return (<-done).Err
}

func (fs *FS) account(n int64, write bool) {
	fs.statsMu.Lock()
	if write {
		fs.stats.BytesWritten += n
		fs.stats.Writes++
	} else {
		fs.stats.BytesRead += n
		fs.stats.Reads++
	}
	fs.statsMu.Unlock()
}

func verb(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// Request is a completed asynchronous I/O request.
type Request struct {
	Err error
	// Tag is the caller-supplied identifier.
	Tag int
}

// completion aggregates the per-stripe pieces of one file-level request and
// delivers a single Request on done when the last piece finishes.
type completion struct {
	fs    *FS
	n     atomic.Int32
	done  chan<- Request
	tag   int
	write bool

	errMu sync.Mutex
	err   error
}

// finish records one piece's outcome; the last piece fires the completion.
func (c *completion) finish(err error, nbytes int) {
	if err != nil {
		c.errMu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.errMu.Unlock()
	} else {
		c.fs.account(int64(nbytes), c.write)
	}
	if c.n.Add(-1) == 0 {
		c.errMu.Lock()
		first := c.err
		c.errMu.Unlock()
		c.done <- Request{Err: first, Tag: c.tag}
		c.fs.reqWG.Done()
	}
}

// pieces splits [off, off+len(p)) into per-stripe (drive, segment-offset)
// requests bound to the given completion.
func (f *File) pieces(p []byte, off int64, write bool, comp *completion) []ioReq {
	var reqs []ioReq
	for len(p) > 0 {
		id, segOff, contig := f.segOffset(off)
		n := int64(len(p))
		if n > contig {
			n = contig
		}
		reqs = append(reqs, ioReq{drive: id, name: f.name, buf: p[:n], off: segOff, write: write, comp: comp})
		p = p[n:]
		off += n
	}
	return reqs
}

// submit validates a request, registers it with the FS, and queues its
// pieces to the per-drive workers. When async is set the (possibly blocking)
// queue sends happen on a helper goroutine so the caller returns
// immediately; errors still arrive on done.
func (f *File) submit(p []byte, off int64, write, async bool, tag int, done chan<- Request) {
	if off < 0 || off+int64(len(p)) > f.size {
		done <- Request{Err: fmt.Errorf("safs: %s out of range [%d,%d) in %q of size %d",
			verb(write), off, off+int64(len(p)), f.name, f.size), Tag: tag}
		return
	}
	comp := &completion{fs: f.fs, done: done, tag: tag, write: write}
	if len(p) == 0 {
		// Zero-length request: complete immediately, nothing to queue.
		done <- Request{Tag: tag}
		return
	}
	reqs := f.pieces(p, off, write, comp)
	comp.n.Store(int32(len(reqs)))
	// Register under fs.mu so Close cannot observe reqWG empty between our
	// closed check and the Add.
	f.fs.mu.Lock()
	if f.fs.closed {
		f.fs.mu.Unlock()
		done <- Request{Err: errors.New("safs: filesystem closed"), Tag: tag}
		return
	}
	f.fs.reqWG.Add(1)
	f.fs.mu.Unlock()
	enqueue := func() {
		for _, r := range reqs {
			f.fs.drives[r.drive].reqCh <- r
		}
	}
	if async {
		go enqueue()
	} else {
		enqueue()
	}
}

// ReadAsync schedules an asynchronous read of len(p) bytes at off and
// delivers the completion on done. The buffer must not be touched until the
// completion arrives. Each stripe-spanning piece is queued to its drive's
// worker, so one request proceeds in parallel across drives.
func (f *File) ReadAsync(p []byte, off int64, tag int, done chan<- Request) {
	f.submit(p, off, false, true, tag, done)
}

// WriteAsync schedules an asynchronous write; semantics mirror ReadAsync.
// The caller hands the buffer to the array until the completion arrives —
// the engine's write-behind queue relies on this ownership transfer.
func (f *File) WriteAsync(p []byte, off int64, tag int, done chan<- Request) {
	f.submit(p, off, true, true, tag, done)
}

// ioReq is one stripe-granular I/O request queued to a drive worker.
type ioReq struct {
	drive int
	name  string
	buf   []byte
	off   int64
	write bool
	comp  *completion
}

// drive is one simulated SSD: a directory holding one segment file per
// striped file, token buckets modelling its read and write bandwidth, and a
// bounded request queue served by a dedicated I/O worker goroutine — the
// per-SSD I/O thread of the real SAFS. Queue depth bounds the requests a
// drive buffers before callers feel backpressure.
type drive struct {
	id      int
	dir     string
	readTB  *tokenBucket
	writeTB *tokenBucket
	reqCh   chan ioReq
	wg      sync.WaitGroup

	mu   sync.Mutex
	open map[string]*os.File
}

func newDrive(id int, dir string, readMBps, writeMBps float64, depth int) (*drive, error) {
	d := &drive{id: id, dir: dir, open: make(map[string]*os.File)}
	if readMBps > 0 {
		d.readTB = newTokenBucket(readMBps * 1024 * 1024)
	}
	if writeMBps > 0 {
		d.writeTB = newTokenBucket(writeMBps * 1024 * 1024)
	}
	d.reqCh = make(chan ioReq, depth)
	d.wg.Add(1)
	go d.serve()
	return d, nil
}

// serve is the drive's I/O worker: it drains the request queue in FIFO
// order (preserving the sequential, merge-friendly access pattern the
// engine's dispatch produces) until the channel is closed at FS shutdown.
func (d *drive) serve() {
	defer d.wg.Done()
	for r := range d.reqCh {
		var err error
		if r.write {
			err = d.write(r.name, r.buf, r.off)
		} else {
			err = d.read(r.name, r.buf, r.off)
		}
		r.comp.finish(err, len(r.buf))
	}
}

func (d *drive) segPath(name string) string {
	return filepath.Join(d.dir, name+".seg")
}

func (d *drive) createSegment(name string, size int64) error {
	f, err := os.OpenFile(d.segPath(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("safs: drive %d: %w", d.id, err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return fmt.Errorf("safs: drive %d truncate: %w", d.id, err)
	}
	d.mu.Lock()
	if old, ok := d.open[name]; ok {
		old.Close()
	}
	d.open[name] = f
	d.mu.Unlock()
	return nil
}

func (d *drive) handle(name string) (*os.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.open[name]; ok {
		return f, nil
	}
	f, err := os.OpenFile(d.segPath(name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("safs: drive %d: %w", d.id, err)
	}
	d.open[name] = f
	return f, nil
}

func (d *drive) read(name string, p []byte, off int64) error {
	if d.readTB != nil {
		d.readTB.take(len(p))
	}
	f, err := d.handle(name)
	if err != nil {
		return err
	}
	_, err = f.ReadAt(p, off)
	return err
}

func (d *drive) write(name string, p []byte, off int64) error {
	if d.writeTB != nil {
		d.writeTB.take(len(p))
	}
	f, err := d.handle(name)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(p, off)
	return err
}

func (d *drive) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for _, f := range d.open {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.open = map[string]*os.File{}
	return first
}

// tokenBucket throttles to rate bytes/second with a burst of ~50 ms worth of
// tokens, keeping the timing model smooth at partition granularity.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	tokens float64
	burst  float64
	last   time.Time
}

func newTokenBucket(rate float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: rate / 20, last: time.Now()}
}

func (tb *tokenBucket) take(n int) {
	// Debt model: charge the request immediately (tokens may go negative)
	// and sleep until the balance would be non-negative again. Unlike a
	// classic bounded bucket this never deadlocks on requests larger than
	// the burst, while still enforcing the sustained rate.
	tb.mu.Lock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.tokens -= float64(n)
	deficit := -tb.tokens
	tb.mu.Unlock()
	if deficit > 0 {
		time.Sleep(time.Duration(deficit / tb.rate * float64(time.Second)))
	}
}
